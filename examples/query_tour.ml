(* A tour of GaeaQL, the query language of the Fig 1 interpreter:
   DDL for classes / processes / concepts, ingestion, derivation,
   spatio-temporal SELECTs, lineage, verification and experiments.

   Run with: dune exec examples/query_tour.exe *)

let script = {|
-- the derivation layer: a rainfall class and two desert processes
DEFINE CLASS rainfall (data image, spatialextent box, timestamp abstime);
DEFINE CLASS desert (cutoff float, data image, spatialextent box, timestamp abstime)
  DERIVED BY desert-250;

DEFINE PROCESS desert-250 OUTPUT desert ARGS (rain rainfall)
  PARAM cutoff = 250.0
  MAP cutoff = $cutoff
  MAP data = img_threshold_below(rain.data, $cutoff)
  MAP spatialextent = rain.spatialextent
  MAP timestamp = rain.timestamp
END;

-- a second scientist prefers 200 mm: same method, different parameter,
-- therefore a different process (Section 2.1.2)
DEFINE PROCESS desert-200 OUTPUT desert ARGS (rain rainfall)
  PARAM cutoff = 200.0
  MAP cutoff = $cutoff
  MAP data = img_threshold_below(rain.data, $cutoff)
  MAP spatialextent = rain.spatialextent
  MAP timestamp = rain.timestamp
END;

-- the high-level layer: the concept both scientists share
DEFINE CONCEPT desertic_region MEMBERS (desert);

-- base data for three years
INSERT INTO rainfall (data = synth_rainfall(1, 32, 32),
  spatialextent = make_box(0.0, 0.0, 20.0, 15.0),
  timestamp = make_abstime(1986, 1, 1));
INSERT INTO rainfall (data = synth_rainfall(2, 32, 32),
  spatialextent = make_box(0.0, 0.0, 20.0, 15.0),
  timestamp = make_abstime(1987, 1, 1));
INSERT INTO rainfall (data = synth_rainfall(3, 32, 32),
  spatialextent = make_box(0.0, 0.0, 20.0, 15.0),
  timestamp = make_abstime(1988, 1, 1));

BEGIN EXPERIMENT sahel_deserts;
DERIVE desert;
NOTE sahel_deserts 'first desert mask derived with the 250mm cutoff';

-- spatio-temporal retrieval
SELECT cutoff, timestamp FROM desert WHERE cutoff >= 200.0;
SELECT timestamp FROM rainfall WHERE timestamp AT DATE '1987-01-01';
SELECT timestamp FROM rainfall WHERE spatialextent OVERLAPS BOX(5.0, 5.0, 6.0, 6.0)
  ORDER BY timestamp DESC LIMIT 2;

-- querying through the concept reaches the member classes
SELECT cutoff FROM desertic_region;

-- metadata introspection
SHOW PLAN desert;
SHOW VERSIONS OF desert-250;
SHOW TASKS;
VERIFY TASK 1;
REPRODUCE sahel_deserts
|}

let () =
  let session = Gaea_query.Session.create () in
  print_endline (Gaea_query.Session.run_string_collect session script)
