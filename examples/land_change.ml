(* Fig 5: the compound process land-change-detection, plus the Petri-net
   machinery of Section 2.1.6: reachability ("could this be derived?"),
   backward chaining ("which stored objects would it start from?") and
   the net itself as a Graphviz diagram.

   Run with: dune exec examples/land_change.exe *)

module Kernel = Gaea_core.Kernel
module Figures = Gaea_core.Figures
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Process = Gaea_core.Process
module Backchain = Gaea_petri.Backchain
module Reachability = Gaea_petri.Reachability
module Analysis = Gaea_petri.Analysis

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ Gaea_core.Gaea_error.to_string e);
    exit 1

let () =
  let k = Kernel.create () in
  or_die (Figures.install_fig3 k);
  or_die (Figures.install_fig5 k);

  (* the compound process and its expansion *)
  let compound = Option.get (Kernel.find_process k Figures.p_land_change) in
  Format.printf "%a@.@." Process.pp compound;

  (* before any data: nothing is derivable *)
  let view = Kernel.derivation_net k in
  let place =
    Option.get (view.Kernel.place_of_class Figures.land_cover_changes_class)
  in
  let derivable () =
    let info =
      Reachability.analyze view.Kernel.net (Kernel.current_marking k)
    in
    info.Reachability.derivable place
  in
  Printf.printf "land_cover_changes derivable with empty store: %b\n"
    (derivable ());

  (* ingest two TM epochs; now the chain TM -> spca -> classify opens *)
  let _ = or_die (Figures.load_tm_bands k ~seed:1986 ~nrow:48 ~ncol:48 ()) in
  let _ = or_die (Figures.load_tm_bands k ~seed:1989 ~nrow:48 ~ncol:48 ()) in
  Printf.printf "after loading two TM epochs: derivable = %b\n" (derivable ());

  (* the backward-chaining plan: which stored objects, which firings *)
  (match Derivation.derivation_plan k Figures.land_cover_changes_class with
   | None -> print_endline "no plan (unexpected)"
   | Some plan ->
     Format.printf "@.%a@.@."
       (Backchain.pp
          ~place_name:(fun p ->
            Option.value ~default:"?" (view.Kernel.class_of_place p))
          ~transition_name:(fun t ->
            match view.Kernel.process_of_transition t with
            | Some (n, v) -> Printf.sprintf "%s v%d" n v
            | None -> "?"))
       plan;
     Printf.printf "plan cost (firings): %d, chain depth: %d\n"
       (Backchain.cost plan) (Backchain.depth plan);
     Printf.printf "initial marking (stored objects used): [%s]\n"
       (String.concat ", "
          (List.map
             (fun (_, tok) -> string_of_int tok)
             (Backchain.retrieved_tokens plan))));

  (* execute: the compound expands into its two primitive steps *)
  let outcome =
    or_die (Derivation.request k Figures.land_cover_changes_class)
  in
  let result = List.hd outcome.Derivation.objects in
  Printf.printf "\nderived object %d through %d task(s):\n" result
    (List.length outcome.Derivation.new_tasks);
  print_string (Lineage.explain k result);

  (* structural analysis of the derivation diagram *)
  let report = Analysis.analyze view.Kernel.net (Kernel.current_marking k) in
  Format.printf "@.net analysis:@.%a@."
    (Analysis.pp_report
       ~place_name:(fun p ->
         Option.value ~default:"?" (view.Kernel.class_of_place p))
       ~transition_name:(fun t -> Gaea_petri.Net.transition_name view.Kernel.net t))
    report
