(* The paper's Section 1 motivating scenario.

   "Two scientists are working on detecting the changes in vegetation
   index in Africa between 1988 and 1989.  One may subtract the NDVI of
   1988 from that of 1989, while another divides the NDVI of 1989 by
   that of 1988.  If only the resultant images are stored, there is no
   way to share and compare the produced data unless the derivation
   procedures are known to both scientists."

   Here both results ARE stored — and the derivation metadata tells them
   apart.  A third derivation (standardized PCA, Eastman 1992) computes
   the "same conceptual outcome" through the Fig 4 compound-operator
   network; the paper's point is that in IDRISI such an experiment could
   not be reproduced, while in Gaea it can — and we verify it.

   Run with: dune exec examples/vegetation_change.exe *)

module Kernel = Gaea_core.Kernel
module Figures = Gaea_core.Figures
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Task = Gaea_core.Task
module Value = Gaea_adt.Value
module Imgstats = Gaea_raster.Imgstats

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ Gaea_core.Gaea_error.to_string e);
    exit 1

let image_of k oid =
  match Kernel.object_attr k ~cls:Figures.veg_change_class oid "data" with
  | Some (Value.VImage img) -> img
  | _ -> failwith "veg_change object without image data"

let () =
  let k = Kernel.create () in
  or_die (Figures.install_vegetation k);

  (* base data: AVHRR red/NIR channels for 1988 and 1989 (the 1989
     scene is generated with a vegetation "greening" shift) *)
  let _ = or_die (Figures.load_avhrr_year k ~seed:1988 ~year:1988 ()) in
  let _ =
    or_die
      (Figures.load_avhrr_year k ~seed:1988 ~year:1989 ~vegetation_shift:0.2 ())
  in

  (* derive the two NDVI maps (one task per year, same process) *)
  let ndvi = or_die (Derivation.request ~need:2 k Figures.ndvi_class) in
  Printf.printf "NDVI maps derived: objects [%s]\n"
    (String.concat ", " (List.map string_of_int ndvi.Derivation.objects));

  (* scientist 1: subtraction; scientist 2: division; scientist 3: SPCA *)
  let run_process name =
    let p = Option.get (Kernel.find_process k name) in
    let binding =
      or_die
        (Kernel.find_binding k p
           ~available:
             [ (Figures.ndvi_class, Kernel.objects_of_class k Figures.ndvi_class) ])
    in
    let task = or_die (Kernel.execute_process k p ~inputs:binding) in
    List.hd task.Task.outputs
  in
  let by_sub = run_process Figures.p_change_sub in
  let by_div = run_process Figures.p_change_div in
  let by_spca = run_process Figures.p_change_spca in

  Printf.printf
    "\nthree 'vegetation change' objects now stored: %d, %d, %d\n" by_sub
    by_div by_spca;
  Printf.printf "mean |change| per method:\n";
  List.iter
    (fun (label, oid) ->
      let img = image_of k oid in
      Printf.printf "  %-9s mean=%8.4f stddev=%8.4f\n" label
        (Imgstats.mean img) (Imgstats.stddev img))
    [ ("subtract", by_sub); ("divide", by_div); ("spca", by_spca) ];

  (* the derivation metadata distinguishes them *)
  print_newline ();
  print_endline (Lineage.compare_derivations k by_sub by_div);
  print_newline ();
  print_endline (Lineage.explain k by_spca);

  (* reproducibility: rerun every derivation and compare bit-for-bit *)
  let all_ok =
    List.for_all
      (fun oid -> or_die (Lineage.verify_object k oid))
      [ by_sub; by_div; by_spca ]
  in
  Printf.printf "all three derivations reproduce exactly: %b\n" all_ok
