(* The three semantic layers of Fig 2, rebuilt programmatically.

   High level:   the DESERT concept hierarchy (imprecise definitions),
                 NDVI and Vegetation-Change concepts;
   Derivation:   classes + processes, including two desert processes that
                 differ only in a parameter (250 mm vs 200 mm);
   System level: browsing the primitive classes / operator registry.

   Run with: dune exec examples/three_layers.exe *)

module Kernel = Gaea_core.Kernel
module Figures = Gaea_core.Figures
module Concept = Gaea_core.Concept
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Process = Gaea_core.Process
module Registry = Gaea_adt.Registry
module Operator = Gaea_adt.Operator
module Vtype = Gaea_adt.Vtype

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ Gaea_core.Gaea_error.to_string e);
    exit 1

let () =
  let k = Kernel.create () in
  or_die (Figures.install_all k);

  (* ---------------- high-level layer: concepts ---------------- *)
  print_endline "== high-level semantics layer (concepts) ==";
  let concepts = Kernel.concepts k in
  List.iter
    (fun c ->
      Printf.printf "  %-24s -> {%s}%s\n" c.Concept.name
        (String.concat ", " c.Concept.members)
        (match Concept.parents concepts c.Concept.name with
         | [] -> ""
         | ps -> "  ISA " ^ String.concat ", " ps))
    (Concept.all concepts);
  Printf.printf "  classes realizing DESERT: {%s}\n"
    (String.concat ", " (Concept.classes_of concepts "Desert"));

  (* ------------- derivation layer: processes ------------------ *)
  print_endline "\n== derivation semantics layer (processes) ==";
  List.iter
    (fun p ->
      Printf.printf "  %-28s : (%s) -> %s%s\n" p.Process.proc_name
        (String.concat ", "
           (List.map
              (fun a ->
                (if a.Process.setof then "SETOF " else "") ^ a.Process.arg_class)
              p.Process.args))
        p.Process.output_class
        (match p.Process.params with
         | [] -> ""
         | ps ->
           "  ["
           ^ String.concat ", "
               (List.map
                  (fun (n, v) ->
                    Printf.sprintf "%s=%s" n (Gaea_adt.Value.to_display v))
                  ps)
           ^ "]"))
    (Kernel.processes k);

  (* same method, different parameter => genuinely different processes *)
  let rain = or_die (Figures.load_rainfall k ~seed:5 ()) in
  ignore rain;
  let p250 = Option.get (Kernel.find_process k Figures.p_desert_250) in
  let p200 = Option.get (Kernel.find_process k Figures.p_desert_200) in
  let t250 = or_die (Kernel.execute_process k p250 ~inputs:[ ("rain", [ rain ]) ]) in
  let t200 = or_die (Kernel.execute_process k p200 ~inputs:[ ("rain", [ rain ]) ]) in
  let d250 = List.hd t250.Gaea_core.Task.outputs in
  let d200 = List.hd t200.Gaea_core.Task.outputs in
  Printf.printf
    "\ntwo scientists classified deserts from the same rainfall map:\n%s\n"
    (Lineage.compare_derivations k d250 d200);

  (* ------------- system layer: registry browsing -------------- *)
  print_endline "== system-level semantics layer (ADT registry) ==";
  let reg = Kernel.registry k in
  Printf.printf "  %d primitive classes, %d operators registered\n"
    (List.length (Registry.all_classes reg))
    (Registry.operator_count reg);
  print_endline "  operators applicable to the image class:";
  List.iteri
    (fun i op ->
      if i < 8 then Format.printf "    %a@." Operator.pp op)
    (Registry.operators_for_type reg Vtype.Image);
  print_endline "    ...";
  Printf.printf "  classes accepting operator img_subtract: {%s}\n"
    (String.concat ", "
       (List.map
          (fun c -> c.Registry.cname)
          (Registry.classes_with_operator reg "img_subtract")))
