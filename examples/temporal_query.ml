(* The paper's query-answering sequence (Section 2.1.5) on a time
   series: "1. direct data retrieval; 2. data interpolation; 3. data are
   computed, based on a derivation relationship.  Steps 2 and 3 are
   prioritized according to the user's needs."

   A rainfall time series exists for January of 1986, 1988 and 1990.
   Queries AT stored dates retrieve; queries between snapshots
   interpolate (recorded as a generic-interpolation task, reproducible
   like any derivation); the priority between interpolation and full
   derivation is the caller's choice.

   Run with: dune exec examples/temporal_query.exe *)

module Kernel = Gaea_core.Kernel
module Figures = Gaea_core.Figures
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Task = Gaea_core.Task
module Value = Gaea_adt.Value
module Abstime = Gaea_geo.Abstime
module Imgstats = Gaea_raster.Imgstats

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ Gaea_core.Gaea_error.to_string e);
    exit 1

let mean_of k oid =
  match Kernel.object_attr k ~cls:Figures.rainfall_class oid "data" with
  | Some (Value.VImage img) -> Imgstats.mean img
  | _ -> Float.nan

let () =
  let k = Kernel.create () in
  or_die (Figures.install_deserts k);

  (* three January snapshots, two years apart *)
  let years = [ 1986; 1988; 1990 ] in
  List.iter
    (fun year ->
      let img = Gaea_raster.Synthetic.rainfall_map ~seed:year ~nrow:32 ~ncol:32 () in
      let _ =
        or_die
          (Kernel.insert_object k ~cls:Figures.rainfall_class
             [ ("data", Value.image img);
               ( "spatialextent",
                 Value.box
                   (Gaea_geo.Box.make ~xmin:0. ~ymin:0. ~xmax:20. ~ymax:15.) );
               ("timestamp", Value.abstime (Abstime.of_ymd year 1 15)) ])
      in
      ())
    years;
  Printf.printf "stored rainfall snapshots: %s\n"
    (String.concat ", " (List.map string_of_int years));

  (* step 1: a stored date retrieves directly *)
  let hit =
    or_die
      (Derivation.request_at k ~cls:Figures.rainfall_class
         ~at:(Abstime.of_ymd 1988 1 15) ())
  in
  Printf.printf "\nAT 1988-01-15: retrieved object %d directly (%d new tasks)\n"
    (List.hd hit.Derivation.objects)
    (List.length hit.Derivation.new_tasks);

  (* step 2: a missing date interpolates between its neighbours *)
  let mid =
    or_die
      (Derivation.request_at k ~cls:Figures.rainfall_class
         ~at:(Abstime.of_ymd 1987 1 15) ())
  in
  let mid_oid = List.hd mid.Derivation.objects in
  Printf.printf
    "AT 1987-01-15: interpolated object %d (mean rainfall %.1f mm, \
     between %.1f and %.1f)\n"
    mid_oid (mean_of k mid_oid)
    (mean_of k (List.nth (Kernel.objects_of_class k Figures.rainfall_class) 0))
    (mean_of k (List.nth (Kernel.objects_of_class k Figures.rainfall_class) 1));
  let task = List.hd mid.Derivation.new_tasks in
  Format.printf "recorded as: %a@." Task.pp task;
  Printf.printf "interpolation task reproduces exactly: %b\n"
    (or_die (Lineage.verify_task k task));

  (* extrapolation past the series also works (two nearest snapshots) *)
  let future =
    or_die
      (Derivation.request_at k ~cls:Figures.rainfall_class
         ~at:(Abstime.of_ymd 1991 1 15) ())
  in
  Printf.printf "\nAT 1991-01-15 (beyond the series): extrapolated object %d\n"
    (List.hd future.Derivation.objects);

  (* the lineage distinguishes measured from interpolated data *)
  print_newline ();
  print_string (Lineage.explain k mid_oid);
  Printf.printf "\ncounters: %d retrievals, %d interpolations, %d recorded tasks\n"
    (Kernel.counters k).Kernel.retrievals
    (Kernel.counters k).Kernel.interpolations
    (Kernel.counters k).Kernel.executions
