(* Quickstart: the paper's Fig 3 scenario end to end.

   1. define the Landsat-TM and LAND_COVER classes and process P20;
   2. ingest three synthetic TM bands (base data);
   3. ask for LAND_COVER — Gaea backward-chains, fires P20, records a task;
   4. inspect the lineage and confirm the result reproduces exactly.

   Run with: dune exec examples/quickstart.exe *)

module Kernel = Gaea_core.Kernel
module Figures = Gaea_core.Figures
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Task = Gaea_core.Task

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ Gaea_core.Gaea_error.to_string e);
    exit 1

let () =
  let k = Kernel.create () in

  (* 1. schema: classes C1, C20 and process P20 (Fig 3) *)
  or_die (Figures.install_fig3 k);
  Printf.printf "defined %d classes and process %s\n"
    (List.length (Kernel.classes k))
    Figures.p20_name;

  (* 2. base data: three rectified TM bands over one extent *)
  let bands = or_die (Figures.load_tm_bands k ~seed:42 ~nrow:64 ~ncol:64 ()) in
  Printf.printf "ingested TM bands as objects [%s]\n"
    (String.concat ", " (List.map string_of_int bands));

  (* 3. request land cover: not stored, so Gaea derives it *)
  let outcome = or_die (Derivation.request k Figures.land_cover_class) in
  let land_cover = List.hd outcome.Derivation.objects in
  Printf.printf "\nland cover derived as object %d via %d task(s):\n"
    land_cover
    (List.length outcome.Derivation.new_tasks);
  List.iter
    (fun t -> Format.printf "  %a@." Task.pp t)
    outcome.Derivation.new_tasks;

  (* 4. lineage + reproducibility *)
  print_newline ();
  print_string (Lineage.explain k land_cover);
  (match or_die (Lineage.verify_object k land_cover) with
   | true -> print_endline "\nre-running the recorded task gives the exact same image."
   | false -> print_endline "\nreproduction FAILED (this should not happen)");

  (* asking again retrieves the stored object — no recomputation *)
  let again = or_die (Derivation.request k Figures.land_cover_class) in
  assert (again.Derivation.new_tasks = []);
  Printf.printf
    "second request: retrieved object %d directly (no new derivation).\n"
    (List.hd again.Derivation.objects)
