(* Tests for the spatio-temporal substrate: Abstime, Interval, Allen,
   Box, Refsys, Extent. *)

open Gaea_geo

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Abstime                                                             *)
(* ------------------------------------------------------------------ *)

let test_abstime_epoch () =
  check_str "epoch renders" "1970-01-01T00:00:00" (Abstime.to_string Abstime.epoch);
  check_int "epoch seconds" 0 (Abstime.to_seconds Abstime.epoch)

let test_abstime_roundtrip_known () =
  List.iter
    (fun (y, m, d) ->
      let t = Abstime.of_ymd y m d in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "%d-%d-%d" y m d)
        (y, m, d) (Abstime.to_ymd t))
    [ (1970, 1, 1); (1986, 1, 15); (2000, 2, 29); (1900, 3, 1); (1, 1, 1);
      (1969, 12, 31); (1899, 2, 28); (2400, 2, 29) ]

let test_abstime_leap_years () =
  check_bool "2000 leap" true (Abstime.is_leap_year 2000);
  check_bool "1900 not leap" false (Abstime.is_leap_year 1900);
  check_bool "1988 leap" true (Abstime.is_leap_year 1988);
  check_bool "1989 not leap" false (Abstime.is_leap_year 1989);
  check_int "feb 1988" 29 (Abstime.days_in_month 1988 2);
  check_int "feb 1989" 28 (Abstime.days_in_month 1989 2)

let test_abstime_invalid () =
  Alcotest.check_raises "feb 30" (Invalid_argument "Abstime.of_ymd: invalid date 1989-02-30")
    (fun () -> ignore (Abstime.of_ymd 1989 2 30));
  Alcotest.check_raises "month 13"
    (Invalid_argument "Abstime.of_ymd: invalid date 1989-13-01") (fun () ->
      ignore (Abstime.of_ymd 1989 13 1));
  Alcotest.check_raises "bad time"
    (Invalid_argument "Abstime.of_ymd_hms: invalid time 24:00:00") (fun () ->
      ignore (Abstime.of_ymd_hms 1989 1 1 24 0 0))

let test_abstime_hms () =
  let t = Abstime.of_ymd_hms 1986 1 15 13 45 30 in
  let (y, m, d), (hh, mm, ss) = Abstime.to_ymd_hms t in
  Alcotest.(check (triple int int int)) "date" (1986, 1, 15) (y, m, d);
  Alcotest.(check (triple int int int)) "time" (13, 45, 30) (hh, mm, ss);
  check_str "iso" "1986-01-15T13:45:30" (Abstime.to_string t)

let test_abstime_pre_epoch () =
  let t = Abstime.of_ymd_hms 1969 12 31 23 0 0 in
  check_bool "negative" true (Abstime.to_seconds t < 0);
  check_str "renders" "1969-12-31T23:00:00" (Abstime.to_string t)

let test_abstime_add_days () =
  let t = Abstime.of_ymd 1988 12 31 in
  check_str "across year" "1989-01-01T00:00:00"
    (Abstime.to_string (Abstime.add_days t 1));
  check_str "backwards" "1988-12-30T00:00:00"
    (Abstime.to_string (Abstime.add_days t (-1)))

let test_abstime_add_months_clamps () =
  let jan31 = Abstime.of_ymd 1989 1 31 in
  check_str "jan31 + 1 month = feb28" "1989-02-28T00:00:00"
    (Abstime.to_string (Abstime.add_months jan31 1));
  let jan31_leap = Abstime.of_ymd 1988 1 31 in
  check_str "leap clamp" "1988-02-29T00:00:00"
    (Abstime.to_string (Abstime.add_months jan31_leap 1));
  check_str "minus 13 months" "1987-12-31T00:00:00"
    (Abstime.to_string (Abstime.add_months jan31 (-13)))

let test_abstime_add_years () =
  let feb29 = Abstime.of_ymd 1988 2 29 in
  check_str "leap to non-leap clamps" "1989-02-28T00:00:00"
    (Abstime.to_string (Abstime.add_years feb29 1))

let test_abstime_diff () =
  let a = Abstime.of_ymd 1989 7 1 and b = Abstime.of_ymd 1988 7 1 in
  check_float "365 days" 365. (Abstime.diff_days a b);
  check_float "negative" (-365.) (Abstime.diff_days b a)

let test_abstime_parse () =
  List.iter
    (fun s ->
      match Abstime.of_string s with
      | Some t -> check_bool (s ^ " reparses") true (Abstime.of_string (Abstime.to_string t) = Some t)
      | None -> Alcotest.failf "should parse %s" s)
    [ "1986-01-15"; "1986-01-15T12:30:00"; "1986-01-15 12:30:00" ];
  List.iter
    (fun s -> check_bool (s ^ " rejected") true (Abstime.of_string s = None))
    [ "1986-13-01"; "1986-02-30"; "86-1-1x"; ""; "1986-01-15T25:00:00" ]

let abstime_roundtrip_prop =
  QCheck.Test.make ~name:"abstime ymd roundtrip" ~count:500
    QCheck.(triple (int_range 1600 2400) (int_range 1 12) (int_range 1 28))
    (fun (y, m, d) ->
      let t = Abstime.of_ymd y m d in
      Abstime.to_ymd t = (y, m, d))

let abstime_day_arith_prop =
  QCheck.Test.make ~name:"add_days n then -n is identity" ~count:500
    QCheck.(pair (int_range (-200000) 200000) (int_range (-5000) 5000))
    (fun (secs, days) ->
      let t = Abstime.of_seconds secs in
      Abstime.equal t (Abstime.add_days (Abstime.add_days t days) (-days)))

let abstime_string_prop =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:500
    QCheck.(int_range (-4000000000) 4000000000)
    (fun secs ->
      let t = Abstime.of_seconds secs in
      Abstime.of_string (Abstime.to_string t) = Some t)

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let iv y1 m1 d1 y2 m2 d2 = Interval.of_ymd_pair (y1, m1, d1) (y2, m2, d2)

let test_interval_make () =
  let i = iv 1986 1 1 1986 12 31 in
  check_float "duration" 364. (Interval.duration_days i);
  check_bool "not instant" false (Interval.is_instant i);
  Alcotest.check_raises "inverted"
    (Invalid_argument
       "Interval.make: stop 1986-01-01T00:00:00 before start 1987-01-01T00:00:00")
    (fun () ->
      ignore (Interval.make (Abstime.of_ymd 1987 1 1) (Abstime.of_ymd 1986 1 1)))

let test_interval_contains () =
  let i = iv 1986 1 1 1986 12 31 in
  check_bool "mid" true (Interval.contains i (Abstime.of_ymd 1986 6 1));
  check_bool "start incl" true (Interval.contains i (Abstime.of_ymd 1986 1 1));
  check_bool "stop incl" true (Interval.contains i (Abstime.of_ymd 1986 12 31));
  check_bool "outside" false (Interval.contains i (Abstime.of_ymd 1987 1 1))

let test_interval_ops () =
  let a = iv 1986 1 1 1986 6 30 and b = iv 1986 6 1 1986 12 31 in
  check_bool "overlap" true (Interval.overlaps a b);
  (match Interval.intersection a b with
   | Some i ->
     check_str "intersection" "[1986-06-01T00:00:00, 1986-06-30T00:00:00]"
       (Interval.to_string i)
   | None -> Alcotest.fail "expected intersection");
  let h = Interval.hull a b in
  check_bool "hull spans" true
    (Interval.contains_interval ~outer:h ~inner:a
     && Interval.contains_interval ~outer:h ~inner:b);
  let c = iv 1990 1 1 1990 2 1 in
  check_bool "disjoint" false (Interval.overlaps a c);
  check_bool "no intersection" true (Interval.intersection a c = None)

let test_interval_touching () =
  (* closed intervals sharing an endpoint do overlap *)
  let a = iv 1986 1 1 1986 6 1 and b = iv 1986 6 1 1986 12 1 in
  check_bool "touching closed intervals overlap" true (Interval.overlaps a b)

let interval_gen =
  QCheck.Gen.(
    map2
      (fun s len -> Interval.make (Abstime.of_seconds s)
          (Abstime.of_seconds (s + len)))
      (int_range (-1000000) 1000000)
      (int_range 1 500000))

let interval_arb = QCheck.make ~print:Interval.to_string interval_gen

let interval_overlap_sym_prop =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:500
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a)

let interval_intersection_prop =
  QCheck.Test.make ~name:"intersection is within both" ~count:500
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) ->
      match Interval.intersection a b with
      | None -> not (Interval.overlaps a b)
      | Some i ->
        Interval.contains_interval ~outer:a ~inner:i
        && Interval.contains_interval ~outer:b ~inner:i)

let interval_hull_prop =
  QCheck.Test.make ~name:"hull contains both" ~count:500
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.contains_interval ~outer:h ~inner:a
      && Interval.contains_interval ~outer:h ~inner:b)

(* ------------------------------------------------------------------ *)
(* Allen                                                               *)
(* ------------------------------------------------------------------ *)

let test_allen_examples () =
  let rel a b = Allen.relate a b in
  let i s e = Interval.make (Abstime.of_seconds s) (Abstime.of_seconds e) in
  let cases =
    [ (i 0 1, i 2 3, Allen.Before);
      (i 0 1, i 1 2, Allen.Meets);
      (i 0 2, i 1 3, Allen.Overlaps);
      (i 0 1, i 0 2, Allen.Starts);
      (i 1 2, i 0 3, Allen.During);
      (i 1 2, i 0 2, Allen.Finishes);
      (i 0 1, i 0 1, Allen.Equal);
      (i 2 3, i 0 1, Allen.After);
      (i 1 2, i 0 1, Allen.Met_by);
      (i 1 3, i 0 2, Allen.Overlapped_by);
      (i 0 2, i 0 1, Allen.Started_by);
      (i 0 3, i 1 2, Allen.Contains);
      (i 0 2, i 1 2, Allen.Finished_by) ]
  in
  List.iter
    (fun (a, b, expected) ->
      check_str
        (Printf.sprintf "%s vs %s" (Interval.to_string a) (Interval.to_string b))
        (Allen.to_string expected)
        (Allen.to_string (rel a b)))
    cases

let test_allen_rejects_instants () =
  let i = Interval.instant (Abstime.of_seconds 5) in
  Alcotest.check_raises "instant"
    (Invalid_argument "Allen.relate: instant (zero-duration) interval")
    (fun () -> ignore (Allen.relate i i))

let test_allen_names_roundtrip () =
  List.iter
    (fun r ->
      match Allen.of_string (Allen.to_string r) with
      | Some r' -> check_bool (Allen.to_string r) true (Allen.equal_relation r r')
      | None -> Alcotest.failf "of_string failed for %s" (Allen.to_string r))
    Allen.all

let test_allen_compose_identity () =
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        ("equal ∘ " ^ Allen.to_string r)
        [ Allen.to_string r ]
        (List.map Allen.to_string (Allen.compose Allen.Equal r)))
    Allen.all

let test_allen_compose_before () =
  Alcotest.(check (list string))
    "before ∘ before = before" [ "before" ]
    (List.map Allen.to_string (Allen.compose Allen.Before Allen.Before));
  (* before ∘ after is the full relation set *)
  check_int "before ∘ after is unconstrained" 13
    (List.length (Allen.compose Allen.Before Allen.After))

let proper_interval_gen =
  QCheck.Gen.(
    map2
      (fun s len ->
        Interval.make (Abstime.of_seconds s) (Abstime.of_seconds (s + len)))
      (int_range (-100) 100)
      (int_range 1 100))

let proper_arb = QCheck.make ~print:Interval.to_string proper_interval_gen

let allen_inverse_prop =
  QCheck.Test.make ~name:"relate b a = inverse (relate a b)" ~count:1000
    QCheck.(pair proper_arb proper_arb)
    (fun (a, b) ->
      Allen.equal_relation (Allen.relate b a) (Allen.inverse (Allen.relate a b)))

let allen_composition_sound_prop =
  QCheck.Test.make ~name:"relate a c ∈ compose (relate a b) (relate b c)"
    ~count:1000
    QCheck.(triple proper_arb proper_arb proper_arb)
    (fun (a, b, c) ->
      let r1 = Allen.relate a b and r2 = Allen.relate b c in
      List.exists
        (Allen.equal_relation (Allen.relate a c))
        (Allen.compose r1 r2))

let allen_unique_prop =
  QCheck.Test.make ~name:"exactly one relation holds" ~count:500
    QCheck.(pair proper_arb proper_arb)
    (fun (a, b) ->
      let holding = List.filter (fun r -> Allen.holds r a b) Allen.all in
      List.length holding = 1)

(* ------------------------------------------------------------------ *)
(* Box                                                                 *)
(* ------------------------------------------------------------------ *)

let box = Box.make

let test_box_make () =
  let b = box ~xmin:0. ~ymin:0. ~xmax:2. ~ymax:3. in
  check_float "area" 6. (Box.area b);
  check_float "width" 2. (Box.width b);
  check_float "height" 3. (Box.height b);
  Alcotest.check_raises "inverted"
    (Invalid_argument "Box.make: inverted box (2,0,0,3)") (fun () ->
      ignore (box ~xmin:2. ~ymin:0. ~xmax:0. ~ymax:3.));
  Alcotest.check_raises "nan" (Invalid_argument "Box.make: xmin is not finite")
    (fun () -> ignore (box ~xmin:Float.nan ~ymin:0. ~xmax:1. ~ymax:1.))

let test_box_of_corners () =
  let b = Box.of_corners (5., 7.) (1., 2.) in
  check_float "xmin" 1. (Box.xmin b);
  check_float "ymax" 7. (Box.ymax b)

let test_box_predicates () =
  let a = box ~xmin:0. ~ymin:0. ~xmax:10. ~ymax:10. in
  let b = box ~xmin:5. ~ymin:5. ~xmax:15. ~ymax:15. in
  let c = box ~xmin:20. ~ymin:20. ~xmax:30. ~ymax:30. in
  check_bool "overlap" true (Box.overlaps a b);
  check_bool "disjoint" false (Box.overlaps a c);
  check_bool "touching counts" true
    (Box.overlaps a (box ~xmin:10. ~ymin:0. ~xmax:20. ~ymax:10.));
  check_bool "contains" true
    (Box.contains ~outer:a ~inner:(box ~xmin:1. ~ymin:1. ~xmax:9. ~ymax:9.));
  check_bool "contains self" true (Box.contains ~outer:a ~inner:a);
  check_bool "point in" true (Box.contains_point a (5., 5.));
  check_bool "point out" false (Box.contains_point a (11., 5.))

let test_box_intersection_hull () =
  let a = box ~xmin:0. ~ymin:0. ~xmax:10. ~ymax:10. in
  let b = box ~xmin:5. ~ymin:5. ~xmax:15. ~ymax:15. in
  (match Box.intersection a b with
   | Some i ->
     check_float "ixmin" 5. (Box.xmin i);
     check_float "ixmax" 10. (Box.xmax i)
   | None -> Alcotest.fail "expected intersection");
  let h = Box.hull a b in
  check_float "hxmax" 15. (Box.xmax h);
  check_bool "hull list" true
    (match Box.hull_list [ a; b ] with
     | Some hl -> Box.equal hl h
     | None -> false);
  check_bool "hull empty" true (Box.hull_list [] = None)

let test_box_string_roundtrip () =
  let b = box ~xmin:(-1.5) ~ymin:2.25 ~xmax:3. ~ymax:4.125 in
  (match Box.of_string (Box.to_string b) with
   | Some b' -> check_bool "roundtrip" true (Box.equal b b')
   | None -> Alcotest.fail "parse failed");
  check_bool "inverted rejected" true (Box.of_string "(3,0,1,5)" = None);
  check_bool "garbage rejected" true (Box.of_string "hello" = None)

let test_box_transform () =
  let b = box ~xmin:0. ~ymin:0. ~xmax:4. ~ymax:4. in
  let t = Box.translate b ~dx:1. ~dy:(-1.) in
  check_float "tx" 1. (Box.xmin t);
  check_float "ty" (-1.) (Box.ymin t);
  let s = Box.scale_about_center b 0.5 in
  check_float "scaled area" 4. (Box.area s);
  let cx, cy = Box.center s in
  check_float "center preserved x" 2. cx;
  check_float "center preserved y" 2. cy;
  let e = Box.expand b 1. in
  check_float "expanded" 36. (Box.area e);
  (* shrinking past degenerate clamps at zero size *)
  let z = Box.expand b (-10.) in
  check_float "clamped" 0. (Box.area z)

let box_gen =
  QCheck.Gen.(
    map
      (fun (x1, y1, x2, y2) -> Box.of_corners (x1, y1) (x2, y2))
      (quad (float_range (-100.) 100.) (float_range (-100.) 100.)
         (float_range (-100.) 100.) (float_range (-100.) 100.)))

let box_arb = QCheck.make ~print:Box.to_string box_gen

let box_overlap_sym_prop =
  QCheck.Test.make ~name:"box overlap symmetric" ~count:500
    QCheck.(pair box_arb box_arb)
    (fun (a, b) -> Box.overlaps a b = Box.overlaps b a)

let box_intersection_prop =
  QCheck.Test.make ~name:"intersection within both, hull contains both"
    ~count:500
    QCheck.(pair box_arb box_arb)
    (fun (a, b) ->
      let inter_ok =
        match Box.intersection a b with
        | None -> not (Box.overlaps a b)
        | Some i -> Box.contains ~outer:a ~inner:i && Box.contains ~outer:b ~inner:i
      in
      let h = Box.hull a b in
      inter_ok && Box.contains ~outer:h ~inner:a && Box.contains ~outer:h ~inner:b)

let box_area_prop =
  QCheck.Test.make ~name:"area = width * height >= 0" ~count:500 box_arb
    (fun b -> Box.area b >= 0. && Box.area b = Box.width b *. Box.height b)

(* ------------------------------------------------------------------ *)
(* Refsys / Extent                                                     *)
(* ------------------------------------------------------------------ *)

let test_refsys () =
  check_bool "utm ok" true (Refsys.equal (Refsys.utm 18) (Refsys.Utm 18));
  Alcotest.check_raises "utm zone" (Invalid_argument "Refsys.utm: zone 0 outside 1..60")
    (fun () -> ignore (Refsys.utm 0));
  check_bool "parse long/lat" true (Refsys.of_string "long/lat" = Some Refsys.Lat_long);
  check_bool "parse utm" true (Refsys.of_string "UTM-18" = Some (Refsys.Utm 18));
  check_bool "parse local" true
    (Refsys.of_string "my-grid" = Some (Refsys.Local "my-grid"));
  check_bool "unit roundtrip" true
    (List.for_all
       (fun u -> Refsys.unit_of_string (Refsys.unit_to_string u) = Some u)
       [ Refsys.Degree; Refsys.Meter; Refsys.Kilometer ])

let test_refsys_convert () =
  (match Refsys.convert_length ~from_:Refsys.Kilometer ~to_:Refsys.Meter 2.5 with
   | Some v -> check_float "km->m" 2500. v
   | None -> Alcotest.fail "conversion failed");
  check_bool "deg->m impossible" true
    (Refsys.convert_length ~from_:Refsys.Degree ~to_:Refsys.Meter 1. = None);
  (match Refsys.convert_length ~from_:Refsys.Degree ~to_:Refsys.Degree 30. with
   | Some v -> check_float "deg->deg id" 30. v
   | None -> Alcotest.fail "identity failed")

let mk_extent x1 y1 x2 y2 (ys, ms, ds) (ye, me, de) =
  Extent.make
    (box ~xmin:x1 ~ymin:y1 ~xmax:x2 ~ymax:y2)
    (iv ys ms ds ye me de)

let test_extent_common () =
  let e1 = mk_extent 0. 0. 10. 10. (1986, 1, 1) (1986, 6, 1) in
  let e2 = mk_extent 5. 5. 15. 15. (1986, 5, 1) (1986, 12, 1) in
  let e3 = mk_extent 50. 50. 60. 60. (1990, 1, 1) (1990, 2, 1) in
  check_bool "overlap mode ok" true (Extent.common Extent.Overlap [ e1; e2 ]);
  check_bool "same mode fails" false (Extent.common Extent.Same [ e1; e2 ]);
  check_bool "same mode identical" true (Extent.common Extent.Same [ e1; e1 ]);
  check_bool "disjoint fails" false (Extent.common Extent.Overlap [ e1; e3 ]);
  check_bool "empty vacuous" true (Extent.common Extent.Same []);
  check_bool "singleton vacuous" true (Extent.common Extent.Overlap [ e3 ])

let test_extent_refsys_mismatch () =
  let e1 = mk_extent 0. 0. 10. 10. (1986, 1, 1) (1986, 6, 1) in
  let e2 =
    Extent.make ~refsys:(Refsys.utm 18)
      (box ~xmin:0. ~ymin:0. ~xmax:10. ~ymax:10.)
      (iv 1986 1 1 1986 6 1)
  in
  check_bool "different refsys not common" false
    (Extent.common Extent.Overlap [ e1; e2 ]);
  check_bool "no intersection across refsys" true
    (Extent.intersection e1 e2 = None);
  check_bool "no overlap across refsys" false (Extent.overlaps e1 e2)

let test_extent_intersection () =
  let e1 = mk_extent 0. 0. 10. 10. (1986, 1, 1) (1986, 6, 1) in
  let e2 = mk_extent 5. 5. 15. 15. (1986, 5, 1) (1986, 12, 1) in
  match Extent.intersection e1 e2 with
  | Some i ->
    check_float "space" 5. (Box.xmin i.Extent.space);
    check_bool "time" true
      (Abstime.equal (Interval.start i.Extent.time) (Abstime.of_ymd 1986 5 1))
  | None -> Alcotest.fail "expected intersection"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "geo"
    [ ( "abstime",
        [ Alcotest.test_case "epoch" `Quick test_abstime_epoch;
          Alcotest.test_case "roundtrip known dates" `Quick test_abstime_roundtrip_known;
          Alcotest.test_case "leap years" `Quick test_abstime_leap_years;
          Alcotest.test_case "invalid dates" `Quick test_abstime_invalid;
          Alcotest.test_case "time of day" `Quick test_abstime_hms;
          Alcotest.test_case "pre-epoch" `Quick test_abstime_pre_epoch;
          Alcotest.test_case "add days" `Quick test_abstime_add_days;
          Alcotest.test_case "month arithmetic clamps" `Quick test_abstime_add_months_clamps;
          Alcotest.test_case "year arithmetic" `Quick test_abstime_add_years;
          Alcotest.test_case "diff" `Quick test_abstime_diff;
          Alcotest.test_case "parsing" `Quick test_abstime_parse ] );
      qsuite "abstime-props"
        [ abstime_roundtrip_prop; abstime_day_arith_prop; abstime_string_prop ];
      ( "interval",
        [ Alcotest.test_case "make/duration" `Quick test_interval_make;
          Alcotest.test_case "contains" `Quick test_interval_contains;
          Alcotest.test_case "ops" `Quick test_interval_ops;
          Alcotest.test_case "touching" `Quick test_interval_touching ] );
      qsuite "interval-props"
        [ interval_overlap_sym_prop; interval_intersection_prop;
          interval_hull_prop ];
      ( "allen",
        [ Alcotest.test_case "all 13 examples" `Quick test_allen_examples;
          Alcotest.test_case "instants rejected" `Quick test_allen_rejects_instants;
          Alcotest.test_case "names roundtrip" `Quick test_allen_names_roundtrip;
          Alcotest.test_case "compose identity" `Quick test_allen_compose_identity;
          Alcotest.test_case "compose before" `Quick test_allen_compose_before ] );
      qsuite "allen-props"
        [ allen_inverse_prop; allen_composition_sound_prop; allen_unique_prop ];
      ( "box",
        [ Alcotest.test_case "make/area" `Quick test_box_make;
          Alcotest.test_case "of_corners" `Quick test_box_of_corners;
          Alcotest.test_case "predicates" `Quick test_box_predicates;
          Alcotest.test_case "intersection/hull" `Quick test_box_intersection_hull;
          Alcotest.test_case "string roundtrip" `Quick test_box_string_roundtrip;
          Alcotest.test_case "transforms" `Quick test_box_transform ] );
      qsuite "box-props"
        [ box_overlap_sym_prop; box_intersection_prop; box_area_prop ];
      ( "refsys-extent",
        [ Alcotest.test_case "refsys" `Quick test_refsys;
          Alcotest.test_case "conversions" `Quick test_refsys_convert;
          Alcotest.test_case "common rules" `Quick test_extent_common;
          Alcotest.test_case "refsys mismatch" `Quick test_extent_refsys_mismatch;
          Alcotest.test_case "intersection" `Quick test_extent_intersection ] ) ]
