(* Tests for the storage substrate (the Postgres stand-in): OIDs,
   tuples, heap, indexes, tables, store, snapshots, statistics. *)

module Oid = Gaea_storage.Oid
module Tuple = Gaea_storage.Tuple
module Heap = Gaea_storage.Heap
module Index_hash = Gaea_storage.Index_hash
module Index_btree = Gaea_storage.Index_btree
module Table = Gaea_storage.Table
module Store = Gaea_storage.Store
module Snapshot = Gaea_storage.Snapshot
module Stats = Gaea_storage.Stats
module Vorder = Gaea_storage.Vorder
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* Oid / Vorder                                                        *)
(* ------------------------------------------------------------------ *)

let test_oid_allocator () =
  let a = Oid.allocator () in
  check_int "first" 1 (Oid.fresh a);
  check_int "second" 2 (Oid.fresh a);
  check_int "current" 2 (Oid.current a);
  Oid.advance_to a 100;
  check_int "after advance" 101 (Oid.fresh a);
  Oid.advance_to a 50;
  (* no going backwards *)
  check_int "monotone" 102 (Oid.fresh a)

let test_vorder () =
  let ok v = Result.get_ok v in
  check_bool "int lt" true (ok (Vorder.compare (Value.int 1) (Value.int 2)) < 0);
  check_bool "int/float mix" true
    (ok (Vorder.compare (Value.int 2) (Value.float 1.5)) > 0);
  check_bool "string" true
    (ok (Vorder.compare (Value.string "a") (Value.string "b")) < 0);
  check_bool "abstime" true
    (ok
       (Vorder.compare
          (Value.abstime (Gaea_geo.Abstime.of_ymd 1986 1 1))
          (Value.abstime (Gaea_geo.Abstime.of_ymd 1989 1 1)))
     < 0);
  check_bool "box unorderable" true
    (Result.is_error
       (Vorder.compare
          (Value.box (Gaea_geo.Box.point 0. 0.))
          (Value.box (Gaea_geo.Box.point 1. 1.))));
  check_bool "cross-type error" true
    (Result.is_error (Vorder.compare (Value.int 1) (Value.string "1")));
  check_bool "orderable predicate" true
    (Vorder.orderable Vtype.Abstime && not (Vorder.orderable Vtype.Image))

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)
(* ------------------------------------------------------------------ *)

let desc () =
  Result.get_ok
    (Tuple.descriptor
       [ ("name", Vtype.String); ("size", Vtype.Int); ("score", Vtype.Float) ])

let test_tuple_descriptor () =
  check_bool "dup attr" true
    (Result.is_error (Tuple.descriptor [ ("a", Vtype.Int); ("a", Vtype.Int) ]));
  check_bool "empty attrs" true (Result.is_error (Tuple.descriptor []));
  check_bool "empty name" true
    (Result.is_error (Tuple.descriptor [ ("", Vtype.Int) ]));
  let d = desc () in
  check_int "arity" 3 (Tuple.arity d);
  check_bool "attr index" true (Tuple.attr_index d "size" = Some 1);
  check_bool "attr type" true (Tuple.attr_type d "score" = Some Vtype.Float)

let test_tuple_make () =
  let d = desc () in
  (match Tuple.make d [ Value.string "x"; Value.int 5; Value.float 1.5 ] with
   | Ok t ->
     check_bool "get by name" true
       (Tuple.get_by_name t d "size" = Ok (Value.int 5))
   | Error e -> Alcotest.failf "make: %s" e);
  check_bool "arity error" true
    (Result.is_error (Tuple.make d [ Value.string "x" ]));
  check_bool "type error" true
    (Result.is_error
       (Tuple.make d [ Value.int 1; Value.int 5; Value.float 1. ]));
  (* int widens into float attributes *)
  (match Tuple.make d [ Value.string "x"; Value.int 5; Value.int 2 ] with
   | Ok t ->
     check_bool "widened" true
       (Tuple.get_by_name t d "score" = Ok (Value.float 2.))
   | Error e -> Alcotest.failf "widening: %s" e)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let mk_tuple d i =
  Result.get_ok
    (Tuple.make d
       [ Value.string (Printf.sprintf "row%d" i); Value.int i;
         Value.float (float_of_int i) ])

let test_heap () =
  let d = desc () in
  let h = Heap.create () in
  check_int "empty" 0 (Heap.length h);
  List.iter
    (fun i -> Result.get_ok (Heap.insert h i (mk_tuple d i)))
    [ 1; 2; 3; 4; 5 ];
  check_int "five" 5 (Heap.length h);
  check_bool "dup oid" true (Result.is_error (Heap.insert h 3 (mk_tuple d 3)));
  check_bool "get" true (Heap.get h 2 <> None);
  check_bool "delete" true (Heap.delete h 2);
  check_bool "delete again" false (Heap.delete h 2);
  check_bool "gone" true (Heap.get h 2 = None);
  check_int "four live" 4 (Heap.length h);
  check_int "five allocated" 5 (Heap.allocated h);
  (* scan preserves insertion order and skips tombstones *)
  let seen = ref [] in
  Heap.scan h (fun oid _ -> seen := oid :: !seen);
  Alcotest.(check (list int)) "scan order" [ 1; 3; 4; 5 ] (List.rev !seen);
  check_bool "find" true (Heap.find h (fun oid _ -> oid = 4) <> None)

(* ------------------------------------------------------------------ *)
(* Indexes                                                             *)
(* ------------------------------------------------------------------ *)

let test_index_hash () =
  let idx = Index_hash.create () in
  Index_hash.add idx (Value.string "a") 1;
  Index_hash.add idx (Value.string "a") 2;
  Index_hash.add idx (Value.string "b") 3;
  Alcotest.(check (list int)) "find a" [ 1; 2 ] (Index_hash.find idx (Value.string "a"));
  check_int "cardinality" 2 (Index_hash.cardinality idx);
  check_int "entries" 3 (Index_hash.entries idx);
  Index_hash.remove idx (Value.string "a") 1;
  Alcotest.(check (list int)) "after remove" [ 2 ] (Index_hash.find idx (Value.string "a"));
  Index_hash.remove idx (Value.string "a") 2;
  check_int "key dropped" 1 (Index_hash.cardinality idx);
  (* image-valued keys work (hash on content) *)
  let img v =
    Value.image
      (Gaea_raster.Image.of_array ~nrow:1 ~ncol:1 Gaea_raster.Pixel.Float8
         [| v |])
  in
  Index_hash.add idx (img 1.) 10;
  Alcotest.(check (list int)) "image key" [ 10 ] (Index_hash.find idx (img 1.))

let test_index_btree () =
  let idx = Result.get_ok (Index_btree.create Vtype.Int) in
  List.iter (fun (k, o) -> Result.get_ok (Index_btree.add idx (Value.int k) o))
    [ (5, 50); (1, 10); (3, 30); (3, 31); (9, 90) ];
  Alcotest.(check (list int)) "point" [ 30; 31 ] (Index_btree.find idx (Value.int 3));
  Alcotest.(check (list int)) "range closed" [ 10; 30; 31; 50 ]
    (Index_btree.range idx ~lo:(Value.int 1) ~hi:(Value.int 5) ());
  Alcotest.(check (list int)) "range open low" [ 10; 30; 31 ]
    (Index_btree.range idx ~hi:(Value.int 4) ());
  Alcotest.(check (list int)) "full range" [ 10; 30; 31; 50; 90 ]
    (Index_btree.range idx ());
  check_bool "min" true (Index_btree.min_key idx = Some (Value.int 1));
  check_bool "max" true (Index_btree.max_key idx = Some (Value.int 9));
  Index_btree.remove idx (Value.int 3) 30;
  Alcotest.(check (list int)) "after remove" [ 31 ] (Index_btree.find idx (Value.int 3));
  check_bool "wrong type key" true
    (Result.is_error (Index_btree.add idx (Value.string "x") 1));
  check_bool "unorderable type" true
    (Result.is_error (Index_btree.create Vtype.Image))

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let make_table () =
  let d = desc () in
  let t = Table.create ~name:"things" d in
  List.iter
    (fun i -> Result.get_ok (Table.insert t i
       [ Value.string (Printf.sprintf "row%d" (i mod 3)); Value.int i;
         Value.float (float_of_int i) ]))
    [ 1; 2; 3; 4; 5; 6 ];
  t

let test_table_basic () =
  let t = make_table () in
  check_int "rows" 6 (Table.row_count t);
  check_bool "get attr" true
    (Table.get_attr t 4 "size" = Some (Value.int 4));
  check_bool "delete" true (Table.delete t 4);
  check_int "after delete" 5 (Table.row_count t);
  check_bool "select" true
    (List.length (Table.select t (fun _ tu -> Tuple.get tu 1 = Value.int 5)) = 1)

let test_table_index_agreement () =
  let t = make_table () in
  let scan_result = Table.lookup_eq t "name" (Value.string "row1") in
  check_bool "no index used" false (Table.last_access_used_index t);
  Result.get_ok (Table.create_hash_index t "name");
  let idx_result = Table.lookup_eq t "name" (Value.string "row1") in
  check_bool "index used" true (Table.last_access_used_index t);
  Alcotest.(check (list int)) "index agrees with scan"
    (List.map fst scan_result) (List.map fst idx_result);
  check_bool "dup index" true (Result.is_error (Table.create_hash_index t "name"))

let test_table_range () =
  let t = make_table () in
  let scan = Table.lookup_range t "size" ~lo:(Value.int 2) ~hi:(Value.int 4) () in
  Result.get_ok (Table.create_btree_index t "size");
  let via_index = Table.lookup_range t "size" ~lo:(Value.int 2) ~hi:(Value.int 4) () in
  check_bool "btree used" true (Table.last_access_used_index t);
  Alcotest.(check (list int)) "range agrees" (List.map fst scan)
    (List.map fst via_index);
  Alcotest.(check (list int)) "ordered" [ 2; 3; 4 ] (List.map fst via_index)

let test_table_index_maintained () =
  let t = make_table () in
  Result.get_ok (Table.create_hash_index t "size");
  Result.get_ok (Table.insert t 100 [ Value.string "new"; Value.int 77; Value.float 0. ]);
  check_bool "new row indexed" true
    (List.map fst (Table.lookup_eq t "size" (Value.int 77)) = [ 100 ]);
  ignore (Table.delete t 100);
  check_bool "deletion unindexed" true
    (Table.lookup_eq t "size" (Value.int 77) = [])

let table_lookup_prop =
  QCheck.Test.make ~name:"indexed lookup = scan lookup" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_range 0 10))
    (fun values ->
      let d =
        Result.get_ok (Tuple.descriptor [ ("k", Vtype.Int) ])
      in
      let t1 = Table.create ~name:"a" d in
      let t2 = Table.create ~name:"b" d in
      List.iteri
        (fun i v ->
          ignore (Table.insert t1 (i + 1) [ Value.int v ]);
          ignore (Table.insert t2 (i + 1) [ Value.int v ]))
        values;
      ignore (Table.create_hash_index t2 "k");
      List.for_all
        (fun probe ->
          List.map fst (Table.lookup_eq t1 "k" (Value.int probe))
          = List.map fst (Table.lookup_eq t2 "k" (Value.int probe)))
        [ 0; 1; 5; 10 ])

(* ------------------------------------------------------------------ *)
(* Store / Snapshot                                                    *)
(* ------------------------------------------------------------------ *)

let test_store () =
  let s = Store.create () in
  let _ = Result.get_ok (Store.create_table s ~name:"t1" [ ("x", Vtype.Int) ]) in
  check_bool "dup table" true
    (Result.is_error (Store.create_table s ~name:"t1" [ ("x", Vtype.Int) ]));
  let oid = Result.get_ok (Store.insert_values s ~table:"t1" [ Value.int 42 ]) in
  check_bool "get" true (Store.get s ~table:"t1" oid <> None);
  check_bool "bad table insert" true
    (Result.is_error (Store.insert_values s ~table:"zzz" [ Value.int 1 ]));
  Alcotest.(check (list string)) "names" [ "t1" ] (Store.table_names s);
  check_int "rows" 1 (Store.total_rows s);
  check_bool "drop" true (Store.drop_table s "t1");
  check_bool "drop again" false (Store.drop_table s "t1")

let test_snapshot_roundtrip () =
  let s = Store.create () in
  let tab =
    Result.get_ok
      (Store.create_table s ~name:"scenes"
         [ ("label", Vtype.String); ("when_", Vtype.Abstime);
           ("img", Vtype.Image) ])
  in
  Result.get_ok (Table.create_hash_index tab "label");
  Result.get_ok (Table.create_btree_index tab "when_");
  let img =
    Gaea_raster.Image.of_array ~label:"x" ~nrow:2 ~ncol:2
      Gaea_raster.Pixel.Float8
      [| 1.5; -2.25; 0.; 1e10 |]
  in
  let oid =
    Result.get_ok
      (Store.insert_values s ~table:"scenes"
         [ Value.string "alpha";
           Value.abstime (Gaea_geo.Abstime.of_ymd 1986 1 15);
           Value.image img ])
  in
  let text = Snapshot.save s in
  match Snapshot.load text with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok s2 ->
    let tab2 = Store.table_exn s2 "scenes" in
    check_int "rows restored" 1 (Table.row_count tab2);
    check_bool "indexes restored" true
      (Table.has_hash_index tab2 "label" && Table.has_btree_index tab2 "when_");
    (match Store.get s2 ~table:"scenes" oid with
     | Some tu ->
       (match Tuple.get tu 2 with
        | Value.VImage img2 ->
          check_bool "image bits preserved" true (Gaea_raster.Image.equal img img2)
        | _ -> Alcotest.fail "not an image")
     | None -> Alcotest.fail "row missing");
    (* allocator resumed past loaded oids *)
    let next = Store.fresh_oid s2 in
    check_bool "fresh oid advances" true (next > oid);
    (* index actually works after load *)
    check_bool "lookup via restored index" true
      (List.map fst (Table.lookup_eq tab2 "label" (Value.string "alpha"))
       = [ oid ])

let test_snapshot_garbage () =
  check_bool "garbage rejected" true (Result.is_error (Snapshot.load "(not a table)"));
  check_bool "valid empty" true (Result.is_ok (Snapshot.load ""))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let t = make_table () in
  let s = Stats.analyze_table t in
  check_int "rows" 6 s.Stats.n_rows;
  let name_col = List.find (fun c -> c.Stats.attr = "name") s.Stats.columns in
  check_int "3 distinct names" 3 name_col.Stats.n_distinct;
  let size_col = List.find (fun c -> c.Stats.attr = "size") s.Stats.columns in
  check_int "6 distinct sizes" 6 size_col.Stats.n_distinct;
  check_bool "min" true (size_col.Stats.min_value = Some (Value.int 1));
  check_bool "max" true (size_col.Stats.max_value = Some (Value.int 6));
  Alcotest.(check (float 1e-9)) "selectivity" (1. /. 3.)
    (Stats.selectivity_eq s "name");
  Alcotest.(check (float 1e-9)) "unknown attr default" 0.1
    (Stats.selectivity_eq s "nope")

let () =
  Alcotest.run "storage"
    [ ("oid", [ tc "allocator" test_oid_allocator ]);
      ("vorder", [ tc "ordering" test_vorder ]);
      ( "tuple",
        [ tc "descriptor" test_tuple_descriptor; tc "make" test_tuple_make ] );
      ("heap", [ tc "operations" test_heap ]);
      ( "indexes",
        [ tc "hash" test_index_hash; tc "btree" test_index_btree ] );
      ( "table",
        [ tc "basics" test_table_basic;
          tc "index agreement" test_table_index_agreement;
          tc "range" test_table_range;
          tc "index maintenance" test_table_index_maintained ] );
      qsuite "table-props" [ table_lookup_prop ];
      ( "store-snapshot",
        [ tc "store" test_store;
          tc "snapshot roundtrip" test_snapshot_roundtrip;
          tc "snapshot garbage" test_snapshot_garbage ] );
      ("stats", [ tc "analyze" test_stats ]) ]
