(* Tests for the Gaea kernel: schema, concepts, templates, processes,
   tasks, execution, derivation, lineage, experiments, figures and the
   file-based baseline. *)

open Gaea_core
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Box = Gaea_geo.Box
module Abstime = Gaea_geo.Abstime
module Image = Gaea_raster.Image
module Pixel = Gaea_raster.Pixel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Gaea_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_define () =
  let cls =
    ok
      (Schema.define ~name:"landcover"
         ~attributes:
           [ ("area", Vtype.String); ("data", Vtype.Image);
             ("spatialextent", Vtype.Box); ("timestamp", Vtype.Abstime) ]
         ~derived_by:"classify" ())
  in
  (* conventional extent attributes are picked up automatically *)
  check_bool "spatial found" true (cls.Schema.spatial_attr = Some "spatialextent");
  check_bool "temporal found" true (cls.Schema.temporal_attr = Some "timestamp");
  check_bool "derived" true (Schema.is_derived cls);
  check_bool "derived_by" true (Schema.derived_by cls = Some "classify");
  check_bool "attr type" true (Schema.attr_type cls "data" = Some Vtype.Image);
  Alcotest.(check (list string)) "attr names"
    [ "area"; "data"; "spatialextent"; "timestamp" ]
    (Schema.attr_names cls)

let test_schema_validation () =
  check_bool "empty name" true
    (Result.is_error (Schema.define ~name:"" ~attributes:[ ("a", Vtype.Int) ] ()));
  check_bool "no attrs" true
    (Result.is_error (Schema.define ~name:"x" ~attributes:[] ()));
  check_bool "dup attrs" true
    (Result.is_error
       (Schema.define ~name:"x"
          ~attributes:[ ("a", Vtype.Int); ("a", Vtype.Int) ] ()));
  check_bool "bad spatial type" true
    (Result.is_error
       (Schema.define ~name:"x" ~attributes:[ ("s", Vtype.Int) ] ~spatial:"s" ()));
  check_bool "missing spatial attr" true
    (Result.is_error
       (Schema.define ~name:"x" ~attributes:[ ("a", Vtype.Int) ] ~spatial:"s" ()))

let test_schema_pp () =
  let cls =
    ok
      (Schema.define ~name:"c"
         ~attributes:[ ("data", Vtype.Image); ("timestamp", Vtype.Abstime) ]
         ())
  in
  let s = Format.asprintf "%a" Schema.pp cls in
  check_bool "mentions CLASS" true
    (String.length s > 10 && String.sub s 0 7 = "CLASS c")

(* ------------------------------------------------------------------ *)
(* Concept                                                             *)
(* ------------------------------------------------------------------ *)

let test_concept_dag () =
  let c = Concept.create () in
  let _ = ok (Concept.define c ~name:"Desert" ()) in
  let _ = ok (Concept.define c ~name:"Hot" ~members:[ "c2"; "c3" ] ()) in
  let _ = ok (Concept.define c ~name:"Cold" ~members:[ "c9" ] ()) in
  ok (Concept.add_isa c ~sub:"Hot" ~super:"Desert");
  ok (Concept.add_isa c ~sub:"Cold" ~super:"Desert");
  Alcotest.(check (list string)) "children" [ "Cold"; "Hot" ]
    (Concept.children c "Desert");
  Alcotest.(check (list string)) "ancestors" [ "Desert" ] (Concept.ancestors c "Hot");
  Alcotest.(check (list string)) "descendants" [ "Cold"; "Hot" ]
    (Concept.descendants c "Desert");
  Alcotest.(check (list string)) "leaves" [ "Cold"; "Hot" ]
    (Concept.leaves c "Desert");
  (* concept query reaches member classes of all descendants *)
  Alcotest.(check (list string)) "classes_of" [ "c2"; "c3"; "c9" ]
    (Concept.classes_of c "Desert");
  Alcotest.(check (list string)) "concepts_of_class" [ "Hot" ]
    (Concept.concepts_of_class c "c2")

let test_concept_validation () =
  let c = Concept.create () in
  let _ = ok (Concept.define c ~name:"A" ()) in
  let _ = ok (Concept.define c ~name:"B" ()) in
  check_bool "dup" true (Result.is_error (Concept.define c ~name:"A" ()));
  check_bool "self loop" true
    (Result.is_error (Concept.add_isa c ~sub:"A" ~super:"A"));
  ok (Concept.add_isa c ~sub:"A" ~super:"B");
  check_bool "dup edge" true
    (Result.is_error (Concept.add_isa c ~sub:"A" ~super:"B"));
  check_bool "cycle" true (Result.is_error (Concept.add_isa c ~sub:"B" ~super:"A"));
  check_bool "unknown" true
    (Result.is_error (Concept.add_isa c ~sub:"A" ~super:"Z"));
  ok (Concept.add_member c ~concept:"A" "cls1");
  check_bool "member added" true
    ((Option.get (Concept.find c "A")).Concept.members = [ "cls1" ])

let test_concept_diamond () =
  (* DAG, not tree: one concept under two parents *)
  let c = Concept.create () in
  List.iter (fun n -> ignore (ok (Concept.define c ~name:n ())))
    [ "Top"; "Left"; "Right"; "Bottom" ];
  ok (Concept.add_isa c ~sub:"Left" ~super:"Top");
  ok (Concept.add_isa c ~sub:"Right" ~super:"Top");
  ok (Concept.add_isa c ~sub:"Bottom" ~super:"Left");
  ok (Concept.add_isa c ~sub:"Bottom" ~super:"Right");
  Alcotest.(check (list string)) "both parents" [ "Left"; "Right" ]
    (Concept.parents c "Bottom");
  Alcotest.(check (list string)) "ancestors dedup" [ "Left"; "Right"; "Top" ]
    (Concept.ancestors c "Bottom")

(* ------------------------------------------------------------------ *)
(* Kernel: classes, objects, processes                                 *)
(* ------------------------------------------------------------------ *)

let simple_kernel () =
  let k = Kernel.create () in
  let src =
    ok
      (Schema.define ~name:"src"
         ~attributes:
           [ ("tag", Vtype.Int); ("data", Vtype.Image);
             ("spatialextent", Vtype.Box); ("timestamp", Vtype.Abstime) ]
         ())
  in
  ok (Kernel.define_class k src);
  let out =
    ok
      (Schema.define ~name:"out"
         ~attributes:
           [ ("data", Vtype.Image); ("spatialextent", Vtype.Box);
             ("timestamp", Vtype.Abstime) ]
         ~derived_by:"negate" ())
  in
  ok (Kernel.define_class k out);
  let open Template in
  let proc =
    ok
      (Process.define_primitive ~name:"negate" ~output_class:"out"
         ~args:[ Process.scalar_arg "x" "src" ]
         ~template:
           (make ~assertions:[]
              ~mappings:
                [ { target = "data";
                    rhs = Apply ("img_scale", [ Const (Value.float (-1.)); Attr_of ("x", "data") ]) };
                  { target = "spatialextent"; rhs = Attr_of ("x", "spatialextent") };
                  { target = "timestamp"; rhs = Attr_of ("x", "timestamp") } ])
         ())
  in
  ok (Kernel.define_process k proc);
  k

let insert_src k tag v =
  ok
    (Kernel.insert_object k ~cls:"src"
       [ ("tag", Value.int tag);
         ("data", Value.image (Image.of_array ~nrow:1 ~ncol:2 Pixel.Float8 [| v; v +. 1. |]));
         ("spatialextent", Value.box (Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.));
         ("timestamp", Value.abstime (Abstime.of_ymd 1986 1 1)) ])

let test_kernel_objects () =
  let k = simple_kernel () in
  let oid = insert_src k 7 1.5 in
  check_bool "attr" true (Kernel.object_attr k ~cls:"src" oid "tag" = Some (Value.int 7));
  check_bool "class of object" true (Kernel.class_of_object k oid = Some "src");
  check_int "count" 1 (Kernel.count_objects k "src");
  Alcotest.(check (list int)) "objects" [ oid ] (Kernel.objects_of_class k "src");
  (* validation *)
  check_bool "missing attr" true
    (Result.is_error (Kernel.insert_object k ~cls:"src" [ ("tag", Value.int 1) ]));
  check_bool "unknown attr" true
    (Result.is_error
       (Kernel.insert_object k ~cls:"src"
          [ ("tag", Value.int 1); ("data", Value.int 2); ("spatialextent", Value.int 3);
            ("timestamp", Value.int 4); ("zzz", Value.int 5) ]));
  check_bool "unknown class" true
    (Result.is_error (Kernel.insert_object k ~cls:"nope" []));
  check_bool "delete" true (Result.is_ok (Kernel.delete_object k ~cls:"src" oid));
  check_int "deleted" 0 (Kernel.count_objects k "src")

let test_kernel_duplicate_definitions () =
  let k = simple_kernel () in
  let dup = ok (Schema.define ~name:"src" ~attributes:[ ("a", Vtype.Int) ] ()) in
  check_bool "dup class" true (Result.is_error (Kernel.define_class k dup));
  let proc2 =
    ok
      (Process.define_primitive ~name:"negate" ~output_class:"out"
         ~args:[ Process.scalar_arg "x" "src" ]
         ~template:(Template.make ~assertions:[] ~mappings:[])
         ())
  in
  check_bool "dup process version" true (Result.is_error (Kernel.define_process k proc2))

let test_kernel_execute_process () =
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let task = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  check_int "one output" 1 (List.length task.Task.outputs);
  let out = List.hd task.Task.outputs in
  (match Kernel.object_attr k ~cls:"out" out "data" with
   | Some (Value.VImage img) ->
     Alcotest.(check (float 0.)) "negated" (-2.) (Image.get img 0 0)
   | _ -> Alcotest.fail "no data");
  check_int "executions counter" 1 (Kernel.counters k).Kernel.executions;
  check_int "pixels counter" 2 (Kernel.counters k).Kernel.pixels_processed;
  check_int "clock advanced" 1 (Kernel.clock k);
  (* task bookkeeping *)
  check_bool "task producing" true (Kernel.task_producing k out = Some task);
  check_bool "task using" true (Kernel.tasks_using k oid = [ task ]);
  check_bool "find task" true (Kernel.find_task k task.Task.task_id = Some task)

let test_kernel_execute_validation () =
  let k = simple_kernel () in
  let proc = Option.get (Kernel.find_process k "negate") in
  check_bool "unbound arg" true
    (Result.is_error (Kernel.execute_process k proc ~inputs:[]));
  check_bool "cardinality" true
    (Result.is_error (Kernel.execute_process k proc ~inputs:[ ("x", []) ]));
  let o1 = insert_src k 1 1. and o2 = insert_src k 2 2. in
  check_bool "too many for scalar" true
    (Result.is_error (Kernel.execute_process k proc ~inputs:[ ("x", [ o1; o2 ]) ]))

let test_kernel_recompute () =
  let k = simple_kernel () in
  let oid = insert_src k 1 3.5 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let task = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  let pairs = ok (Kernel.recompute_task k task) in
  check_bool "recomputed data matches stored" true
    (List.for_all
       (fun (attr, v) ->
         Kernel.object_attr k ~cls:"out" (List.hd task.Task.outputs) attr
         = Some v)
       pairs)

(* ------------------------------------------------------------------ *)
(* Derived-object result cache                                         *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_and_counters () =
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let t1 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  let t2 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  check_int "same task returned" t1.Task.task_id t2.Task.task_id;
  check_int "executed once" 1 (Kernel.counters k).Kernel.executions;
  check_int "one hit" 1 (Kernel.counters k).Kernel.cache_hits;
  check_int "one miss" 1 (Kernel.counters k).Kernel.cache_misses;
  check_int "no duplicate output object" 1 (Kernel.count_objects k "out");
  check_int "one live entry" 1 (Kernel.cache_stats k).Kernel.entries;
  (* a different input binding is a different key *)
  let oid2 = insert_src k 2 5.0 in
  let t3 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid2 ]) ]) in
  check_bool "distinct task for distinct input" true
    (t3.Task.task_id <> t1.Task.task_id);
  check_int "second miss" 2 (Kernel.counters k).Kernel.cache_misses;
  (* clear_cache forgets everything *)
  Kernel.clear_cache k;
  check_int "cleared" 0 (Kernel.cache_stats k).Kernel.entries;
  let t4 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  check_bool "recomputes after clear" true (t4.Task.task_id <> t1.Task.task_id)

let test_cache_invalidated_by_new_version () =
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let v1 = Option.get (Kernel.find_process k "negate") in
  let t1 = ok (Kernel.execute_process k v1 ~inputs:[ ("x", [ oid ]) ]) in
  (* registering a new version drops the old version's entries too: the
     process was edited, so its memoized derivations are suspect *)
  let v2 = ok (Process.edit v1 ~name:"negate" ~doc:"sharpened" ()) in
  ok (Kernel.define_process k v2);
  check_int "entry dropped" 0 (Kernel.cache_stats k).Kernel.entries;
  check_bool "invalidation counted" true
    ((Kernel.cache_stats k).Kernel.invalidations >= 1);
  let t1' = ok (Kernel.execute_process k v1 ~inputs:[ ("x", [ oid ]) ]) in
  check_bool "recomputed as a fresh task" true
    (t1'.Task.task_id <> t1.Task.task_id);
  check_int "two executions" 2 (Kernel.counters k).Kernel.executions

let test_cache_invalidated_by_delete () =
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let t1 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  let out = List.hd t1.Task.outputs in
  check_bool "output deleted" true
    (Result.is_ok (Kernel.delete_object k ~cls:"out" out));
  let t2 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  check_bool "recomputed after output deletion" true
    (t2.Task.task_id <> t1.Task.task_id);
  check_int "object rematerialized" 1 (Kernel.count_objects k "out");
  (* deleting an input drops the entry that read it *)
  check_int "one live entry" 1 (Kernel.cache_stats k).Kernel.entries;
  check_bool "input deleted" true
    (Result.is_ok (Kernel.delete_object k ~cls:"src" oid));
  check_int "entry dropped with its input" 0
    (Kernel.cache_stats k).Kernel.entries

let test_cache_fig3_repeated_derive () =
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  let _ = ok (Figures.load_tm_bands k ~seed:7 ~nrow:16 ~ncol:16 ()) in
  let p = Option.get (Kernel.find_process k Figures.p20_name) in
  let binding =
    ok
      (Kernel.find_binding k p
         ~available:
           [ ( Figures.landsat_class,
               Kernel.objects_of_class k Figures.landsat_class ) ])
  in
  let t1 = ok (Kernel.execute_process k p ~inputs:binding) in
  let t2 = ok (Kernel.execute_process k p ~inputs:binding) in
  check_int "second DERIVE served from cache" t1.Task.task_id t2.Task.task_id;
  check_int "classified once" 1 (Kernel.counters k).Kernel.executions;
  check_bool "hit recorded" true ((Kernel.counters k).Kernel.cache_hits > 0);
  check_int "one land_cover object" 1
    (Kernel.count_objects k Figures.land_cover_class)

(* ------------------------------------------------------------------ *)
(* Process versioning                                                  *)
(* ------------------------------------------------------------------ *)

let test_process_edit_versioning () =
  let k = simple_kernel () in
  let v1 = Option.get (Kernel.find_process k "negate") in
  (* edit under the same name: version 2, original retained *)
  let v2 = ok (Process.edit v1 ~name:"negate" ~doc:"sharpened" ()) in
  ok (Kernel.define_process k v2);
  check_int "two versions" 2 (List.length (Kernel.process_versions k "negate"));
  check_bool "latest is v2" true
    ((Option.get (Kernel.find_process k "negate")).Process.version = 2);
  check_bool "v1 still there" true
    (Kernel.find_process k ~version:1 "negate" <> None);
  check_bool "derived_from recorded" true
    (v2.Process.derived_from = Some ("negate", 1));
  (* edit under a new name: version 1 of the new process *)
  let renamed = ok (Process.edit v1 ~name:"negate-strict" ()) in
  check_int "fresh version" 1 renamed.Process.version;
  check_bool "origin recorded" true
    (renamed.Process.derived_from = Some ("negate", 1))

let test_process_validation () =
  check_bool "no args" true
    (Result.is_error
       (Process.define_primitive ~name:"p" ~output_class:"o" ~args:[]
          ~template:(Template.make ~assertions:[] ~mappings:[]) ()));
  check_bool "unbound param" true
    (Result.is_error
       (Process.define_primitive ~name:"p" ~output_class:"o"
          ~args:[ Process.scalar_arg "x" "c" ]
          ~template:
            (Template.make ~assertions:[]
               ~mappings:[ { Template.target = "a"; rhs = Template.Param "k" } ])
          ()));
  check_bool "undeclared arg in template" true
    (Result.is_error
       (Process.define_primitive ~name:"p" ~output_class:"o"
          ~args:[ Process.scalar_arg "x" "c" ]
          ~template:
            (Template.make ~assertions:[]
               ~mappings:
                 [ { Template.target = "a"; rhs = Template.Attr_of ("y", "b") } ])
          ()));
  check_bool "compound step ref" true
    (Result.is_error
       (Process.define_compound ~name:"p" ~output_class:"o"
          ~args:[ Process.setof_arg "x" "c" ]
          ~steps:
            [ { Process.step_process = "sub";
                step_inputs = [ ("a", Process.From_step 0) ] } ]
          ()))

(* ------------------------------------------------------------------ *)
(* Task serialization                                                  *)
(* ------------------------------------------------------------------ *)

let test_task_sexp_roundtrip () =
  let task =
    { Task.task_id = 42; process = "p20"; process_version = 3;
      inputs = [ ("bands", [ 1; 2; 3 ]); ("mask", [ 9 ]) ];
      params = [ ("k", Value.int 12); ("cutoff", Value.float 2.5) ];
      outputs = [ 100 ]; output_class = "land_cover"; clock = 17 }
  in
  match Task.of_sexp (Task.to_sexp task) with
  | Ok t' ->
    check_int "id" task.Task.task_id t'.Task.task_id;
    check_bool "inputs" true (t'.Task.inputs = task.Task.inputs);
    check_bool "params" true
      (List.for_all2
         (fun (n1, v1) (n2, v2) -> n1 = n2 && Value.equal v1 v2)
         task.Task.params t'.Task.params);
    check_str "class" task.Task.output_class t'.Task.output_class
  | Error e -> Alcotest.failf "roundtrip: %s" (Gaea_error.to_string e)

(* ------------------------------------------------------------------ *)
(* find_binding                                                        *)
(* ------------------------------------------------------------------ *)

let test_find_binding_permutation () =
  (* two args of one class distinguished only by an assertion: binding
     search must try permutations (the NDVI red/nir situation) *)
  let k = Kernel.create () in
  let cls =
    ok (Schema.define ~name:"band" ~attributes:[ ("channel", Vtype.Int) ] ())
  in
  ok (Kernel.define_class k cls);
  let out = ok (Schema.define ~name:"o" ~attributes:[ ("z", Vtype.Int) ] ()) in
  ok (Kernel.define_class k out);
  let open Template in
  let chan arg n =
    Expr_true (Apply ("eq", [ Attr_of (arg, "channel"); Const (Value.int n) ]))
  in
  let proc =
    ok
      (Process.define_primitive ~name:"combine" ~output_class:"o"
         ~args:[ Process.scalar_arg "red" "band"; Process.scalar_arg "nir" "band" ]
         ~template:
           (make
              ~assertions:[ chan "red" 1; chan "nir" 2 ]
              ~mappings:[ { target = "z"; rhs = Const (Value.int 0) } ])
         ())
  in
  ok (Kernel.define_process k proc);
  (* insert in the "wrong" order so the naive assignment fails *)
  let nir = ok (Kernel.insert_object k ~cls:"band" [ ("channel", Value.int 2) ]) in
  let red = ok (Kernel.insert_object k ~cls:"band" [ ("channel", Value.int 1) ]) in
  let binding = ok (Kernel.find_binding k proc ~available:[ ("band", [ nir; red ]) ]) in
  check_bool "red bound to channel-1 object" true
    (List.assoc "red" binding = [ red ]);
  check_bool "nir bound to channel-2 object" true
    (List.assoc "nir" binding = [ nir ]);
  (* exclusion: the only valid binding excluded -> error *)
  check_bool "exclusion respected" true
    (Result.is_error
       (Kernel.find_binding k ~exclude:[ binding ] proc
          ~available:[ ("band", [ nir; red ]) ]))

(* ------------------------------------------------------------------ *)
(* Derivation: Fig 3 end-to-end + request_at                           *)
(* ------------------------------------------------------------------ *)

let test_fig3_end_to_end () =
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  let oids = ok (Figures.load_tm_bands k ~seed:7 ~nrow:32 ~ncol:32 ()) in
  check_int "3 bands" 3 (List.length oids);
  let outcome = ok (Derivation.request k Figures.land_cover_class) in
  check_int "one object" 1 (List.length outcome.Derivation.objects);
  check_int "one task" 1 (List.length outcome.Derivation.new_tasks);
  let oid = List.hd outcome.Derivation.objects in
  check_bool "acyclic" true (Lineage.is_acyclic k);
  check_bool "reproducible" true (ok (Lineage.verify_object k oid));
  (* 12 land-cover classes as the process requires *)
  (match Kernel.object_attr k ~cls:Figures.land_cover_class oid "numclass" with
   | Some (Value.VInt 12) -> ()
   | _ -> Alcotest.fail "numclass not mapped");
  (* second request retrieves *)
  let again = ok (Derivation.request k Figures.land_cover_class) in
  check_int "no recompute" 0 (List.length again.Derivation.new_tasks)

let test_fig3_guard_rejects_mismatched_extents () =
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  (* two bands here, one band with a disjoint extent: card(bands)=3
     can only be met with the mismatched band, so assertions fail *)
  let far =
    Gaea_geo.Extent.make
      (Box.make ~xmin:100. ~ymin:100. ~xmax:110. ~ymax:110.)
      (Gaea_geo.Interval.instant (Abstime.of_ymd 1986 1 15))
  in
  let _ = ok (Figures.load_tm_bands k ~seed:1 ~nrow:8 ~ncol:8 ~n_bands:2 ()) in
  let _ =
    ok (Figures.load_tm_bands k ~seed:2 ~nrow:8 ~ncol:8 ~n_bands:1 ~extent:far ())
  in
  match Derivation.request k Figures.land_cover_class with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "guard should have rejected disjoint extents"

let test_derivation_need_two_distinct () =
  let k = Kernel.create () in
  ok (Figures.install_vegetation k);
  let _ = ok (Figures.load_avhrr_year k ~seed:1 ~year:1988 ()) in
  let _ = ok (Figures.load_avhrr_year k ~seed:2 ~year:1989 ~vegetation_shift:0.2 ()) in
  let outcome = ok (Derivation.request ~need:2 k Figures.ndvi_class) in
  check_int "two objects" 2
    (List.length (List.sort_uniq compare outcome.Derivation.objects));
  check_int "two tasks" 2 (List.length outcome.Derivation.new_tasks);
  (* the two NDVI maps must come from different years *)
  let times =
    List.filter_map
      (fun oid -> Kernel.object_attr k ~cls:Figures.ndvi_class oid "timestamp")
      outcome.Derivation.objects
  in
  check_int "distinct timestamps" 2
    (List.length (List.sort_uniq compare (List.map Value.to_display times)))

let test_request_at_interpolation () =
  let k = simple_kernel () in
  (* src snapshots at Jan 1 and Jan 11; ask for Jan 6 *)
  let mk tag day v =
    ok
      (Kernel.insert_object k ~cls:"src"
         [ ("tag", Value.int tag);
           ("data", Value.image (Image.of_array ~nrow:1 ~ncol:1 Pixel.Float8 [| v |]));
           ("spatialextent", Value.box (Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.));
           ("timestamp", Value.abstime (Abstime.of_ymd 1986 1 day)) ])
  in
  let _ = mk 1 1 10. and _ = mk 2 11 20. in
  let outcome =
    ok (Derivation.request_at k ~cls:"src" ~at:(Abstime.of_ymd 1986 1 6) ())
  in
  let oid = List.hd outcome.Derivation.objects in
  (match Kernel.object_attr k ~cls:"src" oid "data" with
   | Some (Value.VImage img) ->
     Alcotest.(check (float 1e-9)) "midpoint" 15. (Image.get img 0 0)
   | _ -> Alcotest.fail "no data");
  check_int "interpolation counted" 1 (Kernel.counters k).Kernel.interpolations;
  (* the interpolation task is recorded and reproducible *)
  check_int "one task" 1 (List.length outcome.Derivation.new_tasks);
  let task = List.hd outcome.Derivation.new_tasks in
  check_str "generic process" Derivation.interpolation_process_name task.Task.process;
  check_bool "interp task reproducible" true (ok (Lineage.verify_task k task));
  (* direct hit afterwards: no new task *)
  let again =
    ok (Derivation.request_at k ~cls:"src" ~at:(Abstime.of_ymd 1986 1 6) ())
  in
  check_int "retrieved" 0 (List.length again.Derivation.new_tasks)

let test_request_at_retrieves_exact () =
  let k = simple_kernel () in
  let oid = insert_src k 1 5. in
  let outcome =
    ok (Derivation.request_at k ~cls:"src" ~at:(Abstime.of_ymd 1986 1 1) ())
  in
  Alcotest.(check (list int)) "exact hit" [ oid ] outcome.Derivation.objects

let test_request_at_no_data () =
  let k = simple_kernel () in
  check_bool "no snapshots" true
    (Result.is_error
       (Derivation.request_at k ~cls:"src" ~at:(Abstime.of_ymd 1986 1 1) ()))

let test_derivation_failure_reported () =
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  (* no TM data at all *)
  (match Derivation.request k Figures.land_cover_class with
   | Error e ->
     check_bool "mentions class" true
       (String.length (Gaea_error.to_string e) > 0)
   | Ok _ -> Alcotest.fail "should fail");
  check_bool "derivable is false" false
    (Derivation.derivable k Figures.land_cover_class)

(* ------------------------------------------------------------------ *)
(* Lineage                                                             *)
(* ------------------------------------------------------------------ *)

let veg_kernel () =
  let k = Kernel.create () in
  ok (Figures.install_vegetation k);
  let _ = ok (Figures.load_avhrr_year k ~seed:1 ~year:1988 ()) in
  let _ = ok (Figures.load_avhrr_year k ~seed:2 ~year:1989 ~vegetation_shift:0.2 ()) in
  let _ = ok (Derivation.request ~need:2 k Figures.ndvi_class) in
  let run name =
    let p = Option.get (Kernel.find_process k name) in
    let binding =
      ok
        (Kernel.find_binding k p
           ~available:
             [ (Figures.ndvi_class, Kernel.objects_of_class k Figures.ndvi_class) ])
    in
    List.hd (ok (Kernel.execute_process k p ~inputs:binding)).Task.outputs
  in
  (k, run Figures.p_change_sub, run Figures.p_change_div)

let test_lineage_ancestors () =
  let k, by_sub, _ = veg_kernel () in
  let ancestors = Lineage.ancestors k by_sub in
  (* 2 NDVI maps + 4 AVHRR bands *)
  check_int "six ancestors" 6 (List.length ancestors);
  let bases = Lineage.base_inputs k by_sub in
  check_int "four base inputs" 4 (List.length bases);
  (* every base input is an AVHRR band *)
  check_bool "all avhrr" true
    (List.for_all
       (fun oid -> Kernel.class_of_object k oid = Some Figures.avhrr_class)
       bases);
  (* descendants of a base band include the change map *)
  let desc = Lineage.descendants k (List.hd bases) in
  check_bool "descends to change" true (List.mem by_sub desc)

let test_lineage_signatures () =
  let k, by_sub, by_div = veg_kernel () in
  check_bool "different derivations" false (Lineage.same_derivation k by_sub by_div);
  let report = Lineage.compare_derivations k by_sub by_div in
  check_bool "explains difference" true
    (String.length report > 40);
  (* two objects derived identically share the signature *)
  let p = Option.get (Kernel.find_process k Figures.p_change_sub) in
  let binding =
    ok
      (Kernel.find_binding k p
         ~available:
           [ (Figures.ndvi_class, Kernel.objects_of_class k Figures.ndvi_class) ])
  in
  let again = List.hd (ok (Kernel.execute_process k p ~inputs:binding)).Task.outputs in
  check_bool "same derivation" true (Lineage.same_derivation k by_sub again)

let test_lineage_tree_and_explain () =
  let k, by_sub, _ = veg_kernel () in
  let tree = Lineage.derivation_tree k by_sub in
  check_bool "has producing task" true (tree.Lineage.via <> None);
  let explain = Lineage.explain k by_sub in
  check_bool "mentions base data" true
    (String.length explain > 50);
  check_bool "acyclic" true (Lineage.is_acyclic k)

let test_lineage_verify_detects_change () =
  (* verify_object fails once a direct input of the producing task is
     gone: the recorded derivation can no longer be recomputed *)
  let k, by_sub, _ = veg_kernel () in
  check_bool "verifies before" true (ok (Lineage.verify_object k by_sub));
  let task = Option.get (Kernel.task_producing k by_sub) in
  let direct_input = List.hd (Task.input_oids task) in
  ignore (Kernel.delete_object k ~cls:Figures.ndvi_class direct_input);
  check_bool "verification now errors" true
    (Result.is_error (Lineage.verify_object k by_sub));
  (* deleting a grandparent does NOT break the direct recomputation:
     the task's own inputs are still stored *)
  let k2, by_sub2, _ = veg_kernel () in
  let base = List.hd (Lineage.base_inputs k2 by_sub2) in
  ignore (Kernel.delete_object k2 ~cls:Figures.avhrr_class base);
  check_bool "still verifies from direct inputs" true
    (ok (Lineage.verify_object k2 by_sub2))

(* ------------------------------------------------------------------ *)
(* Experiment                                                          *)
(* ------------------------------------------------------------------ *)

let test_experiment_reproduce () =
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  let _ = ok (Figures.load_tm_bands k ~seed:3 ~nrow:16 ~ncol:16 ()) in
  let m = Experiment.create_manager () in
  ok (Experiment.begin_experiment m ~name:"e1" ~doc:"land cover 1986" ());
  let outcome = ok (Derivation.request k Figures.land_cover_class) in
  List.iter
    (fun t -> ok (Experiment.record_task m ~experiment:"e1" t.Task.task_id))
    outcome.Derivation.new_tasks;
  ok (Experiment.add_note m ~experiment:"e1" "first classification");
  ok (Experiment.add_concept m ~experiment:"e1" "LandCover");
  let r = ok (Experiment.reproduce m k ~experiment:"e1") in
  check_int "total" 1 r.Experiment.total;
  check_int "reproduced" 1 r.Experiment.reproduced;
  check_bool "no failures" true (r.Experiment.failures = []);
  let report = ok (Experiment.report m k ~experiment:"e1") in
  check_bool "report text" true (String.length report > 40);
  check_bool "dup experiment" true
    (Result.is_error (Experiment.begin_experiment m ~name:"e1" ()));
  check_bool "unknown experiment" true
    (Result.is_error (Experiment.reproduce m k ~experiment:"zzz"))

(* ------------------------------------------------------------------ *)
(* Figures: full schema / Fig 5                                        *)
(* ------------------------------------------------------------------ *)

let test_install_all () =
  let k = Kernel.create () in
  ok (Figures.install_all k);
  check_int "nine classes" 9 (List.length (Kernel.classes k));
  check_bool "has concepts" true
    (List.length (Concept.all (Kernel.concepts k)) >= 5);
  (* the net mirrors the schema *)
  let view = Kernel.derivation_net k in
  check_int "places = classes" 9
    (Gaea_petri.Net.n_places view.Kernel.net);
  check_bool "has transitions" true
    (Gaea_petri.Net.n_transitions view.Kernel.net >= 7)

let test_fig5_compound () =
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  ok (Figures.install_fig5 k);
  let _ = ok (Figures.load_tm_bands k ~seed:10 ~nrow:16 ~ncol:16 ()) in
  let compound = Option.get (Kernel.find_process k Figures.p_land_change) in
  check_bool "is compound" true (Process.is_compound compound);
  let bands = Kernel.objects_of_class k Figures.landsat_class in
  let task =
    ok
      (Kernel.execute_process k compound
         ~inputs:[ ("bands", [ List.nth bands 0; List.nth bands 1 ]) ])
  in
  (* compound expansion recorded one task per primitive step *)
  check_int "two tasks recorded" 2 (List.length (Kernel.tasks k));
  check_str "final task is the classification step" Figures.p_classify_change
    task.Task.process;
  (* the intermediate change image exists *)
  check_int "intermediate stored" 1
    (Kernel.count_objects k Figures.change_image_class);
  check_bool "result reproducible" true
    (ok (Lineage.verify_object k (List.hd task.Task.outputs)))

let test_desert_parameters_differ () =
  let k = Kernel.create () in
  ok (Figures.install_deserts k);
  let rain = ok (Figures.load_rainfall k ~seed:5 ~nrow:16 ~ncol:16 ()) in
  let run name =
    let p = Option.get (Kernel.find_process k name) in
    List.hd (ok (Kernel.execute_process k p ~inputs:[ ("rain", [ rain ]) ])).Task.outputs
  in
  let d250 = run Figures.p_desert_250 in
  let d200 = run Figures.p_desert_200 in
  check_bool "different signatures" false (Lineage.same_derivation k d250 d200);
  (* 200mm mask is a subset of the 250mm mask *)
  let img oid =
    match Kernel.object_attr k ~cls:Figures.desert_class oid "data" with
    | Some (Value.VImage i) -> i
    | _ -> Alcotest.fail "no mask"
  in
  let m250 = img d250 and m200 = img d200 in
  let subset = ref true in
  for i = 0 to Image.size m200 - 1 do
    if Image.get_linear m200 i = 1. && Image.get_linear m250 i <> 1. then
      subset := false
  done;
  check_bool "200mm subset of 250mm" true !subset

(* ------------------------------------------------------------------ *)
(* File-based baseline                                                 *)
(* ------------------------------------------------------------------ *)

let test_filebased_shortcomings () =
  let fb = Filebased.create () in
  let img = Image.of_array ~nrow:2 ~ncol:2 Pixel.Float8 [| 1.; 2.; 3.; 4. |] in
  Filebased.save fb ~name:"ndvi88" img;
  check_int "one file" 1 (Filebased.file_count fb);
  (* silent overwrite *)
  Filebased.save fb ~name:"ndvi88" (Gaea_raster.Band_math.scale 2. img);
  check_int "overwrite counted" 1 (Filebased.stats fb).Filebased.overwrites;
  (* scientist a computes; scientist b cannot know what the file means
     and recomputes *)
  let work imgs = Gaea_raster.Band_math.scale 3. (List.hd imgs) in
  let _ = ok (Filebased.run_analysis fb ~scientist:"a" ~output:"r" ~inputs:[ "ndvi88" ] work) in
  check_int "computed once" 1 (Filebased.stats fb).Filebased.computations;
  let _ = ok (Filebased.run_analysis fb ~scientist:"b" ~output:"r" ~inputs:[ "ndvi88" ] work) in
  check_int "b recomputed" 2 (Filebased.stats fb).Filebased.computations;
  (* a remembers and reuses *)
  let _ = ok (Filebased.run_analysis fb ~scientist:"a" ~output:"r" ~inputs:[ "ndvi88" ] work) in
  check_int "a reused" 2 (Filebased.stats fb).Filebased.computations;
  check_bool "remembers" true (Filebased.remembers fb ~scientist:"a" "r");
  (* missing file *)
  check_bool "missing input" true
    (Result.is_error
       (Filebased.run_analysis fb ~scientist:"c" ~output:"x" ~inputs:[ "nope" ] work));
  check_int "failed recall counted" 1 (Filebased.stats fb).Filebased.failed_recalls


(* ------------------------------------------------------------------ *)
(* Persistence: the data-sharing roundtrip                             *)
(* ------------------------------------------------------------------ *)

let test_persist_roundtrip () =
  (* scientist A derives results; scientist B loads the export and can
     query, trace and REPRODUCE everything *)
  let k = Kernel.create () in
  ok (Figures.install_all k);
  let _ = ok (Figures.load_tm_bands k ~seed:7 ~nrow:16 ~ncol:16 ()) in
  let _ = ok (Figures.load_avhrr_year k ~seed:1 ~year:1988 ()) in
  let _ = ok (Figures.load_avhrr_year k ~seed:2 ~year:1989 ~vegetation_shift:0.2 ()) in
  let lc = ok (Derivation.request k Figures.land_cover_class) in
  let _ = ok (Derivation.request ~need:2 k Figures.ndvi_class) in
  let text = Persist.save k in
  match Persist.load text with
  | Error e -> Alcotest.failf "load: %s" (Gaea_error.to_string e)
  | Ok k2 ->
    check_int "classes restored" (List.length (Kernel.classes k))
      (List.length (Kernel.classes k2));
    check_int "processes restored"
      (List.length (Kernel.all_process_versions k))
      (List.length (Kernel.all_process_versions k2));
    check_int "tasks restored" (List.length (Kernel.tasks k))
      (List.length (Kernel.tasks k2));
    check_int "concepts restored"
      (List.length (Concept.all (Kernel.concepts k)))
      (List.length (Concept.all (Kernel.concepts k2)));
    (* the derived object is there with identical pixels *)
    let oid = List.hd lc.Derivation.objects in
    let img k =
      match Kernel.object_attr k ~cls:Figures.land_cover_class oid "data" with
      | Some (Value.VImage i) -> i
      | _ -> Alcotest.fail "no data"
    in
    check_bool "pixels identical" true (Image.equal (img k) (img k2));
    (* scientist B can verify A's derivations bit-for-bit *)
    check_bool "lineage intact" true
      (Kernel.task_producing k2 oid <> None);
    check_bool "reproduces in the loaded kernel" true
      (ok (Lineage.verify_object k2 oid));
    (* and continue working: new derivations get fresh ids *)
    let p = Option.get (Kernel.find_process k2 Figures.p_change_sub) in
    let binding =
      ok
        (Kernel.find_binding k2 p
           ~available:
             [ (Figures.ndvi_class, Kernel.objects_of_class k2 Figures.ndvi_class) ])
    in
    let task = ok (Kernel.execute_process k2 p ~inputs:binding) in
    check_bool "fresh task id" true
      (task.Task.task_id > List.length (Kernel.tasks k));
    check_bool "still acyclic" true (Lineage.is_acyclic k2)

let test_persist_versions_roundtrip () =
  let k = simple_kernel () in
  let v1 = Option.get (Kernel.find_process k "negate") in
  let v2 = ok (Process.edit v1 ~name:"negate" ()) in
  ok (Kernel.define_process k v2);
  match Persist.load (Persist.save k) with
  | Error e -> Alcotest.failf "load: %s" (Gaea_error.to_string e)
  | Ok k2 ->
    check_int "both versions" 2 (List.length (Kernel.process_versions k2 "negate"));
    check_bool "latest is v2" true
      ((Option.get (Kernel.find_process k2 "negate")).Process.version = 2)

let test_persist_garbage () =
  check_bool "garbage rejected" true (Result.is_error (Persist.load "(what)"));
  check_bool "empty ok" true (Result.is_ok (Persist.load ""))

(* ------------------------------------------------------------------ *)
(* Template corner cases                                               *)
(* ------------------------------------------------------------------ *)

let test_template_introspection () =
  let open Template in
  let t =
    make
      ~assertions:[ Card_eq ("bands", 3); Common_space "bands" ]
      ~mappings:
        [ { target = "data";
            rhs = Apply ("f", [ Attr_of ("bands", "data"); Param "k" ]) };
          { target = "n"; rhs = Param "k" };
          { target = "t"; rhs = Anyof (Attr_of ("other", "ts")) } ]
  in
  Alcotest.(check (list string)) "params" [ "k" ] (free_params t);
  Alcotest.(check (list string)) "args" [ "bands"; "other" ] (referenced_args t);
  check_bool "renders" true
    (String.length (Format.asprintf "%a" (pp ~output_class:"C20") t) > 50);
  check_str "assertion text" "card(bands) = 3"
    (assertion_to_string (Card_eq ("bands", 3)))

let () =
  Alcotest.run "core"
    [ ( "schema",
        [ tc "define" test_schema_define;
          tc "validation" test_schema_validation;
          tc "pp" test_schema_pp ] );
      ( "concept",
        [ tc "dag" test_concept_dag;
          tc "validation" test_concept_validation;
          tc "diamond" test_concept_diamond ] );
      ( "kernel",
        [ tc "objects" test_kernel_objects;
          tc "duplicate definitions" test_kernel_duplicate_definitions;
          tc "execute process" test_kernel_execute_process;
          tc "execute validation" test_kernel_execute_validation;
          tc "recompute" test_kernel_recompute ] );
      ( "cache",
        [ tc "hit + counters" test_cache_hit_and_counters;
          tc "new version invalidates" test_cache_invalidated_by_new_version;
          tc "delete invalidates" test_cache_invalidated_by_delete;
          tc "fig3 repeated derive" test_cache_fig3_repeated_derive ] );
      ( "process",
        [ tc "edit versioning" test_process_edit_versioning;
          tc "validation" test_process_validation ] );
      ("task", [ tc "sexp roundtrip" test_task_sexp_roundtrip ]);
      ("binding", [ tc "permutation + exclusion" test_find_binding_permutation ]);
      ( "derivation",
        [ tc "fig3 end-to-end" test_fig3_end_to_end;
          tc "guard rejects extents" test_fig3_guard_rejects_mismatched_extents;
          tc "need=2 distinct" test_derivation_need_two_distinct;
          tc "request_at interpolates" test_request_at_interpolation;
          tc "request_at exact hit" test_request_at_retrieves_exact;
          tc "request_at no data" test_request_at_no_data;
          tc "failure reported" test_derivation_failure_reported ] );
      ( "lineage",
        [ tc "ancestors" test_lineage_ancestors;
          tc "signatures" test_lineage_signatures;
          tc "tree and explain" test_lineage_tree_and_explain;
          tc "verify detects loss" test_lineage_verify_detects_change ] );
      ("experiment", [ tc "reproduce" test_experiment_reproduce ]);
      ( "figures",
        [ tc "install all" test_install_all;
          tc "fig5 compound" test_fig5_compound;
          tc "desert parameters" test_desert_parameters_differ ] );
      ("filebased", [ tc "shortcomings" test_filebased_shortcomings ]);
      ( "persist",
        [ tc "share-and-reproduce roundtrip" test_persist_roundtrip;
          tc "versions roundtrip" test_persist_versions_roundtrip;
          tc "garbage" test_persist_garbage ] );
      ("template", [ tc "introspection" test_template_introspection ]) ]
