(* Tests for the modified-Petri-net derivation diagrams: construction,
   the Gaea firing rules, reachability, backward chaining, analysis. *)

open Gaea_petri

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let fresh_counter start =
  let n = ref start in
  fun () ->
    incr n;
    !n

(* A linear chain: base --t01--> mid --t12--> goal *)
let chain_net () =
  let net = Net.create () in
  let base = Net.add_place net ~name:"base" in
  let mid = Net.add_place net ~name:"mid" in
  let goal = Net.add_place net ~name:"goal" in
  let t01 =
    Result.get_ok
      (Net.add_transition net ~name:"t01" ~inputs:[ (base, 1) ]
         ~outputs:[ mid ] ())
  in
  let t12 =
    Result.get_ok
      (Net.add_transition net ~name:"t12" ~inputs:[ (mid, 1) ]
         ~outputs:[ goal ] ())
  in
  (net, base, mid, goal, t01, t12)

(* ------------------------------------------------------------------ *)
(* Net construction                                                    *)
(* ------------------------------------------------------------------ *)

let test_net_build () =
  let net, base, mid, goal, t01, _ = chain_net () in
  check_int "places" 3 (Net.n_places net);
  check_int "transitions" 2 (Net.n_transitions net);
  Alcotest.(check string) "name" "base" (Net.place_name net base);
  Alcotest.(check string) "tname" "t01" (Net.transition_name net t01);
  check_int "producers of mid" 1 (List.length (Net.producers_of net mid));
  check_int "producers of base" 0 (List.length (Net.producers_of net base));
  check_int "consumers of mid" 1 (List.length (Net.consumers_of net mid));
  ignore goal

let test_net_validation () =
  let net = Net.create () in
  let p = Net.add_place net ~name:"p" in
  check_bool "no inputs" true
    (Result.is_error (Net.add_transition net ~name:"t" ~inputs:[] ~outputs:[ p ] ()));
  check_bool "no outputs" true
    (Result.is_error
       (Net.add_transition net ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[] ()));
  check_bool "zero threshold" true
    (Result.is_error
       (Net.add_transition net ~name:"t" ~inputs:[ (p, 0) ] ~outputs:[ p ] ()));
  check_bool "unknown place" true
    (Result.is_error
       (Net.add_transition net ~name:"t" ~inputs:[ (99, 1) ] ~outputs:[ p ] ()))

(* ------------------------------------------------------------------ *)
(* Marking                                                             *)
(* ------------------------------------------------------------------ *)

let test_marking () =
  let m = Marking.empty in
  check_int "empty" 0 (Marking.total_tokens m);
  let m = Marking.add m 0 5 in
  let m = Marking.add m 0 5 in
  (* idempotent *)
  check_int "idempotent add" 1 (Marking.count m 0);
  let m = Marking.add_all m 0 [ 6; 7 ] in
  check_int "three tokens" 3 (Marking.count m 0);
  Alcotest.(check (list int)) "sorted" [ 5; 6; 7 ] (Marking.tokens m 0);
  let m = Marking.remove m 0 6 in
  check_bool "removed" false (Marking.mem m 0 6);
  check_bool "kept" true (Marking.mem m 0 5);
  let m2 = Marking.of_list [ (0, [ 9 ]); (1, [ 1 ]) ] in
  let u = Marking.union m m2 in
  check_int "union place 0" 3 (Marking.count u 0);
  check_int "union place 1" 1 (Marking.count u 1);
  Alcotest.(check (list int)) "places" [ 0; 1 ] (Marking.places u)

(* ------------------------------------------------------------------ *)
(* Firing                                                              *)
(* ------------------------------------------------------------------ *)

let test_firing_threshold () =
  let net = Net.create () in
  let a = Net.add_place net ~name:"a" in
  let b = Net.add_place net ~name:"b" in
  let t =
    Result.get_ok
      (Net.add_transition net ~name:"t" ~inputs:[ (a, 2) ] ~outputs:[ b ] ())
  in
  let m1 = Marking.of_list [ (a, [ 1 ]) ] in
  check_bool "below threshold" false (Firing.enabled net m1 t);
  let m2 = Marking.of_list [ (a, [ 1; 2 ]) ] in
  check_bool "at threshold" true (Firing.enabled net m2 t);
  let m3 = Marking.of_list [ (a, [ 1; 2; 3 ]) ] in
  check_bool "above threshold (more tokens may be used)" true
    (Firing.enabled net m3 t)

let test_firing_non_consuming () =
  let net, base, mid, _, t01, _ = chain_net () in
  let m = Marking.of_list [ (base, [ 10 ]) ] in
  match Firing.fire net m t01 ~fresh:(fresh_counter 100) with
  | Error e -> Alcotest.failf "fire: %s" e
  | Ok (m', produced) ->
    (* the input token is STILL at its place: Gaea modification 1 *)
    check_bool "input kept" true (Marking.mem m' base 10);
    check_int "one produced" 1 (List.length produced);
    (match produced with
     | [ (p, tok) ] ->
       check_int "at mid" mid p;
       check_int "fresh token" 101 tok;
       check_bool "marked" true (Marking.mem m' mid tok)
     | _ -> Alcotest.fail "unexpected production")

let test_firing_guard () =
  let net = Net.create () in
  let a = Net.add_place net ~name:"a" in
  let b = Net.add_place net ~name:"b" in
  (* guard: accepts only even tokens *)
  let guard binding =
    List.for_all
      (fun (_, toks) -> List.for_all (fun tok -> tok mod 2 = 0) toks)
      binding
  in
  let t =
    Result.get_ok
      (Net.add_transition net ~name:"t" ~inputs:[ (a, 1) ] ~outputs:[ b ]
         ~guard ())
  in
  let odd = Marking.of_list [ (a, [ 3 ]) ] in
  check_bool "guard rejects" false (Firing.enabled net odd t);
  (match Firing.fire net odd t ~fresh:(fresh_counter 0) with
   | Error e -> check_bool "guard error mentioned" true
                  (String.length e > 0)
   | Ok _ -> Alcotest.fail "guard should reject");
  let even = Marking.of_list [ (a, [ 4 ]) ] in
  check_bool "guard accepts" true (Firing.enabled net even t);
  (* explicit binding with a subset of tokens *)
  let mixed = Marking.of_list [ (a, [ 3; 4 ]) ] in
  check_bool "fire_with even subset" true
    (Result.is_ok
       (Firing.fire_with net mixed t [ (a, [ 4 ]) ] ~fresh:(fresh_counter 0)))

let test_firing_binding_validation () =
  let net, base, _, _, t01, _ = chain_net () in
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  (* binding referencing a token not in the marking *)
  check_bool "phantom token rejected" true
    (Result.is_error
       (Firing.fire_with net m t01 [ (base, [ 99 ]) ] ~fresh:(fresh_counter 0)));
  (* binding missing the input place *)
  check_bool "missing place rejected" true
    (Result.is_error (Firing.fire_with net m t01 [] ~fresh:(fresh_counter 0)))

let test_enabled_transitions () =
  let net, base, _, _, t01, t12 = chain_net () in
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  Alcotest.(check (list int)) "only t01" [ t01 ]
    (Firing.enabled_transitions net m);
  ignore t12

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

let test_reachability_chain () =
  let net, base, mid, goal, _, _ = chain_net () in
  let empty = Reachability.analyze net Marking.empty in
  check_bool "nothing derivable" false (empty.Reachability.derivable goal);
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  let info = Reachability.analyze net m in
  check_bool "base" true (info.Reachability.derivable base);
  check_bool "mid" true (info.Reachability.derivable mid);
  check_bool "goal" true (info.Reachability.derivable goal);
  Alcotest.(check (list int)) "derivable but unmarked" [ mid; goal ]
    (Reachability.derivable_places net m)

let test_reachability_threshold_blocks () =
  let net = Net.create () in
  let a = Net.add_place net ~name:"a" in
  let b = Net.add_place net ~name:"b" in
  let t =
    Result.get_ok
      (Net.add_transition net ~name:"t" ~inputs:[ (a, 3) ] ~outputs:[ b ] ())
  in
  let m = Marking.of_list [ (a, [ 1; 2 ]) ] in
  let info = Reachability.analyze net m in
  check_bool "b not derivable" false (info.Reachability.derivable b);
  check_bool "t not fireable" false (info.Reachability.fireable t)

let test_reachability_fan_in_counts () =
  (* derivation can combine counts: interpolation-style transition with
     threshold 2 fed by a producer *)
  let net = Net.create () in
  let a = Net.add_place net ~name:"a" in
  let b = Net.add_place net ~name:"b" in
  let c = Net.add_place net ~name:"c" in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"a2b" ~inputs:[ (a, 1) ] ~outputs:[ b ] ())
  in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"bb2c" ~inputs:[ (b, 2) ] ~outputs:[ c ] ())
  in
  (* one stored b + one derivable b (from a) = 2 -> c derivable *)
  let m = Marking.of_list [ (a, [ 1; 2 ]); (b, [ 3 ]) ] in
  let info = Reachability.analyze net m in
  check_bool "c reachable through combined counts" true
    (info.Reachability.derivable c)

let test_reachability_closure () =
  let net, base, mid, goal, _, _ = chain_net () in
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  let closed = Reachability.closure net m ~fresh:(fresh_counter 50) in
  check_bool "mid marked" true (Marking.is_marked closed mid);
  check_bool "goal marked" true (Marking.is_marked closed goal);
  check_bool "base kept" true (Marking.mem closed base 1)

(* ------------------------------------------------------------------ *)
(* Backchain                                                           *)
(* ------------------------------------------------------------------ *)

let test_backchain_prefers_retrieval () =
  let net, base, _, goal, _, _ = chain_net () in
  let m = Marking.of_list [ (base, [ 1 ]); (goal, [ 9 ]) ] in
  match Backchain.search net m goal with
  | Some plan ->
    check_int "zero firings" 0 (Backchain.cost plan);
    check_int "zero depth" 0 (Backchain.depth plan);
    Alcotest.(check (list (pair int int))) "initial marking"
      [ (goal, 9) ]
      (Backchain.retrieved_tokens plan)
  | None -> Alcotest.fail "expected plan"

let test_backchain_chain () =
  let net, base, _, goal, _, _ = chain_net () in
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  match Backchain.search net m goal with
  | None -> Alcotest.fail "expected plan"
  | Some plan ->
    check_int "two firings" 2 (Backchain.cost plan);
    check_int "depth two" 2 (Backchain.depth plan);
    Alcotest.(check (list (pair int int))) "starts from base"
      [ (base, 1) ]
      (Backchain.retrieved_tokens plan);
    (* executing the plan marks the goal *)
    (match Backchain.execute net m plan ~fresh:(fresh_counter 100) with
     | Ok (m', tokens, fired) ->
       check_int "one goal token" 1 (List.length tokens);
       check_bool "marked" true (Marking.mem m' goal (List.hd tokens));
       check_int "two firings happened" 2 (List.length fired)
     | Error e -> Alcotest.failf "execute: %s" e)

let test_backchain_underivable () =
  let net, _, _, goal, _, _ = chain_net () in
  check_bool "no plan from empty marking" true
    (Backchain.search net Marking.empty goal = None)

let test_backchain_multi_need () =
  let net, base, _, goal, _, _ = chain_net () in
  (* distinct derived objects need distinct input combinations: a single
     base token supports only ONE distinct goal object *)
  let poor = Marking.of_list [ (base, [ 1 ]) ] in
  check_bool "need 3 from one base token: no plan" true
    (Backchain.search ~need:3 net poor goal = None);
  (* three base tokens -> three distinct derivation chains *)
  let rich = Marking.of_list [ (base, [ 1; 2; 3 ]) ] in
  match Backchain.search ~need:3 net rich goal with
  | None -> Alcotest.fail "expected plan"
  | Some plan ->
    check_int "three sources" 3 (List.length plan.Backchain.sources);
    check_int "cost: 3 mid + 3 goal firings" 6 (Backchain.cost plan);
    (match Backchain.execute net rich plan ~fresh:(fresh_counter 100) with
     | Ok (m', tokens, fired) ->
       check_int "three goal tokens" 3
         (List.length (List.sort_uniq Int.compare tokens));
       check_bool "all marked" true
         (List.for_all (fun tok -> Marking.mem m' goal tok) tokens);
       check_int "six firings" 6 (List.length fired)
     | Error e -> Alcotest.failf "execute: %s" e)

let test_backchain_cycle_safe () =
  (* a <-> b cycle plus stored a: plan for b must terminate *)
  let net = Net.create () in
  let a = Net.add_place net ~name:"a" in
  let b = Net.add_place net ~name:"b" in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"ab" ~inputs:[ (a, 1) ] ~outputs:[ b ] ())
  in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"ba" ~inputs:[ (b, 1) ] ~outputs:[ a ] ())
  in
  let m = Marking.of_list [ (a, [ 1 ]) ] in
  (match Backchain.search net m b with
   | Some plan -> check_int "one firing" 1 (Backchain.cost plan)
   | None -> Alcotest.fail "expected plan");
  (* and nothing stored: no plan, no divergence *)
  check_bool "empty no plan" true (Backchain.search net Marking.empty b = None)

let test_backchain_cheapest_producer () =
  (* goal derivable directly from base (1 firing) or via a long chain;
     search must pick the cheap one *)
  let net = Net.create () in
  let base = Net.add_place net ~name:"base" in
  let mid = Net.add_place net ~name:"mid" in
  let goal = Net.add_place net ~name:"goal" in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"long1" ~inputs:[ (base, 1) ]
         ~outputs:[ mid ] ())
  in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"long2" ~inputs:[ (mid, 1) ]
         ~outputs:[ goal ] ())
  in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"short" ~inputs:[ (base, 1) ]
         ~outputs:[ goal ] ())
  in
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  match Backchain.search net m goal with
  | Some plan -> check_int "picks direct path" 1 (Backchain.cost plan)
  | None -> Alcotest.fail "expected plan"

(* Random-net soundness: every plan found executes successfully. *)
let random_net_gen =
  QCheck.Gen.(
    let* n_places = int_range 3 10 in
    let* n_trans = int_range 1 12 in
    let* seed = int_range 0 1_000_000 in
    return (n_places, n_trans, seed))

let build_random (n_places, n_trans, seed) =
  let rng = Gaea_raster.Rng.create seed in
  let net = Net.create () in
  let places =
    Array.init n_places (fun i ->
        Net.add_place net ~name:(Printf.sprintf "p%d" i))
  in
  for t = 0 to n_trans - 1 do
    let n_inputs = 1 + Gaea_raster.Rng.int rng 2 in
    let inputs =
      List.init n_inputs (fun _ ->
          ( places.(Gaea_raster.Rng.int rng n_places),
            1 + Gaea_raster.Rng.int rng 2 ))
    in
    (* dedupe input places, keeping max threshold *)
    let inputs =
      List.fold_left
        (fun acc (p, k) ->
          if List.mem_assoc p acc then
            (p, max k (List.assoc p acc)) :: List.remove_assoc p acc
          else (p, k) :: acc)
        [] inputs
    in
    let output = places.(Gaea_raster.Rng.int rng n_places) in
    ignore
      (Net.add_transition net
         ~name:(Printf.sprintf "t%d" t)
         ~inputs ~outputs:[ output ] ())
  done;
  (* random marking *)
  let marking = ref Marking.empty in
  let tok = ref 0 in
  Array.iter
    (fun p ->
      let n = Gaea_raster.Rng.int rng 3 in
      for _ = 1 to n do
        incr tok;
        marking := Marking.add !marking p !tok
      done)
    places;
  (net, !marking, places)

let backchain_soundness_prop =
  QCheck.Test.make ~name:"every plan executes and marks the goal" ~count:300
    (QCheck.make random_net_gen) (fun params ->
      let net, marking, places = build_random params in
      Array.for_all
        (fun goal ->
          match Backchain.search net marking goal with
          | None -> true
          | Some plan ->
            (match Backchain.execute net marking plan ~fresh:(fresh_counter 10000) with
             | Ok (m', tokens, _) ->
               tokens <> []
               && List.for_all (fun tok -> Marking.mem m' goal tok) tokens
             | Error _ -> false))
        places)

let backchain_sound_wrt_reachability_prop =
  QCheck.Test.make
    ~name:"plan implies reachability-derivable (upper bound respected)"
    ~count:300 (QCheck.make random_net_gen) (fun params ->
      let net, marking, places = build_random params in
      let info = Reachability.analyze net marking in
      Array.for_all
        (fun goal ->
          let has_plan = Backchain.search net marking goal <> None in
          (not has_plan) || info.Reachability.derivable goal)
        places)

(* Acyclic nets: transitions read lower-numbered places and write a
   strictly higher one, so backchain's cycle guard never engages and
   need=1 planning must agree exactly with reachability. *)
let build_acyclic (n_places, n_trans, seed) =
  let rng = Gaea_raster.Rng.create seed in
  let net = Net.create () in
  let places =
    Array.init n_places (fun i ->
        Net.add_place net ~name:(Printf.sprintf "p%d" i))
  in
  for t = 0 to n_trans - 1 do
    let out_idx = 1 + Gaea_raster.Rng.int rng (n_places - 1) in
    let n_inputs = 1 + Gaea_raster.Rng.int rng 2 in
    let inputs =
      List.init n_inputs (fun _ ->
          (places.(Gaea_raster.Rng.int rng out_idx), 1 + Gaea_raster.Rng.int rng 2))
    in
    let inputs =
      List.fold_left
        (fun acc (p, k) ->
          if List.mem_assoc p acc then
            (p, max k (List.assoc p acc)) :: List.remove_assoc p acc
          else (p, k) :: acc)
        [] inputs
    in
    ignore
      (Net.add_transition net
         ~name:(Printf.sprintf "t%d" t)
         ~inputs ~outputs:[ places.(out_idx) ] ())
  done;
  let marking = ref Marking.empty in
  let tok = ref 0 in
  Array.iter
    (fun p ->
      let n = Gaea_raster.Rng.int rng 3 in
      for _ = 1 to n do
        incr tok;
        marking := Marking.add !marking p !tok
      done)
    places;
  (net, !marking, places)

let backchain_complete_acyclic_prop =
  QCheck.Test.make
    ~name:"on acyclic nets, plan exists iff derivable (need = 1)"
    ~count:300 (QCheck.make random_net_gen) (fun params ->
      let net, marking, places = build_acyclic params in
      let info = Reachability.analyze net marking in
      Array.for_all
        (fun goal ->
          info.Reachability.derivable goal
          = (Backchain.search net marking goal <> None))
        places)

(* ------------------------------------------------------------------ *)
(* Analysis / Dot                                                      *)
(* ------------------------------------------------------------------ *)

let test_analysis () =
  let net, base, _, _, _, _ = chain_net () in
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  let r = Analysis.analyze net m in
  check_int "places" 3 r.Analysis.n_places;
  check_int "transitions" 2 r.Analysis.n_transitions;
  check_bool "acyclic" false r.Analysis.cyclic;
  check_int "depth" 2 r.Analysis.max_depth;
  check_int "fan-in" 1 r.Analysis.max_fan_in;
  Alcotest.(check (list int)) "no dead" [] r.Analysis.dead_transitions;
  Alcotest.(check (list int)) "all derivable" [] r.Analysis.underivable_places;
  (* empty marking: everything dead/underivable *)
  let r0 = Analysis.analyze net Marking.empty in
  check_int "dead transitions" 2 (List.length r0.Analysis.dead_transitions);
  check_int "underivable" 3 (List.length r0.Analysis.underivable_places)

let test_analysis_cycle () =
  let net = Net.create () in
  let a = Net.add_place net ~name:"a" in
  let b = Net.add_place net ~name:"b" in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"ab" ~inputs:[ (a, 1) ] ~outputs:[ b ] ())
  in
  let _ =
    Result.get_ok
      (Net.add_transition net ~name:"ba" ~inputs:[ (b, 1) ] ~outputs:[ a ] ())
  in
  check_bool "cycle detected" true (Analysis.has_cycle net);
  (* depth terminates despite the cycle *)
  check_bool "depth finite" true (Analysis.derivation_depth net >= 1)

let test_dot () =
  let net, base, _, _, _, _ = chain_net () in
  let m = Marking.of_list [ (base, [ 1 ]) ] in
  let dot = Dot.to_dot ~marking:m net in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "digraph" true (contains "digraph");
  check_bool "marked place doubled" true (contains "doublecircle");
  check_bool "transition box" true (contains "shape=box");
  check_bool "edge" true (contains "->")

let () =
  Alcotest.run "petri"
    [ ( "net",
        [ tc "build" test_net_build; tc "validation" test_net_validation ] );
      ("marking", [ tc "operations" test_marking ]);
      ( "firing",
        [ tc "thresholds" test_firing_threshold;
          tc "non-consuming" test_firing_non_consuming;
          tc "guards" test_firing_guard;
          tc "binding validation" test_firing_binding_validation;
          tc "enabled list" test_enabled_transitions ] );
      ( "reachability",
        [ tc "chain" test_reachability_chain;
          tc "threshold blocks" test_reachability_threshold_blocks;
          tc "combined counts" test_reachability_fan_in_counts;
          tc "closure" test_reachability_closure ] );
      ( "backchain",
        [ tc "prefers retrieval" test_backchain_prefers_retrieval;
          tc "chain plan + execute" test_backchain_chain;
          tc "underivable" test_backchain_underivable;
          tc "multi-need" test_backchain_multi_need;
          tc "cycle safe" test_backchain_cycle_safe;
          tc "cheapest producer" test_backchain_cheapest_producer ] );
      qsuite "backchain-props"
        [ backchain_soundness_prop; backchain_sound_wrt_reachability_prop;
          backchain_complete_acyclic_prop ];
      ( "analysis",
        [ tc "report" test_analysis; tc "cycles" test_analysis_cycle ] );
      ("dot", [ tc "export" test_dot ]) ]
