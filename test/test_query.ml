(* Tests for the GaeaQL interpreter: lexer, parser, optimizer,
   executor, session. *)

open Gaea_query
module Kernel = Gaea_core.Kernel
module Process = Gaea_core.Process
module Value = Gaea_adt.Value
module Table = Gaea_storage.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function
  | Ok v -> v
  | Error e ->
    Alcotest.failf "unexpected error: %s" (Gaea_core.Gaea_error.to_string e)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  match Lexer.tokenize "SELECT * FROM t WHERE x >= 2.5 AND y <> 'a b';" with
  | Error e -> Alcotest.failf "tokenize: %s" (Gaea_core.Gaea_error.to_string e)
  | Ok toks ->
    let open Lexer in
    Alcotest.(check (list string)) "tokens"
      [ "SELECT"; "*"; "FROM"; "t"; "WHERE"; "x"; ">="; "2.5"; "AND"; "y";
        "<>"; "'a b'"; ";"; "<eof>" ]
      (List.map token_to_string toks)

let test_lexer_comments_and_params () =
  match Lexer.tokenize "DERIVE x; -- a comment\n$param 42 -7 3.5e2" with
  | Error e -> Alcotest.failf "tokenize: %s" (Gaea_core.Gaea_error.to_string e)
  | Ok toks ->
    let open Lexer in
    check_bool "param" true (List.mem (Param "param") toks);
    check_bool "int" true (List.mem (Int_lit 42) toks);
    check_bool "negative int" true (List.mem (Int_lit (-7)) toks);
    check_bool "float exp" true (List.mem (Float_lit 350.) toks);
    check_bool "comment dropped" true
      (not (List.exists (function Ident s -> s = "comment" | _ -> false) toks))

let test_lexer_errors () =
  check_bool "unterminated string" true (Result.is_error (Lexer.tokenize "'abc"));
  check_bool "stray char" true (Result.is_error (Lexer.tokenize "a @ b"));
  check_bool "empty param" true (Result.is_error (Lexer.tokenize "$ x"))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_define_class () =
  match
    Parser.parse_one
      "DEFINE CLASS landcover (area string, data image, spatialextent box, \
       timestamp abstime) DERIVED BY classify"
  with
  | Ok (Ast.Define_class { name; attrs; derived_by; _ }) ->
    check_str "name" "landcover" name;
    check_int "attrs" 4 (List.length attrs);
    check_bool "derived" true (derived_by = Some "classify")
  | Ok _ -> Alcotest.fail "wrong statement"
  | Error e -> Alcotest.failf "parse: %s" (Gaea_core.Gaea_error.to_string e)

let test_parse_define_process () =
  let src =
    "DEFINE PROCESS p20 OUTPUT land_cover ARGS (bands SETOF tm CARD 3) \
     PARAM k = 12 \
     ASSERT card(bands) = 3 \
     ASSERT common(bands.spatialextent) \
     ASSERT common(bands.timestamp) \
     MAP data = unsuperclassify(composite(bands.data), $k) \
     MAP numclass = $k \
     MAP timestamp = ANYOF bands.timestamp \
     END"
  in
  match Parser.parse_one src with
  | Ok (Ast.Define_process { name; output; args; params; assertions; mappings; steps }) ->
    check_int "steps" 0 (List.length steps);
    check_str "name" "p20" name;
    check_str "output" "land_cover" output;
    (match args with
     | [ a ] ->
       check_bool "setof" true a.Ast.sa_setof;
       check_bool "card" true (a.Ast.sa_card = Some (3, None))
     | _ -> Alcotest.fail "args");
    check_int "params" 1 (List.length params);
    check_int "assertions" 3 (List.length assertions);
    check_bool "temporal common" true
      (List.exists (function Ast.A_common_time "bands" -> true | _ -> false) assertions);
    check_bool "spatial common" true
      (List.exists (function Ast.A_common_space "bands" -> true | _ -> false) assertions);
    check_int "mappings" 3 (List.length mappings)
  | Ok _ -> Alcotest.fail "wrong statement"
  | Error e -> Alcotest.failf "parse: %s" (Gaea_core.Gaea_error.to_string e)

let test_parse_select () =
  match
    Parser.parse_one
      "SELECT a, b FROM c WHERE x >= 2 AND t AT DATE '1986-01-15' AND s \
       OVERLAPS BOX(0, 0, 10.5, 10) ORDER BY a DESC LIMIT 5"
  with
  | Ok (Ast.Select s) ->
    Alcotest.(check (list string)) "projection" [ "a"; "b" ] s.Ast.projection;
    check_str "source" "c" s.Ast.source;
    check_int "predicates" 3 (List.length s.Ast.where_);
    check_bool "order" true (s.Ast.order_by = Some ("a", Ast.Desc));
    check_bool "limit" true (s.Ast.limit = Some 5)
  | Ok _ -> Alcotest.fail "wrong statement"
  | Error e -> Alcotest.failf "parse: %s" (Gaea_core.Gaea_error.to_string e)

let test_parse_misc_statements () =
  let parses src =
    match Parser.parse_one src with
    | Ok _ -> true
    | Error _ -> false
  in
  List.iter
    (fun src -> check_bool src true (parses src))
    [ "DERIVE land_cover";
      "DERIVE x AT DATE '1986-06-01' NEED 2";
      "SHOW CLASSES"; "SHOW PROCESSES"; "SHOW CONCEPTS"; "SHOW TASKS";
      "SHOW NET"; "SHOW LINEAGE 42"; "SHOW PLAN land_cover";
      "SHOW OPERATORS"; "SHOW OPERATORS FOR image"; "SHOW VERSIONS OF p20";
      "VERIFY 3"; "VERIFY TASK 7"; "COMPARE 3 4";
      "BEGIN EXPERIMENT e"; "NOTE e 'text'"; "REPRODUCE e";
      "DEFINE CONCEPT desert MEMBERS (c2, c3) ISA landform";
      "INSERT INTO c (x = 5, b = BOX(0,0,1,1), d = DATE '1986-01-01')" ]

let test_parse_script_and_errors () =
  (match Parser.parse "SHOW CLASSES; SHOW TASKS;; ; SHOW NET" with
   | Ok stmts -> check_int "three statements" 3 (List.length stmts)
   | Error e -> Alcotest.failf "script: %s" (Gaea_core.Gaea_error.to_string e));
  List.iter
    (fun src ->
      check_bool ("rejects " ^ src) true (Result.is_error (Parser.parse_one src)))
    [ "SELECT FROM"; "DERIVE"; "DEFINE CLASS x ()"; "SHOW NOTHING";
      "INSERT INTO c x = 5"; "DEFINE PROCESS p OUTPUT o END";
      "SELECT * FROM t WHERE x ~ 3" ]

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let desert_session () =
  let session = Session.create () in
  let _ =
    ok
      (Session.run_string session
         {|
DEFINE CLASS rainfall (year int, data image, spatialextent box, timestamp abstime);
DEFINE CLASS desert (cutoff float, data image, spatialextent box, timestamp abstime)
  DERIVED BY d250;
DEFINE PROCESS d250 OUTPUT desert ARGS (rain rainfall)
  PARAM cutoff = 250.0
  MAP cutoff = $cutoff
  MAP data = img_threshold_below(rain.data, $cutoff)
  MAP spatialextent = rain.spatialextent
  MAP timestamp = rain.timestamp
END;
INSERT INTO rainfall (year = 1986, data = synth_rainfall(1, 8, 8),
  spatialextent = make_box(0.0,0.0,10.0,10.0), timestamp = make_abstime(1986,1,1));
INSERT INTO rainfall (year = 1987, data = synth_rainfall(2, 8, 8),
  spatialextent = make_box(0.0,0.0,10.0,10.0), timestamp = make_abstime(1987,1,1));
INSERT INTO rainfall (year = 1988, data = synth_rainfall(3, 8, 8),
  spatialextent = make_box(0.0,0.0,10.0,10.0), timestamp = make_abstime(1988,1,1))
|})
  in
  session

let test_optimizer_access_paths () =
  let session = desert_session () in
  let k = Session.kernel session in
  let parse_select src =
    match Parser.parse_one src with
    | Ok (Ast.Select s) -> s
    | _ -> Alcotest.fail "not a select"
  in
  let plan = ok (Optimizer.plan_select k (parse_select "SELECT * FROM rainfall WHERE year = 1986")) in
  check_bool "full scan" true (plan.Plan.path = Plan.Full_scan);
  check_int "residual carries predicate" 1 (List.length plan.Plan.residual);
  let tab = Option.get (Kernel.class_table k "rainfall") in
  ignore (Table.create_hash_index tab "year");
  let plan2 = ok (Optimizer.plan_select k (parse_select "SELECT * FROM rainfall WHERE year = 1986")) in
  (match plan2.Plan.path with
   | Plan.Index_eq ("year", _) -> ()
   | _ -> Alcotest.fail "expected index path");
  check_int "no residual" 0 (List.length plan2.Plan.residual);
  check_bool "cheaper" true (plan2.Plan.est_cost < plan.Plan.est_cost);
  let plan3 =
    ok (Optimizer.plan_select k
          (parse_select "SELECT * FROM rainfall WHERE timestamp AT DATE '1987-01-01'"))
  in
  (match plan3.Plan.path with
   | Plan.Index_range ("timestamp", Some _, Some _) -> ()
   | _ -> Alcotest.fail "expected temporal range path")

let test_optimizer_materialize () =
  let session = desert_session () in
  let k = Session.kernel session in
  (match Optimizer.plan_materialize k "desert" with
   | Plan.Derive { firings = 1; depth = 1 } -> ()
   | p -> Alcotest.failf "expected 1-firing derive, got %s"
            (Format.asprintf "%a" Plan.pp_materialize_plan p));
  (match Optimizer.plan_materialize k "zzz" with
   | Plan.Impossible _ -> ()
   | _ -> Alcotest.fail "expected impossible");
  (match
     Optimizer.plan_materialize k
       ~at:(Gaea_geo.Abstime.of_ymd 1986 6 1) "rainfall"
   with
   | Plan.Interpolate { snapshots = 3 } -> ()
   | p -> Alcotest.failf "expected interpolate, got %s"
            (Format.asprintf "%a" Plan.pp_materialize_plan p));
  (match Optimizer.plan_materialize k "rainfall" with
   | Plan.Stored 3 -> ()
   | _ -> Alcotest.fail "expected stored")

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let run1 session src =
  match Session.run_string session src with
  | Ok [ r ] -> r
  | Ok _ -> Alcotest.fail "expected one response"
  | Error e ->
    Alcotest.failf "%s: %s" src (Gaea_core.Gaea_error.to_string e)

let test_executor_select_filters () =
  let session = desert_session () in
  (match run1 session "SELECT year FROM rainfall WHERE year >= 1987 ORDER BY year DESC" with
   | Executor.Rows { rows; _ } ->
     Alcotest.(check (list string)) "filtered + ordered" [ "1988"; "1987" ]
       (List.map
          (fun (_, pairs) -> Value.to_display (List.assoc "year" pairs))
          rows)
   | _ -> Alcotest.fail "expected rows");
  (match run1 session "SELECT year FROM rainfall WHERE timestamp AT DATE '1987-01-01'" with
   | Executor.Rows { rows; _ } -> check_int "AT matches one" 1 (List.length rows)
   | _ -> Alcotest.fail "rows");
  (match run1 session "SELECT year FROM rainfall WHERE spatialextent OVERLAPS BOX(20,20,30,30)" with
   | Executor.Rows { rows; _ } -> check_int "disjoint box" 0 (List.length rows)
   | _ -> Alcotest.fail "rows");
  (match run1 session "SELECT year FROM rainfall LIMIT 2" with
   | Executor.Rows { rows; _ } -> check_int "limit" 2 (List.length rows)
   | _ -> Alcotest.fail "rows")

let test_executor_derive_and_verify () =
  let session = desert_session () in
  let out = Session.run_string_collect session
      "BEGIN EXPERIMENT e; DERIVE desert; REPRODUCE e" in
  check_bool "derived" true (contains out "fired d250");
  check_bool "reproduces" true (contains out "1/1 task(s) reproduce");
  let out2 = Session.run_string_collect session "DERIVE desert; SHOW TASKS" in
  check_bool "no second firing" true (not (contains out2 "task #2"))

let test_executor_concept_select () =
  let session = desert_session () in
  let _ = ok (Session.run_string session
      "DEFINE CONCEPT desertic MEMBERS (desert); DERIVE desert") in
  match run1 session "SELECT cutoff FROM desertic" with
  | Executor.Rows { rows; _ } ->
    check_int "concept reaches member class" 1 (List.length rows)
  | _ -> Alcotest.fail "rows"

let test_executor_derive_concept () =
  (* DERIVE on a concept: the high-level layer picks a realizing class *)
  let session = desert_session () in
  let _ = ok (Session.run_string session "DEFINE CONCEPT desertic MEMBERS (desert)") in
  let out = Session.run_string_collect session "DERIVE desertic" in
  check_bool "derived via member class" true (contains out "fired d250");
  check_bool "unknown concept still errors" true
    (Result.is_error (Session.run_string session "DERIVE nothing_here"))

let test_executor_metadata_statements () =
  let session = desert_session () in
  let all = Session.run_string_collect session
      "SHOW CLASSES; SHOW PROCESSES; SHOW CONCEPTS; SHOW OPERATORS FOR box; SHOW PLAN desert; SHOW NET" in
  check_bool "classes" true (contains all "CLASS rainfall");
  check_bool "process" true (contains all "DEFINE PRIMITIVE PROCESS d250");
  check_bool "operators" true (contains all "box_overlaps");
  check_bool "plan" true (contains all "derive (1 firing(s)");
  check_bool "net dot" true (contains all "digraph")

let test_executor_lineage_and_compare () =
  let session = desert_session () in
  let _ = ok (Session.run_string session "DERIVE desert") in
  let k = Session.kernel session in
  let oid = List.hd (Kernel.objects_of_class k "desert") in
  let out =
    Session.run_string_collect session (Printf.sprintf "SHOW LINEAGE %d" oid)
  in
  check_bool "lineage shown" true (contains out "d250");
  let out2 =
    Session.run_string_collect session (Printf.sprintf "COMPARE %d %d" oid oid)
  in
  check_bool "same derivation" true (contains out2 "share the same derivation");
  check_bool "verify errors on unknown" true
    (Result.is_error (Session.run_string session "VERIFY TASK 999"))

let test_executor_errors () =
  let session = desert_session () in
  List.iter
    (fun src ->
      check_bool ("rejects " ^ src) true
        (Result.is_error (Session.run_string session src)))
    [ "SELECT * FROM nothere";
      "DERIVE nothere";
      "INSERT INTO rainfall (year = 1)";
      "DEFINE CLASS rainfall (x int)";
      "DEFINE CLASS c2 (x nosuchtype)";
      "SHOW LINEAGE 9999";
      "NOTE unknown_exp 'x'" ]

let test_executor_versions () =
  let session = desert_session () in
  (* redefining under the same name never overwrites: the new
     definition is installed as the next version, derived_from the
     old one *)
  let _ =
    ok
      (Session.run_string session
         {|DEFINE PROCESS d250 OUTPUT desert ARGS (rain rainfall)
           PARAM cutoff = 200.0 MAP cutoff = $cutoff
           MAP data = img_threshold_below(rain.data, $cutoff)
           MAP spatialextent = rain.spatialextent
           MAP timestamp = rain.timestamp END|})
  in
  let out = Session.run_string_collect session "SHOW VERSIONS OF d250" in
  check_bool "v1 listed" true (contains out "(v1)");
  check_bool "v2 listed" true (contains out "(v2)");
  let k = Session.kernel session in
  let p = Option.get (Kernel.find_process k "d250") in
  check_int "latest is v2" 2 p.Process.version;
  check_bool "derived_from v1" true
    (p.Process.derived_from = Some ("d250", 1))

let () =
  Alcotest.run "query"
    [ ( "lexer",
        [ tc "basics" test_lexer_basics;
          tc "comments/params" test_lexer_comments_and_params;
          tc "errors" test_lexer_errors ] );
      ( "parser",
        [ tc "define class" test_parse_define_class;
          tc "define process" test_parse_define_process;
          tc "select" test_parse_select;
          tc "misc statements" test_parse_misc_statements;
          tc "scripts and errors" test_parse_script_and_errors ] );
      ( "optimizer",
        [ tc "access paths" test_optimizer_access_paths;
          tc "materialize" test_optimizer_materialize ] );
      ( "executor",
        [ tc "select filters" test_executor_select_filters;
          tc "derive and verify" test_executor_derive_and_verify;
          tc "concept select" test_executor_concept_select;
          tc "derive concept" test_executor_derive_concept;
          tc "metadata statements" test_executor_metadata_statements;
          tc "lineage and compare" test_executor_lineage_and_compare;
          tc "errors" test_executor_errors;
          tc "versions" test_executor_versions ] ) ]
