(* Tests for the incremental-recomputation subsystem: staleness marking
   and its transitive propagation, targeted and full REFRESH, scheduler
   determinism across pool sizes, the memory-bounded result cache, the
   persistence of cache counters, and the GA033 staleness lint. *)

open Gaea_core
module Analysis = Gaea_analysis.Analysis
module Diagnostic = Gaea_analysis.Diagnostic
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Box = Gaea_geo.Box
module Abstime = Gaea_geo.Abstime
module Image = Gaea_raster.Image
module Pixel = Gaea_raster.Pixel
module Pool = Gaea_par.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Gaea_error.to_string e)

let events k = List.map snd (Kernel.event_log k)

(* ------------------------------------------------------------------ *)
(* Fixture: a three-level derivation chain behind one compound          *)
(* ------------------------------------------------------------------ *)

(* src --s1--> c1 --s2--> c2 --s3--> c3, wrapped in the compound
   "chain3" so one execution produces all three levels.  Updating the
   base image must stale every level transitively. *)
let chain_kernel () =
  let k = Kernel.create () in
  let base_attrs =
    [ ("data", Vtype.Image); ("spatialextent", Vtype.Box);
      ("timestamp", Vtype.Abstime) ]
  in
  ok (Kernel.define_class k (ok (Schema.define ~name:"src" ~attributes:base_attrs ())));
  List.iter
    (fun (cls, proc) ->
      ok
        (Kernel.define_class k
           (ok (Schema.define ~name:cls ~attributes:base_attrs ~derived_by:proc ()))))
    [ ("c1", "s1"); ("c2", "s2"); ("c3", "chain3") ];
  let open Template in
  let prim name out arg_cls factor =
    ok
      (Kernel.define_process k
         (ok
            (Process.define_primitive ~name ~output_class:out
               ~args:[ Process.scalar_arg "x" arg_cls ]
               ~template:
                 (make ~assertions:[]
                    ~mappings:
                      [ { target = "data";
                          rhs =
                            Apply
                              ("img_scale",
                               [ Const (Value.float factor); Attr_of ("x", "data") ]) };
                        { target = "spatialextent"; rhs = Attr_of ("x", "spatialextent") };
                        { target = "timestamp"; rhs = Attr_of ("x", "timestamp") } ])
               ())))
  in
  prim "s1" "c1" "src" 2.;
  prim "s2" "c2" "c1" 3.;
  prim "s3" "c3" "c2" 5.;
  let step proc bindings = { Process.step_process = proc; step_inputs = bindings } in
  ok
    (Kernel.define_process k
       (ok
          (Process.define_compound ~name:"chain3" ~output_class:"c3"
             ~args:[ Process.scalar_arg "x" "src" ]
             ~steps:
               [ step "s1" [ ("x", Process.From_arg "x") ];
                 step "s2" [ ("x", Process.From_step 0) ];
                 step "s3" [ ("x", Process.From_step 1) ] ]
             ())));
  k

let insert_src ?(vals = [| 1.; 2.; 3.; 4. |]) k =
  ok
    (Kernel.insert_object k ~cls:"src"
       [ ("data", Value.image (Image.of_array ~nrow:2 ~ncol:2 Pixel.Float8 vals));
         ("spatialextent", Value.box (Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.));
         ("timestamp", Value.abstime (Abstime.of_ymd 1986 1 1)) ])

let derive_chain k oid =
  let p = Option.get (Kernel.find_process k "chain3") in
  ignore (ok (Kernel.execute_process k p ~inputs:[ ("x", [ oid ]) ]));
  (* commit order: c1, c2, c3 *)
  ( List.hd (Kernel.objects_of_class k "c1"),
    List.hd (Kernel.objects_of_class k "c2"),
    List.hd (Kernel.objects_of_class k "c3") )

let update_src k oid vals =
  ok
    (Kernel.update_object k ~cls:"src" oid
       [ ("data", Value.image (Image.of_array ~nrow:2 ~ncol:2 Pixel.Float8 vals)) ])

let data_hash k cls oid =
  match Kernel.object_attr k ~cls oid "data" with
  | Some v -> Value.content_hash v
  | None -> Alcotest.failf "object #%d of %s has no data" oid cls

(* ------------------------------------------------------------------ *)
(* Staleness propagation                                                *)
(* ------------------------------------------------------------------ *)

let test_update_stales_transitively () =
  let k = chain_kernel () in
  let src = insert_src k in
  let o1, o2, o3 = derive_chain k src in
  Alcotest.(check (list int)) "nothing stale after derivation" []
    (Kernel.stale_objects k);
  update_src k src [| 10.; 20.; 30.; 40. |];
  Alcotest.(check (list int)) "all three levels stale"
    (List.sort compare [ o1; o2; o3 ])
    (Kernel.stale_objects k);
  check_bool "base object itself is not stale" false (Kernel.object_stale k src)

let test_update_spares_unrelated () =
  let k = chain_kernel () in
  let a = insert_src k in
  let b = insert_src ~vals:[| 5.; 6.; 7.; 8. |] k in
  let _ = derive_chain k a in
  Kernel.clear_cache k;
  let p = Option.get (Kernel.find_process k "chain3") in
  let _ = ok (Kernel.execute_process k p ~inputs:[ ("x", [ b ]) ]) in
  update_src k a [| 9.; 9.; 9.; 9. |];
  check_int "only a's chain is stale" 3 (List.length (Kernel.stale_objects k));
  List.iter
    (fun (t : Task.t) ->
      if List.mem b (Task.input_oids t) then
        List.iter
          (fun o ->
            check_bool "b's outputs stay fresh" false (Kernel.object_stale k o))
          t.Task.outputs)
    (Kernel.tasks k)

let test_refresh_recomputes_in_place () =
  let k = chain_kernel () in
  let src = insert_src k in
  let o1, o2, o3 = derive_chain k src in
  let vals = [| 10.; 20.; 30.; 40. |] in
  update_src k src vals;
  let report = Kernel.refresh_stale k in
  check_int "all three refreshed" 3 report.Kernel.refreshed;
  check_int "none skipped" 0 report.Kernel.skipped;
  check_int "dirty set drained" 0 report.Kernel.remaining;
  Alcotest.(check (list int)) "stale set empty" [] (Kernel.stale_objects k);
  (* same oids, values bit-identical to a cold derivation of the new data *)
  let k2 = chain_kernel () in
  let src2 = insert_src ~vals k2 in
  let p1, p2, p3 = derive_chain k2 src2 in
  List.iter2
    (fun (cls, o) o' ->
      check_int (cls ^ " matches cold derivation") (data_hash k2 cls o')
        (data_hash k cls o))
    [ ("c1", o1); ("c2", o2); ("c3", o3) ]
    [ p1; p2; p3 ];
  (* refresh recorded new provenance for every level *)
  List.iter
    (fun o ->
      match Kernel.task_producing k o with
      | None -> Alcotest.fail "refreshed object lost its producing task"
      | Some (t : Task.t) ->
        check_bool "producing task is one of the refresh tasks" true
          (List.exists
             (fun (r : Task.t) -> r.Task.task_id = t.Task.task_id)
             report.Kernel.tasks))
    [ o1; o2; o3 ]

let test_targeted_refresh_pulls_upstream () =
  let k = chain_kernel () in
  let src = insert_src k in
  let o1, o2, o3 = derive_chain k src in
  update_src k src [| 2.; 4.; 6.; 8. |];
  (* asking only for the leaf must refresh its stale ancestors too,
     and leave nothing half-fresh *)
  let report = Kernel.refresh_stale ~only:[ o3 ] k in
  check_int "leaf plus its stale upstream" 3 report.Kernel.refreshed;
  List.iter
    (fun o -> check_bool "fresh afterwards" false (Kernel.object_stale k o))
    [ o1; o2; o3 ]

let test_refreshed_events_logged () =
  let k = chain_kernel () in
  let src = insert_src k in
  let _ = derive_chain k src in
  update_src k src [| 7.; 7.; 7.; 7. |];
  let _ = Kernel.refresh_stale k in
  let refreshed =
    List.filter_map
      (function Events.Object_refreshed { cls; _ } -> Some cls | _ -> None)
      (events k)
  in
  Alcotest.(check (list string)) "one event per level, in commit order"
    [ "c1"; "c2"; "c3" ] refreshed;
  check_int "metrics counted them" 3 (Kernel.counters k).Kernel.refreshes

(* ------------------------------------------------------------------ *)
(* Determinism across pool sizes                                        *)
(* ------------------------------------------------------------------ *)

let with_pool_size n f =
  let saved = Pool.size () in
  Pool.set_size n;
  Pool.set_min_parallel_work (Some 0);
  Fun.protect
    ~finally:(fun () ->
      Pool.set_min_parallel_work None;
      Pool.set_size saved)
    f

(* several independent chains make a multi-node ready frontier, so the
   refresh scheduler really batches on the pool *)
let run_refresh lanes =
  with_pool_size lanes (fun () ->
      let k = chain_kernel () in
      let srcs =
        List.init 4 (fun i ->
            insert_src ~vals:[| float_of_int i; 2.; 3.; 4. |] k)
      in
      let p = Option.get (Kernel.find_process k "chain3") in
      List.iter
        (fun s -> ignore (ok (Kernel.execute_process k p ~inputs:[ ("x", [ s ]) ])))
        srcs;
      List.iter (fun s -> update_src k s [| 8.; 8.; 8.; 8. |]) srcs;
      let report = Kernel.refresh_stale k in
      ( report.Kernel.refreshed,
        List.map
          (fun (seq, ev) -> Printf.sprintf "%d %s" seq (Events.event_to_string ev))
          (Kernel.event_log k),
        List.map
          (fun (t : Task.t) -> (t.Task.task_id, t.Task.process, t.Task.outputs))
          (Kernel.tasks k),
        List.map (fun (cls, os) -> List.map (data_hash k cls) os)
          [ ("c1", Kernel.objects_of_class k "c1");
            ("c2", Kernel.objects_of_class k "c2");
            ("c3", Kernel.objects_of_class k "c3") ] ))

let test_refresh_determinism () =
  let (n1, log1, tasks1, values1) = run_refresh 1 in
  check_int "all twelve objects refreshed" 12 n1;
  List.iter
    (fun lanes ->
      let (n, log, tasks, values) = run_refresh lanes in
      check_int (Printf.sprintf "same refresh count @%d" lanes) n1 n;
      Alcotest.(check (list string))
        (Printf.sprintf "event log identical @%d" lanes)
        log1 log;
      check_bool (Printf.sprintf "tasks identical @%d" lanes) true
        (tasks = tasks1);
      check_bool (Printf.sprintf "values identical @%d" lanes) true
        (values = values1))
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Bounded, cost-aware result cache                                     *)
(* ------------------------------------------------------------------ *)

let test_budget_respected () =
  let k = chain_kernel () in
  let budget = 600 in
  Kernel.set_cache_budget k budget;
  let p = Option.get (Kernel.find_process k "chain3") in
  for i = 0 to 5 do
    let src = insert_src ~vals:[| float_of_int i; 2.; 3.; 4. |] k in
    let _ = ok (Kernel.execute_process k p ~inputs:[ ("x", [ src ]) ]) in
    let st = Kernel.cache_stats k in
    check_bool "resident never exceeds budget" true
      (st.Kernel.resident_bytes <= budget);
    check_int "budget reported" budget st.Kernel.budget_bytes
  done;
  let st = Kernel.cache_stats k in
  check_bool "evictions happened" true (st.Kernel.evictions > 0);
  check_bool "eviction events logged" true
    (List.exists
       (function Events.Cache_evicted { reason = "budget"; _ } -> true | _ -> false)
       (events k));
  check_int "metrics agree with stats" st.Kernel.evictions
    (Kernel.counters k).Kernel.cache_evictions;
  check_bool "admission events logged" true
    (List.exists
       (function Events.Cache_admitted _ -> true | _ -> false)
       (events k))

let test_budget_shrink_evicts () =
  let k = chain_kernel () in
  let src = insert_src k in
  let _ = derive_chain k src in
  let st = Kernel.cache_stats k in
  check_bool "entries resident" true (st.Kernel.entries > 0);
  Kernel.set_cache_budget k 1;
  let st = Kernel.cache_stats k in
  check_int "shrink evicted everything" 0 st.Kernel.entries;
  check_bool "resident under new budget" true (st.Kernel.resident_bytes <= 1)

(* ------------------------------------------------------------------ *)
(* Persistence of cache counters                                        *)
(* ------------------------------------------------------------------ *)

let test_cache_stats_survive_persist () =
  let k = chain_kernel () in
  let src = insert_src k in
  let p = Option.get (Kernel.find_process k "chain3") in
  let _ = ok (Kernel.execute_process k p ~inputs:[ ("x", [ src ]) ]) in
  let _ = ok (Kernel.execute_process k p ~inputs:[ ("x", [ src ]) ]) in
  (* some invalidation traffic too *)
  update_src k src [| 4.; 3.; 2.; 1. |];
  let before = Kernel.cache_stats k in
  check_bool "fixture produced hits" true (before.Kernel.hits > 0);
  check_bool "fixture produced admissions" true (before.Kernel.admissions > 0);
  check_bool "fixture produced invalidations" true
    (before.Kernel.invalidations > 0);
  let k2 = ok (Persist.load (Persist.save k)) in
  let after = Kernel.cache_stats k2 in
  check_int "hits survive" before.Kernel.hits after.Kernel.hits;
  check_int "misses survive" before.Kernel.misses after.Kernel.misses;
  check_int "invalidations survive" before.Kernel.invalidations
    after.Kernel.invalidations;
  check_int "admissions survive" before.Kernel.admissions after.Kernel.admissions;
  check_int "evictions survive" before.Kernel.evictions after.Kernel.evictions;
  (* restore is event-silent: the reloaded kernel has no dirty set even
     though the saved one had a stale chain *)
  Alcotest.(check (list int)) "loaded kernel starts fresh" []
    (Kernel.stale_objects k2)

(* ------------------------------------------------------------------ *)
(* GA033: staleness lint                                                *)
(* ------------------------------------------------------------------ *)

let has_code code ds = List.exists (fun d -> d.Diagnostic.code = code) ds

let test_ga033_flags_stale () =
  let k = chain_kernel () in
  let src = insert_src k in
  let _ = derive_chain k src in
  check_bool "fresh kernel has no GA033" false
    (has_code "GA033" (Analysis.check_kernel k));
  update_src k src [| 3.; 1.; 4.; 1. |];
  let ds = List.filter (fun d -> d.Diagnostic.code = "GA033") (Analysis.check_kernel k) in
  check_int "one GA033 per stale object" 3 (List.length ds);
  List.iter
    (fun d ->
      check_bool "GA033 is informational" true
        (d.Diagnostic.severity = Diagnostic.Info))
    ds;
  (* the lint and the refresh subsystem share one staleness definition *)
  let _ = Kernel.refresh_stale k in
  check_bool "GA033 clears after REFRESH" false
    (has_code "GA033" (Analysis.check_kernel k))

let () =
  Alcotest.run "refresh"
    [ ( "staleness",
        [ tc "update stales the chain transitively" test_update_stales_transitively;
          tc "unrelated pipelines stay fresh" test_update_spares_unrelated ] );
      ( "refresh",
        [ tc "recomputes stale subgraph in place" test_refresh_recomputes_in_place;
          tc "targeted refresh pulls stale upstream" test_targeted_refresh_pulls_upstream;
          tc "events and metrics" test_refreshed_events_logged;
          tc "deterministic across pool sizes" test_refresh_determinism ] );
      ( "bounded-cache",
        [ tc "budget respected with evictions" test_budget_respected;
          tc "shrinking the budget evicts" test_budget_shrink_evicts ] );
      ( "persist",
        [ tc "cache counters survive save/load" test_cache_stats_survive_persist ] );
      ( "lint",
        [ tc "GA033 flags stale derived objects" test_ga033_flags_stale ] ) ]
