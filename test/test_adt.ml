(* Tests for the system-level semantics layer: Sexp, Vtype, Value,
   Operator, Registry, Dataflow. *)

open Gaea_adt
module Image = Gaea_raster.Image
module Matrix = Gaea_raster.Matrix
module Composite = Gaea_raster.Composite
module Pixel = Gaea_raster.Pixel
module Box = Gaea_geo.Box
module Abstime = Gaea_geo.Abstime
module Interval = Gaea_geo.Interval

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* Sexp                                                                *)
(* ------------------------------------------------------------------ *)

let test_sexp_basic () =
  check_str "atom" "hello" (Sexp.to_string (Sexp.atom "hello"));
  check_str "quoting" "\"two words\"" (Sexp.to_string (Sexp.atom "two words"));
  check_str "empty atom" "\"\"" (Sexp.to_string (Sexp.atom ""));
  check_str "list" "(a b (c d))"
    (Sexp.to_string
       (Sexp.list
          [ Sexp.atom "a"; Sexp.atom "b";
            Sexp.list [ Sexp.atom "c"; Sexp.atom "d" ] ]))

let test_sexp_parse () =
  (match Sexp.of_string "(a \"b c\" (d))" with
   | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b c"; Sexp.List [ Sexp.Atom "d" ] ]) -> ()
   | Ok other -> Alcotest.failf "wrong parse: %s" (Sexp.to_string other)
   | Error e -> Alcotest.failf "parse error: %s" e);
  check_bool "unterminated list" true (Result.is_error (Sexp.of_string "(a b"));
  check_bool "unterminated string" true (Result.is_error (Sexp.of_string "\"abc"));
  check_bool "stray paren" true (Result.is_error (Sexp.of_string ")"));
  check_bool "two sexps rejected by of_string" true
    (Result.is_error (Sexp.of_string "a b"));
  (match Sexp.of_string_many "a b (c)" with
   | Ok l -> check_int "many" 3 (List.length l)
   | Error e -> Alcotest.failf "many: %s" e)

let test_sexp_escapes () =
  let nasty = "quote\" back\\slash\nnewline\ttab" in
  let s = Sexp.to_string (Sexp.atom nasty) in
  match Sexp.of_string s with
  | Ok (Sexp.Atom a) -> check_str "roundtrip" nasty a
  | _ -> Alcotest.fail "escape roundtrip failed"

let sexp_gen =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then map Sexp.atom (string_size ~gen:printable (int_range 0 8))
            else
              frequency
                [ (2, map Sexp.atom (string_size ~gen:printable (int_range 0 8)));
                  (1, map Sexp.list (list_size (int_range 0 4) (self (n / 2)))) ])
          (min n 12)))

let sexp_arb = QCheck.make ~print:Sexp.to_string sexp_gen

let sexp_roundtrip_prop =
  QCheck.Test.make ~name:"sexp to_string/of_string roundtrip" ~count:500
    sexp_arb (fun s -> Sexp.of_string (Sexp.to_string s) = Ok s)

(* ------------------------------------------------------------------ *)
(* Vtype                                                               *)
(* ------------------------------------------------------------------ *)

let test_vtype_matches () =
  check_bool "any matches image" true
    (Vtype.matches ~expected:Vtype.Any ~actual:Vtype.Image);
  check_bool "setof any matches setof box" true
    (Vtype.matches ~expected:(Vtype.Setof Vtype.Any)
       ~actual:(Vtype.Setof Vtype.Box));
  check_bool "int does not match float" false
    (Vtype.matches ~expected:Vtype.Float ~actual:Vtype.Int);
  check_bool "setof mismatch" false
    (Vtype.matches ~expected:(Vtype.Setof Vtype.Int) ~actual:Vtype.Int)

let test_vtype_strings () =
  List.iter
    (fun t ->
      check_bool (Vtype.to_string t) true
        (Vtype.of_string (Vtype.to_string t) = Some t))
    (Vtype.all_primitive @ [ Vtype.Setof Vtype.Image; Vtype.Any ]);
  (* the paper's physical type names alias our logical types *)
  check_bool "char16 -> string" true (Vtype.of_string "char16" = Some Vtype.String);
  check_bool "float4 -> float" true (Vtype.of_string "float4" = Some Vtype.Float);
  check_bool "int2 -> int" true (Vtype.of_string "int2" = Some Vtype.Int)

let test_vtype_base () =
  check_bool "base of nested setof" true
    (Vtype.equal (Vtype.base (Vtype.Setof (Vtype.Setof Vtype.Image))) Vtype.Image)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let sample_image =
  Image.of_array ~label:"t" ~nrow:2 ~ncol:2 Pixel.Float8
    [| 1.5; -2.25; Float.nan; 1e300 |]

let sample_values =
  [ Value.int 42;
    Value.int (-7);
    Value.float 3.14159;
    Value.float Float.nan;
    Value.float infinity;
    Value.string "hello world";
    Value.string "";
    Value.bool true;
    Value.image sample_image;
    Value.composite (Composite.of_bands [ sample_image; sample_image ]);
    Value.matrix (Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |]);
    Value.vector [| 0.1; 0.2 |];
    Value.box (Box.make ~xmin:(-1.) ~ymin:0. ~xmax:2. ~ymax:3.);
    Value.abstime (Abstime.of_ymd 1986 1 15);
    Value.interval (Interval.of_ymd_pair (1986, 1, 1) (1989, 12, 31));
    Value.set [ Value.int 1; Value.set [ Value.string "nested" ] ];
    Value.set [] ]

let test_value_serialize_roundtrip () =
  List.iter
    (fun v ->
      match Value.deserialize (Value.serialize v) with
      | Ok v' ->
        check_bool (Value.to_display v ^ " roundtrips") true (Value.equal v v')
      | Error e -> Alcotest.failf "%s: %s" (Value.to_display v) e)
    sample_values

let test_value_hash_consistent () =
  List.iter
    (fun v ->
      match Value.deserialize (Value.serialize v) with
      | Ok v' ->
        check_int
          (Value.to_display v ^ " hash stable")
          (Value.content_hash v) (Value.content_hash v')
      | Error e -> Alcotest.failf "%s" e)
    sample_values

let test_value_types () =
  check_bool "int type" true (Vtype.equal (Value.type_of (Value.int 1)) Vtype.Int);
  check_bool "set type" true
    (Vtype.equal
       (Value.type_of (Value.set [ Value.box (Box.point 0. 0.) ]))
       (Vtype.Setof Vtype.Box));
  check_bool "empty set type" true
    (Vtype.equal (Value.type_of (Value.set [])) (Vtype.Setof Vtype.Any))

let test_value_accessors () =
  check_bool "int widens to float" true (Value.to_float (Value.int 3) = Ok 3.);
  check_bool "bad cast" true (Result.is_error (Value.to_int (Value.string "x")));
  check_bool "image to composite" true
    (Result.is_ok (Value.to_composite (Value.image sample_image)));
  check_bool "deserialize garbage" true (Result.is_error (Value.deserialize "(nope 1)"));
  check_bool "deserialize malformed box" true
    (Result.is_error (Value.deserialize "(box 1 2)"))

(* ------------------------------------------------------------------ *)
(* Operator                                                            *)
(* ------------------------------------------------------------------ *)

let add_op =
  Operator.lift2 ~name:"test_add" Vtype.Int Vtype.Int Vtype.Int (fun a b ->
      match Value.to_int a, Value.to_int b with
      | Ok x, Ok y -> Ok (Value.int (x + y))
      | _ -> Error "bad args")

let test_operator_apply () =
  check_bool "applies" true
    (Operator.apply add_op [ Value.int 2; Value.int 3 ] = Ok (Value.int 5));
  (match Operator.apply add_op [ Value.int 2 ] with
   | Error e -> check_str "arity error" "test_add: expected 2 argument(s), got 1" e
   | Ok _ -> Alcotest.fail "should fail");
  (match Operator.apply add_op [ Value.int 2; Value.string "x" ] with
   | Error e ->
     check_str "type error" "test_add: argument 2 has type string, expected int" e
   | Ok _ -> Alcotest.fail "should fail")

let test_operator_variadic () =
  let sum =
    Operator.make ~name:"test_sum" ~params:[] ~variadic:Vtype.Int
      ~returns:Vtype.Int (fun args ->
        let total =
          List.fold_left
            (fun acc v -> acc + Result.value ~default:0 (Value.to_int v))
            0 args
        in
        Ok (Value.int total))
  in
  check_bool "3 args" true
    (Operator.apply sum [ Value.int 1; Value.int 2; Value.int 3 ]
     = Ok (Value.int 6));
  check_bool "variadic type check" true
    (Result.is_error (Operator.apply sum [ Value.int 1; Value.string "x" ]))

let test_operator_exception_conversion () =
  let bad =
    Operator.lift1 ~name:"test_boom" Vtype.Int Vtype.Int (fun _ ->
        invalid_arg "internal failure")
  in
  match Operator.apply bad [ Value.int 1 ] with
  | Error e -> check_str "converted" "test_boom: internal failure" e
  | Ok _ -> Alcotest.fail "should convert the exception"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_builtins () =
  let reg = Registry.with_builtins () in
  check_bool "has img_nrow" true (Registry.find_operator reg "img_nrow" <> None);
  check_bool "has unsuperclassify" true
    (Registry.find_operator reg "unsuperclassify" <> None);
  check_bool "has pca compound" true (Registry.find_compound reg "pca" <> None);
  check_bool "rich operator suite" true (Registry.operator_count reg > 60);
  check_int "11 primitive classes" 11 (List.length (Registry.all_classes reg))

let test_registry_browse () =
  let reg = Registry.with_builtins () in
  let img_ops = Registry.operators_for_type reg Vtype.Image in
  check_bool "img ops found" true
    (List.exists (fun o -> Operator.name o = "img_subtract") img_ops);
  let classes = Registry.classes_with_operator reg "box_overlaps" in
  check_bool "box class found" true
    (List.exists (fun c -> c.Registry.cname = "box") classes)

let test_registry_duplicates () =
  let reg = Registry.create () in
  check_bool "first ok" true (Result.is_ok (Registry.register_operator reg add_op));
  check_bool "dup rejected" true
    (Result.is_error (Registry.register_operator reg add_op));
  check_bool "class ok" true
    (Result.is_ok (Registry.register_class reg ~name:"c" ~repr:Vtype.Int ()));
  check_bool "dup class" true
    (Result.is_error (Registry.register_class reg ~name:"c" ~repr:Vtype.Int ()))

let test_registry_user_extension () =
  (* the paper's extensibility: users define new operators and use them *)
  let reg = Registry.with_builtins () in
  let double =
    Operator.lift1 ~name:"user_double" Vtype.Image Vtype.Image (fun v ->
        Result.map
          (fun i -> Value.image (Gaea_raster.Band_math.scale 2. i))
          (Value.to_image v))
  in
  check_bool "registered" true (Result.is_ok (Registry.register_operator reg double));
  let img = Image.of_array ~nrow:1 ~ncol:1 Pixel.Float8 [| 21. |] in
  match Registry.apply reg "user_double" [ Value.image img ] with
  | Ok (Value.VImage out) -> Alcotest.(check (float 0.)) "applied" 42. (Image.get out 0 0)
  | _ -> Alcotest.fail "user operator failed"

let test_pca_compound_equals_native () =
  (* the Fig 4 network and the native implementation agree *)
  let reg = Registry.with_builtins () in
  let scene = Gaea_raster.Synthetic.landsat_scene ~seed:20 ~nrow:12 ~ncol:12 ~bands:3 () in
  let c = Value.composite scene.Gaea_raster.Synthetic.composite in
  let k = Value.int 2 in
  match
    Registry.apply reg "pca" [ c; k ], Registry.apply reg "pca_native" [ c; k ]
  with
  | Ok (Value.VComposite net), Ok (Value.VComposite native) ->
    check_int "bands" (Composite.n_bands native) (Composite.n_bands net);
    List.iter2
      (fun a b ->
        Alcotest.(check (float 1e-6)) "pixels agree"
          0. (Gaea_raster.Imgstats.rmse a b))
      (Composite.bands net) (Composite.bands native)
  | Error e, _ | _, Error e -> Alcotest.failf "pca failed: %s" e
  | _ -> Alcotest.fail "unexpected value kinds"

let test_spca_compound_equals_native () =
  let reg = Registry.with_builtins () in
  let scene = Gaea_raster.Synthetic.landsat_scene ~seed:21 ~nrow:10 ~ncol:10 ~bands:2 () in
  let c = Value.composite scene.Gaea_raster.Synthetic.composite in
  match
    Registry.apply reg "spca" [ c; Value.int 2 ],
    Registry.apply reg "spca_native" [ c; Value.int 2 ]
  with
  | Ok (Value.VComposite net), Ok (Value.VComposite native) ->
    List.iter2
      (fun a b ->
        Alcotest.(check (float 1e-6)) "pixels agree" 0.
          (Gaea_raster.Imgstats.rmse a b))
      (Composite.bands net) (Composite.bands native)
  | Error e, _ | _, Error e -> Alcotest.failf "spca failed: %s" e
  | _ -> Alcotest.fail "unexpected value kinds"

let test_registry_template_ops () =
  let reg = Registry.with_builtins () in
  let boxes =
    Value.set
      [ Value.box (Box.make ~xmin:0. ~ymin:0. ~xmax:10. ~ymax:10.);
        Value.box (Box.make ~xmin:5. ~ymin:5. ~xmax:15. ~ymax:15.) ]
  in
  check_bool "common_boxes overlap" true
    (Registry.apply reg "common_boxes" [ boxes ] = Ok (Value.bool true));
  let disjoint =
    Value.set
      [ Value.box (Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.);
        Value.box (Box.make ~xmin:5. ~ymin:5. ~xmax:6. ~ymax:6.) ]
  in
  check_bool "common_boxes disjoint" true
    (Registry.apply reg "common_boxes" [ disjoint ] = Ok (Value.bool false));
  check_bool "card" true
    (Registry.apply reg "card" [ boxes ] = Ok (Value.int 2));
  check_bool "anyof" true
    (Result.is_ok (Registry.apply reg "anyof" [ boxes ]));
  check_bool "anyof empty set errors" true
    (Result.is_error (Registry.apply reg "anyof" [ Value.set [] ]))

(* ------------------------------------------------------------------ *)
(* Dataflow                                                            *)
(* ------------------------------------------------------------------ *)

let lookup_add name = if name = "test_add" then Some add_op else None

let test_dataflow_simple () =
  (* (a + b) + 10 *)
  let open Dataflow in
  match
    make ~name:"addnet" ~input_types:[ Vtype.Int; Vtype.Int ]
      ~returns:Vtype.Int
      ~nodes:
        [ node 1 "test_add" [ From_input 0; From_input 1 ];
          node 2 "test_add" [ From_node 1; From_const (Value.int 10) ] ]
      (From_node 2)
  with
  | Error e -> Alcotest.failf "make: %s" e
  | Ok net ->
    check_int "stages" 2 (Dataflow.stages net);
    (match Dataflow.execute ~lookup:lookup_add net [ Value.int 3; Value.int 4 ] with
     | Ok (Value.VInt 17) -> ()
     | Ok v -> Alcotest.failf "wrong result %s" (Value.to_display v)
     | Error e -> Alcotest.failf "execute: %s" e);
    check_bool "input arity checked" true
      (Result.is_error (Dataflow.execute ~lookup:lookup_add net [ Value.int 3 ]));
    check_bool "input type checked" true
      (Result.is_error
         (Dataflow.execute ~lookup:lookup_add net
            [ Value.int 3; Value.string "x" ]));
    check_bool "describe mentions ops" true
      (String.length (Dataflow.describe net) > 20)

let test_dataflow_validation () =
  let open Dataflow in
  let mk nodes output =
    make ~name:"bad" ~input_types:[ Vtype.Int ] ~returns:Vtype.Int ~nodes output
  in
  check_bool "dup id" true
    (Result.is_error
       (mk [ node 1 "f" [ From_input 0 ]; node 1 "g" [ From_input 0 ] ]
          (From_node 1)));
  check_bool "unknown node ref" true
    (Result.is_error (mk [ node 1 "f" [ From_node 9 ] ] (From_node 1)));
  check_bool "bad input index" true
    (Result.is_error (mk [ node 1 "f" [ From_input 3 ] ] (From_node 1)));
  check_bool "cycle" true
    (Result.is_error
       (mk
          [ node 1 "f" [ From_node 2 ]; node 2 "g" [ From_node 1 ] ]
          (From_node 2)));
  check_bool "unknown output" true
    (Result.is_error (mk [ node 1 "f" [ From_input 0 ] ] (From_node 5)))

let test_dataflow_unknown_operator () =
  let open Dataflow in
  match
    make ~name:"n" ~input_types:[ Vtype.Int ] ~returns:Vtype.Int
      ~nodes:[ node 1 "nonexistent" [ From_input 0 ] ]
      (From_node 1)
  with
  | Error e -> Alcotest.failf "make: %s" e
  | Ok net ->
    (match Dataflow.execute ~lookup:(fun _ -> None) net [ Value.int 1 ] with
     | Error e -> check_str "reports" "n: unknown operator nonexistent" e
     | Ok _ -> Alcotest.fail "should fail")

let test_dataflow_to_operator () =
  let open Dataflow in
  match
    make ~name:"inc" ~input_types:[ Vtype.Int ] ~returns:Vtype.Int
      ~nodes:[ node 1 "test_add" [ From_input 0; From_const (Value.int 1) ] ]
      (From_node 1)
  with
  | Error e -> Alcotest.failf "make: %s" e
  | Ok net ->
    let op = Dataflow.to_operator ~lookup:lookup_add net in
    check_bool "wrapped works" true
      (Operator.apply op [ Value.int 41 ] = Ok (Value.int 42))


(* random value generator for the roundtrip property *)
let value_gen =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self n ->
            let scalar =
              oneof
                [ map Value.int int;
                  map Value.float (float_range (-1e6) 1e6);
                  map Value.string (string_size ~gen:printable (int_range 0 12));
                  map Value.bool bool;
                  map
                    (fun s -> Value.abstime (Abstime.of_seconds s))
                    (int_range (-1000000000) 1000000000);
                  map2
                    (fun s len ->
                      Value.interval
                        (Interval.make (Abstime.of_seconds s)
                           (Abstime.of_seconds (s + len))))
                    (int_range (-1000000) 1000000)
                    (int_range 0 100000);
                  map
                    (fun (x1, y1, x2, y2) ->
                      Value.box (Box.of_corners (x1, y1) (x2, y2)))
                    (quad (float_range (-100.) 100.) (float_range (-100.) 100.)
                       (float_range (-100.) 100.) (float_range (-100.) 100.));
                  map
                    (fun vs -> Value.vector (Array.of_list vs))
                    (list_size (int_range 0 6) (float_range (-10.) 10.));
                  map
                    (fun cells ->
                      Value.image
                        (Image.of_array ~nrow:3 ~ncol:2 Pixel.Float8
                           (Array.of_list cells)))
                    (list_size (return 6) (float_range (-10.) 10.))
                ]
            in
            if n <= 0 then scalar
            else
              frequency
                [ (4, scalar);
                  (1, map Value.set (list_size (int_range 0 3) (self (n / 2)))) ])
          (min size 6)))

let value_arb = QCheck.make ~print:Value.to_display value_gen

let value_roundtrip_prop =
  QCheck.Test.make ~name:"random value serialize/deserialize roundtrip"
    ~count:300 value_arb (fun v ->
      match Value.deserialize (Value.serialize v) with
      | Ok v' -> Value.equal v v' && Value.content_hash v = Value.content_hash v'
      | Error _ -> false)

let scalar_pair_gen =
  QCheck.Gen.(
    let scalar =
      oneof
        [ map Value.int int;
          map Value.float (float_range (-1e6) 1e6);
          map Value.string (string_size ~gen:printable (int_range 0 8)) ]
    in
    pair scalar scalar)

let vorder_antisym_prop =
  QCheck.Test.make ~name:"vorder: compare antisymmetric on same-kind scalars"
    ~count:300 (QCheck.make scalar_pair_gen) (fun (a, b) ->
      match
        Gaea_storage.Vorder.compare a b, Gaea_storage.Vorder.compare b a
      with
      | Ok x, Ok y -> (x > 0) = (y < 0) && (x = 0) = (y = 0)
      | Error _, Error _ -> true
      | _ -> false)

let () =
  Alcotest.run "adt"
    [ ( "sexp",
        [ tc "rendering" test_sexp_basic;
          tc "parsing" test_sexp_parse;
          tc "escapes" test_sexp_escapes ] );
      qsuite "sexp-props" [ sexp_roundtrip_prop ];
      qsuite "value-props" [ value_roundtrip_prop; vorder_antisym_prop ];
      ( "vtype",
        [ tc "matches" test_vtype_matches;
          tc "strings" test_vtype_strings;
          tc "base" test_vtype_base ] );
      ( "value",
        [ tc "serialize roundtrip" test_value_serialize_roundtrip;
          tc "hash consistency" test_value_hash_consistent;
          tc "types" test_value_types;
          tc "accessors" test_value_accessors ] );
      ( "operator",
        [ tc "apply/typecheck" test_operator_apply;
          tc "variadic" test_operator_variadic;
          tc "exception conversion" test_operator_exception_conversion ] );
      ( "registry",
        [ tc "builtins" test_registry_builtins;
          tc "browse" test_registry_browse;
          tc "duplicates" test_registry_duplicates;
          tc "user extension" test_registry_user_extension;
          tc "pca net = native" test_pca_compound_equals_native;
          tc "spca net = native" test_spca_compound_equals_native;
          tc "template operators" test_registry_template_ops ] );
      ( "dataflow",
        [ tc "simple network" test_dataflow_simple;
          tc "validation" test_dataflow_validation;
          tc "unknown operator" test_dataflow_unknown_operator;
          tc "to_operator" test_dataflow_to_operator ] ) ]
