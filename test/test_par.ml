(* Tests for the domain pool (lib/par) and for the parity invariant the
   parallel raster kernels rely on: chunk layout depends only on
   (lo, hi, grain), reductions combine in ascending chunk order, so a
   kernel produces bit-identical results at any pool size. *)

open Gaea_raster
module Pool = Gaea_par.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f

(* run [f] with the pool forced to [n] lanes, restoring the default *)
let with_size n f =
  let saved = Pool.size () in
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size saved) f

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_for_covers () =
  with_size 4 (fun () ->
      let n = 100_000 in
      let a = Array.make n 0 in
      Pool.parallel_for ~lo:0 ~hi:n (fun i -> a.(i) <- (i * 2) + 1);
      let all = ref true in
      Array.iteri (fun i v -> if v <> (i * 2) + 1 then all := false) a;
      check_bool "every index written once" true !all)

let test_parallel_for_ranges_partition () =
  with_size 4 (fun () ->
      let n = 50_000 in
      let a = Array.make n 0 in
      Pool.parallel_for_ranges ~grain:1000 ~lo:0 ~hi:n (fun lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- a.(i) + 1
          done);
      check_bool "ranges partition the interval" true
        (Array.for_all (( = ) 1) a))

let test_map_chunks_layout_independent_of_size () =
  let layout lanes =
    with_size lanes (fun () ->
        Pool.map_chunks ~grain:1000 ~lo:0 ~hi:10_500 (fun lo hi -> (lo, hi)))
  in
  let l1 = layout 1 and l4 = layout 4 in
  Alcotest.(check (array (pair int int))) "same chunks at any size" l1 l4;
  check_int "ceil(10500/1000) chunks" 11 (Array.length l4);
  let contiguous = ref true in
  Array.iteri
    (fun i (lo, hi) ->
      if lo <> i * 1000 then contiguous := false;
      if hi <> Stdlib.min 10_500 ((i + 1) * 1000) then contiguous := false)
    l4;
  check_bool "chunks contiguous and grain-aligned" true !contiguous

let test_reduce_combines_in_chunk_order () =
  (* list append is not commutative: any out-of-order combine shows up *)
  let run lanes =
    with_size lanes (fun () ->
        Pool.parallel_for_reduce ~grain:10 ~lo:0 ~hi:100 ~init:[]
          ~reduce:( @ )
          (fun lo _hi -> [ lo ]))
  in
  Alcotest.(check (list int)) "ascending chunk order"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (run 4);
  Alcotest.(check (list int)) "same at size 1" (run 1) (run 4)

let test_reduce_sum () =
  with_size 4 (fun () ->
      let n = 123_457 in
      let total =
        Pool.parallel_for_reduce ~lo:0 ~hi:n ~init:0 ~reduce:( + )
          (fun lo hi ->
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + i
            done;
            !acc)
      in
      check_int "gauss sum" (n * (n - 1) / 2) total)

let test_exception_propagates () =
  with_size 4 (fun () ->
      let raised =
        try
          Pool.parallel_for ~grain:10 ~lo:0 ~hi:1000 (fun i ->
              if i = 777 then failwith "boom");
          false
        with Failure m -> m = "boom"
      in
      check_bool "body exception re-raised to caller" true raised)

let test_nested_region_falls_back () =
  (* a parallel body issuing another parallel call must not deadlock:
     the inner call detects the region and runs sequentially *)
  with_size 4 (fun () ->
      let a = Array.make 10_000 0 in
      Pool.parallel_for_ranges ~grain:10 ~lo:0 ~hi:200 (fun lo hi ->
          for i = lo to hi - 1 do
            Pool.parallel_for ~grain:1 ~lo:0 ~hi:50 (fun j ->
                a.((i * 50) + j) <- 1)
          done);
      check_bool "nested body completed" true (Array.for_all (( = ) 1) a))

let test_set_size_clamps () =
  with_size 1 (fun () ->
      Pool.set_size 99;
      check_int "clamped to max_size" Pool.max_size (Pool.size ());
      Pool.set_size 0;
      check_int "clamped to 1" 1 (Pool.size ()))

(* ------------------------------------------------------------------ *)
(* Parity: kernels are bit-identical at pool size 1 and size 4.        *)
(* 72x72 = 5184 pixels > default grain, so size 4 really runs the      *)
(* multi-chunk path.                                                   *)
(* ------------------------------------------------------------------ *)

let scene = lazy (Synthetic.landsat_scene ~seed:5 ~nrow:72 ~ncol:72 ())

let test_parity_kmeans () =
  let s = Lazy.force scene in
  let r1 =
    with_size 1 (fun () -> Kmeans.unsuperclassify ~seed:3 s.Synthetic.composite 6)
  in
  let r4 =
    with_size 4 (fun () -> Kmeans.unsuperclassify ~seed:3 s.Synthetic.composite 6)
  in
  check_bool "labels bit-identical" true
    (Image.equal r1.Kmeans.labels r4.Kmeans.labels);
  check_bool "centroids bit-identical" true
    (r1.Kmeans.centroids = r4.Kmeans.centroids);
  check_bool "inertia bit-identical" true
    (Float.equal r1.Kmeans.inertia r4.Kmeans.inertia);
  check_int "same iterations" r1.Kmeans.iterations r4.Kmeans.iterations

let test_parity_maxlike () =
  let s = Lazy.force scene in
  let model = Maxlike.train s.Synthetic.composite s.Synthetic.truth in
  let c1 = with_size 1 (fun () -> Maxlike.classify model s.Synthetic.composite) in
  let c4 = with_size 4 (fun () -> Maxlike.classify model s.Synthetic.composite) in
  check_bool "labels bit-identical" true (Image.equal c1 c4)

let test_parity_composite_matrix () =
  let s = Lazy.force scene in
  let comp = s.Synthetic.composite in
  let m1 = with_size 1 (fun () -> Composite.to_matrix comp) in
  let m4 = with_size 4 (fun () -> Composite.to_matrix comp) in
  check_bool "to_matrix bit-identical" true (Matrix.equal m1 m4);
  let back lanes =
    with_size lanes (fun () ->
        Composite.of_matrix ~nrow:(Composite.nrow comp)
          ~ncol:(Composite.ncol comp) Pixel.Float8 m1)
  in
  check_bool "of_matrix bit-identical" true
    (Composite.equal (back 1) (back 4))

let test_parity_ndvi () =
  let red, nir = Synthetic.red_nir_pair ~seed:8 ~nrow:72 ~ncol:72 () in
  let n1 = with_size 1 (fun () -> Ndvi.ndvi ~red ~nir ()) in
  let n4 = with_size 4 (fun () -> Ndvi.ndvi ~red ~nir ()) in
  check_bool "ndvi bit-identical" true (Image.equal n1 n4)

let test_parity_covariance () =
  let s = Lazy.force scene in
  let obs = Composite.to_matrix s.Synthetic.composite in
  let c1 = with_size 1 (fun () -> Matrix.covariance obs) in
  let c4 = with_size 4 (fun () -> Matrix.covariance obs) in
  (* exact, not approx: partial sums combine in chunk order *)
  check_bool "covariance bit-identical" true (Matrix.equal c1 c4)

let () =
  Alcotest.run "par"
    [ ( "pool",
        [ tc "parallel_for covers" test_parallel_for_covers;
          tc "ranges partition" test_parallel_for_ranges_partition;
          tc "chunk layout vs size" test_map_chunks_layout_independent_of_size;
          tc "reduce order" test_reduce_combines_in_chunk_order;
          tc "reduce sum" test_reduce_sum;
          tc "exception propagates" test_exception_propagates;
          tc "nested fallback" test_nested_region_falls_back;
          tc "set_size clamps" test_set_size_clamps ] );
      ( "parity",
        [ tc "kmeans" test_parity_kmeans;
          tc "maxlike" test_parity_maxlike;
          tc "composite<->matrix" test_parity_composite_matrix;
          tc "ndvi" test_parity_ndvi;
          tc "covariance" test_parity_covariance ] ) ]
