(* Tests for the domain pool (lib/par) and for the parity invariant the
   parallel raster kernels rely on: chunk layout depends only on
   (lo, hi, grain), reductions combine in ascending chunk order, so a
   kernel produces bit-identical results at any pool size — and the
   fused closure-free kernels are bit-identical to their map/map2/fold
   reference implementations. *)

open Gaea_raster
module Pool = Gaea_par.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f

(* On a single-core host the adaptive cutoff resolves to max_int and
   every entry point would take the sequential path — all the parity
   tests below would silently compare sequential against sequential.
   Forcing the cutoff to 0 keeps the dispatch machinery engaged
   regardless of the host. *)
let () = Pool.set_min_parallel_work (Some 0)

(* run [f] with the pool forced to [n] lanes, restoring the default *)
let with_size n f =
  let saved = Pool.size () in
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size saved) f

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_for_covers () =
  with_size 4 (fun () ->
      let n = 100_000 in
      let a = Array.make n 0 in
      Pool.parallel_for ~lo:0 ~hi:n (fun i -> a.(i) <- (i * 2) + 1);
      let all = ref true in
      Array.iteri (fun i v -> if v <> (i * 2) + 1 then all := false) a;
      check_bool "every index written once" true !all)

let test_parallel_for_ranges_partition () =
  with_size 4 (fun () ->
      let n = 50_000 in
      let a = Array.make n 0 in
      Pool.parallel_for_ranges ~grain:1000 ~lo:0 ~hi:n (fun lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- a.(i) + 1
          done);
      check_bool "ranges partition the interval" true
        (Array.for_all (( = ) 1) a))

let test_map_chunks_layout_independent_of_size () =
  let layout lanes =
    with_size lanes (fun () ->
        Pool.map_chunks ~grain:1000 ~lo:0 ~hi:10_500 (fun lo hi -> (lo, hi)))
  in
  let l1 = layout 1 and l4 = layout 4 in
  Alcotest.(check (array (pair int int))) "same chunks at any size" l1 l4;
  check_int "ceil(10500/1000) chunks" 11 (Array.length l4);
  let contiguous = ref true in
  Array.iteri
    (fun i (lo, hi) ->
      if lo <> i * 1000 then contiguous := false;
      if hi <> Stdlib.min 10_500 ((i + 1) * 1000) then contiguous := false)
    l4;
  check_bool "chunks contiguous and grain-aligned" true !contiguous

let test_grain_exceeds_range () =
  (* a grain larger than the range degrades to a single chunk covering
     the whole interval, on both the chunked and the iteration paths *)
  with_size 4 (fun () ->
      let chunks =
        Pool.map_chunks ~grain:10_000 ~lo:5 ~hi:105 (fun lo hi -> (lo, hi))
      in
      Alcotest.(check (array (pair int int))) "one whole-range chunk"
        [| (5, 105) |] chunks;
      let a = Array.make 100 0 in
      Pool.parallel_for ~grain:10_000 ~lo:0 ~hi:100 (fun i -> a.(i) <- 1);
      check_bool "covered" true (Array.for_all (( = ) 1) a);
      check_int "empty range has no chunks" 0
        (Array.length (Pool.map_chunks ~grain:10 ~lo:7 ~hi:7 (fun _ _ -> ()))))

let test_reduce_combines_in_chunk_order () =
  (* list append is not commutative: any out-of-order combine shows up *)
  let run lanes =
    with_size lanes (fun () ->
        Pool.parallel_for_reduce ~grain:10 ~lo:0 ~hi:100 ~init:[]
          ~reduce:( @ )
          (fun lo _hi -> [ lo ]))
  in
  Alcotest.(check (list int)) "ascending chunk order"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (run 4);
  Alcotest.(check (list int)) "same at size 1" (run 1) (run 4)

let test_reduce_sum () =
  with_size 4 (fun () ->
      let n = 123_457 in
      let total =
        Pool.parallel_for_reduce ~lo:0 ~hi:n ~init:0 ~reduce:( + )
          (fun lo hi ->
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + i
            done;
            !acc)
      in
      check_int "gauss sum" (n * (n - 1) / 2) total)

let test_exception_propagates () =
  with_size 4 (fun () ->
      let raised =
        try
          Pool.parallel_for ~grain:10 ~lo:0 ~hi:1000 (fun i ->
              if i = 777 then failwith "boom");
          false
        with Failure m -> m = "boom"
      in
      check_bool "body exception re-raised to caller" true raised)

let test_pool_reusable_after_exception () =
  (* a chunk exception must not wedge the pool: the remaining chunks
     still drain and the next dispatch works normally *)
  with_size 4 (fun () ->
      (try
         Pool.parallel_for ~grain:10 ~lo:0 ~hi:1000 (fun i ->
             if i = 500 then failwith "kaboom")
       with Failure _ -> ());
      let n = 10_000 in
      let total =
        Pool.parallel_for_reduce ~grain:100 ~lo:0 ~hi:n ~init:0 ~reduce:( + )
          (fun lo hi ->
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + i
            done;
            !acc)
      in
      check_int "pool still dispatches" (n * (n - 1) / 2) total)

let test_nested_region_falls_back () =
  (* a parallel body issuing another parallel call must not deadlock:
     the inner call detects the region and runs sequentially *)
  with_size 4 (fun () ->
      let a = Array.make 10_000 0 in
      Pool.parallel_for_ranges ~grain:10 ~lo:0 ~hi:200 (fun lo hi ->
          for i = lo to hi - 1 do
            Pool.parallel_for ~grain:1 ~lo:0 ~hi:50 (fun j ->
                a.((i * 50) + j) <- 1)
          done);
      check_bool "nested body completed" true (Array.for_all (( = ) 1) a))

let test_set_size_clamps () =
  with_size 1 (fun () ->
      Pool.set_size 99;
      check_int "clamped to max_size" Pool.max_size (Pool.size ());
      Pool.set_size 0;
      check_int "clamped to 1" 1 (Pool.size ()))

let test_set_size_deferred_inside_region () =
  (* resizing from inside a parallel region would deadlock on the
     region mutex; the request is recorded instead and applied at the
     next region entry *)
  with_size 4 (fun () ->
      Pool.parallel_for_ranges ~grain:64 ~lo:0 ~hi:1024 (fun _ _ ->
          Pool.set_size 2);
      check_int "request applied after the region" 2 (Pool.size ());
      (* the resized pool dispatches fine *)
      let a = Array.make 5000 0 in
      Pool.parallel_for ~lo:0 ~hi:5000 (fun i -> a.(i) <- 1);
      check_bool "resized pool works" true (Array.for_all (( = ) 1) a))

let test_cutoff_override () =
  Fun.protect
    ~finally:(fun () -> Pool.set_min_parallel_work (Some 0))
    (fun () ->
      Pool.set_min_parallel_work (Some 123);
      check_int "override respected" 123 (Pool.min_parallel_work ());
      (* a cutoff above the range size forces the sequential path;
         results are unchanged *)
      Pool.set_min_parallel_work (Some max_int);
      with_size 4 (fun () ->
          let n = 10_000 in
          let a = Array.make n 0 in
          Pool.parallel_for ~lo:0 ~hi:n (fun i -> a.(i) <- i + 1);
          let ok = ref true in
          Array.iteri (fun i v -> if v <> i + 1 then ok := false) a;
          check_bool "sequential fallback correct" true !ok))

(* ------------------------------------------------------------------ *)
(* parallel_batch                                                      *)
(* ------------------------------------------------------------------ *)

let test_batch_order () =
  let run lanes =
    with_size lanes (fun () ->
        Pool.parallel_batch (Array.init 20 (fun i () -> (i * i) + 1)))
  in
  Alcotest.(check (array int)) "results land in slot order"
    (Array.init 20 (fun i -> (i * i) + 1))
    (run 4);
  Alcotest.(check (array int)) "same at size 1" (run 1) (run 4);
  check_int "empty batch" 0
    (Array.length (with_size 4 (fun () -> Pool.parallel_batch [||])))

let test_batch_exception_runs_all () =
  (* a raising thunk must not skip the others, and the first error (in
     claim order) is re-raised after the whole batch completes — the
     sequential fallback matches this exactly *)
  let check_at lanes =
    with_size lanes (fun () ->
        let ran = Array.init 8 (fun _ -> Atomic.make false) in
        let raised =
          try
            ignore
              (Pool.parallel_batch
                 (Array.init 8 (fun i () ->
                      Atomic.set ran.(i) true;
                      if i = 3 then failwith "thunk-3";
                      i)));
            false
          with Failure m -> m = "thunk-3"
        in
        check_bool
          (Printf.sprintf "exception re-raised @%d" lanes)
          true raised;
        check_bool
          (Printf.sprintf "every thunk still ran @%d" lanes)
          true
          (Array.for_all Atomic.get ran))
  in
  check_at 1;
  check_at 4

let test_batch_nested_falls_back () =
  with_size 4 (fun () ->
      let out = Array.make 8 [||] in
      Pool.parallel_for ~grain:1 ~lo:0 ~hi:8 (fun i ->
          out.(i) <- Pool.parallel_batch (Array.init 4 (fun j () -> (i * 4) + j)));
      let ok = ref true in
      Array.iteri
        (fun i b ->
          if b <> Array.init 4 (fun j -> (i * 4) + j) then ok := false)
        out;
      check_bool "nested batches completed sequentially" true !ok)

(* ------------------------------------------------------------------ *)
(* Parity: kernels are bit-identical at pool sizes 1, 2 and 8.         *)
(* 72x72 = 5184 pixels > default grain, so multi-lane runs really      *)
(* take the multi-chunk path.                                          *)
(* ------------------------------------------------------------------ *)

let scene = lazy (Synthetic.landsat_scene ~seed:5 ~nrow:72 ~ncol:72 ())
let par_sizes = [ 2; 8 ]

let test_parity_kmeans () =
  let s = Lazy.force scene in
  let run lanes =
    with_size lanes (fun () -> Kmeans.unsuperclassify ~seed:3 s.Synthetic.composite 6)
  in
  let r1 = run 1 in
  List.iter
    (fun lanes ->
      let r = run lanes in
      check_bool
        (Printf.sprintf "labels bit-identical @%d" lanes)
        true
        (Image.equal r1.Kmeans.labels r.Kmeans.labels);
      check_bool
        (Printf.sprintf "centroids bit-identical @%d" lanes)
        true
        (r1.Kmeans.centroids = r.Kmeans.centroids);
      check_bool
        (Printf.sprintf "inertia bit-identical @%d" lanes)
        true
        (Float.equal r1.Kmeans.inertia r.Kmeans.inertia);
      check_int
        (Printf.sprintf "same iterations @%d" lanes)
        r1.Kmeans.iterations r.Kmeans.iterations)
    par_sizes

let test_parity_maxlike () =
  let s = Lazy.force scene in
  let model = Maxlike.train s.Synthetic.composite s.Synthetic.truth in
  let c1 = with_size 1 (fun () -> Maxlike.classify model s.Synthetic.composite) in
  List.iter
    (fun lanes ->
      let c = with_size lanes (fun () -> Maxlike.classify model s.Synthetic.composite) in
      check_bool
        (Printf.sprintf "labels bit-identical @%d" lanes)
        true (Image.equal c1 c))
    par_sizes

let test_parity_composite_matrix () =
  let s = Lazy.force scene in
  let comp = s.Synthetic.composite in
  let m1 = with_size 1 (fun () -> Composite.to_matrix comp) in
  let back lanes =
    with_size lanes (fun () ->
        Composite.of_matrix ~nrow:(Composite.nrow comp)
          ~ncol:(Composite.ncol comp) Pixel.Float8 m1)
  in
  let b1 = back 1 in
  List.iter
    (fun lanes ->
      let m = with_size lanes (fun () -> Composite.to_matrix comp) in
      check_bool
        (Printf.sprintf "to_matrix bit-identical @%d" lanes)
        true (Matrix.equal m1 m);
      check_bool
        (Printf.sprintf "of_matrix bit-identical @%d" lanes)
        true
        (Composite.equal b1 (back lanes)))
    par_sizes

let test_parity_ndvi () =
  let red, nir = Synthetic.red_nir_pair ~seed:8 ~nrow:72 ~ncol:72 () in
  let n1 = with_size 1 (fun () -> Ndvi.ndvi ~red ~nir ()) in
  List.iter
    (fun lanes ->
      let n = with_size lanes (fun () -> Ndvi.ndvi ~red ~nir ()) in
      check_bool
        (Printf.sprintf "ndvi bit-identical @%d" lanes)
        true (Image.equal n1 n))
    par_sizes

let test_parity_covariance () =
  let s = Lazy.force scene in
  let obs = Composite.to_matrix s.Synthetic.composite in
  let c1 = with_size 1 (fun () -> Matrix.covariance obs) in
  List.iter
    (fun lanes ->
      let c = with_size lanes (fun () -> Matrix.covariance obs) in
      (* exact, not approx: partial sums combine in chunk order *)
      check_bool
        (Printf.sprintf "covariance bit-identical @%d" lanes)
        true (Matrix.equal c1 c))
    par_sizes

(* ------------------------------------------------------------------ *)
(* Fused kernels vs their closure references.  The sequential map /    *)
(* map2 / fold implementations are the specification: the fused        *)
(* closure-free loops must match them bit for bit, at every pool size. *)
(* ------------------------------------------------------------------ *)

let rn_pair = lazy (Synthetic.red_nir_pair ~seed:8 ~nrow:72 ~ncol:72 ())

let check_fused name reference fused =
  let img1 = with_size 1 fused in
  check_bool (name ^ " matches reference") true (Image.equal reference img1);
  List.iter
    (fun lanes ->
      check_bool
        (Printf.sprintf "%s bit-identical @%d" name lanes)
        true
        (Image.equal img1 (with_size lanes fused)))
    par_sizes

let test_fused_band_math () =
  let a, b = Lazy.force rn_pair in
  check_fused "add"
    (Image.map2 ~ptype:Pixel.Float8 ( +. ) a b)
    (fun () -> Band_math.add a b);
  check_fused "subtract"
    (Image.map2 ~ptype:Pixel.Float8 (fun x y -> x -. y) a b)
    (fun () -> Band_math.subtract a b)

let test_fused_ndvi () =
  let red, nir = Lazy.force rn_pair in
  check_fused "ndvi"
    (Image.map2 ~ptype:Pixel.Float8
       (fun n r ->
         let d = n +. r in
         if d = 0. then 0. else (n -. r) /. d)
       nir red)
    (fun () -> Ndvi.ndvi ~red ~nir ())

let test_fused_composite_matrix () =
  let s = Lazy.force scene in
  let comp = s.Synthetic.composite in
  (* Composite.to_matrix / of_matrix are the references; Kernelized is
     the fused path used by PCA *)
  let reference = with_size 1 (fun () -> Composite.to_matrix comp) in
  let m1 = with_size 1 (fun () -> Kernelized.to_matrix comp) in
  check_bool "to_matrix matches reference" true (Matrix.equal reference m1);
  List.iter
    (fun lanes ->
      check_bool
        (Printf.sprintf "to_matrix bit-identical @%d" lanes)
        true
        (Matrix.equal m1 (with_size lanes (fun () -> Kernelized.to_matrix comp))))
    par_sizes;
  let nrow = Composite.nrow comp and ncol = Composite.ncol comp in
  let ref_back =
    with_size 1 (fun () -> Composite.of_matrix ~nrow ~ncol Pixel.Float8 m1)
  in
  let back lanes =
    with_size lanes (fun () -> Kernelized.of_matrix ~nrow ~ncol Pixel.Float8 m1)
  in
  check_bool "of_matrix matches reference" true
    (Composite.equal ref_back (back 1));
  List.iter
    (fun lanes ->
      check_bool
        (Printf.sprintf "of_matrix bit-identical @%d" lanes)
        true
        (Composite.equal ref_back (back lanes)))
    par_sizes

let test_fused_band_covariance () =
  let s = Lazy.force scene in
  let comp = s.Synthetic.composite in
  let reference =
    with_size 1 (fun () -> Matrix.covariance (Composite.to_matrix comp))
  in
  let c1 = with_size 1 (fun () -> Imgstats.band_covariance comp) in
  check_bool "band_covariance matches Matrix.covariance" true
    (Matrix.equal reference c1);
  List.iter
    (fun lanes ->
      check_bool
        (Printf.sprintf "band_covariance bit-identical @%d" lanes)
        true
        (Matrix.equal c1
           (with_size lanes (fun () -> Imgstats.band_covariance comp))))
    par_sizes

let test_fused_imgstats_fold_parity () =
  (* single-chunk image (below the default grain): the fused sum /
     mean / variance must reproduce the sequential fold association
     exactly, not just approximately *)
  let rng = Rng.create 21 in
  let img =
    Image.init ~nrow:40 ~ncol:25 Pixel.Float8 (fun _ _ ->
        Rng.float rng 2. -. 1.)
  in
  let n = float_of_int (Image.size img) in
  let ref_sum = Image.fold ( +. ) 0. img in
  let ref_mean = ref_sum /. n in
  let ref_var =
    Image.fold
      (fun acc v ->
        let d = v -. ref_mean in
        acc +. (d *. d))
      0. img
    /. (n -. 1.)
  in
  with_size 4 (fun () ->
      check_bool "sum = fold" true (Float.equal ref_sum (Imgstats.sum img));
      check_bool "mean = fold" true (Float.equal ref_mean (Imgstats.mean img));
      check_bool "variance = fold" true
        (Float.equal ref_var (Imgstats.variance img)));
  (* and on a multi-chunk image the chunked result is size-independent *)
  let big = Lazy.force scene in
  let band = List.hd (Composite.bands big.Synthetic.composite) in
  let s1 = with_size 1 (fun () -> Imgstats.sum band) in
  let v1 = with_size 1 (fun () -> Imgstats.variance band) in
  List.iter
    (fun lanes ->
      check_bool
        (Printf.sprintf "sum bit-identical @%d" lanes)
        true
        (Float.equal s1 (with_size lanes (fun () -> Imgstats.sum band)));
      check_bool
        (Printf.sprintf "variance bit-identical @%d" lanes)
        true
        (Float.equal v1 (with_size lanes (fun () -> Imgstats.variance band))))
    par_sizes

let () =
  Alcotest.run "par"
    [ ( "pool",
        [ tc "parallel_for covers" test_parallel_for_covers;
          tc "ranges partition" test_parallel_for_ranges_partition;
          tc "chunk layout vs size" test_map_chunks_layout_independent_of_size;
          tc "grain exceeds range" test_grain_exceeds_range;
          tc "reduce order" test_reduce_combines_in_chunk_order;
          tc "reduce sum" test_reduce_sum;
          tc "exception propagates" test_exception_propagates;
          tc "reusable after exception" test_pool_reusable_after_exception;
          tc "nested fallback" test_nested_region_falls_back;
          tc "set_size clamps" test_set_size_clamps;
          tc "set_size deferred in region" test_set_size_deferred_inside_region;
          tc "cutoff override" test_cutoff_override ] );
      ( "batch",
        [ tc "slot order" test_batch_order;
          tc "exception runs all" test_batch_exception_runs_all;
          tc "nested fallback" test_batch_nested_falls_back ] );
      ( "parity",
        [ tc "kmeans" test_parity_kmeans;
          tc "maxlike" test_parity_maxlike;
          tc "composite<->matrix" test_parity_composite_matrix;
          tc "ndvi" test_parity_ndvi;
          tc "covariance" test_parity_covariance ] );
      ( "fused",
        [ tc "band math" test_fused_band_math;
          tc "ndvi" test_fused_ndvi;
          tc "composite<->matrix" test_fused_composite_matrix;
          tc "band covariance" test_fused_band_covariance;
          tc "imgstats fold parity" test_fused_imgstats_fold_parity ] ) ]
