(* Tests for the raster substrate: pixels, images, matrices,
   eigendecomposition, band math, composites, statistics, classifiers,
   PCA, interpolation, NDVI, synthetic scenes and the RNG. *)

open Gaea_raster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let x = Rng.int a 1000 and y = Rng.int b 1000 in
  (* streams diverge (overwhelmingly likely for these seeds) *)
  check_bool "values differ" true (x <> y || Rng.int a 1000 <> Rng.int b 1000)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 7 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let rng_int_bounds_prop =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair (int_range 0 10000) (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let test_rng_gaussian_moments () =
  let rng = Rng.create 99 in
  let n = 20000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_close 0.05 "mean ~ 0" 0. mean;
  check_close 0.05 "var ~ 1" 1. var

(* ------------------------------------------------------------------ *)
(* Pixel                                                               *)
(* ------------------------------------------------------------------ *)

let test_pixel_quantize () =
  check_float "char clamps high" 255. (Pixel.quantize Pixel.Char 300.);
  check_float "char clamps low" 0. (Pixel.quantize Pixel.Char (-5.));
  check_float "char rounds" 4. (Pixel.quantize Pixel.Char 4.4);
  check_float "int2 saturates" 32767. (Pixel.quantize Pixel.Int2 1e9);
  check_float "int nan -> 0" 0. (Pixel.quantize Pixel.Int4 Float.nan);
  check_float "float8 identity" 1.25 (Pixel.quantize Pixel.Float8 1.25);
  (* float4 loses precision but is idempotent *)
  let v = Pixel.quantize Pixel.Float4 0.1 in
  check_float "float4 idempotent" v (Pixel.quantize Pixel.Float4 v)

let test_pixel_meta () =
  check_int "char bytes" 1 (Pixel.size_bytes Pixel.Char);
  check_int "float8 bytes" 8 (Pixel.size_bytes Pixel.Float8);
  check_bool "names roundtrip" true
    (List.for_all
       (fun p -> Pixel.of_string (Pixel.to_string p) = Some p)
       Pixel.all);
  check_bool "unknown name" true (Pixel.of_string "uint64" = None)

(* ------------------------------------------------------------------ *)
(* Image                                                               *)
(* ------------------------------------------------------------------ *)

let test_image_basics () =
  let img = Image.init ~nrow:3 ~ncol:4 Pixel.Float8 (fun r c -> float_of_int ((r * 4) + c)) in
  check_int "nrow" 3 (Image.img_nrow img);
  check_int "ncol" 4 (Image.img_ncol img);
  check_int "size" 12 (Image.size img);
  check_float "get" 6. (Image.get img 1 2);
  Alcotest.check_raises "oob" (Invalid_argument "Image: pixel (3,0) outside 3x4")
    (fun () -> ignore (Image.get img 3 0));
  let lo, hi = Image.min_max img in
  check_float "min" 0. lo;
  check_float "max" 11. hi

let test_image_quantizes_on_write () =
  let img = Image.create ~nrow:2 ~ncol:2 Pixel.Char in
  Image.set img 0 0 300.;
  check_float "clamped" 255. (Image.get img 0 0);
  Image.set img 0 1 3.7;
  check_float "rounded" 4. (Image.get img 0 1)

let test_image_map2_mismatch () =
  let a = Image.create ~nrow:2 ~ncol:2 Pixel.Float8 in
  let b = Image.create ~nrow:2 ~ncol:3 Pixel.Float8 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Image.map2: size mismatch 2x2 vs 2x3") (fun () ->
      ignore (Image.map2 ( +. ) a b))

let test_image_hash_and_equal () =
  let a = Image.init ~nrow:4 ~ncol:4 Pixel.Float8 (fun r c -> float_of_int (r + c)) in
  let b = Image.init ~nrow:4 ~ncol:4 Pixel.Float8 (fun r c -> float_of_int (r + c)) in
  check_bool "equal" true (Image.equal a b);
  check_int "hash equal" (Image.content_hash a) (Image.content_hash b);
  Image.set b 0 0 99.;
  check_bool "not equal" false (Image.equal a b);
  check_bool "hash differs" true (Image.content_hash a <> Image.content_hash b)

(* the boxed-Int64 FNV-1a loop content_hash replaced; the untagged-int
   rewrite must produce the very same values *)
let reference_content_hash img =
  let h = ref 0xcbf29ce484222325L in
  let feed v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  feed (Int64.of_int (Image.img_nrow img));
  feed (Int64.of_int (Image.img_ncol img));
  feed (Int64.of_int (Pixel.size_bytes (Image.img_type img)));
  Image.iter
    (fun v ->
      feed
        (if Float.is_nan v then 0x7ff8000000000000L else Int64.bits_of_float v))
    img;
  Int64.to_int (Int64.shift_right_logical !h 2)

let test_image_hash_matches_boxed_reference () =
  let images =
    [ Image.of_array ~nrow:2 ~ncol:4 Pixel.Float8
        [| 0.; -0.; 1.5; -273.15; Float.nan; infinity; neg_infinity; 1e-300 |];
      Image.init ~nrow:17 ~ncol:13 Pixel.Float8 (fun r c ->
          sin (float_of_int ((r * 13) + c)) *. 1000.);
      Image.init ~nrow:5 ~ncol:5 Pixel.Char (fun r c -> float_of_int (r * c));
      Image.init ~nrow:3 ~ncol:9 Pixel.Int2 (fun r c -> float_of_int ((r * 100) - c));
      Image.create ~nrow:1 ~ncol:1 Pixel.Float4 ]
  in
  List.iteri
    (fun i img ->
      check_int
        (Printf.sprintf "image %d hashes as before" i)
        (reference_content_hash img) (Image.content_hash img))
    images

let test_image_min_max_skips_nan () =
  (* regression: NaN pixels (cloud holes) used to poison min_max via
     NaN comparisons; they are skipped now *)
  let img =
    Image.of_array ~nrow:1 ~ncol:5 Pixel.Float8
      [| Float.nan; 2.; -3.; Float.nan; 7. |]
  in
  let lo, hi = Image.min_max img in
  check_float "min skips nan" (-3.) lo;
  check_float "max skips nan" 7. hi;
  (* a leading NaN must not stick either *)
  let leading = Image.of_array ~nrow:1 ~ncol:2 Pixel.Float8 [| Float.nan; 4. |] in
  let lo, hi = Image.min_max leading in
  check_float "min after leading nan" 4. lo;
  check_float "max after leading nan" 4. hi;
  (* all-NaN image: the empty-range convention *)
  let all_nan = Image.init ~nrow:2 ~ncol:2 Pixel.Float8 (fun _ _ -> Float.nan) in
  let lo, hi = Image.min_max all_nan in
  check_bool "all-nan min" true (lo = infinity);
  check_bool "all-nan max" true (hi = neg_infinity)

let test_image_of_array_validation () =
  Alcotest.check_raises "length"
    (Invalid_argument "Image.of_array: 3 values for 2x2 image") (fun () ->
      ignore (Image.of_array ~nrow:2 ~ncol:2 Pixel.Float8 [| 1.; 2.; 3. |]))

let test_image_with_ptype () =
  let a = Image.of_array ~nrow:1 ~ncol:3 Pixel.Float8 [| 1.4; 2.6; 300. |] in
  let b = Image.with_ptype Pixel.Char a in
  Alcotest.(check (list (float 0.))) "requantized" [ 1.; 3.; 255. ]
    (Image.to_list b)

let test_image_ascii () =
  let img = Image.init ~nrow:2 ~ncol:2 Pixel.Float8 (fun r c -> float_of_int (r + c)) in
  let s = Format.asprintf "%a" (Image.pp_ascii ?levels:None) img in
  check_bool "nonempty" true (String.length s > 4)

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

let test_matrix_mul_identity () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_bool "I*m = m" true (Matrix.equal (Matrix.mul (Matrix.identity 2) m) m);
  check_bool "m*I = m" true (Matrix.equal (Matrix.mul m (Matrix.identity 2)) m)

let test_matrix_transpose () =
  let m = Matrix.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Matrix.transpose m in
  check_int "rows" 3 (Matrix.rows t);
  check_float "cell" 6. (Matrix.get t 2 1);
  check_bool "involution" true (Matrix.equal (Matrix.transpose t) m)

let test_matrix_mul_known () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 19. (Matrix.get c 0 0);
  check_float "c11" 50. (Matrix.get c 1 1);
  Alcotest.check_raises "dim" (Invalid_argument "Matrix.mul: 2x2 * 3x1")
    (fun () ->
      ignore (Matrix.mul a (Matrix.create ~rows:3 ~cols:1)))

let test_matrix_center () =
  let m = Matrix.of_rows [| [| 1.; 10. |]; [| 3.; 20. |]; [| 5.; 30. |] |] in
  let centered, means = Matrix.center_columns m in
  Alcotest.(check (array (float 1e-9))) "means" [| 3.; 20. |] means;
  let new_means = Matrix.column_means centered in
  Alcotest.(check (array (float 1e-9))) "centered" [| 0.; 0. |] new_means

let test_matrix_covariance () =
  (* perfectly correlated columns *)
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |] in
  let cov = Matrix.covariance m in
  check_bool "symmetric" true (Matrix.is_symmetric cov);
  check_float "var x" 1. (Matrix.get cov 0 0);
  check_float "cov xy" 2. (Matrix.get cov 0 1);
  let corr = Matrix.correlation m in
  check_float "perfect corr" 1. (Matrix.get corr 0 1);
  check_float "diag 1" 1. (Matrix.get corr 1 1)

let test_matrix_correlation_constant_column () =
  let m = Matrix.of_rows [| [| 1.; 5. |]; [| 2.; 5. |]; [| 3.; 5. |] |] in
  let corr = Matrix.correlation m in
  check_float "const col off-diag 0" 0. (Matrix.get corr 0 1);
  check_float "const col diag 1" 1. (Matrix.get corr 1 1)

let mat_gen =
  QCheck.Gen.(
    let dim = int_range 1 5 in
    map3
      (fun r c cells ->
        Matrix.init ~rows:r ~cols:c (fun i j ->
            cells.((i * c) + j)))
      dim dim
      (array_size (return 25) (float_range (-10.) 10.)))

let mat_arb = QCheck.make ~print:(Format.asprintf "%a" Matrix.pp) mat_gen

let matrix_transpose_mul_prop =
  QCheck.Test.make ~name:"(A B)ᵀ = Bᵀ Aᵀ" ~count:200
    QCheck.(pair mat_arb mat_arb)
    (fun (a, b) ->
      QCheck.assume (Matrix.cols a = Matrix.rows b);
      Matrix.approx_equal ~eps:1e-6
        (Matrix.transpose (Matrix.mul a b))
        (Matrix.mul (Matrix.transpose b) (Matrix.transpose a)))

(* ------------------------------------------------------------------ *)
(* Eigen                                                               *)
(* ------------------------------------------------------------------ *)

let random_symmetric seed n =
  let rng = Rng.create seed in
  let m = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = Rng.float rng 10. -. 5. in
      Matrix.set m i j v;
      Matrix.set m j i v
    done
  done;
  m

let test_eigen_identity () =
  let d = Eigen.decompose (Matrix.identity 4) in
  Array.iter (fun v -> check_close 1e-9 "eigenvalue 1" 1. v) d.Eigen.values

let test_eigen_known () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1 *)
  let m = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let d = Eigen.decompose m in
  check_close 1e-9 "l1" 3. d.Eigen.values.(0);
  check_close 1e-9 "l2" 1. d.Eigen.values.(1)

let test_eigen_reconstruct () =
  List.iter
    (fun seed ->
      let m = random_symmetric seed 5 in
      let d = Eigen.decompose m in
      check_bool "reconstructs" true
        (Matrix.approx_equal ~eps:1e-7 (Eigen.reconstruct d) m);
      (* descending eigenvalues *)
      let sorted = ref true in
      for i = 0 to 3 do
        if d.Eigen.values.(i) < d.Eigen.values.(i + 1) then sorted := false
      done;
      check_bool "descending" true !sorted;
      (* orthonormal eigenvectors *)
      let vtv =
        Matrix.mul (Matrix.transpose d.Eigen.vectors) d.Eigen.vectors
      in
      check_bool "orthonormal" true
        (Matrix.approx_equal ~eps:1e-7 vtv (Matrix.identity 5)))
    [ 1; 2; 3; 4; 5 ]

let test_eigen_rejects_asymmetric () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Eigen.decompose: matrix not symmetric") (fun () ->
      ignore (Eigen.decompose m))

let test_eigen_explained () =
  let m = Matrix.of_rows [| [| 3.; 0. |]; [| 0.; 1. |] |] in
  let d = Eigen.decompose m in
  let e = Eigen.explained_variance d in
  check_close 1e-9 "first" 0.75 e.(0);
  check_close 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. e)

(* ------------------------------------------------------------------ *)
(* Band math / NDVI                                                    *)
(* ------------------------------------------------------------------ *)

let const_img v = Image.init ~nrow:4 ~ncol:4 Pixel.Float8 (fun _ _ -> v)

let test_band_math () =
  let a = const_img 10. and b = const_img 4. in
  check_float "sub" 6. (Image.get (Band_math.subtract a b) 0 0);
  check_float "div" 2.5 (Image.get (Band_math.divide a b) 0 0);
  check_float "div by zero -> 0" 0.
    (Image.get (Band_math.divide a (const_img 0.)) 0 0);
  check_float "ratio" (6. /. 14.) (Image.get (Band_math.ratio a b) 0 0);
  check_float "add" 14. (Image.get (Band_math.add a b) 0 0);
  check_float "mult" 40. (Image.get (Band_math.multiply a b) 0 0);
  check_float "scale" 30. (Image.get (Band_math.scale 3. a) 0 0);
  check_float "abs diff" 6. (Image.get (Band_math.abs_diff b a) 0 0)

let test_linear_combination () =
  let a = const_img 1. and b = const_img 2. and c = const_img 3. in
  let lc = Band_math.linear_combination [| 1.; -2.; 3. |] [ a; b; c ] in
  check_float "1 - 4 + 9" 6. (Image.get lc 0 0);
  Alcotest.check_raises "weight count"
    (Invalid_argument "Band_math.linear_combination: 2 weights, 3 images")
    (fun () ->
      ignore (Band_math.linear_combination [| 1.; 2. |] [ a; b; c ]))

let test_normalize_threshold () =
  let img = Image.of_array ~nrow:1 ~ncol:3 Pixel.Float8 [| 0.; 5.; 10. |] in
  let n = Band_math.normalize img in
  Alcotest.(check (list (float 1e-9))) "normalized" [ 0.; 0.5; 1. ]
    (Image.to_list n);
  let t = Band_math.threshold 5. img in
  Alcotest.(check (list (float 0.))) "threshold" [ 0.; 1.; 1. ]
    (Image.to_list t);
  let flat = Band_math.normalize (const_img 7.) in
  check_float "constant maps to lo" 0. (Image.get flat 0 0)

let test_ndvi () =
  let red = const_img 50. and nir = const_img 150. in
  let v = Ndvi.ndvi ~red ~nir () in
  check_float "ndvi" 0.5 (Image.get v 0 0);
  let lo, hi = Image.min_max v in
  check_bool "range" true (lo >= -1. && hi <= 1.);
  check_float "mean" 0.5 (Ndvi.mean_ndvi v);
  check_float "veg fraction" 1. (Ndvi.vegetation_fraction v);
  check_float "veg fraction cutoff" 0. (Ndvi.vegetation_fraction ~cutoff:0.9 v)

let test_ndvi_change_methods_differ () =
  let n88 = const_img 0.2 and n89 = const_img 0.4 in
  let by_sub = Ndvi.change_by_subtraction n89 n88 in
  let by_div = Ndvi.change_by_division n89 n88 in
  check_close 1e-9 "sub" 0.2 (Image.get by_sub 0 0);
  check_close 1e-9 "div" 2. (Image.get by_div 0 0)

(* ------------------------------------------------------------------ *)
(* Composite                                                           *)
(* ------------------------------------------------------------------ *)

let test_composite () =
  let b1 = const_img 1. and b2 = const_img 2. in
  let c = Composite.of_bands [ b1; b2 ] in
  check_int "bands" 2 (Composite.n_bands c);
  check_int "pixels" 16 (Composite.n_pixels c);
  Alcotest.(check (array (float 0.))) "pixel vector" [| 1.; 2. |]
    (Composite.pixel_vector c 0);
  Alcotest.check_raises "empty" (Invalid_argument "Composite.of_bands: no bands")
    (fun () -> ignore (Composite.of_bands []));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Composite.of_bands: band 1 size mismatch") (fun () ->
      ignore
        (Composite.of_bands
           [ b1; Image.create ~nrow:2 ~ncol:2 Pixel.Float8 ]))

let test_composite_matrix_roundtrip () =
  let b1 = Image.init ~nrow:3 ~ncol:2 Pixel.Float8 (fun r c -> float_of_int ((r * 2) + c)) in
  let b2 = Image.init ~nrow:3 ~ncol:2 Pixel.Float8 (fun r c -> float_of_int (10 + (r * 2) + c)) in
  let c = Composite.of_bands [ b1; b2 ] in
  let m = Composite.to_matrix c in
  check_int "rows = pixels" 6 (Matrix.rows m);
  check_int "cols = bands" 2 (Matrix.cols m);
  let c' = Composite.of_matrix ~nrow:3 ~ncol:2 Pixel.Float8 m in
  check_bool "roundtrip" true (Composite.equal c c')

(* ------------------------------------------------------------------ *)
(* Imgstats                                                            *)
(* ------------------------------------------------------------------ *)

let test_imgstats () =
  let img = Image.of_array ~nrow:1 ~ncol:5 Pixel.Float8 [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "mean" 3. (Imgstats.mean img);
  check_float "variance" 2.5 (Imgstats.variance img);
  check_float "sum" 15. (Imgstats.sum img);
  check_float "p100" 5. (Imgstats.percentile img 100.);
  check_float "p20" 1. (Imgstats.percentile img 20.);
  let h = Imgstats.histogram ~bins:4 img in
  check_int "bins" 4 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check_int "histogram covers all" 5 total

let test_imgstats_agreement () =
  let a = Image.of_array ~nrow:1 ~ncol:4 Pixel.Int4 [| 0.; 1.; 2.; 3. |] in
  let b = Image.of_array ~nrow:1 ~ncol:4 Pixel.Int4 [| 0.; 1.; 9.; 3. |] in
  check_float "agreement" 0.75 (Imgstats.agreement a b);
  check_float "rmse self" 0. (Imgstats.rmse a a);
  let conf = Imgstats.confusion a b in
  check_int "confusion (2,9)" 1 (Hashtbl.find conf (2, 9));
  check_int "confusion (0,0)" 1 (Hashtbl.find conf (0, 0))

(* ------------------------------------------------------------------ *)
(* Kmeans                                                              *)
(* ------------------------------------------------------------------ *)

let separated_composite () =
  (* two clearly separated intensity groups *)
  let img =
    Image.init ~nrow:8 ~ncol:8 Pixel.Float8 (fun r _ ->
        if r < 4 then 10. else 200.)
  in
  Composite.of_bands [ img ]

let test_kmeans_recovers_clusters () =
  let c = separated_composite () in
  let result = Kmeans.unsuperclassify ~seed:1 c 2 in
  (* pixels in the same half share a label; labels are 0 and 1 *)
  let l0 = Image.get result.Kmeans.labels 0 0 in
  let l1 = Image.get result.Kmeans.labels 7 7 in
  check_bool "two labels" true (l0 <> l1);
  check_bool "labels in range" true
    (Image.fold (fun acc v -> acc && (v = 0. || v = 1.)) true result.Kmeans.labels);
  (* stable relabeling: cluster 0 has the smaller centroid *)
  check_bool "centroid order" true
    (result.Kmeans.centroids.(0).(0) < result.Kmeans.centroids.(1).(0))

let test_kmeans_deterministic () =
  let scene = Synthetic.landsat_scene ~seed:3 ~nrow:16 ~ncol:16 () in
  let r1 = Kmeans.unsuperclassify ~seed:5 scene.Synthetic.composite 4 in
  let r2 = Kmeans.unsuperclassify ~seed:5 scene.Synthetic.composite 4 in
  check_bool "same labels" true (Image.equal r1.Kmeans.labels r2.Kmeans.labels);
  check_float "same inertia" r1.Kmeans.inertia r2.Kmeans.inertia

let test_kmeans_inertia_decreases_with_k () =
  let scene = Synthetic.landsat_scene ~seed:4 ~nrow:16 ~ncol:16 () in
  let i1 = (Kmeans.unsuperclassify ~seed:5 scene.Synthetic.composite 1).Kmeans.inertia in
  let i4 = (Kmeans.unsuperclassify ~seed:5 scene.Synthetic.composite 4).Kmeans.inertia in
  check_bool "k=4 fits better than k=1" true (i4 <= i1)

let test_kmeans_validation () =
  let c = separated_composite () in
  Alcotest.check_raises "k<1" (Invalid_argument "Kmeans.unsuperclassify: k < 1")
    (fun () -> ignore (Kmeans.unsuperclassify c 0));
  Alcotest.check_raises "k>n"
    (Invalid_argument "Kmeans.unsuperclassify: k=65 > 64 pixels") (fun () ->
      ignore (Kmeans.unsuperclassify c 65))

let test_kmeans_k1 () =
  let c = separated_composite () in
  let r = Kmeans.unsuperclassify c 1 in
  check_bool "all zero" true
    (Image.fold (fun acc v -> acc && v = 0.) true r.Kmeans.labels)

let test_kmeans_result_degenerate () =
  let c = separated_composite () in
  (* non-raising variant: Error on k < 1 ... *)
  check_bool "k=0 is Error" true
    (Result.is_error (Kmeans.unsuperclassify_result c 0));
  check_bool "k<0 is Error" true
    (Result.is_error (Kmeans.unsuperclassify_result c (-3)));
  (* ... and k > n clamps to one cluster per pixel instead of raising
     or silently seeding duplicate centroids *)
  let tiny =
    Composite.of_bands
      [ Image.of_array ~nrow:2 ~ncol:2 Pixel.Float8 [| 1.; 2.; 3.; 4. |] ]
  in
  match Kmeans.unsuperclassify_result tiny 10 with
  | Error e -> Alcotest.failf "expected clamp, got Error %s" e
  | Ok r ->
    check_int "clamped to n clusters" 4 (Array.length r.Kmeans.centroids);
    check_float "perfect fit" 0. r.Kmeans.inertia;
    let seen = Hashtbl.create 4 in
    Image.iter (fun v -> Hashtbl.replace seen v ()) r.Kmeans.labels;
    check_int "each pixel its own cluster" 4 (Hashtbl.length seen)

let test_kmeans_assign () =
  let centroids = [| [| 0. |]; [| 10. |] |] in
  check_int "near 0" 0 (Kmeans.assign centroids [| 2. |]);
  check_int "near 10" 1 (Kmeans.assign centroids [| 8. |]);
  check_int "tie goes low" 0 (Kmeans.assign centroids [| 5. |])

(* ------------------------------------------------------------------ *)
(* Maxlike                                                             *)
(* ------------------------------------------------------------------ *)

let test_maxlike_recovers_truth () =
  let scene = Synthetic.landsat_scene ~seed:11 ~nrow:24 ~ncol:24 ~classes:3 () in
  let model = Maxlike.train scene.Synthetic.composite scene.Synthetic.truth in
  check_int "three classes" 3 (List.length model);
  let predicted = Maxlike.classify model scene.Synthetic.composite in
  let agreement = Imgstats.agreement scene.Synthetic.truth predicted in
  check_bool
    (Printf.sprintf "high self-agreement (%.2f)" agreement)
    true (agreement > 0.85)

let test_maxlike_loglik_prefers_own_mean () =
  let scene = Synthetic.landsat_scene ~seed:12 ~nrow:16 ~ncol:16 ~classes:2 () in
  let model = Maxlike.train scene.Synthetic.composite scene.Synthetic.truth in
  match model with
  | [ c0; c1 ] ->
    check_bool "own mean likelier (c0)" true
      (Maxlike.log_likelihood c0 c0.Maxlike.mean
       > Maxlike.log_likelihood c1 c0.Maxlike.mean)
  | _ -> Alcotest.fail "expected 2 classes"

let test_maxlike_unlabelled_skipped () =
  let comp = separated_composite () in
  let truth =
    Image.init ~nrow:8 ~ncol:8 Pixel.Int4 (fun r _ ->
        if r = 0 then -1. (* unlabelled *) else if r < 4 then 0. else 1.)
  in
  let model = Maxlike.train comp truth in
  check_int "two classes despite holes" 2 (List.length model)

let test_maxlike_no_labels () =
  let comp = separated_composite () in
  let truth = Image.init ~nrow:8 ~ncol:8 Pixel.Int4 (fun _ _ -> -1.) in
  Alcotest.check_raises "no labels"
    (Invalid_argument "Maxlike.train: no labelled pixels") (fun () ->
      ignore (Maxlike.train comp truth))

(* ------------------------------------------------------------------ *)
(* PCA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pca_variance_concentration () =
  (* band2 = 2*band1 + noise: the first PC should explain almost all *)
  let rng = Rng.create 8 in
  let b1 = Image.init ~nrow:16 ~ncol:16 Pixel.Float8 (fun _ _ -> Rng.float rng 100.) in
  let b2 = Image.map (fun v -> (2. *. v) +. 0.001) b1 in
  let r = Pca.pca (Composite.of_bands [ b1; b2 ]) in
  check_bool "first component dominates" true (r.Pca.explained.(0) > 0.99);
  check_int "components" 2 (Composite.n_bands r.Pca.components)

let test_pca_components_uncorrelated () =
  let scene = Synthetic.landsat_scene ~seed:15 ~nrow:16 ~ncol:16 ~bands:3 () in
  let r = Pca.pca scene.Synthetic.composite in
  let cov = Imgstats.band_covariance r.Pca.components in
  check_close 1e-6 "pc1 pc2 cov 0" 0. (Matrix.get cov 0 1);
  check_close 1e-6 "pc1 pc3 cov 0" 0. (Matrix.get cov 0 2)

let test_spca_scale_invariant () =
  (* standardized PCA ignores per-band scaling *)
  let scene = Synthetic.landsat_scene ~seed:16 ~nrow:12 ~ncol:12 ~bands:2 () in
  let bands = Composite.bands scene.Synthetic.composite in
  let scaled =
    Composite.of_bands
      (List.mapi
         (fun i b -> if i = 0 then Band_math.scale 100. b else b)
         bands)
  in
  let r1 = Pca.spca scene.Synthetic.composite in
  let r2 = Pca.spca scaled in
  Array.iteri
    (fun i v -> check_close 1e-6 (Printf.sprintf "eig %d" i) v r2.Pca.eigenvalues.(i))
    r1.Pca.eigenvalues

let test_pca_validation () =
  let scene = Synthetic.landsat_scene ~seed:17 ~nrow:8 ~ncol:8 ~bands:2 () in
  Alcotest.check_raises "components range"
    (Invalid_argument "Pca: components=3 outside 1..2") (fun () ->
      ignore (Pca.pca ~components:3 scene.Synthetic.composite))

(* ------------------------------------------------------------------ *)
(* Interpolation                                                       *)
(* ------------------------------------------------------------------ *)

let test_temporal_interpolation () =
  let t1 = Gaea_geo.Abstime.of_ymd 1986 1 1 in
  let t2 = Gaea_geo.Abstime.of_ymd 1986 1 11 in
  let mid = Gaea_geo.Abstime.of_ymd 1986 1 6 in
  let i1 = const_img 10. and i2 = const_img 20. in
  check_float "at t1" 10.
    (Image.get (Interpolate.temporal_linear ~at:t1 (t1, i1) (t2, i2)) 0 0);
  check_float "at mid" 15.
    (Image.get (Interpolate.temporal_linear ~at:mid (t1, i1) (t2, i2)) 0 0);
  (* extrapolation *)
  let t3 = Gaea_geo.Abstime.of_ymd 1986 1 21 in
  check_float "extrapolated" 30.
    (Image.get (Interpolate.temporal_linear ~at:t3 (t1, i1) (t2, i2)) 0 0);
  Alcotest.check_raises "same time"
    (Invalid_argument "Interpolate.temporal_linear: identical timestamps")
    (fun () ->
      ignore (Interpolate.temporal_linear ~at:t1 (t1, i1) (t1, i2)))

let test_resize () =
  let img = Image.init ~nrow:4 ~ncol:4 Pixel.Float8 (fun r c -> float_of_int ((r * 4) + c)) in
  let up = Interpolate.resize_nearest img ~nrow:8 ~ncol:8 in
  check_int "upsampled rows" 8 (Image.img_nrow up);
  check_float "corner preserved" 0. (Image.get up 0 0);
  let down = Interpolate.resize_bilinear img ~nrow:2 ~ncol:2 in
  check_int "down rows" 2 (Image.img_nrow down);
  (* bilinear of a linear ramp stays within the value range *)
  let lo, hi = Image.min_max down in
  check_bool "within range" true (lo >= 0. && hi <= 15.);
  (* same-size bilinear resize is identity on pixel centers *)
  let same = Interpolate.resize_bilinear img ~nrow:4 ~ncol:4 in
  check_close 1e-9 "identity" (Image.get img 2 3) (Image.get same 2 3)

let test_fill_missing () =
  let img = Image.init ~nrow:4 ~ncol:4 Pixel.Float8 (fun _ _ -> 5.) in
  Image.set img 1 1 Float.nan;
  Image.set img 2 2 Float.nan;
  let filled = Interpolate.fill_missing img in
  check_bool "no nan left" true
    (Image.fold (fun acc v -> acc && not (Float.is_nan v)) true filled);
  check_float "filled value" 5. (Image.get filled 1 1);
  check_float "untouched" 5. (Image.get filled 0 0)

let test_fill_missing_all () =
  let img = Image.init ~nrow:3 ~ncol:3 Pixel.Float8 (fun _ _ -> Float.nan) in
  let filled = Interpolate.fill_missing img in
  check_bool "no nan" true
    (Image.fold (fun acc v -> acc && not (Float.is_nan v)) true filled)

(* ------------------------------------------------------------------ *)
(* Synthetic                                                           *)
(* ------------------------------------------------------------------ *)

let test_synthetic_deterministic () =
  let s1 = Synthetic.landsat_scene ~seed:9 ~nrow:16 ~ncol:16 () in
  let s2 = Synthetic.landsat_scene ~seed:9 ~nrow:16 ~ncol:16 () in
  check_bool "composites equal" true
    (Composite.equal s1.Synthetic.composite s2.Synthetic.composite);
  check_bool "truth equal" true (Image.equal s1.Synthetic.truth s2.Synthetic.truth);
  let s3 = Synthetic.landsat_scene ~seed:10 ~nrow:16 ~ncol:16 () in
  check_bool "different seed differs" false
    (Composite.equal s1.Synthetic.composite s3.Synthetic.composite)

let test_synthetic_truth_classes () =
  let truth = Synthetic.landcover_truth ~seed:2 ~nrow:32 ~ncol:32 ~classes:4 in
  let lo, hi = Image.min_max truth in
  check_bool "labels in 0..3" true (lo >= 0. && hi <= 3.)

let test_synthetic_noise_range () =
  let noise = Synthetic.value_noise ~seed:1 ~nrow:16 ~ncol:16 () in
  let lo, hi = Image.min_max noise in
  check_bool "in [0,1]" true (lo >= 0. && hi <= 1.)

let test_synthetic_rainfall () =
  let rain = Synthetic.rainfall_map ~seed:1 ~nrow:16 ~ncol:16 ~max_mm:500. () in
  let lo, hi = Image.min_max rain in
  check_bool "range" true (lo >= 0. && hi <= 500.)

let test_synthetic_clouds () =
  let img = const_img 1. in
  let cloudy = Synthetic.with_clouds ~seed:3 ~fraction:0.25 img in
  let nan_count =
    Image.fold (fun acc v -> if Float.is_nan v then acc + 1 else acc) 0 cloudy
  in
  check_int "exactly 25% blanked" 4 nan_count;
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Synthetic.with_clouds: fraction outside 0..1")
    (fun () -> ignore (Synthetic.with_clouds ~seed:3 ~fraction:1.5 img))

let test_red_nir_vegetation_signal () =
  (* higher vegetation shift should raise mean NDVI *)
  let r0, n0 = Synthetic.red_nir_pair ~seed:5 ~nrow:24 ~ncol:24 () in
  let r1, n1 =
    Synthetic.red_nir_pair ~seed:5 ~nrow:24 ~ncol:24 ~vegetation_shift:0.3 ()
  in
  let m0 = Ndvi.mean_ndvi (Ndvi.ndvi ~red:r0 ~nir:n0 ()) in
  let m1 = Ndvi.mean_ndvi (Ndvi.ndvi ~red:r1 ~nir:n1 ()) in
  check_bool "greening raises NDVI" true (m1 > m0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "raster"
    [ ( "rng",
        [ tc "deterministic" test_rng_deterministic;
          tc "split" test_rng_split_independent;
          tc "shuffle permutation" test_rng_shuffle_permutation;
          tc "gaussian moments" test_rng_gaussian_moments ] );
      qsuite "rng-props" [ rng_int_bounds_prop ];
      ( "pixel",
        [ tc "quantize" test_pixel_quantize; tc "meta" test_pixel_meta ] );
      ( "image",
        [ tc "basics" test_image_basics;
          tc "quantizes on write" test_image_quantizes_on_write;
          tc "map2 mismatch" test_image_map2_mismatch;
          tc "hash and equal" test_image_hash_and_equal;
          tc "hash matches boxed reference" test_image_hash_matches_boxed_reference;
          tc "min_max skips nan" test_image_min_max_skips_nan;
          tc "of_array validation" test_image_of_array_validation;
          tc "with_ptype" test_image_with_ptype;
          tc "ascii" test_image_ascii ] );
      ( "matrix",
        [ tc "mul identity" test_matrix_mul_identity;
          tc "transpose" test_matrix_transpose;
          tc "mul known" test_matrix_mul_known;
          tc "center columns" test_matrix_center;
          tc "covariance/correlation" test_matrix_covariance;
          tc "constant column" test_matrix_correlation_constant_column ] );
      qsuite "matrix-props" [ matrix_transpose_mul_prop ];
      ( "eigen",
        [ tc "identity" test_eigen_identity;
          tc "known 2x2" test_eigen_known;
          tc "reconstruction" test_eigen_reconstruct;
          tc "rejects asymmetric" test_eigen_rejects_asymmetric;
          tc "explained variance" test_eigen_explained ] );
      ( "band-math",
        [ tc "arithmetic" test_band_math;
          tc "linear combination" test_linear_combination;
          tc "normalize/threshold" test_normalize_threshold;
          tc "ndvi" test_ndvi;
          tc "change methods differ" test_ndvi_change_methods_differ ] );
      ( "composite",
        [ tc "basics" test_composite;
          tc "matrix roundtrip" test_composite_matrix_roundtrip ] );
      ( "imgstats",
        [ tc "descriptive" test_imgstats;
          tc "agreement/confusion" test_imgstats_agreement ] );
      ( "kmeans",
        [ tc "recovers clusters" test_kmeans_recovers_clusters;
          tc "deterministic" test_kmeans_deterministic;
          tc "inertia vs k" test_kmeans_inertia_decreases_with_k;
          tc "validation" test_kmeans_validation;
          tc "k=1" test_kmeans_k1;
          tc "degenerate result" test_kmeans_result_degenerate;
          tc "assign" test_kmeans_assign ] );
      ( "maxlike",
        [ tc "recovers truth" test_maxlike_recovers_truth;
          tc "log-likelihood" test_maxlike_loglik_prefers_own_mean;
          tc "unlabelled skipped" test_maxlike_unlabelled_skipped;
          tc "no labels" test_maxlike_no_labels ] );
      ( "pca",
        [ tc "variance concentration" test_pca_variance_concentration;
          tc "uncorrelated components" test_pca_components_uncorrelated;
          tc "spca scale invariance" test_spca_scale_invariant;
          tc "validation" test_pca_validation ] );
      ( "interpolate",
        [ tc "temporal" test_temporal_interpolation;
          tc "resize" test_resize;
          tc "fill missing" test_fill_missing;
          tc "fill all-missing" test_fill_missing_all ] );
      ( "synthetic",
        [ tc "deterministic" test_synthetic_deterministic;
          tc "truth classes" test_synthetic_truth_classes;
          tc "noise range" test_synthetic_noise_range;
          tc "rainfall" test_synthetic_rainfall;
          tc "clouds" test_synthetic_clouds;
          tc "vegetation signal" test_red_nir_vegetation_signal ] ) ]
