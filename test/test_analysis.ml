(* Tests for the gaea check static analyzer: one fixture per
   diagnostic code, rendering, and the no-false-positives property
   (a process the deriver executes successfully produces zero
   error-severity findings). *)

open Gaea_core
module Analysis = Gaea_analysis.Analysis
module Diagnostic = Gaea_analysis.Diagnostic
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Registry = Gaea_adt.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Gaea_error.to_string e)

let oks = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* Fixture helpers                                                     *)
(* ------------------------------------------------------------------ *)

let define_class k ~name ?derived_by attrs =
  ok
    (Kernel.define_class k
       (ok (Schema.define ~name ~attributes:attrs ?derived_by ())))

let image_attrs =
  [ ("data", Vtype.Image); ("spatialextent", Vtype.Box);
    ("timestamp", Vtype.Abstime) ]

(* src and out (both with full extents), plus noext without extents *)
let base_kernel () =
  let k = Kernel.create () in
  define_class k ~name:"src" image_attrs;
  define_class k ~name:"out" image_attrs;
  define_class k ~name:"noext" [ ("data", Vtype.Image) ];
  k

let m target rhs = { Template.target; rhs }
let attr a b = Template.Attr_of (a, b)

(* a complete, well-typed mapping set for the [out] class *)
let full_mappings ?(arg = "a") () =
  [ m "data" (attr arg "data");
    m "spatialextent" (attr arg "spatialextent");
    m "timestamp" (attr arg "timestamp") ]

let primitive ?(name = "p") ?(output = "out") ?(args = []) ?params
    ~assertions ~mappings () =
  let args =
    if args = [] then [ Process.scalar_arg "a" "src" ] else args
  in
  ok
    (Process.define_primitive ~name ~output_class:output ~args ?params
       ~template:(Template.make ~assertions ~mappings)
       ())

let codes_of ds = List.map (fun d -> d.Diagnostic.code) ds

let has_code code ds = List.mem code (codes_of ds)

let assert_code ?(k = base_kernel ()) code p =
  let ds = Analysis.check_process k p in
  if not (has_code code ds) then
    Alcotest.failf "expected %s, got [%s]" code
      (String.concat "; " (List.map Diagnostic.to_string ds))

let assert_no_errors ds =
  if Diagnostic.has_errors ds then
    Alcotest.failf "unexpected errors: %s" (Diagnostic.render ds)

(* ------------------------------------------------------------------ *)
(* Pass 1: template well-formedness                                    *)
(* ------------------------------------------------------------------ *)

let test_ga001_bad_mapping_target () =
  assert_code "GA001"
    (primitive ~assertions:[]
       ~mappings:(m "nosuchattr" (attr "a" "data") :: full_mappings ())
       ())

let test_ga002_unmapped_attr () =
  assert_code "GA002"
    (primitive ~assertions:[]
       ~mappings:[ m "data" (attr "a" "data") ]
       ())

let test_ga003_undeclared_argument () =
  (* define_primitive rejects templates referencing undeclared
     arguments, but Process.edit does not re-validate a replacement
     template — exactly the hole the analyzer covers *)
  let p0 = primitive ~assertions:[] ~mappings:(full_mappings ()) () in
  let bad =
    Template.make ~assertions:[]
      ~mappings:(m "data" (attr "ghost" "data") :: List.tl (full_mappings ()))
  in
  let p = ok (Process.edit p0 ~name:"p3" ~template:bad ()) in
  assert_code "GA003" p

let test_ga004_unknown_attribute () =
  assert_code "GA004"
    (primitive ~assertions:[]
       ~mappings:(m "data" (attr "a" "nodata") :: List.tl (full_mappings ()))
       ())

let test_ga005_unknown_operator () =
  assert_code "GA005"
    (primitive ~assertions:[]
       ~mappings:
         (m "data" (Template.Apply ("frobnicate", [ attr "a" "data" ]))
         :: List.tl (full_mappings ()))
       ())

let test_ga006_arity_mismatch () =
  (* img_scale : float -> image -> image, called with 1 arg *)
  assert_code "GA006"
    (primitive ~assertions:[]
       ~mappings:
         (m "data" (Template.Apply ("img_scale", [ attr "a" "data" ]))
         :: List.tl (full_mappings ()))
       ())

let test_ga007_type_mismatch () =
  (* img_mean : image -> float fed a box *)
  assert_code "GA007"
    (primitive
       ~assertions:
         [ Template.Expr_true
             (Template.Apply
                ( "lt",
                  [ Template.Apply
                      ("img_mean", [ attr "a" "spatialextent" ]);
                    Template.Const (Value.float 1.0) ] )) ]
       ~mappings:(full_mappings ()) ())

let test_ga007_mapping_type () =
  (* box mapped into an image attribute *)
  assert_code "GA007"
    (primitive ~assertions:[]
       ~mappings:
         (m "data" (attr "a" "spatialextent") :: List.tl (full_mappings ()))
       ())

let test_ga007_int_widens_to_float () =
  (* storage coerces Int -> Float on insert, so this must NOT error *)
  let k = base_kernel () in
  define_class k ~name:"fout"
    [ ("level", Vtype.Float); ("spatialextent", Vtype.Box);
      ("timestamp", Vtype.Abstime) ];
  let p =
    primitive ~output:"fout" ~assertions:[]
      ~mappings:
        [ m "level" (Template.Const (Value.int 3));
          m "spatialextent" (attr "a" "spatialextent");
          m "timestamp" (attr "a" "timestamp") ]
      ()
  in
  assert_no_errors (Analysis.check_process k p)

let test_ga008_unbound_parameter () =
  (* the constructors reject unbound parameters, so a registered
     process can never trip GA008; the analyzer keeps the check for
     robustness.  Assert the constructor-level guarantee and that the
     code stays catalogued. *)
  check_bool "constructor rejects" true
    (Result.is_error
       (Process.define_primitive ~name:"p" ~output_class:"out"
          ~args:[ Process.scalar_arg "a" "src" ]
          ~template:
            (Template.make ~assertions:[]
               ~mappings:
                 (m "data" (Template.Param "ghost")
                 :: List.tl (full_mappings ())))
          ()));
  check_bool "catalogued" true (Analysis.describe "GA008" <> None)

let test_ga009_common_without_extent () =
  assert_code "GA009"
    (primitive
       ~args:[ Process.scalar_arg "a" "noext" ]
       ~assertions:[ Template.Common_space "a" ]
       ~mappings:[ m "data" (attr "a" "data") ]
       ~output:"noext" ())

let test_ga010_duplicate_mapping () =
  assert_code "GA010"
    (primitive ~assertions:[]
       ~mappings:(m "data" (attr "a" "data") :: full_mappings ())
       ())

let test_ga013_unknown_class () =
  assert_code "GA013"
    (primitive ~output:"ghost" ~assertions:[] ~mappings:[] ())

(* ------------------------------------------------------------------ *)
(* Pass 2: cardinality satisfiability                                  *)
(* ------------------------------------------------------------------ *)

let test_ga011_contradictory_cards () =
  assert_code "GA011"
    (primitive
       ~args:[ Process.setof_arg ~card_min:2 ~card_max:4 "xs" "src" ]
       ~assertions:[ Template.Card_ge ("xs", 5) ]
       ~mappings:(full_mappings ~arg:"xs" ()) ())

let test_ga011_eq_vs_eq () =
  assert_code "GA011"
    (primitive
       ~args:[ Process.setof_arg "xs" "src" ]
       ~assertions:[ Template.Card_eq ("xs", 3); Template.Card_eq ("xs", 2) ]
       ~mappings:(full_mappings ~arg:"xs" ()) ())

let test_ga012_card_on_scalar () =
  assert_code "GA012"
    (primitive
       ~assertions:[ Template.Card_eq ("a", 2) ]
       ~mappings:(full_mappings ()) ())

let test_cards_satisfiable_ok () =
  (* spec 3..3 + card = 3: exactly Fig 3, must stay clean *)
  let k = base_kernel () in
  let p =
    primitive
      ~args:[ Process.setof_arg ~card_min:3 ~card_max:3 "xs" "src" ]
      ~assertions:[ Template.Card_eq ("xs", 3) ]
      ~mappings:
        [ m "data" (Template.Anyof (attr "xs" "data"));
          m "spatialextent" (Template.Anyof (attr "xs" "spatialextent"));
          m "timestamp" (Template.Anyof (attr "xs" "timestamp")) ]
      ()
  in
  assert_no_errors (Analysis.check_process k p)

(* ------------------------------------------------------------------ *)
(* Pass 3: compound nets                                               *)
(* ------------------------------------------------------------------ *)

(* a registered leaf primitive src -> out, plus the classes *)
let compound_kernel () =
  let k = base_kernel () in
  let leaf =
    primitive ~name:"leaf" ~assertions:[] ~mappings:(full_mappings ()) ()
  in
  ok (Kernel.define_process k leaf);
  k

let step ?(inputs = [ ("a", Process.From_arg "x") ]) name =
  { Process.step_process = name; step_inputs = inputs }

let compound ?(name = "c") ?(output = "out") ?(args = []) steps =
  let args = if args = [] then [ Process.scalar_arg "x" "src" ] else args in
  ok (Process.define_compound ~name ~output_class:output ~args ~steps ())

let test_ga020_direct_recursion () =
  let k = compound_kernel () in
  (* version 1 is sound; version 2 steps through its own name, which
     expansion resolves to the latest version — itself *)
  ok (Kernel.define_process k (compound ~name:"loop" [ step "leaf" ]));
  let v2 =
    Process.with_version (compound ~name:"loop" [ step "loop" ]) 2
  in
  ok (Kernel.define_process k v2);
  assert_code ~k "GA020" v2

let test_ga020_mutual_recursion () =
  let k = compound_kernel () in
  ok (Kernel.define_process k (compound ~name:"a2" [ step "leaf" ]));
  ok (Kernel.define_process k (compound ~name:"b2" [ step "a2" ]));
  let a2' = Process.with_version (compound ~name:"a2" [ step "b2" ]) 2 in
  ok (Kernel.define_process k a2');
  assert_code ~k "GA020" a2'

let test_ga021_unknown_subprocess () =
  let k = compound_kernel () in
  assert_code ~k "GA021" (compound [ step "ghost" ])

let test_ga022_class_mismatch () =
  let k = compound_kernel () in
  (* leaf expects src, gets out *)
  assert_code ~k "GA022"
    (compound
       ~args:[ Process.scalar_arg "x" "out" ]
       [ step "leaf" ])

let test_ga022_downgrades_when_related () =
  let k = compound_kernel () in
  let concepts = Kernel.concepts k in
  let _ =
    ok (Concept.define concepts ~name:"scene" ~members:[ "src"; "out" ] ())
  in
  let c =
    compound ~args:[ Process.scalar_arg "x" "out" ] [ step "leaf" ]
  in
  let ds = Analysis.check_process k c in
  check_bool "GA022 present" true (has_code "GA022" ds);
  (* related classes downgrade the mismatch to a warning *)
  assert_no_errors ds

let test_ga023_dead_step () =
  let k = compound_kernel () in
  assert_code ~k "GA023" (compound [ step "leaf"; step "leaf" ])

let test_ga024_unbound_step_arg () =
  let k = compound_kernel () in
  assert_code ~k "GA024" (compound [ step ~inputs:[] "leaf" ])

let test_ga024_unknown_binding_name () =
  let k = compound_kernel () in
  assert_code ~k "GA024"
    (compound
       [ step
           ~inputs:[ ("a", Process.From_arg "x"); ("zz", Process.From_arg "x") ]
           "leaf" ])

let test_ga025_card_disjoint () =
  let k = compound_kernel () in
  (* leaf's argument is scalar (1..1); a SETOF 2.. compound argument
     can never satisfy it *)
  assert_code ~k "GA025"
    (compound
       ~args:[ Process.setof_arg ~card_min:2 "x" "src" ]
       [ step "leaf" ])

let test_ga026_final_class_mismatch () =
  let k = compound_kernel () in
  define_class k ~name:"other" image_attrs;
  assert_code ~k "GA026" (compound ~output:"other" [ step "leaf" ])

let test_compound_clean () =
  let k = compound_kernel () in
  let c = compound [ step "leaf" ] in
  assert_no_errors (Analysis.check_process k c)

(* ------------------------------------------------------------------ *)
(* Net + version lints (check_kernel)                                  *)
(* ------------------------------------------------------------------ *)

let test_ga027_ga028_empty_net () =
  let k = base_kernel () in
  define_class k ~name:"derived_out" ~derived_by:"p" image_attrs;
  ok
    (Kernel.define_process k
       (primitive ~output:"derived_out" ~assertions:[]
          ~mappings:(full_mappings ()) ()));
  let ds = Analysis.check_kernel k in
  (* no data loaded: the process can never fire, its output class is
     unreachable — both informational *)
  check_bool "GA027" true (has_code "GA027" ds);
  check_bool "GA028" true (has_code "GA028" ds);
  assert_no_errors ds

let executed_kernel () =
  (* Fig 3 end to end: install, load bands, derive land cover *)
  let k = Kernel.create () in
  ok (Figures.install_all k);
  let _ = ok (Figures.load_tm_bands k ~seed:7 ~nrow:8 ~ncol:8 ()) in
  let _ = ok (Derivation.request k Figures.land_cover_class) in
  k

let test_ga030_ga031_superseded () =
  let k = executed_kernel () in
  let p20 = Option.get (Kernel.find_process k Figures.p20_name) in
  ok
    (Kernel.define_process k
       (Process.with_version ~derived_from:(Process.key p20) p20
          (p20.Process.version + 1)));
  let ds = Analysis.check_kernel k in
  check_bool "GA030" true (has_code "GA030" ds);
  check_bool "GA031" true (has_code "GA031" ds);
  assert_no_errors ds

let test_ga032_derived_by_unknown () =
  let k = base_kernel () in
  define_class k ~name:"dangling" ~derived_by:"ghost" image_attrs;
  check_bool "GA032" true (has_code "GA032" (Analysis.check_kernel k))

let test_figures_lint_clean () =
  (* every shipped fixture process must come out error-free, before
     and after running the paper's derivations *)
  let k = Kernel.create () in
  ok (Figures.install_all k);
  assert_no_errors (Analysis.check_kernel k);
  assert_no_errors (Analysis.check_kernel (executed_kernel ()))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let test_render_and_json () =
  let k = base_kernel () in
  let ds =
    Analysis.check_process k
      (primitive ~assertions:[]
         ~mappings:(m "nosuchattr" (attr "a" "data") :: full_mappings ())
         ())
  in
  let text = Diagnostic.render ds in
  check_bool "code in text" true (contains_sub ~sub:"error[GA001]" text);
  let json = Diagnostic.render_json ds in
  check_bool "array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  check_bool "fields" true (contains_sub ~sub:"\"code\":\"GA001\"" json)

let test_severity_order () =
  let ds =
    Diagnostic.sort
      [ Diagnostic.make ~code:"GA027" ~severity:Diagnostic.Info "i";
        Diagnostic.make ~code:"GA001" ~severity:Diagnostic.Error "e";
        Diagnostic.make ~code:"GA010" ~severity:Diagnostic.Warning "w" ]
  in
  check_bool "order" true
    (codes_of ds = [ "GA001"; "GA010"; "GA027" ]);
  check_int "errors" 1 (Diagnostic.count Diagnostic.Error ds);
  check_bool "has_errors" true (Diagnostic.has_errors ds)

(* ------------------------------------------------------------------ *)
(* Property: successful execution implies zero error findings          *)
(* ------------------------------------------------------------------ *)

(* Generate small random primitive processes over src -> out, bind
   random inputs, execute; whenever the deriver succeeds, the analyzer
   must report no error-severity diagnostic for that process. *)

let apply_op k name vs =
  oks (Registry.apply (Kernel.registry k) name vs)

let gen_process =
  QCheck.Gen.(
    let* setof = bool in
    let* card_min = int_range 1 3 in
    let* card_max_opt =
      oneof [ return None; map (fun d -> Some (card_min + d)) (int_range 0 2) ]
    in
    let* card_assert =
      oneof [ return None; map (fun n -> Some n) (int_range 1 4) ]
    in
    let* scale = oneof [ return None; map (fun f -> Some f) (float_range 0.5 2.0) ] in
    let* drop_mapping = frequency [ (4, return false); (1, return true) ] in
    let* common = bool in
    let* n_objects = int_range 1 4 in
    return (setof, card_min, card_max_opt, card_assert, scale, drop_mapping, common, n_objects))

let print_gen (setof, cmin, cmax, card_assert, scale, drop, common, n) =
  Printf.sprintf
    "setof=%b card=%d..%s assert=%s scale=%s drop=%b common=%b n=%d" setof
    cmin
    (match cmax with None -> "inf" | Some m -> string_of_int m)
    (match card_assert with None -> "-" | Some n -> string_of_int n)
    (match scale with None -> "-" | Some f -> string_of_float f)
    drop common n

let prop_no_false_positives
    (setof, card_min, card_max_opt, card_assert, scale, drop_mapping, common, n_objects) =
  let k = base_kernel () in
  let arg_name = if setof then "xs" else "a" in
  let args =
    if setof then
      [ Process.setof_arg ~card_min ?card_max:card_max_opt "xs" "src" ]
    else [ Process.scalar_arg "a" "src" ]
  in
  let base_data = attr arg_name "data" in
  let one e = if setof then Template.Anyof e else e in
  let data_rhs =
    let d = one base_data in
    match scale with
    | None -> d
    | Some _ -> Template.Apply ("img_scale", [ Template.Param "f"; d ])
  in
  let params =
    match scale with None -> [] | Some f -> [ ("f", Value.float f) ]
  in
  let assertions =
    (if common then [ Template.Common_space arg_name ] else [])
    @
    match card_assert with
    | Some n when setof -> [ Template.Card_eq (arg_name, n) ]
    | _ -> []
  in
  let mappings =
    [ m "data" data_rhs;
      m "spatialextent" (one (attr arg_name "spatialextent")) ]
    @
    if drop_mapping then []
    else [ m "timestamp" (one (attr arg_name "timestamp")) ]
  in
  match
    Process.define_primitive ~name:"q" ~output_class:"out" ~args ~params
      ~template:(Template.make ~assertions ~mappings)
      ()
  with
  | Error _ -> true (* rejected at definition: nothing to analyze *)
  | Ok p ->
    (* shared extent so common() can hold *)
    let extent = apply_op k "make_box" (List.map Value.float [ 0.; 0.; 10.; 10. ]) in
    let stamp = apply_op k "make_abstime" (List.map Value.int [ 1988; 6; 1 ]) in
    let oids =
      List.init n_objects (fun i ->
          ok
            (Kernel.insert_object k ~cls:"src"
               [ ("data", apply_op k "synth_rainfall" (List.map Value.int [ i; 6; 6 ]));
                 ("spatialextent", extent); ("timestamp", stamp) ]))
    in
    (match Kernel.execute_process k p ~inputs:[ (arg_name, oids) ] with
     | Error _ -> true (* runtime failures carry no static obligation *)
     | Ok _ ->
       (* execution succeeded: the analyzer must agree *)
       not (Diagnostic.has_errors (Analysis.check_process k p)))

let prop_executed_clean =
  QCheck.Test.make
    ~name:"deriver success implies zero error-severity findings" ~count:300
    (QCheck.make ~print:print_gen gen_process)
    prop_no_false_positives

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [ ( "template",
        [ tc "GA001 bad mapping target" test_ga001_bad_mapping_target;
          tc "GA002 unmapped attribute" test_ga002_unmapped_attr;
          tc "GA003 undeclared argument" test_ga003_undeclared_argument;
          tc "GA004 unknown attribute" test_ga004_unknown_attribute;
          tc "GA005 unknown operator" test_ga005_unknown_operator;
          tc "GA006 arity mismatch" test_ga006_arity_mismatch;
          tc "GA007 operator type mismatch" test_ga007_type_mismatch;
          tc "GA007 mapping type mismatch" test_ga007_mapping_type;
          tc "GA007 int widens to float" test_ga007_int_widens_to_float;
          tc "GA008 unbound parameter" test_ga008_unbound_parameter;
          tc "GA009 common without extent" test_ga009_common_without_extent;
          tc "GA010 duplicate mapping" test_ga010_duplicate_mapping;
          tc "GA013 unknown class" test_ga013_unknown_class ] );
      ( "cardinality",
        [ tc "GA011 spec vs assertion" test_ga011_contradictory_cards;
          tc "GA011 eq vs eq" test_ga011_eq_vs_eq;
          tc "GA012 card on scalar" test_ga012_card_on_scalar;
          tc "satisfiable stays clean" test_cards_satisfiable_ok ] );
      ( "compound",
        [ tc "GA020 direct recursion" test_ga020_direct_recursion;
          tc "GA020 mutual recursion" test_ga020_mutual_recursion;
          tc "GA021 unknown sub-process" test_ga021_unknown_subprocess;
          tc "GA022 class mismatch" test_ga022_class_mismatch;
          tc "GA022 concept downgrade" test_ga022_downgrades_when_related;
          tc "GA023 dead step" test_ga023_dead_step;
          tc "GA024 unbound step arg" test_ga024_unbound_step_arg;
          tc "GA024 unknown binding" test_ga024_unknown_binding_name;
          tc "GA025 disjoint cardinality" test_ga025_card_disjoint;
          tc "GA026 final class mismatch" test_ga026_final_class_mismatch;
          tc "clean compound" test_compound_clean ] );
      ( "kernel",
        [ tc "GA027/GA028 empty net" test_ga027_ga028_empty_net;
          tc "GA030/GA031 superseded" test_ga030_ga031_superseded;
          tc "GA032 derived by unknown" test_ga032_derived_by_unknown;
          tc "figures lint clean" test_figures_lint_clean ] );
      ( "render",
        [ tc "text and json" test_render_and_json;
          tc "severity order" test_severity_order ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_executed_clean ] ) ]
