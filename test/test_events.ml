(* Tests for the kernel event bus: subscriber ordering, the ring-buffer
   event log, cache invalidation driven by events (parity with the
   direct cache tests in test_core), and a randomized persistence
   round-trip over event-built kernels. *)

open Gaea_core
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Box = Gaea_geo.Box
module Abstime = Gaea_geo.Abstime
module Image = Gaea_raster.Image
module Pixel = Gaea_raster.Pixel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Gaea_error.to_string e)

(* Same fixture as test_core: one source class, one derived class, one
   primitive process negating the source image. *)
let simple_kernel () =
  let k = Kernel.create () in
  let src =
    ok
      (Schema.define ~name:"src"
         ~attributes:
           [ ("tag", Vtype.Int); ("data", Vtype.Image);
             ("spatialextent", Vtype.Box); ("timestamp", Vtype.Abstime) ]
         ())
  in
  ok (Kernel.define_class k src);
  let out =
    ok
      (Schema.define ~name:"out"
         ~attributes:
           [ ("data", Vtype.Image); ("spatialextent", Vtype.Box);
             ("timestamp", Vtype.Abstime) ]
         ~derived_by:"negate" ())
  in
  ok (Kernel.define_class k out);
  let open Template in
  let proc =
    ok
      (Process.define_primitive ~name:"negate" ~output_class:"out"
         ~args:[ Process.scalar_arg "x" "src" ]
         ~template:
           (make ~assertions:[]
              ~mappings:
                [ { target = "data";
                    rhs = Apply ("img_scale", [ Const (Value.float (-1.)); Attr_of ("x", "data") ]) };
                  { target = "spatialextent"; rhs = Attr_of ("x", "spatialextent") };
                  { target = "timestamp"; rhs = Attr_of ("x", "timestamp") } ])
         ())
  in
  ok (Kernel.define_process k proc);
  k

let insert_src k tag v =
  ok
    (Kernel.insert_object k ~cls:"src"
       [ ("tag", Value.int tag);
         ("data", Value.image (Image.of_array ~nrow:1 ~ncol:2 Pixel.Float8 [| v; v +. 1. |]));
         ("spatialextent", Value.box (Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.));
         ("timestamp", Value.abstime (Abstime.of_ymd 1986 1 1)) ])

let events k = List.map snd (Kernel.event_log k)

let count_where p k = List.length (List.filter p (events k))

(* ------------------------------------------------------------------ *)
(* Bus mechanics                                                       *)
(* ------------------------------------------------------------------ *)

let test_subscriber_order () =
  let bus = Events.create () in
  let calls = ref [] in
  List.iter
    (fun name ->
      Events.subscribe bus ~name (fun _ -> calls := name :: !calls))
    [ "first"; "second"; "third" ];
  Alcotest.(check (list string)) "registration order"
    [ "first"; "second"; "third" ] (Events.subscribers bus);
  Events.emit bus (Events.Class_defined "c");
  Alcotest.(check (list string)) "notified in registration order"
    [ "first"; "second"; "third" ] (List.rev !calls)

let test_ring_buffer_wrap () =
  let bus = Events.create ~log_capacity:4 () in
  for i = 0 to 9 do
    Events.emit bus (Events.Class_defined (Printf.sprintf "c%d" i))
  done;
  check_int "all emissions counted" 10 (Events.seen bus);
  let log = Events.log bus in
  check_int "ring keeps capacity entries" 4 (List.length log);
  Alcotest.(check (list int)) "latest sequence numbers survive"
    [ 6; 7; 8; 9 ] (List.map fst log);
  check_bool "oldest first" true
    (match log with
     | (6, Events.Class_defined "c6") :: _ -> true
     | _ -> false)

let test_event_rendering () =
  Alcotest.(check string) "object event" "object_inserted pt #3"
    (Events.event_to_string (Events.Object_inserted { cls = "pt"; oid = 3 }));
  Alcotest.(check string) "invalidate event"
    "cache_invalidated 2 entries (process negate)"
    (Events.event_to_string
       (Events.Cache_invalidated { entries = 2; reason = "process negate" }))

(* ------------------------------------------------------------------ *)
(* Kernel wiring                                                       *)
(* ------------------------------------------------------------------ *)

let test_kernel_subscriber_order () =
  (* metrics must observe events before the caches react to them *)
  let k = Kernel.create () in
  Alcotest.(check (list string)) "fixed subscription order"
    [ "metrics"; "net-cache"; "result-cache"; "refresh" ]
    (Events.subscribers (Kernel.bus k))

let test_lifecycle_events_logged () =
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  ok (Kernel.delete_object k ~cls:"src" oid);
  let has ev = List.mem ev (events k) in
  check_bool "class_defined" true (has (Events.Class_defined "src"));
  check_bool "process_defined" true
    (has (Events.Process_defined { name = "negate"; version = 1 }));
  check_bool "object_inserted" true
    (has (Events.Object_inserted { cls = "src"; oid }));
  check_bool "object_deleted" true
    (has (Events.Object_deleted { cls = "src"; oid }))

let test_cache_miss_then_hit_logged () =
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let t1 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  let t2 = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  check_int "cache served the repeat" t1.Task.task_id t2.Task.task_id;
  let cache_traffic =
    List.filter_map
      (function
        | Events.Cache_miss { process; _ } -> Some ("miss " ^ process)
        | Events.Cache_hit { process; _ } -> Some ("hit " ^ process)
        | _ -> None)
      (events k)
  in
  Alcotest.(check (list string)) "miss first, then hit"
    [ "miss negate"; "hit negate" ] cache_traffic;
  (* the metrics subscriber and the log must agree *)
  let c = Kernel.counters k in
  check_int "hit counter parity" c.Kernel.cache_hits
    (count_where (function Events.Cache_hit _ -> true | _ -> false) k);
  check_int "miss counter parity" c.Kernel.cache_misses
    (count_where (function Events.Cache_miss _ -> true | _ -> false) k);
  check_int "execution counter parity" c.Kernel.executions
    (count_where (function Events.Task_recorded _ -> true | _ -> false) k)

let invalidations_with reason_prefix k =
  count_where
    (function
      | Events.Cache_invalidated { reason; entries } ->
        entries > 0
        && String.length reason >= String.length reason_prefix
        && String.sub reason 0 (String.length reason_prefix) = reason_prefix
      | _ -> false)
    k

let test_invalidation_events_on_reversion () =
  (* parity with test_core's test_cache_invalidated_by_new_version,
     observed through the event log *)
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let v1 = Option.get (Kernel.find_process k "negate") in
  let _ = ok (Kernel.execute_process k v1 ~inputs:[ ("x", [ oid ]) ]) in
  let v2 = ok (Process.edit v1 ~name:"negate" ~doc:"sharpened" ()) in
  ok (Kernel.define_process k v2);
  check_bool "process_versioned logged" true
    (List.mem (Events.Process_versioned { name = "negate"; version = 2 })
       (events k));
  check_int "entries dropped" 0 (Kernel.cache_stats k).Kernel.entries;
  check_int "one invalidation event for the process" 1
    (invalidations_with "process negate" k)

let test_invalidation_events_on_delete () =
  (* parity with test_core's test_cache_invalidated_by_delete *)
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let _ = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  ok (Kernel.delete_object k ~cls:"src" oid);
  check_int "entry dropped with its input" 0
    (Kernel.cache_stats k).Kernel.entries;
  check_int "invalidation attributed to the object" 1
    (invalidations_with (Printf.sprintf "object #%d" oid) k)

let test_invalidation_events_on_class_mutation () =
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let _ = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  check_int "one live entry" 1 (Kernel.cache_stats k).Kernel.entries;
  Kernel.invalidate_cache_class k "src";
  check_bool "class_mutated logged" true
    (List.mem (Events.Class_mutated "src") (events k));
  check_int "entry dropped" 0 (Kernel.cache_stats k).Kernel.entries;
  check_int "invalidation attributed to the class" 1
    (invalidations_with "class src" k)

let test_restore_is_event_silent () =
  (* kernel restore replays state without re-announcing it: Persist.load
     must not trigger subscribers (cache invalidation, counters) *)
  let k = simple_kernel () in
  let oid = insert_src k 1 2.0 in
  let proc = Option.get (Kernel.find_process k "negate") in
  let task = ok (Kernel.execute_process k proc ~inputs:[ ("x", [ oid ]) ]) in
  let k2 = simple_kernel () in
  let before = Events.seen (Kernel.bus k2) in
  ok
    (Kernel.insert_object_with_oid k2 ~cls:"src" 42
       [ ("tag", Value.int 1);
         ("data", Value.image (Image.of_array ~nrow:1 ~ncol:2 Pixel.Float8 [| 0.; 1. |]));
         ("spatialextent", Value.box (Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.));
         ("timestamp", Value.abstime (Abstime.of_ymd 1986 1 1)) ]);
  ok (Kernel.restore_task k2 task);
  check_int "no events emitted by restore paths" before
    (Events.seen (Kernel.bus k2))

(* ------------------------------------------------------------------ *)
(* Compound scheduler determinism                                      *)
(* ------------------------------------------------------------------ *)

(* The deriver evaluates independent compound steps concurrently on
   the domain pool but commits them strictly in step order: oids, task
   ids and the full event log must be identical at any pool size. *)

module Pool = Gaea_par.Pool

(* On a single-domain host the adaptive cutoff (max_int) would keep the
   scheduler sequential and these tests would compare sequential with
   itself — force the parallel path so the batch scheduler really runs. *)
let with_pool_size n f =
  let saved = Pool.size () in
  Pool.set_size n;
  Pool.set_min_parallel_work (Some 0);
  Fun.protect
    ~finally:(fun () ->
      Pool.set_min_parallel_work None;
      Pool.set_size saved)
    f

(* src --neg--> c_neg --fin--> c_fin, src --dbl--> c_dbl; the compound
   "pipeline" runs [neg x; dbl x; fin (step 0)] — steps 0 and 1 are
   independent (batched together when the pool has lanes), step 2
   depends on step 0.  "twice" runs [neg x; neg x] — the duplicate
   step must register a cache hit, not a second execution. *)
let fan_kernel () =
  let k = Kernel.create () in
  let base_attrs =
    [ ("data", Vtype.Image); ("spatialextent", Vtype.Box);
      ("timestamp", Vtype.Abstime) ]
  in
  ok
    (Kernel.define_class k
       (ok
          (Schema.define ~name:"src"
             ~attributes:(("tag", Vtype.Int) :: base_attrs) ())));
  List.iter
    (fun (cls, proc) ->
      ok
        (Kernel.define_class k
           (ok (Schema.define ~name:cls ~attributes:base_attrs ~derived_by:proc ()))))
    [ ("c_neg", "neg"); ("c_dbl", "dbl"); ("c_fin", "pipeline") ];
  let open Template in
  let prim name out arg_cls arg factor =
    ok
      (Process.define_primitive ~name ~output_class:out
         ~args:[ Process.scalar_arg arg arg_cls ]
         ~template:
           (make ~assertions:[]
              ~mappings:
                [ { target = "data";
                    rhs =
                      Apply
                        ("img_scale",
                         [ Const (Value.float factor); Attr_of (arg, "data") ]) };
                  { target = "spatialextent"; rhs = Attr_of (arg, "spatialextent") };
                  { target = "timestamp"; rhs = Attr_of (arg, "timestamp") } ])
         ())
  in
  ok (Kernel.define_process k (prim "neg" "c_neg" "src" "x" (-1.)));
  ok (Kernel.define_process k (prim "dbl" "c_dbl" "src" "x" 2.));
  ok (Kernel.define_process k (prim "fin" "c_fin" "c_neg" "y" 10.));
  let step proc bindings = { Process.step_process = proc; step_inputs = bindings } in
  ok
    (Kernel.define_process k
       (ok
          (Process.define_compound ~name:"pipeline" ~output_class:"c_fin"
             ~args:[ Process.scalar_arg "x" "src" ]
             ~steps:
               [ step "neg" [ ("x", Process.From_arg "x") ];
                 step "dbl" [ ("x", Process.From_arg "x") ];
                 step "fin" [ ("y", Process.From_step 0) ] ]
             ())));
  ok
    (Kernel.define_process k
       (ok
          (Process.define_compound ~name:"twice" ~output_class:"c_neg"
             ~args:[ Process.scalar_arg "x" "src" ]
             ~steps:
               [ step "neg" [ ("x", Process.From_arg "x") ];
                 step "neg" [ ("x", Process.From_arg "x") ] ]
             ())));
  k

(* a fresh kernel per run, so oid / task-id / event sequences line up *)
let run_compound name lanes =
  with_pool_size lanes (fun () ->
      let k = fan_kernel () in
      let oid = insert_src k 1 2.0 in
      let p = Option.get (Kernel.find_process k name) in
      let task = ok (Kernel.execute_process k p ~inputs:[ ("x", [ oid ]) ]) in
      let log =
        List.map
          (fun (seq, ev) -> Printf.sprintf "%d %s" seq (Events.event_to_string ev))
          (Kernel.event_log k)
      in
      let tasks =
        List.map
          (fun (t : Task.t) -> (t.Task.task_id, t.Task.process, t.Task.outputs))
          (Kernel.tasks k)
      in
      (log, tasks, (task.Task.task_id, task.Task.process, task.Task.outputs)))

let test_scheduler_determinism () =
  let log1, tasks1, final1 = run_compound "pipeline" 1 in
  check_int "one task per primitive step" 3 (List.length tasks1);
  List.iter
    (fun lanes ->
      let log, tasks, final = run_compound "pipeline" lanes in
      Alcotest.(check (list string))
        (Printf.sprintf "event log identical @%d" lanes)
        log1 log;
      check_bool
        (Printf.sprintf "tasks identical @%d" lanes)
        true (tasks = tasks1);
      check_bool
        (Printf.sprintf "final task identical @%d" lanes)
        true (final = final1))
    [ 2; 8 ]

let test_scheduler_duplicate_step_hits_cache () =
  let log1, tasks1, final1 = run_compound "twice" 1 in
  check_int "duplicate step served from cache" 1 (List.length tasks1);
  let hits log =
    List.length
      (List.filter (fun l -> String.length l > 0 &&
                             String.split_on_char ' ' l
                             |> fun ws -> List.exists (( = ) "cache_hit") ws)
         log)
  in
  check_bool "at least one hit logged" true (hits log1 >= 1);
  List.iter
    (fun lanes ->
      let log, tasks, final = run_compound "twice" lanes in
      Alcotest.(check (list string))
        (Printf.sprintf "event log identical @%d" lanes)
        log1 log;
      check_bool
        (Printf.sprintf "tasks identical @%d" lanes)
        true (tasks = tasks1 && final = final1))
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Persistence round-trip property                                     *)
(* ------------------------------------------------------------------ *)

let persist_roundtrip_prop =
  QCheck.Test.make ~name:"persist roundtrip preserves catalog, tasks, lineage"
    ~count:30
    QCheck.(
      pair (int_range 1 4)
        (pair (int_range 0 2) (list_of_size (Gen.return 4) (float_range (-50.) 50.))))
    (fun (n_objects, (extra_versions, floats)) ->
      let k = simple_kernel () in
      let vals = Array.of_list (floats @ [ 1.0; 2.0; 3.0; 4.0 ]) in
      let oids =
        List.init n_objects (fun i -> insert_src k (i + 1) vals.(i))
      in
      let v1 = Option.get (Kernel.find_process k "negate") in
      for _ = 1 to extra_versions do
        let latest = Option.get (Kernel.find_process k "negate") in
        ok (Kernel.define_process k (ok (Process.edit latest ~name:"negate" ())))
      done;
      List.iter
        (fun oid ->
          ignore (ok (Kernel.execute_process k v1 ~inputs:[ ("x", [ oid ]) ])))
        oids;
      match Persist.load (Persist.save k) with
      | Error e -> QCheck.Test.fail_report (Gaea_error.to_string e)
      | Ok k2 ->
        List.length (Kernel.classes k) = List.length (Kernel.classes k2)
        && List.length (Kernel.all_process_versions k)
           = List.length (Kernel.all_process_versions k2)
        && List.length (Kernel.tasks k) = List.length (Kernel.tasks k2)
        && Kernel.count_objects k "src" = Kernel.count_objects k2 "src"
        && Kernel.count_objects k "out" = Kernel.count_objects k2 "out"
        && List.for_all
             (fun (t : Task.t) ->
               match t.Task.outputs with
               | [ out ] -> Kernel.task_producing k2 out <> None
               | _ -> false)
             (Kernel.tasks k2)
        && List.for_all
             (fun (t : Task.t) -> Result.is_ok (Kernel.recompute_task k2 t))
             (Kernel.tasks k2))

let () =
  Alcotest.run "events"
    [ ( "bus",
        [ tc "subscriber order" test_subscriber_order;
          tc "ring buffer wrap" test_ring_buffer_wrap;
          tc "event rendering" test_event_rendering ] );
      ( "kernel",
        [ tc "kernel subscriber order" test_kernel_subscriber_order;
          tc "lifecycle events logged" test_lifecycle_events_logged;
          tc "cache miss then hit logged" test_cache_miss_then_hit_logged;
          tc "invalidation on re-version" test_invalidation_events_on_reversion;
          tc "invalidation on delete" test_invalidation_events_on_delete;
          tc "invalidation on class mutation"
            test_invalidation_events_on_class_mutation;
          tc "restore is event-silent" test_restore_is_event_silent ] );
      ( "scheduler",
        [ tc "step-parallel determinism" test_scheduler_determinism;
          tc "duplicate step hits cache" test_scheduler_duplicate_step_hits_cache ] );
      qsuite "persist" [ persist_roundtrip_prop ] ]
