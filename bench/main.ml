(* Gaea reproduction benchmark harness.

   The paper (VLDB 1993) contains no quantitative evaluation — its five
   figures are architectural.  This harness therefore (a) regenerates an
   executable artifact for every figure and (b) measures the mechanism
   experiments E1–E11 defined in DESIGN.md, printing the series that
   EXPERIMENTS.md records.  One Bechamel Test.make exists per experiment
   (micro timing of its kernel operation); the macro sweeps print their
   own tables.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
module Kernel = Gaea_core.Kernel
module Figures = Gaea_core.Figures
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Filebased = Gaea_core.Filebased
module Value = Gaea_adt.Value
module Registry = Gaea_adt.Registry
module Dataflow = Gaea_adt.Dataflow
module Net = Gaea_petri.Net
module Marking = Gaea_petri.Marking
module Backchain = Gaea_petri.Backchain
module Reachability = Gaea_petri.Reachability
module R = Gaea_raster
module Pool = Gaea_par.Pool
module Process = Gaea_core.Process
module Task = Gaea_core.Task
module Schema = Gaea_core.Schema
module Template = Gaea_core.Template
module Vtype = Gaea_adt.Vtype

let ok = function
  | Ok v -> v
  | Error e -> failwith ("bench setup: " ^ Gaea_core.Gaea_error.to_string e)

(* --smoke: one quick pass over every experiment (a CI sanity check, not
   a measurement run) — small sweeps, single repeats, tiny bechamel
   quota. *)
let smoke = Array.exists (( = ) "--smoke") Sys.argv

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Wall clock, not [Sys.time]: the latter is CPU time summed over all
   domains, which under-reports sequential phases and over-reports
   parallel kernels (k domains burn k seconds of CPU per elapsed
   second).  All printed times are elapsed milliseconds. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_avg ?(repeats = 3) f =
  let total = ref 0. in
  let result = ref None in
  for _ = 1 to repeats do
    let r, dt = time_once f in
    result := Some r;
    total := !total +. dt
  done;
  (Option.get !result, !total /. float_of_int repeats)

(* Measurement discipline for the recorded (JSON) series: one unmeasured
   warmup run first — it faults in code paths, spawns/warms the domain
   pool and triggers the one-off cutoff calibration — then the median of
   [repeats] timed runs, which is robust against a straggler sample in a
   way the mean is not. *)
let time_median ?(warmup = 1) ?(repeats = 5) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let samples =
    Array.init repeats (fun _ ->
        let _, dt = time_once f in
        dt)
  in
  Array.sort compare samples;
  samples.(repeats / 2)

(* ------------------------------------------------------------------ *)
(* Figure artifacts                                                    *)
(* ------------------------------------------------------------------ *)

let fig1_architecture () =
  section "Fig 1 artifact: one query through every architecture layer";
  (* parser -> optimizer -> executor -> metadata manager -> storage *)
  let session = Gaea_query.Session.create () in
  let script =
    {|
DEFINE CLASS rainfall (data image, spatialextent box, timestamp abstime);
DEFINE CLASS desert (cutoff float, data image, spatialextent box, timestamp abstime)
  DERIVED BY desert-250;
DEFINE PROCESS desert-250 OUTPUT desert ARGS (rain rainfall)
  PARAM cutoff = 250.0
  MAP cutoff = $cutoff
  MAP data = img_threshold_below(rain.data, $cutoff)
  MAP spatialextent = rain.spatialextent
  MAP timestamp = rain.timestamp
END;
INSERT INTO rainfall (data = synth_rainfall(1, 32, 32),
  spatialextent = make_box(0.0,0.0,10.0,10.0), timestamp = make_abstime(1986,1,1));
DERIVE desert;
SELECT cutoff FROM desert
|}
  in
  match Gaea_query.Session.run_string session script with
  | Ok responses ->
    Printf.printf
      "parsed, planned and executed %d statements (DDL, process DDL, \
       ingest, derivation, retrieval): OK\n"
      (List.length responses)
  | Error e ->
    Printf.printf "FAILED: %s\n" (Gaea_core.Gaea_error.to_string e)

let fig2_layers () =
  section "Fig 2 artifact: the three semantic layers";
  let k, build_time =
    time_once (fun () ->
        let k = Kernel.create () in
        ok (Figures.install_all k);
        k)
  in
  let concepts = Gaea_core.Concept.all (Kernel.concepts k) in
  let isa_edges =
    List.fold_left
      (fun acc c ->
        acc
        + List.length
            (Gaea_core.Concept.parents (Kernel.concepts k)
               c.Gaea_core.Concept.name))
      0 concepts
  in
  Printf.printf
    "high level:   %d concepts, %d ISA edges\n\
     derivation:   %d classes, %d processes\n\
     system level: %d primitive classes, %d operators\n\
     schema build time: %.1f ms\n"
    (List.length concepts) isa_edges
    (List.length (Kernel.classes k))
    (List.length (Kernel.processes k))
    (List.length (Registry.all_classes (Kernel.registry k)))
    (Registry.operator_count (Kernel.registry k))
    (build_time *. 1000.)

let fig4_network () =
  section "Fig 4 artifact: the PCA compound-operator dataflow network";
  let k = Kernel.create () in
  match Registry.find_compound (Kernel.registry k) "pca" with
  | Some net -> print_endline (Dataflow.describe net)
  | None -> print_endline "pca network missing!"

(* ------------------------------------------------------------------ *)
(* E1: Gaea vs file-based GIS workflow                                 *)
(* ------------------------------------------------------------------ *)

let e1_gaea_vs_filebased () =
  section "E1: Gaea vs file-based GIS (IDRISI/GRASS baseline)";
  Printf.printf
    "workload: s scientists each need the same NDVI-change product \
     (64x64 pixels)\n\n";
  Printf.printf "%-12s %-24s %-20s %s\n" "scientists"
    "file-based computations" "gaea process runs" "recomputation factor";
  List.iter
    (fun n_scientists ->
      (* file-based: each scientist reruns the 3-step pipeline because a
         colleague's file names carry no derivation metadata *)
      let fb = Filebased.create () in
      let red, nir = R.Synthetic.red_nir_pair ~seed:1 ~nrow:64 ~ncol:64 () in
      Filebased.save fb ~name:"red88" red;
      Filebased.save fb ~name:"nir88" nir;
      let red89, nir89 =
        R.Synthetic.red_nir_pair ~seed:1 ~nrow:64 ~ncol:64
          ~vegetation_shift:0.2 ()
      in
      Filebased.save fb ~name:"red89" red89;
      Filebased.save fb ~name:"nir89" nir89;
      for s = 1 to n_scientists do
        let who = Printf.sprintf "scientist%d" s in
        let ndvi = function
          | [ r; n ] -> R.Ndvi.ndvi ~red:r ~nir:n ()
          | _ -> assert false
        in
        ignore
          (Filebased.run_analysis fb ~scientist:who ~output:"ndvi88"
             ~inputs:[ "red88"; "nir88" ] ndvi);
        ignore
          (Filebased.run_analysis fb ~scientist:who ~output:"ndvi89"
             ~inputs:[ "red89"; "nir89" ] ndvi);
        ignore
          (Filebased.run_analysis fb ~scientist:who ~output:"change"
             ~inputs:[ "ndvi89"; "ndvi88" ]
             (function
               | [ a; b ] -> R.Band_math.subtract a b
               | _ -> assert false))
      done;
      let fb_runs = (Filebased.stats fb).Filebased.computations in
      (* gaea: first request derives, every later request retrieves *)
      let k = Kernel.create () in
      ok (Figures.install_vegetation k);
      let _ = ok (Figures.load_avhrr_year k ~seed:1 ~year:1988 ()) in
      let _ =
        ok (Figures.load_avhrr_year k ~seed:1 ~year:1989 ~vegetation_shift:0.2 ())
      in
      for _ = 1 to n_scientists do
        match Kernel.objects_of_class k Figures.veg_change_class with
        | [] ->
          let _ = ok (Derivation.request ~need:2 k Figures.ndvi_class) in
          let p = Option.get (Kernel.find_process k Figures.p_change_sub) in
          let binding =
            ok
              (Kernel.find_binding k p
                 ~available:
                   [ ( Figures.ndvi_class,
                       Kernel.objects_of_class k Figures.ndvi_class ) ])
          in
          ignore (ok (Kernel.execute_process k p ~inputs:binding))
        | _ :: _ ->
          (Kernel.counters k).Kernel.retrievals <-
            (Kernel.counters k).Kernel.retrievals + 1
      done;
      let gaea_runs = (Kernel.counters k).Kernel.executions in
      Printf.printf "%-12d %-24d %-20d %.1fx\n" n_scientists fb_runs gaea_runs
        (float_of_int fb_runs /. float_of_int gaea_runs))
    (if smoke then [ 2 ] else [ 1; 2; 4; 8; 16 ])

(* ------------------------------------------------------------------ *)
(* E2: retrieval vs interpolation vs derivation                        *)
(* ------------------------------------------------------------------ *)

let e2_crossover () =
  section "E2: query answering — retrieval vs interpolation vs derivation";
  Printf.printf "%-8s %-16s %-18s %-16s\n" "size" "retrieve (ms)"
    "interpolate (ms)" "derive P20 (ms)";
  List.iter
    (fun n ->
      (* derivation cost: P20 on n x n *)
      let k = Kernel.create () in
      ok (Figures.install_fig3 k);
      let _ = ok (Figures.load_tm_bands k ~seed:3 ~nrow:n ~ncol:n ()) in
      let _, derive_t =
        time_once (fun () -> ok (Derivation.request k Figures.land_cover_class))
      in
      (* retrieval cost: ask again *)
      let _, retrieve_t =
        time_avg (fun () -> ok (Derivation.request k Figures.land_cover_class))
      in
      (* interpolation cost: two land-cover snapshots, mid-point query *)
      let k2 = Kernel.create () in
      ok (Figures.install_fig3 k2);
      let insert day seed =
        let extent =
          Gaea_geo.Extent.make
            (Gaea_geo.Box.make ~xmin:0. ~ymin:0. ~xmax:10. ~ymax:10.)
            (Gaea_geo.Interval.instant (Gaea_geo.Abstime.of_ymd 1986 1 day))
        in
        ignore (ok (Figures.load_tm_bands k2 ~seed ~nrow:n ~ncol:n ~extent ()))
      in
      insert 1 10;
      insert 21 11;
      let _ = ok (Derivation.request ~need:2 k2 Figures.land_cover_class) in
      let _, interp_t =
        time_once (fun () ->
            ok
              (Derivation.request_at k2 ~cls:Figures.land_cover_class
                 ~at:(Gaea_geo.Abstime.of_ymd 1986 1 11) ()))
      in
      Printf.printf "%-8s %-16.3f %-18.3f %-16.1f\n"
        (Printf.sprintf "%dx%d" n n)
        (retrieve_t *. 1000.) (interp_t *. 1000.) (derive_t *. 1000.))
    (if smoke then [ 32 ] else [ 32; 64; 96 ]);
  print_endline
    "(expected shape: retrieval ~constant; interpolation linear in pixels;\n\
    \ derivation dominated by classification — the paper's priority order\n\
    \ 'retrieve, then interpolate, then derive' is also the cost order)"

(* ------------------------------------------------------------------ *)
(* E3: Fig 3 / P20 task execution sweep                                *)
(* ------------------------------------------------------------------ *)

let e3_p20_scaling () =
  section "E3 (Fig 3): unsupervised-classification task execution";
  Printf.printf "%-10s %-8s %-14s %-14s %s\n" "image" "k" "time (ms)"
    "Mpixel/s" "reproducible";
  List.iter
    (fun n ->
      let k = Kernel.create () in
      ok (Figures.install_fig3 k);
      let _ = ok (Figures.load_tm_bands k ~seed:7 ~nrow:n ~ncol:n ()) in
      let outcome, dt =
        time_once (fun () -> ok (Derivation.request k Figures.land_cover_class))
      in
      let oid = List.hd outcome.Derivation.objects in
      let reproducible = ok (Lineage.verify_object k oid) in
      let mpix = float_of_int (n * n * 3) /. dt /. 1e6 in
      Printf.printf "%-10s %-8d %-14.1f %-14.2f %b\n"
        (Printf.sprintf "%dx%d" n n)
        12 (dt *. 1000.) mpix reproducible)
    (if smoke then [ 32 ] else [ 32; 64; 128 ])

(* ------------------------------------------------------------------ *)
(* E4: Fig 4 PCA network                                               *)
(* ------------------------------------------------------------------ *)

let e4_pca () =
  section "E4 (Fig 4): PCA compound-operator network vs native, and SPCA";
  let reg = Registry.with_builtins () in
  Printf.printf "%-8s %-8s %-16s %-16s %-12s %s\n" "bands" "size"
    "network (ms)" "native (ms)" "overhead" "max rms diff";
  List.iter
    (fun (b, n) ->
      let scene = R.Synthetic.landsat_scene ~seed:5 ~nrow:n ~ncol:n ~bands:b () in
      let c = Value.composite scene.R.Synthetic.composite in
      let args = [ c; Value.int 2 ] in
      let net_result, net_t = time_avg (fun () -> Registry.apply reg "pca" args) in
      let native_result, native_t =
        time_avg (fun () -> Registry.apply reg "pca_native" args)
      in
      let diff =
        match net_result, native_result with
        | Ok (Value.VComposite x), Ok (Value.VComposite y) ->
          List.fold_left2
            (fun acc a b -> Float.max acc (R.Imgstats.rmse a b))
            0. (R.Composite.bands x) (R.Composite.bands y)
        | _ -> Float.nan
      in
      Printf.printf "%-8d %-8s %-16.2f %-16.2f %-12.2f %.2e\n" b
        (Printf.sprintf "%dx%d" n n)
        (net_t *. 1000.) (native_t *. 1000.)
        (net_t /. native_t) diff)
    (if smoke then [ (2, 32) ] else [ (2, 32); (3, 64); (6, 64) ]);
  print_endline
    "(the dataflow network and the native implementation agree to float\n\
    \ round-off; interpretation overhead of the compound operator is small)"

(* ------------------------------------------------------------------ *)
(* E5: Petri backward chaining scale                                   *)
(* ------------------------------------------------------------------ *)

let build_chain_net ~depth ~fan_in =
  (* a derivation chain of [depth] stages; each stage's transition needs
     [fan_in] tokens of the previous class *)
  let net = Net.create () in
  let places =
    Array.init (depth + 1) (fun i ->
        Net.add_place net ~name:(Printf.sprintf "c%d" i))
  in
  for d = 0 to depth - 1 do
    ignore
      (Result.get_ok
         (Net.add_transition net
            ~name:(Printf.sprintf "p%d" d)
            ~inputs:[ (places.(d), fan_in) ]
            ~outputs:[ places.(d + 1) ]
            ()))
  done;
  let marking = ref Marking.empty in
  for tok = 1 to (fan_in * fan_in) + 2 do
    marking := Marking.add !marking places.(0) tok
  done;
  (net, !marking, places.(depth))

let e5_backchain () =
  section "E5: backward chaining over the derivation net";
  Printf.printf "%-8s %-8s %-14s %-12s %-12s %s\n" "depth" "fan-in"
    "plan (µs)" "plan cost" "plan depth" "reach (µs)";
  List.iter
    (fun (depth, fan_in) ->
      let net, marking, goal = build_chain_net ~depth ~fan_in in
      let plan, plan_t =
        time_avg ~repeats:5 (fun () -> Backchain.search net marking goal)
      in
      let _, reach_t =
        time_avg ~repeats:5 (fun () -> Reachability.analyze net marking)
      in
      match plan with
      | Some p ->
        Printf.printf "%-8d %-8d %-14.1f %-12d %-12d %.1f\n" depth fan_in
          (plan_t *. 1e6) (Backchain.cost p) (Backchain.depth p)
          (reach_t *. 1e6)
      | None -> Printf.printf "%-8d %-8d no plan!\n" depth fan_in)
    (if smoke then [ (4, 1) ]
     else
       [ (1, 1); (2, 1); (4, 1); (8, 1); (16, 1); (32, 1); (64, 1);
         (4, 2); (8, 2); (4, 3) ]);
  (* wide nets: many classes, only one chain relevant to the goal *)
  Printf.printf "\n%-12s %-14s %s\n" "classes" "plan (µs)" "reach (µs)";
  List.iter
    (fun width ->
      let net = Net.create () in
      let base = Net.add_place net ~name:"base" in
      let goal = Net.add_place net ~name:"goal" in
      for i = 0 to width - 3 do
        let p = Net.add_place net ~name:(Printf.sprintf "x%d" i) in
        ignore
          (Result.get_ok
             (Net.add_transition net
                ~name:(Printf.sprintf "tx%d" i)
                ~inputs:[ (base, 1) ] ~outputs:[ p ] ()))
      done;
      ignore
        (Result.get_ok
           (Net.add_transition net ~name:"tg" ~inputs:[ (base, 1) ]
              ~outputs:[ goal ] ()));
      let marking = Marking.of_list [ (base, [ 1 ]) ] in
      let _, plan_t =
        time_avg ~repeats:5 (fun () -> Backchain.search net marking goal)
      in
      let _, reach_t =
        time_avg ~repeats:5 (fun () -> Reachability.analyze net marking)
      in
      Printf.printf "%-12d %-14.1f %.1f\n" width (plan_t *. 1e6)
        (reach_t *. 1e6))
    (if smoke then [ 10 ] else [ 10; 100; 1000 ])

(* ------------------------------------------------------------------ *)
(* E6: Fig 5 compound process + reproducibility                        *)
(* ------------------------------------------------------------------ *)

let e6_fig5 () =
  section "E6 (Fig 5): compound land-change-detection + exact reproducibility";
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  ok (Figures.install_fig5 k);
  let _ = ok (Figures.load_tm_bands k ~seed:1986 ~nrow:64 ~ncol:64 ()) in
  let _ = ok (Figures.load_tm_bands k ~seed:1989 ~nrow:64 ~ncol:64 ()) in
  let outcome, dt =
    time_once (fun () ->
        ok (Derivation.request k Figures.land_cover_changes_class))
  in
  Printf.printf
    "derived %s through %d task(s) in %.1f ms (compound expanded to its \
     primitive steps)\n"
    Figures.land_cover_changes_class
    (List.length outcome.Derivation.new_tasks)
    (dt *. 1000.);
  let tasks = Kernel.tasks k in
  let reproduced = List.filter (fun t -> ok (Lineage.verify_task k t)) tasks in
  Printf.printf "reproducibility: %d/%d tasks recompute bit-identically\n"
    (List.length reproduced) (List.length tasks);
  let result = List.hd outcome.Derivation.objects in
  Printf.printf "base inputs of the result: %d TM band objects\n"
    (List.length (Lineage.base_inputs k result))

(* ------------------------------------------------------------------ *)
(* E7: domain-pool speedup on the parallel raster kernels              *)
(* ------------------------------------------------------------------ *)

type e7_row = {
  e7_kernel : string;
  e7_pixels : int;
  e7_by_domains : (int * float) list; (* pool size, elapsed seconds *)
}

let e7_rows : e7_row list ref = ref []

let e7_parallel_speedup () =
  section "E7: parallel raster kernels — domain-pool speedup sweep";
  let n = if smoke then 96 else 512 in
  let repeats = if smoke then 1 else 5 in
  let scene = R.Synthetic.landsat_scene ~seed:11 ~nrow:n ~ncol:n () in
  let comp = scene.R.Synthetic.composite in
  let model = R.Maxlike.train comp scene.R.Synthetic.truth in
  let red, nir = R.Synthetic.red_nir_pair ~seed:11 ~nrow:n ~ncol:n () in
  let t1 = Gaea_geo.Abstime.of_ymd 1986 1 1 in
  let t2 = Gaea_geo.Abstime.of_ymd 1986 2 1 in
  let at = Gaea_geo.Abstime.of_ymd 1986 1 16 in
  let obs = R.Composite.to_matrix comp in
  let kernels =
    [ ("kmeans-k8",
       fun () -> ignore (R.Kmeans.unsuperclassify ~max_iter:10 comp 8));
      ("maxlike-classify", fun () -> ignore (R.Maxlike.classify model comp));
      ("ndvi", fun () -> ignore (R.Ndvi.ndvi ~red ~nir ()));
      ("band-subtract", fun () -> ignore (R.Band_math.subtract nir red));
      ("interpolate",
       fun () ->
         ignore (R.Interpolate.temporal_linear ~at (t1, red) (t2, nir)));
      ("covariance", fun () -> ignore (R.Matrix.covariance obs)) ]
  in
  let sizes = [ 1; 2; 4; 8 ] in
  Printf.printf
    "wall-clock ms per run at %dx%d (median of %d after warmup), pool \
     size swept 1/2/4/8\n\
     (this host reports %d hardware thread(s); with 1 the sweep checks\n\
    \ overhead only — the speedup materializes on multicore hosts)\n\n"
    n n repeats
    (Domain.recommended_domain_count ());
  Printf.printf "%-18s %11s %11s %11s %11s %8s\n" "kernel" "1 dom (ms)"
    "2 dom (ms)" "4 dom (ms)" "8 dom (ms)" "best x";
  let saved = Pool.size () in
  List.iter
    (fun (name, f) ->
      let by_domains =
        List.map
          (fun s ->
            Pool.set_size s;
            let dt = time_median ~repeats (fun () -> f ()) in
            (s, dt))
          sizes
      in
      let seq = List.assoc 1 by_domains in
      let best =
        List.fold_left
          (fun acc (s, dt) -> if s > 1 then Float.min acc dt else acc)
          Float.infinity by_domains
      in
      let ms s = List.assoc s by_domains *. 1000. in
      Printf.printf "%-18s %11.2f %11.2f %11.2f %11.2f %8.2f\n" name (ms 1)
        (ms 2) (ms 4) (ms 8)
        (seq /. best);
      e7_rows :=
        { e7_kernel = name; e7_pixels = n * n; e7_by_domains = by_domains }
        :: !e7_rows)
    kernels;
  Pool.set_size saved;
  e7_rows := List.rev !e7_rows

(* ------------------------------------------------------------------ *)
(* E8: derived-object result cache                                     *)
(* ------------------------------------------------------------------ *)

let e8_stats : (float * float * Kernel.cache_stats) option ref = ref None

let e8_cache () =
  section "E8: derived-object result cache — repeated-DERIVE hit-rate sweep";
  let k = Kernel.create () in
  ok (Figures.install_fig3 k);
  let n = if smoke then 32 else 64 in
  let _ = ok (Figures.load_tm_bands k ~seed:9 ~nrow:n ~ncol:n ()) in
  let p = Option.get (Kernel.find_process k Figures.p20_name) in
  let binding =
    ok
      (Kernel.find_binding k p
         ~available:
           [ ( Figures.landsat_class,
               Kernel.objects_of_class k Figures.landsat_class ) ])
  in
  let run_once () = ok (Kernel.execute_process k p ~inputs:binding) in
  Printf.printf
    "workload: r identical DERIVE requests for %s (%dx%d P20);\n\
     the first computes, the rest must be cache hits on the same task\n\n"
    Figures.land_cover_class n n;
  Printf.printf "%-10s %-7s %-8s %-10s %-14s %-14s %s\n" "requests" "hits"
    "misses" "hit rate" "total (ms)" "naive (ms)" "saved";
  List.iter
    (fun r ->
      Kernel.clear_cache k;
      Kernel.reset_counters k;
      let first = ref None in
      let _, total =
        time_once (fun () ->
            for _ = 1 to r do
              let t = run_once () in
              match !first with
              | None -> first := Some t
              | Some f -> assert (t.Task.task_id = f.Task.task_id)
            done)
      in
      let c = Kernel.counters k in
      (* naive = recompute on every request (per-miss cost x r) *)
      let naive =
        total /. float_of_int c.Kernel.cache_misses *. float_of_int r
      in
      Printf.printf "%-10d %-7d %-8d %-10.2f %-14.2f %-14.2f %.1fx\n" r
        c.Kernel.cache_hits c.Kernel.cache_misses
        (float_of_int c.Kernel.cache_hits /. float_of_int r)
        (total *. 1000.) (naive *. 1000.)
        (naive /. total))
    (if smoke then [ 4 ] else [ 1; 2; 4; 8; 16; 32 ]);
  (* timing split: one cold miss vs one warm hit *)
  Kernel.clear_cache k;
  Kernel.reset_counters k;
  let t0, cold = time_once run_once in
  let t1', warm = time_once run_once in
  assert (t0.Task.task_id = t1'.Task.task_id);
  Printf.printf
    "\ncold miss %.2f ms, warm hit %.4f ms (%.0fx); executions recorded: %d\n"
    (cold *. 1000.) (warm *. 1000.) (cold /. warm)
    (Kernel.counters k).Kernel.executions;
  (* invalidation: re-versioning the process drops its entries *)
  let before = Kernel.cache_stats k in
  let edited =
    ok (Process.edit p ~name:Figures.p20_name ~params:[ ("k", Value.int 8) ] ())
  in
  ok (Kernel.define_process k edited);
  let after = Kernel.cache_stats k in
  let _, recompute = time_once run_once in
  Printf.printf
    "re-versioning %s: cache entries %d -> %d (%d invalidated);\n\
     next identical request recomputes (%.2f ms) — stale results cannot \
     survive a process edit\n"
    Figures.p20_name before.Kernel.entries after.Kernel.entries
    (after.Kernel.invalidations - before.Kernel.invalidations)
    (recompute *. 1000.);
  e8_stats := Some (cold, warm, Kernel.cache_stats k)

(* ------------------------------------------------------------------ *)
(* E9: DAG-parallel compound expansion                                 *)
(* ------------------------------------------------------------------ *)

type e9_data = {
  e9_steps : int;
  e9_pixels : int;
  e9_by_domains : (int * float) list; (* pool size, elapsed seconds *)
  e9_deterministic : bool;
}

let e9_result : e9_data option ref = ref None

(* a compound whose steps are all independent (each one scales the same
   source image by a different constant): the deriver can evaluate every
   step concurrently and must still commit in step order *)
let e9_kernel ~steps ~n () =
  let open Template in
  let k = Kernel.create () in
  let base_attrs =
    [ ("data", Vtype.Image); ("spatialextent", Vtype.Box);
      ("timestamp", Vtype.Abstime) ]
  in
  ok (Kernel.define_class k (ok (Schema.define ~name:"e9src" ~attributes:base_attrs ())));
  ok
    (Kernel.define_class k
       (ok (Schema.define ~name:"e9out" ~attributes:base_attrs ~derived_by:"e9fan" ())));
  for i = 0 to steps - 1 do
    ok
      (Kernel.define_process k
         (ok
            (Process.define_primitive
               ~name:(Printf.sprintf "e9stage%d" i)
               ~output_class:"e9out"
               ~args:[ Process.scalar_arg "x" "e9src" ]
               ~template:
                 (make ~assertions:[]
                    ~mappings:
                      [ { target = "data";
                          rhs =
                            Apply
                              ("img_scale",
                               [ Const (Value.float (float_of_int (i + 1)));
                                 Attr_of ("x", "data") ]) };
                        { target = "spatialextent";
                          rhs = Attr_of ("x", "spatialextent") };
                        { target = "timestamp"; rhs = Attr_of ("x", "timestamp") } ])
               ())))
  done;
  ok
    (Kernel.define_process k
       (ok
          (Process.define_compound ~name:"e9fan" ~output_class:"e9out"
             ~args:[ Process.scalar_arg "x" "e9src" ]
             ~steps:
               (List.init steps (fun i ->
                    { Process.step_process = Printf.sprintf "e9stage%d" i;
                      step_inputs = [ ("x", Process.From_arg "x") ] }))
             ())));
  let img = R.Synthetic.value_noise ~seed:33 ~nrow:n ~ncol:n () in
  let oid =
    ok
      (Kernel.insert_object k ~cls:"e9src"
         [ ("data", Value.image img);
           ("spatialextent",
            Value.box (Gaea_geo.Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.));
           ("timestamp", Value.abstime (Gaea_geo.Abstime.of_ymd 1986 1 1)) ])
  in
  (k, oid)

let e9_task_parallel () =
  section "E9: DAG-parallel compound expansion — independent steps on the pool";
  let steps = 8 in
  let n = if smoke then 64 else 256 in
  let repeats = if smoke then 1 else 5 in
  let sizes = [ 1; 2; 4; 8 ] in
  Printf.printf
    "workload: one compound of %d independent img_scale steps over a \
     %dx%d image;\nthe deriver evaluates ready steps as a pool batch and \
     commits in step order\n\n"
    steps n n;
  let saved = Pool.size () in
  let by_domains =
    List.map
      (fun s ->
        Pool.set_size s;
        let k, oid = e9_kernel ~steps ~n () in
        let p = Option.get (Kernel.find_process k "e9fan") in
        let dt =
          time_median ~repeats (fun () ->
              Kernel.clear_cache k;
              ok (Kernel.execute_process k p ~inputs:[ ("x", [ oid ]) ]))
        in
        (s, dt))
      sizes
  in
  (* scheduling must not change what is derived: the event log, task
     list and final task are identical at any pool size; the cutoff
     override forces the batch path even on single-domain hosts *)
  let snapshot s =
    Pool.set_min_parallel_work (Some 0);
    Pool.set_size s;
    let k, oid = e9_kernel ~steps ~n:32 () in
    let p = Option.get (Kernel.find_process k "e9fan") in
    let t = ok (Kernel.execute_process k p ~inputs:[ ("x", [ oid ]) ]) in
    ( List.map
        (fun (seq, ev) -> (seq, Gaea_core.Events.event_to_string ev))
        (Kernel.event_log k),
      List.map
        (fun (t : Task.t) -> (t.Task.task_id, t.Task.process, t.Task.outputs))
        (Kernel.tasks k),
      t.Task.task_id )
  in
  let deterministic = snapshot 1 = snapshot 8 in
  Pool.set_min_parallel_work None;
  Pool.set_size saved;
  let seq = List.assoc 1 by_domains in
  let best =
    List.fold_left
      (fun acc (s, dt) -> if s > 1 then Float.min acc dt else acc)
      Float.infinity by_domains
  in
  Printf.printf "%-18s %11s %11s %11s %11s %8s\n" "compound" "1 dom (ms)"
    "2 dom (ms)" "4 dom (ms)" "8 dom (ms)" "best x";
  let ms s = List.assoc s by_domains *. 1000. in
  Printf.printf "%-18s %11.2f %11.2f %11.2f %11.2f %8.2f\n" "e9fan-8-steps"
    (ms 1) (ms 2) (ms 4) (ms 8)
    (seq /. best);
  Printf.printf "provenance/event order identical at pool sizes 1 and 8: %b\n"
    deterministic;
  if not deterministic then failwith "E9: scheduling changed provenance order";
  e9_result :=
    Some
      { e9_steps = steps; e9_pixels = n * n; e9_by_domains = by_domains;
        e9_deterministic = deterministic }

(* ------------------------------------------------------------------ *)
(* E10: incremental refresh — invalidate k of n pipeline inputs        *)
(* ------------------------------------------------------------------ *)

type e10_data = {
  e10_n : int;
  e10_k : int;
  e10_total_derived : int;
  e10_refreshed : int;
  e10_refresh_s : float;
  e10_full_s : float;
  e10_identical : bool;
  e10_deterministic : bool;
}

let e10_result : e10_data option ref = ref None
let e10_failed = ref false

(* n independent 2-stage pipelines: src_i -> e10s1 -> mid_i -> e10s2 ->
   out_i.  Updating one src must stale (and refresh) exactly its own
   mid and out, never the other pipelines. *)
let e10_kernel ~n ~npix ~seed_of () =
  let open Template in
  let k = Kernel.create () in
  let base_attrs =
    [ ("data", Vtype.Image); ("spatialextent", Vtype.Box);
      ("timestamp", Vtype.Abstime) ]
  in
  ok (Kernel.define_class k (ok (Schema.define ~name:"e10src" ~attributes:base_attrs ())));
  ok
    (Kernel.define_class k
       (ok (Schema.define ~name:"e10mid" ~attributes:base_attrs ~derived_by:"e10s1" ())));
  ok
    (Kernel.define_class k
       (ok (Schema.define ~name:"e10out" ~attributes:base_attrs ~derived_by:"e10s2" ())));
  let stage name src_cls out_cls factor =
    ok
      (Kernel.define_process k
         (ok
            (Process.define_primitive ~name ~output_class:out_cls
               ~args:[ Process.scalar_arg "x" src_cls ]
               ~template:
                 (make ~assertions:[]
                    ~mappings:
                      [ { target = "data";
                          rhs =
                            Apply
                              ("img_scale",
                               [ Const (Value.float factor);
                                 Attr_of ("x", "data") ]) };
                        { target = "spatialextent";
                          rhs = Attr_of ("x", "spatialextent") };
                        { target = "timestamp"; rhs = Attr_of ("x", "timestamp") } ])
               ())))
  in
  stage "e10s1" "e10src" "e10mid" 2.0;
  stage "e10s2" "e10mid" "e10out" 3.0;
  let srcs =
    Array.init n (fun i ->
        let img =
          R.Synthetic.value_noise ~seed:(seed_of i) ~nrow:npix ~ncol:npix ()
        in
        ok
          (Kernel.insert_object k ~cls:"e10src"
             [ ("data", Value.image img);
               ("spatialextent",
                Value.box (Gaea_geo.Box.make ~xmin:0. ~ymin:0. ~xmax:1. ~ymax:1.));
               ("timestamp", Value.abstime (Gaea_geo.Abstime.of_ymd 1986 1 1)) ]))
  in
  (k, srcs)

let e10_derive_all k srcs =
  let p1 = Option.get (Kernel.find_process k "e10s1") in
  let p2 = Option.get (Kernel.find_process k "e10s2") in
  Array.map
    (fun oid ->
      let t1 = ok (Kernel.execute_process k p1 ~inputs:[ ("x", [ oid ]) ]) in
      let mid = List.hd t1.Task.outputs in
      let t2 = ok (Kernel.execute_process k p2 ~inputs:[ ("x", [ mid ]) ]) in
      (mid, List.hd t2.Task.outputs))
    srcs

let e10_out_hashes k pairs =
  Array.to_list
    (Array.map
       (fun (_, out) ->
         match Kernel.object_attr k ~cls:"e10out" out "data" with
         | Some v -> Value.content_hash v
         | None -> 0)
       pairs)

let e10_update_src k srcs i ~npix =
  let img =
    R.Synthetic.value_noise ~seed:(1000 + i) ~nrow:npix ~ncol:npix ()
  in
  ok (Kernel.update_object k ~cls:"e10src" srcs.(i) [ ("data", Value.image img) ])

let e10_incremental_refresh () =
  section "E10: incremental refresh — invalidate k of n pipeline inputs";
  let n = if smoke then 4 else 8 in
  let k_inv = 1 in
  let npix = if smoke then 32 else 64 in
  let total = 2 * n in
  Printf.printf
    "workload: %d independent 2-stage pipelines over %dx%d images (%d \
     derived objects);\nupdate %d input(s), REFRESH ALL, and compare \
     against a cold full re-derivation\n\n"
    n npix npix total k_inv;
  (* -- timing: incremental refresh vs full recompute -- *)
  let fresh_seed i = i + 1 in
  let k, srcs = e10_kernel ~n ~npix ~seed_of:fresh_seed () in
  let _ = e10_derive_all k srcs in
  for i = 0 to k_inv - 1 do
    e10_update_src k srcs i ~npix
  done;
  let stale_before = List.length (Kernel.stale_objects k) in
  let t0 = Unix.gettimeofday () in
  let report = Kernel.refresh_stale k in
  let dt_refresh = Unix.gettimeofday () -. t0 in
  (* full recompute of the same post-update state, from a cold kernel *)
  let seed_updated i = if i < k_inv then 1000 + i else fresh_seed i in
  let k_cold, srcs_cold = e10_kernel ~n ~npix ~seed_of:seed_updated () in
  let t0 = Unix.gettimeofday () in
  let pairs_cold = e10_derive_all k_cold srcs_cold in
  let dt_full = Unix.gettimeofday () -. t0 in
  (* refreshed values must match the cold derivation bit for bit *)
  let k2, srcs2 = e10_kernel ~n ~npix ~seed_of:fresh_seed () in
  let pairs2 = e10_derive_all k2 srcs2 in
  for i = 0 to k_inv - 1 do
    e10_update_src k2 srcs2 i ~npix
  done;
  let _ = Kernel.refresh_stale k2 in
  let identical = e10_out_hashes k2 pairs2 = e10_out_hashes k_cold pairs_cold in
  (* -- determinism: events, tasks and values at pool sizes 1/2/8 -- *)
  let saved = Pool.size () in
  let snapshot s =
    Pool.set_min_parallel_work (Some 0);
    Pool.set_size s;
    let k, srcs = e10_kernel ~n ~npix:32 ~seed_of:fresh_seed () in
    let pairs = e10_derive_all k srcs in
    for i = 0 to k_inv - 1 do
      e10_update_src k srcs i ~npix:32
    done;
    let r = Kernel.refresh_stale k in
    ( List.map
        (fun (seq, ev) -> (seq, Gaea_core.Events.event_to_string ev))
        (Kernel.event_log k),
      List.map
        (fun (t : Task.t) -> (t.Task.task_id, t.Task.process, t.Task.outputs))
        (Kernel.tasks k),
      e10_out_hashes k pairs,
      r.Kernel.refreshed )
  in
  let s1 = snapshot 1 in
  let deterministic = s1 = snapshot 2 && s1 = snapshot 8 in
  Pool.set_min_parallel_work None;
  Pool.set_size saved;
  Printf.printf "stale after update: %d of %d derived object(s)\n" stale_before
    total;
  Printf.printf "refreshed: %d object(s) in %.2f ms (full recompute: %.2f ms)\n"
    report.Kernel.refreshed (dt_refresh *. 1000.) (dt_full *. 1000.);
  Printf.printf "refreshed values identical to cold re-derivation: %b\n"
    identical;
  Printf.printf "provenance/event order identical at pool sizes 1/2/8: %b\n"
    deterministic;
  if report.Kernel.refreshed >= total then begin
    print_endline
      "E10 FAILURE: refresh recomputed every derived object — incremental \
       path degraded to full recompute";
    e10_failed := true
  end;
  if not identical then begin
    print_endline "E10 FAILURE: refreshed values diverge from cold derivation";
    e10_failed := true
  end;
  if not deterministic then begin
    print_endline "E10 FAILURE: refresh scheduling changed provenance order";
    e10_failed := true
  end;
  e10_result :=
    Some
      { e10_n = n; e10_k = k_inv; e10_total_derived = total;
        e10_refreshed = report.Kernel.refreshed; e10_refresh_s = dt_refresh;
        e10_full_s = dt_full; e10_identical = identical;
        e10_deterministic = deterministic }

(* ------------------------------------------------------------------ *)
(* E11: bounded result cache — budget sweep                            *)
(* ------------------------------------------------------------------ *)

type e11_row = {
  e11_budget : int;
  e11_entries : int;
  e11_max_resident : int;
  e11_admissions : int;
  e11_evictions : int;
  e11_within : bool;
}

let e11_rows : e11_row list ref = ref []

let e11_cache_sweep () =
  section "E11: bounded result cache — GAEA_CACHE_BYTES budget sweep";
  let n = if smoke then 6 else 12 in
  let npix = if smoke then 32 else 64 in
  let budgets =
    [ 64 * 1024; 256 * 1024; 1024 * 1024; 16 * 1024 * 1024 ]
  in
  Printf.printf
    "workload: %d pipelines over %dx%d images, derived twice per budget \
     (second pass probes retention)\n\n"
    n npix npix;
  Printf.printf "%-14s %9s %14s %11s %10s %7s\n" "budget (B)" "entries"
    "max res (B)" "admissions" "evictions" "within";
  List.iter
    (fun budget ->
      let k, srcs = e10_kernel ~n ~npix ~seed_of:(fun i -> i + 1) () in
      Kernel.set_cache_budget k budget;
      let max_resident = ref 0 in
      let track () =
        let st = Kernel.cache_stats k in
        if st.Kernel.resident_bytes > !max_resident then
          max_resident := st.Kernel.resident_bytes
      in
      let p1 = Option.get (Kernel.find_process k "e10s1") in
      let p2 = Option.get (Kernel.find_process k "e10s2") in
      for _pass = 1 to 2 do
        Array.iter
          (fun oid ->
            let t1 =
              ok (Kernel.execute_process k p1 ~inputs:[ ("x", [ oid ]) ])
            in
            track ();
            let mid = List.hd t1.Task.outputs in
            let _ =
              ok (Kernel.execute_process k p2 ~inputs:[ ("x", [ mid ]) ])
            in
            track ())
          srcs
      done;
      let st = Kernel.cache_stats k in
      let within = !max_resident <= budget && st.Kernel.resident_bytes <= budget in
      Printf.printf "%-14d %9d %14d %11d %10d %7b\n" budget st.Kernel.entries
        !max_resident st.Kernel.admissions st.Kernel.evictions within;
      if not within then begin
        print_endline "E11 FAILURE: resident bytes exceeded the budget";
        e10_failed := true
      end;
      e11_rows :=
        { e11_budget = budget; e11_entries = st.Kernel.entries;
          e11_max_resident = !max_resident;
          e11_admissions = st.Kernel.admissions;
          e11_evictions = st.Kernel.evictions; e11_within = within }
        :: !e11_rows)
    budgets;
  e11_rows := List.rev !e11_rows

(* ------------------------------------------------------------------ *)
(* Fused-kernel parity gate                                            *)
(* ------------------------------------------------------------------ *)

let parity_failed = ref false

(* The fused closure-free kernels must match their map2/fold references
   bit for bit — CI runs this (via --smoke) and the harness exits
   non-zero on any divergence.  The cutoff override forces the pool
   dispatch path even on single-core hosts. *)
let parity_gate () =
  section "Fused-kernel parity gate";
  let red, nir = R.Synthetic.red_nir_pair ~seed:8 ~nrow:96 ~ncol:96 () in
  let scene = R.Synthetic.landsat_scene ~seed:5 ~nrow:96 ~ncol:96 () in
  let comp = scene.R.Synthetic.composite in
  let checks =
    [ ("band-add",
       fun () ->
         R.Image.equal (R.Band_math.add red nir)
           (R.Image.map2 ~ptype:R.Pixel.Float8 ( +. ) red nir));
      ("band-subtract",
       fun () ->
         R.Image.equal
           (R.Band_math.subtract red nir)
           (R.Image.map2 ~ptype:R.Pixel.Float8 (fun x y -> x -. y) red nir));
      ("ndvi",
       fun () ->
         R.Image.equal
           (R.Ndvi.ndvi ~red ~nir ())
           (R.Image.map2 ~ptype:R.Pixel.Float8
              (fun nv rv ->
                let d = nv +. rv in
                if d = 0. then 0. else (nv -. rv) /. d)
              nir red));
      ("to-matrix",
       fun () ->
         R.Matrix.equal (R.Kernelized.to_matrix comp) (R.Composite.to_matrix comp));
      ("of-matrix",
       fun () ->
         let m = R.Composite.to_matrix comp in
         let nrow = R.Composite.nrow comp and ncol = R.Composite.ncol comp in
         R.Composite.equal
           (R.Kernelized.of_matrix ~nrow ~ncol R.Pixel.Float8 m)
           (R.Composite.of_matrix ~nrow ~ncol R.Pixel.Float8 m));
      ("band-covariance",
       fun () ->
         R.Matrix.equal
           (R.Imgstats.band_covariance comp)
           (R.Matrix.covariance (R.Composite.to_matrix comp)));
      ("imgstats-sum",
       fun () ->
         let band = List.hd (R.Composite.bands comp) in
         (* multi-chunk: value must at least be pool-size invariant;
            single-chunk fold equality is covered by the small image *)
         let small =
           R.Image.init ~nrow:20 ~ncol:20 R.Pixel.Float8 (fun r c ->
               sin (float_of_int ((r * 20) + c)))
         in
         Float.equal (R.Imgstats.sum small) (R.Image.fold ( +. ) 0. small)
         && Float.is_finite (R.Imgstats.sum band)) ]
  in
  let saved = Pool.size () in
  Pool.set_min_parallel_work (Some 0);
  List.iter
    (fun lanes ->
      Pool.set_size lanes;
      List.iter
        (fun (name, f) ->
          let pass = f () in
          Printf.printf "%-18s @%d %s\n" name lanes
            (if pass then "OK" else "DIVERGED");
          if not pass then parity_failed := true)
        checks)
    [ 1; 4 ];
  Pool.set_min_parallel_work None;
  Pool.set_size saved;
  if !parity_failed then
    print_endline "PARITY FAILURE: fused kernels diverged from reference"

(* ------------------------------------------------------------------ *)
(* BENCH_parallel.json: machine-readable E7/E8 summary for CI          *)
(* ------------------------------------------------------------------ *)

(* "model name : Intel ..." from /proc/cpuinfo, when the platform has
   one (absent on non-Linux hosts: the field is null, not an error) *)
let cpu_model () =
  try
    let ic = open_in "/proc/cpuinfo" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          if String.length line >= 10 && String.sub line 0 10 = "model name"
          then
            match String.index_opt line ':' with
            | Some i ->
              Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
            | None -> scan ()
          else scan ()
        in
        try scan () with End_of_file -> None)
  with Sys_error _ -> None

let emit_bench_json path =
  let host_domains = Domain.recommended_domain_count () in
  (* on a single-domain host the adaptive cutoff keeps every kernel on
     the sequential path, so a "speedup" would just be timer noise:
     report null and say why *)
  let single = host_domains = 1 in
  let speedup_field by_domains =
    if single then "null"
    else begin
      let seq = List.assoc 1 by_domains in
      let best =
        List.fold_left
          (fun acc (s, dt) -> if s > 1 then Float.min acc dt else acc)
          Float.infinity by_domains
      in
      Printf.sprintf "%.3f" (seq /. best)
    end
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"host_domains\": %d,\n  \"smoke\": %b,\n" host_domains smoke;
  out "  \"ocaml_version\": %S,\n" Sys.ocaml_version;
  (match cpu_model () with
   | Some m -> out "  \"cpu_model\": %S,\n" m
   | None -> out "  \"cpu_model\": null,\n");
  if single then
    out
      "  \"note\": \"host has a single hardware domain; the adaptive \
       cutoff pins all kernels to the sequential path, so per-size \
       timings measure overhead parity, not speedup\",\n";
  out "  \"kernels\": [\n";
  List.iteri
    (fun i row ->
      out "    { \"kernel\": %S, \"pixels\": %d, \"ns_per_op\": {"
        row.e7_kernel row.e7_pixels;
      List.iteri
        (fun j (s, dt) ->
          out "%s\"%d\": %.0f" (if j > 0 then ", " else "") s (dt *. 1e9))
        row.e7_by_domains;
      out "}, \"best_speedup\": %s }%s\n"
        (speedup_field row.e7_by_domains)
        (if i < List.length !e7_rows - 1 then "," else ""))
    !e7_rows;
  out "  ],\n";
  (match !e9_result with
   | Some e9 ->
     out "  \"deriver\": { \"steps\": %d, \"pixels\": %d, \"ns_per_op\": {"
       e9.e9_steps e9.e9_pixels;
     List.iteri
       (fun j (s, dt) ->
         out "%s\"%d\": %.0f" (if j > 0 then ", " else "") s (dt *. 1e9))
       e9.e9_by_domains;
     out "}, \"best_speedup\": %s, \"deterministic\": %b },\n"
       (speedup_field e9.e9_by_domains)
       e9.e9_deterministic
   | None -> out "  \"deriver\": null,\n");
  (match !e8_stats with
   | Some (cold, warm, st) ->
     out
       "  \"cache\": { \"cold_miss_ns\": %.0f, \"warm_hit_ns\": %.0f, \
        \"hits\": %d, \"misses\": %d, \"entries\": %d, \"invalidations\": \
        %d, \"admissions\": %d, \"evictions\": %d, \"resident_bytes\": %d, \
        \"budget_bytes\": %d },\n"
       (cold *. 1e9) (warm *. 1e9) st.Kernel.hits st.Kernel.misses
       st.Kernel.entries st.Kernel.invalidations st.Kernel.admissions
       st.Kernel.evictions st.Kernel.resident_bytes st.Kernel.budget_bytes
   | None -> out "  \"cache\": null,\n");
  (match !e10_result with
   | Some r ->
     out
       "  \"refresh\": { \"pipelines\": %d, \"invalidated\": %d, \
        \"total_derived\": %d, \"refreshed\": %d, \"refresh_ms\": %.3f, \
        \"full_recompute_ms\": %.3f, \"identical_to_cold\": %b, \
        \"deterministic\": %b },\n"
       r.e10_n r.e10_k r.e10_total_derived r.e10_refreshed
       (r.e10_refresh_s *. 1000.) (r.e10_full_s *. 1000.) r.e10_identical
       r.e10_deterministic
   | None -> out "  \"refresh\": null,\n");
  (match !e11_rows with
   | [] -> out "  \"cache_sweep\": null\n"
   | rows ->
     out "  \"cache_sweep\": [\n";
     List.iteri
       (fun i r ->
         out
           "    { \"budget_bytes\": %d, \"entries\": %d, \
            \"max_resident_bytes\": %d, \"admissions\": %d, \"evictions\": \
            %d, \"within_budget\": %b }%s\n"
           r.e11_budget r.e11_entries r.e11_max_resident r.e11_admissions
           r.e11_evictions r.e11_within
           (if i < List.length rows - 1 then "," else ""))
       rows;
     out "  ]\n");
  out "}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per experiment)            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  (* E1 kernel op: a retrieval hit (the thing Gaea saves) *)
  let k1 = Kernel.create () in
  ok (Figures.install_fig3 k1);
  let _ = ok (Figures.load_tm_bands k1 ~seed:3 ~nrow:32 ~ncol:32 ()) in
  let _ = ok (Derivation.request k1 Figures.land_cover_class) in
  let t_e1 =
    Test.make ~name:"e1-retrieval-hit"
      (Staged.stage (fun () ->
           ok (Derivation.request k1 Figures.land_cover_class)))
  in
  (* E2: interpolation of a 32x32 image pair *)
  let img1 = R.Synthetic.value_noise ~seed:1 ~nrow:32 ~ncol:32 () in
  let img2 = R.Synthetic.value_noise ~seed:2 ~nrow:32 ~ncol:32 () in
  let t1 = Gaea_geo.Abstime.of_ymd 1986 1 1 in
  let t2 = Gaea_geo.Abstime.of_ymd 1986 2 1 in
  let at = Gaea_geo.Abstime.of_ymd 1986 1 16 in
  let t_e2 =
    Test.make ~name:"e2-interpolate-32x32"
      (Staged.stage (fun () ->
           R.Interpolate.temporal_linear ~at (t1, img1) (t2, img2)))
  in
  (* E3: unsuperclassify 32x32x3, k=12 *)
  let scene = R.Synthetic.landsat_scene ~seed:7 ~nrow:32 ~ncol:32 () in
  let t_e3 =
    Test.make ~name:"e3-unsuperclassify-32x32"
      (Staged.stage (fun () ->
           R.Kmeans.unsuperclassify scene.R.Synthetic.composite 12))
  in
  (* E4: the pca compound network on 32x32x3 *)
  let reg = Registry.with_builtins () in
  let pca_args = [ Value.composite scene.R.Synthetic.composite; Value.int 2 ] in
  let t_e4 =
    Test.make ~name:"e4-pca-network-32x32"
      (Staged.stage (fun () -> Registry.apply reg "pca" pca_args))
  in
  (* E5: backchain plan on a depth-8 chain *)
  let net, marking, goal = build_chain_net ~depth:8 ~fan_in:1 in
  let t_e5 =
    Test.make ~name:"e5-backchain-depth8"
      (Staged.stage (fun () -> Backchain.search net marking goal))
  in
  (* E6: recompute a recorded task (the reproducibility primitive) *)
  let k6 = Kernel.create () in
  ok (Figures.install_fig3 k6);
  let _ = ok (Figures.load_tm_bands k6 ~seed:3 ~nrow:16 ~ncol:16 ()) in
  let outcome6 = ok (Derivation.request k6 Figures.land_cover_class) in
  let task6 = List.hd outcome6.Derivation.new_tasks in
  let t_e6 =
    Test.make ~name:"e6-recompute-task-16x16"
      (Staged.stage (fun () -> ok (Kernel.recompute_task k6 task6)))
  in
  [ t_e1; t_e2; t_e3; t_e4; t_e5; t_e6 ]

let run_bechamel () =
  section "Bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let tests = micro_tests () in
  let grouped = Test.make_grouped ~name:"gaea" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300
      ~quota:(Time.second (if smoke then 0.05 else 0.4))
      ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-32s %16s %14s\n" "benchmark" "ns/run" "ms/run";
  List.iter
    (fun (name, ns) -> Printf.printf "%-32s %16.0f %14.3f\n" name ns (ns /. 1e6))
    rows

(* ------------------------------------------------------------------ *)

let () =
  print_endline
    "Gaea derived-data management: benchmark and figure-reproduction harness";
  print_endline
    "(paper: Hachem, Qiu, Gennert, Ward — Managing Derived Data in the \
     Gaea Scientific DBMS, VLDB 1993)";
  fig1_architecture ();
  fig2_layers ();
  fig4_network ();
  e1_gaea_vs_filebased ();
  e2_crossover ();
  e3_p20_scaling ();
  e4_pca ();
  e5_backchain ();
  e6_fig5 ();
  e7_parallel_speedup ();
  e8_cache ();
  e9_task_parallel ();
  e10_incremental_refresh ();
  e11_cache_sweep ();
  parity_gate ();
  run_bechamel ();
  (* smoke runs must never clobber the full-size benchmark record *)
  emit_bench_json
    (if smoke then "BENCH_parallel.smoke.json" else "BENCH_parallel.json");
  print_endline "\nall experiments completed.";
  Pool.shutdown ();
  if !parity_failed || !e10_failed then exit 1
