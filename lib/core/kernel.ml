(* The kernel facade: composes the subsystem modules — Catalog,
   Obj_store, Proc_registry, Deriver, Provenance — over one shared
   event bus, preserving the historical flat API. *)

module Registry = Gaea_adt.Registry
module Store = Gaea_storage.Store
module Marking = Gaea_petri.Marking
module Events = Events

type counters = Metrics.t = {
  mutable executions : int;
  mutable retrievals : int;
  mutable interpolations : int;
  mutable pixels_processed : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_admissions : int;
  mutable cache_evictions : int;
  mutable refreshes : int;
}

type cache_stats = Deriver.cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  invalidations : int;
  admissions : int;
  evictions : int;
  resident_bytes : int;
  budget_bytes : int;
}

type refresh_report = Refresh.report = {
  refreshed : int;
  skipped : int;
  remaining : int;
  tasks : Task.t list;
  skip_reasons : (Gaea_storage.Oid.t * string) list;
}

type net_view = Provenance.net_view = {
  net : Gaea_petri.Net.t;
  place_of_class : string -> Gaea_petri.Net.place option;
  class_of_place : Gaea_petri.Net.place -> string option;
  process_of_transition : Gaea_petri.Net.transition -> (string * int) option;
}

type t = {
  registry : Registry.t;
  store : Store.t;
  bus : Events.bus;
  metrics : Metrics.t;
  catalog : Catalog.t;
  objects : Obj_store.t;
  procs : Proc_registry.t;
  concepts : Concept.t;
  prov : Provenance.t;
  deriver : Deriver.t;
  refresh : Refresh.t;
}

let create () =
  let registry = Registry.with_builtins () in
  let store = Store.create () in
  let bus = Events.create () in
  (* subscription order fixes notification order: metrics first, then
     the net cache (inside Provenance.create), then the result cache
     (inside Deriver.create), then the staleness tracker (inside
     Refresh.create) *)
  let metrics = Metrics.create () in
  Metrics.attach bus metrics;
  let catalog = Catalog.create ~store ~bus in
  let objects = Obj_store.create ~store ~catalog ~bus in
  let procs = Proc_registry.create ~catalog ~bus in
  let prov = Provenance.create ~bus in
  let deriver =
    Deriver.create ~registry ~catalog ~objects ~procs ~prov ~metrics ~bus
  in
  let refresh =
    Refresh.create ~objects ~procs ~prov ~deriver ~metrics ~bus
  in
  { registry; store; bus; metrics; catalog; objects; procs;
    concepts = Concept.create (); prov; deriver; refresh }

(* system level *)
let registry t = t.registry
let store t = t.store
let concepts t = t.concepts

(* events *)
let bus t = t.bus
let event_log t = Events.log t.bus

(* bookkeeping *)
let counters t = t.metrics
let reset_counters t = Metrics.reset t.metrics
let clock t = Provenance.clock t.prov

(* classes *)
let define_class t cls = Catalog.define t.catalog cls
let find_class t name = Catalog.find t.catalog name
let classes t = Catalog.classes t.catalog
let class_table t name = Catalog.table t.catalog name

(* objects *)
let insert_object t ~cls pairs = Obj_store.insert t.objects ~cls pairs

let insert_object_with_oid t ~cls oid pairs =
  Obj_store.insert_with_oid t.objects ~cls oid pairs

let object_tuple t ~cls oid = Obj_store.tuple t.objects ~cls oid
let object_attr t ~cls oid attr = Obj_store.attr t.objects ~cls oid attr
let objects_of_class t cls = Obj_store.oids_of_class t.objects cls
let class_of_object t oid = Obj_store.class_of t.objects oid
let count_objects t cls = Obj_store.count t.objects cls
let delete_object t ~cls oid = Obj_store.delete t.objects ~cls oid
let update_object t ~cls oid pairs = Obj_store.update t.objects ~cls oid pairs

(* processes *)
let define_process t p = Proc_registry.define t.procs p
let find_process t ?version name = Proc_registry.find t.procs ?version name
let process_versions t name = Proc_registry.versions t.procs name
let latest_process_version t name = Proc_registry.latest_version t.procs name
let processes t = Proc_registry.latest t.procs
let all_process_versions t = Proc_registry.all_versions t.procs

(* execution *)
let execute_process t p ~inputs = Deriver.execute_process t.deriver p ~inputs
let recompute_task t task = Deriver.recompute_task t.deriver task

let find_binding t ?exclude p ~available =
  Deriver.find_binding t.deriver ?exclude p ~available

let record_task_raw t ~process ~version ~inputs ~params ~outputs ~output_class =
  Provenance.record_task t.prov ~process ~version ~inputs ~params ~outputs
    ~output_class

let restore_task t task = Provenance.restore_task t.prov task

(* task log *)
let tasks t = Provenance.tasks t.prov
let find_task t id = Provenance.find_task t.prov id
let task_producing t oid = Provenance.task_producing t.prov oid
let tasks_using t oid = Provenance.tasks_using t.prov oid

(* result cache *)
let cache_stats t = Deriver.cache_stats t.deriver
let clear_cache t = Deriver.clear_cache t.deriver
let cache_budget t = Deriver.cache_budget t.deriver
let set_cache_budget t n = Deriver.set_cache_budget t.deriver n

let restore_cache_stats t ~hits ~misses ~invalidations ~admissions ~evictions =
  Deriver.restore_cache_stats t.deriver ~hits ~misses ~invalidations
    ~admissions ~evictions

let invalidate_cache_process t name = Deriver.invalidate_process t.deriver name

(* staleness / refresh *)
let stale_objects t = Refresh.stale t.refresh
let object_stale t oid = Refresh.is_stale t.refresh oid
let refresh_stale ?only t = Refresh.refresh ?only t.refresh

let invalidate_cache_class t cls =
  (* announced as a mutation; the deriver's subscriber does the work *)
  Events.emit t.bus (Events.Class_mutated cls)

(* derivation net *)
let derivation_net t =
  Provenance.derivation_net t.prov
    ~classes:(fun () -> classes t)
    ~processes:(fun () -> processes t)
    ~guard:(fun p ~available ->
      Result.is_ok (Deriver.find_binding t.deriver p ~available))

let current_marking t =
  let view = derivation_net t in
  List.fold_left
    (fun m cls ->
      match view.place_of_class cls.Schema.c_name with
      | None -> m
      | Some place ->
        Marking.add_all m place (objects_of_class t cls.Schema.c_name))
    Marking.empty (classes t)
