module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Registry = Gaea_adt.Registry
module Operator = Gaea_adt.Operator
module Store = Gaea_storage.Store
module Table = Gaea_storage.Table
module Tuple = Gaea_storage.Tuple
module Oid = Gaea_storage.Oid
module Net = Gaea_petri.Net
module Marking = Gaea_petri.Marking

type counters = {
  mutable executions : int;
  mutable retrievals : int;
  mutable interpolations : int;
  mutable pixels_processed : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

(* Provenance key of a derived result: the process identity, the exact
   input binding (argument order preserved — templates index into it),
   and the parameter bindings by content hash. *)
type cache_key =
  string * int * (string * Oid.t list) list * (string * int) list

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  invalidations : int;
}

type net_view = {
  net : Net.t;
  place_of_class : string -> Net.place option;
  class_of_place : Net.place -> string option;
  process_of_transition : Net.transition -> (string * int) option;
}

type t = {
  registry : Registry.t;
  store : Store.t;
  class_defs : (string, Schema.t) Hashtbl.t;
  concepts : Concept.t;
  (* name -> versions ascending *)
  procs : (string, Process.t list) Hashtbl.t;
  mutable task_log : Task.t list; (* reverse chronological *)
  task_by_id : (int, Task.t) Hashtbl.t;
  producer : (Oid.t, Task.t) Hashtbl.t;
  users : (Oid.t, Task.t list) Hashtbl.t;
  oid_class : (Oid.t, string) Hashtbl.t;
  mutable next_task : int;
  mutable clock : int;
  mutable net_cache : net_view option;
  result_cache : (cache_key, Task.t) Hashtbl.t;
  mutable cache_invalidations : int;
  counters : counters;
}

let create () =
  { registry = Registry.with_builtins ();
    store = Store.create ();
    class_defs = Hashtbl.create 32;
    concepts = Concept.create ();
    procs = Hashtbl.create 32;
    task_log = [];
    task_by_id = Hashtbl.create 64;
    producer = Hashtbl.create 64;
    users = Hashtbl.create 64;
    oid_class = Hashtbl.create 256;
    next_task = 1;
    clock = 0;
    net_cache = None;
    result_cache = Hashtbl.create 64;
    cache_invalidations = 0;
    counters =
      { executions = 0; retrievals = 0; interpolations = 0;
        pixels_processed = 0; cache_hits = 0; cache_misses = 0 } }

let registry t = t.registry
let store t = t.store
let concepts t = t.concepts
let counters t = t.counters

let reset_counters t =
  t.counters.executions <- 0;
  t.counters.retrievals <- 0;
  t.counters.interpolations <- 0;
  t.counters.pixels_processed <- 0;
  t.counters.cache_hits <- 0;
  t.counters.cache_misses <- 0

let clock t = t.clock

let invalidate_net t = t.net_cache <- None

(* ------------------------------------------------------------------ *)
(* Derived-object result cache                                         *)
(* ------------------------------------------------------------------ *)

let cache_key_of (p : Process.t) inputs : cache_key =
  ( p.Process.proc_name,
    p.Process.version,
    List.sort (fun (a, _) (b, _) -> String.compare a b) inputs,
    List.map (fun (n, v) -> (n, Value.content_hash v)) p.Process.params
    |> List.sort (fun (a, _) (b, _) -> String.compare a b) )

let cache_stats t =
  { hits = t.counters.cache_hits;
    misses = t.counters.cache_misses;
    entries = Hashtbl.length t.result_cache;
    invalidations = t.cache_invalidations }

let clear_cache t =
  t.cache_invalidations <- t.cache_invalidations + Hashtbl.length t.result_cache;
  Hashtbl.reset t.result_cache

let invalidate_cache_entries t pred =
  let doomed =
    Hashtbl.fold
      (fun key task acc -> if pred key task then key :: acc else acc)
      t.result_cache []
  in
  List.iter (Hashtbl.remove t.result_cache) doomed;
  t.cache_invalidations <- t.cache_invalidations + List.length doomed

(* Names whose (latest) definitions reach [name] through compound
   steps: editing a sub-process stales every cached compound above it. *)
let dependent_processes t name =
  let reaches acc p =
    List.exists (fun s -> List.mem s.Process.step_process acc) (Process.steps p)
  in
  let rec grow acc =
    let next =
      Hashtbl.fold
        (fun pname versions acc' ->
          if List.mem pname acc' then acc'
          else if List.exists (reaches acc') versions then pname :: acc'
          else acc')
        t.procs acc
    in
    if List.length next = List.length acc then acc else grow next
  in
  grow [ name ]

let invalidate_cache_process t name =
  let stale = dependent_processes t name in
  invalidate_cache_entries t (fun (pname, _, _, _) _ -> List.mem pname stale)

let invalidate_cache_oid t oid =
  invalidate_cache_entries t (fun (_, _, inputs, _) task ->
      List.mem oid task.Task.outputs
      || List.exists (fun (_, oids) -> List.mem oid oids) inputs)

let invalidate_cache_class t cls =
  invalidate_cache_entries t (fun (_, _, inputs, _) task ->
      task.Task.output_class = cls
      || List.exists
           (fun (_, oids) ->
             List.exists
               (fun o -> Hashtbl.find_opt t.oid_class o = Some cls)
               oids)
           inputs)

(* ------------------------------------------------------------------ *)
(* Classes                                                             *)
(* ------------------------------------------------------------------ *)

let define_class t (cls : Schema.t) =
  let name = cls.Schema.c_name in
  if Hashtbl.mem t.class_defs name then
    Error (Printf.sprintf "class %s already defined" name)
  else
    match Store.create_table t.store ~name (Schema.storage_attrs cls) with
    | Error _ as e -> e |> Result.map (fun _ -> ())
    | Ok _table ->
      Hashtbl.add t.class_defs name cls;
      invalidate_net t;
      Ok ()

let find_class t name = Hashtbl.find_opt t.class_defs name

let classes t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.class_defs []
  |> List.sort (fun a b -> compare a.Schema.c_name b.Schema.c_name)

let class_table t name =
  if Hashtbl.mem t.class_defs name then Store.table t.store name else None

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)
(* ------------------------------------------------------------------ *)

let count_pixels v =
  match v with
  | Value.VImage img -> Gaea_raster.Image.size img
  | Value.VComposite c ->
    Gaea_raster.Composite.n_pixels c * Gaea_raster.Composite.n_bands c
  | _ -> 0

let insert_object t ~cls pairs =
  match find_class t cls with
  | None -> Error (Printf.sprintf "unknown class %s" cls)
  | Some def ->
    let attrs = Schema.attr_names def in
    let missing = List.filter (fun a -> not (List.mem_assoc a pairs)) attrs in
    let extra =
      List.filter (fun (a, _) -> not (List.mem a attrs)) pairs
    in
    if missing <> [] then
      Error
        (Printf.sprintf "%s: missing attribute(s) %s" cls
           (String.concat ", " missing))
    else if extra <> [] then
      Error
        (Printf.sprintf "%s: unknown attribute(s) %s" cls
           (String.concat ", " (List.map fst extra)))
    else begin
      let values = List.map (fun a -> List.assoc a pairs) attrs in
      match Store.insert_values t.store ~table:cls values with
      | Error _ as e -> e |> Result.map (fun _ -> Oid.invalid)
      | Ok oid ->
        Hashtbl.replace t.oid_class oid cls;
        Ok oid
    end

let object_tuple t ~cls oid = Store.get t.store ~table:cls oid

let object_attr t ~cls oid attr =
  match class_table t cls with
  | None -> None
  | Some tab -> Table.get_attr tab oid attr

let objects_of_class t cls =
  match class_table t cls with
  | None -> []
  | Some tab ->
    List.rev (Table.fold tab ~init:[] ~f:(fun acc oid _ -> oid :: acc))

let class_of_object t oid = Hashtbl.find_opt t.oid_class oid

let count_objects t cls =
  match class_table t cls with
  | None -> 0
  | Some tab -> Table.row_count tab

let delete_object t ~cls oid =
  let deleted = Store.delete t.store ~table:cls oid in
  if deleted then begin
    Hashtbl.remove t.oid_class oid;
    (* cached results that consumed or produced the object are stale *)
    invalidate_cache_oid t oid
  end;
  deleted

(* ------------------------------------------------------------------ *)
(* Processes                                                           *)
(* ------------------------------------------------------------------ *)

let process_versions t name =
  Option.value ~default:[] (Hashtbl.find_opt t.procs name)

let find_process t ?version name =
  let versions = process_versions t name in
  match version with
  | Some v -> List.find_opt (fun p -> p.Process.version = v) versions
  | None ->
    (match List.rev versions with
     | latest :: _ -> Some latest
     | [] -> None)

let define_process t (p : Process.t) =
  let name = p.Process.proc_name in
  let versions = process_versions t name in
  if List.exists (fun q -> q.Process.version = p.Process.version) versions then
    Error
      (Printf.sprintf "process %s v%d already defined" name p.Process.version)
  else begin
    let unknown_classes =
      List.filter
        (fun c -> not (Hashtbl.mem t.class_defs c))
        (p.Process.output_class
         :: List.map (fun a -> a.Process.arg_class) p.Process.args)
      |> List.sort_uniq compare
    in
    if unknown_classes <> [] then
      Error
        (Printf.sprintf "process %s: unknown class(es) %s" name
           (String.concat ", " unknown_classes))
    else begin
      let unknown_subs =
        List.filter
          (fun s -> process_versions t s.Process.step_process = [])
          (Process.steps p)
      in
      if unknown_subs <> [] then
        Error
          (Printf.sprintf "process %s: unknown sub-process(es) %s" name
             (String.concat ", "
                (List.map (fun s -> s.Process.step_process) unknown_subs)))
      else begin
        Hashtbl.replace t.procs name
          (List.sort
             (fun a b -> Int.compare a.Process.version b.Process.version)
             (p :: versions));
        invalidate_net t;
        (* re-versioning: cached results of this process (and of any
           compound that expands to it) no longer reflect the latest
           definition *)
        if versions <> [] then invalidate_cache_process t name;
        Ok ()
      end
    end
  end

let processes t =
  Hashtbl.fold
    (fun name _ acc ->
      match find_process t name with
      | Some p -> p :: acc
      | None -> acc)
    t.procs []
  |> List.sort (fun a b -> compare a.Process.proc_name b.Process.proc_name)

let all_process_versions t =
  Hashtbl.fold (fun _ vs acc -> vs @ acc) t.procs []
  |> List.sort (fun a b -> compare (Process.key a) (Process.key b))

(* ------------------------------------------------------------------ *)
(* Template environment                                                *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let make_env t (p : Process.t) (inputs : (string * Oid.t list) list) =
  let arg_class name =
    Option.map (fun a -> a.Process.arg_class) (Process.arg p name)
  in
  { Template.arg_objects =
      (fun name ->
        Option.map
          (fun oids -> List.map (fun o -> Value.int o) oids)
          (List.assoc_opt name inputs));
    attr_value =
      (fun name i attr ->
        match List.assoc_opt name inputs, arg_class name with
        | Some oids, Some cls when i >= 0 && i < List.length oids ->
          let oid = List.nth oids i in
          (match object_attr t ~cls oid attr with
           | Some v -> Ok v
           | None ->
             Error
               (Printf.sprintf "object %d of class %s has no attribute %s" oid
                  cls attr))
        | _ -> Error (Printf.sprintf "bad argument reference %s[%d]" name i));
    spatial_attr =
      (fun name ->
        Option.bind (arg_class name) (fun cls ->
            Option.bind (find_class t cls) (fun def ->
                def.Schema.spatial_attr)));
    temporal_attr =
      (fun name ->
        Option.bind (arg_class name) (fun cls ->
            Option.bind (find_class t cls) (fun def ->
                def.Schema.temporal_attr)));
    param = (fun name -> Process.param p name);
    apply = (fun op args -> Registry.apply t.registry op args);
    arity =
      (fun op ->
        Option.map
          (fun o ->
            match (Operator.signature o).Operator.variadic with
            | Some _ -> `Variadic
            | None -> `Fixed (List.length (Operator.signature o).Operator.params))
          (Registry.find_operator t.registry op)) }

let check_cards (p : Process.t) inputs =
  List.fold_left
    (fun acc spec ->
      let* () = acc in
      match List.assoc_opt spec.Process.arg_name inputs with
      | None ->
        Error
          (Printf.sprintf "%s: argument %s not bound" p.Process.proc_name
             spec.Process.arg_name)
      | Some oids ->
        let n = List.length oids in
        if n < spec.Process.card_min then
          Error
            (Printf.sprintf "%s: %s needs at least %d object(s), got %d"
               p.Process.proc_name spec.Process.arg_name spec.Process.card_min
               n)
        else (
          match spec.Process.card_max with
          | Some m when n > m ->
            Error
              (Printf.sprintf "%s: %s takes at most %d object(s), got %d"
                 p.Process.proc_name spec.Process.arg_name m n)
          | _ -> Ok ()))
    (Ok ()) p.Process.args

let check_inputs t (p : Process.t) inputs =
  let* () = check_cards p inputs in
  match Process.template p with
  | None -> Ok ()
  | Some tmpl ->
    let env = make_env t p inputs in
    Template.check_assertions env tmpl

(* ------------------------------------------------------------------ *)
(* Binding search                                                      *)
(* ------------------------------------------------------------------ *)

(* subsets of size k, capped *)
let rec subsets_k cap k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
    let with_x =
      List.map (fun s -> x :: s) (subsets_k cap (k - 1) rest)
    in
    let without = if List.length with_x >= cap then [] else subsets_k cap k rest in
    let all = with_x @ without in
    if List.length all > cap then List.filteri (fun i _ -> i < cap) all
    else all

let binding_equal b1 b2 =
  List.length b1 = List.length b2
  && List.for_all
       (fun (arg, oids) ->
         match List.assoc_opt arg b2 with
         | Some oids2 ->
           List.sort Int.compare oids = List.sort Int.compare oids2
         | None -> false)
       b1

let find_binding t ?(exclude = []) (p : Process.t) ~available =
  (* group argument specs by class, preserving declaration order *)
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_class spec.Process.arg_class)
      in
      Hashtbl.replace by_class spec.Process.arg_class (cur @ [ spec ]))
    p.Process.args;
  (* candidate assignments per class *)
  let cap = 32 in
  let class_assignments cls specs =
    let oids = Option.value ~default:[] (List.assoc_opt cls available) in
    (* assign specs in order; unbounded SETOF specs swallow the rest *)
    let rec go specs remaining =
      match specs with
      | [] -> [ [] ]
      | spec :: rest ->
        let takes =
          match spec.Process.card_max with
          | Some m ->
            let sizes =
              List.init (m - spec.Process.card_min + 1) (fun i ->
                  spec.Process.card_min + i)
            in
            List.concat_map (fun k -> subsets_k cap k remaining) sizes
          | None ->
            (* greedy: take everything still available *)
            if List.length remaining >= spec.Process.card_min then
              [ remaining ]
            else []
        in
        List.concat_map
          (fun chosen ->
            let left = List.filter (fun o -> not (List.mem o chosen)) remaining in
            List.map
              (fun tail -> (spec.Process.arg_name, chosen) :: tail)
              (go rest left))
          takes
        |> fun l ->
        if List.length l > cap then List.filteri (fun i _ -> i < cap) l else l
    in
    go specs oids
  in
  let classes_in_order =
    List.sort_uniq compare (List.map (fun a -> a.Process.arg_class) p.Process.args)
  in
  let rec product = function
    | [] -> [ [] ]
    | cls :: rest ->
      let specs = Hashtbl.find by_class cls in
      let here = class_assignments cls specs in
      let tails = product rest in
      List.concat_map
        (fun assignment -> List.map (fun tail -> assignment @ tail) tails)
        here
      |> fun l ->
      if List.length l > cap * 4 then List.filteri (fun i _ -> i < cap * 4) l
      else l
  in
  let candidates = product classes_in_order in
  let rec try_all last_err = function
    | [] ->
      Error
        (Printf.sprintf "%s: no valid binding found (%s)" p.Process.proc_name
           last_err)
    | binding :: rest ->
      if List.exists (binding_equal binding) exclude then
        try_all "remaining candidates already used" rest
      else (
        match check_inputs t p binding with
        | Ok () -> Ok binding
        | Error e -> try_all e rest)
  in
  try_all "no candidates" candidates

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let record_task t ~process ~version ~inputs ~params ~outputs ~output_class =
  t.clock <- t.clock + 1;
  let task =
    { Task.task_id = t.next_task;
      process;
      process_version = version;
      inputs;
      params;
      outputs;
      output_class;
      clock = t.clock }
  in
  t.next_task <- t.next_task + 1;
  t.task_log <- task :: t.task_log;
  Hashtbl.replace t.task_by_id task.Task.task_id task;
  List.iter (fun oid -> Hashtbl.replace t.producer oid task) outputs;
  List.iter
    (fun oid ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.users oid) in
      Hashtbl.replace t.users oid (task :: cur))
    (Task.input_oids task);
  t.counters.executions <- t.counters.executions + 1;
  task

let eval_primitive t (p : Process.t) inputs =
  match Process.template p with
  | None -> Error (p.Process.proc_name ^ ": not a primitive process")
  | Some tmpl ->
    let* () = check_cards p inputs in
    let env = make_env t p inputs in
    let* () = Template.check_assertions env tmpl in
    let* pairs = Template.eval_mappings env tmpl in
    (* the output class must be fully mapped *)
    (match find_class t p.Process.output_class with
     | None ->
       Error
         (Printf.sprintf "%s: unknown output class %s" p.Process.proc_name
            p.Process.output_class)
     | Some def ->
       let missing =
         List.filter
           (fun a -> not (List.mem_assoc a pairs))
           (Schema.attr_names def)
       in
       if missing <> [] then
         Error
           (Printf.sprintf "%s: mappings missing for attribute(s) %s"
              p.Process.proc_name
              (String.concat ", " missing))
       else Ok pairs)

let execute_primitive t (p : Process.t) inputs =
  let* pairs = eval_primitive t p inputs in
  let* oid = insert_object t ~cls:p.Process.output_class pairs in
  List.iter
    (fun (_, v) ->
      t.counters.pixels_processed <- t.counters.pixels_processed + count_pixels v)
    pairs;
  Ok
    (record_task t ~process:p.Process.proc_name ~version:p.Process.version
       ~inputs ~params:p.Process.params ~outputs:[ oid ]
       ~output_class:p.Process.output_class)

(* all recorded outputs must still be stored for a cached task to be
   served (guards callers that bypass delete_object) *)
let outputs_live t (task : Task.t) =
  task.Task.outputs <> []
  && List.for_all (fun oid -> Hashtbl.mem t.oid_class oid) task.Task.outputs

let rec execute_process t (p : Process.t) ~inputs =
  let key = cache_key_of p inputs in
  match Hashtbl.find_opt t.result_cache key with
  | Some task when outputs_live t task ->
    t.counters.cache_hits <- t.counters.cache_hits + 1;
    Ok task
  | stale ->
    if stale <> None then Hashtbl.remove t.result_cache key;
    t.counters.cache_misses <- t.counters.cache_misses + 1;
    let result = execute_uncached t p ~inputs in
    (match result with
     | Ok task -> Hashtbl.replace t.result_cache key task
     | Error _ -> ());
    result

and execute_uncached t (p : Process.t) ~inputs =
  match p.Process.kind with
  | Process.Primitive _ -> execute_primitive t p inputs
  | Process.Compound steps ->
    (* expand: run each step's (latest) sub-process, threading outputs *)
    let rec run acc_outputs last_task = function
      | [] ->
        (match last_task with
         | Some task -> Ok task
         | None -> Error (p.Process.proc_name ^ ": compound with no steps"))
      | step :: rest ->
        (match find_process t step.Process.step_process with
         | None ->
           Error
             (Printf.sprintf "%s: unknown sub-process %s" p.Process.proc_name
                step.Process.step_process)
         | Some sub ->
           let* sub_inputs =
             List.fold_left
               (fun acc (arg, input) ->
                 let* acc = acc in
                 match input with
                 | Process.From_arg a ->
                   (match List.assoc_opt a inputs with
                    | Some oids -> Ok ((arg, oids) :: acc)
                    | None ->
                      Error
                        (Printf.sprintf "%s: argument %s not bound"
                           p.Process.proc_name a))
                 | Process.From_step j ->
                   (match List.nth_opt acc_outputs j with
                    | Some oids -> Ok ((arg, oids) :: acc)
                    | None ->
                      Error
                        (Printf.sprintf "%s: step %d output unavailable"
                           p.Process.proc_name j)))
               (Ok []) step.Process.step_inputs
           in
           let* task = execute_process t sub ~inputs:(List.rev sub_inputs) in
           run
             (acc_outputs @ [ task.Task.outputs ])
             (Some task) rest)
    in
    run [] None steps

let recompute_task t (task : Task.t) =
  match
    find_process t ~version:task.Task.process_version task.Task.process
  with
  | None ->
    Error
      (Printf.sprintf "process %s v%d no longer known" task.Task.process
         task.Task.process_version)
  | Some p -> eval_primitive t p task.Task.inputs

(* ------------------------------------------------------------------ *)
(* Task log                                                            *)
(* ------------------------------------------------------------------ *)

let insert_object_with_oid t ~cls oid pairs =
  match find_class t cls with
  | None -> Error (Printf.sprintf "unknown class %s" cls)
  | Some def ->
    let attrs = Schema.attr_names def in
    let missing = List.filter (fun a -> not (List.mem_assoc a pairs)) attrs in
    if missing <> [] then
      Error
        (Printf.sprintf "%s: missing attribute(s) %s" cls
           (String.concat ", " missing))
    else begin
      let values = List.map (fun a -> List.assoc a pairs) attrs in
      match Store.insert_with_oid t.store ~table:cls oid values with
      | Error _ as e -> e
      | Ok () ->
        Hashtbl.replace t.oid_class oid cls;
        Ok ()
    end

let restore_task t (task : Task.t) =
  if Hashtbl.mem t.task_by_id task.Task.task_id then
    Error (Printf.sprintf "task #%d already present" task.Task.task_id)
  else begin
    t.task_log <- task :: t.task_log;
    Hashtbl.replace t.task_by_id task.Task.task_id task;
    List.iter (fun oid -> Hashtbl.replace t.producer oid task) task.Task.outputs;
    List.iter
      (fun oid ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt t.users oid) in
        Hashtbl.replace t.users oid (task :: cur))
      (Task.input_oids task);
    if task.Task.task_id >= t.next_task then t.next_task <- task.Task.task_id + 1;
    if task.Task.clock > t.clock then t.clock <- task.Task.clock;
    Ok ()
  end

let record_task_raw t ~process ~version ~inputs ~params ~outputs ~output_class =
  record_task t ~process ~version ~inputs ~params ~outputs ~output_class

let tasks t = List.rev t.task_log
let find_task t id = Hashtbl.find_opt t.task_by_id id
let task_producing t oid = Hashtbl.find_opt t.producer oid

let tasks_using t oid =
  Option.value ~default:[] (Hashtbl.find_opt t.users oid) |> List.rev

(* ------------------------------------------------------------------ *)
(* Derivation net                                                      *)
(* ------------------------------------------------------------------ *)

let build_net t =
  let net = Net.create () in
  let place_tbl = Hashtbl.create 32 in
  let class_tbl = Hashtbl.create 32 in
  List.iter
    (fun cls ->
      let p = Net.add_place net ~name:cls.Schema.c_name in
      Hashtbl.add place_tbl cls.Schema.c_name p;
      Hashtbl.add class_tbl p cls.Schema.c_name)
    (classes t);
  let trans_tbl = Hashtbl.create 32 in
  (* Transitions get ids in insertion order and Backchain breaks cost
     ties by the lowest id, so install the processes that classes
     declare as their DERIVED BY before the rest. *)
  let declared =
    List.filter_map Schema.derived_by (classes t)
  in
  let procs = processes t in
  let preferred, others =
    List.partition
      (fun p -> List.mem p.Process.proc_name declared)
      procs
  in
  List.iter
    (fun proc ->
      if Process.is_primitive proc then begin
        (* group args by class: threshold = sum of card_min *)
        let thresholds = Hashtbl.create 4 in
        List.iter
          (fun a ->
            let cur =
              Option.value ~default:0
                (Hashtbl.find_opt thresholds a.Process.arg_class)
            in
            Hashtbl.replace thresholds a.Process.arg_class
              (cur + a.Process.card_min))
          proc.Process.args;
        let inputs =
          Hashtbl.fold
            (fun cls k acc ->
              match Hashtbl.find_opt place_tbl cls with
              | Some p -> (p, k) :: acc
              | None -> acc)
            thresholds []
          |> List.sort compare
        in
        match Hashtbl.find_opt place_tbl proc.Process.output_class with
        | None -> ()
        | Some out_place ->
          let guard binding =
            let available =
              List.filter_map
                (fun (place, toks) ->
                  Option.map
                    (fun cls -> (cls, toks))
                    (Hashtbl.find_opt class_tbl place))
                binding
            in
            Result.is_ok (find_binding t proc ~available)
          in
          (match
             Net.add_transition net ~name:proc.Process.proc_name ~inputs
               ~outputs:[ out_place ] ~guard ()
           with
           | Ok tid -> Hashtbl.add trans_tbl tid (Process.key proc)
           | Error _ -> ())
      end)
    (preferred @ others);
  { net;
    place_of_class = Hashtbl.find_opt place_tbl;
    class_of_place = Hashtbl.find_opt class_tbl;
    process_of_transition = Hashtbl.find_opt trans_tbl }

let derivation_net t =
  match t.net_cache with
  | Some v -> v
  | None ->
    let v = build_net t in
    t.net_cache <- Some v;
    v

let current_marking t =
  let view = derivation_net t in
  List.fold_left
    (fun m cls ->
      match view.place_of_class cls.Schema.c_name with
      | None -> m
      | Some place ->
        Marking.add_all m place (objects_of_class t cls.Schema.c_name))
    Marking.empty (classes t)
