(** Object CRUD over the catalog's tables, plus the oid → class map.

    Emits [Object_inserted] / [Object_deleted] on the bus; the result
    cache invalidates itself on deletions by subscription. *)

module Oid = Gaea_storage.Oid

type t

val create :
  store:Gaea_storage.Store.t -> catalog:Catalog.t -> bus:Events.bus -> t

val insert :
  t -> cls:string -> (string * Gaea_adt.Value.t) list
  -> (Oid.t, Gaea_error.t) result
(** Attribute-name/value pairs; every class attribute must be given
    exactly once.  Emits [Object_inserted]. *)

val insert_with_oid :
  t -> cls:string -> Oid.t -> (string * Gaea_adt.Value.t) list
  -> (unit, Gaea_error.t) result
(** Insert under a caller-chosen OID (kernel restore); advances the
    store's allocator past it.  Event-silent: restores must not look
    like fresh mutations to subscribers. *)

val update :
  t -> cls:string -> Oid.t -> (string * Gaea_adt.Value.t) list
  -> (unit, Gaea_error.t) result
(** Replace the named attributes in place, keeping the OID and any
    unnamed attributes.  Emits [Object_updated] on success — the
    staling trigger the refresh subsystem listens for. *)

val delete : t -> cls:string -> Oid.t -> (unit, Gaea_error.t) result
(** [Error (Unknown_object oid)] when no class owns the oid,
    [Error (Wrong_class _)] when it exists under a different class.
    Emits [Object_deleted] on success. *)

val tuple : t -> cls:string -> Oid.t -> Gaea_storage.Tuple.t option
val attr : t -> cls:string -> Oid.t -> string -> Gaea_adt.Value.t option
val oids_of_class : t -> string -> Oid.t list
val class_of : t -> Oid.t -> string option
val count : t -> string -> int

val mem : t -> Oid.t -> bool
(** Whether the oid is live (present in the oid → class map). *)
