(** Processes (paper Section 2.1.2): the derivation procedure of a
    non-primitive class.

    "Formally, a process defines a mapping between a set of input object
    classes and an output object class. [...] Object classes which do
    not represent base data are solely defined by their derivation
    process."

    A {e primitive} process carries a TEMPLATE of operator applications.
    A {e compound} process is "a network of intercommunicating
    processes" — "merely an abstraction which [...] cannot be directly
    applied, but must be expanded into its primitive processes before
    actual derivation takes place" (Section 2.1.4, Fig 5).

    Parameters: "the same derivation method with different parameters
    represents different processes" — parameters are therefore bound at
    process-definition time ({!bind_params}), not per task. *)

type arg_spec = {
  arg_name : string;
  arg_class : string;       (** input class name *)
  setof : bool;             (** SETOF argument *)
  card_min : int;           (** minimum objects (1 for scalar args) *)
  card_max : int option;    (** exact upper bound if constrained *)
}

type step_input =
  | From_arg of string       (** a compound argument, passed through *)
  | From_step of int         (** output objects of an earlier step *)

type step = {
  step_process : string;     (** sub-process name *)
  step_inputs : (string * step_input) list;
  (** binding of the sub-process's argument names *)
}

type kind =
  | Primitive of Template.t
  | Compound of step list    (** executed in order; the last step's
                                 output is the compound's output *)

type t = private {
  proc_name : string;
  version : int;
  output_class : string;
  args : arg_spec list;
  params : (string * Gaea_adt.Value.t) list;
  (** bound parameter values (e.g. rainfall cutoff 250 vs 200 mm) *)
  kind : kind;
  doc : string;
  derived_from : (string * int) option;
  (** (name, version) this process was edited from — never overwritten *)
}

val scalar_arg : string -> string -> arg_spec
(** [scalar_arg name cls]: exactly one object of class [cls]. *)

val setof_arg : ?card_min:int -> ?card_max:int -> string -> string -> arg_spec
(** SETOF argument; default minimum 1. *)

val define_primitive :
  name:string -> ?doc:string -> output_class:string -> args:arg_spec list
  -> ?params:(string * Gaea_adt.Value.t) list -> template:Template.t -> unit
  -> (t, Gaea_error.t) result
(** Validates: unique/valid argument names, card bounds consistent,
    every template parameter bound, every referenced argument declared. *)

val define_compound :
  name:string -> ?doc:string -> output_class:string -> args:arg_spec list
  -> steps:step list -> unit -> (t, Gaea_error.t) result
(** Validates step-input references ([From_step i] must point to an
    earlier step) and that at least one step exists. *)

val edit :
  t -> name:string
  -> ?doc:string
  -> ?params:(string * Gaea_adt.Value.t) list
  -> ?template:Template.t
  -> ?output_class:string
  -> unit -> (t, Gaea_error.t) result
(** "A new process may be defined by editing an old process [...] In no
    case is the old process overwritten": returns a {e new} process
    (version 1 under the new name, or old-version+1 under the same
    name), recording [derived_from].  Template edits only apply to
    primitive processes. *)

val with_version : ?derived_from:(string * int) -> t -> int -> t
(** The same definition under a different version number.  Used when
    re-defining an existing process name: the registry stores versions
    immutably, so the new definition is installed as the next version.
    [derived_from], when given, records the (name, version) this
    definition supersedes. *)

val is_primitive : t -> bool
val is_compound : t -> bool
val template : t -> Template.t option
val steps : t -> step list
val param : t -> string -> Gaea_adt.Value.t option
val arg : t -> string -> arg_spec option
val key : t -> string * int
(** (name, version) — the process identity. *)

val pp : Format.formatter -> t -> unit
(** DEFINE PROCESS rendering, as in Fig 3. *)
