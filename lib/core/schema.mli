(** Non-primitive class definitions (paper Section 2.1.2).

    A non-primitive class has named, typed ATTRIBUTES over primitive
    classes, a SPATIAL EXTENT attribute, a TEMPORAL EXTENT attribute and
    optionally a DERIVED BY process, exactly like the [landcover]
    example:

    {v
    CLASS landcover (
      ATTRIBUTES: area = char16; ref_system = char16; ... data = image;
      SPATIAL EXTENT:  spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: unsupervised-classification )
    v} *)

type attribute = {
  a_name : string;
  a_type : Gaea_adt.Vtype.t;
  a_doc : string;
}

type kind =
  | Base                    (** well-known external data *)
  | Derived of string       (** DERIVED BY: process name *)

type t = private {
  c_name : string;
  attributes : attribute list;   (** includes extent attributes *)
  spatial_attr : string option;  (** name of the box-typed extent attribute *)
  temporal_attr : string option; (** name of the abstime-typed extent attribute *)
  kind : kind;
  c_doc : string;
}

val define :
  name:string
  -> ?doc:string
  -> attributes:(string * Gaea_adt.Vtype.t) list
  -> ?spatial:string
  -> ?temporal:string
  -> ?derived_by:string
  -> unit
  -> (t, Gaea_error.t) result
(** Validates: non-empty name and attribute list, unique attribute
    names, the [spatial] attribute (if given) exists with type [Box],
    the [temporal] attribute exists with type [Abstime].  When
    [spatial]/[temporal] are omitted but an attribute named
    ["spatialextent"] / ["timestamp"] with the right type exists, it is
    picked up automatically (the paper's convention). *)

val is_base : t -> bool
val is_derived : t -> bool
val derived_by : t -> string option
val attribute : t -> string -> attribute option
val attr_type : t -> string -> Gaea_adt.Vtype.t option
val attr_names : t -> string list

val storage_attrs : t -> (string * Gaea_adt.Vtype.t) list
(** The physical schema for the backing table (attribute order
    preserved). *)

val pp : Format.formatter -> t -> unit
(** Renders in the paper's CLASS syntax. *)
