module Value = Gaea_adt.Value

type expr =
  | Const of Value.t
  | Attr_of of string * string
  | Param of string
  | Anyof of expr
  | Apply of string * expr list

type assertion =
  | Expr_true of expr
  | Common_space of string
  | Common_time of string
  | Card_eq of string * int
  | Card_ge of string * int

type mapping = {
  target : string;
  rhs : expr;
}

type t = {
  assertions : assertion list;
  mappings : mapping list;
}

let make ~assertions ~mappings = { assertions; mappings }

type env = {
  arg_objects : string -> Value.t list option;
  attr_value : string -> int -> string -> (Value.t, Gaea_error.t) result;
  spatial_attr : string -> string option;
  temporal_attr : string -> string option;
  param : string -> Value.t option;
  apply : string -> Value.t list -> (Value.t, Gaea_error.t) result;
  arity : string -> [ `Fixed of int | `Variadic ] option;
}

let ( let* ) r f = Result.bind r f

(* arg.attr: scalar args give the attribute value directly, SETOF args a
   VSet of per-object attribute values. *)
let eval_attr_of env arg attr =
  match env.arg_objects arg with
  | None -> Gaea_error.err (Printf.sprintf "unbound argument %s" arg)
  | Some objs ->
    let* values =
      List.fold_left
        (fun acc i ->
          let* acc = acc in
          let* v = env.attr_value arg i attr in
          Ok (v :: acc))
        (Ok [])
        (List.init (List.length objs) Fun.id)
    in
    let values = List.rev values in
    (match values with
     | [ single ] -> Ok single
     | _ -> Ok (Value.set values))

let rec eval env = function
  | Const v -> Ok v
  | Param name ->
    (match env.param name with
     | Some v -> Ok v
     | None -> Gaea_error.err (Printf.sprintf "unbound parameter %s" name))
  | Attr_of (arg, attr) -> eval_attr_of env arg attr
  | Anyof e ->
    let* v = eval env e in
    (match v with
     | Value.VSet (x :: _) -> Ok x
     | Value.VSet [] -> Gaea_error.err "ANYOF: empty set"
     | other -> Ok other)
  | Apply (opname, args) ->
    let* values =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* v = eval env e in
          Ok (v :: acc))
        (Ok []) args
    in
    let values = List.rev values in
    (* Splice sets through variadic operators: composite(bands) where
       bands is SETOF image becomes composite(b1, b2, b3). *)
    let values =
      match env.arity opname with
      | Some `Variadic ->
        List.concat_map
          (function
            | Value.VSet items -> items
            | v -> [ v ])
          values
      | Some (`Fixed _) | None -> values
    in
    env.apply opname values

(* For card/common rules, arg.attr values as a plain list. *)
let attr_values env arg attr =
  match env.arg_objects arg with
  | None -> Gaea_error.err (Printf.sprintf "unbound argument %s" arg)
  | Some objs ->
    let* values =
      List.fold_left
        (fun acc i ->
          let* acc = acc in
          let* v = env.attr_value arg i attr in
          Ok (v :: acc))
        (Ok [])
        (List.init (List.length objs) Fun.id)
    in
    Ok (List.rev values)

let check_assertion env a =
  match a with
  | Expr_true e ->
    let* v = eval env e in
    (match v with
     | Value.VBool true -> Ok ()
     | Value.VBool false ->
       Gaea_error.err "assertion evaluated to false"
     | other ->
       Gaea_error.err
         (Printf.sprintf "assertion evaluated to non-boolean %s"
            (Value.to_display other)))
  | Card_eq (arg, n) ->
    (match env.arg_objects arg with
     | None -> Gaea_error.err (Printf.sprintf "unbound argument %s" arg)
     | Some objs ->
       let c = List.length objs in
       if c = n then Ok ()
       else Gaea_error.err (Printf.sprintf "card(%s) = %d, requires exactly %d" arg c n))
  | Card_ge (arg, n) ->
    (match env.arg_objects arg with
     | None -> Gaea_error.err (Printf.sprintf "unbound argument %s" arg)
     | Some objs ->
       let c = List.length objs in
       if c >= n then Ok ()
       else Gaea_error.err (Printf.sprintf "card(%s) = %d, requires at least %d" arg c n))
  | Common_space arg ->
    (match env.spatial_attr arg with
     | None ->
       Gaea_error.err (Printf.sprintf "argument %s has no spatial extent" arg)
     | Some attr ->
       let* values = attr_values env arg attr in
       let* result = env.apply "common_boxes" [ Value.set values ] in
       (match result with
        | Value.VBool true -> Ok ()
        | _ ->
          Gaea_error.err
            (Printf.sprintf "common(%s.%s) violated: extents do not overlap"
               arg attr)))
  | Common_time arg ->
    (match env.temporal_attr arg with
     | None ->
       Gaea_error.err (Printf.sprintf "argument %s has no temporal extent" arg)
     | Some attr ->
       let* values = attr_values env arg attr in
       let* result = env.apply "common_times" [ Value.set values ] in
       (match result with
        | Value.VBool true -> Ok ()
        | _ ->
          Gaea_error.err
            (Printf.sprintf "common(%s.%s) violated: timestamps disagree" arg
               attr)))

let check_assertions env t =
  List.fold_left
    (fun acc a ->
      let* () = acc in
      match check_assertion env a with
      | Ok () -> Ok ()
      | Error e -> Error e)
    (Ok ()) t.assertions

let eval_mappings env t =
  let* pairs =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        match eval env m.rhs with
        | Ok v -> Ok ((m.target, v) :: acc)
        | Error e -> Error (Gaea_error.Context ("mapping " ^ m.target, e)))
      (Ok []) t.mappings
  in
  Ok (List.rev pairs)

let rec expr_to_string = function
  | Const v -> Value.to_display v
  | Attr_of (arg, attr) -> Printf.sprintf "%s.%s" arg attr
  | Param p -> Printf.sprintf "$%s" p
  | Anyof e -> Printf.sprintf "ANYOF %s" (expr_to_string e)
  | Apply (op, args) ->
    Printf.sprintf "%s(%s)" op
      (String.concat ", " (List.map expr_to_string args))

let assertion_to_string = function
  | Expr_true e -> expr_to_string e
  | Common_space arg -> Printf.sprintf "common(%s.spatialextent)" arg
  | Common_time arg -> Printf.sprintf "common(%s.timestamp)" arg
  | Card_eq (arg, n) -> Printf.sprintf "card(%s) = %d" arg n
  | Card_ge (arg, n) -> Printf.sprintf "card(%s) >= %d" arg n

let pp ~output_class fmt t =
  Format.fprintf fmt "@[<v 2>TEMPLATE {";
  Format.fprintf fmt "@ @[<v 2>ASSERTIONS:";
  List.iter
    (fun a -> Format.fprintf fmt "@ %s;" (assertion_to_string a))
    t.assertions;
  Format.fprintf fmt "@]@ @[<v 2>MAPPINGS:";
  List.iter
    (fun m ->
      Format.fprintf fmt "@ %s.%s = %s;" output_class m.target
        (expr_to_string m.rhs))
    t.mappings;
  Format.fprintf fmt "@]@]@ }"

let rec expr_params acc = function
  | Const _ -> acc
  | Attr_of _ -> acc
  | Param p -> p :: acc
  | Anyof e -> expr_params acc e
  | Apply (_, args) -> List.fold_left expr_params acc args

let free_params t =
  let from_assertions =
    List.fold_left
      (fun acc -> function
        | Expr_true e -> expr_params acc e
        | Common_space _ | Common_time _ | Card_eq _ | Card_ge _ -> acc)
      [] t.assertions
  in
  let all =
    List.fold_left
      (fun acc m -> expr_params acc m.rhs)
      from_assertions t.mappings
  in
  List.sort_uniq compare all

let rec expr_args acc = function
  | Const _ | Param _ -> acc
  | Attr_of (arg, _) -> arg :: acc
  | Anyof e -> expr_args acc e
  | Apply (_, args) -> List.fold_left expr_args acc args

let referenced_args t =
  let from_assertions =
    List.fold_left
      (fun acc -> function
        | Expr_true e -> expr_args acc e
        | Common_space a | Common_time a | Card_eq (a, _) | Card_ge (a, _) ->
          a :: acc)
      [] t.assertions
  in
  let all =
    List.fold_left (fun acc m -> expr_args acc m.rhs) from_assertions t.mappings
  in
  List.sort_uniq compare all
