(** Concepts and the high-level semantics layer (paper Section 2.1.1).

    "A concept is simply a set of classes" whose definitions may differ
    between users (DESERT, NDVI, VEGETATION CHANGE...).  Concepts are
    arranged in an ISA specialization hierarchy which "can be a general
    directed acyclic graph" (footnote 4); the leaves map to sets of
    non-primitive classes in the derivation layer (Fig 2's dashed
    lines). *)

type concept = private {
  name : string;
  members : string list;   (** class names, sorted, deduplicated *)
  doc : string;
}

type t
(** A mutable concept hierarchy. *)

val create : unit -> t

val define :
  t -> name:string -> ?doc:string -> ?members:string list -> unit
  -> (concept, Gaea_error.t) result
(** Errors on duplicate concept names. *)

val add_member : t -> concept:string -> string -> (unit, Gaea_error.t) result
(** Map one more class to the concept (expanding the dashed lines of
    Fig 2). *)

val add_isa : t -> sub:string -> super:string -> (unit, Gaea_error.t) result
(** [sub ISA super].  Errors on unknown concepts, self-loops, duplicate
    edges, or edges that would create a cycle (the hierarchy must stay a
    DAG). *)

val find : t -> string -> concept option
val mem : t -> string -> bool
val all : t -> concept list
(** Sorted by name. *)

val parents : t -> string -> string list
val children : t -> string -> string list
val ancestors : t -> string -> string list
(** Transitive, excluding the concept itself; sorted. *)

val descendants : t -> string -> string list

val leaves : t -> string -> string list
(** Descendant concepts (or the concept itself) that have no children. *)

val classes_of : t -> string -> string list
(** All classes realizing the concept: the union of [members] over the
    concept and its descendants — querying DESERT reaches the classes
    of all desert kinds. *)

val concepts_of_class : t -> string -> string list
(** Concepts (directly) containing the class. *)

val to_dot : t -> string
(** The Fig 2 high-level layer as Graphviz. *)
