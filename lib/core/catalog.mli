(** The class catalog: class definitions plus their backing tables.

    Owns the derivation level's {e static} half — every defined
    {!Schema.t} and the store table that holds its objects.  Emits
    [Class_defined] on the bus; the derivation-net cache listens. *)

type t

val create : store:Gaea_storage.Store.t -> bus:Events.bus -> t

val define : t -> Schema.t -> (unit, Gaea_error.t) result
(** Creates the backing table; errors on duplicate class names or a
    storage failure.  Emits [Class_defined]. *)

val mem : t -> string -> bool
val find : t -> string -> Schema.t option

val classes : t -> Schema.t list
(** Sorted by name. *)

val table : t -> string -> Gaea_storage.Table.t option
(** The backing table, [None] for unknown classes. *)
