(** The kernel event bus.

    Every state change in a kernel subsystem is announced as an
    {!event} on a shared {!bus}.  Cross-cutting concerns — result-cache
    invalidation, the execution counters, the derivation-net cache —
    are subscribers rather than hand-threaded calls, so adding a new
    observer (persistence hooks, metrics exporters) never touches the
    mutating code paths.

    The bus also keeps a bounded in-memory log (ring buffer) of recent
    events with monotonically increasing sequence numbers — the first
    observability surface, dumpable from the CLI via [SHOW EVENTS]. *)

type event =
  | Class_defined of string
  | Class_mutated of string
      (** A class's objects changed behind the kernel's back
          (bulk loads, external edits); fired by
          [Kernel.invalidate_cache_class]. *)
  | Object_inserted of { cls : string; oid : int }
  | Object_deleted of { cls : string; oid : int }
  | Object_updated of { cls : string; oid : int }
      (** An existing object's attribute values were replaced in place
          ([Kernel.update_object]) — staling trigger for its consumers. *)
  | Object_refreshed of { cls : string; oid : int; task_id : int }
      (** The refresh scheduler recomputed a stale derived object;
          [task_id] is the new provenance task that produced it. *)
  | Process_defined of { name : string; version : int }
      (** First version of a new process name. *)
  | Process_versioned of { name : string; version : int }
      (** A further version of an existing name — staling trigger. *)
  | Task_recorded of { task_id : int; process : string; version : int }
  | Cache_hit of { process : string; version : int }
  | Cache_miss of { process : string; version : int }
  | Cache_invalidated of { entries : int; reason : string }
  | Cache_admitted of { process : string; version : int; bytes : int }
      (** A result entered the bounded result cache, charged [bytes]. *)
  | Cache_evicted of { entries : int; bytes : int; reason : string }
      (** Entries left the cache to make room under [GAEA_CACHE_BYTES]. *)

val event_to_string : event -> string

type bus

val create : ?log_capacity:int -> unit -> bus
(** [log_capacity] bounds the ring buffer (default 256, min 1). *)

val subscribe : bus -> name:string -> (event -> unit) -> unit
(** Register a subscriber.  Subscribers run synchronously on
    {!emit}, in registration order. *)

val subscribers : bus -> string list
(** Registration order. *)

val emit : bus -> event -> unit
(** Log the event, then notify every subscriber in order. *)

val log : bus -> (int * event) list
(** Retained events, oldest first, each with its sequence number.
    At most [log_capacity] entries; earlier events have been
    overwritten. *)

val seen : bus -> int
(** Total number of events emitted (not bounded by the ring). *)
