(** Execution counters, fed by the event bus.

    [executions], [cache_hits] and [cache_misses] are bumped by an
    event-bus subscriber (see {!attach}); [retrievals],
    [interpolations] and [pixels_processed] are still mutated directly
    by the derivation manager and the deriver, as they measure work
    volumes no event carries. *)

type t = {
  mutable executions : int;  (** process executions (tasks recorded) *)
  mutable retrievals : int;  (** direct object retrievals *)
  mutable interpolations : int;
  mutable pixels_processed : int;  (** image pixels written by mappings *)
  mutable cache_hits : int;  (** executions served from the result cache *)
  mutable cache_misses : int;  (** executions that actually ran *)
  mutable cache_admissions : int;  (** results admitted to the bounded cache *)
  mutable cache_evictions : int;  (** entries evicted to stay under budget *)
  mutable refreshes : int;  (** stale objects recomputed in place *)
}

val create : unit -> t
val reset : t -> unit

val attach : Events.bus -> t -> unit
(** Subscribe (as ["metrics"]) to [Task_recorded] → [executions],
    [Cache_hit] → [cache_hits], [Cache_miss] → [cache_misses],
    [Cache_admitted] → [cache_admissions], [Cache_evicted] →
    [cache_evictions], [Object_refreshed] → [refreshes]. *)
