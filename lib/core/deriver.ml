module Value = Gaea_adt.Value
module Registry = Gaea_adt.Registry
module Operator = Gaea_adt.Operator
module Oid = Gaea_storage.Oid

let ( let* ) r f = Result.bind r f

(* Provenance key of a derived result: the process identity, the exact
   input binding (argument order preserved — templates index into it),
   and the parameter bindings by content hash. *)
type cache_key =
  string * int * (string * Oid.t list) list * (string * int) list

(* A cached result with its memory charge and replacement priority.
   Eviction is GreedyDual-Size: priority = clock at (re)use +
   cost / bytes, so cheap-to-recompute, bulky, long-unused entries go
   first; the clock ratchets to each victim's priority, which ages the
   survivors (the LRU component). *)
type entry = {
  e_task : Task.t;
  e_bytes : int;
  e_cost : float;  (* measured recompute wall-seconds *)
  mutable e_priority : float;
  mutable e_tick : int;  (* last-use tick, LRU tie-break *)
}

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  invalidations : int;
  admissions : int;
  evictions : int;
  resident_bytes : int;
  budget_bytes : int;
}

type t = {
  registry : Registry.t;
  catalog : Catalog.t;
  objects : Obj_store.t;
  procs : Proc_registry.t;
  prov : Provenance.t;
  metrics : Metrics.t;
  bus : Events.bus;
  result_cache : (cache_key, entry) Hashtbl.t;
  mutable invalidations : int;
  mutable budget : int;  (* GAEA_CACHE_BYTES *)
  mutable resident : int;  (* bytes currently charged *)
  mutable gds_clock : float;
  mutable tick : int;
}

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

let default_budget = 256 * 1024 * 1024

let budget_from_env () =
  match Sys.getenv_opt "GAEA_CACHE_BYTES" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n > 0 -> n
     | _ -> default_budget)
  | None -> default_budget

(* Per-value resident size.  Raster payloads dominate and are charged
   at their storage-type width; scalars get a small flat charge. *)
let rec bytes_of_value v =
  match v with
  | Value.VImage img ->
    Gaea_raster.Image.size img
    * Gaea_raster.Pixel.size_bytes (Gaea_raster.Image.img_type img)
    + 64
  | Value.VComposite c ->
    List.fold_left
      (fun acc b -> acc + bytes_of_value (Value.VImage b))
      64
      (Gaea_raster.Composite.bands c)
  | Value.VMatrix m ->
    (Gaea_raster.Matrix.rows m * Gaea_raster.Matrix.cols m * 8) + 64
  | Value.VVector a -> (Array.length a * 8) + 64
  | Value.VString s -> String.length s + 32
  | Value.VSet vs -> List.fold_left (fun acc v -> acc + bytes_of_value v) 16 vs
  | _ -> 16

(* What a cached task pins in memory: the stored tuples of its output
   objects. *)
let task_bytes t (task : Task.t) =
  List.fold_left
    (fun acc oid ->
      match Obj_store.class_of t.objects oid with
      | None -> acc
      | Some cls ->
        (match Obj_store.tuple t.objects ~cls oid with
         | None -> acc
         | Some tup ->
           List.fold_left
             (fun acc v -> acc + bytes_of_value v)
             acc
             (Gaea_storage.Tuple.values tup)))
    0 task.Task.outputs

let cache_key_of (p : Process.t) inputs : cache_key =
  ( p.Process.proc_name,
    p.Process.version,
    List.sort (fun (a, _) (b, _) -> String.compare a b) inputs,
    List.map (fun (n, v) -> (n, Value.content_hash v)) p.Process.params
    |> List.sort (fun (a, _) (b, _) -> String.compare a b) )

let cache_stats t =
  { hits = t.metrics.Metrics.cache_hits;
    misses = t.metrics.Metrics.cache_misses;
    entries = Hashtbl.length t.result_cache;
    invalidations = t.invalidations;
    admissions = t.metrics.Metrics.cache_admissions;
    evictions = t.metrics.Metrics.cache_evictions;
    resident_bytes = t.resident;
    budget_bytes = t.budget }

let remove_entry t key (e : entry) =
  Hashtbl.remove t.result_cache key;
  t.resident <- t.resident - e.e_bytes

let drop t ~reason n =
  if n > 0 then begin
    t.invalidations <- t.invalidations + n;
    Events.emit t.bus (Events.Cache_invalidated { entries = n; reason })
  end

let clear_cache t =
  let n = Hashtbl.length t.result_cache in
  Hashtbl.reset t.result_cache;
  t.resident <- 0;
  drop t ~reason:"clear" n

let invalidate_entries t ~reason pred =
  let doomed =
    Hashtbl.fold
      (fun key e acc -> if pred key e.e_task then (key, e) :: acc else acc)
      t.result_cache []
  in
  List.iter (fun (key, e) -> remove_entry t key e) doomed;
  drop t ~reason (List.length doomed)

(* Evict lowest-priority entries (LRU tick breaks ties) until [need]
   more bytes fit under the budget. *)
let evict_for t ~need =
  let freed = ref 0 and count = ref 0 in
  while t.resident + need > t.budget && Hashtbl.length t.result_cache > 0 do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best)
            when best.e_priority < e.e_priority
                 || (best.e_priority = e.e_priority && best.e_tick <= e.e_tick)
            -> acc
          | _ -> Some (k, e))
        t.result_cache None
    in
    match victim with
    | None -> ()
    | Some (k, e) ->
      remove_entry t k e;
      t.gds_clock <- Float.max t.gds_clock e.e_priority;
      freed := !freed + e.e_bytes;
      incr count
  done;
  if !count > 0 then
    Events.emit t.bus
      (Events.Cache_evicted { entries = !count; bytes = !freed; reason = "budget" })

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* Admission: charge the task's output bytes, evicting to fit.  An
   entry bigger than the whole budget is never admitted. *)
let admit t (p : Process.t) ~inputs ~cost task =
  let key = cache_key_of p inputs in
  (match Hashtbl.find_opt t.result_cache key with
   | Some old -> remove_entry t key old
   | None -> ());
  let bytes = task_bytes t task in
  if bytes <= t.budget then begin
    evict_for t ~need:bytes;
    let e =
      { e_task = task; e_bytes = bytes; e_cost = cost;
        e_priority = t.gds_clock +. (cost /. float_of_int (max 1 bytes));
        e_tick = next_tick t }
    in
    Hashtbl.replace t.result_cache key e;
    t.resident <- t.resident + bytes;
    Events.emit t.bus
      (Events.Cache_admitted
         { process = p.Process.proc_name; version = p.Process.version; bytes })
  end

let cache_budget t = t.budget

let set_cache_budget t n =
  t.budget <- max 0 n;
  evict_for t ~need:0

let restore_cache_stats t ~hits ~misses ~invalidations ~admissions ~evictions =
  t.metrics.Metrics.cache_hits <- hits;
  t.metrics.Metrics.cache_misses <- misses;
  t.metrics.Metrics.cache_admissions <- admissions;
  t.metrics.Metrics.cache_evictions <- evictions;
  t.invalidations <- invalidations

(* Names whose (latest) definitions reach [name] through compound
   steps: editing a sub-process stales every cached compound above it. *)
let dependent_processes t name =
  let reaches acc p =
    List.exists (fun s -> List.mem s.Process.step_process acc) (Process.steps p)
  in
  let rec grow acc =
    let next =
      Proc_registry.fold_names t.procs ~init:acc ~f:(fun acc' pname versions ->
          if List.mem pname acc' then acc'
          else if List.exists (reaches acc') versions then pname :: acc'
          else acc')
    in
    if List.length next = List.length acc then acc else grow next
  in
  grow [ name ]

let invalidate_process t name =
  let stale = dependent_processes t name in
  invalidate_entries t ~reason:("process " ^ name)
    (fun (pname, _, _, _) _ -> List.mem pname stale)

let invalidate_oid t oid =
  invalidate_entries t ~reason:(Printf.sprintf "object #%d" oid)
    (fun (_, _, inputs, _) task ->
      List.mem oid task.Task.outputs
      || List.exists (fun (_, oids) -> List.mem oid oids) inputs)

let invalidate_class t cls =
  invalidate_entries t ~reason:("class " ^ cls)
    (fun (_, _, inputs, _) task ->
      task.Task.output_class = cls
      || List.exists
           (fun (_, oids) ->
             List.exists
               (fun o -> Obj_store.class_of t.objects o = Some cls)
               oids)
           inputs)

let create ~registry ~catalog ~objects ~procs ~prov ~metrics ~bus =
  let t =
    { registry; catalog; objects; procs; prov; metrics; bus;
      result_cache = Hashtbl.create 64; invalidations = 0;
      budget = budget_from_env (); resident = 0; gds_clock = 0.0; tick = 0 }
  in
  (* staleness is event-driven: deletions, updates, re-versions and
     class mutations arrive on the bus rather than as hand-threaded
     calls *)
  Events.subscribe bus ~name:"result-cache" (function
    | Events.Object_deleted { oid; _ } -> invalidate_oid t oid
    | Events.Object_updated { oid; _ } -> invalidate_oid t oid
    | Events.Process_versioned { name; _ } -> invalidate_process t name
    | Events.Class_mutated cls -> invalidate_class t cls
    | _ -> ());
  t

(* ------------------------------------------------------------------ *)
(* Template environment                                                *)
(* ------------------------------------------------------------------ *)

let make_env t (p : Process.t) (inputs : (string * Oid.t list) list) =
  let arg_class name =
    Option.map (fun a -> a.Process.arg_class) (Process.arg p name)
  in
  { Template.arg_objects =
      (fun name ->
        Option.map
          (fun oids -> List.map (fun o -> Value.int o) oids)
          (List.assoc_opt name inputs));
    attr_value =
      (fun name i attr ->
        match List.assoc_opt name inputs, arg_class name with
        | Some oids, Some cls when i >= 0 && i < List.length oids ->
          let oid = List.nth oids i in
          (match Obj_store.attr t.objects ~cls oid attr with
           | Some v -> Ok v
           | None ->
             Gaea_error.err
               (Printf.sprintf "object %d of class %s has no attribute %s" oid
                  cls attr))
        | _ ->
          Gaea_error.err
            (Printf.sprintf "bad argument reference %s[%d]" name i));
    spatial_attr =
      (fun name ->
        Option.bind (arg_class name) (fun cls ->
            Option.bind (Catalog.find t.catalog cls) (fun def ->
                def.Schema.spatial_attr)));
    temporal_attr =
      (fun name ->
        Option.bind (arg_class name) (fun cls ->
            Option.bind (Catalog.find t.catalog cls) (fun def ->
                def.Schema.temporal_attr)));
    param = (fun name -> Process.param p name);
    apply =
      (fun op args ->
        match Registry.apply t.registry op args with
        | Ok v -> Ok v
        | Error e -> Error (Gaea_error.Eval_error e));
    arity =
      (fun op ->
        Option.map
          (fun o ->
            match (Operator.signature o).Operator.variadic with
            | Some _ -> `Variadic
            | None -> `Fixed (List.length (Operator.signature o).Operator.params))
          (Registry.find_operator t.registry op)) }

let check_cards (p : Process.t) inputs =
  List.fold_left
    (fun acc spec ->
      let* () = acc in
      match List.assoc_opt spec.Process.arg_name inputs with
      | None ->
        Error
          (Gaea_error.Arity_mismatch
             (Printf.sprintf "%s: argument %s not bound" p.Process.proc_name
                spec.Process.arg_name))
      | Some oids ->
        let n = List.length oids in
        if n < spec.Process.card_min then
          Error
            (Gaea_error.Arity_mismatch
               (Printf.sprintf "%s: %s needs at least %d object(s), got %d"
                  p.Process.proc_name spec.Process.arg_name
                  spec.Process.card_min n))
        else (
          match spec.Process.card_max with
          | Some m when n > m ->
            Error
              (Gaea_error.Arity_mismatch
                 (Printf.sprintf "%s: %s takes at most %d object(s), got %d"
                    p.Process.proc_name spec.Process.arg_name m n))
          | _ -> Ok ()))
    (Ok ()) p.Process.args

let check_inputs t (p : Process.t) inputs =
  let* () = check_cards p inputs in
  match Process.template p with
  | None -> Ok ()
  | Some tmpl ->
    let env = make_env t p inputs in
    Template.check_assertions env tmpl

(* ------------------------------------------------------------------ *)
(* Binding search                                                      *)
(* ------------------------------------------------------------------ *)

(* subsets of size k, capped *)
let rec subsets_k cap k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
    let with_x = List.map (fun s -> x :: s) (subsets_k cap (k - 1) rest) in
    let without = if List.length with_x >= cap then [] else subsets_k cap k rest in
    let all = with_x @ without in
    if List.length all > cap then List.filteri (fun i _ -> i < cap) all
    else all

let binding_equal b1 b2 =
  List.length b1 = List.length b2
  && List.for_all
       (fun (arg, oids) ->
         match List.assoc_opt arg b2 with
         | Some oids2 ->
           List.sort Int.compare oids = List.sort Int.compare oids2
         | None -> false)
       b1

let find_binding t ?(exclude = []) (p : Process.t) ~available =
  (* group argument specs by class, preserving declaration order *)
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      let cur =
        Option.value ~default:[]
          (Hashtbl.find_opt by_class spec.Process.arg_class)
      in
      Hashtbl.replace by_class spec.Process.arg_class (cur @ [ spec ]))
    p.Process.args;
  (* candidate assignments per class *)
  let cap = 32 in
  let class_assignments cls specs =
    let oids = Option.value ~default:[] (List.assoc_opt cls available) in
    (* assign specs in order; unbounded SETOF specs swallow the rest *)
    let rec go specs remaining =
      match specs with
      | [] -> [ [] ]
      | spec :: rest ->
        let takes =
          match spec.Process.card_max with
          | Some m ->
            let sizes =
              List.init (m - spec.Process.card_min + 1) (fun i ->
                  spec.Process.card_min + i)
            in
            List.concat_map (fun k -> subsets_k cap k remaining) sizes
          | None ->
            (* greedy: take everything still available *)
            if List.length remaining >= spec.Process.card_min then
              [ remaining ]
            else []
        in
        List.concat_map
          (fun chosen ->
            let left = List.filter (fun o -> not (List.mem o chosen)) remaining in
            List.map
              (fun tail -> (spec.Process.arg_name, chosen) :: tail)
              (go rest left))
          takes
        |> fun l ->
        if List.length l > cap then List.filteri (fun i _ -> i < cap) l else l
    in
    go specs oids
  in
  let classes_in_order =
    List.sort_uniq compare
      (List.map (fun a -> a.Process.arg_class) p.Process.args)
  in
  let rec product = function
    | [] -> [ [] ]
    | cls :: rest ->
      let specs = Hashtbl.find by_class cls in
      let here = class_assignments cls specs in
      let tails = product rest in
      List.concat_map
        (fun assignment -> List.map (fun tail -> assignment @ tail) tails)
        here
      |> fun l ->
      if List.length l > cap * 4 then List.filteri (fun i _ -> i < cap * 4) l
      else l
  in
  let candidates = product classes_in_order in
  let rec try_all last_err = function
    | [] ->
      Gaea_error.err
        (Printf.sprintf "%s: no valid binding found (%s)" p.Process.proc_name
           last_err)
    | binding :: rest ->
      if List.exists (binding_equal binding) exclude then
        try_all "remaining candidates already used" rest
      else (
        match check_inputs t p binding with
        | Ok () -> Ok binding
        | Error e -> try_all (Gaea_error.to_string e) rest)
  in
  try_all "no candidates" candidates

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let count_pixels v =
  match v with
  | Value.VImage img -> Gaea_raster.Image.size img
  | Value.VComposite c ->
    Gaea_raster.Composite.n_pixels c * Gaea_raster.Composite.n_bands c
  | _ -> 0

let eval_primitive t (p : Process.t) inputs =
  match Process.template p with
  | None ->
    Error (Gaea_error.Invalid (p.Process.proc_name ^ ": not a primitive process"))
  | Some tmpl ->
    let* () = check_cards p inputs in
    let env = make_env t p inputs in
    let* () = Template.check_assertions env tmpl in
    let* pairs = Template.eval_mappings env tmpl in
    (* the output class must be fully mapped *)
    (match Catalog.find t.catalog p.Process.output_class with
     | None ->
       Gaea_error.err
         (Printf.sprintf "%s: unknown output class %s" p.Process.proc_name
            p.Process.output_class)
     | Some def ->
       let missing =
         List.filter
           (fun a -> not (List.mem_assoc a pairs))
           (Schema.attr_names def)
       in
       if missing <> [] then
         Gaea_error.err
           (Printf.sprintf "%s: mappings missing for attribute(s) %s"
              p.Process.proc_name
              (String.concat ", " missing))
       else Ok pairs)

(* Commit half of a primitive execution: insert the evaluated output,
   bump metrics, record provenance.  Split from the evaluation half so
   the compound scheduler can evaluate steps concurrently and commit
   them strictly in step order. *)
let commit_primitive t (p : Process.t) inputs pairs =
  let* oid = Obj_store.insert t.objects ~cls:p.Process.output_class pairs in
  List.iter
    (fun (_, v) ->
      t.metrics.Metrics.pixels_processed <-
        t.metrics.Metrics.pixels_processed + count_pixels v)
    pairs;
  Ok
    (Provenance.record_task t.prov ~process:p.Process.proc_name
       ~version:p.Process.version ~inputs ~params:p.Process.params
       ~outputs:[ oid ] ~output_class:p.Process.output_class)

let execute_primitive t (p : Process.t) inputs =
  let* pairs = eval_primitive t p inputs in
  commit_primitive t p inputs pairs

(* all recorded outputs must still be stored for a cached task to be
   served (guards callers that bypass delete) *)
let outputs_live t (task : Task.t) =
  task.Task.outputs <> []
  && List.for_all (fun oid -> Obj_store.mem t.objects oid) task.Task.outputs

(* Authoritative cache probe around a process execution: emits
   Cache_hit / Cache_miss, drops stale entries, admits fresh results
   charged with their measured recompute cost. *)
let with_cache t (p : Process.t) ~inputs run =
  let key = cache_key_of p inputs in
  match Hashtbl.find_opt t.result_cache key with
  | Some e when outputs_live t e.e_task ->
    (* a hit re-seeds the GDS priority from the aged clock *)
    e.e_priority <-
      t.gds_clock +. (e.e_cost /. float_of_int (max 1 e.e_bytes));
    e.e_tick <- next_tick t;
    Events.emit t.bus
      (Events.Cache_hit
         { process = p.Process.proc_name; version = p.Process.version });
    Ok e.e_task
  | stale ->
    (match stale with
     | Some e -> remove_entry t key e
     | None -> ());
    Events.emit t.bus
      (Events.Cache_miss
         { process = p.Process.proc_name; version = p.Process.version });
    let t0 = Unix.gettimeofday () in
    let result = run () in
    (match result with
     | Ok task -> admit t p ~inputs ~cost:(Unix.gettimeofday () -. t0) task
     | Error _ -> ());
    result

(* Look-ahead evaluation of a compound step: the pure half ran on a
   pool lane; exceptions are re-raised at the step's commit turn. *)
type eval_outcome =
  | Evaled of ((string * Value.t) list, Gaea_error.t) result
  | Eval_raised of exn

let rec execute_process t (p : Process.t) ~inputs =
  with_cache t p ~inputs (fun () -> execute_uncached t p ~inputs)

and execute_uncached t (p : Process.t) ~inputs =
  match p.Process.kind with
  | Process.Primitive _ -> execute_primitive t p inputs
  | Process.Compound [] ->
    Error (Gaea_error.Invalid (p.Process.proc_name ^ ": compound with no steps"))
  | Process.Compound steps -> execute_compound t p ~inputs steps

(* DAG-parallel compound execution.

   Expansion runs as a task scheduler over the step list: before
   committing step [i], every not-yet-evaluated later step whose
   inputs are already available (all [From_step] references point
   below the commit frontier), whose sub-process resolves to a
   primitive, and whose result-cache peek misses, is {e evaluated}
   concurrently on the pool ([Pool.parallel_batch]) — evaluation is
   the pure half (assertions + mappings), so lanes share the kernel
   tables read-only.  Commits — cache probe/events, object insertion,
   metrics, provenance — happen strictly in step order on the calling
   domain, so oid assignment, task ids/clocks and the event log are
   identical to sequential execution at any pool size (the
   determinism tests in test_events.ml assert this).  Cache peeks at
   schedule time are silent and non-mutating; the authoritative probe
   at commit time emits the events, so a step duplicating an earlier
   step's key still registers its hit and discards the extra
   evaluation.  Cached steps never occupy a pool lane. *)
and execute_compound t (p : Process.t) ~inputs steps =
  let arr = Array.of_list steps in
  let n = Array.length arr in
  (* outputs of committed steps, by step index *)
  let outputs = Array.make n [] in
  let evals : (int, eval_outcome) Hashtbl.t = Hashtbl.create 8 in
  (* resolve step [j]'s sub-inputs from the argument binding and the
     outputs of steps committed before it *)
  let resolve j =
    let* rev =
      List.fold_left
        (fun acc (arg, input) ->
          let* acc = acc in
          match input with
          | Process.From_arg a ->
            (match List.assoc_opt a inputs with
             | Some oids -> Ok ((arg, oids) :: acc)
             | None ->
               Gaea_error.err
                 (Printf.sprintf "%s: argument %s not bound"
                    p.Process.proc_name a))
          | Process.From_step k ->
            if k >= 0 && k < j then Ok ((arg, outputs.(k)) :: acc)
            else
              Gaea_error.err
                (Printf.sprintf "%s: step %d output unavailable"
                   p.Process.proc_name k))
        (Ok []) arr.(j).Process.step_inputs
    in
    Ok (List.rev rev)
  in
  let find_primitive j =
    match Proc_registry.find t.procs arr.(j).Process.step_process with
    | Some sub ->
      (match sub.Process.kind with
       | Process.Primitive _ -> Some sub
       | Process.Compound _ -> None)
    | None -> None
  in
  let ready frontier j =
    List.for_all
      (fun (_, input) ->
        match input with
        | Process.From_arg a -> List.mem_assoc a inputs
        | Process.From_step k -> k >= 0 && k < frontier)
      arr.(j).Process.step_inputs
  in
  (* steps at or past the frontier that could be evaluated right now *)
  let candidates frontier =
    let rec go j acc =
      if j >= n then List.rev acc
      else
        let acc =
          if Hashtbl.mem evals j then acc
          else
            match find_primitive j with
            | None -> acc
            | Some sub ->
              if not (ready frontier j) then acc
              else (
                match resolve j with
                | Error _ -> acc
                | Ok sub_inputs ->
                  (* silent peek: a live cached result means this step
                     will hit at commit time — don't occupy a lane *)
                  (match
                     Hashtbl.find_opt t.result_cache
                       (cache_key_of sub sub_inputs)
                   with
                   | Some e when outputs_live t e.e_task -> acc
                   | _ -> (j, sub, sub_inputs) :: acc))
        in
        go (j + 1) acc
    in
    go frontier []
  in
  let schedule frontier =
    (* a step evaluation is image-sized work, far above any calibrated
       cutoff — the only cutoff value that matters here is the
       [max_int] a single-domain host reports, where lanes can only
       time-slice one core and batching is pure overhead *)
    if
      Gaea_par.Pool.size () > 1
      && Gaea_par.Pool.min_parallel_work () < max_int
      && not (Hashtbl.mem evals frontier)
    then begin
      match candidates frontier with
      | [] | [ _ ] -> () (* a single ready step gains nothing from a lane *)
      | cs when List.length cs < Gaea_par.Pool.size () ->
        (* a frontier narrower than the lane count leaves lanes idle
           while still paying dispatch/join overhead — the E9 2-lane
           regression; let the caller run the steps in order instead *)
        ()
      | cs ->
        let thunks =
          Array.of_list
            (List.map
               (fun (j, sub, sub_inputs) () ->
                 ( j,
                   try Evaled (eval_primitive t sub sub_inputs)
                   with e -> Eval_raised e ))
               cs)
        in
        Array.iter
          (fun (j, outcome) -> Hashtbl.replace evals j outcome)
          (Gaea_par.Pool.parallel_batch thunks)
    end
  in
  let rec commit i last =
    match last with
    | Some task when i >= n -> Ok task
    | _ when i >= n ->
      Error
        (Gaea_error.Invalid (p.Process.proc_name ^ ": compound with no steps"))
    | _ ->
      schedule i;
      let result =
        match Proc_registry.find t.procs arr.(i).Process.step_process with
        | None ->
          Gaea_error.err
            (Printf.sprintf "%s: unknown sub-process %s" p.Process.proc_name
               arr.(i).Process.step_process)
        | Some sub ->
          let* sub_inputs = resolve i in
          (match Hashtbl.find_opt evals i with
           | Some outcome ->
             with_cache t sub ~inputs:sub_inputs (fun () ->
                 match outcome with
                 | Eval_raised e -> raise e
                 | Evaled (Error e) -> Error e
                 | Evaled (Ok pairs) -> commit_primitive t sub sub_inputs pairs)
           | None -> execute_process t sub ~inputs:sub_inputs)
      in
      (match result with
       | Error e -> Error e
       | Ok task ->
         outputs.(i) <- task.Task.outputs;
         commit (i + 1) (Some task))
  in
  commit 0 None

let recompute_task t (task : Task.t) =
  match
    Proc_registry.find t.procs ~version:task.Task.process_version
      task.Task.process
  with
  | None ->
    Error
      (Gaea_error.Unknown_process
         { name = task.Task.process; version = Some task.Task.process_version })
  | Some p -> eval_primitive t p task.Task.inputs
