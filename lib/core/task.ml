module Sexp = Gaea_adt.Sexp
module Value = Gaea_adt.Value

type t = {
  task_id : int;
  process : string;
  process_version : int;
  inputs : (string * Gaea_storage.Oid.t list) list;
  params : (string * Value.t) list;
  outputs : Gaea_storage.Oid.t list;
  output_class : string;
  clock : int;
}

let input_oids t =
  List.concat_map snd t.inputs |> List.sort_uniq Int.compare

let iatom i = Sexp.atom (string_of_int i)

let to_sexp t =
  Sexp.list
    [ Sexp.atom "task";
      iatom t.task_id;
      Sexp.atom t.process;
      iatom t.process_version;
      Sexp.list
        (List.map
           (fun (arg, oids) ->
             Sexp.list (Sexp.atom arg :: List.map iatom oids))
           t.inputs);
      Sexp.list
        (List.map
           (fun (p, v) ->
             Sexp.list
               [ Sexp.atom p;
                 Result.get_ok (Sexp.of_string (Value.serialize v)) ])
           t.params);
      Sexp.list (List.map iatom t.outputs);
      Sexp.atom t.output_class;
      iatom t.clock ]

let ( let* ) r f = Result.bind r f

let parse_int = function
  | Sexp.Atom a ->
    (match int_of_string_opt a with
     | Some i -> Ok i
     | None -> Gaea_error.err ("task: not an int: " ^ a))
  | Sexp.List _ -> Gaea_error.err "task: expected int atom"

let of_sexp = function
  | Sexp.List
      [ Sexp.Atom "task"; id; Sexp.Atom process; version; Sexp.List inputs;
        Sexp.List params; Sexp.List outputs; Sexp.Atom output_class; clock ]
    ->
    let* task_id = parse_int id in
    let* process_version = parse_int version in
    let* inputs =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match s with
          | Sexp.List (Sexp.Atom arg :: oids) ->
            let* oids =
              List.fold_left
                (fun acc o ->
                  let* acc = acc in
                  let* i = parse_int o in
                  Ok (i :: acc))
                (Ok []) oids
            in
            Ok ((arg, List.rev oids) :: acc)
          | _ -> Gaea_error.err "task: malformed input binding")
        (Ok []) inputs
    in
    let* params =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match s with
          | Sexp.List [ Sexp.Atom p; v ] ->
            let* value =
              match Value.deserialize (Sexp.to_string v) with
              | Ok value -> Ok value
              | Error e -> Error (Gaea_error.Parse_error e)
            in
            Ok ((p, value) :: acc)
          | _ -> Gaea_error.err "task: malformed parameter")
        (Ok []) params
    in
    let* outputs =
      List.fold_left
        (fun acc o ->
          let* acc = acc in
          let* i = parse_int o in
          Ok (i :: acc))
        (Ok []) outputs
    in
    let* clock = parse_int clock in
    Ok
      { task_id; process; process_version; inputs = List.rev inputs;
        params = List.rev params; outputs = List.rev outputs; output_class;
        clock }
  | _ -> Gaea_error.err "task: malformed sexp"

let pp fmt t =
  Format.fprintf fmt "@[<h>task #%d: %s v%d (%s) -> %s {%s} @@%d@]" t.task_id
    t.process t.process_version
    (String.concat "; "
       (List.map
          (fun (arg, oids) ->
            Printf.sprintf "%s=[%s]" arg
              (String.concat "," (List.map string_of_int oids)))
          t.inputs))
    t.output_class
    (String.concat "," (List.map string_of_int t.outputs))
    t.clock
