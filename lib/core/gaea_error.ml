type t =
  | Unknown_class of string
  | Unknown_process of { name : string; version : int option }
  | Unknown_object of int
  | Wrong_class of { oid : int; cls : string }
  | Unknown_concept of string
  | Unknown_task of int
  | Duplicate of { kind : string; name : string }
  | Arity_mismatch of string
  | Assertion_failed of string
  | Type_error of string
  | Eval_error of string
  | Parse_error of string
  | Storage_error of string
  | Io_error of string
  | Not_derivable of string
  | Invalid of string
  | Context of string * t

let rec to_string = function
  | Unknown_class c -> Printf.sprintf "unknown class %s" c
  | Unknown_process { name; version = None } ->
    Printf.sprintf "unknown process %s" name
  | Unknown_process { name; version = Some v } ->
    Printf.sprintf "unknown process %s v%d" name v
  | Unknown_object oid -> Printf.sprintf "no object %d" oid
  | Wrong_class { oid; cls } ->
    Printf.sprintf "object %d is not of class %s" oid cls
  | Unknown_concept c -> Printf.sprintf "unknown concept %s" c
  | Unknown_task id -> Printf.sprintf "no task #%d" id
  | Duplicate { kind; name } -> Printf.sprintf "%s %s already defined" kind name
  | Arity_mismatch m
  | Assertion_failed m
  | Type_error m
  | Eval_error m
  | Parse_error m
  | Storage_error m
  | Io_error m
  | Not_derivable m
  | Invalid m -> m
  | Context (where, e) -> Printf.sprintf "%s: %s" where (to_string e)

let pp fmt e = Format.pp_print_string fmt (to_string e)

let err m = Error (Invalid m)

let with_context where = function
  | Ok _ as ok -> ok
  | Error e -> Error (Context (where, e))
