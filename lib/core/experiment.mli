(** The experiment manager (high-level semantics layer).

    "Experiments can be reproduced, allowing rapid and reliable
    confirmation of results.  Information exchange among scientists can
    be promoted." (Section 4.2).  An experiment groups the concepts under
    study, the tasks performed and free-text notes; reproduction
    re-executes every recorded task and checks the outputs byte-for-byte. *)

type t = private {
  e_name : string;
  e_doc : string;
  concepts : string list;
  task_ids : int list;         (** chronological *)
  notes : string list;         (** newest first *)
}

type manager

val create_manager : unit -> manager

val begin_experiment :
  manager -> name:string -> ?doc:string -> ?concepts:string list -> unit
  -> (unit, Gaea_error.t) result

val record_task : manager -> experiment:string -> int -> (unit, Gaea_error.t) result
val add_note : manager -> experiment:string -> string -> (unit, Gaea_error.t) result
val add_concept : manager -> experiment:string -> string -> (unit, Gaea_error.t) result

val find : manager -> string -> t option
val all : manager -> t list

type reproduction = {
  total : int;
  reproduced : int;
  failures : (int * string) list;  (** task id, reason *)
}

val reproduce : manager -> Kernel.t -> experiment:string
  -> (reproduction, Gaea_error.t) result
(** Recompute every task of the experiment against the current store and
    compare with the recorded outputs. *)

val report : manager -> Kernel.t -> experiment:string -> (string, Gaea_error.t) result
(** Shareable textual summary: concepts, per-task derivation records,
    notes. *)
