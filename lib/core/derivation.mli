(** The derivation manager: executes the paper's query-answering
    sequence (Section 2.1.5) over the class-derivation Petri net.

    "The execution of a database query which involves the retrieval of a
    derived spatio-temporal concept is performed according to the
    following sequence: 1. direct data retrieval [...]; 2. data
    interpolation [...]; 3. data are computed, based on a derivation
    relationship.  Steps 2 and 3 are prioritized according to the
    user's needs." *)

type trace_step =
  | Retrieved_direct of string * Gaea_storage.Oid.t list
  | Interpolated of string * Gaea_storage.Oid.t
  | Fired of string * int * int  (** process name, version, task id *)

type outcome = {
  objects : Gaea_storage.Oid.t list;  (** the objects satisfying the request *)
  new_tasks : Task.t list;            (** derivations performed, in order *)
  trace : trace_step list;
}

val request :
  Kernel.t -> ?need:int -> string -> (outcome, Gaea_error.t) result
(** [request k cls] delivers [need] (default 1) objects of class [cls]:
    stored objects first, derivation through backward chaining on the
    net otherwise.  Fails when the class is underivable from current
    data. *)

val derivable : Kernel.t -> string -> bool
(** Would a request succeed (ignoring guards — upper bound)? *)

val derivation_plan :
  Kernel.t -> ?need:int -> string -> Gaea_petri.Backchain.plan option
(** The plan [request] would follow, without executing it. *)

type priority = [ `Interpolate_first | `Derive_first ]

val request_at :
  Kernel.t -> ?priority:priority -> cls:string -> at:Gaea_geo.Abstime.t
  -> unit -> (outcome, Gaea_error.t) result
(** Temporal point query: an object of [cls] whose timestamp equals [at]
    (to the day).  Missing data trigger, in the order given by
    [priority] (default [`Interpolate_first], the paper's step order):
    temporal interpolation between the two nearest snapshots, then full
    derivation.  The class must have a temporal extent. *)

val interpolate_values :
  Kernel.t -> cls:string -> at:Gaea_geo.Abstime.t
  -> Gaea_storage.Oid.t * Gaea_storage.Oid.t
  -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result
(** The generic interpolation process (paper: "a generic derivation
    process which is applicable to many data types"): image attributes
    interpolate per pixel, float attributes linearly, everything else is
    copied from the temporally nearest input.  Exposed for the
    reproducibility checker. *)

val interpolation_process_name : string
(** The process name recorded on interpolation tasks (["interpolate"],
    version 0). *)

val recompute :
  Kernel.t -> Task.t -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result
(** {!Kernel.recompute_task} extended to interpolation tasks. *)
