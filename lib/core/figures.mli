(** Builders for the paper's worked examples.

    Each function installs classes / processes / concepts into a kernel
    exactly as the corresponding figure describes, and loads synthetic
    stand-ins for the satellite data (see DESIGN.md, substitutions).
    Class and process names follow the paper (C1, C20, P20, ...) with
    readable aliases. *)

(** {2 Fig 3 — unsupervised classification (process P20)} *)

val landsat_class : string        (** "landsat_tm_rect" — the paper's C1 *)

val land_cover_class : string     (** "land_cover" — the paper's C20 *)

val p20_name : string             (** "unsupervised-classification" *)

val install_fig3 : ?k:int -> Kernel.t -> (unit, Gaea_error.t) result
(** Define C1, C20 and P20 (k land-cover classes, default 12 as in the
    figure). *)

val load_tm_bands :
  Kernel.t -> seed:int -> ?nrow:int -> ?ncol:int -> ?n_bands:int
  -> ?extent:Gaea_geo.Extent.t -> unit
  -> (Gaea_storage.Oid.t list, Gaea_error.t) result
(** Insert synthetic rectified-TM band objects (default 3 bands of
    64x64) sharing one spatio-temporal extent. *)

(** {2 Section 1 / Fig 2 — NDVI and vegetation change} *)

val avhrr_class : string          (** "avhrr_band" *)

val ndvi_class : string           (** "ndvi_map" — the paper's C6 *)

val veg_change_class : string     (** "veg_change" — C7 / C8 *)

val p_ndvi : string               (** "ndvi-derivation" *)

val p_change_sub : string         (** "veg-change-subtract" (scientist 1) *)

val p_change_div : string         (** "veg-change-divide" (scientist 2) *)

val p_change_spca : string        (** "veg-change-spca" (C7 via Fig 4 net) *)

val install_vegetation : Kernel.t -> (unit, Gaea_error.t) result
(** Classes and the four processes, plus the NDVI / Vegetation-Change
    concepts of Fig 2. *)

val load_avhrr_year :
  Kernel.t -> seed:int -> year:int -> ?nrow:int -> ?ncol:int
  -> ?vegetation_shift:float -> unit
  -> (Gaea_storage.Oid.t * Gaea_storage.Oid.t, Gaea_error.t) result
(** Insert a (red, nir) AVHRR channel pair for the given year; returns
    (red oid, nir oid). *)

(** {2 Fig 2 — desert concept hierarchy} *)

val rainfall_class : string       (** "rainfall_map" *)

val desert_class : string         (** "desert_map" (C2-style) *)

val install_deserts : Kernel.t -> (unit, Gaea_error.t) result
(** The DESERT ISA hierarchy (hot trade-wind / ice-snow) and two
    parameterized desert processes: rainfall < 250 mm and < 200 mm —
    "the same derivation method with different parameters represents
    different processes". *)

val p_desert_250 : string
val p_desert_200 : string

val load_rainfall :
  Kernel.t -> seed:int -> ?nrow:int -> ?ncol:int -> unit
  -> (Gaea_storage.Oid.t, Gaea_error.t) result

(** {2 Fig 5 — compound process land-change-detection} *)

val change_image_class : string   (** intermediate SPCA output *)

val land_cover_changes_class : string
val p_spca_step : string          (** primitive SPCA step *)

val p_classify_change : string    (** primitive classification step *)

val p_land_change : string        (** the compound "land-change-detection" *)

val install_fig5 : Kernel.t -> (unit, Gaea_error.t) result
(** Requires {!install_fig3} (reuses the TM class). *)

(** {2 Everything} *)

val install_all : Kernel.t -> (unit, Gaea_error.t) result
(** Fig 3 + vegetation + deserts + Fig 5 on one kernel (the full Fig 2
    three-layer schema). *)
