type t = {
  e_name : string;
  e_doc : string;
  concepts : string list;
  task_ids : int list;
  notes : string list;
}

type manager = (string, t) Hashtbl.t

let create_manager () = Hashtbl.create 16

let begin_experiment m ~name ?(doc = "") ?(concepts = []) () =
  if name = "" then Gaea_error.err "experiment: empty name"
  else if Hashtbl.mem m name then
    Gaea_error.err (Printf.sprintf "experiment %s already exists" name)
  else begin
    Hashtbl.add m name
      { e_name = name; e_doc = doc; concepts; task_ids = []; notes = [] };
    Ok ()
  end

let update m name f =
  match Hashtbl.find_opt m name with
  | None -> Gaea_error.err (Printf.sprintf "unknown experiment %s" name)
  | Some e ->
    Hashtbl.replace m name (f e);
    Ok ()

let record_task m ~experiment id =
  update m experiment (fun e -> { e with task_ids = e.task_ids @ [ id ] })

let add_note m ~experiment note =
  update m experiment (fun e -> { e with notes = note :: e.notes })

let add_concept m ~experiment c =
  update m experiment (fun e ->
      { e with concepts = List.sort_uniq compare (c :: e.concepts) })

let find m name = Hashtbl.find_opt m name

let all m =
  Hashtbl.fold (fun _ e acc -> e :: acc) m []
  |> List.sort (fun a b -> compare a.e_name b.e_name)

type reproduction = {
  total : int;
  reproduced : int;
  failures : (int * string) list;
}

let reproduce m k ~experiment =
  match find m experiment with
  | None -> Gaea_error.err (Printf.sprintf "unknown experiment %s" experiment)
  | Some e ->
    let total = List.length e.task_ids in
    let reproduced, failures =
      List.fold_left
        (fun (ok, fails) id ->
          match Kernel.find_task k id with
          | None -> (ok, (id, "task not found") :: fails)
          | Some task ->
            (match Lineage.verify_task k task with
             | Ok true -> (ok + 1, fails)
             | Ok false -> (ok, (id, "outputs differ") :: fails)
             | Error msg -> (ok, (id, Gaea_error.to_string msg) :: fails)))
        (0, []) e.task_ids
    in
    Ok { total; reproduced; failures = List.rev failures }

let report m k ~experiment =
  match find m experiment with
  | None -> Gaea_error.err (Printf.sprintf "unknown experiment %s" experiment)
  | Some e ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf (Printf.sprintf "EXPERIMENT %s\n" e.e_name);
    if e.e_doc <> "" then Buffer.add_string buf (e.e_doc ^ "\n");
    if e.concepts <> [] then
      Buffer.add_string buf
        ("concepts: " ^ String.concat ", " e.concepts ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "tasks (%d):\n" (List.length e.task_ids));
    List.iter
      (fun id ->
        match Kernel.find_task k id with
        | None -> Buffer.add_string buf (Printf.sprintf "  #%d (missing)\n" id)
        | Some task ->
          Buffer.add_string buf
            (Format.asprintf "  %a\n" Task.pp task))
      e.task_ids;
    List.iter
      (fun note -> Buffer.add_string buf ("note: " ^ note ^ "\n"))
      (List.rev e.notes);
    Ok (Buffer.contents buf)
