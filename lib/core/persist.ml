module Sexp = Gaea_adt.Sexp
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype

let ( let* ) r f = Result.bind r f

let iatom i = Sexp.atom (string_of_int i)

let parse_int = function
  | Sexp.Atom a ->
    (match int_of_string_opt a with
     | Some i -> Ok i
     | None -> Gaea_error.err ("not an int: " ^ a))
  | Sexp.List _ -> Gaea_error.err "expected int atom"

let atom_of = function
  | Sexp.Atom a -> Ok a
  | Sexp.List _ -> Gaea_error.err "expected atom"

let value_to_sexp v =
  Result.get_ok (Sexp.of_string (Value.serialize v))

let value_of_sexp s =
  match Value.deserialize (Sexp.to_string s) with
  | Ok v -> Ok v
  | Error e -> Error (Gaea_error.Parse_error e)

let map_m f items =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) items
  |> Result.map List.rev

(* --- schema --------------------------------------------------------- *)

let class_to_sexp (c : Schema.t) =
  Sexp.list
    [ Sexp.atom "class";
      Sexp.atom c.Schema.c_name;
      Sexp.list
        (List.map
           (fun a ->
             Sexp.list
               [ Sexp.atom a.Schema.a_name;
                 Sexp.atom (Vtype.to_string a.Schema.a_type) ])
           c.Schema.attributes);
      Sexp.atom (Option.value ~default:"-" c.Schema.spatial_attr);
      Sexp.atom (Option.value ~default:"-" c.Schema.temporal_attr);
      Sexp.atom (Option.value ~default:"-" (Schema.derived_by c));
      Sexp.atom c.Schema.c_doc ]

let class_of_sexp = function
  | Sexp.List
      [ Sexp.Atom "class"; Sexp.Atom name; Sexp.List attrs; Sexp.Atom sp;
        Sexp.Atom tp; Sexp.Atom der; Sexp.Atom doc ] ->
    let* attributes =
      map_m
        (function
          | Sexp.List [ Sexp.Atom n; Sexp.Atom ty ] ->
            (match Vtype.of_string ty with
             | Some ty -> Ok (n, ty)
             | None -> Gaea_error.err ("unknown type " ^ ty))
          | _ -> Gaea_error.err "malformed attribute")
        attrs
    in
    let opt = function "-" -> None | s -> Some s in
    Schema.define ~name ~doc ~attributes ?spatial:(opt sp) ?temporal:(opt tp)
      ?derived_by:(opt der) ()
  | _ -> Gaea_error.err "malformed class"

(* --- template ------------------------------------------------------- *)

let rec expr_to_sexp = function
  | Template.Const v -> Sexp.list [ Sexp.atom "const"; value_to_sexp v ]
  | Template.Attr_of (a, attr) ->
    Sexp.list [ Sexp.atom "attr"; Sexp.atom a; Sexp.atom attr ]
  | Template.Param p -> Sexp.list [ Sexp.atom "param"; Sexp.atom p ]
  | Template.Anyof e -> Sexp.list [ Sexp.atom "anyof"; expr_to_sexp e ]
  | Template.Apply (op, args) ->
    Sexp.list (Sexp.atom "apply" :: Sexp.atom op :: List.map expr_to_sexp args)

let rec expr_of_sexp = function
  | Sexp.List [ Sexp.Atom "const"; v ] ->
    Result.map (fun v -> Template.Const v) (value_of_sexp v)
  | Sexp.List [ Sexp.Atom "attr"; Sexp.Atom a; Sexp.Atom attr ] ->
    Ok (Template.Attr_of (a, attr))
  | Sexp.List [ Sexp.Atom "param"; Sexp.Atom p ] -> Ok (Template.Param p)
  | Sexp.List [ Sexp.Atom "anyof"; e ] ->
    Result.map (fun e -> Template.Anyof e) (expr_of_sexp e)
  | Sexp.List (Sexp.Atom "apply" :: Sexp.Atom op :: args) ->
    Result.map (fun args -> Template.Apply (op, args)) (map_m expr_of_sexp args)
  | _ -> Gaea_error.err "malformed expression"

let assertion_to_sexp = function
  | Template.Expr_true e -> Sexp.list [ Sexp.atom "expr"; expr_to_sexp e ]
  | Template.Common_space a -> Sexp.list [ Sexp.atom "common-space"; Sexp.atom a ]
  | Template.Common_time a -> Sexp.list [ Sexp.atom "common-time"; Sexp.atom a ]
  | Template.Card_eq (a, n) ->
    Sexp.list [ Sexp.atom "card-eq"; Sexp.atom a; iatom n ]
  | Template.Card_ge (a, n) ->
    Sexp.list [ Sexp.atom "card-ge"; Sexp.atom a; iatom n ]

let assertion_of_sexp = function
  | Sexp.List [ Sexp.Atom "expr"; e ] ->
    Result.map (fun e -> Template.Expr_true e) (expr_of_sexp e)
  | Sexp.List [ Sexp.Atom "common-space"; Sexp.Atom a ] ->
    Ok (Template.Common_space a)
  | Sexp.List [ Sexp.Atom "common-time"; Sexp.Atom a ] ->
    Ok (Template.Common_time a)
  | Sexp.List [ Sexp.Atom "card-eq"; Sexp.Atom a; n ] ->
    Result.map (fun n -> Template.Card_eq (a, n)) (parse_int n)
  | Sexp.List [ Sexp.Atom "card-ge"; Sexp.Atom a; n ] ->
    Result.map (fun n -> Template.Card_ge (a, n)) (parse_int n)
  | _ -> Gaea_error.err "malformed assertion"

let template_to_sexp (t : Template.t) =
  Sexp.list
    [ Sexp.atom "template";
      Sexp.list (List.map assertion_to_sexp t.Template.assertions);
      Sexp.list
        (List.map
           (fun m ->
             Sexp.list [ Sexp.atom m.Template.target; expr_to_sexp m.Template.rhs ])
           t.Template.mappings) ]

let template_of_sexp = function
  | Sexp.List [ Sexp.Atom "template"; Sexp.List assertions; Sexp.List mappings ] ->
    let* assertions = map_m assertion_of_sexp assertions in
    let* mappings =
      map_m
        (function
          | Sexp.List [ Sexp.Atom target; rhs ] ->
            Result.map (fun rhs -> { Template.target; rhs }) (expr_of_sexp rhs)
          | _ -> Gaea_error.err "malformed mapping")
        mappings
    in
    Ok (Template.make ~assertions ~mappings)
  | _ -> Gaea_error.err "malformed template"

(* --- process -------------------------------------------------------- *)

let arg_to_sexp (a : Process.arg_spec) =
  Sexp.list
    [ Sexp.atom a.Process.arg_name;
      Sexp.atom a.Process.arg_class;
      Sexp.atom (if a.Process.setof then "setof" else "scalar");
      iatom a.Process.card_min;
      (match a.Process.card_max with
       | Some m -> iatom m
       | None -> Sexp.atom "-") ]

let arg_of_sexp = function
  | Sexp.List [ Sexp.Atom name; Sexp.Atom cls; Sexp.Atom kind; cmin; cmax ] ->
    let* card_min = parse_int cmin in
    let* card_max =
      match cmax with
      | Sexp.Atom "-" -> Ok None
      | s -> Result.map Option.some (parse_int s)
    in
    if kind = "scalar" then Ok (Process.scalar_arg name cls)
    else Ok (Process.setof_arg ~card_min ?card_max name cls)
  | _ -> Gaea_error.err "malformed argument"

let process_to_sexp (p : Process.t) =
  let kind =
    match p.Process.kind with
    | Process.Primitive t -> Sexp.list [ Sexp.atom "primitive"; template_to_sexp t ]
    | Process.Compound steps ->
      Sexp.list
        (Sexp.atom "compound"
         :: List.map
              (fun s ->
                Sexp.list
                  (Sexp.atom s.Process.step_process
                   :: List.map
                        (fun (arg, input) ->
                          match input with
                          | Process.From_arg a ->
                            Sexp.list [ Sexp.atom arg; Sexp.atom "arg"; Sexp.atom a ]
                          | Process.From_step i ->
                            Sexp.list [ Sexp.atom arg; Sexp.atom "step"; iatom i ])
                        s.Process.step_inputs))
              steps)
  in
  Sexp.list
    [ Sexp.atom "process";
      Sexp.atom p.Process.proc_name;
      iatom p.Process.version;
      Sexp.atom p.Process.output_class;
      Sexp.list (List.map arg_to_sexp p.Process.args);
      Sexp.list
        (List.map
           (fun (n, v) -> Sexp.list [ Sexp.atom n; value_to_sexp v ])
           p.Process.params);
      kind;
      Sexp.atom p.Process.doc;
      (match p.Process.derived_from with
       | Some (n, v) -> Sexp.list [ Sexp.atom n; iatom v ]
       | None -> Sexp.atom "-") ]

let process_of_sexp = function
  | Sexp.List
      [ Sexp.Atom "process"; Sexp.Atom name; version; Sexp.Atom output;
        Sexp.List args; Sexp.List params; kind; Sexp.Atom doc; derived_from ]
    ->
    let* version = parse_int version in
    let* args = map_m arg_of_sexp args in
    let* params =
      map_m
        (function
          | Sexp.List [ Sexp.Atom n; v ] ->
            Result.map (fun v -> (n, v)) (value_of_sexp v)
          | _ -> Gaea_error.err "malformed parameter")
        params
    in
    let* base =
      match kind with
      | Sexp.List [ Sexp.Atom "primitive"; t ] ->
        let* template = template_of_sexp t in
        Process.define_primitive ~name ~doc ~output_class:output ~args ~params
          ~template ()
      | Sexp.List (Sexp.Atom "compound" :: steps) ->
        let* steps =
          map_m
            (function
              | Sexp.List (Sexp.Atom sub :: inputs) ->
                let* step_inputs =
                  map_m
                    (function
                      | Sexp.List [ Sexp.Atom arg; Sexp.Atom "arg"; Sexp.Atom a ] ->
                        Ok (arg, Process.From_arg a)
                      | Sexp.List [ Sexp.Atom arg; Sexp.Atom "step"; i ] ->
                        Result.map
                          (fun i -> (arg, Process.From_step i))
                          (parse_int i)
                      | _ -> Gaea_error.err "malformed step input")
                    inputs
                in
                Ok { Process.step_process = sub; step_inputs }
              | _ -> Gaea_error.err "malformed step")
            steps
        in
        Process.define_compound ~name ~doc ~output_class:output ~args ~steps ()
      | _ -> Gaea_error.err "malformed process kind"
    in
    (* restore identity fields the public constructors normalize *)
    let* derived_from =
      match derived_from with
      | Sexp.Atom "-" -> Ok None
      | Sexp.List [ Sexp.Atom n; v ] ->
        Result.map (fun v -> Some (n, v)) (parse_int v)
      | _ -> Gaea_error.err "malformed derived_from"
    in
    Ok (name, version, derived_from, base)
  | _ -> Gaea_error.err "malformed process"

(* Process.t is private; to restore version/derived_from we replay the
   edit history shape: define the base then re-edit.  Simpler and exact:
   construct through edit when version > 1. *)
let restore_process kernel (name, version, derived_from, base) =
  (* versions must be loaded in ascending order; we synthesize the exact
     version by chained edits from the parsed definition *)
  let rec bump p =
    if p.Process.version >= version then Ok p
    else
      let* p' = Process.edit p ~name () in
      bump p'
  in
  let* p = bump base in
  (* derived_from in the save wins over what edit synthesized; since the
     record is private we cannot patch it — acceptable: lineage of edits
     is re-derivable, tasks reference (name, version) which we preserved *)
  ignore derived_from;
  Kernel.define_process kernel p

(* --- concepts ------------------------------------------------------- *)

let concepts_to_sexp concepts =
  let all = Concept.all concepts in
  Sexp.list
    (Sexp.atom "concepts"
     :: List.map
          (fun c ->
            Sexp.list
              [ Sexp.atom c.Concept.name;
                Sexp.list (List.map Sexp.atom c.Concept.members);
                Sexp.list
                  (List.map Sexp.atom (Concept.parents concepts c.Concept.name));
                Sexp.atom c.Concept.doc ])
          all)

let restore_concepts kernel = function
  | Sexp.List (Sexp.Atom "concepts" :: entries) ->
    let concepts = Kernel.concepts kernel in
    (* two passes: define all, then add ISA edges *)
    let* parsed =
      map_m
        (function
          | Sexp.List
              [ Sexp.Atom name; Sexp.List members; Sexp.List parents;
                Sexp.Atom doc ] ->
            let* members = map_m atom_of members in
            let* parents = map_m atom_of parents in
            Ok (name, members, parents, doc)
          | _ -> Gaea_error.err "malformed concept")
        entries
    in
    let* () =
      List.fold_left
        (fun acc (name, members, _, doc) ->
          let* () = acc in
          Result.map (fun _ -> ()) (Concept.define concepts ~name ~doc ~members ()))
        (Ok ()) parsed
    in
    List.fold_left
      (fun acc (name, _, parents, _) ->
        let* () = acc in
        List.fold_left
          (fun acc super ->
            let* () = acc in
            Concept.add_isa concepts ~sub:name ~super)
          (Ok ()) parents)
      (Ok ()) parsed
  | _ -> Gaea_error.err "malformed concepts section"

(* --- objects -------------------------------------------------------- *)

let objects_to_sexp kernel (c : Schema.t) =
  let cls = c.Schema.c_name in
  let attrs = Schema.attr_names c in
  Sexp.list
    (Sexp.atom "objects" :: Sexp.atom cls
     :: List.map
          (fun oid ->
            Sexp.list
              (iatom oid
               :: List.map
                    (fun a ->
                      value_to_sexp
                        (Option.get (Kernel.object_attr kernel ~cls oid a)))
                    attrs))
          (Kernel.objects_of_class kernel cls))

let restore_objects kernel = function
  | Sexp.List (Sexp.Atom "objects" :: Sexp.Atom cls :: rows) ->
    (match Kernel.find_class kernel cls with
     | None -> Gaea_error.err ("objects for unknown class " ^ cls)
     | Some def ->
       let attrs = Schema.attr_names def in
       List.fold_left
         (fun acc row ->
           let* () = acc in
           match row with
           | Sexp.List (oid :: values) when List.length values = List.length attrs ->
             let* oid = parse_int oid in
             let* values = map_m value_of_sexp values in
             Kernel.insert_object_with_oid kernel ~cls oid
               (List.combine attrs values)
           | _ -> Gaea_error.err "malformed object row")
         (Ok ()) rows)
  | _ -> Gaea_error.err "malformed objects section"

(* --- cache statistics ------------------------------------------------ *)

let cache_stats_to_sexp kernel =
  let st = Kernel.cache_stats kernel in
  Sexp.list
    [ Sexp.atom "cache-stats";
      iatom st.Kernel.hits;
      iatom st.Kernel.misses;
      iatom st.Kernel.invalidations;
      iatom st.Kernel.admissions;
      iatom st.Kernel.evictions ]

let restore_cache_stats kernel = function
  | Sexp.List [ Sexp.Atom "cache-stats"; h; m; i; a; e ] ->
    let* hits = parse_int h in
    let* misses = parse_int m in
    let* invalidations = parse_int i in
    let* admissions = parse_int a in
    let* evictions = parse_int e in
    Kernel.restore_cache_stats kernel ~hits ~misses ~invalidations ~admissions
      ~evictions;
    Ok ()
  | _ -> Gaea_error.err "malformed cache-stats section"

(* --- whole kernel ---------------------------------------------------- *)

let save kernel =
  let buf = Buffer.create 8192 in
  let emit s =
    Buffer.add_string buf (Sexp.to_string s);
    Buffer.add_char buf '\n'
  in
  List.iter (fun c -> emit (class_to_sexp c)) (Kernel.classes kernel);
  emit (concepts_to_sexp (Kernel.concepts kernel));
  List.iter
    (fun p -> emit (process_to_sexp p))
    (Kernel.all_process_versions kernel);
  List.iter (fun c -> emit (objects_to_sexp kernel c)) (Kernel.classes kernel);
  List.iter
    (fun task -> emit (Task.to_sexp task))
    (Kernel.tasks kernel);
  emit (cache_stats_to_sexp kernel);
  Buffer.contents buf

let load text =
  let* sexps =
    match Sexp.of_string_many text with
    | Ok sexps -> Ok sexps
    | Error e -> Error (Gaea_error.Parse_error e)
  in
  let kernel = Kernel.create () in
  (* compound processes reference their primitive sub-processes, so
     restore processes primitives-first regardless of file order *)
  let* parsed_processes =
    map_m process_of_sexp
      (List.filter
         (function Sexp.List (Sexp.Atom "process" :: _) -> true | _ -> false)
         sexps)
  in
  let primitives, compounds =
    List.partition (fun (_, _, _, p) -> Process.is_primitive p) parsed_processes
  in
  let* () =
    List.fold_left
      (fun acc sexp ->
        let* () = acc in
        match sexp with
        | Sexp.List (Sexp.Atom "class" :: _) ->
          let* c = class_of_sexp sexp in
          Kernel.define_class kernel c
        | Sexp.List (Sexp.Atom "concepts" :: _) -> restore_concepts kernel sexp
        | _ -> Ok ())
      (Ok ()) sexps
  in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        restore_process kernel p)
      (Ok ()) (primitives @ compounds)
  in
  let* () =
    List.fold_left
      (fun acc sexp ->
        let* () = acc in
        match sexp with
        | Sexp.List (Sexp.Atom "objects" :: _) -> restore_objects kernel sexp
        | Sexp.List (Sexp.Atom "task" :: _) ->
          let* task = Task.of_sexp sexp in
          Kernel.restore_task kernel task
        | Sexp.List (Sexp.Atom "cache-stats" :: _) ->
          (* counters survive the round trip; saves predating the
             section simply restore to zero *)
          restore_cache_stats kernel sexp
        | Sexp.List (Sexp.Atom ("class" | "concepts" | "process") :: _) -> Ok ()
        | _ -> Gaea_error.err "unknown section")
      (Ok ()) sexps
  in
  Ok kernel

let save_to_file kernel path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (save kernel);
        Ok ())
  with Sys_error e -> Error (Gaea_error.Io_error e)

let load_from_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> load (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error (Gaea_error.Io_error e)
