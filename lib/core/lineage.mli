(** Lineage queries over the object-level derivation graph (tasks).

    This is what the paper's Section 1 scenario needs: two scientists
    store "vegetation change" images derived differently (NDVI
    subtraction vs division) — only the derivation history
    distinguishes them. *)

type tree = {
  object_id : Gaea_storage.Oid.t;
  object_class : string option;
  via : (Task.t * tree list) option;
  (** [None] for base data; otherwise the producing task and the
      subtrees of its inputs *)
}

val ancestors : Kernel.t -> Gaea_storage.Oid.t -> Gaea_storage.Oid.t list
(** Transitive input objects (excluding the object), sorted. *)

val descendants : Kernel.t -> Gaea_storage.Oid.t -> Gaea_storage.Oid.t list
(** Objects (transitively) derived from it. *)

val base_inputs : Kernel.t -> Gaea_storage.Oid.t -> Gaea_storage.Oid.t list
(** The underived (base-data) ancestors — the paper's "initial marking". *)

val derivation_tree : Kernel.t -> Gaea_storage.Oid.t -> tree

val derivation_signature : Kernel.t -> Gaea_storage.Oid.t -> string
(** Canonical string of the full derivation (processes, versions,
    parameters, structure — not OIDs), such that two objects derived
    the same way from the same-shaped history get equal signatures. *)

val same_derivation : Kernel.t -> Gaea_storage.Oid.t -> Gaea_storage.Oid.t -> bool

val compare_derivations :
  Kernel.t -> Gaea_storage.Oid.t -> Gaea_storage.Oid.t -> string
(** Human-readable account of how two objects' derivations agree or
    differ (the subtract-vs-divide explanation). *)

val explain : Kernel.t -> Gaea_storage.Oid.t -> string
(** Multi-line rendering of the derivation tree. *)

val verify_task : Kernel.t -> Task.t -> (bool, Gaea_error.t) result
(** Recompute the task and compare every produced attribute with what is
    stored — exact reproducibility ("experiments can be reproduced,
    allowing rapid and reliable confirmation of results"). *)

val verify_object : Kernel.t -> Gaea_storage.Oid.t -> (bool, Gaea_error.t) result
(** [Ok true] for base data (nothing to verify) and for faithfully
    reproducible derived objects. *)

val is_acyclic : Kernel.t -> bool
(** The object-level derivation graph must always be a DAG (objects
    cannot be inputs of their own derivation). *)
