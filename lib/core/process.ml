module Value = Gaea_adt.Value

type arg_spec = {
  arg_name : string;
  arg_class : string;
  setof : bool;
  card_min : int;
  card_max : int option;
}

type step_input =
  | From_arg of string
  | From_step of int

type step = {
  step_process : string;
  step_inputs : (string * step_input) list;
}

type kind =
  | Primitive of Template.t
  | Compound of step list

type t = {
  proc_name : string;
  version : int;
  output_class : string;
  args : arg_spec list;
  params : (string * Value.t) list;
  kind : kind;
  doc : string;
  derived_from : (string * int) option;
}

let scalar_arg name cls =
  { arg_name = name; arg_class = cls; setof = false; card_min = 1;
    card_max = Some 1 }

let setof_arg ?(card_min = 1) ?card_max name cls =
  { arg_name = name; arg_class = cls; setof = true; card_min; card_max }

let validate_args name args =
  if args = [] then Gaea_error.err (name ^ ": a process needs at least one argument")
  else
    let rec check seen = function
      | [] -> Ok ()
      | a :: rest ->
        if a.arg_name = "" then Gaea_error.err (name ^ ": empty argument name")
        else if List.mem a.arg_name seen then
          Gaea_error.err (Printf.sprintf "%s: duplicate argument %s" name a.arg_name)
        else if a.card_min < 1 then
          Gaea_error.err (Printf.sprintf "%s: %s: card_min < 1" name a.arg_name)
        else if
          match a.card_max with
          | Some m -> m < a.card_min
          | None -> false
        then Gaea_error.err (Printf.sprintf "%s: %s: card_max < card_min" name a.arg_name)
        else if (not a.setof) && a.card_min <> 1 then
          Gaea_error.err
            (Printf.sprintf "%s: %s: scalar argument with cardinality" name
               a.arg_name)
        else check (a.arg_name :: seen) rest
    in
    check [] args

let ( let* ) r f = Result.bind r f

let define_primitive ~name ?(doc = "") ~output_class ~args ?(params = [])
    ~template () =
  if name = "" then Gaea_error.err "process: empty name"
  else
    let* () = validate_args name args in
    (* every referenced template parameter must be bound *)
    let unbound =
      List.filter
        (fun p -> not (List.mem_assoc p params))
        (Template.free_params template)
    in
    if unbound <> [] then
      Gaea_error.err
        (Printf.sprintf "%s: unbound parameter(s): %s" name
           (String.concat ", " unbound))
    else begin
      let declared = List.map (fun a -> a.arg_name) args in
      let unknown =
        List.filter
          (fun a -> not (List.mem a declared))
          (Template.referenced_args template)
      in
      if unknown <> [] then
        Gaea_error.err
          (Printf.sprintf "%s: template references undeclared argument(s): %s"
             name
             (String.concat ", " unknown))
      else
        Ok
          { proc_name = name; version = 1; output_class; args; params;
            kind = Primitive template; doc; derived_from = None }
    end

let define_compound ~name ?(doc = "") ~output_class ~args ~steps () =
  if name = "" then Gaea_error.err "process: empty name"
  else
    let* () = validate_args name args in
    if steps = [] then Gaea_error.err (name ^ ": compound process with no steps")
    else begin
      let declared = List.map (fun a -> a.arg_name) args in
      let rec check i = function
        | [] -> Ok ()
        | s :: rest ->
          let rec check_inputs = function
            | [] -> Ok ()
            | (_, From_arg a) :: tl ->
              if List.mem a declared then check_inputs tl
              else
                Gaea_error.err
                  (Printf.sprintf "%s: step %d references unknown argument %s"
                     name i a)
            | (_, From_step j) :: tl ->
              if j >= 0 && j < i then check_inputs tl
              else
                Gaea_error.err
                  (Printf.sprintf
                     "%s: step %d references step %d (must be earlier)" name i
                     j)
          in
          let* () = check_inputs s.step_inputs in
          check (i + 1) rest
      in
      let* () = check 0 steps in
      Ok
        { proc_name = name; version = 1; output_class; args; params = [];
          kind = Compound steps; doc; derived_from = None }
    end

let edit t ~name ?doc ?params ?template ?output_class () =
  let* kind =
    match template, t.kind with
    | None, k -> Ok k
    | Some tmpl, Primitive _ -> Ok (Primitive tmpl)
    | Some _, Compound _ ->
      Gaea_error.err (t.proc_name ^ ": cannot attach a template to a compound process")
  in
  let params = Option.value params ~default:t.params in
  let* () =
    match kind with
    | Primitive tmpl ->
      let unbound =
        List.filter
          (fun p -> not (List.mem_assoc p params))
          (Template.free_params tmpl)
      in
      if unbound = [] then Ok ()
      else
        Gaea_error.err
          (Printf.sprintf "%s: unbound parameter(s): %s" name
             (String.concat ", " unbound))
    | Compound _ -> Ok ()
  in
  Ok
    { proc_name = name;
      version = (if name = t.proc_name then t.version + 1 else 1);
      output_class = Option.value output_class ~default:t.output_class;
      args = t.args;
      params;
      kind;
      doc = Option.value doc ~default:t.doc;
      derived_from = Some (t.proc_name, t.version) }

let with_version ?derived_from t version =
  { t with
    version;
    derived_from =
      (match derived_from with
       | Some _ -> derived_from
       | None -> t.derived_from) }

let is_primitive t =
  match t.kind with
  | Primitive _ -> true
  | Compound _ -> false

let is_compound t = not (is_primitive t)

let template t =
  match t.kind with
  | Primitive tmpl -> Some tmpl
  | Compound _ -> None

let steps t =
  match t.kind with
  | Compound s -> s
  | Primitive _ -> []

let param t name = List.assoc_opt name t.params
let arg t name = List.find_opt (fun a -> a.arg_name = name) t.args
let key t = (t.proc_name, t.version)

let pp fmt t =
  Format.fprintf fmt "@[<v 2>DEFINE %s PROCESS %s (v%d)"
    (if is_primitive t then "PRIMITIVE" else "COMPOUND")
    t.proc_name t.version;
  Format.fprintf fmt "@ OUTPUT %s" t.output_class;
  List.iter
    (fun a ->
      Format.fprintf fmt "@ ARGUMENT ( %s %s%s%s )" a.arg_name
        (if a.setof then "SETOF " else "")
        a.arg_class
        (match a.card_min, a.card_max with
         | 1, Some 1 -> ""
         | n, Some m when n = m -> Printf.sprintf " [card = %d]" n
         | n, Some m -> Printf.sprintf " [card %d..%d]" n m
         | n, None -> Printf.sprintf " [card >= %d]" n))
    t.args;
  List.iter
    (fun (p, v) ->
      Format.fprintf fmt "@ PARAMETER %s = %s" p (Value.to_display v))
    t.params;
  (match t.kind with
   | Primitive tmpl ->
     Format.fprintf fmt "@ %a" (Template.pp ~output_class:t.output_class) tmpl
   | Compound cs ->
     Format.fprintf fmt "@ @[<v 2>STEPS:";
     (* steps are numbered from 1 in all user-facing output, matching
        the GaeaQL STEP n syntax (From_step stays 0-based internally) *)
     List.iteri
       (fun i s ->
         Format.fprintf fmt "@ %d: %s(%s)" (i + 1) s.step_process
           (String.concat ", "
              (List.map
                 (fun (arg, input) ->
                   Printf.sprintf "%s <- %s" arg
                     (match input with
                      | From_arg a -> a
                      | From_step j -> Printf.sprintf "step %d" (j + 1)))
                 s.step_inputs)))
       cs;
     Format.fprintf fmt "@]");
  (match t.derived_from with
   | Some (n, v) -> Format.fprintf fmt "@ EDITED FROM %s (v%d)" n v
   | None -> ());
  Format.fprintf fmt "@]"
