module Oid = Gaea_storage.Oid
module Net = Gaea_petri.Net

type net_view = {
  net : Net.t;
  place_of_class : string -> Net.place option;
  class_of_place : Net.place -> string option;
  process_of_transition : Net.transition -> (string * int) option;
}

type t = {
  mutable task_log : Task.t list; (* reverse chronological *)
  task_by_id : (int, Task.t) Hashtbl.t;
  producer : (Oid.t, Task.t) Hashtbl.t;
  users : (Oid.t, Task.t list) Hashtbl.t;
  mutable next_task : int;
  mutable clock : int;
  mutable net_cache : net_view option;
  bus : Events.bus;
}

let create ~bus =
  let t =
    { task_log = [];
      task_by_id = Hashtbl.create 64;
      producer = Hashtbl.create 64;
      users = Hashtbl.create 64;
      next_task = 1;
      clock = 0;
      net_cache = None;
      bus }
  in
  (* the net view mirrors the class/process catalogs: any definition
     change stales it *)
  Events.subscribe bus ~name:"net-cache" (function
    | Events.Class_defined _ | Events.Process_defined _
    | Events.Process_versioned _ -> t.net_cache <- None
    | _ -> ());
  t

let index t (task : Task.t) =
  t.task_log <- task :: t.task_log;
  Hashtbl.replace t.task_by_id task.Task.task_id task;
  List.iter (fun oid -> Hashtbl.replace t.producer oid task) task.Task.outputs;
  List.iter
    (fun oid ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.users oid) in
      Hashtbl.replace t.users oid (task :: cur))
    (Task.input_oids task)

let record_task t ~process ~version ~inputs ~params ~outputs ~output_class =
  t.clock <- t.clock + 1;
  let task =
    { Task.task_id = t.next_task;
      process;
      process_version = version;
      inputs;
      params;
      outputs;
      output_class;
      clock = t.clock }
  in
  t.next_task <- t.next_task + 1;
  index t task;
  Events.emit t.bus
    (Events.Task_recorded
       { task_id = task.Task.task_id; process; version });
  task

let restore_task t (task : Task.t) =
  if Hashtbl.mem t.task_by_id task.Task.task_id then
    Error
      (Gaea_error.Duplicate
         { kind = "task"; name = Printf.sprintf "#%d" task.Task.task_id })
  else begin
    index t task;
    if task.Task.task_id >= t.next_task then t.next_task <- task.Task.task_id + 1;
    if task.Task.clock > t.clock then t.clock <- task.Task.clock;
    Ok ()
  end

let tasks t = List.rev t.task_log
let find_task t id = Hashtbl.find_opt t.task_by_id id
let task_producing t oid = Hashtbl.find_opt t.producer oid

let tasks_using t oid =
  Option.value ~default:[] (Hashtbl.find_opt t.users oid) |> List.rev

let clock t = t.clock

(* ------------------------------------------------------------------ *)
(* Derivation net                                                      *)
(* ------------------------------------------------------------------ *)

let build_net ~classes ~processes ~guard =
  let net = Net.create () in
  let place_tbl = Hashtbl.create 32 in
  let class_tbl = Hashtbl.create 32 in
  List.iter
    (fun cls ->
      let p = Net.add_place net ~name:cls.Schema.c_name in
      Hashtbl.add place_tbl cls.Schema.c_name p;
      Hashtbl.add class_tbl p cls.Schema.c_name)
    classes;
  let trans_tbl = Hashtbl.create 32 in
  (* Transitions get ids in insertion order and Backchain breaks cost
     ties by the lowest id, so install the processes that classes
     declare as their DERIVED BY before the rest. *)
  let declared = List.filter_map Schema.derived_by classes in
  let preferred, others =
    List.partition (fun p -> List.mem p.Process.proc_name declared) processes
  in
  List.iter
    (fun proc ->
      if Process.is_primitive proc then begin
        (* group args by class: threshold = sum of card_min *)
        let thresholds = Hashtbl.create 4 in
        List.iter
          (fun a ->
            let cur =
              Option.value ~default:0
                (Hashtbl.find_opt thresholds a.Process.arg_class)
            in
            Hashtbl.replace thresholds a.Process.arg_class
              (cur + a.Process.card_min))
          proc.Process.args;
        let inputs =
          Hashtbl.fold
            (fun cls k acc ->
              match Hashtbl.find_opt place_tbl cls with
              | Some p -> (p, k) :: acc
              | None -> acc)
            thresholds []
          |> List.sort compare
        in
        match Hashtbl.find_opt place_tbl proc.Process.output_class with
        | None -> ()
        | Some out_place ->
          let net_guard binding =
            let available =
              List.filter_map
                (fun (place, toks) ->
                  Option.map
                    (fun cls -> (cls, toks))
                    (Hashtbl.find_opt class_tbl place))
                binding
            in
            guard proc ~available
          in
          (match
             Net.add_transition net ~name:proc.Process.proc_name ~inputs
               ~outputs:[ out_place ] ~guard:net_guard ()
           with
           | Ok tid -> Hashtbl.add trans_tbl tid (Process.key proc)
           | Error _ -> ())
      end)
    (preferred @ others);
  { net;
    place_of_class = Hashtbl.find_opt place_tbl;
    class_of_place = Hashtbl.find_opt class_tbl;
    process_of_transition = Hashtbl.find_opt trans_tbl }

let derivation_net t ~classes ~processes ~guard =
  match t.net_cache with
  | Some v -> v
  | None ->
    let v = build_net ~classes:(classes ()) ~processes:(processes ()) ~guard in
    t.net_cache <- Some v;
    v
