(** Incremental recomputation of stale derived objects.

    Subscribes (as ["refresh"]) to the event bus and maintains the
    per-object {e dirty set}: an object is stale iff it is live, has a
    producing task, and a transitive input was updated or deleted, its
    process was re-versioned, or an input class was mutated since that
    task ran.  This is the one staleness definition shared with the
    [gaea lint] GA033 check.

    {!refresh} recomputes only the dirty subgraph, in topological
    waves: evaluation runs on the domain pool when the ready frontier
    can fill it, commits run strictly in producing-task order, so
    results, provenance and event order match a full re-derivation at
    any pool size.  Refreshed values replace the old objects {e in
    place} (same OIDs); each refresh records a new provenance task and
    re-admits the result to the bounded cache. *)

module Oid = Gaea_storage.Oid

type t

val create :
  objects:Obj_store.t
  -> procs:Proc_registry.t
  -> prov:Provenance.t
  -> deriver:Deriver.t
  -> metrics:Metrics.t
  -> bus:Events.bus
  -> t

val stale : t -> Oid.t list
(** The dirty set (live objects only), ascending. *)

val is_stale : t -> Oid.t -> bool

type report = {
  refreshed : int;  (** objects recomputed in place *)
  skipped : int;  (** stale objects left stale (see [skip_reasons]) *)
  remaining : int;  (** dirty-set size after the run *)
  tasks : Task.t list;  (** new provenance tasks, in commit order *)
  skip_reasons : (Oid.t * string) list;
}

val refresh : ?only:Oid.t list -> t -> report
(** Recompute stale objects ([only] restricts to the given targets
    plus their stale upstream closure).  Objects whose process is not
    in the registry (e.g. interpolation pseudo-tasks) or whose inputs
    are gone are skipped and stay stale. *)
