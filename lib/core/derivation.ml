module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Oid = Gaea_storage.Oid
module Abstime = Gaea_geo.Abstime
module Marking = Gaea_petri.Marking
module Backchain = Gaea_petri.Backchain
module Reachability = Gaea_petri.Reachability
module Image = Gaea_raster.Image
module Interpolate = Gaea_raster.Interpolate

type trace_step =
  | Retrieved_direct of string * Oid.t list
  | Interpolated of string * Oid.t
  | Fired of string * int * int

type outcome = {
  objects : Oid.t list;
  new_tasks : Task.t list;
  trace : trace_step list;
}

let ( let* ) r f = Result.bind r f

let interpolation_process_name = "interpolate"

(* ------------------------------------------------------------------ *)
(* Step 1 + 3: retrieval and derivation                                *)
(* ------------------------------------------------------------------ *)

let derivation_plan k ?(need = 1) cls =
  let view = Kernel.derivation_net k in
  match view.Kernel.place_of_class cls with
  | None -> None
  | Some place ->
    Backchain.search ~need view.Kernel.net (Kernel.current_marking k) place

let derivable k cls =
  let view = Kernel.derivation_net k in
  match view.Kernel.place_of_class cls with
  | None -> false
  | Some place ->
    let info =
      Reachability.analyze view.Kernel.net (Kernel.current_marking k)
    in
    info.Reachability.derivable place

(* Execute a backchain plan against the kernel: every Derived step fires
   the corresponding process via Kernel.execute_process. *)
let execute_plan k (view : Kernel.net_view) plan =
  let tasks = ref [] in
  let trace = ref [] in
  (* bindings already fired per transition in this plan: re-firing a
     process on identical inputs would only duplicate an object *)
  let used : (int, (string * Oid.t list) list list) Hashtbl.t =
    Hashtbl.create 8
  in
  (* shared sub-derivation nodes (plans share them physically) realize
     once; distinct nodes for the same transition get distinct bindings
     through [used] *)
  let realized : (Obj.t * Oid.t) list ref = ref [] in
  let rec realize_source source =
    match source with
    | Backchain.Existing oid -> Ok oid
    | Backchain.Derived _
      when List.exists (fun (key, _) -> key == Obj.repr source) !realized ->
      Ok (snd (List.find (fun (key, _) -> key == Obj.repr source) !realized))
    | Backchain.Derived step ->
      (* realize all inputs, grouped per place *)
      let* per_place =
        List.fold_left
          (fun acc (p, sources) ->
            let* acc = acc in
            let* oids =
              List.fold_left
                (fun acc src ->
                  let* acc = acc in
                  let* oid = realize_source src in
                  Ok (oid :: acc))
                (Ok []) sources
            in
            Ok ((p, List.rev oids) :: acc))
          (Ok []) step.Backchain.step_inputs
      in
      let per_place = List.rev per_place in
      (match view.Kernel.process_of_transition step.Backchain.transition with
       | None ->
         Gaea_error.err
           (Printf.sprintf "no process behind transition %d"
              step.Backchain.transition)
       | Some (pname, version) ->
         (match Kernel.find_process k ~version pname with
          | None -> Gaea_error.err (Printf.sprintf "process %s v%d vanished" pname version)
          | Some proc ->
            let to_classes pairs =
              List.filter_map
                (fun (p, oids) ->
                  Option.map
                    (fun cls -> (cls, oids))
                    (view.Kernel.class_of_place p))
                pairs
            in
            let planned = to_classes per_place in
            let exclude =
              Option.value ~default:[]
                (Hashtbl.find_opt used step.Backchain.transition)
            in
            (* the planned tokens may fail the guard with this exact
               assignment; retry with everything the classes hold *)
            let* binding =
              match Kernel.find_binding k ~exclude proc ~available:planned with
              | Ok b -> Ok b
              | Error _ ->
                let widened =
                  List.map
                    (fun (cls, _) -> (cls, Kernel.objects_of_class k cls))
                    planned
                in
                Kernel.find_binding k ~exclude proc ~available:widened
            in
            Hashtbl.replace used step.Backchain.transition (binding :: exclude);
            let* task = Kernel.execute_process k proc ~inputs:binding in
            tasks := task :: !tasks;
            trace :=
              Fired (pname, version, task.Task.task_id) :: !trace;
            (match task.Task.outputs with
             | oid :: _ ->
               realized := (Obj.repr source, oid) :: !realized;
               Ok oid
             | [] -> Gaea_error.err (pname ^ ": task produced no object"))))
  in
  let* objects =
    List.fold_left
      (fun acc src ->
        let* acc = acc in
        let* oid = realize_source src in
        Ok (oid :: acc))
      (Ok []) plan.Backchain.sources
  in
  Ok
    { objects = List.rev objects;
      new_tasks = List.rev !tasks;
      trace = List.rev !trace }

let request k ?(need = 1) cls =
  match Kernel.find_class k cls with
  | None -> Gaea_error.err (Printf.sprintf "unknown class %s" cls)
  | Some _ ->
    let stored = Kernel.objects_of_class k cls in
    if List.length stored >= need then begin
      let objects = List.filteri (fun i _ -> i < need) stored in
      (Kernel.counters k).Kernel.retrievals <-
        (Kernel.counters k).Kernel.retrievals + 1;
      Ok
        { objects;
          new_tasks = [];
          trace = [ Retrieved_direct (cls, objects) ] }
    end
    else begin
      let view = Kernel.derivation_net k in
      match view.Kernel.place_of_class cls with
      | None -> Gaea_error.err (Printf.sprintf "class %s missing from the net" cls)
      | Some place ->
        (match
           Backchain.search ~need view.Kernel.net (Kernel.current_marking k)
             place
         with
         | None ->
           Gaea_error.err
             (Printf.sprintf
                "%s: not derivable from current data (no plan found)" cls)
         | Some plan -> execute_plan k view plan)
    end

(* ------------------------------------------------------------------ *)
(* Step 2: interpolation                                               *)
(* ------------------------------------------------------------------ *)

let object_time k ~cls ~tattr oid =
  match Kernel.object_attr k ~cls oid tattr with
  | Some (Value.VAbstime t) -> Some t
  | _ -> None

let interpolate_values k ~cls ~at (o1, o2) =
  match Kernel.find_class k cls with
  | None -> Gaea_error.err (Printf.sprintf "unknown class %s" cls)
  | Some def ->
    (match def.Schema.temporal_attr with
     | None -> Gaea_error.err (cls ^ ": class has no temporal extent")
     | Some tattr ->
       let* t1 =
         match object_time k ~cls ~tattr o1 with
         | Some t -> Ok t
         | None -> Gaea_error.err (Printf.sprintf "object %d has no timestamp" o1)
       in
       let* t2 =
         match object_time k ~cls ~tattr o2 with
         | Some t -> Ok t
         | None -> Gaea_error.err (Printf.sprintf "object %d has no timestamp" o2)
       in
       if Abstime.equal t1 t2 then
         Gaea_error.err "interpolation needs two distinct timestamps"
       else begin
         let w =
           float_of_int (Abstime.diff_seconds at t1)
           /. float_of_int (Abstime.diff_seconds t2 t1)
         in
         let nearest = if Float.abs w <= 0.5 then o1 else o2 in
         List.fold_left
           (fun acc attr ->
             let* acc = acc in
             let name = attr.Schema.a_name in
             if name = tattr then Ok ((name, Value.abstime at) :: acc)
             else begin
               let v1 = Kernel.object_attr k ~cls o1 name in
               let v2 = Kernel.object_attr k ~cls o2 name in
               match v1, v2 with
               | Some (Value.VImage i1), Some (Value.VImage i2) ->
                 if Image.img_size_eq i1 i2 then
                   Ok
                     (( name,
                        Value.image
                          (Interpolate.temporal_linear ~at (t1, i1) (t2, i2)) )
                      :: acc)
                 else Gaea_error.err (name ^ ": image sizes differ")
               | Some (Value.VFloat a), Some (Value.VFloat b) ->
                 Ok ((name, Value.float (a +. (w *. (b -. a)))) :: acc)
               | Some v, Some _ ->
                 (* non-interpolable: copy from the nearest snapshot *)
                 let v =
                   if nearest = o1 then v
                   else Option.value ~default:v (Kernel.object_attr k ~cls o2 name)
                 in
                 Ok ((name, v) :: acc)
               | _ ->
                 Gaea_error.err (Printf.sprintf "object missing attribute %s" name)
             end)
           (Ok []) def.Schema.attributes
         |> Result.map List.rev
       end)

let matches_day t at = Float.abs (Abstime.diff_days t at) <= 1.0

let find_bracket snapshots at =
  (* snapshots sorted by time; pick neighbours around [at], or the two
     nearest for extrapolation *)
  match snapshots with
  | [] | [ _ ] -> None
  | _ ->
    let before =
      List.filter (fun (_, t) -> Abstime.compare t at <= 0) snapshots
    and after =
      List.filter (fun (_, t) -> Abstime.compare t at >= 0) snapshots
    in
    (match List.rev before, after with
     | (o1, t1) :: _, (o2, t2) :: _ when not (Abstime.equal t1 t2) ->
       Some ((o1, t1), (o2, t2))
     | _ ->
       (* one-sided: two nearest distinct-time snapshots *)
       let sorted =
         List.sort
           (fun (_, ta) (_, tb) ->
             Float.compare
               (Float.abs (Abstime.diff_days ta at))
               (Float.abs (Abstime.diff_days tb at)))
           snapshots
       in
       (match sorted with
        | (o1, t1) :: rest ->
          (match List.find_opt (fun (_, t) -> not (Abstime.equal t t1)) rest with
           | Some (o2, t2) -> Some ((o1, t1), (o2, t2))
           | None -> None)
        | [] -> None))

type priority = [ `Interpolate_first | `Derive_first ]

let try_interpolate k ~cls ~tattr ~at =
  let snapshots =
    List.filter_map
      (fun oid ->
        Option.map (fun t -> (oid, t)) (object_time k ~cls ~tattr oid))
      (Kernel.objects_of_class k cls)
    |> List.sort (fun (_, a) (_, b) -> Abstime.compare a b)
  in
  match find_bracket snapshots at with
  | None -> Gaea_error.err (cls ^ ": not enough snapshots to interpolate");
  | Some ((o1, _), (o2, _)) ->
    let* pairs = interpolate_values k ~cls ~at (o1, o2) in
    let* oid = Kernel.insert_object k ~cls pairs in
    let task =
      Kernel.record_task_raw k ~process:interpolation_process_name ~version:0
        ~inputs:[ ("a", [ o1 ]); ("b", [ o2 ]) ]
        ~params:[ ("at", Value.abstime at) ]
        ~outputs:[ oid ] ~output_class:cls
    in
    (Kernel.counters k).Kernel.interpolations <-
      (Kernel.counters k).Kernel.interpolations + 1;
    Ok
      { objects = [ oid ];
        new_tasks = [ task ];
        trace = [ Interpolated (cls, oid) ] }

let request_at k ?(priority = `Interpolate_first) ~cls ~at () =
  match Kernel.find_class k cls with
  | None -> Gaea_error.err (Printf.sprintf "unknown class %s" cls)
  | Some def ->
    (match def.Schema.temporal_attr with
     | None -> Gaea_error.err (cls ^ ": class has no temporal extent")
     | Some tattr ->
       (* step 1: direct retrieval at the requested time *)
       let hits =
         List.filter
           (fun oid ->
             match object_time k ~cls ~tattr oid with
             | Some t -> matches_day t at
             | None -> false)
           (Kernel.objects_of_class k cls)
       in
       (match hits with
        | oid :: _ ->
          (Kernel.counters k).Kernel.retrievals <-
            (Kernel.counters k).Kernel.retrievals + 1;
          Ok
            { objects = [ oid ];
              new_tasks = [];
              trace = [ Retrieved_direct (cls, [ oid ]) ] }
        | [] ->
          let derive_then_check () =
            let* r = request k cls in
            let produced_at =
              List.filter
                (fun oid ->
                  match object_time k ~cls ~tattr oid with
                  | Some t -> matches_day t at
                  | None -> false)
                r.objects
            in
            if produced_at <> [] then
              Ok { r with objects = produced_at }
            else
              (* new snapshots may enable interpolation *)
              let* r2 = try_interpolate k ~cls ~tattr ~at in
              Ok
                { objects = r2.objects;
                  new_tasks = r.new_tasks @ r2.new_tasks;
                  trace = r.trace @ r2.trace }
          in
          let strategies =
            match priority with
            | `Interpolate_first ->
              [ (fun () -> try_interpolate k ~cls ~tattr ~at);
                derive_then_check ]
            | `Derive_first ->
              [ derive_then_check;
                (fun () -> try_interpolate k ~cls ~tattr ~at) ]
          in
          let rec try_all last_err = function
            | [] -> Error last_err
            | s :: rest ->
              (match s () with
               | Ok _ as ok -> ok
               | Error e -> try_all e rest)
          in
          try_all (Gaea_error.Invalid "no strategy applicable") strategies))

let recompute k (task : Task.t) =
  if
    task.Task.process = interpolation_process_name
    && task.Task.process_version = 0
  then begin
    let* at =
      match List.assoc_opt "at" task.Task.params with
      | Some (Value.VAbstime t) -> Ok t
      | _ -> Gaea_error.err "interpolation task without 'at' parameter"
    in
    let* o1 =
      match List.assoc_opt "a" task.Task.inputs with
      | Some [ o ] -> Ok o
      | _ -> Gaea_error.err "interpolation task without input a"
    in
    let* o2 =
      match List.assoc_opt "b" task.Task.inputs with
      | Some [ o ] -> Ok o
      | _ -> Gaea_error.err "interpolation task without input b"
    in
    interpolate_values k ~cls:task.Task.output_class ~at (o1, o2)
  end
  else Kernel.recompute_task k task
