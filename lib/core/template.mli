(** Process TEMPLATEs: ASSERTIONS and MAPPINGS (paper Fig 3).

    {v
    TEMPLATE {
      ASSERTIONS:
        card ( bands ) = 3;
        common ( bands.spatialextent );
        common ( bands.timestamp );
      MAPPINGS:
        C20.data = unsuperclassify ( composite ( bands ), 12 );
        C20.numclass = 12;
        C20.spatialextent = ANYOF bands.spatialextent;
        C20.timestamp = ANYOF bands.timestamp;
    }
    v}

    Expressions are evaluated against an {!env} of argument bindings and
    process parameters, applying operators from the system-level
    registry.  A [SETOF] argument's attribute reference yields a
    [VSet]; passing a set to a {e variadic} operator splices it into
    individual arguments (so [composite(bands)] works as in the
    paper). *)

type expr =
  | Const of Gaea_adt.Value.t
  | Attr_of of string * string   (** [arg.attr] *)
  | Param of string              (** process parameter, bound per task *)
  | Anyof of expr                (** ANYOF set — an arbitrary element *)
  | Apply of string * expr list  (** operator application *)

type assertion =
  | Expr_true of expr            (** must evaluate to [VBool true] *)
  | Common_space of string       (** common(arg.<spatial-extent>) *)
  | Common_time of string        (** common(arg.<temporal-extent>) *)
  | Card_eq of string * int      (** card(arg) = n *)
  | Card_ge of string * int      (** card(arg) >= n *)

type mapping = {
  target : string;               (** output-class attribute *)
  rhs : expr;
}

type t = {
  assertions : assertion list;
  mappings : mapping list;
}

val make : assertions:assertion list -> mappings:mapping list -> t

(** Evaluation environment, supplied by the kernel. *)
type env = {
  arg_objects : string -> Gaea_adt.Value.t list option;
  (** objects bound to an argument: singleton for scalar args, any
      number for SETOF args; the values are the objects' attribute
      tuples rendered per attribute via [attr_value] *)
  attr_value : string -> int -> string -> (Gaea_adt.Value.t, Gaea_error.t) result;
  (** [attr_value arg i attr]: attribute of the i-th object of [arg] *)
  spatial_attr : string -> string option;
  (** spatial-extent attribute name of the argument's class *)
  temporal_attr : string -> string option;
  param : string -> Gaea_adt.Value.t option;
  apply : string -> Gaea_adt.Value.t list -> (Gaea_adt.Value.t, Gaea_error.t) result;
  (** operator application through the registry *)
  arity : string -> [ `Fixed of int | `Variadic ] option;
  (** operator arity, for set splicing *)
}

val eval : env -> expr -> (Gaea_adt.Value.t, Gaea_error.t) result

val check_assertion : env -> assertion -> (unit, Gaea_error.t) result
(** [Error] describes which guard failed and why. *)

val check_assertions : env -> t -> (unit, Gaea_error.t) result
val eval_mappings : env -> t -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result

val expr_to_string : expr -> string
val assertion_to_string : assertion -> string
val pp : output_class:string -> Format.formatter -> t -> unit
(** Renders in the paper's TEMPLATE syntax. *)

val free_params : t -> string list
(** Parameter names referenced anywhere, sorted, deduplicated. *)

val referenced_args : t -> string list
(** Argument names referenced anywhere. *)
