module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Box = Gaea_geo.Box
module Abstime = Gaea_geo.Abstime
module Interval = Gaea_geo.Interval
module Extent = Gaea_geo.Extent
module Synthetic = Gaea_raster.Synthetic
module Composite = Gaea_raster.Composite

let ( let* ) r f = Result.bind r f

let landsat_class = "landsat_tm_rect"
let land_cover_class = "land_cover"
let p20_name = "unsupervised-classification"

(* the common descriptive attributes of the paper's landcover class *)
let descriptive =
  [ ("area", Vtype.String);
    ("ref_system", Vtype.String);
    ("ref_unit", Vtype.String) ]

let extents = [ ("spatialextent", Vtype.Box); ("timestamp", Vtype.Abstime) ]

let default_extent =
  Extent.make
    (Box.make ~xmin:(-10.) ~ymin:10. ~xmax:30. ~ymax:35.)
    (Interval.instant (Abstime.of_ymd 1986 1 15))

(* ------------------------------------------------------------------ *)
(* Fig 3                                                               *)
(* ------------------------------------------------------------------ *)

let install_fig3 ?(k = 12) kernel =
  let* c1 =
    Schema.define ~name:landsat_class
      ~doc:"rectified Landsat TM band (paper's C1)"
      ~attributes:(descriptive @ [ ("band", Vtype.Int); ("data", Vtype.Image) ] @ extents)
      ()
  in
  let* () = Kernel.define_class kernel c1 in
  let* c20 =
    Schema.define ~name:land_cover_class
      ~doc:"land-cover classification (paper's C20)"
      ~attributes:
        (descriptive @ [ ("numclass", Vtype.Int); ("data", Vtype.Image) ] @ extents)
      ~derived_by:p20_name ()
  in
  let* () = Kernel.define_class kernel c20 in
  let open Template in
  let template =
    make
      ~assertions:
        [ Card_eq ("bands", 3);
          Common_space "bands";
          Common_time "bands" ]
      ~mappings:
        [ { target = "data";
            rhs =
              Apply
                ( "unsuperclassify",
                  [ Apply ("composite", [ Attr_of ("bands", "data") ]);
                    Param "k" ] ) };
          { target = "numclass"; rhs = Param "k" };
          { target = "spatialextent";
            rhs = Anyof (Attr_of ("bands", "spatialextent")) };
          { target = "timestamp"; rhs = Anyof (Attr_of ("bands", "timestamp")) };
          { target = "area"; rhs = Anyof (Attr_of ("bands", "area")) };
          { target = "ref_system";
            rhs = Anyof (Attr_of ("bands", "ref_system")) };
          { target = "ref_unit"; rhs = Anyof (Attr_of ("bands", "ref_unit")) } ]
  in
  let* p20 =
    Process.define_primitive ~name:p20_name
      ~doc:"Fig 3: derive LAND_COVER from three rectified TM bands"
      ~output_class:land_cover_class
      ~args:[ Process.setof_arg ~card_min:3 ~card_max:3 "bands" landsat_class ]
      ~params:[ ("k", Value.int k) ]
      ~template ()
  in
  Kernel.define_process kernel p20

let load_tm_bands kernel ~seed ?(nrow = 64) ?(ncol = 64) ?(n_bands = 3)
    ?extent () =
  let extent = Option.value extent ~default:default_extent in
  let scene =
    Synthetic.landsat_scene ~seed ~nrow ~ncol ~bands:n_bands ~extent ()
  in
  let bands = Composite.bands scene.Synthetic.composite in
  let rec insert acc i = function
    | [] -> Ok (List.rev acc)
    | img :: rest ->
      let* oid =
        Kernel.insert_object kernel ~cls:landsat_class
          [ ("area", Value.string "africa-west");
            ("ref_system", Value.string "long/lat");
            ("ref_unit", Value.string "degree");
            ("band", Value.int (i + 1));
            ("data", Value.image img);
            ("spatialextent", Value.box scene.Synthetic.extent.Extent.space);
            ( "timestamp",
              Value.abstime
                (Interval.start scene.Synthetic.extent.Extent.time) ) ]
      in
      insert (oid :: acc) (i + 1) rest
  in
  insert [] 0 bands

(* ------------------------------------------------------------------ *)
(* Vegetation: NDVI + change (Section 1, Fig 2 C6/C7/C8)               *)
(* ------------------------------------------------------------------ *)

let avhrr_class = "avhrr_band"
let ndvi_class = "ndvi_map"
let veg_change_class = "veg_change"
let p_ndvi = "ndvi-derivation"
let p_change_sub = "veg-change-subtract"
let p_change_div = "veg-change-divide"
let p_change_spca = "veg-change-spca"

let install_vegetation kernel =
  let* avhrr =
    Schema.define ~name:avhrr_class ~doc:"AVHRR channel (1 = red, 2 = NIR)"
      ~attributes:
        (descriptive @ [ ("channel", Vtype.Int); ("data", Vtype.Image) ] @ extents)
      ()
  in
  let* () = Kernel.define_class kernel avhrr in
  let* ndvi =
    Schema.define ~name:ndvi_class
      ~doc:"normalized difference vegetation index (paper's C6)"
      ~attributes:([ ("data", Vtype.Image) ] @ extents)
      ~derived_by:p_ndvi ()
  in
  let* () = Kernel.define_class kernel ndvi in
  let* change =
    Schema.define ~name:veg_change_class
      ~doc:"vegetation change between two dates (paper's C7/C8)"
      ~attributes:
        ([ ("method", Vtype.String); ("data", Vtype.Image) ] @ extents)
      ()
  in
  let* () = Kernel.define_class kernel change in
  let open Template in
  (* channel-1 (red) and channel-2 (NIR) bands must be picked correctly:
     assertions pin the channels so binding search assigns them right *)
  let chan arg n =
    Expr_true (Apply ("eq", [ Attr_of (arg, "channel"); Const (Value.int n) ]))
  in
  let same_space a b =
    Expr_true
      (Apply
         ( "box_overlaps",
           [ Attr_of (a, "spatialextent"); Attr_of (b, "spatialextent") ] ))
  in
  let same_time a b =
    Expr_true
      (Apply ("eq", [ Attr_of (a, "timestamp"); Attr_of (b, "timestamp") ]))
  in
  let* ndvi_proc =
    Process.define_primitive ~name:p_ndvi
      ~doc:"NDVI = (NIR - RED)/(NIR + RED) from AVHRR channels"
      ~output_class:ndvi_class
      ~args:
        [ Process.scalar_arg "red" avhrr_class;
          Process.scalar_arg "nir" avhrr_class ]
      ~template:
        (make
           ~assertions:
             [ chan "red" 1; chan "nir" 2; same_space "red" "nir";
               same_time "red" "nir" ]
           ~mappings:
             [ { target = "data";
                 rhs =
                   Apply
                     ("ndvi", [ Attr_of ("red", "data"); Attr_of ("nir", "data") ]) };
               { target = "spatialextent";
                 rhs = Attr_of ("red", "spatialextent") };
               { target = "timestamp"; rhs = Attr_of ("red", "timestamp") } ])
      ()
  in
  let* () = Kernel.define_process kernel ndvi_proc in
  (* y1 strictly earlier than y2, overlapping extents *)
  let earlier a b =
    Expr_true
      (Apply
         ( "lt",
           [ Apply
               ( "time_diff_days",
                 [ Attr_of (a, "timestamp"); Attr_of (b, "timestamp") ] );
             Const (Value.float 0.) ] ))
  in
  let change_args =
    [ Process.scalar_arg "y1" ndvi_class; Process.scalar_arg "y2" ndvi_class ]
  in
  let change_assertions =
    [ earlier "y1" "y2"; same_space "y1" "y2" ]
  in
  let change_common target_method data_rhs =
    make ~assertions:change_assertions
      ~mappings:
        [ { target = "method"; rhs = Const (Value.string target_method) };
          { target = "data"; rhs = data_rhs };
          { target = "spatialextent"; rhs = Attr_of ("y2", "spatialextent") };
          { target = "timestamp"; rhs = Attr_of ("y2", "timestamp") } ]
  in
  let open Template in
  let* sub =
    Process.define_primitive ~name:p_change_sub
      ~doc:"scientist 1: NDVI(1989) - NDVI(1988)"
      ~output_class:veg_change_class ~args:change_args
      ~template:
        (change_common "subtract"
           (Apply
              ("img_subtract", [ Attr_of ("y2", "data"); Attr_of ("y1", "data") ])))
      ()
  in
  let* () = Kernel.define_process kernel sub in
  let* div =
    Process.define_primitive ~name:p_change_div
      ~doc:"scientist 2: NDVI(1989) / NDVI(1988)"
      ~output_class:veg_change_class ~args:change_args
      ~template:
        (change_common "divide"
           (Apply
              ("img_divide", [ Attr_of ("y2", "data"); Attr_of ("y1", "data") ])))
      ()
  in
  let* () = Kernel.define_process kernel div in
  (* C7: standardized PCA change component (Eastman 1992), through the
     Fig 4 compound-operator network; PC2 carries the change signal *)
  let* spca =
    Process.define_primitive ~name:p_change_spca
      ~doc:"vegetation change as the 2nd standardized principal component"
      ~output_class:veg_change_class ~args:change_args
      ~template:
        (change_common "spca"
           (Apply
              ( "composite_band",
                [ Apply
                    ( "spca",
                      [ Apply
                          ( "composite",
                            [ Attr_of ("y1", "data"); Attr_of ("y2", "data") ] );
                        Const (Value.int 2) ] );
                  Const (Value.int 1) ] )))
      ()
  in
  let* () = Kernel.define_process kernel spca in
  (* the Fig 2 concepts *)
  let concepts = Kernel.concepts kernel in
  let* _ =
    Concept.define concepts ~name:"NDVI"
      ~doc:"vegetation index concept (maps to {C6})"
      ~members:[ ndvi_class ] ()
  in
  let* _ =
    Concept.define concepts ~name:"Vegetation Change"
      ~doc:"change concept (maps to {C7, C8})"
      ~members:[ veg_change_class ] ()
  in
  Ok ()

let load_avhrr_year kernel ~seed ~year ?(nrow = 64) ?(ncol = 64)
    ?(vegetation_shift = 0.) () =
  let red, nir = Synthetic.red_nir_pair ~seed ~nrow ~ncol ~vegetation_shift () in
  let ts = Abstime.of_ymd year 7 1 in
  let space = Box.make ~xmin:(-10.) ~ymin:10. ~xmax:30. ~ymax:35. in
  let insert channel img =
    Kernel.insert_object kernel ~cls:avhrr_class
      [ ("area", Value.string "africa-west");
        ("ref_system", Value.string "long/lat");
        ("ref_unit", Value.string "degree");
        ("channel", Value.int channel);
        ("data", Value.image img);
        ("spatialextent", Value.box space);
        ("timestamp", Value.abstime ts) ]
  in
  let* red_oid = insert 1 red in
  let* nir_oid = insert 2 nir in
  Ok (red_oid, nir_oid)

(* ------------------------------------------------------------------ *)
(* Deserts                                                             *)
(* ------------------------------------------------------------------ *)

let rainfall_class = "rainfall_map"
let desert_class = "desert_map"
let p_desert_250 = "desert-rainfall-250"
let p_desert_200 = "desert-rainfall-200"

let desert_process ~name ~cutoff =
  let open Template in
  Process.define_primitive ~name
    ~doc:
      (Printf.sprintf "desertic region: annual rainfall below %g mm" cutoff)
    ~output_class:desert_class
    ~args:[ Process.scalar_arg "rain" rainfall_class ]
    ~params:[ ("cutoff", Value.float cutoff) ]
    ~template:
      (make ~assertions:[]
         ~mappings:
           [ { target = "cutoff_mm"; rhs = Param "cutoff" };
             { target = "data";
               rhs =
                 Apply
                   ( "img_threshold_below",
                     [ Attr_of ("rain", "data"); Param "cutoff" ] ) };
             { target = "spatialextent";
               rhs = Attr_of ("rain", "spatialextent") };
             { target = "timestamp"; rhs = Attr_of ("rain", "timestamp") } ])
    ()

let install_deserts kernel =
  let* rain =
    Schema.define ~name:rainfall_class ~doc:"annual precipitation in mm"
      ~attributes:([ ("data", Vtype.Image) ] @ extents)
      ()
  in
  let* () = Kernel.define_class kernel rain in
  let* desert =
    Schema.define ~name:desert_class
      ~doc:"desertic-region mask (1 = desert)"
      ~attributes:
        ([ ("cutoff_mm", Vtype.Float); ("data", Vtype.Image) ] @ extents)
      ()
  in
  let* () = Kernel.define_class kernel desert in
  let* p250 = desert_process ~name:p_desert_250 ~cutoff:250. in
  let* () = Kernel.define_process kernel p250 in
  let* p200 = desert_process ~name:p_desert_200 ~cutoff:200. in
  let* () = Kernel.define_process kernel p200 in
  (* the Fig 2 specialization hierarchy *)
  let concepts = Kernel.concepts kernel in
  let* _ = Concept.define concepts ~name:"Desert" ~doc:"imprecise concept" () in
  let* _ =
    Concept.define concepts ~name:"Hot Trade-Wind Desert"
      ~doc:"high pressure areas, rainfall < 250 mm/year"
      ~members:[ desert_class ] ()
  in
  let* _ =
    Concept.define concepts ~name:"Ice/Snow Desert"
      ~doc:"polar lands such as Greenland and Antarctica" ()
  in
  let* () = Concept.add_isa concepts ~sub:"Hot Trade-Wind Desert" ~super:"Desert" in
  Concept.add_isa concepts ~sub:"Ice/Snow Desert" ~super:"Desert"

let load_rainfall kernel ~seed ?(nrow = 64) ?(ncol = 64) () =
  let img = Synthetic.rainfall_map ~seed ~nrow ~ncol () in
  Kernel.insert_object kernel ~cls:rainfall_class
    [ ("data", Value.image img);
      ("spatialextent", Value.box (Box.make ~xmin:(-10.) ~ymin:10. ~xmax:30. ~ymax:35.));
      ("timestamp", Value.abstime (Abstime.of_ymd 1986 1 1)) ]

(* ------------------------------------------------------------------ *)
(* Fig 5: compound land-change-detection                               *)
(* ------------------------------------------------------------------ *)

let change_image_class = "tm_change_image"
let land_cover_changes_class = "land_cover_changes"
let p_spca_step = "tm-spca-change"
let p_classify_change = "classify-change"
let p_land_change = "land-change-detection"

let install_fig5 kernel =
  let* change_img =
    Schema.define ~name:change_image_class
      ~doc:"SPCA change component of two TM epochs"
      ~attributes:([ ("data", Vtype.Image) ] @ extents)
      ()
  in
  let* () = Kernel.define_class kernel change_img in
  let* changes =
    Schema.define ~name:land_cover_changes_class
      ~doc:"classified land-cover changes (Fig 5 output)"
      ~attributes:
        (descriptive @ [ ("numclass", Vtype.Int); ("data", Vtype.Image) ] @ extents)
      ~derived_by:p_land_change ()
  in
  let* () = Kernel.define_class kernel changes in
  let open Template in
  (* step 1: SPCA over all provided TM bands (two epochs together) *)
  let* spca_step =
    Process.define_primitive ~name:p_spca_step
      ~doc:"Fig 5 step 1: standardized PCA change image from TM bands"
      ~output_class:change_image_class
      ~args:[ Process.setof_arg ~card_min:2 "bands" landsat_class ]
      ~template:
        (make
           ~assertions:[ Card_ge ("bands", 2); Common_space "bands" ]
           ~mappings:
             [ { target = "data";
                 rhs =
                   Apply
                     ( "composite_band",
                       [ Apply
                           ( "spca",
                             [ Apply ("composite", [ Attr_of ("bands", "data") ]);
                               Const (Value.int 2) ] );
                         Const (Value.int 1) ] ) };
               { target = "spatialextent";
                 rhs = Anyof (Attr_of ("bands", "spatialextent")) };
               { target = "timestamp";
                 rhs = Anyof (Attr_of ("bands", "timestamp")) } ])
      ()
  in
  let* () = Kernel.define_process kernel spca_step in
  (* step 2: unsupervised classification of the change image *)
  let* classify =
    Process.define_primitive ~name:p_classify_change
      ~doc:"Fig 5 step 2: unsupervised classification of the change image"
      ~output_class:land_cover_changes_class
      ~args:[ Process.scalar_arg "change" change_image_class ]
      ~params:[ ("k", Value.int 5) ]
      ~template:
        (make ~assertions:[]
           ~mappings:
             [ { target = "data";
                 rhs =
                   Apply
                     ( "unsuperclassify",
                       [ Apply ("composite", [ Attr_of ("change", "data") ]);
                         Param "k" ] ) };
               { target = "numclass"; rhs = Param "k" };
               { target = "area"; rhs = Const (Value.string "africa-west") };
               { target = "ref_system"; rhs = Const (Value.string "long/lat") };
               { target = "ref_unit"; rhs = Const (Value.string "degree") };
               { target = "spatialextent";
                 rhs = Attr_of ("change", "spatialextent") };
               { target = "timestamp"; rhs = Attr_of ("change", "timestamp") } ])
      ()
  in
  let* () = Kernel.define_process kernel classify in
  let* compound =
    Process.define_compound ~name:p_land_change
      ~doc:"Fig 5: land-change detection = SPCA then classification"
      ~output_class:land_cover_changes_class
      ~args:[ Process.setof_arg ~card_min:2 "bands" landsat_class ]
      ~steps:
        [ { Process.step_process = p_spca_step;
            step_inputs = [ ("bands", Process.From_arg "bands") ] };
          { Process.step_process = p_classify_change;
            step_inputs = [ ("change", Process.From_step 0) ] } ]
      ()
  in
  Kernel.define_process kernel compound

let install_all kernel =
  let* () = install_fig3 kernel in
  let* () = install_vegetation kernel in
  let* () = install_deserts kernel in
  install_fig5 kernel
