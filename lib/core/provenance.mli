(** Provenance: the task log, its lineage indexes, the logical clock,
    and the (cached) class-derivation net view.

    Emits [Task_recorded] when a task is appended ({!record_task});
    restores are event-silent.  The memoized net view is dropped by
    subscription when a class or process definition changes. *)

module Oid = Gaea_storage.Oid

type t

val create : bus:Events.bus -> t

val record_task :
  t -> process:string -> version:int
  -> inputs:(string * Oid.t list) list
  -> params:(string * Gaea_adt.Value.t) list
  -> outputs:Oid.t list -> output_class:string -> Task.t
(** Advance the clock, allocate a task id, append and index the task.
    Emits [Task_recorded]. *)

val restore_task : t -> Task.t -> (unit, Gaea_error.t) result
(** Append a previously recorded task verbatim; errors on duplicate
    ids.  Advances the task counter and clock past it.  Event-silent. *)

val tasks : t -> Task.t list
(** Chronological. *)

val find_task : t -> int -> Task.t option
val task_producing : t -> Oid.t -> Task.t option
val tasks_using : t -> Oid.t -> Task.t list
val clock : t -> int

(** {2 Derivation net} *)

type net_view = {
  net : Gaea_petri.Net.t;
  place_of_class : string -> Gaea_petri.Net.place option;
  class_of_place : Gaea_petri.Net.place -> string option;
  process_of_transition : Gaea_petri.Net.transition -> (string * int) option;
}

val derivation_net :
  t
  -> classes:(unit -> Schema.t list)
  -> processes:(unit -> Process.t list)
  -> guard:(Process.t -> available:(string * Oid.t list) list -> bool)
  -> net_view
(** Build (or return the memoized) net: a place per class, a transition
    per latest-version primitive process.  [guard] decides transition
    enabledness from a candidate binding — the kernel facade injects
    the deriver's binding search here, keeping this module independent
    of evaluation.  Callers must pass stable closures: the memoized
    view keeps the ones from the building call. *)
