module Store = Gaea_storage.Store

type t = {
  store : Store.t;
  defs : (string, Schema.t) Hashtbl.t;
  bus : Events.bus;
}

let create ~store ~bus = { store; defs = Hashtbl.create 32; bus }

let define t (cls : Schema.t) =
  let name = cls.Schema.c_name in
  if Hashtbl.mem t.defs name then
    Error (Gaea_error.Duplicate { kind = "class"; name })
  else
    match Store.create_table t.store ~name (Schema.storage_attrs cls) with
    | Error e -> Error (Gaea_error.Storage_error e)
    | Ok _table ->
      Hashtbl.add t.defs name cls;
      Events.emit t.bus (Events.Class_defined name);
      Ok ()

let mem t name = Hashtbl.mem t.defs name
let find t name = Hashtbl.find_opt t.defs name

let classes t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.defs []
  |> List.sort (fun a b -> compare a.Schema.c_name b.Schema.c_name)

let table t name =
  if Hashtbl.mem t.defs name then Store.table t.store name else None
