(** Whole-kernel persistence — the data-{e sharing} story of the paper.

    A saved kernel carries everything needed for another scientist to
    re-derive and verify every result: class definitions, the concept
    hierarchy, every process {e version} (templates included — the
    derivation procedures themselves travel with the data), the task
    log, and all stored objects.  The text format is S-expressions; the
    only thing not carried is the operator registry, which is code
    (both sides must run the same Gaea build — the paper's "processes
    that are not locally available" are listed as future work, and ours
    too). *)

val save : Kernel.t -> string

val load : string -> (Kernel.t, Gaea_error.t) result
(** Rebuilds a fresh kernel (built-in registry) and replays the saved
    metadata and data.  After loading, every saved task must verify:
    [Lineage.verify_object] on any object reproduces it exactly. *)

val save_to_file : Kernel.t -> string -> (unit, Gaea_error.t) result
val load_from_file : string -> (Kernel.t, Gaea_error.t) result
