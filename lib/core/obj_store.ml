module Store = Gaea_storage.Store
module Table = Gaea_storage.Table
module Tuple = Gaea_storage.Tuple
module Oid = Gaea_storage.Oid

type t = {
  store : Store.t;
  catalog : Catalog.t;
  oid_class : (Oid.t, string) Hashtbl.t;
  bus : Events.bus;
}

let create ~store ~catalog ~bus =
  { store; catalog; oid_class = Hashtbl.create 256; bus }

let insert t ~cls pairs =
  match Catalog.find t.catalog cls with
  | None -> Error (Gaea_error.Unknown_class cls)
  | Some def ->
    let attrs = Schema.attr_names def in
    let missing = List.filter (fun a -> not (List.mem_assoc a pairs)) attrs in
    let extra = List.filter (fun (a, _) -> not (List.mem a attrs)) pairs in
    if missing <> [] then
      Gaea_error.err
        (Printf.sprintf "%s: missing attribute(s) %s" cls
           (String.concat ", " missing))
    else if extra <> [] then
      Gaea_error.err
        (Printf.sprintf "%s: unknown attribute(s) %s" cls
           (String.concat ", " (List.map fst extra)))
    else begin
      let values = List.map (fun a -> List.assoc a pairs) attrs in
      match Store.insert_values t.store ~table:cls values with
      | Error e -> Error (Gaea_error.Storage_error e)
      | Ok oid ->
        Hashtbl.replace t.oid_class oid cls;
        Events.emit t.bus (Events.Object_inserted { cls; oid });
        Ok oid
    end

let insert_with_oid t ~cls oid pairs =
  match Catalog.find t.catalog cls with
  | None -> Error (Gaea_error.Unknown_class cls)
  | Some def ->
    let attrs = Schema.attr_names def in
    let missing = List.filter (fun a -> not (List.mem_assoc a pairs)) attrs in
    if missing <> [] then
      Gaea_error.err
        (Printf.sprintf "%s: missing attribute(s) %s" cls
           (String.concat ", " missing))
    else begin
      let values = List.map (fun a -> List.assoc a pairs) attrs in
      match Store.insert_with_oid t.store ~table:cls oid values with
      | Error e -> Error (Gaea_error.Storage_error e)
      | Ok () ->
        Hashtbl.replace t.oid_class oid cls;
        Ok ()
    end

let update t ~cls oid pairs =
  match Hashtbl.find_opt t.oid_class oid with
  | None -> Error (Gaea_error.Unknown_object oid)
  | Some actual when actual <> cls -> Error (Gaea_error.Wrong_class { oid; cls })
  | Some _ ->
    (match Catalog.find t.catalog cls, Catalog.table t.catalog cls with
     | Some def, Some tab ->
       let attrs = Schema.attr_names def in
       let extra = List.filter (fun (a, _) -> not (List.mem a attrs)) pairs in
       if extra <> [] then
         Gaea_error.err
           (Printf.sprintf "%s: unknown attribute(s) %s" cls
              (String.concat ", " (List.map fst extra)))
       else begin
         match Table.get tab oid with
         | None ->
           Error
             (Gaea_error.Storage_error
                (Printf.sprintf "update of %s #%d: tuple missing" cls oid))
         | Some old ->
           let current = List.combine attrs (Tuple.values old) in
           let values =
             List.map
               (fun a ->
                 match List.assoc_opt a pairs with
                 | Some v -> v
                 | None -> List.assoc a current)
               attrs
           in
           (match Table.replace tab oid values with
            | Error e -> Error (Gaea_error.Storage_error e)
            | Ok () ->
              Events.emit t.bus (Events.Object_updated { cls; oid });
              Ok ())
       end
     | _ -> Error (Gaea_error.Unknown_class cls))

let delete t ~cls oid =
  match Hashtbl.find_opt t.oid_class oid with
  | None -> Error (Gaea_error.Unknown_object oid)
  | Some actual when actual <> cls -> Error (Gaea_error.Wrong_class { oid; cls })
  | Some _ ->
    if Store.delete t.store ~table:cls oid then begin
      Hashtbl.remove t.oid_class oid;
      Events.emit t.bus (Events.Object_deleted { cls; oid });
      Ok ()
    end
    else
      (* oid_class said it was there: the table disagrees *)
      Error
        (Gaea_error.Storage_error
           (Printf.sprintf "delete of %s #%d failed" cls oid))

let tuple t ~cls oid = Store.get t.store ~table:cls oid

let attr t ~cls oid attr =
  match Catalog.table t.catalog cls with
  | None -> None
  | Some tab -> Table.get_attr tab oid attr

let oids_of_class t cls =
  match Catalog.table t.catalog cls with
  | None -> []
  | Some tab ->
    List.rev (Table.fold tab ~init:[] ~f:(fun acc oid _ -> oid :: acc))

let class_of t oid = Hashtbl.find_opt t.oid_class oid

let count t cls =
  match Catalog.table t.catalog cls with
  | None -> 0
  | Some tab -> Table.row_count tab

let mem t oid = Hashtbl.mem t.oid_class oid
