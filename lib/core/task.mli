(** Tasks (paper Section 2.1.2): "the instantiation of a process with
    input data objects [...] recorded as a relationship among instances
    of non-primitive classes" — the provenance record of every derived
    object. *)

type t = {
  task_id : int;
  process : string;
  process_version : int;
  inputs : (string * Gaea_storage.Oid.t list) list;
  (** per process argument, the input object OIDs *)
  params : (string * Gaea_adt.Value.t) list;
  (** parameter values in force (copied from the process) *)
  outputs : Gaea_storage.Oid.t list;
  output_class : string;
  clock : int;
  (** logical timestamp (kernel-wide, monotone) *)
}

val input_oids : t -> Gaea_storage.Oid.t list
(** All inputs, flattened, sorted, deduplicated. *)

val to_sexp : t -> Gaea_adt.Sexp.t
val of_sexp : Gaea_adt.Sexp.t -> (t, Gaea_error.t) result
val pp : Format.formatter -> t -> unit
