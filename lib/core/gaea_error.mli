(** Typed errors for the Gaea kernel and query layers.

    Every fallible kernel API returns [('a, Gaea_error.t) result].  The
    constructors carry enough structure for callers to dispatch on the
    failure class (e.g. the CLI distinguishing "unknown oid" from
    "wrong class" on delete); {!to_string} renders the human-readable
    message.  String-payload constructors ([Invalid], [Eval_error], …)
    carry the full message verbatim so legacy call sites migrate
    without changing their wording. *)

type t =
  | Unknown_class of string
  | Unknown_process of { name : string; version : int option }
  | Unknown_object of int
  | Wrong_class of { oid : int; cls : string }
      (** The object exists but under a different class than named. *)
  | Unknown_concept of string
  | Unknown_task of int
  | Duplicate of { kind : string; name : string }
      (** [kind] is "class", "process", "concept", "task", … *)
  | Arity_mismatch of string
      (** Argument-cardinality violations (card_min/card_max). *)
  | Assertion_failed of string
      (** A process template assertion did not hold. *)
  | Type_error of string
  | Eval_error of string  (** Operator application / mapping evaluation. *)
  | Parse_error of string  (** GaeaQL or persisted-sexp syntax. *)
  | Storage_error of string  (** Wrapped [Gaea_storage] failure. *)
  | Io_error of string  (** File-system failure (persist, file-based data). *)
  | Not_derivable of string
      (** The derivation manager found no plan for a request. *)
  | Invalid of string  (** Catch-all for invariant violations. *)
  | Context of string * t
      (** [Context (where, e)]: [e] occurred while doing [where]. *)

val to_string : t -> string
(** Human-readable message; [Context] renders as ["where: inner"]. *)

val pp : Format.formatter -> t -> unit

val err : string -> ('a, t) result
(** [err msg] is [Error (Invalid msg)] — the migration helper for call
    sites whose message text is the whole story. *)

val with_context : string -> ('a, t) result -> ('a, t) result
(** Wrap a result's error in {!Context}. *)
