module Image = Gaea_raster.Image

type stats = {
  mutable computations : int;
  mutable pixels_computed : int;
  mutable overwrites : int;
  mutable files_saved : int;
  mutable failed_recalls : int;
}

type t = {
  files : (string, Image.t) Hashtbl.t;
  memory : (string * string, unit) Hashtbl.t; (* (scientist, file) *)
  stats : stats;
}

let create () =
  { files = Hashtbl.create 64;
    memory = Hashtbl.create 64;
    stats =
      { computations = 0; pixels_computed = 0; overwrites = 0;
        files_saved = 0; failed_recalls = 0 } }

let stats t = t.stats

let save t ~name img =
  if Hashtbl.mem t.files name then t.stats.overwrites <- t.stats.overwrites + 1;
  Hashtbl.replace t.files name img;
  t.stats.files_saved <- t.stats.files_saved + 1

let load t name = Hashtbl.find_opt t.files name

let file_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.files [] |> List.sort compare

let file_count t = Hashtbl.length t.files

let remembers t ~scientist name = Hashtbl.mem t.memory (scientist, name)

let run_analysis t ~scientist ~output ~inputs f =
  if remembers t ~scientist output then
    match load t output with
    | Some img -> Ok img
    | None ->
      (* the file was overwritten or removed by someone else *)
      t.stats.failed_recalls <- t.stats.failed_recalls + 1;
      Error (Gaea_error.Io_error (output ^ ": file vanished"))
  else begin
    let rec read acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest ->
        (match load t name with
         | Some img -> read (img :: acc) rest
         | None ->
           t.stats.failed_recalls <- t.stats.failed_recalls + 1;
           Error (Gaea_error.Io_error (name ^ ": no such file")))
    in
    match read [] inputs with
    | Error _ as e -> e
    | Ok imgs ->
      let result = f imgs in
      t.stats.computations <- t.stats.computations + 1;
      t.stats.pixels_computed <-
        t.stats.pixels_computed
        + List.fold_left (fun acc i -> acc + Image.size i) 0 imgs;
      save t ~name:output result;
      Hashtbl.replace t.memory (scientist, output) ();
      Ok result
  end
