type t = {
  mutable executions : int;
  mutable retrievals : int;
  mutable interpolations : int;
  mutable pixels_processed : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_admissions : int;
  mutable cache_evictions : int;
  mutable refreshes : int;
}

let create () =
  { executions = 0; retrievals = 0; interpolations = 0; pixels_processed = 0;
    cache_hits = 0; cache_misses = 0; cache_admissions = 0; cache_evictions = 0;
    refreshes = 0 }

let reset t =
  t.executions <- 0;
  t.retrievals <- 0;
  t.interpolations <- 0;
  t.pixels_processed <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.cache_admissions <- 0;
  t.cache_evictions <- 0;
  t.refreshes <- 0

let attach bus t =
  Events.subscribe bus ~name:"metrics" (function
    | Events.Task_recorded _ -> t.executions <- t.executions + 1
    | Events.Cache_hit _ -> t.cache_hits <- t.cache_hits + 1
    | Events.Cache_miss _ -> t.cache_misses <- t.cache_misses + 1
    | Events.Cache_admitted _ -> t.cache_admissions <- t.cache_admissions + 1
    | Events.Cache_evicted { entries; _ } ->
      t.cache_evictions <- t.cache_evictions + entries
    | Events.Object_refreshed _ -> t.refreshes <- t.refreshes + 1
    | _ -> ())
