(** The process registry: versioned process definitions.

    Emits [Process_defined] for a new name and [Process_versioned]
    when an existing name gains a version — the result cache and the
    derivation-net cache invalidate themselves by subscription. *)

type t

val create : catalog:Catalog.t -> bus:Events.bus -> t

val define : t -> Process.t -> (unit, Gaea_error.t) result
(** Registers under (name, version); errors on duplicates, unknown
    argument/output classes, or (for compounds) unknown
    sub-processes. *)

val versions : t -> string -> Process.t list
(** Ascending version order. *)

val find : t -> ?version:int -> string -> Process.t option
(** Latest version when [version] is omitted. *)

val latest_version : t -> string -> int option
(** Highest stored version of a process name, if any. *)

val latest : t -> Process.t list
(** Latest version of each process, sorted by name. *)

val all_versions : t -> Process.t list

val fold_names : t -> init:'a -> f:('a -> string -> Process.t list -> 'a) -> 'a
(** Fold over names with their version lists (unspecified order). *)
