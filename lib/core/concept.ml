type concept = {
  name : string;
  members : string list;
  doc : string;
}

type t = {
  concepts : (string, concept) Hashtbl.t;
  (* isa edges: sub -> supers, super -> subs *)
  up : (string, string list) Hashtbl.t;
  down : (string, string list) Hashtbl.t;
}

let create () =
  { concepts = Hashtbl.create 32;
    up = Hashtbl.create 32;
    down = Hashtbl.create 32 }

let normalize members = List.sort_uniq compare members

let define t ~name ?(doc = "") ?(members = []) () =
  if name = "" then Gaea_error.err "concept: empty name"
  else if Hashtbl.mem t.concepts name then
    Gaea_error.err (Printf.sprintf "concept %s already defined" name)
  else begin
    let c = { name; members = normalize members; doc } in
    Hashtbl.add t.concepts name c;
    Ok c
  end

let find t name = Hashtbl.find_opt t.concepts name
let mem t name = Hashtbl.mem t.concepts name

let add_member t ~concept cls =
  match find t concept with
  | None -> Gaea_error.err (Printf.sprintf "unknown concept %s" concept)
  | Some c ->
    Hashtbl.replace t.concepts concept
      { c with members = normalize (cls :: c.members) };
    Ok ()

let edges tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key)

let reachable tbl start =
  let visited = Hashtbl.create 16 in
  let rec go name =
    List.iter
      (fun next ->
        if not (Hashtbl.mem visited next) then begin
          Hashtbl.add visited next ();
          go next
        end)
      (edges tbl name)
  in
  go start;
  Hashtbl.fold (fun k () acc -> k :: acc) visited [] |> List.sort compare

let add_isa t ~sub ~super =
  if not (mem t sub) then Gaea_error.err (Printf.sprintf "unknown concept %s" sub)
  else if not (mem t super) then
    Gaea_error.err (Printf.sprintf "unknown concept %s" super)
  else if sub = super then Gaea_error.err "ISA self-loop"
  else if List.mem super (edges t.up sub) then
    Gaea_error.err (Printf.sprintf "%s ISA %s already present" sub super)
  else if List.mem sub (reachable t.up super) then
    Gaea_error.err
      (Printf.sprintf "%s ISA %s would create a cycle in the hierarchy" sub
         super)
  else begin
    Hashtbl.replace t.up sub (super :: edges t.up sub);
    Hashtbl.replace t.down super (sub :: edges t.down super);
    Ok ()
  end

let all t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.concepts []
  |> List.sort (fun a b -> compare a.name b.name)

let parents t name = List.sort compare (edges t.up name)
let children t name = List.sort compare (edges t.down name)
let ancestors t name = reachable t.up name
let descendants t name = reachable t.down name

let leaves t name =
  if not (mem t name) then []
  else begin
    let nodes = name :: descendants t name in
    List.filter (fun n -> edges t.down n = []) nodes |> List.sort compare
  end

let classes_of t name =
  if not (mem t name) then []
  else begin
    let nodes = name :: descendants t name in
    List.concat_map
      (fun n -> match find t n with Some c -> c.members | None -> [])
      nodes
    |> List.sort_uniq compare
  end

let concepts_of_class t cls =
  Hashtbl.fold
    (fun name c acc -> if List.mem cls c.members then name :: acc else acc)
    t.concepts []
  |> List.sort compare

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph concepts {\n  rankdir=BT;\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=ellipse];\n" c.name);
      List.iter
        (fun cls ->
          Buffer.add_string buf
            (Printf.sprintf
               "  \"class:%s\" [shape=box, style=dashed, label=\"%s\"];\n"
               cls cls);
          Buffer.add_string buf
            (Printf.sprintf "  \"class:%s\" -> \"%s\" [style=dashed];\n" cls
               c.name))
        c.members)
    (all t);
  Hashtbl.iter
    (fun sub supers ->
      List.iter
        (fun super ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"ISA\"];\n" sub super))
        supers)
    t.up;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
