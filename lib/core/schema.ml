module Vtype = Gaea_adt.Vtype

type attribute = {
  a_name : string;
  a_type : Vtype.t;
  a_doc : string;
}

type kind =
  | Base
  | Derived of string

type t = {
  c_name : string;
  attributes : attribute list;
  spatial_attr : string option;
  temporal_attr : string option;
  kind : kind;
  c_doc : string;
}

let find_attr attrs name = List.find_opt (fun a -> a.a_name = name) attrs

let resolve_extent attrs ~given ~conventional ~expected ~what =
  match given with
  | Some name ->
    (match find_attr attrs name with
     | None -> Gaea_error.err (Printf.sprintf "%s attribute %s not declared" what name)
     | Some a ->
       if Vtype.equal a.a_type expected then Ok (Some name)
       else
         Gaea_error.err
           (Printf.sprintf "%s attribute %s must have type %s, has %s" what
              name (Vtype.to_string expected) (Vtype.to_string a.a_type)))
  | None ->
    (match find_attr attrs conventional with
     | Some a when Vtype.equal a.a_type expected -> Ok (Some conventional)
     | Some _ | None -> Ok None)

let define ~name ?(doc = "") ~attributes ?spatial ?temporal ?derived_by () =
  if name = "" then Gaea_error.err "class: empty name"
  else if attributes = [] then Gaea_error.err (name ^ ": no attributes")
  else begin
    let attrs =
      List.map (fun (n, ty) -> { a_name = n; a_type = ty; a_doc = "" }) attributes
    in
    let rec dup_check seen = function
      | [] -> Ok ()
      | a :: rest ->
        if a.a_name = "" then Gaea_error.err (name ^ ": empty attribute name")
        else if List.mem a.a_name seen then
          Gaea_error.err (Printf.sprintf "%s: duplicate attribute %s" name a.a_name)
        else dup_check (a.a_name :: seen) rest
    in
    match dup_check [] attrs with
    | Error _ as e -> e
    | Ok () ->
      (match
         resolve_extent attrs ~given:spatial ~conventional:"spatialextent"
           ~expected:Vtype.Box ~what:"spatial"
       with
       | Error _ as e -> e
       | Ok spatial_attr ->
         (match
            resolve_extent attrs ~given:temporal ~conventional:"timestamp"
              ~expected:Vtype.Abstime ~what:"temporal"
          with
          | Error _ as e -> e
          | Ok temporal_attr ->
            Ok
              { c_name = name;
                attributes = attrs;
                spatial_attr;
                temporal_attr;
                kind =
                  (match derived_by with
                   | None -> Base
                   | Some p -> Derived p);
                c_doc = doc }))
  end

let is_base t = t.kind = Base

let is_derived t =
  match t.kind with
  | Derived _ -> true
  | Base -> false

let derived_by t =
  match t.kind with
  | Derived p -> Some p
  | Base -> None

let attribute t name = find_attr t.attributes name
let attr_type t name = Option.map (fun a -> a.a_type) (attribute t name)
let attr_names t = List.map (fun a -> a.a_name) t.attributes

let storage_attrs t = List.map (fun a -> (a.a_name, a.a_type)) t.attributes

let pp fmt t =
  let is_extent n = Some n = t.spatial_attr || Some n = t.temporal_attr in
  Format.fprintf fmt "@[<v 2>CLASS %s (" t.c_name;
  Format.fprintf fmt "@ ATTRIBUTES:";
  List.iter
    (fun a ->
      if not (is_extent a.a_name) then
        Format.fprintf fmt "@   %s = %s;" a.a_name (Vtype.to_string a.a_type))
    t.attributes;
  (match t.spatial_attr with
   | Some n -> Format.fprintf fmt "@ SPATIAL EXTENT:@   %s = box;" n
   | None -> ());
  (match t.temporal_attr with
   | Some n -> Format.fprintf fmt "@ TEMPORAL EXTENT:@   %s = abstime;" n
   | None -> ());
  (match t.kind with
   | Derived p -> Format.fprintf fmt "@ DERIVED BY: %s" p
   | Base -> ());
  Format.fprintf fmt "@]@ )"
