(* The refresh subsystem: incremental recomputation of stale derived
   objects.

   Staleness is event-driven, like the result cache: the subscriber
   turns update/delete/re-version/class-mutation events into a
   per-object dirty set, propagated forward through the provenance
   graph ([Provenance.tasks_using]).  [refresh] then recomputes only
   the dirty subgraph, wave by wave in topological order: within a
   wave the pure evaluation half runs on the domain pool, while
   commits — in-place object updates, provenance, cache admission,
   events — run strictly in producing-task order on the calling
   domain, so values, task ids and the event log are identical to a
   full re-derivation at any pool size. *)

module Oid = Gaea_storage.Oid

type t = {
  objects : Obj_store.t;
  procs : Proc_registry.t;
  prov : Provenance.t;
  deriver : Deriver.t;
  metrics : Metrics.t;
  bus : Events.bus;
  dirty : (Oid.t, unit) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Staleness marking (the single definition GA033 shares)              *)
(* ------------------------------------------------------------------ *)

(* An object is stale iff it is live, was produced by a recorded task,
   and sits in the dirty set — i.e. some transitive input was updated
   or deleted, or its process was superseded, since its task ran. *)
let rec mark t oid =
  if
    Obj_store.mem t.objects oid
    && (not (Hashtbl.mem t.dirty oid))
    && Provenance.task_producing t.prov oid <> None
  then begin
    Hashtbl.replace t.dirty oid ();
    mark_consumers t oid
  end

and mark_consumers t oid =
  List.iter
    (fun (task : Task.t) -> List.iter (mark t) task.Task.outputs)
    (Provenance.tasks_using t.prov oid)

let mark_process t name version =
  List.iter
    (fun (task : Task.t) ->
      if task.Task.process = name && task.Task.process_version < version then
        List.iter (mark t) task.Task.outputs)
    (Provenance.tasks t.prov)

let mark_class t cls =
  List.iter
    (fun (task : Task.t) ->
      if
        List.exists
          (fun oid -> Obj_store.class_of t.objects oid = Some cls)
          (Task.input_oids task)
      then List.iter (mark t) task.Task.outputs)
    (Provenance.tasks t.prov)

let create ~objects ~procs ~prov ~deriver ~metrics ~bus =
  let t =
    { objects; procs; prov; deriver; metrics; bus; dirty = Hashtbl.create 64 }
  in
  Events.subscribe bus ~name:"refresh" (function
    | Events.Object_updated { oid; _ } -> mark_consumers t oid
    | Events.Object_deleted { oid; _ } ->
      (* the object itself is gone, not stale; its consumers are *)
      Hashtbl.remove t.dirty oid;
      mark_consumers t oid
    | Events.Process_versioned { name; version } -> mark_process t name version
    | Events.Class_mutated cls -> mark_class t cls
    | _ -> ());
  t

let is_stale t oid = Hashtbl.mem t.dirty oid && Obj_store.mem t.objects oid

let stale t =
  Hashtbl.fold
    (fun oid () acc -> if Obj_store.mem t.objects oid then oid :: acc else acc)
    t.dirty []
  |> List.sort Int.compare

(* ------------------------------------------------------------------ *)
(* The refresh scheduler                                               *)
(* ------------------------------------------------------------------ *)

type report = {
  refreshed : int;  (** objects recomputed in place *)
  skipped : int;  (** stale objects left stale (see [skip_reasons]) *)
  remaining : int;  (** dirty-set size after the run *)
  tasks : Task.t list;  (** new provenance tasks, in commit order *)
  skip_reasons : (Oid.t * string) list;
}

(* one schedulable unit: a producing task whose outputs are stale *)
type node = {
  n_task : Task.t;
  n_proc : Process.t option;  (* latest version; None → unrefreshable *)
  mutable n_deps : int list;  (* producing task ids of stale inputs *)
}

let refresh ?only t =
  (* -- the work set: stale oids, optionally a target slice plus its
     stale upstream closure (refreshing a target under stale ancestors
     would bake stale values into a "fresh" result) -- *)
  let all_stale = stale t in
  let work = Hashtbl.create 32 in
  (match only with
   | None -> List.iter (fun oid -> Hashtbl.replace work oid ()) all_stale
   | Some targets ->
     let rec add oid =
       if is_stale t oid && not (Hashtbl.mem work oid) then begin
         Hashtbl.replace work oid ();
         match Provenance.task_producing t.prov oid with
         | None -> ()
         | Some task -> List.iter add (Task.input_oids task)
       end
     in
     List.iter add targets);
  (* -- nodes: one per producing task -- *)
  let nodes : (int, node) Hashtbl.t = Hashtbl.create 32 in
  let owner : (Oid.t, int) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun oid () ->
      match Provenance.task_producing t.prov oid with
      | None -> ()
      | Some task ->
        Hashtbl.replace owner oid task.Task.task_id;
        if not (Hashtbl.mem nodes task.Task.task_id) then
          Hashtbl.replace nodes task.Task.task_id
            { n_task = task;
              n_proc = Proc_registry.find t.procs task.Task.process;
              n_deps = [] })
    work;
  Hashtbl.iter
    (fun _ node ->
      node.n_deps <-
        List.sort_uniq Int.compare
          (List.filter_map
             (fun oid -> Hashtbl.find_opt owner oid)
             (Task.input_oids node.n_task)))
    nodes;
  (* -- wave-by-wave topological execution -- *)
  let committed : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let failed : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let refreshed = ref 0 in
  let new_tasks = ref [] in
  let skip_reasons = ref [] in
  let fail_node id node reason =
    Hashtbl.replace failed id reason;
    List.iter
      (fun oid ->
        if Hashtbl.mem work oid then
          skip_reasons := (oid, reason) :: !skip_reasons)
      node.n_task.Task.outputs
  in
  let pending () =
    Hashtbl.fold
      (fun id node acc ->
        if Hashtbl.mem committed id || Hashtbl.mem failed id then acc
        else (id, node) :: acc)
      nodes []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let continue_ = ref true in
  while !continue_ do
    let rest = pending () in
    (* nodes whose stale deps all committed; a failed dep poisons the
       node (refreshing from a stale input would diverge from a full
       re-derivation) *)
    let ready, blocked =
      List.partition
        (fun (_, node) ->
          List.for_all (fun d -> Hashtbl.mem committed d) node.n_deps
          && not (List.exists (fun d -> Hashtbl.mem failed d) node.n_deps))
        rest
    in
    let poisoned =
      List.filter
        (fun (_, node) -> List.exists (fun d -> Hashtbl.mem failed d) node.n_deps)
        blocked
    in
    List.iter (fun (id, node) -> fail_node id node "stale input not refreshable")
      poisoned;
    match ready with
    | [] -> if poisoned = [] then continue_ := false
    | _ ->
      (* evaluation half: pure, poolable.  Same dispatch rule as the
         compound scheduler — lanes only pay off when the frontier can
         fill them. *)
      let evals : (int, (((string * Gaea_adt.Value.t) list, Gaea_error.t) result * float)) Hashtbl.t =
        Hashtbl.create 8
      in
      let evaluable =
        List.filter_map
          (fun (id, node) ->
            match node.n_proc with
            | Some p -> Some (id, node, p)
            | None -> None)
          ready
      in
      let eval_one (id, node, p) =
        let t0 = Unix.gettimeofday () in
        let r = Deriver.eval_primitive t.deriver p node.n_task.Task.inputs in
        (id, (r, Unix.gettimeofday () -. t0))
      in
      let n_ready = List.length evaluable in
      if
        Gaea_par.Pool.size () > 1
        && Gaea_par.Pool.min_parallel_work () < max_int
        && n_ready >= 2
        && n_ready >= Gaea_par.Pool.size ()
      then
        Array.iter
          (fun (id, outcome) -> Hashtbl.replace evals id outcome)
          (Gaea_par.Pool.parallel_batch
             (Array.of_list
                (List.map (fun unit_ () -> eval_one unit_) evaluable)))
      else
        List.iter
          (fun unit_ ->
            let id, outcome = eval_one unit_ in
            Hashtbl.replace evals id outcome)
          evaluable;
      (* commit half: strictly in producing-task order *)
      List.iter
        (fun (id, node) ->
          match node.n_proc with
          | None ->
            fail_node id node
              (Printf.sprintf "process %s not in registry"
                 node.n_task.Task.process)
          | Some p ->
            (match Hashtbl.find_opt evals id with
             | None -> fail_node id node "not evaluated"
             | Some (Error e, _) -> fail_node id node (Gaea_error.to_string e)
             | Some (Ok pairs, cost) ->
               let task = node.n_task in
               let commit_result =
                 List.fold_left
                   (fun acc oid ->
                     match acc with
                     | Error _ -> acc
                     | Ok () ->
                       Obj_store.update t.objects ~cls:p.Process.output_class
                         oid pairs)
                   (Ok ()) task.Task.outputs
               in
               (match commit_result with
                | Error e -> fail_node id node (Gaea_error.to_string e)
                | Ok () ->
                  List.iter
                    (fun (_, v) ->
                      t.metrics.Metrics.pixels_processed <-
                        t.metrics.Metrics.pixels_processed
                        + Deriver.count_pixels v)
                    pairs;
                  let new_task =
                    Provenance.record_task t.prov ~process:p.Process.proc_name
                      ~version:p.Process.version ~inputs:task.Task.inputs
                      ~params:p.Process.params ~outputs:task.Task.outputs
                      ~output_class:p.Process.output_class
                  in
                  Deriver.admit t.deriver p ~inputs:task.Task.inputs ~cost
                    new_task;
                  List.iter
                    (fun oid ->
                      Hashtbl.remove t.dirty oid;
                      Events.emit t.bus
                        (Events.Object_refreshed
                           { cls = p.Process.output_class; oid;
                             task_id = new_task.Task.task_id }))
                    task.Task.outputs;
                  refreshed := !refreshed + List.length task.Task.outputs;
                  new_tasks := new_task :: !new_tasks;
                  Hashtbl.replace committed id ())))
        ready
  done;
  { refreshed = !refreshed;
    skipped = List.length !skip_reasons;
    remaining = List.length (stale t);
    tasks = List.rev !new_tasks;
    skip_reasons = List.rev !skip_reasons }
