(** A faithful simulation of the file-based GIS workflow (IDRISI /
    GRASS) that Section 4.1 criticizes — the baseline of experiment E1.

    "A file name is the only identifier for stored data [...] Data
    sharing is almost impossible because there is not enough meta
    information to describe how the data are generated.  (How can one
    deduce it from a file name?)"

    Files are name-addressed images; saving under an existing name
    silently overwrites (shortcoming 1); there is no record of how a
    file was produced, so a scientist who did not personally create a
    file — or forgot its naming convention — must recompute
    (shortcoming 2/3); applying a procedure to many data sets repeats
    the steps manually (shortcoming 4). *)

type t

type stats = {
  mutable computations : int;      (** analysis executions *)
  mutable pixels_computed : int;
  mutable overwrites : int;        (** silent file clobbers *)
  mutable files_saved : int;
  mutable failed_recalls : int;    (** lookups of names nobody remembers *)
}

val create : unit -> t
val stats : t -> stats

val save : t -> name:string -> Gaea_raster.Image.t -> unit
(** Overwrites silently, like a file system. *)

val load : t -> string -> Gaea_raster.Image.t option
val file_names : t -> string list
val file_count : t -> int

val run_analysis :
  t -> scientist:string -> output:string -> inputs:string list
  -> (Gaea_raster.Image.t list -> Gaea_raster.Image.t)
  -> (Gaea_raster.Image.t, Gaea_error.t) result
(** Execute an analysis exactly as a GIS user would: read the input
    files, run the command, write the output file.  A scientist only
    reuses an existing output if {e they} produced it under that exact
    name before (the per-scientist memory below); otherwise the file's
    provenance is unknowable and the analysis reruns. *)

val remembers : t -> scientist:string -> string -> bool
(** Whether the scientist personally created that file name. *)
