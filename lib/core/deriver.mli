(** The deriver: template evaluation, binding search, process
    execution, and the provenance-keyed result cache.

    Cache invalidation is event-driven: the deriver subscribes to
    [Object_deleted], [Process_versioned] and [Class_mutated] and
    drops stale entries itself, emitting [Cache_invalidated]; cache
    lookups emit [Cache_hit] / [Cache_miss] (counted by
    {!Metrics.attach}). *)

module Oid = Gaea_storage.Oid

type t

val create :
  registry:Gaea_adt.Registry.t
  -> catalog:Catalog.t
  -> objects:Obj_store.t
  -> procs:Proc_registry.t
  -> prov:Provenance.t
  -> metrics:Metrics.t
  -> bus:Events.bus
  -> t

val check_inputs :
  t -> Process.t -> (string * Oid.t list) list -> (unit, Gaea_error.t) result
(** Cardinalities, then template assertions. *)

val find_binding :
  t -> ?exclude:(string * Oid.t list) list list
  -> Process.t -> available:(string * Oid.t list) list
  -> ((string * Oid.t list) list, Gaea_error.t) result

val eval_primitive :
  t -> Process.t -> (string * Oid.t list) list
  -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result
(** Check and evaluate without inserting or recording. *)

val execute_process :
  t -> Process.t -> inputs:(string * Oid.t list) list
  -> (Task.t, Gaea_error.t) result

val recompute_task :
  t -> Task.t -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result

(** {2 Result cache} *)

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;  (** live memoized results *)
  invalidations : int;  (** entries dropped *)
}

val cache_stats : t -> cache_stats
val clear_cache : t -> unit
val invalidate_process : t -> string -> unit
(** Drop memoized results of the named process and of every compound
    that transitively expands to it. *)
