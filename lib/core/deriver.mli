(** The deriver: template evaluation, binding search, process
    execution, and the provenance-keyed result cache.

    Cache invalidation is event-driven: the deriver subscribes to
    [Object_deleted], [Process_versioned] and [Class_mutated] and
    drops stale entries itself, emitting [Cache_invalidated]; cache
    lookups emit [Cache_hit] / [Cache_miss] (counted by
    {!Metrics.attach}). *)

module Oid = Gaea_storage.Oid

type t

val create :
  registry:Gaea_adt.Registry.t
  -> catalog:Catalog.t
  -> objects:Obj_store.t
  -> procs:Proc_registry.t
  -> prov:Provenance.t
  -> metrics:Metrics.t
  -> bus:Events.bus
  -> t

val check_inputs :
  t -> Process.t -> (string * Oid.t list) list -> (unit, Gaea_error.t) result
(** Cardinalities, then template assertions. *)

val find_binding :
  t -> ?exclude:(string * Oid.t list) list list
  -> Process.t -> available:(string * Oid.t list) list
  -> ((string * Oid.t list) list, Gaea_error.t) result

val eval_primitive :
  t -> Process.t -> (string * Oid.t list) list
  -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result
(** Check and evaluate without inserting or recording. *)

val execute_process :
  t -> Process.t -> inputs:(string * Oid.t list) list
  -> (Task.t, Gaea_error.t) result

val recompute_task :
  t -> Task.t -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result

val count_pixels : Gaea_adt.Value.t -> int
(** Pixels carried by a raster value (0 for scalars) — the
    [pixels_processed] unit of account. *)

(** {2 Result cache}

    The cache is memory-bounded: every entry is charged the byte size
    of its output tuples (raster payloads at storage-type width), and
    total residency is kept under a budget ([GAEA_CACHE_BYTES],
    default 256 MiB) by GreedyDual-Size eviction — priority is
    clock-at-use + recompute-cost / bytes, so cheap-to-recompute bulky
    entries go first and recently used ones survive (LRU tie-break). *)

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;  (** live memoized results *)
  invalidations : int;  (** entries dropped by staleness *)
  admissions : int;  (** results stored under the budget *)
  evictions : int;  (** entries displaced to stay under budget *)
  resident_bytes : int;  (** bytes currently charged *)
  budget_bytes : int;  (** the active byte budget *)
}

val cache_stats : t -> cache_stats
val clear_cache : t -> unit
val invalidate_process : t -> string -> unit
(** Drop memoized results of the named process and of every compound
    that transitively expands to it. *)

val cache_budget : t -> int

val set_cache_budget : t -> int -> unit
(** Override the budget (e.g. for sweeps); shrinking evicts
    immediately. *)

val admit :
  t -> Process.t -> inputs:(string * Oid.t list) list -> cost:float
  -> Task.t -> unit
(** Store a freshly produced result, charging its bytes and evicting
    to fit; [cost] seeds the eviction priority.  Emits
    [Cache_admitted] (and [Cache_evicted] for any displaced entries).
    Used by the refresh scheduler, which recomputes outside
    the hit/miss probe. *)

val restore_cache_stats :
  t -> hits:int -> misses:int -> invalidations:int -> admissions:int
  -> evictions:int -> unit
(** Persist support: reinstate the counter values of a saved kernel
    (entries themselves are not persisted). *)
