type t = {
  procs : (string, Process.t list) Hashtbl.t; (* name -> versions ascending *)
  catalog : Catalog.t;
  bus : Events.bus;
}

let create ~catalog ~bus = { procs = Hashtbl.create 32; catalog; bus }

let versions t name = Option.value ~default:[] (Hashtbl.find_opt t.procs name)

let find t ?version name =
  let vs = versions t name in
  match version with
  | Some v -> List.find_opt (fun p -> p.Process.version = v) vs
  | None ->
    (match List.rev vs with
     | latest :: _ -> Some latest
     | [] -> None)

let define t (p : Process.t) =
  let name = p.Process.proc_name in
  let vs = versions t name in
  if List.exists (fun q -> q.Process.version = p.Process.version) vs then
    Error
      (Gaea_error.Duplicate
         { kind = "process";
           name = Printf.sprintf "%s v%d" name p.Process.version })
  else begin
    let unknown_classes =
      List.filter
        (fun c -> not (Catalog.mem t.catalog c))
        (p.Process.output_class
         :: List.map (fun a -> a.Process.arg_class) p.Process.args)
      |> List.sort_uniq compare
    in
    if unknown_classes <> [] then
      Gaea_error.err
        (Printf.sprintf "process %s: unknown class(es) %s" name
           (String.concat ", " unknown_classes))
    else begin
      let unknown_subs =
        List.filter
          (fun s -> versions t s.Process.step_process = [])
          (Process.steps p)
      in
      if unknown_subs <> [] then
        Gaea_error.err
          (Printf.sprintf "process %s: unknown sub-process(es) %s" name
             (String.concat ", "
                (List.map (fun s -> s.Process.step_process) unknown_subs)))
      else begin
        Hashtbl.replace t.procs name
          (List.sort
             (fun a b -> Int.compare a.Process.version b.Process.version)
             (p :: vs));
        (* subscribers (result cache, net cache) see the table already
           updated when the event fires *)
        Events.emit t.bus
          (if vs = [] then
             Events.Process_defined { name; version = p.Process.version }
           else Events.Process_versioned { name; version = p.Process.version });
        Ok ()
      end
    end
  end

let latest_version t name =
  match List.rev (versions t name) with
  | p :: _ -> Some p.Process.version
  | [] -> None

let latest t =
  Hashtbl.fold
    (fun name _ acc ->
      match find t name with
      | Some p -> p :: acc
      | None -> acc)
    t.procs []
  |> List.sort (fun a b -> compare a.Process.proc_name b.Process.proc_name)

let all_versions t =
  Hashtbl.fold (fun _ vs acc -> vs @ acc) t.procs []
  |> List.sort (fun a b -> compare (Process.key a) (Process.key b))

let fold_names t ~init ~f =
  Hashtbl.fold (fun name vs acc -> f acc name vs) t.procs init
