module Value = Gaea_adt.Value
module Oid = Gaea_storage.Oid

type tree = {
  object_id : Oid.t;
  object_class : string option;
  via : (Task.t * tree list) option;
}

module IntSet = Set.Make (Int)

let ancestors k oid =
  let visited = ref IntSet.empty in
  let rec go oid =
    match Kernel.task_producing k oid with
    | None -> ()
    | Some task ->
      List.iter
        (fun input ->
          if not (IntSet.mem input !visited) then begin
            visited := IntSet.add input !visited;
            go input
          end)
        (Task.input_oids task)
  in
  go oid;
  IntSet.elements (IntSet.remove oid !visited)

let descendants k oid =
  let visited = ref IntSet.empty in
  let rec go oid =
    List.iter
      (fun task ->
        List.iter
          (fun out ->
            if not (IntSet.mem out !visited) then begin
              visited := IntSet.add out !visited;
              go out
            end)
          task.Task.outputs)
      (Kernel.tasks_using k oid)
  in
  go oid;
  IntSet.elements (IntSet.remove oid !visited)

let base_inputs k oid =
  let all = oid :: ancestors k oid in
  List.filter (fun o -> Kernel.task_producing k o = None) all
  |> List.filter (fun o -> o <> oid || Kernel.task_producing k oid = None)
  |> List.sort_uniq Int.compare

let rec derivation_tree k oid =
  { object_id = oid;
    object_class = Kernel.class_of_object k oid;
    via =
      Option.map
        (fun task ->
          (task, List.map (derivation_tree k) (Task.input_oids task)))
        (Kernel.task_producing k oid) }

(* Canonical signature: structure + processes + parameters, no OIDs.
   Base objects are summarized by class name. *)
let derivation_signature k oid =
  let buf = Buffer.create 128 in
  let rec walk oid =
    match Kernel.task_producing k oid with
    | None ->
      Buffer.add_string buf
        (Printf.sprintf "base<%s>"
           (Option.value ~default:"?" (Kernel.class_of_object k oid)))
    | Some task ->
      Buffer.add_string buf
        (Printf.sprintf "%s.v%d" task.Task.process task.Task.process_version);
      let params =
        List.sort compare
          (List.map
             (fun (p, v) -> Printf.sprintf "%s=%s" p (Value.to_display v))
             task.Task.params)
      in
      if params <> [] then
        Buffer.add_string buf ("{" ^ String.concat "," params ^ "}");
      Buffer.add_char buf '(';
      List.iteri
        (fun i (arg, oids) ->
          if i > 0 then Buffer.add_char buf ';';
          Buffer.add_string buf (arg ^ ":");
          List.iteri
            (fun j input ->
              if j > 0 then Buffer.add_char buf ',';
              walk input)
            oids)
        task.Task.inputs;
      Buffer.add_char buf ')'
  in
  walk oid;
  Buffer.contents buf

let same_derivation k a b =
  String.equal (derivation_signature k a) (derivation_signature k b)

let compare_derivations k a b =
  let sa = derivation_signature k a and sb = derivation_signature k b in
  if String.equal sa sb then
    Printf.sprintf
      "objects %d and %d share the same derivation:\n  %s" a b sa
  else
    Printf.sprintf
      "objects %d and %d were derived differently:\n  object %d: %s\n  \
       object %d: %s"
      a b a sa b sb

let explain k oid =
  let buf = Buffer.create 256 in
  let rec walk indent oid =
    match Kernel.task_producing k oid with
    | None ->
      Buffer.add_string buf
        (Printf.sprintf "%sobject %d : %s (base data)\n" indent oid
           (Option.value ~default:"?" (Kernel.class_of_object k oid)))
    | Some task ->
      Buffer.add_string buf
        (Printf.sprintf "%sobject %d : %s <- %s v%d%s\n" indent oid
           (Option.value ~default:"?" (Kernel.class_of_object k oid))
           task.Task.process task.Task.process_version
           (match task.Task.params with
            | [] -> ""
            | ps ->
              " ["
              ^ String.concat ", "
                  (List.map
                     (fun (p, v) ->
                       Printf.sprintf "%s=%s" p (Value.to_display v))
                     ps)
              ^ "]"));
      List.iter
        (fun (arg, oids) ->
          Buffer.add_string buf (Printf.sprintf "%s  %s:\n" indent arg);
          List.iter (walk (indent ^ "    ")) oids)
        task.Task.inputs
  in
  walk "" oid;
  Buffer.contents buf

let verify_task k task =
  match Derivation.recompute k task with
  | Error _ as e -> e |> Result.map (fun _ -> false)
  | Ok pairs ->
    (match task.Task.outputs with
     | [ oid ] ->
       let cls = task.Task.output_class in
       let all_equal =
         List.for_all
           (fun (attr, recomputed) ->
             match Kernel.object_attr k ~cls oid attr with
             | Some stored -> Value.equal stored recomputed
             | None -> false)
           pairs
       in
       Ok all_equal
     | [] -> Gaea_error.err "task has no outputs"
     | _ -> Gaea_error.err "multi-output tasks not supported")

let verify_object k oid =
  match Kernel.task_producing k oid with
  | None -> Ok true
  | Some task -> verify_task k task

let is_acyclic k =
  (* DFS over producer edges; a cycle would mean an object among its own
     ancestors *)
  let state = Hashtbl.create 64 in
  (* 0 visiting, 1 done *)
  let rec visit oid =
    match Hashtbl.find_opt state oid with
    | Some 1 -> true
    | Some _ -> false
    | None ->
      Hashtbl.add state oid 0;
      let ok =
        match Kernel.task_producing k oid with
        | None -> true
        | Some task -> List.for_all visit (Task.input_oids task)
      in
      Hashtbl.replace state oid 1;
      ok
  in
  List.for_all
    (fun task -> List.for_all visit task.Task.outputs)
    (Kernel.tasks k)
