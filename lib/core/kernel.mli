(** The Gaea kernel: the metadata manager of Fig 1.

    A thin facade over the subsystem modules — {!Catalog} (class defs +
    schema), {!Obj_store} (object CRUD), {!Proc_registry} (process
    versions), {!Deriver} (assertions, mappings, result cache) and
    {!Provenance} (tasks, lineage, net views) — composed over one
    shared {!Events.bus}.  Cross-cutting state (execution counters,
    cache invalidation, net-view staleness) is maintained by bus
    subscribers, not by hand-threaded calls.

    Concurrency: a kernel is a single-threaded mutable object. *)

type t

val create : unit -> t
(** Fresh kernel with the built-in registry ({!Gaea_adt.Registry.with_builtins})
    and an empty store. *)

(** {2 Events} *)

module Events = Events

val bus : t -> Events.bus
(** The kernel's event bus; subscribe for observability. *)

val event_log : t -> (int * Events.event) list
(** Recent events (bounded ring buffer), oldest first, with sequence
    numbers.  Dumpable from the CLI via [SHOW EVENTS]. *)

(** {2 System level} *)

val registry : t -> Gaea_adt.Registry.t
val store : t -> Gaea_storage.Store.t

(** {2 Classes (derivation level, static)} *)

val define_class : t -> Schema.t -> (unit, Gaea_error.t) result
(** Creates the backing table.  Errors on duplicate class names or if a
    [Derived] class names a process that is neither defined yet nor
    defined later (checked lazily at derivation time). *)

val find_class : t -> string -> Schema.t option
val classes : t -> Schema.t list
(** Sorted by name. *)

val class_table : t -> string -> Gaea_storage.Table.t option

(** {2 Objects} *)

val insert_object :
  t -> cls:string -> (string * Gaea_adt.Value.t) list
  -> (Gaea_storage.Oid.t, Gaea_error.t) result
(** Attribute-name/value pairs; every class attribute must be given
    exactly once.  Base-data ingestion and derivation both land here. *)

val object_tuple : t -> cls:string -> Gaea_storage.Oid.t -> Gaea_storage.Tuple.t option
val object_attr :
  t -> cls:string -> Gaea_storage.Oid.t -> string -> Gaea_adt.Value.t option
val objects_of_class : t -> string -> Gaea_storage.Oid.t list
val class_of_object : t -> Gaea_storage.Oid.t -> string option
val count_objects : t -> string -> int

val delete_object :
  t -> cls:string -> Gaea_storage.Oid.t -> (unit, Gaea_error.t) result
(** [Error (Unknown_object _)] when no class owns the oid,
    [Error (Wrong_class _)] when it belongs to a different class than
    named.  Deletion invalidates dependent cache entries (via the
    [Object_deleted] event). *)

val update_object :
  t -> cls:string -> Gaea_storage.Oid.t -> (string * Gaea_adt.Value.t) list
  -> (unit, Gaea_error.t) result
(** Replace the named attributes in place (same OID; unnamed
    attributes keep their values).  Emits [Object_updated], which
    invalidates dependent cache entries and marks every transitive
    consumer stale (see {!stale_objects} / {!refresh_stale}). *)

(** {2 Concepts (high level)} *)

val concepts : t -> Concept.t

(** {2 Processes} *)

val define_process : t -> Process.t -> (unit, Gaea_error.t) result
(** Registers under (name, version); errors on duplicates, unknown
    argument/output classes, or (for compounds) unknown sub-processes. *)

val find_process : t -> ?version:int -> string -> Process.t option
(** Latest version when [version] is omitted. *)

val process_versions : t -> string -> Process.t list
(** Ascending version order. *)

val latest_process_version : t -> string -> int option
(** Highest stored version of a process name, if any. *)

val processes : t -> Process.t list
(** Latest version of each process, sorted by name. *)

val all_process_versions : t -> Process.t list

(** {2 Execution (tasks)} *)

val execute_process :
  t -> Process.t -> inputs:(string * Gaea_storage.Oid.t list) list
  -> (Task.t, Gaea_error.t) result
(** Bind the given objects to the process arguments, check cardinalities
    and assertions, evaluate the mappings, insert the output object and
    record the task.  Compound processes are expanded: each primitive
    step yields its own task; the returned task is the final step's.

    Results are memoized by provenance: a repeated call with the same
    (process name, version, input binding, parameter bindings) returns
    the originally recorded task — no recomputation, no duplicate
    object, no new task — and counts as a cache hit in {!counters} /
    {!cache_stats}.  Entries are invalidated when the process (or a
    compound above it) gains a new version, and when an input or output
    object is deleted. *)

val recompute_task :
  t -> Task.t -> ((string * Gaea_adt.Value.t) list, Gaea_error.t) result
(** Re-run the task's process on its recorded inputs {e without}
    inserting — the reproducibility check. Only primitive-process tasks
    (every recorded task is one). *)

val find_binding :
  t -> ?exclude:(string * Gaea_storage.Oid.t list) list list
  -> Process.t -> available:(string * Gaea_storage.Oid.t list) list
  -> ((string * Gaea_storage.Oid.t list) list, Gaea_error.t) result
(** Distribute candidate objects (keyed by {e class} name) over the
    process's arguments so that cardinalities and assertions hold.
    Tries permutations when several arguments draw from one class (the
    NDVI-1988/1989 situation).  Bindings listed in [exclude] are
    skipped — deriving several objects of one class must not re-fire a
    process on the very same inputs, which would duplicate data. *)

val insert_object_with_oid :
  t -> cls:string -> Gaea_storage.Oid.t -> (string * Gaea_adt.Value.t) list
  -> (unit, Gaea_error.t) result
(** Insert under a caller-chosen OID (kernel restore); advances the
    store's allocator past it. *)

val restore_task : t -> Task.t -> (unit, Gaea_error.t) result
(** Append a previously recorded task verbatim (kernel restore): indexes
    it and advances the task counter and logical clock past it.  Errors
    on duplicate task ids. *)

val record_task_raw :
  t -> process:string -> version:int
  -> inputs:(string * Gaea_storage.Oid.t list) list
  -> params:(string * Gaea_adt.Value.t) list
  -> outputs:Gaea_storage.Oid.t list -> output_class:string -> Task.t
(** Append a task record without executing anything — used by the
    derivation manager for its generic interpolation pseudo-process.
    Regular code should go through {!execute_process}. *)

(** {2 Task log} *)

val tasks : t -> Task.t list
(** Chronological. *)

val find_task : t -> int -> Task.t option
val task_producing : t -> Gaea_storage.Oid.t -> Task.t option
(** The task that created the object ([None] for base data). *)

val tasks_using : t -> Gaea_storage.Oid.t -> Task.t list

(** {2 Derivation net} *)

type net_view = Provenance.net_view = {
  net : Gaea_petri.Net.t;
  place_of_class : string -> Gaea_petri.Net.place option;
  class_of_place : Gaea_petri.Net.place -> string option;
  process_of_transition :
    Gaea_petri.Net.transition -> (string * int) option;
}

val derivation_net : t -> net_view
(** The class-derivation diagram: a place per class, a transition per
    latest-version primitive process (compounds contribute their
    expansion).  Rebuilt when classes or processes change (invalidated
    by bus subscription); cached otherwise. *)

val current_marking : t -> Gaea_petri.Marking.t
(** Token = object OID at its class's place. *)

(** {2 Bookkeeping} *)

type counters = Metrics.t = {
  mutable executions : int;     (** process executions (tasks recorded) *)
  mutable retrievals : int;     (** direct object retrievals *)
  mutable interpolations : int;
  mutable pixels_processed : int; (** image pixels written by mappings *)
  mutable cache_hits : int;     (** {!execute_process} calls served from cache *)
  mutable cache_misses : int;   (** calls that actually executed *)
  mutable cache_admissions : int; (** results stored in the bounded cache *)
  mutable cache_evictions : int;  (** entries displaced to stay under budget *)
  mutable refreshes : int;        (** stale objects recomputed in place *)
}

val counters : t -> counters
val reset_counters : t -> unit
val clock : t -> int
(** Current logical time (increments per task). *)

(** {2 Derived-object result cache} *)

type cache_stats = Deriver.cache_stats = {
  hits : int;
  misses : int;
  entries : int;          (** live memoized results *)
  invalidations : int;    (** entries dropped by the hooks below *)
  admissions : int;       (** results stored under the byte budget *)
  evictions : int;        (** entries displaced to stay under budget *)
  resident_bytes : int;   (** bytes currently charged to the cache *)
  budget_bytes : int;     (** active budget ([GAEA_CACHE_BYTES]) *)
}

val cache_stats : t -> cache_stats

val clear_cache : t -> unit
(** Drop every memoized result (counts them as invalidations). *)

val cache_budget : t -> int

val set_cache_budget : t -> int -> unit
(** Override the byte budget ([GAEA_CACHE_BYTES] gives the initial
    value); shrinking evicts immediately. *)

val restore_cache_stats :
  t -> hits:int -> misses:int -> invalidations:int -> admissions:int
  -> evictions:int -> unit
(** Persist support: reinstate saved counter values (cache entries
    themselves are not persisted). *)

val invalidate_cache_process : t -> string -> unit
(** Drop memoized results of the named process and of every compound
    process that (transitively) expands to it.  The [Process_versioned]
    event triggers the same invalidation automatically when
    {!define_process} adds a new version of an existing name. *)

val invalidate_cache_class : t -> string -> unit
(** Emit [Class_mutated]: drops memoized results that read from or
    wrote to the named class — the hook for callers that mutate a
    class's objects behind the kernel's back (bulk loads, external
    edits).  {!delete_object} already invalidates per-object. *)

(** {2 Staleness and incremental refresh} *)

type refresh_report = Refresh.report = {
  refreshed : int;  (** objects recomputed in place *)
  skipped : int;  (** stale objects left stale *)
  remaining : int;  (** dirty-set size after the run *)
  tasks : Task.t list;  (** new provenance tasks, in commit order *)
  skip_reasons : (Gaea_storage.Oid.t * string) list;
}

val stale_objects : t -> Gaea_storage.Oid.t list
(** Derived objects whose transitive inputs changed (update, delete,
    process re-version, class mutation) since their task ran.
    Ascending OID order.  The same definition backs [gaea lint]'s
    GA033. *)

val object_stale : t -> Gaea_storage.Oid.t -> bool

val refresh_stale : ?only:Gaea_storage.Oid.t list -> t -> refresh_report
(** Recompute stale objects in place, dirty subgraph only, in
    topological waves (independent frontier nodes evaluate on the
    domain pool); results, provenance and event order match a full
    re-derivation at any pool size.  [only] restricts the run to the
    given objects plus their stale upstream closure. *)
