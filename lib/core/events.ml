type event =
  | Class_defined of string
  | Class_mutated of string
  | Object_inserted of { cls : string; oid : int }
  | Object_deleted of { cls : string; oid : int }
  | Object_updated of { cls : string; oid : int }
  | Object_refreshed of { cls : string; oid : int; task_id : int }
  | Process_defined of { name : string; version : int }
  | Process_versioned of { name : string; version : int }
  | Task_recorded of { task_id : int; process : string; version : int }
  | Cache_hit of { process : string; version : int }
  | Cache_miss of { process : string; version : int }
  | Cache_invalidated of { entries : int; reason : string }
  | Cache_admitted of { process : string; version : int; bytes : int }
  | Cache_evicted of { entries : int; bytes : int; reason : string }

let event_to_string = function
  | Class_defined c -> Printf.sprintf "class_defined %s" c
  | Class_mutated c -> Printf.sprintf "class_mutated %s" c
  | Object_inserted { cls; oid } ->
    Printf.sprintf "object_inserted %s #%d" cls oid
  | Object_deleted { cls; oid } -> Printf.sprintf "object_deleted %s #%d" cls oid
  | Object_updated { cls; oid } -> Printf.sprintf "object_updated %s #%d" cls oid
  | Object_refreshed { cls; oid; task_id } ->
    Printf.sprintf "object_refreshed %s #%d task #%d" cls oid task_id
  | Process_defined { name; version } ->
    Printf.sprintf "process_defined %s v%d" name version
  | Process_versioned { name; version } ->
    Printf.sprintf "process_versioned %s v%d" name version
  | Task_recorded { task_id; process; version } ->
    Printf.sprintf "task_recorded #%d %s v%d" task_id process version
  | Cache_hit { process; version } ->
    Printf.sprintf "cache_hit %s v%d" process version
  | Cache_miss { process; version } ->
    Printf.sprintf "cache_miss %s v%d" process version
  | Cache_invalidated { entries; reason } ->
    Printf.sprintf "cache_invalidated %d entries (%s)" entries reason
  | Cache_admitted { process; version; bytes } ->
    Printf.sprintf "cache_admitted %s v%d (%d bytes)" process version bytes
  | Cache_evicted { entries; bytes; reason } ->
    Printf.sprintf "cache_evicted %d entries (%d bytes, %s)" entries bytes reason

type bus = {
  mutable subs : (string * (event -> unit)) list; (* registration order *)
  ring : (int * event) option array;
  mutable next_seq : int;
}

let create ?(log_capacity = 256) () =
  { subs = []; ring = Array.make (max 1 log_capacity) None; next_seq = 0 }

let subscribe bus ~name f = bus.subs <- bus.subs @ [ (name, f) ]
let subscribers bus = List.map fst bus.subs

let emit bus ev =
  let seq = bus.next_seq in
  bus.next_seq <- seq + 1;
  bus.ring.(seq mod Array.length bus.ring) <- Some (seq, ev);
  List.iter (fun (_, f) -> f ev) bus.subs

let log bus =
  Array.to_list bus.ring
  |> List.filter_map Fun.id
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let seen bus = bus.next_seq
