let default_grain = 4096
let max_size = 8

(* ------------------------------------------------------------------ *)
(* Deterministic chunking                                              *)
(* ------------------------------------------------------------------ *)

(* Boundaries depend only on (lo, hi, grain): bit-identical reductions
   at any pool size.  Pure arithmetic — no chunk array is ever
   allocated on the dispatch path. *)
let chunk_count ~grain ~lo ~hi =
  let len = hi - lo in
  if len <= 0 then 0 else (len + grain - 1) / grain

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type job = {
  n : int;                 (* number of chunks *)
  body : int -> unit;      (* run chunk i (bounds computed by closure) *)
  next : int Atomic.t;     (* next chunk to claim *)
  pending : int Atomic.t;  (* chunks not yet finished *)
  err : exn option Atomic.t;
}

type pool = {
  lanes : int; (* workers + the calling domain *)
  mutex : Mutex.t;
  cond : Condition.t;            (* workers wait here for a new epoch *)
  done_cond : Condition.t;       (* the caller waits here for stragglers *)
  epoch : int Atomic.t;          (* bumped per job; publishes [job] *)
  sleepers : int Atomic.t;       (* workers blocked on [cond] *)
  caller_waiting : bool Atomic.t;
  stopping : bool Atomic.t;
  mutable job : job option;      (* written before the epoch bump *)
  mutable domains : unit Domain.t list;
}

(* true inside a worker or inside a caller's parallel region: nested
   parallel calls degrade to the sequential path *)
let in_parallel = Domain.DLS.new_key (fun () -> false)

(* Spin budgets: long enough to cover the a-few-microseconds gap
   between back-to-back kernel calls, short enough that an idle pool
   parks its workers well under a millisecond. *)
let worker_spin_budget = 20_000
let caller_spin_budget = 50_000

let finish_chunk p j =
  (* fetch_and_add returns the previous value: 1 means this was the
     last chunk, and the caller (if parked) needs a wakeup *)
  if Atomic.fetch_and_add j.pending (-1) = 1
     && Atomic.get p.caller_waiting
  then begin
    Mutex.lock p.mutex;
    Condition.broadcast p.done_cond;
    Mutex.unlock p.mutex
  end

let run_job p j =
  let n = j.n in
  let rec claim () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < n then begin
      (try j.body i
       with e -> ignore (Atomic.compare_and_set j.err None (Some e)));
      finish_chunk p j;
      claim ()
    end
  in
  claim ()

(* Workers spin on the epoch for a bounded budget, then block on the
   condvar.  The sleepers counter lets the dispatcher skip the mutex +
   broadcast entirely when every worker is still spinning — the common
   case for back-to-back kernels.  The wakeup is race-free: a worker
   re-checks the epoch under the mutex after incrementing sleepers, and
   the dispatcher bumps the epoch before reading sleepers. *)
let rec worker_loop p seen =
  let rec await spins =
    if Atomic.get p.epoch = seen then
      if spins > 0 then begin
        Domain.cpu_relax ();
        await (spins - 1)
      end
      else begin
        Mutex.lock p.mutex;
        Atomic.incr p.sleepers;
        while Atomic.get p.epoch = seen do
          Condition.wait p.cond p.mutex
        done;
        Atomic.decr p.sleepers;
        Mutex.unlock p.mutex
      end
  in
  await worker_spin_budget;
  if not (Atomic.get p.stopping) then begin
    let epoch = Atomic.get p.epoch in
    (match p.job with Some j -> run_job p j | None -> ());
    worker_loop p epoch
  end

let make_pool lanes =
  let p =
    { lanes; mutex = Mutex.create (); cond = Condition.create ();
      done_cond = Condition.create (); epoch = Atomic.make 0;
      sleepers = Atomic.make 0; caller_waiting = Atomic.make false;
      stopping = Atomic.make false; job = None; domains = [] }
  in
  p.domains <-
    List.init (lanes - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_parallel true;
            worker_loop p 0));
  p

(* ------------------------------------------------------------------ *)
(* Global pool lifecycle                                               *)
(* ------------------------------------------------------------------ *)

let clamp_size n = Stdlib.max 1 (Stdlib.min max_size n)

let default_size () =
  match Sys.getenv_opt "GAEA_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n -> clamp_size n
     | None -> clamp_size (Domain.recommended_domain_count ()))
  | None -> clamp_size (Domain.recommended_domain_count ())

let requested = ref None
let pool = ref None

(* One parallel region at a time; also protects the lifecycle. *)
let region_mutex = Mutex.create ()

let size () =
  match !requested with
  | Some n -> n
  | None ->
    let n = default_size () in
    requested := Some n;
    n

let shutdown_pool p =
  Atomic.set p.stopping true;
  Mutex.lock p.mutex;
  (* spinning workers notice the epoch change; sleepers the broadcast *)
  Atomic.incr p.epoch;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.domains

let shutdown () =
  Mutex.lock region_mutex;
  (match !pool with
   | Some p -> shutdown_pool p
   | None -> ());
  pool := None;
  Mutex.unlock region_mutex

let set_size n =
  let n = clamp_size n in
  if Domain.DLS.get in_parallel then
    (* inside a parallel region the region mutex is held (or we are a
       worker): resizing now would deadlock.  Record the request; the
       next region entry applies it in [get_pool]. *)
    requested := Some n
  else begin
    Mutex.lock region_mutex;
    (match !pool with
     | Some p when p.lanes <> n ->
       shutdown_pool p;
       pool := None
     | _ -> ());
    requested := Some n;
    Mutex.unlock region_mutex
  end

(* caller holds region_mutex *)
let get_pool () =
  match !pool with
  | Some p when p.lanes = size () -> p
  | other ->
    (match other with Some p -> shutdown_pool p | None -> ());
    let p = make_pool (size ()) in
    pool := Some p;
    p

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Run [body 0 .. body (n-1)] across the pool.  The caller claims
   chunks too (help-first), then spins briefly on [pending] and only
   parks on [done_cond] if stragglers remain — the common case never
   touches the pool mutex at all. *)
let dispatch n body =
  Mutex.lock region_mutex;
  let p = get_pool () in
  let j =
    { n; body; next = Atomic.make 0; pending = Atomic.make n;
      err = Atomic.make None }
  in
  p.job <- Some j;
  Atomic.incr p.epoch;
  if Atomic.get p.sleepers > 0 then begin
    Mutex.lock p.mutex;
    Condition.broadcast p.cond;
    Mutex.unlock p.mutex
  end;
  Domain.DLS.set in_parallel true;
  run_job p j;
  let rec wait spins =
    if Atomic.get j.pending > 0 then
      if spins > 0 then begin
        Domain.cpu_relax ();
        wait (spins - 1)
      end
      else begin
        (* set caller_waiting before the pending re-check: the worker
           that drops pending to 0 afterwards is guaranteed to see it
           and broadcast *)
        Atomic.set p.caller_waiting true;
        Mutex.lock p.mutex;
        while Atomic.get j.pending > 0 do
          Condition.wait p.done_cond p.mutex
        done;
        Mutex.unlock p.mutex;
        Atomic.set p.caller_waiting false
      end
  in
  wait caller_spin_budget;
  Domain.DLS.set in_parallel false;
  p.job <- None;
  let err = Atomic.get j.err in
  Mutex.unlock region_mutex;
  match err with Some e -> raise e | None -> ()

(* ------------------------------------------------------------------ *)
(* Adaptive sequential cutoff                                          *)
(* ------------------------------------------------------------------ *)

let min_par_override = ref None

let env_min_par =
  lazy
    (match Sys.getenv_opt "GAEA_MIN_PAR_WORK" with
     | Some s -> int_of_string_opt (String.trim s)
     | None -> None)

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

(* Calibrated threshold: parallelism should engage only when the
   sequential work is worth ~10 pool dispatches.  Both sides measured
   in wall time once per process: dispatch = median of empty jobs
   through the live pool, work = best-of-5 float-array sum. *)
let calibrate () =
  let reps = 9 in
  let samples = Array.make reps 0. in
  for r = 0 to reps - 1 do
    let t0 = Unix.gettimeofday () in
    dispatch (size ()) (fun _ -> ());
    samples.(r) <- Unix.gettimeofday () -. t0
  done;
  let overhead = median samples in
  let n = 65536 in
  let a = Array.make n 1.0 in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. Array.unsafe_get a i
    done;
    ignore (Sys.opaque_identity !acc);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  let per_elem = Stdlib.max 1e-10 (!best /. float_of_int n) in
  let w = int_of_float (10. *. overhead /. per_elem) in
  Stdlib.max default_grain (Stdlib.min 16_777_216 w)

let calibrated = ref None

let min_parallel_work () =
  match !min_par_override with
  | Some w -> w
  | None ->
    (match Lazy.force env_min_par with
     | Some w -> w
     | None ->
       if Domain.recommended_domain_count () = 1 then max_int
       else
         match !calibrated with
         | Some w -> w
         | None ->
           let w = calibrate () in
           calibrated := Some w;
           w)

let set_min_parallel_work w = min_par_override := w

(* ------------------------------------------------------------------ *)
(* Parallel iteration                                                  *)
(* ------------------------------------------------------------------ *)

let sequential_ok ~grain ~lo ~hi =
  Domain.DLS.get in_parallel || size () = 1 || hi - lo <= grain

let below_cutoff ~cost ~lo ~hi =
  let w = min_parallel_work () in
  w > 0 && float_of_int (hi - lo) *. cost < float_of_int w

let parallel_for ?(grain = default_grain) ?(cost = 1.0) ~lo ~hi body =
  if sequential_ok ~grain ~lo ~hi || below_cutoff ~cost ~lo ~hi then
    for i = lo to hi - 1 do
      body i
    done
  else
    dispatch (chunk_count ~grain ~lo ~hi) (fun ci ->
        let clo = lo + (ci * grain) in
        let chi = Stdlib.min hi (clo + grain) in
        for i = clo to chi - 1 do
          body i
        done)

let parallel_for_ranges ?(grain = default_grain) ?(cost = 1.0) ~lo ~hi body =
  if hi > lo then begin
    if sequential_ok ~grain ~lo ~hi || below_cutoff ~cost ~lo ~hi then
      body lo hi
    else
      dispatch (chunk_count ~grain ~lo ~hi) (fun ci ->
          let clo = lo + (ci * grain) in
          body clo (Stdlib.min hi (clo + grain)))
  end

let map_chunks ?(grain = default_grain) ?(cost = 1.0) ~lo ~hi f =
  let n = chunk_count ~grain ~lo ~hi in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let run ci =
      let clo = lo + (ci * grain) in
      results.(ci) <- Some (f clo (Stdlib.min hi (clo + grain)))
    in
    (* same chunk layout either way, so reductions associate identically *)
    if n = 1 || Domain.DLS.get in_parallel || size () = 1
       || below_cutoff ~cost ~lo ~hi
    then
      for ci = 0 to n - 1 do
        run ci
      done
    else dispatch n run;
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.map_chunks: missing chunk result")
      results
  end

let parallel_for_reduce ?grain ?cost ~lo ~hi ~init ~reduce map =
  Array.fold_left reduce init (map_chunks ?grain ?cost ~lo ~hi map)

(* ------------------------------------------------------------------ *)
(* Coarse-grained batches                                              *)
(* ------------------------------------------------------------------ *)

let parallel_batch thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    if n = 1 || size () = 1 || Domain.DLS.get in_parallel then begin
      (* match the parallel path: every thunk runs, first error wins
         and is raised only after the batch completes *)
      let err = ref None in
      Array.iteri
        (fun i t ->
          match t () with
          | v -> results.(i) <- Some v
          | exception e -> if !err = None then err := Some e)
        thunks;
      match !err with Some e -> raise e | None -> ()
    end
    else dispatch n (fun i -> results.(i) <- Some (thunks.(i) ()));
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.parallel_batch: missing result")
      results
  end
