let default_grain = 4096
let max_size = 8

(* ------------------------------------------------------------------ *)
(* Deterministic chunking                                              *)
(* ------------------------------------------------------------------ *)

(* Boundaries depend only on (lo, hi, grain): bit-identical reductions
   at any pool size. *)
let chunk_ranges ~grain ~lo ~hi =
  let len = hi - lo in
  if len <= 0 then [||]
  else begin
    let n = (len + grain - 1) / grain in
    Array.init n (fun i ->
        let clo = lo + (i * grain) in
        (clo, Stdlib.min hi (clo + grain)))
  end

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type job = {
  chunks : (int * int) array;
  body : int -> int -> int -> unit; (* chunk index, lo, hi *)
  next : int Atomic.t;              (* next chunk to claim *)
  pending : int Atomic.t;           (* chunks not yet finished *)
  err : exn option Atomic.t;
}

type pool = {
  lanes : int; (* workers + the calling domain *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : job option;
  mutable epoch : int;   (* bumped per job; workers wait on changes *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

(* true inside a worker or inside a caller's parallel region: nested
   parallel calls degrade to the sequential path *)
let in_parallel = Domain.DLS.new_key (fun () -> false)

let run_job j =
  let n = Array.length j.chunks in
  let rec claim () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < n then begin
      (try
         let clo, chi = j.chunks.(i) in
         j.body i clo chi
       with e ->
         ignore (Atomic.compare_and_set j.err None (Some e)));
      Atomic.decr j.pending;
      claim ()
    end
  in
  claim ()

let rec worker_loop p seen_epoch =
  Mutex.lock p.mutex;
  while (not p.stopping) && p.epoch = seen_epoch do
    Condition.wait p.cond p.mutex
  done;
  let stopping = p.stopping in
  let epoch = p.epoch in
  let job = p.job in
  Mutex.unlock p.mutex;
  if not stopping then begin
    (match job with Some j -> run_job j | None -> ());
    worker_loop p epoch
  end

let make_pool lanes =
  let p =
    { lanes; mutex = Mutex.create (); cond = Condition.create ();
      job = None; epoch = 0; stopping = false; domains = [] }
  in
  p.domains <-
    List.init (lanes - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_parallel true;
            worker_loop p 0));
  p

(* ------------------------------------------------------------------ *)
(* Global pool lifecycle                                               *)
(* ------------------------------------------------------------------ *)

let clamp_size n = Stdlib.max 1 (Stdlib.min max_size n)

let default_size () =
  match Sys.getenv_opt "GAEA_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n -> clamp_size n
     | None -> clamp_size (Domain.recommended_domain_count ()))
  | None -> clamp_size (Domain.recommended_domain_count ())

let requested = ref None
let pool = ref None

(* One parallel region at a time; also protects the lifecycle. *)
let region_mutex = Mutex.create ()

let size () =
  match !requested with
  | Some n -> n
  | None ->
    let n = default_size () in
    requested := Some n;
    n

let shutdown_pool p =
  Mutex.lock p.mutex;
  p.stopping <- true;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.domains

let shutdown () =
  Mutex.lock region_mutex;
  (match !pool with
   | Some p -> shutdown_pool p
   | None -> ());
  pool := None;
  Mutex.unlock region_mutex

let set_size n =
  let n = clamp_size n in
  Mutex.lock region_mutex;
  (match !pool with
   | Some p when p.lanes <> n ->
     shutdown_pool p;
     pool := None
   | _ -> ());
  requested := Some n;
  Mutex.unlock region_mutex

(* caller holds region_mutex *)
let get_pool () =
  match !pool with
  | Some p when p.lanes = size () -> p
  | other ->
    (match other with Some p -> shutdown_pool p | None -> ());
    let p = make_pool (size ()) in
    pool := Some p;
    p

(* ------------------------------------------------------------------ *)
(* Parallel iteration                                                  *)
(* ------------------------------------------------------------------ *)

let run_parallel chunks body =
  Mutex.lock region_mutex;
  let p = get_pool () in
  let j =
    { chunks; body; next = Atomic.make 0;
      pending = Atomic.make (Array.length chunks);
      err = Atomic.make None }
  in
  Mutex.lock p.mutex;
  p.job <- Some j;
  p.epoch <- p.epoch + 1;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  Domain.DLS.set in_parallel true;
  run_job j;
  (* workers may still be draining their claimed chunks *)
  while Atomic.get j.pending > 0 do
    Domain.cpu_relax ()
  done;
  Domain.DLS.set in_parallel false;
  Mutex.lock p.mutex;
  p.job <- None;
  Mutex.unlock p.mutex;
  let err = Atomic.get j.err in
  Mutex.unlock region_mutex;
  match err with Some e -> raise e | None -> ()

let sequential_ok ~grain ~lo ~hi =
  size () = 1 || hi - lo <= grain || Domain.DLS.get in_parallel

let parallel_for ?(grain = default_grain) ~lo ~hi body =
  if sequential_ok ~grain ~lo ~hi then
    for i = lo to hi - 1 do
      body i
    done
  else
    run_parallel (chunk_ranges ~grain ~lo ~hi) (fun _ clo chi ->
        for i = clo to chi - 1 do
          body i
        done)

let parallel_for_ranges ?(grain = default_grain) ~lo ~hi body =
  if hi > lo then begin
    if sequential_ok ~grain ~lo ~hi then body lo hi
    else run_parallel (chunk_ranges ~grain ~lo ~hi) (fun _ clo chi -> body clo chi)
  end

let map_chunks ?(grain = default_grain) ~lo ~hi f =
  let chunks = chunk_ranges ~grain ~lo ~hi in
  let n = Array.length chunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    (* same chunk layout either way, so reductions associate identically *)
    if size () = 1 || n = 1 || Domain.DLS.get in_parallel then
      Array.iteri
        (fun i (clo, chi) -> results.(i) <- Some (f clo chi))
        chunks
    else
      run_parallel chunks (fun i clo chi -> results.(i) <- Some (f clo chi));
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.map_chunks: missing chunk result")
      results
  end

let parallel_for_reduce ?grain ~lo ~hi ~init ~reduce map =
  Array.fold_left reduce init (map_chunks ?grain ~lo ~hi map)
