(** A fixed-size domain pool for data-parallel raster kernels.

    One pool per process, created lazily on the first parallel call and
    reused for every subsequent one — OCaml domains are heavyweight
    (roughly a system thread plus a minor heap), so spawning per call
    would dwarf the kernels it accelerates.  The pool holds
    [size () - 1] worker domains; the calling domain is the remaining
    lane and always participates in the work, so [size ()] is the
    degree of parallelism.

    {2 Determinism}

    Chunk boundaries depend only on [(lo, hi, grain)] — {e never} on
    the pool size — and reductions combine per-chunk partial results in
    ascending chunk order.  A computation therefore produces
    bit-identical results at any pool size (only the scheduling of
    chunks onto domains varies), which is what the parity tests in
    [test/test_par.ml] assert.  Bodies must write disjoint locations
    and must not depend on evaluation order across chunks.

    {2 Sequential fallback}

    A call degrades to a plain loop (same chunking for reductions) when
    the pool size is 1, when the range is at most one grain, or when it
    is issued from inside another parallel region (no nested
    parallelism).  *)

val default_grain : int
(** Indices per chunk when [?grain] is omitted (pixels, for raster
    kernels): 4096 — small enough that a 512x512 image splits into 64
    chunks, large enough that per-chunk overhead is noise. *)

val max_size : int
(** Hard cap on the pool size (8): past that, raster kernels here are
    memory-bandwidth bound and extra domains only add scheduling
    noise. *)

val size : unit -> int
(** Degree of parallelism the next parallel call will use.  Defaults to
    [min max_size (Domain.recommended_domain_count ())], i.e. one
    caller lane plus [recommended - 1] workers; the [GAEA_DOMAINS]
    environment variable overrides the default at startup. *)

val set_size : int -> unit
(** Resize the pool (clamped to [1 .. max_size]).  Shuts the current
    worker domains down and respawns lazily — meant for benchmarks and
    parity tests; production code sets [GAEA_DOMAINS] once. *)

val parallel_for : ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~lo ~hi body] runs [body i] for every [lo <= i < hi].
    The body must be safe to run concurrently for distinct [i].
    Exceptions raised by the body are re-raised in the caller (first
    one wins). *)

val parallel_for_ranges :
  ?grain:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for_ranges ~lo ~hi body] runs [body clo chi] once per
    chunk, [clo] inclusive and [chi] exclusive.  Chunk-level bodies
    avoid a closure call per index on tight pixel loops. *)

val map_chunks : ?grain:int -> lo:int -> hi:int -> (int -> int -> 'a) -> 'a array
(** [map_chunks ~lo ~hi f] computes [f clo chi] for every chunk and
    returns the results in ascending chunk order (deterministic at any
    pool size).  An empty range yields [||]. *)

val parallel_for_reduce :
  ?grain:int -> lo:int -> hi:int -> init:'a -> reduce:('a -> 'a -> 'a)
  -> (int -> int -> 'a) -> 'a
(** [parallel_for_reduce ~lo ~hi ~init ~reduce map] computes [map clo
    chi] per chunk and folds [reduce] left-to-right over the results —
    i.e. [reduce (... (reduce init r0) ...) rn] — so float
    accumulations associate identically at any pool size. *)

val shutdown : unit -> unit
(** Join the worker domains (the pool respawns lazily if used again).
    Only needed by code that counts live domains. *)
