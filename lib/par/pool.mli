(** A fixed-size domain pool for data-parallel raster kernels and
    coarse-grained derivation tasks.

    One pool per process, created lazily on the first parallel call and
    reused for every subsequent one — OCaml domains are heavyweight
    (roughly a system thread plus a minor heap), so spawning per call
    would dwarf the kernels it accelerates.  The pool holds
    [size () - 1] worker domains; the calling domain is the remaining
    lane and always participates in the work, so [size ()] is the
    degree of parallelism.

    {2 Determinism}

    Chunk boundaries depend only on [(lo, hi, grain)] — {e never} on
    the pool size — and reductions combine per-chunk partial results in
    ascending chunk order.  A computation therefore produces
    bit-identical results at any pool size (only the scheduling of
    chunks onto domains varies), which is what the parity tests in
    [test/test_par.ml] assert.  Bodies must write disjoint locations
    and must not depend on evaluation order across chunks.

    {2 Dispatch cost and the adaptive cutoff}

    Entering a parallel region costs a region lock, an epoch bump and
    (worst case) a condvar wakeup per sleeping worker — microseconds,
    i.e. millions of float adds.  Workers spin briefly before blocking
    and the caller helps with the work before spinning on completion,
    but no amount of protocol tuning makes a 9k-pixel subtraction worth
    distributing.  Every iteration entry point therefore compares the
    estimated work ([range length * cost]) against
    {!min_parallel_work}, a per-host threshold calibrated once on
    first use, and falls back to the plain sequential loop (same chunk
    layout for reductions) below it.  On a 1-domain host the threshold
    is [max_int]: parallelism can never pay there.

    {2 Sequential fallback}

    Independent of the cutoff, a call degrades to a plain loop when the
    pool size is 1, when the range is at most one grain, or when it is
    issued from inside another parallel region (no nested
    parallelism).  *)

val default_grain : int
(** Indices per chunk when [?grain] is omitted (pixels, for raster
    kernels): 4096 — small enough that a 512x512 image splits into 64
    chunks, large enough that per-chunk overhead is noise. *)

val max_size : int
(** Hard cap on the pool size (8): past that, raster kernels here are
    memory-bandwidth bound and extra domains only add scheduling
    noise. *)

val size : unit -> int
(** Degree of parallelism the next parallel call will use.  Defaults to
    [min max_size (Domain.recommended_domain_count ())], i.e. one
    caller lane plus [recommended - 1] workers; the [GAEA_DOMAINS]
    environment variable overrides the default at startup. *)

val set_size : int -> unit
(** Resize the pool (clamped to [1 .. max_size]).  Shuts the current
    worker domains down and respawns lazily — meant for benchmarks and
    parity tests; production code sets [GAEA_DOMAINS] once.  Called
    from inside a parallel region (where resizing immediately would
    deadlock on the region lock), it only records the request, which
    takes effect when the next region starts. *)

val min_parallel_work : unit -> int
(** The adaptive sequential cutoff: estimated work units ([range
    length * cost]) below which the iteration entry points stay
    sequential.  Resolution order: {!set_min_parallel_work} override,
    the [GAEA_MIN_PAR_WORK] environment variable, [max_int] on hosts
    where [Domain.recommended_domain_count () = 1], else a value
    calibrated once per process (about ten pool dispatches' worth of
    float-add work, clamped to [default_grain .. 16M]). *)

val set_min_parallel_work : int option -> unit
(** Override the cutoff ([Some 0] forces the parallel path — used by
    the parity tests); [None] restores calibration. *)

val parallel_for :
  ?grain:int -> ?cost:float -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~lo ~hi body] runs [body i] for every [lo <= i < hi].
    The body must be safe to run concurrently for distinct [i].
    Exceptions raised by the body are re-raised in the caller (first
    one wins); remaining chunks still run, so the pool stays reusable.
    [?cost] scales the cutoff comparison: the per-index work relative
    to one float add (default [1.0]) — expensive kernels (k-means,
    maxlike) pass a larger cost so they parallelize at sizes where a
    plain subtraction would not. *)

val parallel_for_ranges :
  ?grain:int -> ?cost:float -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for_ranges ~lo ~hi body] runs [body clo chi] once per
    chunk, [clo] inclusive and [chi] exclusive.  Chunk-level bodies
    avoid a closure call per index on tight pixel loops.  On the
    sequential path the whole range is one call: [body lo hi]. *)

val map_chunks :
  ?grain:int -> ?cost:float -> lo:int -> hi:int -> (int -> int -> 'a)
  -> 'a array
(** [map_chunks ~lo ~hi f] computes [f clo chi] for every chunk and
    returns the results in ascending chunk order (deterministic at any
    pool size; the sequential path uses the {e same} chunk layout).
    An empty range yields [||]. *)

val parallel_for_reduce :
  ?grain:int -> ?cost:float -> lo:int -> hi:int -> init:'a
  -> reduce:('a -> 'a -> 'a) -> (int -> int -> 'a) -> 'a
(** [parallel_for_reduce ~lo ~hi ~init ~reduce map] computes [map clo
    chi] per chunk and folds [reduce] left-to-right over the results —
    i.e. [reduce (... (reduce init r0) ...) rn] — so float
    accumulations associate identically at any pool size. *)

val parallel_batch : (unit -> 'a) array -> 'a array
(** [parallel_batch thunks] runs every thunk (one pool lane each, the
    caller included) and returns their results in order.  Meant for
    coarse-grained jobs — independent sub-derivations, not pixel loops
    — so it is {e not} subject to {!min_parallel_work}; it only falls
    back to sequential execution when the pool size is 1, when called
    from inside a parallel region, or for a single thunk.  All thunks
    run even if one raises; the first exception (in claim order) is
    re-raised after the batch completes, in both modes. *)

val shutdown : unit -> unit
(** Join the worker domains (the pool respawns lazily if used again).
    Only needed by code that counts live domains. *)
