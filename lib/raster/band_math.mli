(** Per-pixel arithmetic between image bands.

    These are the low-level operators behind the paper's motivating
    scenario (Section 1): one scientist {e subtracts} the 1988 NDVI from
    the 1989 NDVI, another {e divides} them — same concept, different
    derivation. *)

val subtract : ?label:string -> Image.t -> Image.t -> Image.t
(** [subtract a b] = a - b, in [Float8].
    @raise Invalid_argument on size mismatch (all operators here). *)

val divide : ?label:string -> Image.t -> Image.t -> Image.t
(** [divide a b] = a / b; pixels where [b] is 0 yield 0. *)

val ratio : ?label:string -> Image.t -> Image.t -> Image.t
(** Normalized ratio (a-b)/(a+b); 0 where the denominator is 0. *)

val add : ?label:string -> Image.t -> Image.t -> Image.t
val multiply : ?label:string -> Image.t -> Image.t -> Image.t
val scale : ?label:string -> float -> Image.t -> Image.t
val offset : ?label:string -> float -> Image.t -> Image.t
val abs_diff : ?label:string -> Image.t -> Image.t -> Image.t

val linear_combination : ?label:string -> float array -> Image.t list
  -> Image.t
(** [linear_combination w imgs] = Σ wᵢ·imgᵢ — the [linear-combination]
    operator of the PCA network (Fig 4).
    @raise Invalid_argument if weights and images differ in number, the
    list is empty, or sizes mismatch. *)

val normalize : ?label:string -> ?lo:float -> ?hi:float -> Image.t -> Image.t
(** Affinely rescale pixel values onto [lo, hi] (default 0..1).
    A constant image maps to [lo]. *)

val threshold : ?label:string -> float -> Image.t -> Image.t
(** Binary mask: 1 where pixel >= threshold else 0 (Char image) — used
    for the rainfall-cutoff desert processes. *)
