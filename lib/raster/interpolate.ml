let temporal_linear ~at (t1, img1) (t2, img2) =
  if not (Image.img_size_eq img1 img2) then
    invalid_arg "Interpolate.temporal_linear: size mismatch";
  let s1 = Gaea_geo.Abstime.to_seconds t1
  and s2 = Gaea_geo.Abstime.to_seconds t2 in
  if s1 = s2 then
    invalid_arg "Interpolate.temporal_linear: identical timestamps";
  let w =
    float_of_int (Gaea_geo.Abstime.to_seconds at - s1) /. float_of_int (s2 - s1)
  in
  Image.par_map2 ~label:"temporal-interp" ~ptype:Pixel.Float8
    (fun a b -> a +. (w *. (b -. a)))
    img1 img2

let resize_nearest img ~nrow ~ncol =
  let src_r = Image.img_nrow img and src_c = Image.img_ncol img in
  Image.init ~label:"resize-nearest" ~nrow ~ncol (Image.img_type img)
    (fun r c ->
      let sr = r * src_r / nrow and sc = c * src_c / ncol in
      Image.get img (Stdlib.min sr (src_r - 1)) (Stdlib.min sc (src_c - 1)))

let resize_bilinear img ~nrow ~ncol =
  let src_r = Image.img_nrow img and src_c = Image.img_ncol img in
  Image.par_init ~label:"resize-bilinear" ~cost:16. ~nrow ~ncol Pixel.Float8
    (fun r c ->
      (* map output pixel center into source coordinates *)
      let fy =
        (float_of_int r +. 0.5) /. float_of_int nrow *. float_of_int src_r
        -. 0.5
      and fx =
        (float_of_int c +. 0.5) /. float_of_int ncol *. float_of_int src_c
        -. 0.5
      in
      let fy = Float.max 0. (Float.min fy (float_of_int (src_r - 1)))
      and fx = Float.max 0. (Float.min fx (float_of_int (src_c - 1))) in
      let y0 = int_of_float (Float.floor fy) in
      let x0 = int_of_float (Float.floor fx) in
      let y1 = Stdlib.min (y0 + 1) (src_r - 1) in
      let x1 = Stdlib.min (x0 + 1) (src_c - 1) in
      let dy = fy -. float_of_int y0 and dx = fx -. float_of_int x0 in
      let v00 = Image.get img y0 x0 and v01 = Image.get img y0 x1 in
      let v10 = Image.get img y1 x0 and v11 = Image.get img y1 x1 in
      ((v00 *. (1. -. dx)) +. (v01 *. dx)) *. (1. -. dy)
      +. (((v10 *. (1. -. dx)) +. (v11 *. dx)) *. dy))

let fill_missing ?(missing = Float.nan) img =
  let nrow = Image.img_nrow img and ncol = Image.img_ncol img in
  let is_missing v =
    if Float.is_nan missing then Float.is_nan v else v = missing
  in
  (* image mean over valid pixels, fallback for isolated holes *)
  let valid_sum = ref 0. and valid_n = ref 0 in
  Image.iter
    (fun v ->
      if not (is_missing v) then begin
        valid_sum := !valid_sum +. v;
        incr valid_n
      end)
    img;
  let global_mean =
    if !valid_n = 0 then 0. else !valid_sum /. float_of_int !valid_n
  in
  let current = ref (Image.copy img) in
  let remaining = ref true in
  let rounds = ref 0 in
  while !remaining && !rounds <= nrow + ncol do
    incr rounds;
    remaining := false;
    let next = Image.copy !current in
    let any_filled = ref false in
    for r = 0 to nrow - 1 do
      for c = 0 to ncol - 1 do
        if is_missing (Image.get !current r c) then begin
          let sum = ref 0. and n = ref 0 in
          for dr = -1 to 1 do
            for dc = -1 to 1 do
              if dr <> 0 || dc <> 0 then begin
                let rr = r + dr and cc = c + dc in
                if rr >= 0 && rr < nrow && cc >= 0 && cc < ncol then begin
                  let v = Image.get !current rr cc in
                  if not (is_missing v) then begin
                    sum := !sum +. v;
                    incr n
                  end
                end
              end
            done
          done;
          if !n > 0 then begin
            Image.set next r c (!sum /. float_of_int !n);
            any_filled := true
          end
          else remaining := true
        end
      done
    done;
    (* a fully missing image (or isolated region) falls back to the mean *)
    if !remaining && not !any_filled then begin
      for r = 0 to nrow - 1 do
        for c = 0 to ncol - 1 do
          if is_missing (Image.get next r c) then
            Image.set next r c global_mean
        done
      done;
      remaining := false
    end;
    current := next
  done;
  !current
