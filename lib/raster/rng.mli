(** Deterministic, splittable pseudo-random numbers (SplitMix64).

    All synthetic data in the reproduction is generated through this
    module so that every experiment is bit-reproducible from a seed —
    reproducibility of derivations being the paper's central promise. *)

type t

val create : int -> t
(** A generator from a seed. Generators are mutable. *)

val copy : t -> t
val split : t -> t
(** An independent stream derived from the current state. *)

val int64 : t -> int64
val bits : t -> int
(** 30 uniform non-negative bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n).  @raise Invalid_argument if n <= 0. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val gaussian : t -> float
(** Standard normal (Box–Muller). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
