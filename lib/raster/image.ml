type t = {
  nrow : int;
  ncol : int;
  ptype : Pixel.t;
  label : string;
  data : float array;
}

let check_dims nrow ncol =
  if nrow <= 0 || ncol <= 0 then
    invalid_arg (Printf.sprintf "Image: non-positive dims %dx%d" nrow ncol)

let create ?(label = "") ~nrow ~ncol ptype =
  check_dims nrow ncol;
  { nrow; ncol; ptype; label; data = Array.make (nrow * ncol) 0. }

let init ?(label = "") ~nrow ~ncol ptype f =
  check_dims nrow ncol;
  let data =
    Array.init (nrow * ncol) (fun i ->
        Pixel.quantize ptype (f (i / ncol) (i mod ncol)))
  in
  { nrow; ncol; ptype; label; data }

let img_nrow t = t.nrow
let img_ncol t = t.ncol
let img_type t = t.ptype
let img_label t = t.label
let img_size_eq a b = a.nrow = b.nrow && a.ncol = b.ncol
let size t = t.nrow * t.ncol

let check_bounds t r c =
  if r < 0 || r >= t.nrow || c < 0 || c >= t.ncol then
    invalid_arg
      (Printf.sprintf "Image: pixel (%d,%d) outside %dx%d" r c t.nrow t.ncol)

let get t r c =
  check_bounds t r c;
  t.data.((r * t.ncol) + c)

let set t r c v =
  check_bounds t r c;
  t.data.((r * t.ncol) + c) <- Pixel.quantize t.ptype v

let get_linear t i =
  if i < 0 || i >= Array.length t.data then
    invalid_arg (Printf.sprintf "Image.get_linear: index %d" i);
  t.data.(i)

let set_linear t i v =
  if i < 0 || i >= Array.length t.data then
    invalid_arg (Printf.sprintf "Image.set_linear: index %d" i);
  t.data.(i) <- Pixel.quantize t.ptype v

let map ?(label = "") ?ptype f t =
  let ptype = Option.value ptype ~default:t.ptype in
  { nrow = t.nrow; ncol = t.ncol; ptype; label;
    data = Array.map (fun v -> Pixel.quantize ptype (f v)) t.data }

let map2 ?(label = "") ?ptype f a b =
  if not (img_size_eq a b) then
    invalid_arg
      (Printf.sprintf "Image.map2: size mismatch %dx%d vs %dx%d" a.nrow
         a.ncol b.nrow b.ncol);
  let ptype = Option.value ptype ~default:a.ptype in
  { nrow = a.nrow; ncol = a.ncol; ptype; label;
    data =
      Array.init (Array.length a.data) (fun i ->
          Pixel.quantize ptype (f a.data.(i) b.data.(i))) }

let mapi ?(label = "") ?ptype f t =
  let ptype = Option.value ptype ~default:t.ptype in
  { nrow = t.nrow; ncol = t.ncol; ptype; label;
    data =
      Array.init (Array.length t.data) (fun i ->
          Pixel.quantize ptype (f (i / t.ncol) (i mod t.ncol) t.data.(i))) }

(* Parallel variants: same results as init/map/map2/mapi at any pool
   size (disjoint writes, deterministic chunking).  The closure must be
   pure — it runs concurrently on pool domains. *)

let par_init ?(label = "") ?cost ~nrow ~ncol ptype f =
  check_dims nrow ncol;
  let n = nrow * ncol in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ?cost ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i (Pixel.quantize ptype (f (i / ncol) (i mod ncol)))
      done);
  { nrow; ncol; ptype; label; data }

let par_map ?(label = "") ?ptype ?cost f t =
  let ptype = Option.value ptype ~default:t.ptype in
  let n = Array.length t.data in
  let src = t.data in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ?cost ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i
          (Pixel.quantize ptype (f (Array.unsafe_get src i)))
      done);
  { nrow = t.nrow; ncol = t.ncol; ptype; label; data }

let par_map2 ?(label = "") ?ptype ?cost f a b =
  if not (img_size_eq a b) then
    invalid_arg
      (Printf.sprintf "Image.par_map2: size mismatch %dx%d vs %dx%d" a.nrow
         a.ncol b.nrow b.ncol);
  let ptype = Option.value ptype ~default:a.ptype in
  let n = Array.length a.data in
  let xs = a.data and ys = b.data in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ?cost ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i
          (Pixel.quantize ptype
             (f (Array.unsafe_get xs i) (Array.unsafe_get ys i)))
      done);
  { nrow = a.nrow; ncol = a.ncol; ptype; label; data }

let par_mapi ?(label = "") ?ptype ?cost f t =
  let ptype = Option.value ptype ~default:t.ptype in
  let n = Array.length t.data in
  let ncol = t.ncol in
  let src = t.data in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ?cost ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i
          (Pixel.quantize ptype
             (f (i / ncol) (i mod ncol) (Array.unsafe_get src i)))
      done);
  { nrow = t.nrow; ncol = t.ncol; ptype; label; data }

let fold f acc t = Array.fold_left f acc t.data
let iter f t = Array.iter f t.data

let copy ?label t =
  { t with data = Array.copy t.data;
           label = Option.value label ~default:t.label }

let with_ptype ptype t =
  { t with ptype; data = Array.map (Pixel.quantize ptype) t.data }

(* NaN pixels (cloud holes) compare equal regardless of payload bits *)
let float_bits v =
  if Float.is_nan v then 0x7ff8000000000000L else Int64.bits_of_float v

let equal a b =
  a.nrow = b.nrow && a.ncol = b.ncol
  && Pixel.equal a.ptype b.ptype
  && Array.for_all2 (fun x y -> float_bits x = float_bits y) a.data b.data

(* FNV-1a over dims, pixel type and the raw float bits.  The 64-bit
   state lives in two untagged 32-bit int limbs (hi, lo) so the loop
   allocates no boxed Int64 per pixel; the limb arithmetic reproduces
   64-bit [state <- (state lxor v) * 0x100000001b3] exactly (the prime
   is 2^40 + 0x1b3, so the hi limb gets [xhi*0x1b3 + carry + xlo<<8]).
   Values are unchanged from the boxed-Int64 implementation — a parity
   test in test_raster.ml checks against it. *)
let content_hash t =
  let hi = ref 0xcbf29ce4 and lo = ref 0x84222325 in
  let feed vhi vlo =
    let xhi = !hi lxor vhi and xlo = !lo lxor vlo in
    let m = xlo * 0x1b3 in
    lo := m land 0xFFFFFFFF;
    hi :=
      ((xhi * 0x1b3) + (m lsr 32) + ((xlo land 0xFFFFFF) lsl 8))
      land 0xFFFFFFFF
  in
  let feed_int v = feed ((v asr 32) land 0xFFFFFFFF) (v land 0xFFFFFFFF) in
  feed_int t.nrow;
  feed_int t.ncol;
  feed_int (Pixel.size_bytes t.ptype);
  Array.iter
    (fun v ->
      if Float.is_nan v then feed 0x7ff80000 0
      else begin
        (* low 63 bits via to_int; the sign bit read off the float *)
        let lo63 = Int64.to_int (Int64.bits_of_float v) in
        let vhi =
          ((lo63 lsr 32) land 0x7FFFFFFF)
          lor (if v < 0. || (v = 0. && 1. /. v < 0.) then 0x80000000 else 0)
        in
        feed vhi (lo63 land 0xFFFFFFFF)
      end)
    t.data;
  (!hi lsl 30) lor (!lo lsr 2)

(* NaN pixels (cloud holes) are skipped; an all-NaN image yields
   (infinity, neg_infinity) *)
let min_max t =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun v ->
      if not (Float.is_nan v) then begin
        if v < !lo then lo := v;
        if v > !hi then hi := v
      end)
    t.data;
  (!lo, !hi)

let to_list t = Array.to_list t.data

let of_array ?(label = "") ~nrow ~ncol ptype data =
  check_dims nrow ncol;
  if Array.length data <> nrow * ncol then
    invalid_arg
      (Printf.sprintf "Image.of_array: %d values for %dx%d image"
         (Array.length data) nrow ncol);
  { nrow; ncol; ptype; label;
    data = Array.map (Pixel.quantize ptype) data }

let unsafe_data t = t.data

let unsafe_of_array ?(label = "") ~nrow ~ncol ptype data =
  check_dims nrow ncol;
  if Array.length data <> nrow * ncol then
    invalid_arg
      (Printf.sprintf "Image.unsafe_of_array: %d values for %dx%d image"
         (Array.length data) nrow ncol);
  { nrow; ncol; ptype; label; data }

let pp fmt t =
  Format.fprintf fmt "image<%dx%d:%s%s>" t.nrow t.ncol
    (Pixel.to_string t.ptype)
    (if t.label = "" then "" else " " ^ t.label)

let pp_ascii ?(levels = " .:-=+*#%@") fmt t =
  let lo, hi = min_max t in
  let span = if hi > lo then hi -. lo else 1. in
  let n = String.length levels in
  for r = 0 to t.nrow - 1 do
    for c = 0 to t.ncol - 1 do
      let v = t.data.((r * t.ncol) + c) in
      if Float.is_nan v then Format.pp_print_char fmt '?'
      else begin
        let i = int_of_float ((v -. lo) /. span *. float_of_int (n - 1)) in
        let i = if i < 0 then 0 else if i >= n then n - 1 else i in
        Format.pp_print_char fmt levels.[i]
      end
    done;
    Format.pp_print_newline fmt ()
  done
