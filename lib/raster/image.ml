type t = {
  nrow : int;
  ncol : int;
  ptype : Pixel.t;
  label : string;
  data : float array;
}

let check_dims nrow ncol =
  if nrow <= 0 || ncol <= 0 then
    invalid_arg (Printf.sprintf "Image: non-positive dims %dx%d" nrow ncol)

let create ?(label = "") ~nrow ~ncol ptype =
  check_dims nrow ncol;
  { nrow; ncol; ptype; label; data = Array.make (nrow * ncol) 0. }

let init ?(label = "") ~nrow ~ncol ptype f =
  check_dims nrow ncol;
  let data =
    Array.init (nrow * ncol) (fun i ->
        Pixel.quantize ptype (f (i / ncol) (i mod ncol)))
  in
  { nrow; ncol; ptype; label; data }

let img_nrow t = t.nrow
let img_ncol t = t.ncol
let img_type t = t.ptype
let img_label t = t.label
let img_size_eq a b = a.nrow = b.nrow && a.ncol = b.ncol
let size t = t.nrow * t.ncol

let check_bounds t r c =
  if r < 0 || r >= t.nrow || c < 0 || c >= t.ncol then
    invalid_arg
      (Printf.sprintf "Image: pixel (%d,%d) outside %dx%d" r c t.nrow t.ncol)

let get t r c =
  check_bounds t r c;
  t.data.((r * t.ncol) + c)

let set t r c v =
  check_bounds t r c;
  t.data.((r * t.ncol) + c) <- Pixel.quantize t.ptype v

let get_linear t i =
  if i < 0 || i >= Array.length t.data then
    invalid_arg (Printf.sprintf "Image.get_linear: index %d" i);
  t.data.(i)

let set_linear t i v =
  if i < 0 || i >= Array.length t.data then
    invalid_arg (Printf.sprintf "Image.set_linear: index %d" i);
  t.data.(i) <- Pixel.quantize t.ptype v

let map ?(label = "") ?ptype f t =
  let ptype = Option.value ptype ~default:t.ptype in
  { nrow = t.nrow; ncol = t.ncol; ptype; label;
    data = Array.map (fun v -> Pixel.quantize ptype (f v)) t.data }

let map2 ?(label = "") ?ptype f a b =
  if not (img_size_eq a b) then
    invalid_arg
      (Printf.sprintf "Image.map2: size mismatch %dx%d vs %dx%d" a.nrow
         a.ncol b.nrow b.ncol);
  let ptype = Option.value ptype ~default:a.ptype in
  { nrow = a.nrow; ncol = a.ncol; ptype; label;
    data =
      Array.init (Array.length a.data) (fun i ->
          Pixel.quantize ptype (f a.data.(i) b.data.(i))) }

let mapi ?(label = "") ?ptype f t =
  let ptype = Option.value ptype ~default:t.ptype in
  { nrow = t.nrow; ncol = t.ncol; ptype; label;
    data =
      Array.init (Array.length t.data) (fun i ->
          Pixel.quantize ptype (f (i / t.ncol) (i mod t.ncol) t.data.(i))) }

(* Parallel variants: same results as init/map/map2/mapi at any pool
   size (disjoint writes, deterministic chunking).  The closure must be
   pure — it runs concurrently on pool domains. *)

let par_init ?(label = "") ~nrow ~ncol ptype f =
  check_dims nrow ncol;
  let n = nrow * ncol in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i (Pixel.quantize ptype (f (i / ncol) (i mod ncol)))
      done);
  { nrow; ncol; ptype; label; data }

let par_map ?(label = "") ?ptype f t =
  let ptype = Option.value ptype ~default:t.ptype in
  let n = Array.length t.data in
  let src = t.data in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i
          (Pixel.quantize ptype (f (Array.unsafe_get src i)))
      done);
  { nrow = t.nrow; ncol = t.ncol; ptype; label; data }

let par_map2 ?(label = "") ?ptype f a b =
  if not (img_size_eq a b) then
    invalid_arg
      (Printf.sprintf "Image.par_map2: size mismatch %dx%d vs %dx%d" a.nrow
         a.ncol b.nrow b.ncol);
  let ptype = Option.value ptype ~default:a.ptype in
  let n = Array.length a.data in
  let xs = a.data and ys = b.data in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i
          (Pixel.quantize ptype
             (f (Array.unsafe_get xs i) (Array.unsafe_get ys i)))
      done);
  { nrow = a.nrow; ncol = a.ncol; ptype; label; data }

let par_mapi ?(label = "") ?ptype f t =
  let ptype = Option.value ptype ~default:t.ptype in
  let n = Array.length t.data in
  let ncol = t.ncol in
  let src = t.data in
  let data = Array.make n 0. in
  Gaea_par.Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i
          (Pixel.quantize ptype
             (f (i / ncol) (i mod ncol) (Array.unsafe_get src i)))
      done);
  { nrow = t.nrow; ncol = t.ncol; ptype; label; data }

let fold f acc t = Array.fold_left f acc t.data
let iter f t = Array.iter f t.data

let copy ?label t =
  { t with data = Array.copy t.data;
           label = Option.value label ~default:t.label }

let with_ptype ptype t =
  { t with ptype; data = Array.map (Pixel.quantize ptype) t.data }

(* NaN pixels (cloud holes) compare equal regardless of payload bits *)
let float_bits v =
  if Float.is_nan v then 0x7ff8000000000000L else Int64.bits_of_float v

let equal a b =
  a.nrow = b.nrow && a.ncol = b.ncol
  && Pixel.equal a.ptype b.ptype
  && Array.for_all2 (fun x y -> float_bits x = float_bits y) a.data b.data

(* FNV-1a over dims, pixel type and the raw float bits. *)
let content_hash t =
  let h = ref 0xcbf29ce484222325L in
  let feed v =
    h := Int64.mul (Int64.logxor !h v) 0x100000001b3L
  in
  feed (Int64.of_int t.nrow);
  feed (Int64.of_int t.ncol);
  feed (Int64.of_int (Pixel.size_bytes t.ptype));
  Array.iter (fun v -> feed (float_bits v)) t.data;
  Int64.to_int (Int64.shift_right_logical !h 2)

let min_max t =
  Array.fold_left
    (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
    (infinity, neg_infinity) t.data

let to_list t = Array.to_list t.data

let of_array ?(label = "") ~nrow ~ncol ptype data =
  check_dims nrow ncol;
  if Array.length data <> nrow * ncol then
    invalid_arg
      (Printf.sprintf "Image.of_array: %d values for %dx%d image"
         (Array.length data) nrow ncol);
  { nrow; ncol; ptype; label;
    data = Array.map (Pixel.quantize ptype) data }

let unsafe_data t = t.data

let pp fmt t =
  Format.fprintf fmt "image<%dx%d:%s%s>" t.nrow t.ncol
    (Pixel.to_string t.ptype)
    (if t.label = "" then "" else " " ^ t.label)

let pp_ascii ?(levels = " .:-=+*#%@") fmt t =
  let lo, hi = min_max t in
  let span = if hi > lo then hi -. lo else 1. in
  let n = String.length levels in
  for r = 0 to t.nrow - 1 do
    for c = 0 to t.ncol - 1 do
      let v = t.data.((r * t.ncol) + c) in
      let i = int_of_float ((v -. lo) /. span *. float_of_int (n - 1)) in
      let i = if i < 0 then 0 else if i >= n then n - 1 else i in
      Format.pp_print_char fmt levels.[i]
    done;
    Format.pp_print_newline fmt ()
  done
