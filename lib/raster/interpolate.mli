(** Interpolation — step 2 of the paper's query-answering sequence
    (Section 2.1.5): "Interpolation can be used in many situations where
    data are missing.  It is a generic derivation process which is
    applicable to many data types in many domains." *)

val temporal_linear :
  at:Gaea_geo.Abstime.t ->
  Gaea_geo.Abstime.t * Image.t ->
  Gaea_geo.Abstime.t * Image.t ->
  Image.t
(** Per-pixel linear interpolation between two snapshots of the same
    scene.  [at] may lie outside the bracket (extrapolation).
    @raise Invalid_argument on size mismatch or equal timestamps. *)

val resize_nearest : Image.t -> nrow:int -> ncol:int -> Image.t
(** Spatial resampling by nearest neighbour. *)

val resize_bilinear : Image.t -> nrow:int -> ncol:int -> Image.t
(** Spatial resampling by bilinear interpolation (result Float8). *)

val fill_missing : ?missing:float -> Image.t -> Image.t
(** Replace [missing]-valued pixels (default [nan]) with the mean of
    their non-missing 8-neighbours; pixels with no valid neighbour get
    the image mean.  Iterates until no missing pixel remains. *)
