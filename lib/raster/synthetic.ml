type scene = {
  composite : Composite.t;
  truth : Image.t;
  extent : Gaea_geo.Extent.t;
}

(* Hash-based lattice gradient so noise is a pure function of
   (seed, octave, cell) — no dependence on evaluation order. *)
let lattice_value seed octave gx gy =
  let h = ref (Int64.of_int ((seed * 0x9E3779B1) lxor octave)) in
  let mix v =
    h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L;
    h := Int64.logxor !h (Int64.shift_right_logical !h 29)
  in
  mix (gx * 2654435761);
  mix (gy * 40503);
  Int64.to_float (Int64.logand !h 0xFFFFFFL) /. 16777215.

let smoothstep t = t *. t *. (3. -. (2. *. t))

let value_noise ~seed ~nrow ~ncol ?(octaves = 3) ?(lattice = 16) () =
  if octaves < 1 then invalid_arg "Synthetic.value_noise: octaves < 1";
  if lattice < 1 then invalid_arg "Synthetic.value_noise: lattice < 1";
  let sample octave cell r c =
    let fr = float_of_int r /. float_of_int cell
    and fc = float_of_int c /. float_of_int cell in
    let r0 = int_of_float (Float.floor fr)
    and c0 = int_of_float (Float.floor fc) in
    let dr = smoothstep (fr -. float_of_int r0)
    and dc = smoothstep (fc -. float_of_int c0) in
    let v00 = lattice_value seed octave c0 r0
    and v01 = lattice_value seed octave (c0 + 1) r0
    and v10 = lattice_value seed octave c0 (r0 + 1)
    and v11 = lattice_value seed octave (c0 + 1) (r0 + 1) in
    ((v00 *. (1. -. dc)) +. (v01 *. dc)) *. (1. -. dr)
    +. (((v10 *. (1. -. dc)) +. (v11 *. dc)) *. dr)
  in
  let total_weight = ref 0. and weights = Array.make octaves 0. in
  for o = 0 to octaves - 1 do
    weights.(o) <- 1. /. float_of_int (1 lsl o);
    total_weight := !total_weight +. weights.(o)
  done;
  Image.init ~label:"value-noise" ~nrow ~ncol Pixel.Float8 (fun r c ->
      let acc = ref 0. in
      for o = 0 to octaves - 1 do
        let cell = Stdlib.max 1 (lattice lsr o) in
        acc := !acc +. (weights.(o) *. sample o cell r c)
      done;
      !acc /. !total_weight)

let landcover_truth ~seed ~nrow ~ncol ~classes =
  if classes < 1 then invalid_arg "Synthetic.landcover_truth: classes < 1";
  let field = value_noise ~seed ~nrow ~ncol ~octaves:3 ~lattice:(Stdlib.max 4 (nrow / 4)) () in
  let lo, hi = Image.min_max field in
  let span = if hi > lo then hi -. lo else 1. in
  Image.init ~label:"truth" ~nrow ~ncol Pixel.Int4 (fun r c ->
      let v = (Image.get field r c -. lo) /. span in
      let k = int_of_float (v *. float_of_int classes) in
      float_of_int (Stdlib.min (classes - 1) (Stdlib.max 0 k)))

let default_extent =
  lazy
    (Gaea_geo.Extent.make
       (Gaea_geo.Box.make ~xmin:(-10.) ~ymin:10. ~xmax:30. ~ymax:35.)
       (Gaea_geo.Interval.of_ymd_pair (1986, 1, 1) (1986, 1, 31)))

(* Class spectral signatures: deterministic per (seed, class, band),
   spread over the 0..255 digital-count range. *)
let signature seed cls band =
  40. +. (lattice_value seed (1000 + band) cls (cls * 7 + band)) *. 175.

let landsat_scene ~seed ~nrow ~ncol ?(bands = 3) ?(classes = 5)
    ?(noise = 8.0) ?extent () =
  if bands < 1 then invalid_arg "Synthetic.landsat_scene: bands < 1";
  let truth = landcover_truth ~seed ~nrow ~ncol ~classes in
  let rng = Rng.create (seed lxor 0x5eed) in
  let band_imgs =
    List.init bands (fun b ->
        let texture =
          value_noise ~seed:(seed + 7919 * (b + 1)) ~nrow ~ncol ~octaves:2
            ~lattice:8 ()
        in
        Image.init ~label:(Printf.sprintf "band-%d" (b + 1)) ~nrow ~ncol
          Pixel.Char (fun r c ->
            let cls = int_of_float (Image.get truth r c) in
            signature seed cls b
            +. ((Image.get texture r c -. 0.5) *. 2. *. noise)
            +. (Rng.gaussian rng *. noise *. 0.5)))
  in
  let extent = Option.value extent ~default:(Lazy.force default_extent) in
  { composite = Composite.of_bands band_imgs; truth; extent }

let red_nir_pair ~seed ~nrow ~ncol ?(vegetation_shift = 0.) () =
  let veg = value_noise ~seed ~nrow ~ncol ~octaves:3 ~lattice:12 () in
  let rng = Rng.create (seed lxor 0xced) in
  let red =
    Image.init ~label:"red" ~nrow ~ncol Pixel.Char (fun r c ->
        let v = Float.max 0. (Float.min 1. (Image.get veg r c +. vegetation_shift)) in
        (* more vegetation -> lower red reflectance *)
        30. +. ((1. -. v) *. 150.) +. (Rng.gaussian rng *. 3.))
  in
  let rng = Rng.create (seed lxor 0x21b) in
  let nir =
    Image.init ~label:"nir" ~nrow ~ncol Pixel.Char (fun r c ->
        let v = Float.max 0. (Float.min 1. (Image.get veg r c +. vegetation_shift)) in
        (* more vegetation -> higher NIR reflectance *)
        40. +. (v *. 180.) +. (Rng.gaussian rng *. 3.))
  in
  (red, nir)

let rainfall_map ~seed ~nrow ~ncol ?(max_mm = 600.) () =
  let field = value_noise ~seed ~nrow ~ncol ~octaves:4 ~lattice:24 () in
  Image.map ~label:"rainfall-mm" ~ptype:Pixel.Float4
    (fun v -> v *. max_mm)
    field

let with_clouds ~seed ~fraction img =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Synthetic.with_clouds: fraction outside 0..1";
  let rng = Rng.create seed in
  let out = Image.with_ptype Pixel.Float8 img in
  let n = Image.size out in
  let holes = int_of_float (fraction *. float_of_int n) in
  (* cloud blobs: pick centers, blank a small disc around each *)
  let nrow = Image.img_nrow out and ncol = Image.img_ncol out in
  let blanked = ref 0 in
  while !blanked < holes do
    let cr = Rng.int rng nrow and cc = Rng.int rng ncol in
    let radius = 1 + Rng.int rng 3 in
    for r = Stdlib.max 0 (cr - radius) to Stdlib.min (nrow - 1) (cr + radius) do
      for c = Stdlib.max 0 (cc - radius) to Stdlib.min (ncol - 1) (cc + radius) do
        if
          ((r - cr) * (r - cr)) + ((c - cc) * (c - cc)) <= radius * radius
          && !blanked < holes
          && not (Float.is_nan (Image.get out r c))
        then begin
          Image.set out r c Float.nan;
          incr blanked
        end
      done
    done
  done;
  out
