(** Dense row-major matrices — the [matrix] primitive class that the
    PCA compound operator of Fig 4 flows through. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix.  @raise Invalid_argument on non-positive dims. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
(** [init ~rows ~cols f] fills element (i,j) with [f i j]. *)

val par_init : rows:int -> cols:int -> (int -> int -> float) -> t
(** Like {!init} but filled in parallel across the {!Gaea_par.Pool}
    domains; the closure must be pure.  Identical results at any pool
    size. *)

val identity : int -> t
val of_rows : float array array -> t
(** @raise Invalid_argument on ragged or empty input. *)

val unsafe_data : t -> float array
(** The row-major backing store (shared, not copied).  Reserved for the
    fused kernels in {!Kernelized}. *)

val unsafe_of_array : rows:int -> cols:int -> float array -> t
(** Wrap a row-major array as a matrix without copying.  Reserved for
    the fused kernels in {!Kernelized}.
    @raise Invalid_argument if the array length is not [rows*cols]. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> float array
val col : t -> int -> float array

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product.  @raise Invalid_argument on dim mismatch. *)

val mul_vec : t -> float array -> float array

val map : (float -> float) -> t -> t
val equal : t -> t -> bool
val approx_equal : ?eps:float -> t -> t -> bool
val is_symmetric : ?eps:float -> t -> bool
val trace : t -> float
val frobenius_norm : t -> float
val copy : t -> t

val column_means : t -> float array
val center_columns : t -> t * float array
(** Subtract column means; returns centered matrix and the means. *)

val covariance : t -> t
(** Sample covariance of the columns (rows are observations); divides by
    [rows-1].  @raise Invalid_argument if rows < 2. *)

val correlation : t -> t
(** Pearson correlation of the columns.  Zero-variance columns yield
    zero off-diagonal entries and a unit diagonal. *)

val correlation_of_covariance : t -> t
(** The correlation matrix derived from an already-computed covariance
    matrix — lets fused callers reuse {!Kernelized.band_mean_cov}. *)

val pp : Format.formatter -> t -> unit
