(** Supervised maximum-likelihood classification.

    The paper (Section 4.3) names supervised classification as the
    canonical {e interactive} process Gaea cannot yet express — the
    scientist supplies training regions mid-derivation.  We implement the
    non-interactive core: Gaussian maximum-likelihood per class, with the
    training samples supplied up-front (the "scripted oracle"
    substitution recorded in DESIGN.md). *)

type class_model = {
  class_id : int;
  mean : float array;
  covariance : Matrix.t;
  inv_covariance : Matrix.t;
  log_det : float;
  prior : float;
}

type model = class_model list

val train : Composite.t -> Image.t -> model
(** [train composite truth] fits one Gaussian per distinct label in the
    training image [truth] (same size as the composite; label < 0 means
    "unlabelled", those pixels are skipped).  Priors are proportional to
    sample counts.  Degenerate covariances are regularized.
    @raise Invalid_argument if sizes mismatch or no labelled pixel
    exists. *)

val classify : model -> Composite.t -> Image.t
(** Assign each pixel the class with maximal posterior log-likelihood.
    Result is an Int4 label image. *)

val log_likelihood : class_model -> float array -> float
(** Gaussian log-density (plus log prior) of a feature vector. *)
