type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = int64 t in
  { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n = 1 then 0
  else
    (* rejection sampling over 62 uniform bits to avoid modulo bias *)
    let mask = 0x3FFFFFFFFFFFFFFFL in
    let rec draw () =
      let v = Int64.to_int (Int64.logand (int64 t) mask) in
      let limit = (max_int / n) * n in
      if v < limit then v mod n else draw ()
    in
    draw ()

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
