(** Symmetric eigendecomposition (cyclic Jacobi) — the
    [get-eigen-vector] operator of the PCA network (paper Fig 4). *)

type decomposition = {
  values : float array;        (** eigenvalues, descending *)
  vectors : Matrix.t;          (** column j is the eigenvector of values.(j) *)
}

val decompose : ?max_sweeps:int -> ?eps:float -> Matrix.t -> decomposition
(** Jacobi eigendecomposition of a symmetric matrix.
    @raise Invalid_argument if the matrix is not (numerically) symmetric.
    Eigenvectors are orthonormal; each is sign-normalized so its largest-
    magnitude component is positive, making results deterministic. *)

val reconstruct : decomposition -> Matrix.t
(** [V diag(values) Vᵀ] — for testing that [decompose] is faithful. *)

val principal_components : Matrix.t -> int -> Matrix.t
(** [principal_components sym k] is the n×k matrix of the top-k
    eigenvectors.  @raise Invalid_argument if k outside 1..n. *)

val explained_variance : decomposition -> float array
(** Fraction of total variance per component (non-negative eigenvalues
    assumed clamped at 0). *)
