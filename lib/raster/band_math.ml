let f8 = Pixel.Float8

(* subtract and add go through the fused closure-free kernels;
   [s = 1.] / [a = 1.] multiplications are exact, so the results stay
   bit-identical to the par_map2 reference (parity-tested). *)
let subtract ?(label = "subtract") a b = Kernelized.sub_scale ~label ~s:1. a b

let divide ?(label = "divide") a b =
  Image.par_map2 ~label ~ptype:f8 (fun x y -> if y = 0. then 0. else x /. y) a b

let ratio ?(label = "ratio") a b =
  Image.par_map2 ~label ~ptype:f8
    (fun x y ->
      let d = x +. y in
      if d = 0. then 0. else (x -. y) /. d)
    a b

let add ?(label = "add") a b = Kernelized.axpy ~label ~a:1. a b
let multiply ?(label = "multiply") a b = Image.par_map2 ~label ~ptype:f8 ( *. ) a b
let scale ?(label = "scale") s t = Image.par_map ~label ~ptype:f8 (fun v -> s *. v) t
let offset ?(label = "offset") d t = Image.par_map ~label ~ptype:f8 (fun v -> v +. d) t

let abs_diff ?(label = "abs-diff") a b =
  Image.par_map2 ~label ~ptype:f8 (fun x y -> Float.abs (x -. y)) a b

let linear_combination ?(label = "linear-combination") weights imgs =
  let n = List.length imgs in
  if n = 0 then invalid_arg "Band_math.linear_combination: no images";
  if Array.length weights <> n then
    invalid_arg
      (Printf.sprintf "Band_math.linear_combination: %d weights, %d images"
         (Array.length weights) n);
  match imgs with
  | [] -> assert false
  | first :: rest ->
    List.iter
      (fun img ->
        if not (Image.img_size_eq first img) then
          invalid_arg "Band_math.linear_combination: size mismatch")
      rest;
    let arrays = List.map Image.unsafe_data imgs in
    let nrow = Image.img_nrow first and ncol = Image.img_ncol first in
    Image.par_init ~label ~nrow ~ncol f8 (fun r c ->
        let i = (r * ncol) + c in
        List.fold_left
          (fun (acc, k) data -> (acc +. (weights.(k) *. data.(i)), k + 1))
          (0., 0) arrays
        |> fst)

let normalize ?(label = "normalize") ?(lo = 0.) ?(hi = 1.) t =
  let vmin, vmax = Image.min_max t in
  let span = vmax -. vmin in
  if span <= 0. then Image.par_map ~label ~ptype:f8 (fun _ -> lo) t
  else
    Image.par_map ~label ~ptype:f8
      (fun v -> lo +. ((v -. vmin) /. span *. (hi -. lo)))
      t

let threshold ?(label = "threshold") cutoff t =
  Image.par_map ~label ~ptype:Pixel.Char (fun v -> if v >= cutoff then 1. else 0.) t
