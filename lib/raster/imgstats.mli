(** Descriptive statistics over images and composites. *)

val mean : Image.t -> float
val variance : Image.t -> float
(** Sample variance (n-1 denominator); 0 for a single-pixel image. *)

val stddev : Image.t -> float
val sum : Image.t -> float

val histogram : ?bins:int -> Image.t -> (float * float * int) array
(** [histogram ~bins img] returns [(lo, hi, count)] per bin over the
    image's value range.  A constant image puts everything in one bin.
    @raise Invalid_argument if bins < 1. *)

val band_covariance : Composite.t -> Matrix.t
(** The [compute-covariance] operator of Fig 4: covariance of the bands
    treating pixels as observations. *)

val band_correlation : Composite.t -> Matrix.t

val percentile : Image.t -> float -> float
(** [percentile img p] with p in 0..100 (nearest-rank).
    @raise Invalid_argument if p outside 0..100. *)

val rmse : Image.t -> Image.t -> float
(** Root-mean-square difference. @raise Invalid_argument on size mismatch. *)

val confusion : Image.t -> Image.t -> (int * int, int) Hashtbl.t
(** For two label images: counts of (reference label, predicted label)
    pairs — used to score classification agreement. *)

val agreement : Image.t -> Image.t -> float
(** Fraction of pixels with identical labels. *)
