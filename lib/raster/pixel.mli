(** Pixel storage types of the [image] primitive class.

    The paper's image ADT declares [pixtype] as one of "char", "int2",
    "int4", "float4", "float8".  We keep the declared storage type and
    quantize values on write accordingly, while computing in [float]. *)

type t =
  | Char    (** unsigned 8-bit *)
  | Int2    (** signed 16-bit *)
  | Int4    (** signed 32-bit *)
  | Float4  (** single precision *)
  | Float8  (** double precision *)

val all : t list
val size_bytes : t -> int
val is_integral : t -> bool

val quantize : t -> float -> float
(** Round/clamp a computed value to what the storage type can hold.
    [Float8] is the identity; [Float4] rounds to single precision;
    integral types round-to-nearest and saturate at their bounds.
    NaN quantizes to 0 for integral types. *)

val min_value : t -> float
val max_value : t -> float
(** Representable range ([neg_infinity]/[infinity] for floats). *)

val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
