(** Synthetic remote-sensing scenes.

    The paper's substrate is real Landsat TM / AVHRR imagery, which we do
    not have; per DESIGN.md we substitute deterministic generated scenes
    that preserve the properties the derivation machinery exercises:
    spatially-correlated multi-band structure (so classification finds
    real clusters), distinct land-cover regions, inter-year drift (so
    change detection has signal), and seeded reproducibility (so repeated
    tasks give identical outputs). *)

type scene = {
  composite : Composite.t;     (** the band stack *)
  truth : Image.t;             (** ground-truth land-cover labels *)
  extent : Gaea_geo.Extent.t;
}

val value_noise : seed:int -> nrow:int -> ncol:int -> ?octaves:int
  -> ?lattice:int -> unit -> Image.t
(** Smooth spatially-correlated noise in 0..1 (bilinear value noise with
    [octaves] layers over a coarse lattice of initial cell size
    [lattice], halved per octave). *)

val landcover_truth : seed:int -> nrow:int -> ncol:int -> classes:int
  -> Image.t
(** A label image with [classes] spatially-coherent regions. *)

val landsat_scene :
  seed:int -> nrow:int -> ncol:int -> ?bands:int -> ?classes:int
  -> ?noise:float -> ?extent:Gaea_geo.Extent.t -> unit -> scene
(** A multi-band scene whose band values are class-dependent signatures
    plus correlated noise — the stand-in for "rectified Landsat TM".
    Defaults: 3 bands, 5 classes, noise 8.0 (digital counts 0..255,
    Char bands). *)

val red_nir_pair :
  seed:int -> nrow:int -> ncol:int -> ?vegetation_shift:float -> unit
  -> Image.t * Image.t
(** (red, nir) band pair for NDVI work.  [vegetation_shift] (default 0)
    moves vegetation vigor up/down — generate 1988 with 0 and 1989 with
    a positive shift to simulate greening. *)

val rainfall_map : seed:int -> nrow:int -> ncol:int -> ?max_mm:float
  -> unit -> Image.t
(** Annual precipitation in mm (smooth field, 0..max_mm, default
    600 mm) — input to the desert-classification processes. *)

val with_clouds : seed:int -> fraction:float -> Image.t -> Image.t
(** Overwrite a [fraction] of pixels with NaN "cloud" holes (for the
    interpolation path). *)
