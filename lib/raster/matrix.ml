module Pool = Gaea_par.Pool

type t = { rows : int; cols : int; data : float array }

let check_dims rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg (Printf.sprintf "Matrix: non-positive dims %dx%d" rows cols)

let create ~rows ~cols =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  check_dims rows cols;
  { rows; cols;
    data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

(* Parallel [init]: the closure must be pure (it runs concurrently on
   pool domains); element layout and values match [init] exactly. *)
let par_init ~rows ~cols f =
  check_dims rows cols;
  let n = rows * cols in
  let data = Array.make n 0. in
  Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set data i (f (i / cols) (i mod cols))
      done);
  { rows; cols; data }

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let unsafe_data t = t.data

let unsafe_of_array ~rows ~cols data =
  check_dims rows cols;
  if Array.length data <> rows * cols then
    invalid_arg
      (Printf.sprintf "Matrix.unsafe_of_array: %d values for %dx%d"
         (Array.length data) rows cols);
  { rows; cols; data }

let of_rows rs =
  let rows = Array.length rs in
  if rows = 0 then invalid_arg "Matrix.of_rows: empty";
  let cols = Array.length rs.(0) in
  if cols = 0 then invalid_arg "Matrix.of_rows: empty row";
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Matrix.of_rows: ragged rows")
    rs;
  init ~rows ~cols (fun i j -> rs.(i).(j))

let rows t = t.rows
let cols t = t.cols

let check_bounds t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg
      (Printf.sprintf "Matrix: (%d,%d) outside %dx%d" i j t.rows t.cols)

let get t i j =
  check_bounds t i j;
  t.data.((i * t.cols) + j)

let set t i j v =
  check_bounds t i j;
  t.data.((i * t.cols) + j) <- v

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Matrix.row: out of range";
  Array.sub t.data (i * t.cols) t.cols

let col t j =
  if j < 0 || j >= t.cols then invalid_arg "Matrix.col: out of range";
  Array.init t.rows (fun i -> t.data.((i * t.cols) + j))

let transpose t = init ~rows:t.cols ~cols:t.rows (fun i j -> get t j i)

let same_dims op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Matrix.%s: %dx%d vs %dx%d" op a.rows a.cols b.rows
         b.cols)

let add a b =
  same_dims "add" a b;
  { a with data = Array.init (Array.length a.data)
               (fun i -> a.data.(i) +. b.data.(i)) }

let sub a b =
  same_dims "sub" a b;
  { a with data = Array.init (Array.length a.data)
               (fun i -> a.data.(i) -. b.data.(i)) }

let scale s t = { t with data = Array.map (fun v -> s *. v) t.data }

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Matrix.mul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  let out = create ~rows:a.rows ~cols:b.cols in
  (* parallel over output rows (disjoint writes, per-element order
     unchanged); grain sized so a chunk is ~64k multiply-adds *)
  let grain = Stdlib.max 1 (65536 / Stdlib.max 1 (a.cols * b.cols)) in
  Pool.parallel_for_ranges ~grain
    ~cost:(float_of_int (a.cols * b.cols))
    ~lo:0 ~hi:a.rows (fun rlo rhi ->
      for i = rlo to rhi - 1 do
        for k = 0 to a.cols - 1 do
          let aik = a.data.((i * a.cols) + k) in
          if aik <> 0. then
            for j = 0 to b.cols - 1 do
              out.data.((i * b.cols) + j) <-
                out.data.((i * b.cols) + j)
                +. (aik *. b.data.((k * b.cols) + j))
            done
        done
      done);
  out

let mul_vec t v =
  if Array.length v <> t.cols then
    invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init t.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to t.cols - 1 do
        acc := !acc +. (t.data.((i * t.cols) + j) *. v.(j))
      done;
      !acc)

let map f t = { t with data = Array.map f t.data }

let equal a b =
  a.rows = b.rows && a.cols = b.cols && a.data = b.data

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let is_symmetric ?(eps = 1e-9) t =
  t.rows = t.cols
  &&
  let ok = ref true in
  for i = 0 to t.rows - 1 do
    for j = i + 1 to t.cols - 1 do
      if Float.abs (get t i j -. get t j i) > eps then ok := false
    done
  done;
  !ok

let trace t =
  if t.rows <> t.cols then invalid_arg "Matrix.trace: not square";
  let acc = ref 0. in
  for i = 0 to t.rows - 1 do
    acc := !acc +. get t i i
  done;
  !acc

let frobenius_norm t =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. t.data)

let copy t = { t with data = Array.copy t.data }

let column_means t =
  let means = Array.make t.cols 0. in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      means.(j) <- means.(j) +. t.data.((i * t.cols) + j)
    done
  done;
  Array.map (fun s -> s /. float_of_int t.rows) means

let center_columns t =
  let means = column_means t in
  (par_init ~rows:t.rows ~cols:t.cols (fun i j -> get t i j -. means.(j)),
   means)

let covariance t =
  if t.rows < 2 then invalid_arg "Matrix.covariance: needs >= 2 observations";
  (* accumulate (x_i - mean_i)(x_j - mean_j) over observation chunks;
     partials combine in chunk order, so any pool size associates the
     float sums identically *)
  let means = column_means t in
  let k = t.cols in
  let data = t.data in
  let partial lo hi =
    let acc = Array.make (k * k) 0. in
    for r = lo to hi - 1 do
      let base = r * k in
      for i = 0 to k - 1 do
        let di = Array.unsafe_get data (base + i) -. means.(i) in
        if di <> 0. then
          for j = 0 to k - 1 do
            acc.((i * k) + j) <-
              acc.((i * k) + j)
              +. (di *. (Array.unsafe_get data (base + j) -. means.(j)))
          done
      done
    done;
    acc
  in
  let total =
    Pool.parallel_for_reduce ~cost:(float_of_int (k * k)) ~lo:0 ~hi:t.rows
      ~init:(Array.make (k * k) 0.)
      ~reduce:(fun a b ->
        for i = 0 to (k * k) - 1 do
          a.(i) <- a.(i) +. b.(i)
        done;
        a)
      partial
  in
  let s = 1. /. float_of_int (t.rows - 1) in
  { rows = k; cols = k; data = Array.map (fun v -> s *. v) total }

let correlation_of_covariance cov =
  let n = cols cov in
  let sd = Array.init n (fun i -> sqrt (get cov i i)) in
  init ~rows:n ~cols:n (fun i j ->
      if i = j then 1.
      else if sd.(i) = 0. || sd.(j) = 0. then 0.
      else get cov i j /. (sd.(i) *. sd.(j)))

let correlation t = correlation_of_covariance (covariance t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to t.rows - 1 do
    Format.fprintf fmt "@[<h>[";
    for j = 0 to t.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%g" (get t i j)
    done;
    Format.fprintf fmt "]@]";
    if i < t.rows - 1 then Format.pp_print_cut fmt ()
  done;
  Format.fprintf fmt "@]"
