type t =
  | Char
  | Int2
  | Int4
  | Float4
  | Float8

let all = [ Char; Int2; Int4; Float4; Float8 ]

let size_bytes = function
  | Char -> 1
  | Int2 -> 2
  | Int4 | Float4 -> 4
  | Float8 -> 8

let is_integral = function
  | Char | Int2 | Int4 -> true
  | Float4 | Float8 -> false

let min_value = function
  | Char -> 0.
  | Int2 -> -32768.
  | Int4 -> -2147483648.
  | Float4 | Float8 -> neg_infinity

let max_value = function
  | Char -> 255.
  | Int2 -> 32767.
  | Int4 -> 2147483647.
  | Float4 | Float8 -> infinity

let quantize t v =
  match t with
  | Float8 -> v
  | Float4 -> Int32.float_of_bits (Int32.bits_of_float v)
  | Char | Int2 | Int4 ->
    if Float.is_nan v then 0.
    else
      let lo = min_value t and hi = max_value t in
      let r = Float.round v in
      if r < lo then lo else if r > hi then hi else r

let to_string = function
  | Char -> "char"
  | Int2 -> "int2"
  | Int4 -> "int4"
  | Float4 -> "float4"
  | Float8 -> "float8"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "char" -> Some Char
  | "int2" -> Some Int2
  | "int4" -> Some Int4
  | "float4" -> Some Float4
  | "float8" -> Some Float8
  | _ -> None

let equal a b =
  match a, b with
  | Char, Char | Int2, Int2 | Int4, Int4 | Float4, Float4 | Float8, Float8 ->
    true
  | (Char | Int2 | Int4 | Float4 | Float8), _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
