type class_model = {
  class_id : int;
  mean : float array;
  covariance : Matrix.t;
  inv_covariance : Matrix.t;
  log_det : float;
  prior : float;
}

type model = class_model list

(* Inverse + log-determinant of a small symmetric positive-definite
   matrix via Gauss-Jordan with partial pivoting; regularized first. *)
let invert_with_logdet m =
  let n = Matrix.rows m in
  let a = Matrix.copy m in
  let inv = Matrix.identity n in
  let logdet = ref 0. in
  for col = 0 to n - 1 do
    (* pivot *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (Matrix.get a r col) > Float.abs (Matrix.get a !pivot col)
      then pivot := r
    done;
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let t = Matrix.get a col j in
        Matrix.set a col j (Matrix.get a !pivot j);
        Matrix.set a !pivot j t;
        let t = Matrix.get inv col j in
        Matrix.set inv col j (Matrix.get inv !pivot j);
        Matrix.set inv !pivot j t
      done
      (* a row swap flips the determinant sign; covariances are SPD after
         regularization so the absolute value is what we need anyway *)
    end;
    let p = Matrix.get a col col in
    if Float.abs p < 1e-30 then invalid_arg "Maxlike: singular covariance";
    logdet := !logdet +. log (Float.abs p);
    for j = 0 to n - 1 do
      Matrix.set a col j (Matrix.get a col j /. p);
      Matrix.set inv col j (Matrix.get inv col j /. p)
    done;
    for r = 0 to n - 1 do
      if r <> col then begin
        let factor = Matrix.get a r col in
        if factor <> 0. then
          for j = 0 to n - 1 do
            Matrix.set a r j (Matrix.get a r j -. (factor *. Matrix.get a col j));
            Matrix.set inv r j
              (Matrix.get inv r j -. (factor *. Matrix.get inv col j))
          done
      end
    done
  done;
  (inv, !logdet)

let train composite truth =
  let nrow = Composite.nrow composite and ncol = Composite.ncol composite in
  if Image.img_nrow truth <> nrow || Image.img_ncol truth <> ncol then
    invalid_arg "Maxlike.train: truth image size mismatch";
  let n = nrow * ncol in
  let dims = Composite.n_bands composite in
  (* group labelled pixels by class *)
  let groups : (int, float array list ref) Hashtbl.t = Hashtbl.create 16 in
  let labelled = ref 0 in
  for i = 0 to n - 1 do
    let lbl = int_of_float (Image.get_linear truth i) in
    if lbl >= 0 then begin
      incr labelled;
      let v = Composite.pixel_vector composite i in
      match Hashtbl.find_opt groups lbl with
      | Some l -> l := v :: !l
      | None -> Hashtbl.add groups lbl (ref [ v ])
    end
  done;
  if !labelled = 0 then invalid_arg "Maxlike.train: no labelled pixels";
  let total = float_of_int !labelled in
  Hashtbl.fold
    (fun class_id samples acc ->
      let pts = Array.of_list !samples in
      let count = Array.length pts in
      let mean = Array.make dims 0. in
      Array.iter
        (fun p ->
          for d = 0 to dims - 1 do
            mean.(d) <- mean.(d) +. p.(d)
          done)
        pts;
      let mean = Array.map (fun s -> s /. float_of_int count) mean in
      let cov = Matrix.create ~rows:dims ~cols:dims in
      Array.iter
        (fun p ->
          for i = 0 to dims - 1 do
            for j = 0 to dims - 1 do
              Matrix.set cov i j
                (Matrix.get cov i j
                 +. ((p.(i) -. mean.(i)) *. (p.(j) -. mean.(j))))
            done
          done)
        pts;
      let denom = float_of_int (Stdlib.max 1 (count - 1)) in
      let cov = Matrix.scale (1. /. denom) cov in
      (* ridge regularization keeps tiny / single-sample classes usable *)
      let cov =
        Matrix.init ~rows:dims ~cols:dims (fun i j ->
            Matrix.get cov i j +. if i = j then 1e-6 else 0.)
      in
      let inv_covariance, log_det = invert_with_logdet cov in
      { class_id; mean; covariance = cov; inv_covariance; log_det;
        prior = float_of_int count /. total }
      :: acc)
    groups []
  |> List.sort (fun a b -> compare a.class_id b.class_id)

let log_likelihood cm v =
  let dims = Array.length cm.mean in
  let diff = Array.init dims (fun i -> v.(i) -. cm.mean.(i)) in
  let tmp = Matrix.mul_vec cm.inv_covariance diff in
  let mahal = ref 0. in
  for i = 0 to dims - 1 do
    mahal := !mahal +. (diff.(i) *. tmp.(i))
  done;
  log cm.prior -. 0.5 *. (cm.log_det +. !mahal)

let classify model composite =
  (match model with
   | [] -> invalid_arg "Maxlike.classify: empty model"
   | _ -> ());
  let nrow = Composite.nrow composite and ncol = Composite.ncol composite in
  (* per-pixel argmax is independent: parallel across the pool; the
     cost hint (classes * dims^2 mahalanobis work) keeps the adaptive
     cutoff from forcing this expensive kernel sequential *)
  let dims = float_of_int (Composite.n_bands composite) in
  let cost = 4. *. float_of_int (List.length model) *. dims *. dims in
  Image.par_init ~label:"maxlike" ~cost ~nrow ~ncol Pixel.Int4 (fun r c ->
      let v = Composite.pixel_vector composite ((r * ncol) + c) in
      let best, _ =
        List.fold_left
          (fun (best, best_ll) cm ->
            let ll = log_likelihood cm v in
            if ll > best_ll then (cm.class_id, ll) else (best, best_ll))
          (-1, neg_infinity) model
      in
      float_of_int best)
