(** Multi-band composites — the [composite()] operator of process P20
    (paper Fig 3) stacks Landsat TM bands into one multi-band object. *)

type t
(** A stack of equally-sized, same-pixel-type bands. *)

val of_bands : Image.t list -> t
(** @raise Invalid_argument on an empty list or size mismatch. *)

val bands : t -> Image.t list
val band : t -> int -> Image.t
val n_bands : t -> int
val nrow : t -> int
val ncol : t -> int
val n_pixels : t -> int

val pixel_vector : t -> int -> float array
(** Feature vector of pixel [i] (linear index) across all bands. *)

val to_matrix : t -> Matrix.t
(** The [convert-image-matrix] operator of Fig 4: an (n_pixels × n_bands)
    observation matrix, one row per pixel, one column per band. *)

val of_matrix : nrow:int -> ncol:int -> Pixel.t -> Matrix.t -> t
(** The [convert-matrix-image] operator of Fig 4: rebuild band images
    from a pixel-by-band matrix.
    @raise Invalid_argument if [Matrix.rows m <> nrow*ncol]. *)

val map_bands : (Image.t -> Image.t) -> t -> t
val equal : t -> t -> bool
val content_hash : t -> int
val pp : Format.formatter -> t -> unit
