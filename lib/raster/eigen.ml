type decomposition = {
  values : float array;
  vectors : Matrix.t;
}

(* Cyclic Jacobi rotations on a symmetric matrix.  Standard algorithm:
   repeatedly zero the largest off-diagonal entries with Givens rotations
   until the off-diagonal norm is below eps * frobenius_norm. *)
let decompose ?(max_sweeps = 64) ?(eps = 1e-12) m =
  if not (Matrix.is_symmetric ~eps:1e-8 m) then
    invalid_arg "Eigen.decompose: matrix not symmetric";
  let n = Matrix.rows m in
  let a = Matrix.copy m in
  let v = Matrix.identity n in
  let off_norm () =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = Matrix.get a i j in
        acc := !acc +. (2. *. x *. x)
      done
    done;
    sqrt !acc
  in
  let total = Matrix.frobenius_norm m in
  let threshold = eps *. Float.max total 1e-300 in
  let rotate p q =
    let apq = Matrix.get a p q in
    if Float.abs apq > 0. then begin
      let app = Matrix.get a p p and aqq = Matrix.get a q q in
      let theta = (aqq -. app) /. (2. *. apq) in
      let t =
        let sign = if theta >= 0. then 1. else -1. in
        sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
      in
      let c = 1. /. sqrt ((t *. t) +. 1.) in
      let s = t *. c in
      for k = 0 to n - 1 do
        let akp = Matrix.get a k p and akq = Matrix.get a k q in
        Matrix.set a k p ((c *. akp) -. (s *. akq));
        Matrix.set a k q ((s *. akp) +. (c *. akq))
      done;
      for k = 0 to n - 1 do
        let apk = Matrix.get a p k and aqk = Matrix.get a q k in
        Matrix.set a p k ((c *. apk) -. (s *. aqk));
        Matrix.set a q k ((s *. apk) +. (c *. aqk))
      done;
      for k = 0 to n - 1 do
        let vkp = Matrix.get v k p and vkq = Matrix.get v k q in
        Matrix.set v k p ((c *. vkp) -. (s *. vkq));
        Matrix.set v k q ((s *. vkp) +. (c *. vkq))
      done
    end
  in
  let sweeps = ref 0 in
  while off_norm () > threshold && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  (* Extract, sort descending by eigenvalue, sign-normalize vectors. *)
  let pairs =
    Array.init n (fun j ->
        (Matrix.get a j j, Array.init n (fun i -> Matrix.get v i j)))
  in
  Array.sort (fun (x, _) (y, _) -> Float.compare y x) pairs;
  Array.iter
    (fun (_, vec) ->
      let max_i = ref 0 in
      Array.iteri
        (fun i x -> if Float.abs x > Float.abs vec.(!max_i) then max_i := i)
        vec;
      if vec.(!max_i) < 0. then
        Array.iteri (fun i x -> vec.(i) <- -.x) vec)
    pairs;
  { values = Array.map fst pairs;
    vectors =
      Matrix.init ~rows:n ~cols:n (fun i j -> (snd pairs.(j)).(i)) }

let reconstruct { values; vectors } =
  let n = Array.length values in
  let d =
    Matrix.init ~rows:n ~cols:n (fun i j -> if i = j then values.(i) else 0.)
  in
  Matrix.mul (Matrix.mul vectors d) (Matrix.transpose vectors)

let principal_components m k =
  let d = decompose m in
  let n = Matrix.rows m in
  if k < 1 || k > n then
    invalid_arg (Printf.sprintf "Eigen.principal_components: k=%d, n=%d" k n);
  Matrix.init ~rows:n ~cols:k (fun i j -> Matrix.get d.vectors i j)

let explained_variance { values; _ } =
  let clamped = Array.map (fun v -> Float.max 0. v) values in
  let total = Array.fold_left ( +. ) 0. clamped in
  if total <= 0. then Array.map (fun _ -> 0.) clamped
  else Array.map (fun v -> v /. total) clamped
