module Pool = Gaea_par.Pool

let check_sizes name a b =
  if not (Image.img_size_eq a b) then
    invalid_arg
      (Printf.sprintf "Kernelized.%s: size mismatch %dx%d vs %dx%d" name
         (Image.img_nrow a) (Image.img_ncol a) (Image.img_nrow b)
         (Image.img_ncol b))

(* Float8 quantization is the identity, so writing raw results into the
   backing array matches the par_map2 reference bit for bit. *)

let axpy ?(label = "axpy") ~a x y =
  check_sizes "axpy" x y;
  let xs = Image.unsafe_data x and ys = Image.unsafe_data y in
  let n = Array.length xs in
  let out = Array.make n 0. in
  Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set out i
          ((a *. Array.unsafe_get xs i) +. Array.unsafe_get ys i)
      done);
  Image.unsafe_of_array ~label ~nrow:(Image.img_nrow x)
    ~ncol:(Image.img_ncol x) Pixel.Float8 out

let sub_scale ?(label = "sub-scale") ~s x y =
  check_sizes "sub_scale" x y;
  let xs = Image.unsafe_data x and ys = Image.unsafe_data y in
  let n = Array.length xs in
  let out = Array.make n 0. in
  Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        Array.unsafe_set out i
          (s *. (Array.unsafe_get xs i -. Array.unsafe_get ys i))
      done);
  Image.unsafe_of_array ~label ~nrow:(Image.img_nrow x)
    ~ncol:(Image.img_ncol x) Pixel.Float8 out

let normalized_diff ?(label = "normalized-diff") x y =
  check_sizes "normalized_diff" x y;
  let xs = Image.unsafe_data x and ys = Image.unsafe_data y in
  let n = Array.length xs in
  let out = Array.make n 0. in
  Pool.parallel_for_ranges ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        let xv = Array.unsafe_get xs i and yv = Array.unsafe_get ys i in
        let d = xv +. yv in
        Array.unsafe_set out i (if d = 0. then 0. else (xv -. yv) /. d)
      done);
  Image.unsafe_of_array ~label ~nrow:(Image.img_nrow x)
    ~ncol:(Image.img_ncol x) Pixel.Float8 out

(* Combine partials starting from the first one (not from a fresh 0.)
   so a single-chunk image reproduces the sequential fold exactly. *)
let combine partials =
  let acc = ref partials.(0) in
  for k = 1 to Array.length partials - 1 do
    acc := !acc +. partials.(k)
  done;
  !acc

let sum img =
  let data = Image.unsafe_data img in
  let n = Array.length data in
  let partials =
    Pool.map_chunks ~lo:0 ~hi:n (fun clo chi ->
        let acc = ref 0. in
        for i = clo to chi - 1 do
          acc := !acc +. Array.unsafe_get data i
        done;
        !acc)
  in
  if Array.length partials = 0 then 0. else combine partials

let mean img = sum img /. float_of_int (Image.size img)

let mean_var img =
  let n = Image.size img in
  let m = mean img in
  if n < 2 then (m, 0.)
  else begin
    let data = Image.unsafe_data img in
    let partials =
      Pool.map_chunks ~lo:0 ~hi:n ~cost:2.0 (fun clo chi ->
          let acc = ref 0. in
          for i = clo to chi - 1 do
            let d = Array.unsafe_get data i -. m in
            acc := !acc +. (d *. d)
          done;
          !acc)
    in
    (m, combine partials /. float_of_int (n - 1))
  end

let band_arrays c =
  Array.of_list (List.map Image.unsafe_data (Composite.bands c))

let to_matrix c =
  let rows = Composite.n_pixels c and cols = Composite.n_bands c in
  let bands = band_arrays c in
  let out = Array.make (rows * cols) 0. in
  Pool.parallel_for_ranges ~lo:0 ~hi:rows ~cost:(float_of_int cols)
    (fun plo phi ->
      for i = plo to phi - 1 do
        let base = i * cols in
        for j = 0 to cols - 1 do
          Array.unsafe_set out (base + j)
            (Array.unsafe_get (Array.unsafe_get bands j) i)
        done
      done);
  Matrix.unsafe_of_array ~rows ~cols out

let of_matrix ~nrow ~ncol ptype m =
  if Matrix.rows m <> nrow * ncol then
    invalid_arg
      (Printf.sprintf "Kernelized.of_matrix: %d rows for %dx%d image"
         (Matrix.rows m) nrow ncol);
  let rows = Matrix.rows m and cols = Matrix.cols m in
  let md = Matrix.unsafe_data m in
  Composite.of_bands
    (List.init cols (fun j ->
         let out = Array.make rows 0. in
         Pool.parallel_for_ranges ~lo:0 ~hi:rows (fun plo phi ->
             for i = plo to phi - 1 do
               Array.unsafe_set out i
                 (Pixel.quantize ptype
                    (Array.unsafe_get md ((i * cols) + j)))
             done);
         Image.unsafe_of_array ~nrow ~ncol ptype out))

(* Replicates [Matrix.covariance (Composite.to_matrix c)] exactly: the
   same sequential column-mean accumulation, the same chunk layout over
   observations, the same [di <> 0.] skip and combine order — only the
   observation matrix itself is never built. *)
let band_mean_cov c =
  let rows = Composite.n_pixels c and k = Composite.n_bands c in
  if rows < 2 then
    invalid_arg "Kernelized.band_mean_cov: needs >= 2 pixels";
  let bands = band_arrays c in
  let means = Array.make k 0. in
  for i = 0 to rows - 1 do
    for j = 0 to k - 1 do
      means.(j) <-
        means.(j) +. Array.unsafe_get (Array.unsafe_get bands j) i
    done
  done;
  let means = Array.map (fun s -> s /. float_of_int rows) means in
  let partial lo hi =
    let acc = Array.make (k * k) 0. in
    for r = lo to hi - 1 do
      for i = 0 to k - 1 do
        let di = Array.unsafe_get (Array.unsafe_get bands i) r -. means.(i) in
        if di <> 0. then
          for j = 0 to k - 1 do
            acc.((i * k) + j) <-
              acc.((i * k) + j)
              +. (di
                  *. (Array.unsafe_get (Array.unsafe_get bands j) r
                      -. means.(j)))
          done
      done
    done;
    acc
  in
  let total =
    Pool.parallel_for_reduce ~lo:0 ~hi:rows ~cost:(float_of_int (k * k))
      ~init:(Array.make (k * k) 0.)
      ~reduce:(fun a b ->
        for i = 0 to (k * k) - 1 do
          a.(i) <- a.(i) +. b.(i)
        done;
        a)
      partial
  in
  let s = 1. /. float_of_int (rows - 1) in
  (means, Matrix.unsafe_of_array ~rows:k ~cols:k
            (Array.map (fun v -> s *. v) total))
