(* Fused (nir - red) / (nir + red); the closure form over par_map2 is
   kept as the reference in the parity tests. *)
let ndvi ?(label = "ndvi") ~red ~nir () =
  Kernelized.normalized_diff ~label nir red

let change_by_subtraction a b = Band_math.subtract ~label:"ndvi-change-sub" a b
let change_by_division a b = Band_math.divide ~label:"ndvi-change-div" a b

let mean_ndvi = Imgstats.mean

let vegetation_fraction ?(cutoff = 0.3) img =
  let n = Image.size img in
  let count = Image.fold (fun acc v -> if v > cutoff then acc + 1 else acc) 0 img in
  float_of_int count /. float_of_int n
