(** The [image] primitive class (paper Section 2.1.3).

    The paper stores images as [(nrows, ncols, pixtype, filepath)] with the
    raster data in an external file; we hold the raster in memory (the
    [filepath] role is played by an optional [label]).  Pixels are stored
    as floats but quantized through the declared {!Pixel.t} on every
    write, so a ["char"] image really behaves like 8-bit data.

    The operators the paper lists on the image ADT ([img_nrow],
    [img_ncol], [img_type], [img_size_eq], ...) appear here under those
    names. *)

type t

val create : ?label:string -> nrow:int -> ncol:int -> Pixel.t -> t
(** Zero-filled image.  @raise Invalid_argument on non-positive dims. *)

val init : ?label:string -> nrow:int -> ncol:int -> Pixel.t
  -> (int -> int -> float) -> t
(** [init ~nrow ~ncol pt f] fills pixel (r,c) with [f r c] (quantized). *)

val img_nrow : t -> int
val img_ncol : t -> int
val img_type : t -> Pixel.t
val img_label : t -> string
val img_size_eq : t -> t -> bool
val size : t -> int
(** Number of pixels. *)

val get : t -> int -> int -> float
(** @raise Invalid_argument out of bounds. *)

val set : t -> int -> int -> float -> unit
(** Quantizes through the image's pixel type. *)

val get_linear : t -> int -> float
val set_linear : t -> int -> float -> unit

val map : ?label:string -> ?ptype:Pixel.t -> (float -> float) -> t -> t
(** Result pixel type defaults to the argument's. *)

val map2 : ?label:string -> ?ptype:Pixel.t -> (float -> float -> float)
  -> t -> t -> t
(** @raise Invalid_argument if sizes differ. *)

val mapi : ?label:string -> ?ptype:Pixel.t -> (int -> int -> float -> float)
  -> t -> t

(** {2 Parallel pixel maps}

    Same semantics (and bit-identical results, at any pool size) as
    {!init} / {!map} / {!map2} / {!mapi}, but chunked across the
    {!Gaea_par.Pool} domains.  The closure runs concurrently on pool
    domains and must be pure — no hidden RNG or accumulator state.
    [?cost] is the per-pixel work estimate relative to one float add
    (default 1.0), fed to the pool's adaptive sequential cutoff. *)

val par_init : ?label:string -> ?cost:float -> nrow:int -> ncol:int
  -> Pixel.t -> (int -> int -> float) -> t

val par_map : ?label:string -> ?ptype:Pixel.t -> ?cost:float
  -> (float -> float) -> t -> t

val par_map2 : ?label:string -> ?ptype:Pixel.t -> ?cost:float
  -> (float -> float -> float) -> t -> t -> t
(** @raise Invalid_argument if sizes differ. *)

val par_mapi : ?label:string -> ?ptype:Pixel.t -> ?cost:float
  -> (int -> int -> float -> float) -> t -> t

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val iter : (float -> unit) -> t -> unit

val copy : ?label:string -> t -> t
val with_ptype : Pixel.t -> t -> t
(** Re-quantize into a different storage type. *)

val equal : t -> t -> bool
(** Same dims, pixel type and bitwise-equal pixels. *)

val content_hash : t -> int
(** Deterministic hash of dims, type and pixel data — used by the
    reproducibility experiments to compare derivation outputs and as
    the result-cache key, so the loop runs on untagged ints (no boxed
    [Int64] per pixel). *)

val min_max : t -> float * float
(** Smallest and largest non-NaN pixel values; NaN pixels (cloud
    holes) are skipped.  An all-NaN image yields
    [(infinity, neg_infinity)]. *)

val to_list : t -> float list
val of_array : ?label:string -> nrow:int -> ncol:int -> Pixel.t
  -> float array -> t
(** @raise Invalid_argument if the array length is not [nrow*ncol]. *)

val unsafe_data : t -> float array
(** The backing store (shared, not copied).  Mutating it bypasses
    quantization; reserved for operator implementations in this library. *)

val unsafe_of_array : ?label:string -> nrow:int -> ncol:int -> Pixel.t
  -> float array -> t
(** Wrap an array as an image {e without} copying or quantizing — the
    caller promises the values already fit the pixel type.  Reserved
    for the fused kernels in {!Kernelized}.
    @raise Invalid_argument if the array length is not [nrow*ncol]. *)

val pp : Format.formatter -> t -> unit
(** Summary line, not the pixel data. *)

val pp_ascii : ?levels:string -> Format.formatter -> t -> unit
(** Render small images as ASCII art (for examples / the CLI). *)
