type t = { bands : Image.t array }

let of_bands = function
  | [] -> invalid_arg "Composite.of_bands: no bands"
  | first :: _ as l ->
    List.iteri
      (fun i img ->
        if not (Image.img_size_eq first img) then
          invalid_arg
            (Printf.sprintf "Composite.of_bands: band %d size mismatch" i))
      l;
    { bands = Array.of_list l }

let bands t = Array.to_list t.bands

let band t i =
  if i < 0 || i >= Array.length t.bands then
    invalid_arg (Printf.sprintf "Composite.band: %d" i);
  t.bands.(i)

let n_bands t = Array.length t.bands
let nrow t = Image.img_nrow t.bands.(0)
let ncol t = Image.img_ncol t.bands.(0)
let n_pixels t = nrow t * ncol t

let pixel_vector t i =
  Array.map (fun b -> Image.get_linear b i) t.bands

let to_matrix t =
  Matrix.par_init ~rows:(n_pixels t) ~cols:(n_bands t) (fun i j ->
      Image.get_linear t.bands.(j) i)

let of_matrix ~nrow ~ncol ptype m =
  if Matrix.rows m <> nrow * ncol then
    invalid_arg
      (Printf.sprintf "Composite.of_matrix: %d rows for %dx%d image"
         (Matrix.rows m) nrow ncol);
  { bands =
      Array.init (Matrix.cols m) (fun j ->
          Image.par_init ~nrow ~ncol ptype (fun r c ->
              Matrix.get m ((r * ncol) + c) j)) }

let map_bands f t =
  of_bands (List.map f (bands t))

let equal a b =
  Array.length a.bands = Array.length b.bands
  && Array.for_all2 Image.equal a.bands b.bands

let content_hash t =
  Array.fold_left
    (fun acc b -> (acc * 1000003) lxor Image.content_hash b)
    (Array.length t.bands) t.bands

let pp fmt t =
  Format.fprintf fmt "composite<%d bands, %dx%d>" (n_bands t) (nrow t)
    (ncol t)
