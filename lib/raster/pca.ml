type result = {
  components : Composite.t;
  eigenvalues : float array;
  eigenvectors : Matrix.t;
  explained : float array;
}

let convert_image_matrix = Kernelized.to_matrix
let compute_covariance = Matrix.covariance
let compute_correlation = Matrix.correlation
let get_eigen_vector m = Eigen.decompose m

let linear_combination observations loadings = Matrix.mul observations loadings

let convert_matrix_image ~nrow ~ncol m =
  Kernelized.of_matrix ~nrow ~ncol Pixel.Float8 m

let run ~standardize ?components composite =
  let nrow = Composite.nrow composite and ncol = Composite.ncol composite in
  let n_bands = Composite.n_bands composite in
  let k = Option.value components ~default:n_bands in
  if k < 1 || k > n_bands then
    invalid_arg
      (Printf.sprintf "Pca: components=%d outside 1..%d" k n_bands);
  if Composite.n_pixels composite < 2 then
    invalid_arg "Pca: needs at least 2 pixels";
  let obs = convert_image_matrix composite in
  let centered, _means = Matrix.center_columns obs in
  let prepared, sym =
    if standardize then begin
      let cov = compute_covariance obs in
      let sd = Array.init n_bands (fun i -> sqrt (Matrix.get cov i i)) in
      let std =
        Matrix.par_init ~rows:(Matrix.rows centered) ~cols:n_bands (fun i j ->
            if sd.(j) = 0. then 0. else Matrix.get centered i j /. sd.(j))
      in
      (std, compute_correlation obs)
    end
    else (centered, compute_covariance obs)
  in
  let decomp = get_eigen_vector sym in
  let loadings =
    Matrix.init ~rows:n_bands ~cols:k (fun i j ->
        Matrix.get decomp.Eigen.vectors i j)
  in
  let projected = linear_combination prepared loadings in
  let components_imgs = convert_matrix_image ~nrow ~ncol projected in
  let explained = Eigen.explained_variance decomp in
  { components = components_imgs;
    eigenvalues = Array.sub decomp.Eigen.values 0 k;
    eigenvectors = loadings;
    explained = Array.sub explained 0 k }

let pca ?components composite = run ~standardize:false ?components composite
let spca ?components composite = run ~standardize:true ?components composite
