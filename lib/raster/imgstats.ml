(* Fused closure-free loops; same accumulation association as the
   Image.fold versions for single-chunk images, chunk-deterministic
   (identical at any pool size) beyond that. *)
let sum = Kernelized.sum
let mean = Kernelized.mean
let variance img = snd (Kernelized.mean_var img)
let stddev img = sqrt (variance img)

let histogram ?(bins = 16) img =
  if bins < 1 then invalid_arg "Imgstats.histogram: bins < 1";
  let lo, hi = Image.min_max img in
  let span = hi -. lo in
  let counts = Array.make bins 0 in
  Image.iter
    (fun v ->
      let b =
        if span <= 0. then 0
        else
          let i = int_of_float ((v -. lo) /. span *. float_of_int bins) in
          if i >= bins then bins - 1 else if i < 0 then 0 else i
      in
      counts.(b) <- counts.(b) + 1)
    img;
  Array.init bins (fun i ->
      let w = if span <= 0. then 0. else span /. float_of_int bins in
      (lo +. (w *. float_of_int i), lo +. (w *. float_of_int (i + 1)),
       counts.(i)))

(* Bit-identical to [Matrix.covariance (Composite.to_matrix c)] but
   without materializing the observation matrix. *)
let band_covariance c = snd (Kernelized.band_mean_cov c)

let band_correlation c =
  Matrix.correlation_of_covariance (snd (Kernelized.band_mean_cov c))

let percentile img p =
  if p < 0. || p > 100. then invalid_arg "Imgstats.percentile";
  let data = Array.of_list (Image.to_list img) in
  Array.sort Float.compare data;
  let n = Array.length data in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  data.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let rmse a b =
  if not (Image.img_size_eq a b) then
    invalid_arg "Imgstats.rmse: size mismatch";
  let n = Image.size a in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = Image.get_linear a i -. Image.get_linear b i in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let confusion reference predicted =
  if not (Image.img_size_eq reference predicted) then
    invalid_arg "Imgstats.confusion: size mismatch";
  let tbl = Hashtbl.create 64 in
  for i = 0 to Image.size reference - 1 do
    let key =
      ( int_of_float (Image.get_linear reference i),
        int_of_float (Image.get_linear predicted i) )
    in
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  tbl

let agreement a b =
  if not (Image.img_size_eq a b) then
    invalid_arg "Imgstats.agreement: size mismatch";
  let n = Image.size a in
  let same = ref 0 in
  for i = 0 to n - 1 do
    if Image.get_linear a i = Image.get_linear b i then incr same
  done;
  float_of_int !same /. float_of_int n
