(** NDVI — the normalized difference vegetation index (paper footnote 2:
    "a qualitative measure of vegetation derived from AVHRR satellite
    imagery data"). *)

val ndvi : ?label:string -> red:Image.t -> nir:Image.t -> unit -> Image.t
(** (NIR - RED) / (NIR + RED), in -1..1 (0 where the denominator is 0).
    @raise Invalid_argument on size mismatch. *)

val change_by_subtraction : Image.t -> Image.t -> Image.t
(** Scientist 1 of the paper's Section 1 scenario:
    [change_by_subtraction ndvi89 ndvi88] = ndvi89 - ndvi88. *)

val change_by_division : Image.t -> Image.t -> Image.t
(** Scientist 2: ndvi89 / ndvi88 (0 where ndvi88 is 0). *)

val mean_ndvi : Image.t -> float
(** Average index value, a scene-level vegetation summary. *)

val vegetation_fraction : ?cutoff:float -> Image.t -> float
(** Fraction of pixels whose NDVI exceeds [cutoff] (default 0.3). *)
