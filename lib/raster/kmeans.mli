(** Unsupervised classification — the [unsuperclassify()] operator used
    by process P20 (paper Fig 3) to derive LAND_COVER from Landsat TM
    bands.

    Deterministic k-means over per-pixel band vectors: seeded k-means++
    initialization, Lloyd iterations to convergence, stable relabeling of
    clusters (sorted by centroid) so the same inputs always yield the
    same class image. *)

type result = {
  labels : Image.t;            (** Int4 label image, values in 0..k-1 *)
  centroids : float array array; (** k centroids of dimension n_bands *)
  iterations : int;            (** Lloyd iterations performed *)
  inertia : float;             (** sum of squared distances to assigned centroid *)
}

val unsuperclassify : ?seed:int -> ?max_iter:int -> Composite.t -> int
  -> result
(** [unsuperclassify composite k] groups pixels into [k] classes.
    @raise Invalid_argument if [k < 1] or [k] exceeds the pixel count. *)

val unsuperclassify_result :
  ?seed:int -> ?max_iter:int -> Composite.t -> int
  -> (result, string) Stdlib.result
(** Non-raising variant for degenerate inputs: [Error] when [k < 1] or
    the composite is empty; when [k] exceeds the pixel count it is
    clamped to it (one cluster per pixel) instead of raising or
    silently seeding duplicate centroids. *)

val classify_image : ?seed:int -> ?max_iter:int -> Image.t -> int -> result
(** Single-band convenience wrapper. *)

val assign : float array array -> float array -> int
(** Index of the nearest centroid (ties to the lowest index).
    @raise Invalid_argument on empty centroids. *)
