(** Principal component analysis of image stacks — paper Fig 4.

    The paper presents [pca()] as a {e compound operator}: a dataflow
    network [convert-image-matrix → compute-covariance →
    get-eigen-vector → linear-combination → convert-matrix-image].  Each
    stage is exposed here under its Fig 4 name so that the ADT layer can
    also register them individually and wire the same network as a
    {!Gaea_adt.Dataflow} graph.

    [spca] is the standardized variant (Eastman 1992): identical network
    with the covariance stage replaced by correlation — the paper's
    example of two processes deriving the "same conceptual outcome"
    ("vegetation change" as class C7 vs C8). *)

type result = {
  components : Composite.t;   (** PC images, first = largest variance *)
  eigenvalues : float array;
  eigenvectors : Matrix.t;    (** column j = loading vector of PC j *)
  explained : float array;    (** variance fraction per component *)
}

(** The individual Fig 4 stages. *)

val convert_image_matrix : Composite.t -> Matrix.t
val compute_covariance : Matrix.t -> Matrix.t
val compute_correlation : Matrix.t -> Matrix.t
val get_eigen_vector : Matrix.t -> Eigen.decomposition
val linear_combination : Matrix.t -> Matrix.t -> Matrix.t
(** [linear_combination observations loadings] projects the (centered)
    observation matrix onto the loading columns. *)

val convert_matrix_image : nrow:int -> ncol:int -> Matrix.t -> Composite.t

(** The assembled networks. *)

val pca : ?components:int -> Composite.t -> result
(** Covariance-based PCA.  [components] defaults to the band count.
    @raise Invalid_argument if the stack has < 2 pixels or [components]
    is outside 1..n_bands. *)

val spca : ?components:int -> Composite.t -> result
(** Standardized PCA: bands are standardized (zero mean, unit variance)
    and the correlation matrix is decomposed. *)
