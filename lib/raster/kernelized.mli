(** Closure-free fused raster kernels.

    The generic {!Image.par_map}/{!Image.par_map2} paths pay a closure
    call, a [Pixel.quantize] dispatch and (for pipelines) an
    intermediate image per stage.  The kernels here run the same
    arithmetic as a plain [for] loop over the backing arrays, writing
    [Float8] output directly — and are {e bit-identical} to the generic
    paths, which stay in the library as the reference implementations
    ([test/test_par.ml] asserts parity at pool sizes 1/2/8).

    Reductions chunk deterministically (layout depends only on the
    range and grain) and combine partials in ascending chunk order, so
    every function here returns the same bits at any pool size. *)

val axpy : ?label:string -> a:float -> Image.t -> Image.t -> Image.t
(** [axpy ~a x y] is the image [a*x + y] ([Float8]); with [~a:1.] it is
    bit-identical to [Image.par_map2 ( +. )].
    @raise Invalid_argument on size mismatch. *)

val sub_scale : ?label:string -> s:float -> Image.t -> Image.t -> Image.t
(** [sub_scale ~s x y] is the image [s*(x - y)] ([Float8]); with
    [~s:1.] it is bit-identical to [Image.par_map2 ( -. )].
    @raise Invalid_argument on size mismatch. *)

val normalized_diff : ?label:string -> Image.t -> Image.t -> Image.t
(** [normalized_diff x y] is the image [(x - y) / (x + y)] with [0.]
    where the denominator is zero — NDVI is [normalized_diff nir red].
    Bit-identical to the closure form in {!Ndvi.ndvi}.
    @raise Invalid_argument on size mismatch. *)

val sum : Image.t -> float
(** Chunk-deterministic pixel sum: partial per chunk, combined in
    ascending chunk order — same bits at any pool size, and identical
    to [Image.fold ( +. ) 0.] whenever the image fits one chunk. *)

val mean : Image.t -> float

val mean_var : Image.t -> float * float
(** Mean and sample variance (n-1 denominator; variance 0 below 2
    pixels) in two fused passes over the raw array — no closure per
    pixel, same accumulation association as {!Imgstats} always used. *)

val to_matrix : Composite.t -> Matrix.t
(** Fused composite→matrix: one tight copy loop per pixel row instead
    of a bounds-checked closure per element.  Bit-identical to the
    reference {!Composite.to_matrix}. *)

val of_matrix : nrow:int -> ncol:int -> Pixel.t -> Matrix.t -> Composite.t
(** Fused matrix→composite; bit-identical to {!Composite.of_matrix}.
    @raise Invalid_argument if [Matrix.rows m <> nrow*ncol]. *)

val band_mean_cov : Composite.t -> float array * Matrix.t
(** Band means and sample covariance straight off the band arrays —
    fuses [Matrix.covariance (Composite.to_matrix c)] without
    materializing the observation matrix, replicating its accumulation
    order exactly (bit-identical result).
    @raise Invalid_argument if the composite has fewer than 2 pixels. *)
