module Pool = Gaea_par.Pool

type result = {
  labels : Image.t;
  centroids : float array array;
  iterations : int;
  inertia : float;
}

let sq_dist a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let assign centroids v =
  let k = Array.length centroids in
  if k = 0 then invalid_arg "Kmeans.assign: no centroids";
  let best = ref 0 and best_d = ref (sq_dist centroids.(0) v) in
  for j = 1 to k - 1 do
    let d = sq_dist centroids.(j) v in
    if d < !best_d then begin
      best := j;
      best_d := d
    end
  done;
  !best

(* k-means++ seeding with the module's deterministic RNG *)
let seed_centroids rng points k =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.seed_centroids: empty point set";
  if k > n then
    invalid_arg
      (Printf.sprintf "Kmeans.seed_centroids: k=%d > %d points" k n);
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Rng.int rng n);
  let dists = Array.map (fun p -> sq_dist p centroids.(0)) points in
  for j = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0. dists in
    let chosen =
      if total <= 0. then Rng.int rng n
      else begin
        let target = Rng.float rng total in
        let acc = ref 0. and idx = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if !acc >= target then begin
                 idx := i;
                 raise Exit
               end)
             dists
         with Exit -> ());
        !idx
      end
    in
    centroids.(j) <- points.(chosen);
    Array.iteri
      (fun i p -> dists.(i) <- Float.min dists.(i) (sq_dist p centroids.(j)))
      points
  done;
  Array.map Array.copy centroids

(* Lloyd iterations, parallel over pixels.  The assignment step writes
   disjoint label cells; the update step accumulates per-chunk partial
   (sum, count) pairs combined in chunk order, so the result is
   bit-identical at any pool size. *)
let run ~seed ~max_iter composite k =
  let n = Composite.n_pixels composite in
  let dims = Composite.n_bands composite in
  let points = Array.make n [||] in
  (* cost hints below: per-pixel work relative to one float add, so the
     pool's adaptive cutoff still engages for these expensive kernels
     at sizes where a plain subtraction would stay sequential *)
  let fdims = float_of_int dims in
  Pool.parallel_for ~cost:(8. *. fdims) ~lo:0 ~hi:n (fun i ->
      points.(i) <- Composite.pixel_vector composite i);
  let rng = Rng.create seed in
  let centroids = ref (seed_centroids rng points k) in
  let labels = Array.make n 0 in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_iter do
    incr iterations;
    (* assignment step *)
    let cs = !centroids in
    changed :=
      Pool.parallel_for_reduce
        ~cost:(3. *. float_of_int k *. fdims)
        ~lo:0 ~hi:n ~init:false ~reduce:( || )
        (fun clo chi ->
          let any = ref false in
          for i = clo to chi - 1 do
            let j = assign cs points.(i) in
            if j <> labels.(i) then begin
              labels.(i) <- j;
              any := true
            end
          done;
          !any);
    (* update step; empty clusters keep their previous centroid *)
    if !changed then begin
      let partials =
        Pool.map_chunks ~cost:(2. *. fdims) ~lo:0 ~hi:n (fun clo chi ->
            let sums = Array.init k (fun _ -> Array.make dims 0.) in
            let counts = Array.make k 0 in
            for i = clo to chi - 1 do
              let j = labels.(i) in
              counts.(j) <- counts.(j) + 1;
              let p = points.(i) and s = sums.(j) in
              for d = 0 to dims - 1 do
                s.(d) <- s.(d) +. p.(d)
              done
            done;
            (sums, counts))
      in
      let sums = Array.init k (fun _ -> Array.make dims 0.) in
      let counts = Array.make k 0 in
      Array.iter
        (fun (ps, pc) ->
          for j = 0 to k - 1 do
            counts.(j) <- counts.(j) + pc.(j);
            for d = 0 to dims - 1 do
              sums.(j).(d) <- sums.(j).(d) +. ps.(j).(d)
            done
          done)
        partials;
      centroids :=
        Array.mapi
          (fun j s ->
            if counts.(j) = 0 then !centroids.(j)
            else Array.map (fun x -> x /. float_of_int counts.(j)) s)
          sums
    end
  done;
  (* Stable relabeling: order clusters lexicographically by centroid so
     output labels are independent of initialization order. *)
  let order = Array.init k (fun j -> j) in
  Array.sort (fun a b -> compare !centroids.(a) !centroids.(b)) order;
  let rank = Array.make k 0 in
  Array.iteri (fun r j -> rank.(j) <- r) order;
  let final_centroids = Array.map (fun j -> !centroids.(j)) order in
  let cs = !centroids in
  let inertia =
    Pool.parallel_for_reduce ~cost:(3. *. fdims) ~lo:0 ~hi:n ~init:0.
      ~reduce:( +. )
      (fun clo chi ->
        let acc = ref 0. in
        for i = clo to chi - 1 do
          acc := !acc +. sq_dist points.(i) cs.(labels.(i))
        done;
        !acc)
  in
  let nrow = Composite.nrow composite and ncol = Composite.ncol composite in
  let label_img =
    Image.par_init ~label:"unsuperclassify" ~nrow ~ncol Pixel.Int4 (fun r c ->
        float_of_int rank.(labels.((r * ncol) + c)))
  in
  { labels = label_img;
    centroids = final_centroids;
    iterations = !iterations;
    inertia }

let unsuperclassify_result ?(seed = 42) ?(max_iter = 100) composite k =
  let n = Composite.n_pixels composite in
  if k < 1 then Error (Printf.sprintf "Kmeans: k=%d < 1" k)
  else if n = 0 then Error "Kmeans: composite has no pixels"
  else begin
    (* more clusters than pixels degenerates to one cluster per pixel *)
    let k = Stdlib.min k n in
    Ok (run ~seed ~max_iter composite k)
  end

let unsuperclassify ?(seed = 42) ?(max_iter = 100) composite k =
  let n = Composite.n_pixels composite in
  if k < 1 then invalid_arg "Kmeans.unsuperclassify: k < 1";
  if k > n then
    invalid_arg
      (Printf.sprintf "Kmeans.unsuperclassify: k=%d > %d pixels" k n);
  run ~seed ~max_iter composite k

let classify_image ?seed ?max_iter img k =
  unsuperclassify ?seed ?max_iter (Composite.of_bands [ img ]) k
