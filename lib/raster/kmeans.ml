type result = {
  labels : Image.t;
  centroids : float array array;
  iterations : int;
  inertia : float;
}

let sq_dist a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let assign centroids v =
  let k = Array.length centroids in
  if k = 0 then invalid_arg "Kmeans.assign: no centroids";
  let best = ref 0 and best_d = ref (sq_dist centroids.(0) v) in
  for j = 1 to k - 1 do
    let d = sq_dist centroids.(j) v in
    if d < !best_d then begin
      best := j;
      best_d := d
    end
  done;
  !best

(* k-means++ seeding with the module's deterministic RNG *)
let seed_centroids rng points k =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Rng.int rng n);
  let dists = Array.map (fun p -> sq_dist p centroids.(0)) points in
  for j = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0. dists in
    let chosen =
      if total <= 0. then Rng.int rng n
      else begin
        let target = Rng.float rng total in
        let acc = ref 0. and idx = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if !acc >= target then begin
                 idx := i;
                 raise Exit
               end)
             dists
         with Exit -> ());
        !idx
      end
    in
    centroids.(j) <- points.(chosen);
    Array.iteri
      (fun i p -> dists.(i) <- Float.min dists.(i) (sq_dist p centroids.(j)))
      points
  done;
  Array.map Array.copy centroids

let unsuperclassify ?(seed = 42) ?(max_iter = 100) composite k =
  let n = Composite.n_pixels composite in
  if k < 1 then invalid_arg "Kmeans.unsuperclassify: k < 1";
  if k > n then
    invalid_arg
      (Printf.sprintf "Kmeans.unsuperclassify: k=%d > %d pixels" k n);
  let dims = Composite.n_bands composite in
  let points = Array.init n (Composite.pixel_vector composite) in
  let rng = Rng.create seed in
  let centroids = ref (seed_centroids rng points k) in
  let labels = Array.make n 0 in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_iter do
    incr iterations;
    changed := false;
    (* assignment step *)
    Array.iteri
      (fun i p ->
        let j = assign !centroids p in
        if j <> labels.(i) then begin
          labels.(i) <- j;
          changed := true
        end)
      points;
    (* update step; empty clusters keep their previous centroid *)
    if !changed then begin
      let sums = Array.init k (fun _ -> Array.make dims 0.) in
      let counts = Array.make k 0 in
      Array.iteri
        (fun i p ->
          let j = labels.(i) in
          counts.(j) <- counts.(j) + 1;
          for d = 0 to dims - 1 do
            sums.(j).(d) <- sums.(j).(d) +. p.(d)
          done)
        points;
      centroids :=
        Array.mapi
          (fun j s ->
            if counts.(j) = 0 then !centroids.(j)
            else Array.map (fun x -> x /. float_of_int counts.(j)) s)
          sums
    end
  done;
  (* Stable relabeling: order clusters lexicographically by centroid so
     output labels are independent of initialization order. *)
  let order = Array.init k (fun j -> j) in
  Array.sort (fun a b -> compare !centroids.(a) !centroids.(b)) order;
  let rank = Array.make k 0 in
  Array.iteri (fun r j -> rank.(j) <- r) order;
  let final_centroids = Array.map (fun j -> !centroids.(j)) order in
  let inertia =
    Array.to_seq points
    |> Seq.mapi (fun i p -> sq_dist p !centroids.(labels.(i)))
    |> Seq.fold_left ( +. ) 0.
  in
  let nrow = Composite.nrow composite and ncol = Composite.ncol composite in
  let label_img =
    Image.init ~label:"unsuperclassify" ~nrow ~ncol Pixel.Int4 (fun r c ->
        float_of_int rank.(labels.((r * ncol) + c)))
  in
  { labels = label_img;
    centroids = final_centroids;
    iterations = !iterations;
    inertia }

let classify_image ?seed ?max_iter img k =
  unsuperclassify ?seed ?max_iter (Composite.of_bands [ img ]) k
