type t = {
  space : Box.t;
  time : Interval.t;
  refsys : Refsys.t;
}

let make ?(refsys = Refsys.Lat_long) space time = { space; time; refsys }

type common_mode =
  | Same
  | Overlap

let rec pairwise_ok f = function
  | [] | [ _ ] -> true
  | x :: rest -> List.for_all (f x) rest && pairwise_ok f rest

let common_space mode boxes =
  match mode with
  | Same -> pairwise_ok Box.equal boxes
  | Overlap -> pairwise_ok Box.overlaps boxes

let common_time mode intervals =
  match mode with
  | Same -> pairwise_ok Interval.equal intervals
  | Overlap -> pairwise_ok Interval.overlaps intervals

let common mode extents =
  pairwise_ok (fun a b -> Refsys.equal a.refsys b.refsys) extents
  && common_space mode (List.map (fun e -> e.space) extents)
  && common_time mode (List.map (fun e -> e.time) extents)

let intersection a b =
  if not (Refsys.equal a.refsys b.refsys) then None
  else
    match Box.intersection a.space b.space, Interval.intersection a.time b.time with
    | Some space, Some time -> Some { space; time; refsys = a.refsys }
    | _ -> None

let hull a b =
  if not (Refsys.equal a.refsys b.refsys) then None
  else
    Some
      { space = Box.hull a.space b.space;
        time = Interval.hull a.time b.time;
        refsys = a.refsys }

let overlaps a b =
  Refsys.equal a.refsys b.refsys
  && Box.overlaps a.space b.space
  && Interval.overlaps a.time b.time

let equal a b =
  Refsys.equal a.refsys b.refsys
  && Box.equal a.space b.space
  && Interval.equal a.time b.time

let to_string t =
  Printf.sprintf "%s @ %s [%s]" (Box.to_string t.space)
    (Interval.to_string t.time)
    (Refsys.to_string t.refsys)

let pp fmt t = Format.pp_print_string fmt (to_string t)
