(** Spatial reference systems and measurement units.

    Gaea classes carry a [ref_system] and a [ref_unit] attribute (cf. the
    [landcover] class definition in the paper, Section 2.1.2).  This module
    gives those strings first-class, checkable representations. *)

type t =
  | Lat_long            (** geographic coordinates, degrees *)
  | Utm of int          (** Universal Transverse Mercator, zone 1..60 *)
  | Local of string     (** a named local / ad-hoc reference system *)

type unit_ =
  | Degree
  | Meter
  | Kilometer

val utm : int -> t
(** [utm zone] builds a UTM reference system.
    @raise Invalid_argument if [zone] is outside 1..60. *)

val utm_checked : int -> (t, string) result
(** Non-raising variant of {!utm}. *)

val equal : t -> t -> bool
val equal_unit : unit_ -> unit_ -> bool

val default_unit : t -> unit_
(** The natural unit of a reference system: degrees for [Lat_long],
    meters for UTM and local systems. *)

val to_string : t -> string
val of_string : string -> t option
(** Inverse of [to_string]; also accepts the free-form strings used in
    class definitions ("long/lat", "UTM-18", ...). *)

val unit_to_string : unit_ -> string
val unit_of_string : string -> unit_ option

val convert_length : from_:unit_ -> to_:unit_ -> float -> float option
(** Convert a length measurement between metric units.  Returns [None]
    when the conversion crosses the angular/metric divide (degrees cannot
    be converted to meters without a latitude). *)

val pp : Format.formatter -> t -> unit
val pp_unit : Format.formatter -> unit_ -> unit
