(** Combined spatio-temporal extents and the [common] compatibility rules
    used in process TEMPLATE assertions (paper Fig 3:
    [common(bands.spatialextent)], [common(bands.timestamp)]). *)

type t = {
  space : Box.t;
  time : Interval.t;
  refsys : Refsys.t;
}

val make : ?refsys:Refsys.t -> Box.t -> Interval.t -> t
(** [refsys] defaults to {!Refsys.Lat_long}. *)

(** How strictly a set of extents must agree for a process to fire. *)
type common_mode =
  | Same      (** extents must be identical *)
  | Overlap   (** extents must pairwise overlap *)

val common_space : common_mode -> Box.t list -> bool
(** Per the paper: "the spatio-temporal extents of the input classes are
    the same or overlap".  Vacuously true on the empty list and
    singletons. *)

val common_time : common_mode -> Interval.t list -> bool
val common : common_mode -> t list -> bool
(** Both spatial and temporal agreement, and identical reference
    systems. *)

val intersection : t -> t -> t option
(** Spatio-temporal intersection (requires same reference system). *)

val hull : t -> t -> t option
val overlaps : t -> t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
