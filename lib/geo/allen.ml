type relation =
  | Before
  | Meets
  | Overlaps
  | Starts
  | During
  | Finishes
  | Equal
  | After
  | Met_by
  | Overlapped_by
  | Started_by
  | Contains
  | Finished_by

let all =
  [ Before; Meets; Overlaps; Starts; During; Finishes; Equal; After; Met_by;
    Overlapped_by; Started_by; Contains; Finished_by ]

(* Classify from the four endpoint comparisons.  Works for any totally
   ordered endpoint representation; we instantiate with ints. *)
let classify ~ss ~se ~es ~ee =
  (* ss = compare a.start b.start; se = compare a.start b.stop;
     es = compare a.stop b.start; ee = compare a.stop b.stop *)
  if ss = 0 && ee = 0 then Equal
  else if es < 0 then Before
  else if es = 0 then Meets
  else if se > 0 then After
  else if se = 0 then Met_by
  else if ss = 0 then (if ee < 0 then Starts else Started_by)
  else if ee = 0 then (if ss > 0 then Finishes else Finished_by)
  else if ss < 0 then (if ee < 0 then Overlaps else Contains)
  else if ee > 0 then Overlapped_by
  else During

let relate_ints (as_, ae) (bs, be) =
  classify ~ss:(compare as_ bs) ~se:(compare as_ be) ~es:(compare ae bs)
    ~ee:(compare ae be)

let relate_checked a b =
  if Interval.is_instant a || Interval.is_instant b then
    Error "Allen.relate: instant (zero-duration) interval"
  else begin
    let s i = Abstime.to_seconds (Interval.start i) in
    let e i = Abstime.to_seconds (Interval.stop i) in
    Ok (relate_ints (s a, e a) (s b, e b))
  end

let relate a b =
  match relate_checked a b with
  | Ok r -> r
  | Error m -> invalid_arg m

let inverse = function
  | Before -> After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Starts -> Started_by
  | During -> Contains
  | Finishes -> Finished_by
  | Equal -> Equal
  | After -> Before
  | Met_by -> Meets
  | Overlapped_by -> Overlaps
  | Started_by -> Starts
  | Contains -> During
  | Finished_by -> Finishes

let index = function
  | Before -> 0 | Meets -> 1 | Overlaps -> 2 | Starts -> 3 | During -> 4
  | Finishes -> 5 | Equal -> 6 | After -> 7 | Met_by -> 8
  | Overlapped_by -> 9 | Started_by -> 10 | Contains -> 11
  | Finished_by -> 12

(* Exact composition table by exhaustive enumeration.  Three proper
   intervals involve six endpoints; every order configuration of six
   endpoints is realized with integer endpoints in 0..5, so enumerating
   all proper intervals over 0..5 is a complete model set. *)
let composition_table =
  lazy begin
    let table = Array.make (13 * 13) [] in
    let intervals =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun e -> if e > s then Some (s, e) else None)
            [ 0; 1; 2; 3; 4; 5 ])
        [ 0; 1; 2; 3; 4; 5 ]
    in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            List.iter
              (fun c ->
                let r1 = relate_ints a b and r2 = relate_ints b c in
                let r3 = relate_ints a c in
                let i = index r1 * 13 + index r2 in
                if not (List.mem r3 table.(i)) then
                  table.(i) <- r3 :: table.(i))
              intervals)
          intervals)
      intervals;
    Array.map
      (fun rs -> List.sort (fun x y -> compare (index x) (index y)) rs)
      table
  end

let compose r1 r2 = (Lazy.force composition_table).(index r1 * 13 + index r2)

let holds r a b = r = relate a b

let to_string = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Starts -> "starts"
  | During -> "during"
  | Finishes -> "finishes"
  | Equal -> "equal"
  | After -> "after"
  | Met_by -> "met-by"
  | Overlapped_by -> "overlapped-by"
  | Started_by -> "started-by"
  | Contains -> "contains"
  | Finished_by -> "finished-by"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "before" -> Some Before
  | "meets" -> Some Meets
  | "overlaps" -> Some Overlaps
  | "starts" -> Some Starts
  | "during" -> Some During
  | "finishes" -> Some Finishes
  | "equal" | "equals" -> Some Equal
  | "after" -> Some After
  | "met-by" -> Some Met_by
  | "overlapped-by" -> Some Overlapped_by
  | "started-by" -> Some Started_by
  | "contains" -> Some Contains
  | "finished-by" -> Some Finished_by
  | _ -> None

let equal_relation a b = index a = index b

let pp fmt r = Format.pp_print_string fmt (to_string r)
