type t = int (* seconds since 1970-01-01T00:00:00, proleptic Gregorian *)

let epoch = 0
let of_seconds s = s
let to_seconds t = t

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year y then 29 else 28
  | _ -> invalid_arg (Printf.sprintf "Abstime.days_in_month: month %d" m)

let is_valid_date y m d = m >= 1 && m <= 12 && d >= 1 && d <= days_in_month y m

(* Days from civil date, Howard Hinnant's algorithm (public domain). *)
let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (m + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + d - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let d = doy - (153 * mp + 2) / 5 + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let of_ymd_checked y m d =
  if not (is_valid_date y m d) then
    Error (Printf.sprintf "Abstime.of_ymd: invalid date %d-%02d-%02d" y m d)
  else Ok (days_from_civil y m d * 86400)

let of_ymd y m d =
  match of_ymd_checked y m d with
  | Ok t -> t
  | Error m -> invalid_arg m

let of_ymd_hms_checked y m d hh mm ss =
  if hh < 0 || hh > 23 || mm < 0 || mm > 59 || ss < 0 || ss > 59 then
    Error
      (Printf.sprintf "Abstime.of_ymd_hms: invalid time %02d:%02d:%02d" hh mm ss)
  else
    match of_ymd_checked y m d with
    | Ok day -> Ok (day + (hh * 3600 + mm * 60 + ss))
    | Error _ as e -> e

let of_ymd_hms y m d hh mm ss =
  match of_ymd_hms_checked y m d hh mm ss with
  | Ok t -> t
  | Error m -> invalid_arg m

(* Floor division/modulo so negative timestamps map to the correct day. *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let fmod a b = a - fdiv a b * b

let to_ymd t = civil_from_days (fdiv t 86400)

let to_ymd_hms t =
  let day = fdiv t 86400 in
  let sec = fmod t 86400 in
  (civil_from_days day, (sec / 3600, sec mod 3600 / 60, sec mod 60))

let add_seconds t s = t + s
let add_days t d = t + d * 86400

let add_months t n =
  let (y, m, d), (hh, mm, ss) = to_ymd_hms t in
  (* 0-based month arithmetic with floor division for negative results *)
  let months = (y * 12 + (m - 1)) + n in
  let y' = fdiv months 12 in
  let m' = fmod months 12 + 1 in
  let d' = Stdlib.min d (days_in_month y' m') in
  of_ymd_hms y' m' d' hh mm ss

let add_years t n = add_months t (n * 12)

let diff_seconds a b = a - b
let diff_days a b = float_of_int (a - b) /. 86400.

let compare = Int.compare
let equal = Int.equal
let min = Stdlib.min
let max = Stdlib.max

let to_string t =
  let (y, m, d), (hh, mm, ss) = to_ymd_hms t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" y m d hh mm ss

let of_string s =
  let s = String.trim s in
  let parse_date ds =
    match String.split_on_char '-' ds with
    | [ y; m; d ] ->
      (match int_of_string_opt y, int_of_string_opt m, int_of_string_opt d with
       | Some y, Some m, Some d when is_valid_date y m d -> Some (y, m, d)
       | _ -> None)
    | _ -> None
  in
  let parse_time ts =
    match String.split_on_char ':' ts with
    | [ h; m; s ] ->
      (match int_of_string_opt h, int_of_string_opt m, int_of_string_opt s with
       | Some h, Some m, Some s
         when h >= 0 && h < 24 && m >= 0 && m < 60 && s >= 0 && s < 60 ->
         Some (h, m, s)
       | _ -> None)
    | _ -> None
  in
  let split_at c =
    match String.index_opt s c with
    | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> None
  in
  match split_at 'T' with
  | Some (ds, ts) ->
    (match parse_date ds, parse_time ts with
     | Some (y, m, d), Some (hh, mm, ss) -> Some (of_ymd_hms y m d hh mm ss)
     | _ -> None)
  | None ->
    (match split_at ' ' with
     | Some (ds, ts) ->
       (match parse_date ds, parse_time ts with
        | Some (y, m, d), Some (hh, mm, ss) -> Some (of_ymd_hms y m d hh mm ss)
        | _ -> None)
     | None ->
       (match parse_date s with
        | Some (y, m, d) -> Some (of_ymd y m d)
        | None -> None))

let pp fmt t = Format.pp_print_string fmt (to_string t)
