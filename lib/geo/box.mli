(** Two-dimensional axis-aligned bounding boxes — the [box] primitive
    class used for the SPATIAL EXTENT of Gaea classes. *)

type t = private { xmin : float; ymin : float; xmax : float; ymax : float }

val make : xmin:float -> ymin:float -> xmax:float -> ymax:float -> t
(** @raise Invalid_argument if [xmax < xmin] or [ymax < ymin], or any
    coordinate is not finite. *)

val make_checked :
  xmin:float -> ymin:float -> xmax:float -> ymax:float -> (t, string) result
(** Non-raising variant of {!make}; the error string is the message
    {!make} would raise. *)

val of_corners : float * float -> float * float -> t
(** Corners in any order. *)

val point : float -> float -> t
val xmin : t -> float
val ymin : t -> float
val xmax : t -> float
val ymax : t -> float
val width : t -> float
val height : t -> float
val area : t -> float
val center : t -> float * float
val is_degenerate : t -> bool

val contains_point : t -> float * float -> bool
val contains : outer:t -> inner:t -> bool
val overlaps : t -> t -> bool
(** Closed-box overlap: touching edges count. *)

val intersection : t -> t -> t option
val hull : t -> t -> t
val hull_list : t list -> t option
val expand : t -> float -> t
(** Grow (or, if negative, shrink — clamped at the center) each side. *)

val translate : t -> dx:float -> dy:float -> t

val scale_about_center : t -> float -> t
(** @raise Invalid_argument on a negative factor. *)

val scale_about_center_checked : t -> float -> (t, string) result
(** Non-raising variant of {!scale_about_center}. *)

val equal : t -> t -> bool
val approx_equal : ?eps:float -> t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
(** Parses the form ["(xmin,ymin,xmax,ymax)"]. *)

val pp : Format.formatter -> t -> unit
