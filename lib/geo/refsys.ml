type t =
  | Lat_long
  | Utm of int
  | Local of string

type unit_ =
  | Degree
  | Meter
  | Kilometer

let utm_checked zone =
  if zone < 1 || zone > 60 then
    Error (Printf.sprintf "Refsys.utm: zone %d outside 1..60" zone)
  else Ok (Utm zone)

let utm zone =
  match utm_checked zone with
  | Ok r -> r
  | Error m -> invalid_arg m

let equal a b =
  match a, b with
  | Lat_long, Lat_long -> true
  | Utm z1, Utm z2 -> z1 = z2
  | Local s1, Local s2 -> String.equal s1 s2
  | (Lat_long | Utm _ | Local _), _ -> false

let equal_unit a b =
  match a, b with
  | Degree, Degree | Meter, Meter | Kilometer, Kilometer -> true
  | (Degree | Meter | Kilometer), _ -> false

let default_unit = function
  | Lat_long -> Degree
  | Utm _ | Local _ -> Meter

let to_string = function
  | Lat_long -> "long/lat"
  | Utm z -> Printf.sprintf "UTM-%d" z
  | Local s -> s

let of_string s =
  let lower = String.lowercase_ascii (String.trim s) in
  match lower with
  | "long/lat" | "lat/long" | "latlong" | "geographic" -> Some Lat_long
  | _ ->
    if String.length lower > 4 && String.sub lower 0 4 = "utm-" then
      match int_of_string_opt (String.sub lower 4 (String.length lower - 4)) with
      | Some z when z >= 1 && z <= 60 -> Some (Utm z)
      | Some _ | None -> None
    else if String.length lower >= 3 && String.sub lower 0 3 = "utm" then
      match
        int_of_string_opt
          (String.trim (String.sub lower 3 (String.length lower - 3)))
      with
      | Some z when z >= 1 && z <= 60 -> Some (Utm z)
      | Some _ | None -> None
    else if lower = "" then None
    else Some (Local (String.trim s))

let unit_to_string = function
  | Degree -> "degree"
  | Meter -> "meter"
  | Kilometer -> "kilometer"

let unit_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "degree" | "degrees" | "deg" -> Some Degree
  | "meter" | "meters" | "m" -> Some Meter
  | "kilometer" | "kilometers" | "km" -> Some Kilometer
  | _ -> None

let convert_length ~from_ ~to_ x =
  let to_meters = function
    | Meter -> Some x
    | Kilometer -> Some (x *. 1000.)
    | Degree -> None
  in
  match from_, to_ with
  | Degree, Degree -> Some x
  | Degree, (Meter | Kilometer) | (Meter | Kilometer), Degree -> None
  | _ ->
    (match to_meters from_ with
     | None -> None
     | Some m ->
       (match to_ with
        | Meter -> Some m
        | Kilometer -> Some (m /. 1000.)
        | Degree -> None))

let pp fmt t = Format.pp_print_string fmt (to_string t)
let pp_unit fmt u = Format.pp_print_string fmt (unit_to_string u)
