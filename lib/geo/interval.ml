type t = { start : Abstime.t; stop : Abstime.t }

let make_checked start stop =
  if Abstime.compare stop start < 0 then
    Error
      (Printf.sprintf "Interval.make: stop %s before start %s"
         (Abstime.to_string stop) (Abstime.to_string start))
  else Ok { start; stop }

let make start stop =
  match make_checked start stop with
  | Ok t -> t
  | Error m -> invalid_arg m

let instant t = { start = t; stop = t }

let of_ymd_pair (y1, m1, d1) (y2, m2, d2) =
  make (Abstime.of_ymd y1 m1 d1) (Abstime.of_ymd y2 m2 d2)

let start t = t.start
let stop t = t.stop
let duration_seconds t = Abstime.diff_seconds t.stop t.start
let duration_days t = Abstime.diff_days t.stop t.start
let is_instant t = Abstime.equal t.start t.stop

let contains t x =
  Abstime.compare t.start x <= 0 && Abstime.compare x t.stop <= 0

let contains_interval ~outer ~inner =
  Abstime.compare outer.start inner.start <= 0
  && Abstime.compare inner.stop outer.stop <= 0

let overlaps a b =
  Abstime.compare a.start b.stop <= 0 && Abstime.compare b.start a.stop <= 0

let intersection a b =
  let start = Abstime.max a.start b.start in
  let stop = Abstime.min a.stop b.stop in
  if Abstime.compare start stop <= 0 then Some { start; stop } else None

let hull a b =
  { start = Abstime.min a.start b.start; stop = Abstime.max a.stop b.stop }

let equal a b = Abstime.equal a.start b.start && Abstime.equal a.stop b.stop

let compare a b =
  match Abstime.compare a.start b.start with
  | 0 -> Abstime.compare a.stop b.stop
  | c -> c

let midpoint t =
  Abstime.add_seconds t.start (Abstime.diff_seconds t.stop t.start / 2)

let to_string t =
  if is_instant t then Abstime.to_string t.start
  else
    Printf.sprintf "[%s, %s]" (Abstime.to_string t.start)
      (Abstime.to_string t.stop)

let pp fmt t = Format.pp_print_string fmt (to_string t)
