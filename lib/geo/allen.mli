(** Allen's thirteen interval relations (Allen, CACM 1983), cited by the
    paper as the formal semantics for the temporal extent.

    Relations are defined over {e proper} intervals (positive duration). *)

type relation =
  | Before        (** a entirely precedes b, with a gap *)
  | Meets         (** a.stop = b.start *)
  | Overlaps      (** a starts first, they overlap, b ends last *)
  | Starts        (** same start, a ends first *)
  | During        (** a strictly inside b *)
  | Finishes      (** same end, a starts later *)
  | Equal
  | After         (** inverse of Before *)
  | Met_by
  | Overlapped_by
  | Started_by
  | Contains
  | Finished_by

val all : relation list
(** All 13 relations, fixed order. *)

val relate : Interval.t -> Interval.t -> relation
(** The unique relation holding between two proper intervals.
    @raise Invalid_argument if either interval is an instant. *)

val relate_checked : Interval.t -> Interval.t -> (relation, string) result
(** Non-raising variant of {!relate}; the error string is the message
    {!relate} would raise. *)

val inverse : relation -> relation
(** [relate b a = inverse (relate a b)]. *)

val compose : relation -> relation -> relation list
(** Allen's composition: the set of relations possibly holding between
    [a] and [c] given [relate a b] and [relate b c].  Computed exactly
    (once, memoized) by exhaustive small-model enumeration. *)

val holds : relation -> Interval.t -> Interval.t -> bool

val to_string : relation -> string
val of_string : string -> relation option
val equal_relation : relation -> relation -> bool
val pp : Format.formatter -> relation -> unit
