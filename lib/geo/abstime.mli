(** Absolute time — the [abstime] primitive class of the paper.

    A pure (no [Unix] dependency) proleptic-Gregorian timestamp with
    second resolution, represented as seconds relative to the epoch
    1970-01-01T00:00:00.  Supports dates well before 1970 (negative
    values), which matters for historical climate records. *)

type t

val epoch : t
(** 1970-01-01 00:00:00 *)

val of_seconds : int -> t
val to_seconds : t -> int

val of_ymd : int -> int -> int -> t
(** [of_ymd y m d] is midnight on that civil date.
    @raise Invalid_argument on an invalid civil date. *)

val of_ymd_checked : int -> int -> int -> (t, string) result
(** Non-raising variant of {!of_ymd}; the error string is the message
    {!of_ymd} would raise. *)

val of_ymd_hms : int -> int -> int -> int -> int -> int -> t
(** @raise Invalid_argument on an invalid date or time of day. *)

val of_ymd_hms_checked :
  int -> int -> int -> int -> int -> int -> (t, string) result
(** Non-raising variant of {!of_ymd_hms}. *)

val to_ymd : t -> int * int * int
val to_ymd_hms : t -> (int * int * int) * (int * int * int)

val is_valid_date : int -> int -> int -> bool
val is_leap_year : int -> bool

val days_in_month : int -> int -> int
(** [days_in_month y m].
    @raise Invalid_argument if [m] is outside 1..12 (invariant check —
    callers validate the month with {!is_valid_date} first). *)

val add_seconds : t -> int -> t
val add_days : t -> int -> t
val add_months : t -> int -> t
(** Civil-calendar month arithmetic; day-of-month is clamped (Jan 31 + 1
    month = Feb 28/29). Time of day is preserved. *)

val add_years : t -> int -> t

val diff_seconds : t -> t -> int
(** [diff_seconds a b] = a - b in seconds. *)

val diff_days : t -> t -> float

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val to_string : t -> string
(** ISO-8601, e.g. ["1986-01-15T00:00:00"]. *)

val of_string : string -> t option
(** Parses ["YYYY-MM-DD"] or ["YYYY-MM-DDTHH:MM:SS"] (also with a space
    separator). *)

val pp : Format.formatter -> t -> unit
