(** Closed time intervals [\[start, stop\]] over {!Abstime}. *)

type t = private { start : Abstime.t; stop : Abstime.t }

val make : Abstime.t -> Abstime.t -> t
(** @raise Invalid_argument if [stop < start]. *)

val make_checked : Abstime.t -> Abstime.t -> (t, string) result
(** Non-raising variant of {!make}; the error string is the message
    {!make} would raise. *)

val instant : Abstime.t -> t
(** The degenerate interval [\[t, t\]]. *)

val of_ymd_pair : int * int * int -> int * int * int -> t

val start : t -> Abstime.t
val stop : t -> Abstime.t
val duration_seconds : t -> int
val duration_days : t -> float
val is_instant : t -> bool

val contains : t -> Abstime.t -> bool
val contains_interval : outer:t -> inner:t -> bool
val overlaps : t -> t -> bool
(** True when the closed intervals share at least one instant. *)

val intersection : t -> t -> t option
val hull : t -> t -> t
(** Smallest interval covering both. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic on (start, stop). *)

val midpoint : t -> Abstime.t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
