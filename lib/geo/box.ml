type t = { xmin : float; ymin : float; xmax : float; ymax : float }

let make_checked ~xmin ~ymin ~xmax ~ymax =
  let nonfinite =
    List.find_opt
      (fun (_, v) -> not (Float.is_finite v))
      [ ("xmin", xmin); ("ymin", ymin); ("xmax", xmax); ("ymax", ymax) ]
  in
  match nonfinite with
  | Some (name, _) -> Error (Printf.sprintf "Box.make: %s is not finite" name)
  | None ->
    if xmax < xmin || ymax < ymin then
      Error
        (Printf.sprintf "Box.make: inverted box (%g,%g,%g,%g)" xmin ymin xmax
           ymax)
    else Ok { xmin; ymin; xmax; ymax }

let make ~xmin ~ymin ~xmax ~ymax =
  match make_checked ~xmin ~ymin ~xmax ~ymax with
  | Ok t -> t
  | Error m -> invalid_arg m

let of_corners (x1, y1) (x2, y2) =
  make ~xmin:(Float.min x1 x2) ~ymin:(Float.min y1 y2)
    ~xmax:(Float.max x1 x2) ~ymax:(Float.max y1 y2)

let point x y = make ~xmin:x ~ymin:y ~xmax:x ~ymax:y

let xmin t = t.xmin
let ymin t = t.ymin
let xmax t = t.xmax
let ymax t = t.ymax
let width t = t.xmax -. t.xmin
let height t = t.ymax -. t.ymin
let area t = width t *. height t
let center t = ((t.xmin +. t.xmax) /. 2., (t.ymin +. t.ymax) /. 2.)
let is_degenerate t = width t = 0. || height t = 0.

let contains_point t (x, y) =
  t.xmin <= x && x <= t.xmax && t.ymin <= y && y <= t.ymax

let contains ~outer ~inner =
  outer.xmin <= inner.xmin && inner.xmax <= outer.xmax
  && outer.ymin <= inner.ymin && inner.ymax <= outer.ymax

let overlaps a b =
  a.xmin <= b.xmax && b.xmin <= a.xmax && a.ymin <= b.ymax && b.ymin <= a.ymax

let intersection a b =
  if overlaps a b then
    Some
      { xmin = Float.max a.xmin b.xmin;
        ymin = Float.max a.ymin b.ymin;
        xmax = Float.min a.xmax b.xmax;
        ymax = Float.min a.ymax b.ymax }
  else None

let hull a b =
  { xmin = Float.min a.xmin b.xmin;
    ymin = Float.min a.ymin b.ymin;
    xmax = Float.max a.xmax b.xmax;
    ymax = Float.max a.ymax b.ymax }

let hull_list = function
  | [] -> None
  | b :: rest -> Some (List.fold_left hull b rest)

let expand t d =
  let cx, cy = center t in
  let half_w = Float.max 0. (width t /. 2. +. d) in
  let half_h = Float.max 0. (height t /. 2. +. d) in
  { xmin = cx -. half_w; ymin = cy -. half_h;
    xmax = cx +. half_w; ymax = cy +. half_h }

let translate t ~dx ~dy =
  { xmin = t.xmin +. dx; ymin = t.ymin +. dy;
    xmax = t.xmax +. dx; ymax = t.ymax +. dy }

let scale_about_center_checked t f =
  if f < 0. then Error "Box.scale_about_center: negative factor"
  else begin
    let cx, cy = center t in
    let half_w = width t /. 2. *. f and half_h = height t /. 2. *. f in
    Ok
      { xmin = cx -. half_w; ymin = cy -. half_h;
        xmax = cx +. half_w; ymax = cy +. half_h }
  end

let scale_about_center t f =
  match scale_about_center_checked t f with
  | Ok b -> b
  | Error m -> invalid_arg m

let equal a b =
  a.xmin = b.xmin && a.ymin = b.ymin && a.xmax = b.xmax && a.ymax = b.ymax

let approx_equal ?(eps = 1e-9) a b =
  let close u v = Float.abs (u -. v) <= eps in
  close a.xmin b.xmin && close a.ymin b.ymin && close a.xmax b.xmax
  && close a.ymax b.ymax

let compare a b =
  let c = Float.compare a.xmin b.xmin in
  if c <> 0 then c
  else
    let c = Float.compare a.ymin b.ymin in
    if c <> 0 then c
    else
      let c = Float.compare a.xmax b.xmax in
      if c <> 0 then c else Float.compare a.ymax b.ymax

let to_string t =
  Printf.sprintf "(%g,%g,%g,%g)" t.xmin t.ymin t.xmax t.ymax

let of_string s =
  let s = String.trim s in
  let n = String.length s in
  let body =
    if n >= 2 && s.[0] = '(' && s.[n - 1] = ')' then String.sub s 1 (n - 2)
    else s
  in
  match List.map String.trim (String.split_on_char ',' body) with
  | [ a; b; c; d ] ->
    (match
       ( float_of_string_opt a, float_of_string_opt b, float_of_string_opt c,
         float_of_string_opt d )
     with
     | Some xmin, Some ymin, Some xmax, Some ymax
       when xmin <= xmax && ymin <= ymax
            && Float.is_finite xmin && Float.is_finite ymin
            && Float.is_finite xmax && Float.is_finite ymax ->
       Some { xmin; ymin; xmax; ymax }
     | _ -> None)
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
