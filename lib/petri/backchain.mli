(** Goal-directed backward chaining — the paper's query mechanism
    (Section 2.1.6): "given a final marking, try to find the initial
    marking which can lead to this marking.  This initial marking will
    identify the specific data objects that can be retrieved directly
    from the database."

    A {!plan} says, for a goal place, which tokens to retrieve directly
    and which transitions to fire (recursively satisfying their inputs).
    Because Gaea firing never consumes tokens, one satisfaction of a
    transition's inputs supports any number of its firings. *)

type source =
  | Existing of Net.token            (** retrieve this stored object *)
  | Derived of step                  (** fire a transition to produce it *)

and step = {
  transition : Net.transition;
  step_inputs : (Net.place * source list) list;
  (** per input place, the sources satisfying its threshold *)
}

type plan = {
  goal : Net.place;
  sources : source list;             (** one per demanded token *)
}

val search : ?need:int -> Net.t -> Marking.t -> Net.place -> plan option
(** Minimum-firing-count plan delivering [need] (default 1) tokens at
    the goal place, preferring direct retrieval, or [None] when the goal
    is underivable.  Cycles in the derivation net are handled by
    excluding places already under derivation on the current path
    (so P5-style self-derivations — deriving a concept from itself via
    a sibling class — still work).

    Invariant check: [need >= 1].
    @raise Invalid_argument if [need < 1] — a programming error in the
    caller, not a data-dependent failure, so it is deliberately an
    exception rather than a [Result] (query-layer callers always pass a
    positive demand, validated at parse time). *)

val cost : plan -> int
(** Number of transition firings in the plan. *)

val depth : plan -> int
(** Longest derivation chain (0 for pure retrieval). *)

val retrieved_tokens : plan -> (Net.place * Net.token) list
(** The paper's "initial marking": every stored object the plan
    touches, with the place it is retrieved from (duplicates removed,
    sorted). *)

val execute :
  Net.t -> Marking.t -> plan -> fresh:(unit -> Net.token)
  -> (Marking.t * Net.token list * Net.transition list, string) result
(** Fire the plan bottom-up.  Returns the final marking, the tokens now
    satisfying the goal, and the firing order.  Fails if some firing is
    rejected (e.g. by a guard) — callers fall back to other plans. *)

val pp :
  ?place_name:(Net.place -> string)
  -> ?transition_name:(Net.transition -> string)
  -> Format.formatter -> plan -> unit
