(** Structural analysis of derivation diagrams — supports the browsing
    and comparison uses the paper lists for derivation diagrams
    (Section 5: browse, compare, derive). *)

type report = {
  n_places : int;
  n_transitions : int;
  dead_transitions : Net.transition list;
  (** thresholds can never be met from the given marking *)
  underivable_places : Net.place list;
  (** no firing sequence can mark them *)
  cyclic : bool;
  (** the class-derivation graph contains a cycle (legal in Gaea —
      e.g. interpolation derives a concept from itself) *)
  max_fan_in : int;   (** largest number of input places of a transition *)
  max_depth : int;    (** longest acyclic derivation chain, in transitions *)
}

val analyze : Net.t -> Marking.t -> report

val has_cycle : Net.t -> bool

val derivation_depth : Net.t -> int
(** Longest acyclic input→output chain over transitions. *)

val pp_report :
  ?place_name:(Net.place -> string)
  -> ?transition_name:(Net.transition -> string)
  -> Format.formatter -> report -> unit
