type report = {
  n_places : int;
  n_transitions : int;
  dead_transitions : Net.transition list;
  underivable_places : Net.place list;
  cyclic : bool;
  max_fan_in : int;
  max_depth : int;
}

(* Cycle detection over the place graph: edge p -> q when some
   transition has p among inputs and q among outputs. *)
let has_cycle net =
  let adj = Hashtbl.create 64 in
  List.iter
    (fun info ->
      List.iter
        (fun (p, _) ->
          List.iter
            (fun q ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt adj p) in
              Hashtbl.replace adj p (q :: cur))
            info.Net.outputs)
        info.Net.inputs)
    (Net.transitions net);
  let state = Hashtbl.create 64 in
  (* 0 visiting, 1 done *)
  let rec visit p =
    match Hashtbl.find_opt state p with
    | Some 1 -> false
    | Some _ -> true
    | None ->
      Hashtbl.add state p 0;
      let cyc =
        List.exists visit (Option.value ~default:[] (Hashtbl.find_opt adj p))
      in
      Hashtbl.replace state p 1;
      cyc
  in
  List.exists visit (Net.places net)

let derivation_depth net =
  (* longest chain in the acyclic condensation; memoized DFS that treats
     back-edges as depth 0 so cyclic nets still terminate *)
  let memo = Hashtbl.create 64 in
  let visiting = Hashtbl.create 64 in
  let rec place_depth p =
    match Hashtbl.find_opt memo p with
    | Some d -> d
    | None ->
      if Hashtbl.mem visiting p then 0
      else begin
        Hashtbl.add visiting p ();
        let d =
          List.fold_left
            (fun acc info ->
              let input_depth =
                List.fold_left
                  (fun a (q, _) -> Stdlib.max a (place_depth q))
                  0 info.Net.inputs
              in
              Stdlib.max acc (1 + input_depth))
            0 (Net.producers_of net p)
        in
        Hashtbl.remove visiting p;
        Hashtbl.replace memo p d;
        d
      end
  in
  List.fold_left (fun acc p -> Stdlib.max acc (place_depth p)) 0 (Net.places net)

let analyze net marking =
  let info = Reachability.analyze net marking in
  let transitions = Net.transitions net in
  { n_places = Net.n_places net;
    n_transitions = Net.n_transitions net;
    dead_transitions =
      List.filter_map
        (fun t -> if info.Reachability.fireable t.Net.t_id then None else Some t.Net.t_id)
        transitions;
    underivable_places =
      List.filter (fun p -> not (info.Reachability.derivable p)) (Net.places net);
    cyclic = has_cycle net;
    max_fan_in =
      List.fold_left
        (fun acc t -> Stdlib.max acc (List.length t.Net.inputs))
        0 transitions;
    max_depth = derivation_depth net }

let pp_report ?(place_name = string_of_int)
    ?(transition_name = string_of_int) fmt r =
  Format.fprintf fmt
    "@[<v>places: %d@ transitions: %d@ cyclic: %b@ max fan-in: %d@ max \
     depth: %d@ dead transitions: [%s]@ underivable places: [%s]@]"
    r.n_places r.n_transitions r.cyclic r.max_fan_in r.max_depth
    (String.concat ", " (List.map transition_name r.dead_transitions))
    (String.concat ", " (List.map place_name r.underivable_places))
