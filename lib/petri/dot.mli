(** Graphviz export of derivation diagrams — the "browse data following
    their derivation relationships" use (paper Section 5). *)

val to_dot :
  ?name:string
  -> ?marking:Marking.t
  -> Net.t -> string
(** Places as circles (doubled when marked), transitions as boxes, arc
    thresholds > 1 as edge labels. *)
