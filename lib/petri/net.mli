(** Derivation diagrams as modified Petri nets (paper Section 2.1.6).

    "Every non-primitive class ... corresponds to a place in a PN, and
    every process corresponds to a transition.  Tokens in every place
    represent the data objects needed for the instantiation of a
    process."

    Gaea's three modifications to classical nets are implemented in
    {!Firing}:
    + tokens are {e not} removed when a transition fires;
    + the arc weight is a {e minimum} threshold — more tokens than the
      threshold may be used;
    + transitions carry {e guards} (assertion compatibility between the
      chosen tokens).

    Tokens are abstract integers (the derivation layer passes object
    ids); guards are callbacks over the chosen token binding. *)

type place = int
type transition = int
type token = int

type guard = (place * token list) list -> bool
(** Receives, per input place, the tokens offered to the transition. *)

type transition_info = {
  t_id : transition;
  t_name : string;
  inputs : (place * int) list;   (** (place, minimum token threshold >= 1) *)
  outputs : place list;
  guard : guard option;
}

type t

val create : unit -> t

val add_place : t -> name:string -> place
val add_transition :
  t -> name:string -> inputs:(place * int) list -> outputs:place list
  -> ?guard:guard -> unit -> (transition, string) result
(** Errors if a referenced place is unknown, a threshold is < 1, there
    are no inputs, or no outputs. *)

val place_name : t -> place -> string
val transition_name : t -> transition -> string
val transition_info : t -> transition -> transition_info option
val places : t -> place list
val transitions : t -> transition_info list
val producers_of : t -> place -> transition_info list
(** Transitions with the place among their outputs. *)

val consumers_of : t -> place -> transition_info list
(** Transitions with the place among their inputs (the name is
    classical; Gaea transitions never actually consume). *)

val n_places : t -> int
val n_transitions : t -> int
val mem_place : t -> place -> bool
