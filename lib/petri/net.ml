type place = int
type transition = int
type token = int

type guard = (place * token list) list -> bool

type transition_info = {
  t_id : transition;
  t_name : string;
  inputs : (place * int) list;
  outputs : place list;
  guard : guard option;
}

type t = {
  mutable next_place : int;
  mutable next_transition : int;
  place_names : (place, string) Hashtbl.t;
  trans : (transition, transition_info) Hashtbl.t;
  (* indexes *)
  producers : (place, transition list) Hashtbl.t;
  consumers : (place, transition list) Hashtbl.t;
}

let create () =
  { next_place = 0;
    next_transition = 0;
    place_names = Hashtbl.create 64;
    trans = Hashtbl.create 64;
    producers = Hashtbl.create 64;
    consumers = Hashtbl.create 64 }

let add_place t ~name =
  let id = t.next_place in
  t.next_place <- id + 1;
  Hashtbl.add t.place_names id name;
  id

let mem_place t p = Hashtbl.mem t.place_names p

let add_index tbl key v =
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (v :: cur)

let add_transition t ~name ~inputs ~outputs ?guard () =
  if inputs = [] then Error (name ^ ": transition needs at least one input")
  else if outputs = [] then
    Error (name ^ ": transition needs at least one output")
  else if List.exists (fun (_, k) -> k < 1) inputs then
    Error (name ^ ": thresholds must be >= 1")
  else if
    List.exists (fun (p, _) -> not (mem_place t p)) inputs
    || List.exists (fun p -> not (mem_place t p)) outputs
  then Error (name ^ ": unknown place")
  else begin
    let id = t.next_transition in
    t.next_transition <- id + 1;
    let info = { t_id = id; t_name = name; inputs; outputs; guard } in
    Hashtbl.add t.trans id info;
    List.iter (fun (p, _) -> add_index t.consumers p id) inputs;
    List.iter (fun p -> add_index t.producers p id) outputs;
    Ok id
  end

let place_name t p =
  Option.value ~default:"?" (Hashtbl.find_opt t.place_names p)

let transition_info t id = Hashtbl.find_opt t.trans id

let transition_name t id =
  match transition_info t id with
  | Some i -> i.t_name
  | None -> "?"

let places t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.place_names []
  |> List.sort Int.compare

let transitions t =
  Hashtbl.fold (fun _ i acc -> i :: acc) t.trans []
  |> List.sort (fun a b -> Int.compare a.t_id b.t_id)

let lookup_index t tbl p =
  Option.value ~default:[] (Hashtbl.find_opt tbl p)
  |> List.filter_map (transition_info t)
  |> List.sort (fun a b -> Int.compare a.t_id b.t_id)

let producers_of t p = lookup_index t t.producers p
let consumers_of t p = lookup_index t t.consumers p

let n_places t = Hashtbl.length t.place_names
let n_transitions t = Hashtbl.length t.trans
