type info = {
  derivable : Net.place -> bool;
  potential_count : Net.place -> int;
  fireable : Net.transition -> bool;
  iterations : int;
}

let cap = 1_000_000

(* n choose k with saturation *)
let combinations n k =
  if k < 0 || k > n then 0
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref 1 in
    (try
       for i = 0 to k - 1 do
         acc := !acc * (n - i) / (i + 1);
         if !acc >= cap then begin
           acc := cap;
           raise Exit
         end
       done
     with Exit -> ());
    Stdlib.min cap !acc
  end

let analyze net marking =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun p -> Hashtbl.replace counts p (Marking.count marking p))
    (Net.places net);
  let get p = Option.value ~default:0 (Hashtbl.find_opt counts p) in
  let transitions = Net.transitions net in
  (* contribution of a transition: number of distinct input combinations *)
  let combos info =
    List.fold_left
      (fun acc (p, k) ->
        let c = combinations (get p) k in
        Stdlib.min cap (acc * c))
      1 info.Net.inputs
  in
  let changed = ref true in
  let iterations = ref 0 in
  (* Widening: counts in cyclic nets can otherwise crawl to the cap one
     token per round (self-feeding places).  After [widen_after] rounds
     any still-growing count jumps straight to the cap — a sound upper
     bound, and the fixpoint then settles in O(places) more rounds. *)
  let widen_after = 64 in
  while !changed do
    incr iterations;
    changed := false;
    List.iter
      (fun p ->
        let produced =
          List.fold_left
            (fun acc info -> Stdlib.min cap (acc + combos info))
            0 (Net.producers_of net p)
        in
        let candidate =
          Stdlib.min cap (Marking.count marking p + produced)
        in
        let candidate =
          if candidate > get p && !iterations > widen_after then cap
          else candidate
        in
        if candidate > get p then begin
          Hashtbl.replace counts p candidate;
          changed := true
        end)
      (Net.places net)
  done;
  let fireable_tbl = Hashtbl.create 64 in
  List.iter
    (fun info ->
      Hashtbl.replace fireable_tbl info.Net.t_id
        (List.for_all (fun (p, k) -> get p >= k) info.Net.inputs))
    transitions;
  { derivable = (fun p -> get p > 0);
    potential_count = get;
    fireable =
      (fun tid -> Option.value ~default:false (Hashtbl.find_opt fireable_tbl tid));
    iterations = !iterations }

let derivable_places net marking =
  let info = analyze net marking in
  List.filter
    (fun p -> info.derivable p && not (Marking.is_marked marking p))
    (Net.places net)

let closure net marking ~fresh =
  let current = ref marking in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun info ->
        let tid = info.Net.t_id in
        let has_unmarked_output =
          List.exists (fun p -> not (Marking.is_marked !current p)) info.Net.outputs
        in
        if has_unmarked_output && Firing.enabled net !current tid then
          match Firing.fire net !current tid ~fresh with
          | Ok (m, _) ->
            current := m;
            progress := true
          | Error _ -> ())
      (Net.transitions net)
  done;
  !current
