let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(name = "derivation") ?marking net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n";
  List.iter
    (fun p ->
      let marked =
        match marking with
        | Some m -> Marking.is_marked m p
        | None -> false
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  p%d [shape=%s, label=\"%s%s\"];\n" p
           (if marked then "doublecircle" else "circle")
           (escape (Net.place_name net p))
           (match marking with
            | Some m when Marking.count m p > 0 ->
              Printf.sprintf "\\n(%d)" (Marking.count m p)
            | _ -> "")))
    (Net.places net);
  List.iter
    (fun info ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d [shape=box, label=\"%s\"];\n" info.Net.t_id
           (escape info.Net.t_name));
      List.iter
        (fun (p, k) ->
          Buffer.add_string buf
            (Printf.sprintf "  p%d -> t%d%s;\n" p info.Net.t_id
               (if k > 1 then Printf.sprintf " [label=\"%d\"]" k else "")))
        info.Net.inputs;
      List.iter
        (fun p ->
          Buffer.add_string buf (Printf.sprintf "  t%d -> p%d;\n" info.Net.t_id p))
        info.Net.outputs)
    (Net.transitions net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
