(** Markings: the assignment of tokens (data objects) to places
    (non-primitive classes).  Immutable. *)

type t

val empty : t
val add : t -> Net.place -> Net.token -> t
(** Idempotent: adding a token already present is a no-op. *)

val add_all : t -> Net.place -> Net.token list -> t
val remove : t -> Net.place -> Net.token -> t
val tokens : t -> Net.place -> Net.token list
(** Sorted ascending; empty list for an unmarked place. *)

val count : t -> Net.place -> int
val mem : t -> Net.place -> Net.token -> bool
val is_marked : t -> Net.place -> bool
val places : t -> Net.place list
(** Places holding at least one token, sorted. *)

val total_tokens : t -> int
val union : t -> t -> t
val equal : t -> t -> bool
val of_list : (Net.place * Net.token list) list -> t
val pp : ?place_name:(Net.place -> string) -> Format.formatter -> t -> unit
