(** The Gaea-modified firing rules (paper Section 2.1.6).

    Modifications with respect to classical Petri nets:
    + firing does {e not} remove input tokens ("tokens used for
      derivation are permanent and can be reused");
    + the number of input arcs denotes a {e minimum}: "when a transition
      is fired, more tokens than the threshold may be used";
    + a guard over the chosen tokens must hold ("only when such
      relationships are satisfied will the transition be enabled and
      fired"). *)

type binding = (Net.place * Net.token list) list
(** The tokens a firing consumes conceptually: for each input place, the
    list of tokens offered to the transition (at least the threshold). *)

val default_binding : Net.t -> Marking.t -> Net.transition -> binding option
(** Offer {e all} available tokens at each input place (the paper's
    PCA example: "two input data images are enough, but more than two
    images are usually used").  [None] if a threshold is unmet or the
    transition is unknown. *)

val enabled : Net.t -> Marking.t -> Net.transition -> bool
(** Thresholds met by the default binding and guard satisfied. *)

val enabled_with : Net.t -> Marking.t -> Net.transition -> binding -> bool
(** Like {!enabled} but for an explicit token selection; checks the
    binding covers every input place with enough tokens actually present
    in the marking. *)

val enabled_transitions : Net.t -> Marking.t -> Net.transition list

val fire :
  Net.t -> Marking.t -> Net.transition -> fresh:(unit -> Net.token)
  -> (Marking.t * (Net.place * Net.token) list, string) result
(** Fire with the default binding: inputs are kept, one fresh token is
    produced per output place.  Returns the new marking and the
    produced (place, token) pairs.  Errors when not enabled. *)

val fire_with :
  Net.t -> Marking.t -> Net.transition -> binding
  -> fresh:(unit -> Net.token)
  -> (Marking.t * (Net.place * Net.token) list, string) result
