type source =
  | Existing of Net.token
  | Derived of step

and step = {
  transition : Net.transition;
  step_inputs : (Net.place * source list) list;
}

type plan = {
  goal : Net.place;
  sources : source list;
}

module IntSet = Set.Make (Int)

(* Plans share sub-derivation nodes physically: the deficit firings of
   one transition reference the same input-source list, so cost and
   execute deduplicate by physical identity — a shared sub-derivation is
   fired (and counted) once. *)
let cost plan =
  let seen : Obj.t list ref = ref [] in
  let rec go src =
    match src with
    | Existing _ -> 0
    | Derived s ->
      let key = Obj.repr src in
      if List.exists (fun k -> k == key) !seen then 0
      else begin
        seen := key :: !seen;
        1
        + List.fold_left
            (fun acc (_, srcs) ->
              acc + List.fold_left (fun a x -> a + go x) 0 srcs)
            0 s.step_inputs
      end
  in
  List.fold_left (fun acc s -> acc + go s) 0 plan.sources

let rec source_depth = function
  | Existing _ -> 0
  | Derived s ->
    1
    + List.fold_left
        (fun acc (_, srcs) ->
          List.fold_left (fun a src -> Stdlib.max a (source_depth src)) acc srcs)
        0 s.step_inputs

let depth plan =
  List.fold_left (fun acc s -> Stdlib.max acc (source_depth s)) 0 plan.sources

(* Search: for (place, need) return the sources, or None.

   Distinct derived objects require distinct input combinations: firing
   a process twice on the same inputs only duplicates data.  To supply
   n tokens from one producer, the plan gathers enough input tokens that
   n distinct combinations exist (per input arc with threshold k it asks
   for the least k' with enough combinations), recursively.  A deficit
   may also be covered by several producers.  The reachability fixpoint
   (an upper bound on distinct-token supply) prunes impossible goals
   early.  [visiting] prevents derivation cycles along the current
   path; retrieval of stored tokens at a visited place stays allowed
   (the paper's P5 derives a concept from itself using a stored sibling
   object). *)
let search ?(need = 1) net marking goal =
  if need < 1 then invalid_arg "Backchain.search: need < 1";
  if not (Net.mem_place net goal) then None
  else begin
    let info = Reachability.analyze net marking in
    let potential p = info.Reachability.potential_count p in
    (* acyclic nets never engage the cycle guard, so both successes and
       failures are path-independent and memoizable; in cyclic nets only
       successes are (a finished plan is grounded in stored tokens and
       valid anywhere) *)
    let acyclic =
      let adj = Hashtbl.create 64 in
      List.iter
        (fun tinfo ->
          List.iter
            (fun (p, _) ->
              List.iter
                (fun q ->
                  Hashtbl.replace adj p
                    (q :: Option.value ~default:[] (Hashtbl.find_opt adj p)))
                tinfo.Net.outputs)
            tinfo.Net.inputs)
        (Net.transitions net);
      let state = Hashtbl.create 64 in
      let rec visit p =
        match Hashtbl.find_opt state p with
        | Some 1 -> true
        | Some _ -> false
        | None ->
          Hashtbl.add state p 0;
          let ok =
            List.for_all visit
              (Option.value ~default:[] (Hashtbl.find_opt adj p))
          in
          Hashtbl.replace state p 1;
          ok
      in
      List.for_all visit (Net.places net)
    in
    let memo : (int * int, (source list * int) option) Hashtbl.t =
      Hashtbl.create 64
    in
    (* failure subsumption for cyclic nets: a failure recorded under
       visiting set V and demand n also rules out any demand >= n under
       any visiting superset of V *)
    let failures : (int, (int * IntSet.t) list) Hashtbl.t = Hashtbl.create 64 in
    let failed_before visiting place need =
      List.exists
        (fun (n, v) -> need >= n && IntSet.subset v visiting)
        (Option.value ~default:[] (Hashtbl.find_opt failures place))
    in
    let record_failure visiting place need =
      let cur = Option.value ~default:[] (Hashtbl.find_opt failures place) in
      Hashtbl.replace failures place ((need, visiting) :: cur)
    in
    (* least m >= k with C(m, k) >= n, within the place's potential *)
    let enough_for ~threshold ~n ~limit =
      let rec grow m =
        if m > limit then None
        else if Reachability.combinations m threshold >= n then Some m
        else grow (m + 1)
      in
      grow threshold
    in
    (* fuel bounds pathological exploration on dense cyclic nets *)
    let fuel = ref 200_000 in
    let rec place_sources visiting place need =
      match Hashtbl.find_opt memo (place, need) with
      | Some (Some r) -> Some r
      | Some None when acyclic -> None
      | _ ->
        if (not acyclic) && failed_before visiting place need then None
        else (
          match place_sources_uncached visiting place need with
          | Some r ->
            Hashtbl.replace memo (place, need) (Some r);
            Some r
          | None ->
            if acyclic then Hashtbl.replace memo (place, need) None
            else record_failure visiting place need;
            None)

    and place_sources_uncached visiting place need =
      decr fuel;
      if !fuel <= 0 then None
      else begin
        let available = Marking.tokens marking place in
        let n_avail = List.length available in
        if n_avail >= need then
          Some (List.filteri (fun i _ -> i < need) available
                |> List.map (fun tok -> Existing tok),
                0)
        else if IntSet.mem place visiting then None
        else if potential place < need then None
        else begin
          let deficit = need - n_avail in
          let retrieved = List.map (fun tok -> Existing tok) available in
          let visiting' = IntSet.add place visiting in
          let producers = Net.producers_of net place in
          (* try to obtain [n] distinct tokens from one producer *)
          let from_producer tinfo n =
            (* per input arc, gather enough tokens for n distinct
               combinations overall; combination counts multiply across
               arcs, so when one arc cannot supply the whole remaining
               factor (its place's potential is too small) it
               contributes its maximum and later arcs make up the rest *)
            let rec choose_arcs acc combos = function
              | [] -> if combos >= n then Some (List.rev acc) else None
              | (p, k) :: rest ->
                let limit = potential p in
                if limit < k then None
                else begin
                  let target = (n + combos - 1) / Stdlib.max combos 1 in
                  let m =
                    match enough_for ~threshold:k ~n:target ~limit with
                    | Some m -> m
                    | None -> limit (* cap: take everything this arc has *)
                  in
                  choose_arcs ((p, k, m) :: acc)
                    (Stdlib.min Reachability.cap
                       (combos * Reachability.combinations m k))
                    rest
                end
            in
            match choose_arcs [] 1 tinfo.Net.inputs with
            | None -> None
            | Some arcs ->
              let rec gather acc acc_cost = function
                | [] -> Some (List.rev acc, acc_cost)
                | (p, _k, m) :: rest ->
                  (match place_sources visiting' p m with
                   | None -> None
                   | Some (srcs, c) -> gather ((p, srcs) :: acc) (acc_cost + c) rest)
              in
              (match gather [] 0 arcs with
               | None -> None
               | Some (step_inputs, input_cost) ->
                 let derived =
                   List.init n (fun _ ->
                       Derived { transition = tinfo.Net.t_id; step_inputs })
                 in
                 Some (derived, input_cost + n))
          in
          (* cover the deficit: whole-deficit from the cheapest producer,
             else distribute across producers greedily *)
          let candidates =
            List.filter_map
              (fun tinfo ->
                Option.map (fun r -> (tinfo, r)) (from_producer tinfo deficit))
              producers
          in
          match
            List.sort
              (fun (_, (_, c1)) (_, (_, c2)) -> Int.compare c1 c2)
              candidates
          with
          | (_, (derived, c)) :: _ -> Some (retrieved @ derived, c)
          | [] ->
            (* multi-producer cover: take each producer's maximum *)
            let rec cover remaining acc_sources acc_cost = function
              | [] -> None
              | tinfo :: rest ->
                let max_here =
                  List.fold_left
                    (fun acc (p, k) ->
                      Stdlib.min acc
                        (Reachability.combinations (potential p) k))
                    remaining tinfo.Net.inputs
                in
                let rec try_take take =
                  if take <= 0 then None
                  else
                    match from_producer tinfo take with
                    | Some r -> Some (take, r)
                    | None -> try_take (take - 1)
                in
                (match try_take max_here with
                 | None -> cover remaining acc_sources acc_cost rest
                 | Some (take, (derived, c)) ->
                   let acc_sources = acc_sources @ derived in
                   let acc_cost = acc_cost + c in
                   if take >= remaining then Some (acc_sources, acc_cost)
                   else cover (remaining - take) acc_sources acc_cost rest)
            in
            (match cover deficit [] 0 producers with
             | None -> None
             | Some (derived, c) -> Some (retrieved @ derived, c))
        end
      end
    in
    match place_sources IntSet.empty goal need with
    | None -> None
    | Some (sources, _) -> Some { goal; sources }
  end

let retrieved_tokens plan =
  let module PT = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let rec walk_source place acc = function
    | Existing tok -> PT.add (place, tok) acc
    | Derived s ->
      List.fold_left
        (fun acc (p, srcs) ->
          List.fold_left (fun acc src -> walk_source p acc src) acc srcs)
        acc s.step_inputs
  in
  let set =
    List.fold_left
      (fun acc src -> walk_source plan.goal acc src)
      PT.empty plan.sources
  in
  PT.elements set

let execute net marking plan ~fresh =
  let ( let* ) r f = Result.bind r f in
  (* shared Derived nodes realize (fire) exactly once *)
  let realized : (Obj.t * Net.token) list ref = ref [] in
  let rec realize m fired place = function
    | Existing tok ->
      if Marking.mem m place tok then Ok (m, tok, fired)
      else
        Error
          (Printf.sprintf "token %d not present at place %d" tok place)
    | Derived s as src ->
      let key = Obj.repr src in
      (match List.find_opt (fun (k, _) -> k == key) !realized with
       | Some (_, tok) -> Ok (m, tok, fired)
       | None ->
         (* realize all inputs first *)
         let* m, binding, fired =
           List.fold_left
             (fun acc (p, srcs) ->
               let* m, binding, fired = acc in
               let* m, toks, fired =
                 List.fold_left
                   (fun acc src ->
                     let* m, toks, fired = acc in
                     let* m, tok, fired = realize m fired p src in
                     Ok (m, tok :: toks, fired))
                   (Ok (m, [], fired))
                   srcs
               in
               Ok (m, (p, List.rev toks) :: binding, fired))
             (Ok (m, [], fired))
             s.step_inputs
         in
         let binding = List.rev binding in
         let* m, produced =
           Firing.fire_with net m s.transition binding ~fresh
         in
         (match List.assoc_opt place produced with
          | Some tok ->
            realized := (key, tok) :: !realized;
            Ok (m, tok, s.transition :: fired)
          | None ->
            Error
              (Printf.sprintf "transition %d did not produce at place %d"
                 s.transition place)))
  in
  let* m, tokens_rev, fired_rev =
    List.fold_left
      (fun acc src ->
        let* m, toks, fired = acc in
        let* m, tok, fired = realize m fired plan.goal src in
        Ok (m, tok :: toks, fired))
      (Ok (marking, [], []))
      plan.sources
  in
  Ok (m, List.rev tokens_rev, List.rev fired_rev)

let pp ?(place_name = string_of_int) ?(transition_name = string_of_int) fmt
    plan =
  let rec pp_source indent fmt = function
    | Existing tok -> Format.fprintf fmt "%sretrieve token %d" indent tok
    | Derived s ->
      Format.fprintf fmt "%sfire %s" indent (transition_name s.transition);
      List.iter
        (fun (p, srcs) ->
          Format.fprintf fmt "@ %s  from %s:" indent (place_name p);
          List.iter
            (fun src ->
              Format.fprintf fmt "@ %a" (pp_source (indent ^ "    ")) src)
            srcs)
        s.step_inputs
  in
  Format.fprintf fmt "@[<v>plan for %s (%d token(s), cost %d):"
    (place_name plan.goal) (List.length plan.sources) (cost plan);
  List.iter (fun src -> Format.fprintf fmt "@ %a" (pp_source "  ") src) plan.sources;
  Format.fprintf fmt "@]"
