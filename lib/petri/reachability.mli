(** Forward reachability over the derivation net.

    Because Gaea firing never consumes tokens, token counts are monotone
    and reachability reduces to a saturating fixpoint over per-place
    counts: a place is {e derivable} when some firing sequence can give
    it at least one token.  Guards are ignored here (they depend on the
    concrete objects); the result is therefore an {e upper bound} that
    {!Backchain} refines into concrete plans. *)

type info = {
  derivable : Net.place -> bool;
  (** place can hold >= 1 token after some firing sequence *)
  potential_count : Net.place -> int;
  (** saturating upper bound on distinct tokens the place can hold
      (existing tokens + one per distinct enabled-producer combination),
      capped at {!cap} *)
  fireable : Net.transition -> bool;
  (** transition's thresholds can eventually be met *)
  iterations : int; (** fixpoint rounds until convergence *)
}

val cap : int
(** Saturation bound for potential counts (1_000_000). *)

val combinations : int -> int -> int
(** [combinations n k] = C(n, k), saturating at {!cap} — the number of
    distinct token combinations a threshold-k arc can draw from n
    tokens. *)

val analyze : Net.t -> Marking.t -> info

val derivable_places : Net.t -> Marking.t -> Net.place list
(** Sorted list of places derivable but not currently marked. *)

val closure : Net.t -> Marking.t -> fresh:(unit -> Net.token) -> Marking.t
(** Concretely fire every enabled transition (guards included) until no
    new place becomes marked — each transition fires at most once per
    round and only if it has an unmarked output.  Terminates because the
    marked-place set is monotone and bounded. *)
