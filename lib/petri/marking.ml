module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type t = IntSet.t IntMap.t

let empty = IntMap.empty

let add t place token =
  IntMap.update place
    (function
      | None -> Some (IntSet.singleton token)
      | Some s -> Some (IntSet.add token s))
    t

let add_all t place tokens = List.fold_left (fun t tok -> add t place tok) t tokens

let remove t place token =
  IntMap.update place
    (function
      | None -> None
      | Some s ->
        let s = IntSet.remove token s in
        if IntSet.is_empty s then None else Some s)
    t

let tokens t place =
  match IntMap.find_opt place t with
  | None -> []
  | Some s -> IntSet.elements s

let count t place =
  match IntMap.find_opt place t with
  | None -> 0
  | Some s -> IntSet.cardinal s

let mem t place token =
  match IntMap.find_opt place t with
  | None -> false
  | Some s -> IntSet.mem token s

let is_marked t place = count t place > 0

let places t = IntMap.fold (fun p _ acc -> p :: acc) t [] |> List.rev

let total_tokens t = IntMap.fold (fun _ s acc -> acc + IntSet.cardinal s) t 0

let union a b =
  IntMap.union (fun _ s1 s2 -> Some (IntSet.union s1 s2)) a b

let equal a b = IntMap.equal IntSet.equal a b

let of_list l =
  List.fold_left (fun t (p, toks) -> add_all t p toks) empty l

let pp ?(place_name = string_of_int) fmt t =
  Format.fprintf fmt "@[<v>";
  IntMap.iter
    (fun p s ->
      Format.fprintf fmt "%s: {%s}@ " (place_name p)
        (String.concat ", " (List.map string_of_int (IntSet.elements s))))
    t;
  Format.fprintf fmt "@]"
