type binding = (Net.place * Net.token list) list

let default_binding net marking tid =
  match Net.transition_info net tid with
  | None -> None
  | Some info ->
    let rec gather acc = function
      | [] -> Some (List.rev acc)
      | (p, k) :: rest ->
        let toks = Marking.tokens marking p in
        if List.length toks < k then None else gather ((p, toks) :: acc) rest
    in
    gather [] info.Net.inputs

let guard_ok info binding =
  match info.Net.guard with
  | None -> true
  | Some g -> g binding

let enabled net marking tid =
  match Net.transition_info net tid with
  | None -> false
  | Some info ->
    (match default_binding net marking tid with
     | None -> false
     | Some b -> guard_ok info b)

let binding_valid marking info binding =
  List.for_all
    (fun (p, k) ->
      match List.assoc_opt p binding with
      | None -> false
      | Some toks ->
        List.length toks >= k
        && List.for_all (fun tok -> Marking.mem marking p tok) toks)
    info.Net.inputs
  && List.for_all
       (fun (p, _) -> List.exists (fun (q, _) -> q = p) info.Net.inputs)
       binding

let enabled_with net marking tid binding =
  match Net.transition_info net tid with
  | None -> false
  | Some info -> binding_valid marking info binding && guard_ok info binding

let enabled_transitions net marking =
  List.filter_map
    (fun info ->
      if enabled net marking info.Net.t_id then Some info.Net.t_id else None)
    (Net.transitions net)

let produce marking info ~fresh =
  let produced =
    List.map (fun p -> (p, fresh ())) info.Net.outputs
  in
  let marking =
    List.fold_left (fun m (p, tok) -> Marking.add m p tok) marking produced
  in
  (marking, produced)

let fire net marking tid ~fresh =
  match Net.transition_info net tid with
  | None -> Error (Printf.sprintf "unknown transition %d" tid)
  | Some info ->
    (match default_binding net marking tid with
     | None ->
       Error
         (Printf.sprintf "%s: input threshold not met" info.Net.t_name)
     | Some b ->
       if not (guard_ok info b) then
         Error (Printf.sprintf "%s: guard rejected the binding" info.Net.t_name)
       else Ok (produce marking info ~fresh))

let fire_with net marking tid binding ~fresh =
  match Net.transition_info net tid with
  | None -> Error (Printf.sprintf "unknown transition %d" tid)
  | Some info ->
    if not (binding_valid marking info binding) then
      Error
        (Printf.sprintf "%s: binding does not satisfy the input thresholds"
           info.Net.t_name)
    else if not (guard_ok info binding) then
      Error (Printf.sprintf "%s: guard rejected the binding" info.Net.t_name)
    else Ok (produce marking info ~fresh)
