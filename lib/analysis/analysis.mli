(** [gaea check]: static analysis of process templates and derivation
    nets.

    Four passes over the catalog, the process registry and the
    derivation net, reporting {!Diagnostic.t} findings:

    - {b Template well-formedness} (GA001-GA013): every mapping target
      exists in the output class schema, every argument reference
      resolves, expressions type-check against the operator registry
      (an inferred-type lattice keeps SETOF splice-ambiguity from
      producing false positives).
    - {b Cardinality satisfiability} (GA011-GA012): the [card(...)]
      assertions of a template, intersected with the declared argument
      cardinality bounds, leave a non-empty range.
    - {b Compound nets} (GA020-GA028): expansion terminates (no direct
      or mutual recursion through latest versions), step argument
      bindings are complete and class-compatible (class mismatches
      bridged by the concept ISA DAG downgrade to warnings), dead
      steps are flagged, and the kernel-wide derivation net is checked
      for dead transitions and underivable derived classes (reusing
      {!Gaea_petri.Analysis}).
    - {b Version lints} (GA030-GA032): tasks and live derived objects
      referencing superseded process versions, classes DERIVED BY
      unknown processes.

    Severity calibration: a finding is an [Error] only when the
    deriver would (or could never) fail at run time for the same
    reason — a process the deriver executes successfully must produce
    zero error-severity findings. *)

val check_process :
  Gaea_core.Kernel.t -> Gaea_core.Process.t -> Diagnostic.t list
(** Template, cardinality and compound passes for one process, sorted
    ({!Diagnostic.sort}). *)

val check_kernel : Gaea_core.Kernel.t -> Diagnostic.t list
(** {!check_process} over the latest version of every registered
    process, plus the kernel-wide passes: class lints, version lints
    and the derivation-net pass.  Sorted. *)

val codes : (string * Diagnostic.severity * string) list
(** The stable diagnostic catalogue: code, default severity, one-line
    description — in code order.  [GA022]/[GA026] may downgrade from
    [Error] to [Warning] when the mismatched classes are related
    through the concept ISA DAG. *)

val describe : string -> string option
(** Description of a diagnostic code, if known. *)
