module Vtype = Gaea_adt.Vtype
module Value = Gaea_adt.Value
module Registry = Gaea_adt.Registry
module Operator = Gaea_adt.Operator
module Kernel = Gaea_core.Kernel
module Schema = Gaea_core.Schema
module Process = Gaea_core.Process
module Template = Gaea_core.Template
module Concept = Gaea_core.Concept
module Task = Gaea_core.Task

(* ------------------------------------------------------------------ *)
(* Diagnostic catalogue                                                *)
(* ------------------------------------------------------------------ *)

let codes =
  [
    ("GA001", Diagnostic.Error, "mapping target not in the output class");
    ("GA002", Diagnostic.Error, "output attribute never mapped");
    ("GA003", Diagnostic.Error, "reference to an undeclared argument");
    ("GA004", Diagnostic.Error, "argument class has no such attribute");
    ("GA005", Diagnostic.Error, "unknown operator");
    ("GA006", Diagnostic.Error, "operator arity mismatch");
    ("GA007", Diagnostic.Error, "operator or mapping type mismatch");
    ("GA008", Diagnostic.Error, "unbound process parameter");
    ("GA009", Diagnostic.Error, "common() on a class without that extent");
    ("GA010", Diagnostic.Warning, "duplicate mapping target");
    ("GA011", Diagnostic.Error, "contradictory cardinality constraints");
    ("GA012", Diagnostic.Error, "cardinality assertion on a scalar argument");
    ("GA013", Diagnostic.Error, "unknown input or output class");
    ("GA020", Diagnostic.Error, "compound expansion recurses");
    ("GA021", Diagnostic.Error, "unknown sub-process");
    ("GA022", Diagnostic.Error, "step input class incompatible");
    ("GA023", Diagnostic.Warning, "dead step: output never consumed");
    ("GA024", Diagnostic.Error, "step argument binding incomplete or unknown");
    ("GA025", Diagnostic.Error, "step cardinality unsatisfiable");
    ("GA026", Diagnostic.Error, "final step class differs from the output");
    ("GA027", Diagnostic.Info, "derivation-net transition can never fire");
    ("GA028", Diagnostic.Info, "derived class unreachable in the net");
    ("GA030", Diagnostic.Warning, "task references a superseded version");
    ("GA031", Diagnostic.Warning, "live object derived by a superseded version");
    ("GA032", Diagnostic.Warning, "class DERIVED BY an unknown process");
    ("GA033", Diagnostic.Info, "derived object stale w.r.t. its task inputs");
  ]

let describe code =
  List.find_map
    (fun (c, _, d) -> if c = code then Some d else None)
    codes

(* ------------------------------------------------------------------ *)
(* Inferred types                                                      *)
(* ------------------------------------------------------------------ *)

(* The lattice avoiding false positives on SETOF arguments: a SETOF
   argument whose cardinality range straddles 1 evaluates to either a
   bare value (one object bound) or a VSet (several), so neither shape
   can be ruled out statically. *)
type ity =
  | Known of Vtype.t
  | Set_or_one of Vtype.t  (* Setof t or t, depending on the binding *)
  | Unknown  (* a reported error upstream; suppress follow-on checks *)

let ity_to_string = function
  | Known t -> Vtype.to_string t
  | Set_or_one t ->
    Printf.sprintf "%s or setof %s" (Vtype.to_string t) (Vtype.to_string t)
  | Unknown -> "?"

(* Can this inferred shape put a set on the operator's argument list
   (and hence be spliced by a variadic operator)? *)
let may_be_set = function
  | Known (Vtype.Setof _) | Set_or_one _ | Unknown -> true
  | Known _ -> false

(* ------------------------------------------------------------------ *)
(* Per-process checking context                                        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  kernel : Kernel.t;
  proc : Process.t;
  mutable acc : Diagnostic.t list;
}

let emit ctx ~code ~severity ?element message =
  ctx.acc <-
    Diagnostic.make ~code ~severity ~proc:ctx.proc.Process.proc_name
      ~version:ctx.proc.Process.version ?element message
    :: ctx.acc

let error ctx ~code ?element msg =
  emit ctx ~code ~severity:Diagnostic.Error ?element msg

let warning ctx ~code ?element msg =
  emit ctx ~code ~severity:Diagnostic.Warning ?element msg

(* ------------------------------------------------------------------ *)
(* Pass 1: template well-formedness                                    *)
(* ------------------------------------------------------------------ *)

(* The static shape of [arg.attr]: what Template.eval_attr_of produces
   for each possible binding the cardinality bounds allow. *)
let attr_shape (spec : Process.arg_spec) ty =
  if (not spec.Process.setof) || spec.Process.card_max = Some 1 then Known ty
  else if spec.Process.card_min >= 2 then Known (Vtype.Setof ty)
  else Set_or_one ty

(* [widen] mirrors the storage layer's Int -> Float coercion on insert
   (Tuple.coerce): mapping targets accept it, operator arguments do
   not (Operator.check_args is strict). *)
let fits ?(widen = false) ~expected t =
  Vtype.matches ~expected ~actual:t
  || (widen && expected = Vtype.Float && t = Vtype.Int)

let check_ity ?widen ctx ~element ~expected ity ~what =
  match ity with
  | Unknown -> ()
  | Known t ->
    if not (fits ?widen ~expected t) then
      error ctx ~code:"GA007" ~element
        (Printf.sprintf "%s: expected %s, got %s" what
           (Vtype.to_string expected) (Vtype.to_string t))
  | Set_or_one t ->
    if
      not
        (fits ?widen ~expected t
        || Vtype.matches ~expected ~actual:(Vtype.Setof t))
    then
      error ctx ~code:"GA007" ~element
        (Printf.sprintf "%s: expected %s, got %s" what
           (Vtype.to_string expected) (ity_to_string (Set_or_one t)))

let rec infer ctx ~element (expr : Template.expr) =
  match expr with
  | Template.Const v -> Known (Value.type_of v)
  | Template.Param name -> (
    match Process.param ctx.proc name with
    | Some v -> Known (Value.type_of v)
    | None ->
      error ctx ~code:"GA008" ~element
        (Printf.sprintf "parameter $%s is not bound by the process" name);
      Unknown)
  | Template.Attr_of (arg, attr) -> (
    match Process.arg ctx.proc arg with
    | None ->
      error ctx ~code:"GA003" ~element
        (Printf.sprintf "%s.%s references undeclared argument %s" arg attr
           arg);
      Unknown
    | Some spec -> (
      match Kernel.find_class ctx.kernel spec.Process.arg_class with
      | None -> Unknown (* GA013 already reported for the class *)
      | Some sch -> (
        match Schema.attr_type sch attr with
        | None ->
          error ctx ~code:"GA004" ~element
            (Printf.sprintf "class %s (argument %s) has no attribute %s"
               spec.Process.arg_class arg attr);
          Unknown
        | Some ty -> attr_shape spec ty)))
  | Template.Anyof e -> (
    match infer ctx ~element e with
    | Known (Vtype.Setof t) -> Known t
    | Set_or_one t -> Known t
    | (Known _ | Unknown) as i -> i (* ANYOF of a non-set is identity *))
  | Template.Apply (opname, args) -> (
    let itys = List.map (infer ctx ~element) args in
    match Registry.find_operator (Kernel.registry ctx.kernel) opname with
    | None ->
      error ctx ~code:"GA005" ~element
        (Printf.sprintf "unknown operator %s" opname);
      Unknown
    | Some op ->
      let sg = Operator.signature op in
      let n_fixed = List.length sg.Operator.params in
      (match sg.Operator.variadic with
       | None ->
         (* fixed signature: sets are passed through unspliced, so the
            written arity is the runtime arity *)
         if List.length itys <> n_fixed then
           error ctx ~code:"GA006" ~element
             (Printf.sprintf "%s expects %d argument(s), got %d" opname
                n_fixed (List.length itys))
         else
           List.iteri
             (fun i (expected, ity) ->
               check_ity ctx ~element ~expected ity
                 ~what:(Printf.sprintf "%s argument %d" opname (i + 1)))
             (List.combine sg.Operator.params itys)
       | Some velem ->
         let splice_possible = List.exists may_be_set itys in
         (* Operator.check_args only rejects fewer than the fixed
            prefix for variadic operators *)
         if (not splice_possible) && List.length itys < n_fixed then
           error ctx ~code:"GA006" ~element
             (Printf.sprintf "%s expects at least %d argument(s), got %d"
                opname n_fixed (List.length itys))
         else if not splice_possible then begin
           (* positions are stable: fixed prefix, then variadic tail *)
           List.iteri
             (fun i ity ->
               let expected =
                 if i < n_fixed then List.nth sg.Operator.params i else velem
               in
               check_ity ctx ~element ~expected ity
                 ~what:(Printf.sprintf "%s argument %d" opname (i + 1)))
             itys
         end
         else
           (* a set argument splices into individual values, shifting
              every later position: only check that each argument can
              land somewhere in the signature *)
           List.iteri
             (fun i ity ->
               match ity with
               | Unknown | Set_or_one _ -> ()
               | Known t ->
                 let elem =
                   match t with Vtype.Setof e -> e | other -> other
                 in
                 let fits =
                   List.exists
                     (fun p -> Vtype.matches ~expected:p ~actual:t)
                     sg.Operator.params
                   || Vtype.matches ~expected:velem ~actual:t
                   || Vtype.matches ~expected:velem ~actual:elem
                 in
                 if not fits then
                   error ctx ~code:"GA007" ~element
                     (Printf.sprintf
                        "%s argument %d: %s fits no position of %s" opname
                        (i + 1) (Vtype.to_string t)
                        (Operator.signature_to_string sg))
             )
             itys);
      (match sg.Operator.returns with
       | Vtype.Any -> Unknown
       | t -> Known t))

let check_template ctx (tmpl : Template.t) =
  let p = ctx.proc in
  let out_schema = Kernel.find_class ctx.kernel p.Process.output_class in
  let targets = List.map (fun m -> m.Template.target) tmpl.Template.mappings in
  (* mapping targets exist in the output class, exactly once each *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (m : Template.mapping) ->
      let element = "MAP " ^ m.Template.target in
      (if Hashtbl.mem seen m.Template.target then
         warning ctx ~code:"GA010" ~element
           (Printf.sprintf "attribute %s is mapped more than once"
              m.Template.target)
       else Hashtbl.add seen m.Template.target ());
      match out_schema with
      | None -> ()
      | Some sch -> (
        match Schema.attr_type sch m.Template.target with
        | None ->
          error ctx ~code:"GA001" ~element
            (Printf.sprintf "output class %s has no attribute %s"
               p.Process.output_class m.Template.target)
        | Some ta ->
          let ity = infer ctx ~element m.Template.rhs in
          check_ity ~widen:true ctx ~element ~expected:ta ity
            ~what:(Printf.sprintf "mapping of %s" m.Template.target)))
    tmpl.Template.mappings;
  (* every output attribute is mapped — the deriver refuses otherwise *)
  (match out_schema with
   | None -> ()
   | Some sch ->
     List.iter
       (fun a ->
         if not (List.mem a targets) then
           error ctx ~code:"GA002"
             ~element:("attribute " ^ a)
             (Printf.sprintf "output attribute %s of %s is never mapped" a
                p.Process.output_class))
       (Schema.attr_names sch));
  (* assertions *)
  let declared a = Process.arg p a <> None in
  let require_declared ~element a =
    if not (declared a) then
      error ctx ~code:"GA003" ~element
        (Printf.sprintf "assertion references undeclared argument %s" a)
  in
  List.iter
    (fun (a : Template.assertion) ->
      let element = "ASSERT " ^ Template.assertion_to_string a in
      match a with
      | Template.Expr_true e -> (
        match infer ctx ~element e with
        | Known Vtype.Bool | Unknown | Set_or_one Vtype.Bool -> ()
        | other ->
          error ctx ~code:"GA007" ~element
            (Printf.sprintf "assertion must be bool, got %s"
               (ity_to_string other)))
      | Template.Card_eq (arg, _) | Template.Card_ge (arg, _) ->
        require_declared ~element arg
      | Template.Common_space arg ->
        require_declared ~element arg;
        (match Process.arg p arg with
         | None -> ()
         | Some spec -> (
           match Kernel.find_class ctx.kernel spec.Process.arg_class with
           | None -> ()
           | Some sch ->
             if sch.Schema.spatial_attr = None then
               error ctx ~code:"GA009" ~element
                 (Printf.sprintf "class %s has no spatial extent"
                    spec.Process.arg_class)))
      | Template.Common_time arg ->
        require_declared ~element arg;
        (match Process.arg p arg with
         | None -> ()
         | Some spec -> (
           match Kernel.find_class ctx.kernel spec.Process.arg_class with
           | None -> ()
           | Some sch ->
             if sch.Schema.temporal_attr = None then
               error ctx ~code:"GA009" ~element
                 (Printf.sprintf "class %s has no temporal extent"
                    spec.Process.arg_class))))
    tmpl.Template.assertions

(* ------------------------------------------------------------------ *)
(* Pass 2: cardinality satisfiability                                  *)
(* ------------------------------------------------------------------ *)

let check_cardinalities ctx (tmpl : Template.t) =
  let p = ctx.proc in
  List.iter
    (fun (spec : Process.arg_spec) ->
      let name = spec.Process.arg_name in
      if not spec.Process.setof then
        (* a scalar argument always binds exactly one object *)
        List.iter
          (fun (a : Template.assertion) ->
            match a with
            | Template.Card_eq (arg, n) when arg = name && n <> 1 ->
              error ctx ~code:"GA012"
                ~element:("ASSERT " ^ Template.assertion_to_string a)
                (Printf.sprintf
                   "argument %s is scalar (always 1 object), card = %d \
                    can never hold"
                   name n)
            | Template.Card_ge (arg, n) when arg = name && n > 1 ->
              error ctx ~code:"GA012"
                ~element:("ASSERT " ^ Template.assertion_to_string a)
                (Printf.sprintf
                   "argument %s is scalar (always 1 object), card >= %d \
                    can never hold"
                   name n)
            | _ -> ())
          tmpl.Template.assertions
      else begin
        (* intersect the declared [card_min, card_max] with every
           assertion, reporting at the assertion that empties it *)
        let lo = ref spec.Process.card_min in
        let hi = ref spec.Process.card_max in
        let emitted = ref false in
        let range () =
          match !hi with
          | None -> Printf.sprintf "[%d, inf)" !lo
          | Some h -> Printf.sprintf "[%d, %d]" !lo h
        in
        let narrow (a : Template.assertion) nlo nhi =
          let before = range () in
          lo := max !lo nlo;
          (match nhi with
           | Some h ->
             hi := Some (match !hi with None -> h | Some h0 -> min h0 h)
           | None -> ());
          match !hi with
          | Some h when !lo > h && not !emitted ->
            emitted := true;
            error ctx ~code:"GA011"
              ~element:("ASSERT " ^ Template.assertion_to_string a)
              (Printf.sprintf
                 "cardinality of %s was %s; this assertion leaves no \
                  satisfiable count"
                 name before)
          | _ -> ()
        in
        List.iter
          (fun (a : Template.assertion) ->
            match a with
            | Template.Card_eq (arg, n) when arg = name ->
              narrow a n (Some n)
            | Template.Card_ge (arg, n) when arg = name -> narrow a n None
            | _ -> ())
          tmpl.Template.assertions
      end)
    p.Process.args

(* ------------------------------------------------------------------ *)
(* Pass 3: compound nets                                               *)
(* ------------------------------------------------------------------ *)

(* Are two classes bridged by the high-level layer?  True when they
   share a concept or their concepts are related through the ISA
   DAG — mismatches across such classes downgrade to warnings. *)
let classes_related k c1 c2 =
  c1 = c2
  ||
  let concepts = Kernel.concepts k in
  let cs1 = Concept.concepts_of_class concepts c1 in
  let cs2 = Concept.concepts_of_class concepts c2 in
  List.exists
    (fun x ->
      List.exists
        (fun y ->
          x = y
          || List.mem x (Concept.ancestors concepts y)
          || List.mem y (Concept.ancestors concepts x))
        cs2)
    cs1

let check_recursion ctx =
  let p = ctx.proc in
  let emitted = ref false in
  let visited = Hashtbl.create 8 in
  (* expansion resolves sub-process names to their latest versions, so
     the call graph is over names *)
  let rec visit path steps =
    List.iter
      (fun (s : Process.step) ->
        let sub = s.Process.step_process in
        if List.mem sub path then begin
          if not !emitted then begin
            emitted := true;
            error ctx ~code:"GA020"
              ~element:("step calling " ^ sub)
              (Printf.sprintf "expansion never terminates: %s"
                 (String.concat " -> " (List.rev (sub :: path))))
          end
        end
        else if not (Hashtbl.mem visited sub) then begin
          Hashtbl.add visited sub ();
          match Kernel.find_process ctx.kernel sub with
          | Some q when Process.is_compound q ->
            visit (sub :: path) (Process.steps q)
          | Some _ | None -> ()
        end)
      steps
  in
  visit [ p.Process.proc_name ] (Process.steps p)

let check_compound ctx =
  let p = ctx.proc in
  let steps = Process.steps p in
  let n = List.length steps in
  check_recursion ctx;
  List.iteri
    (fun i (s : Process.step) ->
      (* step numbering is 1-based everywhere a user sees it, matching
         the STEP n surface syntax *)
      let element =
        Printf.sprintf "step %d (%s)" (i + 1) s.Process.step_process
      in
      match Kernel.find_process ctx.kernel s.Process.step_process with
      | None ->
        error ctx ~code:"GA021" ~element
          (Printf.sprintf "sub-process %s is not defined"
             s.Process.step_process)
      | Some sub ->
        (* every argument of the sub-process must be bound *)
        List.iter
          (fun (a : Process.arg_spec) ->
            if not (List.mem_assoc a.Process.arg_name s.Process.step_inputs)
            then
              error ctx ~code:"GA024" ~element
                (Printf.sprintf "argument %s of %s is not bound"
                   a.Process.arg_name sub.Process.proc_name))
          sub.Process.args;
        List.iter
          (fun (an, input) ->
            match Process.arg sub an with
            | None ->
              error ctx ~code:"GA024" ~element
                (Printf.sprintf "%s has no argument %s"
                   sub.Process.proc_name an)
            | Some sa -> (
              let source =
                match input with
                | Process.From_arg a -> (
                  match Process.arg p a with
                  | None ->
                    error ctx ~code:"GA024" ~element
                      (Printf.sprintf
                         "binding of %s references unknown compound \
                          argument %s"
                         an a);
                    None
                  | Some ca ->
                    Some
                      ( ca.Process.arg_class,
                        Some (ca.Process.card_min, ca.Process.card_max) ))
                | Process.From_step j ->
                  if j < 0 || j >= i then begin
                    error ctx ~code:"GA024" ~element
                      (Printf.sprintf
                         "binding of %s references step %d (must be an \
                          earlier step)"
                         an (j + 1));
                    None
                  end
                  else
                    (* the producing step's output count is a run-time
                       quantity; only the class is checked *)
                    Option.map
                      (fun (q : Process.t) -> (q.Process.output_class, None))
                      (Kernel.find_process ctx.kernel
                         (List.nth steps j).Process.step_process)
              in
              match source with
              | None -> ()
              | Some (cls, card) ->
                (if cls <> sa.Process.arg_class then
                   let related =
                     classes_related ctx.kernel cls sa.Process.arg_class
                   in
                   let msg =
                     Printf.sprintf
                       "argument %s of %s expects class %s, gets %s%s" an
                       sub.Process.proc_name sa.Process.arg_class cls
                       (if related then
                          " (related through the concept hierarchy)"
                        else "")
                   in
                   if related then warning ctx ~code:"GA022" ~element msg
                   else error ctx ~code:"GA022" ~element msg);
                (match card with
                 | None -> ()
                 | Some (cmin, cmax) ->
                   let disjoint =
                     (match sa.Process.card_max with
                      | Some m -> cmin > m
                      | None -> false)
                     ||
                     (match cmax with
                      | Some m -> m < sa.Process.card_min
                      | None -> false)
                   in
                   if disjoint then
                     error ctx ~code:"GA025" ~element
                       (Printf.sprintf
                          "argument %s of %s wants %s objects but the \
                           compound argument supplies %s"
                          an sub.Process.proc_name
                          (match sa.Process.card_max with
                           | Some m ->
                             Printf.sprintf "%d..%d" sa.Process.card_min m
                           | None ->
                             Printf.sprintf ">= %d" sa.Process.card_min)
                          (match cmax with
                           | Some m -> Printf.sprintf "%d..%d" cmin m
                           | None -> Printf.sprintf ">= %d" cmin)))))
          s.Process.step_inputs;
        (* dead step: output neither consumed later nor the final one *)
        if i < n - 1 then begin
          let consumed =
            List.exists
              (fun (s' : Process.step) ->
                List.exists
                  (fun (_, inp) -> inp = Process.From_step i)
                  s'.Process.step_inputs)
              steps
          in
          if not consumed then
            warning ctx ~code:"GA023" ~element
              (Printf.sprintf
                 "output of step %d is never consumed and is not the \
                  final output"
                 (i + 1))
        end;
        (* the last step delivers the compound's output *)
        if i = n - 1 && sub.Process.output_class <> p.Process.output_class
        then begin
          let related =
            classes_related ctx.kernel sub.Process.output_class
              p.Process.output_class
          in
          let msg =
            Printf.sprintf
              "final step produces class %s, the compound is declared to \
               output %s%s"
              sub.Process.output_class p.Process.output_class
              (if related then " (related through the concept hierarchy)"
               else "")
          in
          if related then warning ctx ~code:"GA026" ~element msg
          else error ctx ~code:"GA026" ~element msg
        end)
    steps

(* ------------------------------------------------------------------ *)
(* check_process                                                       *)
(* ------------------------------------------------------------------ *)

let check_process kernel (p : Process.t) =
  let ctx = { kernel; proc = p; acc = [] } in
  (* class resolution first: later passes skip what GA013 covers *)
  List.iter
    (fun cls ->
      if Kernel.find_class kernel cls = None then
        error ctx ~code:"GA013" ~element:("class " ^ cls)
          (Printf.sprintf "class %s is not defined" cls))
    (List.sort_uniq compare
       (p.Process.output_class
       :: List.map (fun a -> a.Process.arg_class) p.Process.args));
  (match Process.template p with
   | Some tmpl ->
     check_template ctx tmpl;
     check_cardinalities ctx tmpl
   | None -> check_compound ctx);
  Diagnostic.sort ctx.acc

(* ------------------------------------------------------------------ *)
(* Kernel-wide passes                                                  *)
(* ------------------------------------------------------------------ *)

let kernel_diag ~code ~severity ?proc ?version ?element message =
  Diagnostic.make ~code ~severity ?proc ?version ?element message

let check_classes k =
  List.filter_map
    (fun (sch : Schema.t) ->
      match Schema.derived_by sch with
      | Some proc when Kernel.find_process k proc = None ->
        Some
          (kernel_diag ~code:"GA032" ~severity:Diagnostic.Warning
             ~element:("class " ^ sch.Schema.c_name)
             (Printf.sprintf "class %s is DERIVED BY unknown process %s"
                sch.Schema.c_name proc))
      | _ -> None)
    (Kernel.classes k)

let superseded k name version =
  match Kernel.latest_process_version k name with
  | Some latest when latest > version -> Some latest
  | _ -> None

let check_versions k =
  let task_lints =
    List.filter_map
      (fun (t : Task.t) ->
        match superseded k t.Task.process t.Task.process_version with
        | Some latest ->
          Some
            (kernel_diag ~code:"GA030" ~severity:Diagnostic.Warning
               ~proc:t.Task.process ~version:t.Task.process_version
               ~element:(Printf.sprintf "task %d" t.Task.task_id)
               (Printf.sprintf
                  "task %d ran %s v%d, superseded by v%d — derived data \
                   may be stale"
                  t.Task.task_id t.Task.process t.Task.process_version
                  latest))
        | None -> None)
      (Kernel.tasks k)
  in
  (* live derived objects whose provenance points at an old version *)
  let object_lints =
    List.concat_map
      (fun (sch : Schema.t) ->
        if not (Schema.is_derived sch) then []
        else
          List.filter_map
            (fun oid ->
              match Kernel.task_producing k oid with
              | None -> None
              | Some t -> (
                match superseded k t.Task.process t.Task.process_version with
                | Some latest ->
                  Some
                    (kernel_diag ~code:"GA031" ~severity:Diagnostic.Warning
                       ~proc:t.Task.process ~version:t.Task.process_version
                       ~element:
                         (Printf.sprintf "object %d of class %s" oid
                            sch.Schema.c_name)
                       (Printf.sprintf
                          "object %d was derived by %s v%d, superseded by \
                           v%d"
                          oid t.Task.process t.Task.process_version latest))
                | None -> None))
            (Kernel.objects_of_class k sch.Schema.c_name))
      (Kernel.classes k)
  in
  task_lints @ object_lints

let check_net k =
  let view = Kernel.derivation_net k in
  let marking = Kernel.current_marking k in
  let report = Gaea_petri.Analysis.analyze view.Kernel.net marking in
  let dead =
    List.filter_map
      (fun tr ->
        match view.Kernel.process_of_transition tr with
        | None -> None
        | Some (name, version) ->
          Some
            (kernel_diag ~code:"GA027" ~severity:Diagnostic.Info ~proc:name
               ~version
               (Printf.sprintf
                  "no firing sequence from the current data can run %s v%d"
                  name version)))
      report.Gaea_petri.Analysis.dead_transitions
  in
  let underivable =
    List.filter_map
      (fun place ->
        match view.Kernel.class_of_place place with
        | None -> None
        | Some cls -> (
          match Kernel.find_class k cls with
          | Some sch when Schema.is_derived sch ->
            Some
              (kernel_diag ~code:"GA028" ~severity:Diagnostic.Info
                 ~element:("class " ^ cls)
                 (Printf.sprintf
                    "derived class %s cannot be reached from the current \
                     data"
                    cls))
          | _ -> None))
      report.Gaea_petri.Analysis.underivable_places
  in
  dead @ underivable

(* GA033 shares the refresh subsystem's staleness definition verbatim:
   whatever [Kernel.stale_objects] reports is what REFRESH would
   recompute — the analyzer never re-derives its own notion. *)
let check_stale k =
  List.map
    (fun oid ->
      let cls = Option.value ~default:"?" (Kernel.class_of_object k oid) in
      match Kernel.task_producing k oid with
      | Some (t : Task.t) ->
        kernel_diag ~code:"GA033" ~severity:Diagnostic.Info
          ~proc:t.Task.process ~version:t.Task.process_version
          ~element:(Printf.sprintf "object %d of class %s" oid cls)
          (Printf.sprintf
             "object %d is stale: inputs of task %d changed since %s v%d ran \
              — REFRESH %s %d to recompute"
             oid t.Task.task_id t.Task.process t.Task.process_version cls oid)
      | None ->
        kernel_diag ~code:"GA033" ~severity:Diagnostic.Info
          ~element:(Printf.sprintf "object %d of class %s" oid cls)
          (Printf.sprintf "object %d is stale w.r.t. its recorded inputs" oid))
    (Kernel.stale_objects k)

let check_kernel k =
  let per_process =
    List.concat_map (fun p -> check_process k p) (Kernel.processes k)
  in
  Diagnostic.sort
    (per_process @ check_classes k @ check_versions k @ check_net k
     @ check_stale k)
