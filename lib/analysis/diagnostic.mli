(** Analyzer diagnostics: stable codes, severities, locations.

    Every finding of {!Analysis} is a [Diagnostic.t] carrying a stable
    code ([GA001]...), a severity, and enough location to point the
    user at the offending process / version / template element.  The
    same list renders human-readably ({!render}) and as JSON
    ({!render_json}) for tooling. *)

type severity = Error | Warning | Info

type t = private {
  code : string;  (** stable, e.g. ["GA001"] *)
  severity : severity;
  proc : string option;  (** process name, when process-scoped *)
  version : int option;
  element : string option;
      (** template element / step / class attribute the finding is
          anchored to, e.g. ["MAP C20.data"] or ["step 1 (classify)"] *)
  message : string;
}

val make :
  code:string ->
  severity:severity ->
  ?proc:string ->
  ?version:int ->
  ?element:string ->
  string ->
  t

val severity_to_string : severity -> string
val compare : t -> t -> int
(** Errors first, then warnings, then infos; ties broken by code, then
    process name, then element — a stable presentation order. *)

val sort : t list -> t list

val has_errors : t list -> bool
(** True when any diagnostic has [Error] severity — the lint exit
    condition. *)

val count : severity -> t list -> int

val to_string : t -> string
(** One line: [error[GA001] process p v1 (MAP C20.data): message]. *)

val to_json : t -> string
(** One JSON object with [code], [severity], [process], [version],
    [element], [message] fields (absent location fields are [null]). *)

val render : t list -> string
(** All diagnostics, one per line, followed by a summary line. *)

val render_json : t list -> string
(** A JSON array of {!to_json} objects. *)

val pp : Format.formatter -> t -> unit
