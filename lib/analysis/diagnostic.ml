type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  proc : string option;
  version : int option;
  element : string option;
  message : string;
}

let make ~code ~severity ?proc ?version ?element message =
  { code; severity; proc; version; element; message }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> (
      match Stdlib.compare a.proc b.proc with
      | 0 -> Stdlib.compare a.element b.element
      | c -> c)
    | c -> c)
  | c -> c

let sort ds = List.stable_sort compare ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let location d =
  match d.proc with
  | None -> ""
  | Some p ->
    let v =
      match d.version with None -> "" | Some v -> Printf.sprintf " v%d" v
    in
    let e =
      match d.element with None -> "" | Some e -> Printf.sprintf " (%s)" e
    in
    Printf.sprintf " process %s%s%s" p v e

let to_string d =
  Printf.sprintf "%s[%s]%s: %s"
    (severity_to_string d.severity)
    d.code (location d) d.message

(* Minimal JSON string escaping: quotes, backslashes, control chars. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let json_opt_string = function
  | None -> "null"
  | Some s -> json_string s

let to_json d =
  Printf.sprintf
    "{\"code\":%s,\"severity\":%s,\"process\":%s,\"version\":%s,\"element\":%s,\"message\":%s}"
    (json_string d.code)
    (json_string (severity_to_string d.severity))
    (json_opt_string d.proc)
    (match d.version with None -> "null" | Some v -> string_of_int v)
    (json_opt_string d.element)
    (json_string d.message)

let render ds =
  let lines = List.map to_string ds in
  let summary =
    Printf.sprintf "%d error(s), %d warning(s), %d info(s)" (count Error ds)
      (count Warning ds) (count Info ds)
  in
  String.concat "\n" (lines @ [ summary ])

let render_json ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json ds))

let pp fmt d = Format.pp_print_string fmt (to_string d)
