module R = Gaea_raster
module G = Gaea_geo

type class_info = {
  cname : string;
  repr : Vtype.t;
  cdoc : string;
}

type t = {
  classes : (string, class_info) Hashtbl.t;
  operators : (string, Operator.t) Hashtbl.t;
  compounds : (string, Dataflow.t) Hashtbl.t;
}

let create () =
  { classes = Hashtbl.create 32;
    operators = Hashtbl.create 128;
    compounds = Hashtbl.create 8 }

let register_class t ~name ~repr ?(doc = "") () =
  if Hashtbl.mem t.classes name then
    Error (Printf.sprintf "class %s already registered" name)
  else begin
    Hashtbl.add t.classes name { cname = name; repr; cdoc = doc };
    Ok ()
  end

let register_operator t op =
  let name = Operator.name op in
  if Hashtbl.mem t.operators name then
    Error (Printf.sprintf "operator %s already registered" name)
  else begin
    Hashtbl.add t.operators name op;
    Ok ()
  end

let find_operator t name = Hashtbl.find_opt t.operators name
let find_class t name = Hashtbl.find_opt t.classes name
let find_compound t name = Hashtbl.find_opt t.compounds name

let register_compound t network =
  let op = Dataflow.to_operator ~lookup:(find_operator t) network in
  match register_operator t op with
  | Error _ as e -> e
  | Ok () ->
    Hashtbl.add t.compounds network.Dataflow.name network;
    Ok ()

let apply t name args =
  match find_operator t name with
  | None -> Error (Printf.sprintf "unknown operator %s" name)
  | Some op -> Operator.apply op args

let mentions_type vt op =
  let s = Operator.signature op in
  let matches p = Vtype.equal (Vtype.base p) (Vtype.base vt) in
  List.exists matches s.Operator.params
  || (match s.Operator.variadic with Some v -> matches v | None -> false)

let operators_for_type t vt =
  Hashtbl.fold
    (fun _ op acc -> if mentions_type vt op then op :: acc else acc)
    t.operators []
  |> List.sort (fun a b -> compare (Operator.name a) (Operator.name b))

let classes_with_operator t opname =
  match find_operator t opname with
  | None -> []
  | Some op ->
    Hashtbl.fold
      (fun _ ci acc -> if mentions_type ci.repr op then ci :: acc else acc)
      t.classes []
    |> List.sort (fun a b -> compare a.cname b.cname)

let all_operators t =
  Hashtbl.fold (fun _ op acc -> op :: acc) t.operators []
  |> List.sort (fun a b -> compare (Operator.name a) (Operator.name b))

let all_classes t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.classes []
  |> List.sort (fun a b -> compare a.cname b.cname)

let operator_count t = Hashtbl.length t.operators

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let ok_int i = Ok (Value.int i)
let ok_float f = Ok (Value.float f)
let ok_bool b = Ok (Value.bool b)
let ok_img i = Ok (Value.image i)

open Vtype

let op = Operator.make

(* --- image class operators (paper Section 2.1.3) ------------------- *)

let image_operators =
  [ Operator.lift1 ~name:"img_nrow" ~doc:"number of rows of an image" Image
      Int (fun v ->
        let* i = Value.to_image v in
        ok_int (R.Image.img_nrow i));
    Operator.lift1 ~name:"img_ncol" ~doc:"number of columns of an image"
      Image Int (fun v ->
        let* i = Value.to_image v in
        ok_int (R.Image.img_ncol i));
    Operator.lift1 ~name:"img_type" ~doc:"pixel data type of an image" Image
      String (fun v ->
        let* i = Value.to_image v in
        Ok (Value.string (R.Pixel.to_string (R.Image.img_type i))));
    Operator.lift1 ~name:"img_filepath"
      ~doc:"label of an image (role of the paper's file path)" Image String
      (fun v ->
        let* i = Value.to_image v in
        Ok (Value.string (R.Image.img_label i)));
    Operator.lift2 ~name:"img_size_eq" ~doc:"check if two image sizes are equal"
      Image Image Bool (fun a b ->
        let* x = Value.to_image a in
        let* y = Value.to_image b in
        ok_bool (R.Image.img_size_eq x y));
    Operator.lift1 ~name:"img_mean" ~doc:"mean pixel value" Image Float
      (fun v ->
        let* i = Value.to_image v in
        ok_float (R.Imgstats.mean i));
    Operator.lift1 ~name:"img_stddev" ~doc:"pixel standard deviation" Image
      Float (fun v ->
        let* i = Value.to_image v in
        ok_float (R.Imgstats.stddev i));
    Operator.lift1 ~name:"img_min" ~doc:"minimum pixel value" Image Float
      (fun v ->
        let* i = Value.to_image v in
        ok_float (fst (R.Image.min_max i)));
    Operator.lift1 ~name:"img_max" ~doc:"maximum pixel value" Image Float
      (fun v ->
        let* i = Value.to_image v in
        ok_float (snd (R.Image.min_max i)));
    Operator.lift2 ~name:"img_agreement"
      ~doc:"fraction of pixels with equal values in two label images" Image
      Image Float (fun a b ->
        let* x = Value.to_image a in
        let* y = Value.to_image b in
        ok_float (R.Imgstats.agreement x y));
    Operator.lift2 ~name:"img_rmse" ~doc:"root mean square difference" Image
      Image Float (fun a b ->
        let* x = Value.to_image a in
        let* y = Value.to_image b in
        ok_float (R.Imgstats.rmse x y)) ]

(* --- composite operators ------------------------------------------ *)

let composite_operators =
  [ op ~name:"composite"
      ~doc:"stack image bands into a multi-band composite (Fig 3)"
      ~params:[] ~variadic:Image ~returns:Composite (fun args ->
        let* imgs =
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              let* i = Value.to_image v in
              Ok (i :: acc))
            (Ok []) args
        in
        match List.rev imgs with
        | [] -> Error "composite: no bands"
        | bands -> Ok (Value.composite (R.Composite.of_bands bands)));
    op ~name:"composite_of_set"
      ~doc:"stack a SETOF image value into a composite"
      ~params:[ Setof Image ] ~returns:Composite (fun args ->
        match args with
        | [ v ] ->
          let* items = Value.to_set v in
          let* imgs =
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* i = Value.to_image v in
                Ok (i :: acc))
              (Ok []) items
          in
          (match List.rev imgs with
           | [] -> Error "composite_of_set: empty set"
           | bands -> Ok (Value.composite (R.Composite.of_bands bands)))
        | _ -> Error "composite_of_set: arity");
    Operator.lift2 ~name:"composite_band" ~doc:"extract band i of a composite"
      Composite Int Image (fun c i ->
        let* comp = Value.to_composite c in
        let* idx = Value.to_int i in
        ok_img (R.Composite.band comp idx));
    Operator.lift1 ~name:"n_bands" ~doc:"number of bands of a composite"
      Composite Int (fun v ->
        let* c = Value.to_composite v in
        ok_int (R.Composite.n_bands c));
    Operator.lift1 ~name:"comp_nrow" ~doc:"rows of a composite" Composite Int
      (fun v ->
        let* c = Value.to_composite v in
        ok_int (R.Composite.nrow c));
    Operator.lift1 ~name:"comp_ncol" ~doc:"columns of a composite" Composite
      Int (fun v ->
        let* c = Value.to_composite v in
        ok_int (R.Composite.ncol c)) ]

(* --- classification ------------------------------------------------ *)

let classification_operators =
  [ Operator.lift2 ~name:"unsuperclassify"
      ~doc:"unsupervised classification into k classes (process P20, Fig 3)"
      Composite Int Image (fun c k ->
        let* comp = Value.to_composite c in
        let* k = Value.to_int k in
        ok_img (R.Kmeans.unsuperclassify comp k).R.Kmeans.labels);
    Operator.lift2 ~name:"superclassify"
      ~doc:"supervised maximum-likelihood classification from a training \
            label image (labels < 0 mean unlabelled)"
      Composite Image Image (fun c truth ->
        let* comp = Value.to_composite c in
        let* tr = Value.to_image truth in
        let model = R.Maxlike.train comp tr in
        ok_img (R.Maxlike.classify model comp)) ]

(* --- band math / NDVI ---------------------------------------------- *)

let img2 name doc f =
  Operator.lift2 ~name ~doc Image Image Image (fun a b ->
      let* x = Value.to_image a in
      let* y = Value.to_image b in
      ok_img (f x y))

let band_math_operators =
  [ img2 "img_subtract" "pixel-wise difference a - b" (fun a b ->
        R.Band_math.subtract a b);
    img2 "img_divide" "pixel-wise ratio a / b (0 where b = 0)" (fun a b ->
        R.Band_math.divide a b);
    img2 "img_ratio" "normalized ratio (a-b)/(a+b)" (fun a b ->
        R.Band_math.ratio a b);
    img2 "img_add" "pixel-wise sum" (fun a b -> R.Band_math.add a b);
    img2 "img_multiply" "pixel-wise product" (fun a b ->
        R.Band_math.multiply a b);
    img2 "img_abs_diff" "pixel-wise absolute difference" (fun a b ->
        R.Band_math.abs_diff a b);
    Operator.lift2 ~name:"img_scale" ~doc:"multiply pixels by a scalar" Float
      Image Image (fun s v ->
        let* s = Value.to_float s in
        let* i = Value.to_image v in
        ok_img (R.Band_math.scale s i));
    Operator.lift2 ~name:"img_offset" ~doc:"add a scalar to pixels" Float
      Image Image (fun s v ->
        let* s = Value.to_float s in
        let* i = Value.to_image v in
        ok_img (R.Band_math.offset s i));
    Operator.lift2 ~name:"img_threshold"
      ~doc:"binary mask of pixels >= cutoff" Image Float Image (fun v s ->
        let* i = Value.to_image v in
        let* s = Value.to_float s in
        ok_img (R.Band_math.threshold s i));
    Operator.lift2 ~name:"img_threshold_below"
      ~doc:"binary mask of pixels < cutoff (e.g. rainfall < 250mm)" Image
      Float Image (fun v s ->
        let* i = Value.to_image v in
        let* s = Value.to_float s in
        ok_img
          (R.Image.map ~label:"threshold-below" ~ptype:R.Pixel.Char
             (fun x -> if x < s then 1. else 0.)
             i));
    Operator.lift1 ~name:"img_normalize" ~doc:"rescale pixels onto 0..1"
      Image Image (fun v ->
        let* i = Value.to_image v in
        ok_img (R.Band_math.normalize i));
    img2 "ndvi" "normalized difference vegetation index from (red, nir)"
      (fun red nir -> R.Ndvi.ndvi ~red ~nir ());
    op ~name:"img_linear_combination"
      ~doc:"weighted sum of images (Fig 4 linear-combination)"
      ~params:[ Vector ] ~variadic:Image ~returns:Image (fun args ->
        match args with
        | w :: imgs when imgs <> [] ->
          let* weights = Value.to_vector w in
          let* imgs =
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* i = Value.to_image v in
                Ok (i :: acc))
              (Ok []) imgs
          in
          ok_img (R.Band_math.linear_combination weights (List.rev imgs))
        | _ -> Error "img_linear_combination: needs weights and images") ]

(* --- interpolation -------------------------------------------------- *)

let interpolation_operators =
  [ op ~name:"temporal_interpolate"
      ~doc:"linear interpolation between (img1,t1) and (img2,t2) at time t"
      ~params:[ Image; Abstime; Image; Abstime; Abstime ] ~returns:Image
      (fun args ->
        match args with
        | [ i1; t1; i2; t2; at ] ->
          let* img1 = Value.to_image i1 in
          let* time1 = Value.to_abstime t1 in
          let* img2 = Value.to_image i2 in
          let* time2 = Value.to_abstime t2 in
          let* at = Value.to_abstime at in
          ok_img (R.Interpolate.temporal_linear ~at (time1, img1) (time2, img2))
        | _ -> Error "temporal_interpolate: arity");
    op ~name:"resize_nearest" ~doc:"nearest-neighbour spatial resampling"
      ~params:[ Image; Int; Int ] ~returns:Image (fun args ->
        match args with
        | [ i; r; c ] ->
          let* img = Value.to_image i in
          let* nrow = Value.to_int r in
          let* ncol = Value.to_int c in
          ok_img (R.Interpolate.resize_nearest img ~nrow ~ncol)
        | _ -> Error "resize_nearest: arity");
    op ~name:"resize_bilinear" ~doc:"bilinear spatial resampling"
      ~params:[ Image; Int; Int ] ~returns:Image (fun args ->
        match args with
        | [ i; r; c ] ->
          let* img = Value.to_image i in
          let* nrow = Value.to_int r in
          let* ncol = Value.to_int c in
          ok_img (R.Interpolate.resize_bilinear img ~nrow ~ncol)
        | _ -> Error "resize_bilinear: arity");
    Operator.lift1 ~name:"fill_missing"
      ~doc:"fill NaN holes from neighbouring pixels" Image Image (fun v ->
        let* i = Value.to_image v in
        ok_img (R.Interpolate.fill_missing i)) ]

(* --- matrix / PCA stages (Fig 4) ------------------------------------ *)

let matrix_operators =
  [ Operator.lift1 ~name:"convert_image_matrix"
      ~doc:"pixels-by-bands observation matrix of a composite (Fig 4)"
      Composite Matrix (fun v ->
        let* c = Value.to_composite v in
        Ok (Value.matrix (R.Pca.convert_image_matrix c)));
    Operator.lift1 ~name:"center_columns" ~doc:"subtract column means" Matrix
      Matrix (fun v ->
        let* m = Value.to_matrix v in
        Ok (Value.matrix (fst (R.Matrix.center_columns m))));
    Operator.lift1 ~name:"standardize_columns"
      ~doc:"center and scale columns to unit variance" Matrix Matrix
      (fun v ->
        let* m = Value.to_matrix v in
        let centered, _ = R.Matrix.center_columns m in
        let cov = R.Matrix.covariance m in
        let n = R.Matrix.cols m in
        let sd = Array.init n (fun i -> sqrt (R.Matrix.get cov i i)) in
        Ok
          (Value.matrix
             (R.Matrix.init ~rows:(R.Matrix.rows m) ~cols:n (fun i j ->
                  if sd.(j) = 0. then 0.
                  else R.Matrix.get centered i j /. sd.(j)))));
    Operator.lift1 ~name:"compute_covariance"
      ~doc:"covariance of matrix columns (Fig 4)" Matrix Matrix (fun v ->
        let* m = Value.to_matrix v in
        Ok (Value.matrix (R.Pca.compute_covariance m)));
    Operator.lift1 ~name:"compute_correlation"
      ~doc:"correlation of matrix columns (SPCA variant)" Matrix Matrix
      (fun v ->
        let* m = Value.to_matrix v in
        Ok (Value.matrix (R.Pca.compute_correlation m)));
    Operator.lift1 ~name:"get_eigen_vector"
      ~doc:"eigenvectors of a symmetric matrix, columns sorted by \
            descending eigenvalue (Fig 4)"
      Matrix Matrix (fun v ->
        let* m = Value.to_matrix v in
        Ok (Value.matrix (R.Pca.get_eigen_vector m).R.Eigen.vectors));
    Operator.lift1 ~name:"get_eigen_values"
      ~doc:"eigenvalues of a symmetric matrix, descending" Matrix Vector
      (fun v ->
        let* m = Value.to_matrix v in
        Ok (Value.vector (R.Pca.get_eigen_vector m).R.Eigen.values));
    Operator.lift2 ~name:"take_columns" ~doc:"first k columns of a matrix"
      Matrix Int Matrix (fun v k ->
        let* m = Value.to_matrix v in
        let* k = Value.to_int k in
        if k < 1 || k > R.Matrix.cols m then
          Error (Printf.sprintf "take_columns: k=%d outside 1..%d" k (R.Matrix.cols m))
        else
          Ok
            (Value.matrix
               (R.Matrix.init ~rows:(R.Matrix.rows m) ~cols:k (fun i j ->
                    R.Matrix.get m i j))));
    Operator.lift2 ~name:"matrix_mul" ~doc:"matrix product" Matrix Matrix
      Matrix (fun a b ->
        let* x = Value.to_matrix a in
        let* y = Value.to_matrix b in
        Ok (Value.matrix (R.Matrix.mul x y)));
    op ~name:"convert_matrix_image"
      ~doc:"rebuild band images from a pixels-by-bands matrix (Fig 4)"
      ~params:[ Matrix; Int; Int ] ~returns:Composite (fun args ->
        match args with
        | [ m; r; c ] ->
          let* m = Value.to_matrix m in
          let* nrow = Value.to_int r in
          let* ncol = Value.to_int c in
          Ok (Value.composite (R.Pca.convert_matrix_image ~nrow ~ncol m))
        | _ -> Error "convert_matrix_image: arity");
    Operator.lift2 ~name:"pca_native"
      ~doc:"principal components (native implementation, for ablation \
            against the compound-operator network)"
      Composite Int Composite (fun c k ->
        let* comp = Value.to_composite c in
        let* k = Value.to_int k in
        Ok (Value.composite (R.Pca.pca ~components:k comp).R.Pca.components));
    Operator.lift2 ~name:"spca_native"
      ~doc:"standardized principal components (native implementation)"
      Composite Int Composite (fun c k ->
        let* comp = Value.to_composite c in
        let* k = Value.to_int k in
        Ok (Value.composite (R.Pca.spca ~components:k comp).R.Pca.components)) ]

(* --- spatial / temporal extents ------------------------------------- *)

let extent_operators =
  [ Operator.lift1 ~name:"box_area" ~doc:"area of a bounding box" Box Float
      (fun v ->
        let* b = Value.to_box v in
        ok_float (G.Box.area b));
    Operator.lift2 ~name:"box_overlaps" ~doc:"do two boxes overlap" Box Box
      Bool (fun a b ->
        let* x = Value.to_box a in
        let* y = Value.to_box b in
        ok_bool (G.Box.overlaps x y));
    Operator.lift2 ~name:"box_contains" ~doc:"does the first box contain the second"
      Box Box Bool (fun a b ->
        let* x = Value.to_box a in
        let* y = Value.to_box b in
        ok_bool (G.Box.contains ~outer:x ~inner:y));
    Operator.lift2 ~name:"box_hull" ~doc:"smallest box covering both" Box Box
      Box (fun a b ->
        let* x = Value.to_box a in
        let* y = Value.to_box b in
        Ok (Value.box (G.Box.hull x y)));
    Operator.lift2 ~name:"box_intersection" ~doc:"intersection of two boxes"
      Box Box Box (fun a b ->
        let* x = Value.to_box a in
        let* y = Value.to_box b in
        match G.Box.intersection x y with
        | Some i -> Ok (Value.box i)
        | None -> Error "box_intersection: boxes do not overlap");
    Operator.lift2 ~name:"time_add_days" ~doc:"shift a timestamp by days"
      Abstime Int Abstime (fun t d ->
        let* time = Value.to_abstime t in
        let* days = Value.to_int d in
        Ok (Value.abstime (G.Abstime.add_days time days)));
    Operator.lift2 ~name:"time_diff_days"
      ~doc:"difference between timestamps in days" Abstime Abstime Float
      (fun a b ->
        let* x = Value.to_abstime a in
        let* y = Value.to_abstime b in
        ok_float (G.Abstime.diff_days x y));
    Operator.lift2 ~name:"interval_make" ~doc:"closed interval from two timestamps"
      Abstime Abstime Interval (fun a b ->
        let* s = Value.to_abstime a in
        let* e = Value.to_abstime b in
        Ok (Value.interval (G.Interval.make s e)));
    Operator.lift2 ~name:"interval_overlaps" ~doc:"do two intervals overlap"
      Interval Interval Bool (fun a b ->
        let* x = Value.to_interval a in
        let* y = Value.to_interval b in
        ok_bool (G.Interval.overlaps x y));
    Operator.lift2 ~name:"interval_contains"
      ~doc:"does the interval contain the timestamp" Interval Abstime Bool
      (fun i t ->
        let* iv = Value.to_interval i in
        let* time = Value.to_abstime t in
        ok_bool (G.Interval.contains iv time));
    Operator.lift2 ~name:"allen_relation"
      ~doc:"Allen's relation between two proper intervals" Interval Interval
      String (fun a b ->
        let* x = Value.to_interval a in
        let* y = Value.to_interval b in
        Ok (Value.string (G.Allen.to_string (G.Allen.relate x y)))) ]

(* --- template / set operators (ASSERTIONS of Fig 3) ------------------ *)

let template_operators =
  [ op ~name:"anyof"
      ~doc:"an arbitrary (first) element of a set — ANYOF of Fig 3"
      ~params:[ Setof Any ] ~returns:Any (fun args ->
        match args with
        | [ v ] ->
          let* items = Value.to_set v in
          (match items with
           | x :: _ -> Ok x
           | [] -> Error "anyof: empty set")
        | _ -> Error "anyof: arity");
    op ~name:"card" ~doc:"cardinality of a set — card of Fig 3"
      ~params:[ Setof Any ] ~returns:Int (fun args ->
        match args with
        | [ v ] ->
          let* items = Value.to_set v in
          ok_int (List.length items)
        | _ -> Error "card: arity");
    op ~name:"common_boxes"
      ~doc:"spatial extents of a set are the same or overlap (Fig 3 \
            common rule)"
      ~params:[ Setof Box ] ~returns:Bool (fun args ->
        match args with
        | [ v ] ->
          let* items = Value.to_set v in
          let* boxes =
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* b = Value.to_box v in
                Ok (b :: acc))
              (Ok []) items
          in
          ok_bool (G.Extent.common_space G.Extent.Overlap boxes)
        | _ -> Error "common_boxes: arity");
    op ~name:"common_times"
      ~doc:"timestamps of a set agree (within a day) — common rule on \
            temporal extents"
      ~params:[ Setof Abstime ] ~returns:Bool (fun args ->
        match args with
        | [ v ] ->
          let* items = Value.to_set v in
          let* times =
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* t = Value.to_abstime v in
                Ok (t :: acc))
              (Ok []) items
          in
          let close a b = Float.abs (G.Abstime.diff_days a b) <= 1.0 in
          let rec pairwise = function
            | [] | [ _ ] -> true
            | x :: rest -> List.for_all (close x) rest && pairwise rest
          in
          ok_bool (pairwise times)
        | _ -> Error "common_times: arity");
    op ~name:"common_intervals"
      ~doc:"temporal intervals of a set pairwise overlap"
      ~params:[ Setof Interval ] ~returns:Bool (fun args ->
        match args with
        | [ v ] ->
          let* items = Value.to_set v in
          let* intervals =
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* i = Value.to_interval v in
                Ok (i :: acc))
              (Ok []) items
          in
          ok_bool (G.Extent.common_time G.Extent.Overlap intervals)
        | _ -> Error "common_intervals: arity") ]

(* --- scalar arithmetic / comparison --------------------------------- *)

let scalar_operators =
  let f2 name doc fn =
    Operator.lift2 ~name ~doc Float Float Float (fun a b ->
        let* x = Value.to_float a in
        let* y = Value.to_float b in
        ok_float (fn x y))
  in
  let cmp name doc fn =
    Operator.lift2 ~name ~doc Float Float Bool (fun a b ->
        let* x = Value.to_float a in
        let* y = Value.to_float b in
        ok_bool (fn x y))
  in
  [ f2 "fadd" "float addition" ( +. );
    f2 "fsub" "float subtraction" ( -. );
    f2 "fmul" "float multiplication" ( *. );
    f2 "fdiv" "float division (error on 0)" (fun x y ->
        if y = 0. then invalid_arg "division by zero" else x /. y);
    f2 "fmin" "minimum" Float.min;
    f2 "fmax" "maximum" Float.max;
    cmp "lt" "strictly less" ( < );
    cmp "le" "less or equal" ( <= );
    cmp "gt" "strictly greater" ( > );
    cmp "ge" "greater or equal" ( >= );
    Operator.lift2 ~name:"eq" ~doc:"structural equality of any two values"
      Any Any Bool (fun a b -> ok_bool (Value.equal a b));
    Operator.lift2 ~name:"and" ~doc:"logical and" Bool Bool Bool (fun a b ->
        let* x = Value.to_bool a in
        let* y = Value.to_bool b in
        ok_bool (x && y));
    Operator.lift2 ~name:"or" ~doc:"logical or" Bool Bool Bool (fun a b ->
        let* x = Value.to_bool a in
        let* y = Value.to_bool b in
        ok_bool (x || y));
    Operator.lift1 ~name:"not" ~doc:"logical negation" Bool Bool (fun v ->
        let* b = Value.to_bool v in
        ok_bool (not b)) ]

(* --- synthetic data generators (the DESIGN.md substitution for real
   satellite feeds; exposed as operators so query scripts can ingest
   reproducible test scenes) ----------------------------------------- *)

let synthetic_operators =
  let int3 name doc f =
    op ~name ~doc ~params:[ Int; Int; Int ] ~returns:Image (fun args ->
        match args with
        | [ a; b; c ] ->
          let* seed = Value.to_int a in
          let* nrow = Value.to_int b in
          let* ncol = Value.to_int c in
          ok_img (f ~seed ~nrow ~ncol)
        | _ -> Error (name ^ ": arity"))
  in
  [ int3 "synth_band" "seeded spatially-correlated image band (seed, nrow, ncol)"
      (fun ~seed ~nrow ~ncol ->
        R.Synthetic.value_noise ~seed ~nrow ~ncol ()
        |> R.Band_math.scale 255.);
    int3 "synth_rainfall" "seeded rainfall map in mm (seed, nrow, ncol)"
      (fun ~seed ~nrow ~ncol -> R.Synthetic.rainfall_map ~seed ~nrow ~ncol ());
    op ~name:"synth_truth"
      ~doc:"seeded land-cover truth labels (seed, nrow, ncol, classes)"
      ~params:[ Int; Int; Int; Int ] ~returns:Image (fun args ->
        match args with
        | [ a; b; c; d ] ->
          let* seed = Value.to_int a in
          let* nrow = Value.to_int b in
          let* ncol = Value.to_int c in
          let* classes = Value.to_int d in
          ok_img (R.Synthetic.landcover_truth ~seed ~nrow ~ncol ~classes)
        | _ -> Error "synth_truth: arity");
    op ~name:"make_abstime" ~doc:"timestamp from (year, month, day)"
      ~params:[ Int; Int; Int ] ~returns:Abstime (fun args ->
        match args with
        | [ y; m; d ] ->
          let* y = Value.to_int y in
          let* m = Value.to_int m in
          let* d = Value.to_int d in
          Ok (Value.abstime (G.Abstime.of_ymd y m d))
        | _ -> Error "make_abstime: arity");
    op ~name:"make_box" ~doc:"bounding box from (xmin, ymin, xmax, ymax)"
      ~params:[ Float; Float; Float; Float ] ~returns:Box (fun args ->
        match args with
        | [ a; b; c; d ] ->
          let* xmin = Value.to_float a in
          let* ymin = Value.to_float b in
          let* xmax = Value.to_float c in
          let* ymax = Value.to_float d in
          Ok (Value.box (G.Box.make ~xmin ~ymin ~xmax ~ymax))
        | _ -> Error "make_box: arity") ]

(* --- the pca / spca compound networks (Fig 4) ----------------------- *)

let pca_network ~standardized =
  let open Dataflow in
  let prep = if standardized then "standardize_columns" else "center_columns" in
  let sym = if standardized then "compute_correlation" else "compute_covariance" in
  let name = if standardized then "spca" else "pca" in
  let nodes =
    [ node 1 "convert_image_matrix" [ From_input 0 ];
      node 2 prep [ From_node 1 ];
      node 3 sym [ From_node 1 ];
      node 4 "get_eigen_vector" [ From_node 3 ];
      node 5 "take_columns" [ From_node 4; From_input 1 ];
      node 6 "matrix_mul" [ From_node 2; From_node 5 ];
      node 7 "comp_nrow" [ From_input 0 ];
      node 8 "comp_ncol" [ From_input 0 ];
      node 9 "convert_matrix_image" [ From_node 6; From_node 7; From_node 8 ] ]
  in
  match
    make ~name
      ~doc:
        (if standardized then
           "standardized principal component analysis (Eastman 1992) as a \
            compound-operator dataflow network"
         else "principal component analysis as the Fig 4 dataflow network")
      ~input_types:[ Composite; Int ] ~returns:Composite ~nodes
      (From_node 9)
  with
  | Ok n -> n
  | Error e -> failwith ("pca_network: " ^ e)

let builtin_classes =
  [ ("int", Int, "integers");
    ("float", Float, "floating point numbers");
    ("string", String, "character strings (char16 of the paper)");
    ("bool", Bool, "booleans");
    ("image", Image, "raster image (nrows, ncols, pixtype, data)");
    ("composite", Composite, "multi-band image stack");
    ("matrix", Matrix, "dense matrix");
    ("vector", Vector, "dense vector");
    ("box", Box, "2-D bounding box (spatial extent)");
    ("abstime", Abstime, "absolute time (temporal extent)");
    ("interval", Interval, "closed time interval") ]

let with_builtins () =
  let t = create () in
  List.iter
    (fun (name, repr, doc) ->
      match register_class t ~name ~repr ~doc () with
      | Ok () -> ()
      | Error e -> failwith e)
    builtin_classes;
  List.iter
    (fun op ->
      match register_operator t op with
      | Ok () -> ()
      | Error e -> failwith e)
    (image_operators @ composite_operators @ classification_operators
     @ band_math_operators @ interpolation_operators @ matrix_operators
     @ extent_operators @ template_operators @ scalar_operators
     @ synthetic_operators);
  (match register_compound t (pca_network ~standardized:false) with
   | Ok () -> ()
   | Error e -> failwith e);
  (match register_compound t (pca_network ~standardized:true) with
   | Ok () -> ()
   | Error e -> failwith e);
  t
