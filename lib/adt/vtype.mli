(** Types of the system-level semantics layer.

    Each constructor is a {e primitive class} in the paper's sense: a
    value-identified class encapsulated with operators (Section 2.1.3).
    [Setof] mirrors the [SETOF] argument constructor of process
    definitions (Fig 3: [ARGUMENT (bands SETOF C1)]). *)

type t =
  | Int
  | Float
  | String
  | Bool
  | Image
  | Composite      (** multi-band image stack *)
  | Matrix
  | Vector
  | Box            (** spatial extent *)
  | Abstime        (** absolute time *)
  | Interval       (** time interval *)
  | Setof of t
  | Any            (** wildcard, only meaningful in operator signatures *)

val equal : t -> t -> bool
val compare : t -> t -> int

val matches : expected:t -> actual:t -> bool
(** Signature matching: [Any] matches everything; [Setof a] matches
    [Setof b] when [a] matches [b]; otherwise structural equality. *)

val base : t -> t
(** Strip [Setof] wrappers. *)

val is_setof : t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val all_primitive : t list
(** The ground (non-[Setof], non-[Any]) types, for registry browsing. *)
