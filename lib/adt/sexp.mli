(** Minimal S-expressions — the textual substrate for value
    serialization and store snapshots (no external dependency). *)

type t =
  | Atom of string
  | List of t list

val atom : string -> t
val list : t list -> t

val to_string : t -> string
(** Atoms that contain whitespace, parens, quotes or are empty are
    emitted as double-quoted, escaped strings. *)

val of_string : string -> (t, string) result
(** Parses exactly one S-expression (surrounding whitespace allowed). *)

val of_string_many : string -> (t list, string) result
(** Parses a sequence of S-expressions. *)

val pp : Format.formatter -> t -> unit
