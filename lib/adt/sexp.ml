type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let list l = List l

let needs_quoting s =
  s = ""
  || String.exists
       (function
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | '\\' -> true
         | _ -> false)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec write buf = function
  | Atom s ->
    if needs_quoting s then Buffer.add_string buf (escape s)
    else Buffer.add_string buf s
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        write buf item)
      items;
    Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

exception Parse_error of string

let parse_all s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let parse_quoted () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then raise (Parse_error "unterminated string")
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          if !pos >= n then raise (Parse_error "dangling escape");
          (match s.[!pos] with
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | c -> Buffer.add_char buf c);
          advance ();
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' -> false
      | _ -> true
    do
      advance ()
    done;
    Atom (String.sub s start (!pos - start))
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | None -> raise (Parse_error "unterminated list")
        | Some ')' -> advance ()
        | Some _ ->
          items := parse_one () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> parse_quoted ()
    | Some _ -> parse_bare ()
  in
  let results = ref [] in
  skip_ws ();
  while !pos < n do
    results := parse_one () :: !results;
    skip_ws ()
  done;
  List.rev !results

let of_string_many s =
  match parse_all s with
  | exception Parse_error msg -> Error msg
  | items -> Ok items

let of_string s =
  match of_string_many s with
  | Error _ as e -> e
  | Ok [ one ] -> Ok one
  | Ok [] -> Error "empty input"
  | Ok _ -> Error "more than one S-expression"

let rec pp fmt = function
  | Atom s -> Format.pp_print_string fmt (if needs_quoting s then escape s else s)
  | List items ->
    Format.fprintf fmt "@[<hov 1>(";
    List.iteri
      (fun i item ->
        if i > 0 then Format.pp_print_space fmt ();
        pp fmt item)
      items;
    Format.fprintf fmt ")@]"
