(** Operators — the functions encapsulating primitive classes
    (paper Section 2.1.3: "functions on primitive classes are called
    operators").

    An operator is applied to a list of values; application type-checks
    the arguments against the declared signature first.  Errors are
    values ([result]), not exceptions. *)

type signature = {
  params : Vtype.t list;       (** fixed leading parameters *)
  variadic : Vtype.t option;   (** if set, any number (>=1) of trailing
                                   arguments of this type is accepted *)
  returns : Vtype.t;
}

type t = private {
  name : string;
  sig_ : signature;
  doc : string;
  impl : Value.t list -> (Value.t, string) result;
}

val make :
  name:string -> ?doc:string -> params:Vtype.t list -> ?variadic:Vtype.t
  -> returns:Vtype.t -> (Value.t list -> (Value.t, string) result) -> t

val name : t -> string
val doc : t -> string
val signature : t -> signature

val check_args : t -> Value.t list -> (unit, string) result
(** Arity and type check against the signature. *)

val apply : t -> Value.t list -> (Value.t, string) result
(** [check_args] then run the implementation; implementation exceptions
    ([Invalid_argument], [Failure]) are converted to [Error]. *)

val signature_to_string : signature -> string
val pp : Format.formatter -> t -> unit

(** {2 Lifting helpers} — wrap plain OCaml functions as operators. *)

val lift1 : name:string -> ?doc:string -> Vtype.t -> Vtype.t
  -> (Value.t -> (Value.t, string) result) -> t

val lift2 : name:string -> ?doc:string -> Vtype.t -> Vtype.t -> Vtype.t
  -> (Value.t -> Value.t -> (Value.t, string) result) -> t
