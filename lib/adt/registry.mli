(** The system-level semantics manager (paper Section 2.1.3 / 2.1.5):
    a catalog of primitive classes and the operators encapsulating
    them.

    "All the primitive classes and their operators are managed in a
    hierarchical structure.  Users can browse the hierarchy, look up
    appropriate operators for specific primitive classes, or find the
    primitive classes that have a specific operator.  Users are allowed
    to define new primitive classes and/or new operators.  This makes
    the Gaea system an extensible system." (Section 4.2) *)

type class_info = {
  cname : string;
  repr : Vtype.t;      (** run-time representation *)
  cdoc : string;
}

type t

val create : unit -> t
(** An empty registry. *)

val with_builtins : unit -> t
(** A registry pre-loaded with Gaea's built-in primitive classes and the
    full operator suite (image operators of Section 2.1.3, the Fig 4 PCA
    network stages and the [pca]/[spca] compound operators, band math,
    classification, interpolation, extent and template operators). *)

val register_class : t -> name:string -> repr:Vtype.t -> ?doc:string -> unit
  -> (unit, string) result
(** Errors on duplicate names.  User classes alias one of the built-in
    run-time representations (the paper's prototype had the same
    restriction: "non-primitive classes can only be composed of
    primitive classes as provided within POSTGRES", Section 4.3). *)

val register_operator : t -> Operator.t -> (unit, string) result
val register_compound : t -> Dataflow.t -> (unit, string) result
(** Package a dataflow network (looked up against this registry) as an
    operator and register it. *)

val find_operator : t -> string -> Operator.t option
val find_class : t -> string -> class_info option
val find_compound : t -> string -> Dataflow.t option
(** The network behind a compound operator, if it was registered via
    [register_compound]. *)

val apply : t -> string -> Value.t list -> (Value.t, string) result
(** Look up and apply an operator by name. *)

val operators_for_type : t -> Vtype.t -> Operator.t list
(** Operators accepting the type (directly or as [Setof]) among their
    parameters — the "look up appropriate operators" browse. *)

val classes_with_operator : t -> string -> class_info list
(** Classes whose representation the named operator accepts. *)

val all_operators : t -> Operator.t list
(** Sorted by name. *)

val all_classes : t -> class_info list
val operator_count : t -> int
