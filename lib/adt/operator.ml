type signature = {
  params : Vtype.t list;
  variadic : Vtype.t option;
  returns : Vtype.t;
}

type t = {
  name : string;
  sig_ : signature;
  doc : string;
  impl : Value.t list -> (Value.t, string) result;
}

let make ~name ?(doc = "") ~params ?variadic ~returns impl =
  { name; sig_ = { params; variadic; returns }; doc; impl }

let name t = t.name
let doc t = t.doc
let signature t = t.sig_

let signature_to_string s =
  let fixed = List.map Vtype.to_string s.params in
  let args =
    match s.variadic with
    | None -> fixed
    | Some v -> fixed @ [ Vtype.to_string v ^ "..." ]
  in
  Printf.sprintf "(%s) -> %s" (String.concat ", " args)
    (Vtype.to_string s.returns)

let check_args t args =
  let s = t.sig_ in
  let n_fixed = List.length s.params in
  let n_args = List.length args in
  let arity_err () =
    Error
      (Printf.sprintf "%s: expected %s%d argument(s), got %d" t.name
         (if s.variadic = None then "" else "at least ")
         (n_fixed + if s.variadic = None then 0 else 1)
         n_args)
  in
  if n_args < n_fixed then arity_err ()
  else if s.variadic = None && n_args > n_fixed then arity_err ()
  else begin
    let rec check i params args =
      match params, args with
      | [], [] -> Ok ()
      | [], rest ->
        (match s.variadic with
         | None -> arity_err ()
         | Some vt ->
           let rec check_var i = function
             | [] -> Ok ()
             | v :: tl ->
               if Vtype.matches ~expected:vt ~actual:(Value.type_of v) then
                 check_var (i + 1) tl
               else
                 Error
                   (Printf.sprintf "%s: argument %d has type %s, expected %s"
                      t.name (i + 1)
                      (Vtype.to_string (Value.type_of v))
                      (Vtype.to_string vt))
           in
           check_var i rest)
      | p :: ps, v :: vs ->
        if Vtype.matches ~expected:p ~actual:(Value.type_of v) then
          check (i + 1) ps vs
        else
          Error
            (Printf.sprintf "%s: argument %d has type %s, expected %s" t.name
               (i + 1)
               (Vtype.to_string (Value.type_of v))
               (Vtype.to_string p))
      | _ :: _, [] -> arity_err ()
    in
    check 0 s.params args
  end

let apply t args =
  match check_args t args with
  | Error _ as e -> e
  | Ok () ->
    (try t.impl args with
     | Invalid_argument m | Failure m -> Error (t.name ^ ": " ^ m))

let pp fmt t =
  Format.fprintf fmt "%s : %s" t.name (signature_to_string t.sig_)

let lift1 ~name ?doc a r f =
  make ~name ?doc ~params:[ a ] ~returns:r (fun args ->
      match args with
      | [ x ] -> f x
      | _ -> Error (name ^ ": arity"))

let lift2 ~name ?doc a b r f =
  make ~name ?doc ~params:[ a; b ] ~returns:r (fun args ->
      match args with
      | [ x; y ] -> f x y
      | _ -> Error (name ^ ": arity"))
