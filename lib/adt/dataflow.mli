(** Compound operators as dataflow networks (paper Fig 4).

    "Operators can be combined into a self-contained compound operator
    that can be applied as a primitive mapping function between two
    primitive classes" (Section 2.1.5).  A network is a DAG whose nodes
    apply named operators to values flowing from the network inputs,
    constants, or other nodes. *)

type source =
  | From_input of int        (** i-th network input (0-based) *)
  | From_const of Value.t
  | From_node of int         (** output of the node with that id *)

type node = {
  id : int;
  op : string;               (** operator name, resolved at run time *)
  args : source list;
}

type t = private {
  name : string;
  doc : string;
  input_types : Vtype.t list;
  returns : Vtype.t;
  nodes : node list;
  output : source;
}

val make :
  name:string -> ?doc:string -> input_types:Vtype.t list
  -> returns:Vtype.t -> nodes:node list -> source -> (t, string) result
(** The final positional argument is the network output source.
    Validates: node ids unique and non-negative, every [From_node]
    reference resolves, every [From_input] is within range, and the
    graph is acyclic. *)

val node : int -> string -> source list -> node

val stages : t -> int
(** Number of operator applications. *)

val topo_order : t -> node list
(** Nodes in a valid execution order (deterministic). *)

val execute :
  lookup:(string -> Operator.t option) -> t -> Value.t list
  -> (Value.t, string) result
(** Run the network.  Checks input arity and types, resolves operator
    names through [lookup], executes nodes in topological order. *)

val to_operator : lookup:(string -> Operator.t option) -> t -> Operator.t
(** Package the network as a single (compound) operator. *)

val describe : t -> string
(** Multi-line rendering of the network structure (for browsing /
    reproducing Fig 4 in output). *)
