type t =
  | Int
  | Float
  | String
  | Bool
  | Image
  | Composite
  | Matrix
  | Vector
  | Box
  | Abstime
  | Interval
  | Setof of t
  | Any

let rec equal a b =
  match a, b with
  | Int, Int | Float, Float | String, String | Bool, Bool | Image, Image
  | Composite, Composite | Matrix, Matrix | Vector, Vector | Box, Box
  | Abstime, Abstime | Interval, Interval | Any, Any -> true
  | Setof x, Setof y -> equal x y
  | ( ( Int | Float | String | Bool | Image | Composite | Matrix | Vector
      | Box | Abstime | Interval | Setof _ | Any ), _ ) -> false

let rec rank = function
  | Int -> 0 | Float -> 1 | String -> 2 | Bool -> 3 | Image -> 4
  | Composite -> 5 | Matrix -> 6 | Vector -> 7 | Box -> 8 | Abstime -> 9
  | Interval -> 10 | Any -> 11 | Setof t -> 12 + rank t

let compare a b = Int.compare (rank a) (rank b)

let rec matches ~expected ~actual =
  match expected, actual with
  | Any, _ -> true
  | Setof a, Setof b -> matches ~expected:a ~actual:b
  | _ -> equal expected actual

let rec base = function
  | Setof t -> base t
  | t -> t

let is_setof = function
  | Setof _ -> true
  | _ -> false

let rec to_string = function
  | Int -> "int"
  | Float -> "float"
  | String -> "string"
  | Bool -> "bool"
  | Image -> "image"
  | Composite -> "composite"
  | Matrix -> "matrix"
  | Vector -> "vector"
  | Box -> "box"
  | Abstime -> "abstime"
  | Interval -> "interval"
  | Setof t -> "setof " ^ to_string t
  | Any -> "any"

let rec of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  if String.length s > 6 && String.sub s 0 6 = "setof " then
    Option.map (fun t -> Setof t)
      (of_string (String.sub s 6 (String.length s - 6)))
  else
    match s with
    | "int" | "int4" | "int2" -> Some Int
    | "float" | "float4" | "float8" -> Some Float
    | "string" | "char16" | "text" -> Some String
    | "bool" | "boolean" -> Some Bool
    | "image" -> Some Image
    | "composite" -> Some Composite
    | "matrix" -> Some Matrix
    | "vector" -> Some Vector
    | "box" -> Some Box
    | "abstime" -> Some Abstime
    | "interval" -> Some Interval
    | "any" -> Some Any
    | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all_primitive =
  [ Int; Float; String; Bool; Image; Composite; Matrix; Vector; Box;
    Abstime; Interval ]
