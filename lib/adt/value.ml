module Image = Gaea_raster.Image
module Composite = Gaea_raster.Composite
module Matrix = Gaea_raster.Matrix
module Pixel = Gaea_raster.Pixel
module Box = Gaea_geo.Box
module Abstime = Gaea_geo.Abstime
module Interval = Gaea_geo.Interval

type t =
  | VInt of int
  | VFloat of float
  | VString of string
  | VBool of bool
  | VImage of Image.t
  | VComposite of Composite.t
  | VMatrix of Matrix.t
  | VVector of float array
  | VBox of Box.t
  | VAbstime of Abstime.t
  | VInterval of Interval.t
  | VSet of t list

let type_of = function
  | VInt _ -> Vtype.Int
  | VFloat _ -> Vtype.Float
  | VString _ -> Vtype.String
  | VBool _ -> Vtype.Bool
  | VImage _ -> Vtype.Image
  | VComposite _ -> Vtype.Composite
  | VMatrix _ -> Vtype.Matrix
  | VVector _ -> Vtype.Vector
  | VBox _ -> Vtype.Box
  | VAbstime _ -> Vtype.Abstime
  | VInterval _ -> Vtype.Interval
  | VSet [] -> Vtype.Setof Vtype.Any
  | VSet (x :: _) ->
    let rec first_type = function
      | VSet [] -> Vtype.Setof Vtype.Any
      | VSet (y :: _) -> Vtype.Setof (first_type y)
      | v -> simple_type v
    and simple_type v =
      match v with
      | VInt _ -> Vtype.Int
      | VFloat _ -> Vtype.Float
      | VString _ -> Vtype.String
      | VBool _ -> Vtype.Bool
      | VImage _ -> Vtype.Image
      | VComposite _ -> Vtype.Composite
      | VMatrix _ -> Vtype.Matrix
      | VVector _ -> Vtype.Vector
      | VBox _ -> Vtype.Box
      | VAbstime _ -> Vtype.Abstime
      | VInterval _ -> Vtype.Interval
      | VSet _ -> first_type v
    in
    Vtype.Setof (first_type x)

(* all NaNs are identified: serialization cannot preserve NaN payload
   bits, and scientific reproducibility wants NaN = NaN here *)
let float_bits f =
  if Float.is_nan f then 0x7ff8000000000000L else Int64.bits_of_float f

let rec equal a b =
  match a, b with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> float_bits x = float_bits y
  | VString x, VString y -> String.equal x y
  | VBool x, VBool y -> x = y
  | VImage x, VImage y -> Image.equal x y
  | VComposite x, VComposite y -> Composite.equal x y
  | VMatrix x, VMatrix y -> Matrix.equal x y
  | VVector x, VVector y -> x = y
  | VBox x, VBox y -> Box.equal x y
  | VAbstime x, VAbstime y -> Abstime.equal x y
  | VInterval x, VInterval y -> Interval.equal x y
  | VSet x, VSet y ->
    List.length x = List.length y && List.for_all2 equal x y
  | ( ( VInt _ | VFloat _ | VString _ | VBool _ | VImage _ | VComposite _
      | VMatrix _ | VVector _ | VBox _ | VAbstime _ | VInterval _ | VSet _ ),
      _ ) -> false

let combine h1 h2 = (h1 * 1000003) lxor h2

let float_hash f = Int64.to_int (float_bits f) land max_int

let rec content_hash = function
  | VInt x -> combine 1 x
  | VFloat x -> combine 2 (float_hash x)
  | VString s -> combine 3 (Hashtbl.hash s)
  | VBool b -> combine 4 (if b then 1 else 0)
  | VImage i -> combine 5 (Image.content_hash i)
  | VComposite c -> combine 6 (Composite.content_hash c)
  | VMatrix m ->
    let h = ref (combine 7 (combine (Matrix.rows m) (Matrix.cols m))) in
    for i = 0 to Matrix.rows m - 1 do
      for j = 0 to Matrix.cols m - 1 do
        h := combine !h (float_hash (Matrix.get m i j))
      done
    done;
    !h
  | VVector v ->
    Array.fold_left (fun acc x -> combine acc (float_hash x)) 8 v
  | VBox b ->
    List.fold_left
      (fun acc x -> combine acc (float_hash x))
      9
      [ Box.xmin b; Box.ymin b; Box.xmax b; Box.ymax b ]
  | VAbstime t -> combine 10 (Abstime.to_seconds t)
  | VInterval i ->
    combine 11
      (combine
         (Abstime.to_seconds (Interval.start i))
         (Abstime.to_seconds (Interval.stop i)))
  | VSet items ->
    List.fold_left (fun acc v -> combine acc (content_hash v)) 12 items

let int x = VInt x
let float x = VFloat x
let string x = VString x
let bool x = VBool x
let image x = VImage x
let composite x = VComposite x
let matrix x = VMatrix x
let vector x = VVector x
let box x = VBox x
let abstime x = VAbstime x
let interval x = VInterval x
let set x = VSet x

let type_error expected v =
  Error
    (Printf.sprintf "expected %s, got %s" expected
       (Vtype.to_string (type_of v)))

let to_int = function VInt x -> Ok x | v -> type_error "int" v

let to_float = function
  | VFloat x -> Ok x
  | VInt x -> Ok (float_of_int x)
  | v -> type_error "float" v

let to_string_value = function VString s -> Ok s | v -> type_error "string" v
let to_bool = function VBool b -> Ok b | v -> type_error "bool" v
let to_image = function VImage i -> Ok i | v -> type_error "image" v

let to_composite = function
  | VComposite c -> Ok c
  | VImage i -> Ok (Composite.of_bands [ i ])
  | v -> type_error "composite" v

let to_matrix = function VMatrix m -> Ok m | v -> type_error "matrix" v
let to_vector = function VVector a -> Ok a | v -> type_error "vector" v
let to_box = function VBox b -> Ok b | v -> type_error "box" v
let to_abstime = function VAbstime t -> Ok t | v -> type_error "abstime" v
let to_interval = function VInterval i -> Ok i | v -> type_error "interval" v
let to_set = function VSet l -> Ok l | v -> type_error "set" v

let rec to_display = function
  | VInt x -> string_of_int x
  | VFloat x -> Printf.sprintf "%g" x
  | VString s -> Printf.sprintf "%S" s
  | VBool b -> string_of_bool b
  | VImage i ->
    Printf.sprintf "image<%dx%d:%s>" (Image.img_nrow i) (Image.img_ncol i)
      (Pixel.to_string (Image.img_type i))
  | VComposite c ->
    Printf.sprintf "composite<%d bands, %dx%d>" (Composite.n_bands c)
      (Composite.nrow c) (Composite.ncol c)
  | VMatrix m -> Printf.sprintf "matrix<%dx%d>" (Matrix.rows m) (Matrix.cols m)
  | VVector v -> Printf.sprintf "vector<%d>" (Array.length v)
  | VBox b -> Box.to_string b
  | VAbstime t -> Abstime.to_string t
  | VInterval i -> Interval.to_string i
  | VSet items ->
    "{" ^ String.concat ", " (List.map to_display items) ^ "}"

let pp fmt v = Format.pp_print_string fmt (to_display v)

(* Serialization via S-expressions; floats as hex literals to round-trip
   exactly. *)
let fatom f = Sexp.atom (Printf.sprintf "%h" f)
let iatom i = Sexp.atom (string_of_int i)

let rec to_sexp = function
  | VInt x -> Sexp.list [ Sexp.atom "int"; iatom x ]
  | VFloat x -> Sexp.list [ Sexp.atom "float"; fatom x ]
  | VString s -> Sexp.list [ Sexp.atom "string"; Sexp.atom s ]
  | VBool b -> Sexp.list [ Sexp.atom "bool"; Sexp.atom (string_of_bool b) ]
  | VImage i -> Sexp.list (Sexp.atom "image" :: image_fields i)
  | VComposite c ->
    Sexp.list
      (Sexp.atom "composite"
       :: List.map (fun b -> Sexp.list (Sexp.atom "image" :: image_fields b))
            (Composite.bands c))
  | VMatrix m ->
    let cells = ref [] in
    for i = Matrix.rows m - 1 downto 0 do
      for j = Matrix.cols m - 1 downto 0 do
        cells := fatom (Matrix.get m i j) :: !cells
      done
    done;
    Sexp.list
      (Sexp.atom "matrix" :: iatom (Matrix.rows m) :: iatom (Matrix.cols m)
       :: !cells)
  | VVector v ->
    Sexp.list (Sexp.atom "vector" :: Array.to_list (Array.map fatom v))
  | VBox b ->
    Sexp.list
      [ Sexp.atom "box"; fatom (Box.xmin b); fatom (Box.ymin b);
        fatom (Box.xmax b); fatom (Box.ymax b) ]
  | VAbstime t -> Sexp.list [ Sexp.atom "abstime"; iatom (Abstime.to_seconds t) ]
  | VInterval i ->
    Sexp.list
      [ Sexp.atom "interval";
        iatom (Abstime.to_seconds (Interval.start i));
        iatom (Abstime.to_seconds (Interval.stop i)) ]
  | VSet items -> Sexp.list (Sexp.atom "set" :: List.map to_sexp items)

and image_fields i =
  iatom (Image.img_nrow i) :: iatom (Image.img_ncol i)
  :: Sexp.atom (Pixel.to_string (Image.img_type i))
  :: Sexp.atom (Image.img_label i)
  :: List.map fatom (Image.to_list i)

let serialize v = Sexp.to_string (to_sexp v)

let ( let* ) r f = Result.bind r f

let parse_int s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error ("not an int: " ^ s)

let parse_float s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error ("not a float: " ^ s)

let atom_of = function
  | Sexp.Atom a -> Ok a
  | Sexp.List _ -> Error "expected atom"

let rec of_sexp sexp =
  match sexp with
  | Sexp.Atom a -> Error ("bare atom: " ^ a)
  | Sexp.List (Sexp.Atom tag :: rest) -> parse_tagged tag rest
  | Sexp.List _ -> Error "list without a tag"

and parse_image_fields fields =
  match fields with
  | nrow :: ncol :: ptype :: label :: pixels ->
    let* nrow = Result.bind (atom_of nrow) parse_int in
    let* ncol = Result.bind (atom_of ncol) parse_int in
    let* pt_str = atom_of ptype in
    let* label = atom_of label in
    let* ptype =
      match Pixel.of_string pt_str with
      | Some p -> Ok p
      | None -> Error ("bad pixel type: " ^ pt_str)
    in
    let* values =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* f = Result.bind (atom_of p) parse_float in
          Ok (f :: acc))
        (Ok []) pixels
    in
    let arr = Array.of_list (List.rev values) in
    if Array.length arr <> nrow * ncol then Error "image pixel count mismatch"
    else
      (try Ok (Image.of_array ~label ~nrow ~ncol ptype arr)
       with Invalid_argument m -> Error m)
  | _ -> Error "malformed image"

and parse_tagged tag rest =
  match tag, rest with
  | "int", [ a ] -> Result.map int (Result.bind (atom_of a) parse_int)
  | "float", [ a ] -> Result.map float (Result.bind (atom_of a) parse_float)
  | "string", [ a ] -> Result.map string (atom_of a)
  | "bool", [ a ] ->
    let* s = atom_of a in
    (match bool_of_string_opt s with
     | Some b -> Ok (bool b)
     | None -> Error ("bad bool: " ^ s))
  | "image", fields -> Result.map image (parse_image_fields fields)
  | "composite", bands ->
    let* imgs =
      List.fold_left
        (fun acc b ->
          let* acc = acc in
          match b with
          | Sexp.List (Sexp.Atom "image" :: fields) ->
            let* img = parse_image_fields fields in
            Ok (img :: acc)
          | _ -> Error "composite: expected image")
        (Ok []) bands
    in
    (match List.rev imgs with
     | [] -> Error "composite: no bands"
     | l ->
       (try Ok (composite (Composite.of_bands l))
        with Invalid_argument m -> Error m))
  | "matrix", rows :: cols :: cells ->
    let* rows = Result.bind (atom_of rows) parse_int in
    let* cols = Result.bind (atom_of cols) parse_int in
    let* values =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* f = Result.bind (atom_of c) parse_float in
          Ok (f :: acc))
        (Ok []) cells
    in
    let arr = Array.of_list (List.rev values) in
    if Array.length arr <> rows * cols then Error "matrix cell count mismatch"
    else if rows <= 0 || cols <= 0 then Error "matrix: bad dims"
    else
      Ok (matrix (Matrix.init ~rows ~cols (fun i j -> arr.((i * cols) + j))))
  | "vector", cells ->
    let* values =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* f = Result.bind (atom_of c) parse_float in
          Ok (f :: acc))
        (Ok []) cells
    in
    Ok (vector (Array.of_list (List.rev values)))
  | "box", [ a; b; c; d ] ->
    let* xmin = Result.bind (atom_of a) parse_float in
    let* ymin = Result.bind (atom_of b) parse_float in
    let* xmax = Result.bind (atom_of c) parse_float in
    let* ymax = Result.bind (atom_of d) parse_float in
    (try Ok (box (Box.make ~xmin ~ymin ~xmax ~ymax))
     with Invalid_argument m -> Error m)
  | "abstime", [ a ] ->
    Result.map
      (fun s -> abstime (Abstime.of_seconds s))
      (Result.bind (atom_of a) parse_int)
  | "interval", [ a; b ] ->
    let* s = Result.bind (atom_of a) parse_int in
    let* e = Result.bind (atom_of b) parse_int in
    (try
       Ok (interval (Interval.make (Abstime.of_seconds s) (Abstime.of_seconds e)))
     with Invalid_argument m -> Error m)
  | "set", items ->
    let* parsed =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = of_sexp item in
          Ok (v :: acc))
        (Ok []) items
    in
    Ok (set (List.rev parsed))
  | tag, _ -> Error ("unknown or malformed tag: " ^ tag)

let deserialize s =
  match Sexp.of_string s with
  | Error e -> Error e
  | Ok sexp -> of_sexp sexp
