(** Dynamic values of the system-level layer.

    Objects of primitive classes are {e value identified} (paper
    Section 2.1.3): "the object identifier for a data object is its
    value; changing the value of an object in a primitive class will
    always lead to another object".  Accordingly values here are
    immutable from the layer's point of view and compared / hashed by
    content. *)

type t =
  | VInt of int
  | VFloat of float
  | VString of string
  | VBool of bool
  | VImage of Gaea_raster.Image.t
  | VComposite of Gaea_raster.Composite.t
  | VMatrix of Gaea_raster.Matrix.t
  | VVector of float array
  | VBox of Gaea_geo.Box.t
  | VAbstime of Gaea_geo.Abstime.t
  | VInterval of Gaea_geo.Interval.t
  | VSet of t list

val type_of : t -> Vtype.t
(** [VSet []] has type [Setof Any]; a non-empty set takes the type of
    its first element. *)

val equal : t -> t -> bool
val content_hash : t -> int
(** Deterministic content hash (stable across runs). *)

(** Constructors and checked accessors. *)

val int : int -> t
val float : float -> t
val string : string -> t
val bool : bool -> t
val image : Gaea_raster.Image.t -> t
val composite : Gaea_raster.Composite.t -> t
val matrix : Gaea_raster.Matrix.t -> t
val vector : float array -> t
val box : Gaea_geo.Box.t -> t
val abstime : Gaea_geo.Abstime.t -> t
val interval : Gaea_geo.Interval.t -> t
val set : t list -> t

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** Accepts [VInt] too (numeric widening). *)

val to_string_value : t -> (string, string) result
val to_bool : t -> (bool, string) result
val to_image : t -> (Gaea_raster.Image.t, string) result
val to_composite : t -> (Gaea_raster.Composite.t, string) result
val to_matrix : t -> (Gaea_raster.Matrix.t, string) result
val to_vector : t -> (float array, string) result
val to_box : t -> (Gaea_geo.Box.t, string) result
val to_abstime : t -> (Gaea_geo.Abstime.t, string) result
val to_interval : t -> (Gaea_geo.Interval.t, string) result
val to_set : t -> (t list, string) result

val to_display : t -> string
(** Human-readable rendering (images/matrices summarized). *)

val pp : Format.formatter -> t -> unit

val serialize : t -> string
(** One-line textual encoding, inverse of {!deserialize}.  Images and
    composites are encoded in full (dims, type, pixels). *)

val deserialize : string -> (t, string) result
