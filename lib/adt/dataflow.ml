type source =
  | From_input of int
  | From_const of Value.t
  | From_node of int

type node = {
  id : int;
  op : string;
  args : source list;
}

type t = {
  name : string;
  doc : string;
  input_types : Vtype.t list;
  returns : Vtype.t;
  nodes : node list;
  output : source;
}

let node id op args = { id; op; args }

let validate ~name ~input_types ~nodes ~output =
  let n_inputs = List.length input_types in
  let ids = List.map (fun n -> n.id) nodes in
  let id_set = Hashtbl.create 16 in
  let dup =
    List.exists
      (fun id ->
        if id < 0 then true
        else if Hashtbl.mem id_set id then true
        else begin
          Hashtbl.add id_set id ();
          false
        end)
      ids
  in
  if dup then Error (name ^ ": duplicate or negative node id")
  else begin
    let check_source where = function
      | From_input i ->
        if i < 0 || i >= n_inputs then
          Error (Printf.sprintf "%s: %s references input %d of %d" name where i n_inputs)
        else Ok ()
      | From_node id ->
        if not (Hashtbl.mem id_set id) then
          Error (Printf.sprintf "%s: %s references unknown node %d" name where id)
        else Ok ()
      | From_const _ -> Ok ()
    in
    let rec check_all = function
      | [] -> check_source "output" output
      | n :: rest ->
        let rec check_args = function
          | [] -> Ok ()
          | s :: tl ->
            (match check_source (Printf.sprintf "node %d (%s)" n.id n.op) s with
             | Error _ as e -> e
             | Ok () -> check_args tl)
        in
        (match check_args n.args with
         | Error _ as e -> e
         | Ok () -> check_all rest)
    in
    match check_all nodes with
    | Error _ as e -> e
    | Ok () ->
      (* cycle check via DFS over node dependencies *)
      let by_id = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.add by_id n.id n) nodes;
      let state = Hashtbl.create 16 in
      (* 0 = visiting, 1 = done *)
      let rec visit id =
        match Hashtbl.find_opt state id with
        | Some 1 -> Ok ()
        | Some _ -> Error (Printf.sprintf "%s: cycle through node %d" name id)
        | None ->
          Hashtbl.add state id 0;
          let n = Hashtbl.find by_id id in
          let rec deps = function
            | [] ->
              Hashtbl.replace state id 1;
              Ok ()
            | From_node d :: tl ->
              (match visit d with Error _ as e -> e | Ok () -> deps tl)
            | (From_input _ | From_const _) :: tl -> deps tl
          in
          deps n.args
      in
      let rec visit_all = function
        | [] -> Ok ()
        | n :: rest ->
          (match visit n.id with Error _ as e -> e | Ok () -> visit_all rest)
      in
      visit_all nodes
  end

let make ~name ?(doc = "") ~input_types ~returns ~nodes output =
  match validate ~name ~input_types ~nodes ~output with
  | Error _ as e -> e
  | Ok () -> Ok { name; doc; input_types; returns; nodes; output }

let stages t = List.length t.nodes

let topo_order t =
  let by_id = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.add by_id n.id n) t.nodes;
  let done_ = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem done_ id) then begin
      Hashtbl.add done_ id ();
      let n = Hashtbl.find by_id id in
      List.iter
        (function
          | From_node d -> visit d
          | From_input _ | From_const _ -> ())
        n.args;
      order := n :: !order
    end
  in
  (* visit in declaration order for determinism *)
  List.iter (fun n -> visit n.id) t.nodes;
  List.rev !order

let execute ~lookup t inputs =
  let n_expected = List.length t.input_types in
  if List.length inputs <> n_expected then
    Error
      (Printf.sprintf "%s: expected %d input(s), got %d" t.name n_expected
         (List.length inputs))
  else begin
    let type_mismatch =
      List.exists2
        (fun expected v ->
          not (Vtype.matches ~expected ~actual:(Value.type_of v)))
        t.input_types inputs
    in
    if type_mismatch then
      Error
        (Printf.sprintf "%s: input type mismatch (expected %s)" t.name
           (String.concat ", " (List.map Vtype.to_string t.input_types)))
    else begin
      let inputs = Array.of_list inputs in
      let results : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
      let resolve = function
        | From_input i -> Ok inputs.(i)
        | From_const v -> Ok v
        | From_node id ->
          (match Hashtbl.find_opt results id with
           | Some v -> Ok v
           | None -> Error (Printf.sprintf "%s: node %d not computed" t.name id))
      in
      let rec run = function
        | [] -> resolve t.output
        | n :: rest ->
          (match lookup n.op with
           | None ->
             Error (Printf.sprintf "%s: unknown operator %s" t.name n.op)
           | Some op ->
             let rec gather acc = function
               | [] -> Ok (List.rev acc)
               | s :: tl ->
                 (match resolve s with
                  | Error _ as e -> e
                  | Ok v -> gather (v :: acc) tl)
             in
             (match gather [] n.args with
              | Error _ as e -> e
              | Ok args ->
                (match Operator.apply op args with
                 | Error e ->
                   Error (Printf.sprintf "%s: node %d: %s" t.name n.id e)
                 | Ok v ->
                   Hashtbl.replace results n.id v;
                   run rest)))
      in
      run (topo_order t)
    end
  end

let to_operator ~lookup t =
  Operator.make ~name:t.name ~doc:(t.doc ^ " [compound]")
    ~params:t.input_types ~returns:t.returns
    (fun args -> execute ~lookup t args)

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "compound operator %s : (%s) -> %s\n" t.name
       (String.concat ", " (List.map Vtype.to_string t.input_types))
       (Vtype.to_string t.returns));
  let src_str = function
    | From_input i -> Printf.sprintf "in%d" i
    | From_const v -> Value.to_display v
    | From_node id -> Printf.sprintf "n%d" id
  in
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d := %s(%s)\n" n.id n.op
           (String.concat ", " (List.map src_str n.args))))
    (topo_order t);
  Buffer.add_string buf (Printf.sprintf "  output := %s" (src_str t.output));
  Buffer.contents buf
