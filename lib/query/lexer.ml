module Gaea_error = Gaea_core.Gaea_error
type token =
  | Ident of string
  | Keyword of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Param of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Dot
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Star
  | Eof

let keywords =
  [ "DEFINE"; "CLASS"; "CONCEPT"; "PROCESS"; "OUTPUT"; "ARGS"; "SETOF";
    "CARD"; "PARAM"; "ASSERT"; "MAP"; "END"; "MEMBERS"; "ISA"; "INSERT";
    "INTO"; "SELECT"; "FROM"; "WHERE"; "AND"; "DERIVE"; "AT"; "NEED";
    "SHOW"; "LINEAGE"; "CLASSES"; "PROCESSES"; "CONCEPTS"; "TASKS";
    "OPERATORS"; "FOR"; "PLAN"; "VERIFY"; "TASK"; "COMPARE"; "ANYOF";
    "COMMON"; "SPATIAL"; "TEMPORAL"; "DERIVED"; "BY"; "OVERLAPS"; "LIMIT";
    "ORDER"; "ASC"; "DESC"; "TRUE"; "FALSE"; "BOX"; "DATE"; "NET";
    "EXPERIMENT"; "BEGIN"; "NOTE"; "REPRODUCE"; "COUNT"; "VERSIONS"; "OF";
    "EVENTS"; "DELETE"; "CHECK"; "ALL"; "STEP"; "REFRESH"; "STALE"; "CACHE" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  let err = ref None in
  let emit t = toks := t :: !toks in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  (try
     while !pos < n && !err = None do
       let c = src.[!pos] in
       if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
       else if c = '-' && peek 1 = Some '-' then begin
         (* comment to end of line *)
         while !pos < n && src.[!pos] <> '\n' do
           incr pos
         done
       end
       else if c = '(' then (emit Lparen; incr pos)
       else if c = ')' then (emit Rparen; incr pos)
       else if c = ',' then (emit Comma; incr pos)
       else if c = ';' then (emit Semicolon; incr pos)
       else if c = '.' then (emit Dot; incr pos)
       else if c = '*' then (emit Star; incr pos)
       else if c = '=' then (emit Eq; incr pos)
       else if c = '<' then begin
         if peek 1 = Some '=' then (emit Le; pos := !pos + 2)
         else if peek 1 = Some '>' then (emit Neq; pos := !pos + 2)
         else (emit Lt; incr pos)
       end
       else if c = '>' then begin
         if peek 1 = Some '=' then (emit Ge; pos := !pos + 2)
         else (emit Gt; incr pos)
       end
       else if c = '!' && peek 1 = Some '=' then (emit Neq; pos := !pos + 2)
       else if c = '\'' || c = '"' then begin
         let quote = c in
         let buf = Buffer.create 16 in
         incr pos;
         let closed = ref false in
         while !pos < n && not !closed do
           if src.[!pos] = quote then begin
             closed := true;
             incr pos
           end
           else begin
             Buffer.add_char buf src.[!pos];
             incr pos
           end
         done;
         if !closed then emit (String_lit (Buffer.contents buf))
         else err := Some "unterminated string literal"
       end
       else if c = '$' then begin
         incr pos;
         let start = !pos in
         while !pos < n && is_ident_char src.[!pos] do
           incr pos
         done;
         if !pos = start then err := Some "empty parameter name"
         else emit (Param (String.sub src start (!pos - start)))
       end
       else if is_digit c || (c = '-' && (match peek 1 with Some d -> is_digit d | None -> false)) then begin
         let start = !pos in
         if c = '-' then incr pos;
         while !pos < n && is_digit src.[!pos] do
           incr pos
         done;
         let is_float = ref false in
         if
           !pos < n && src.[!pos] = '.'
           && match peek 1 with Some d -> is_digit d | None -> false
         then begin
           is_float := true;
           incr pos;
           while !pos < n && is_digit src.[!pos] do
             incr pos
           done
         end;
         if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
           is_float := true;
           incr pos;
           if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
           while !pos < n && is_digit src.[!pos] do
             incr pos
           done
         end;
         let text = String.sub src start (!pos - start) in
         if !is_float then
           match float_of_string_opt text with
           | Some f -> emit (Float_lit f)
           | None -> err := Some ("bad float literal " ^ text)
         else (
           match int_of_string_opt text with
           | Some i -> emit (Int_lit i)
           | None -> err := Some ("bad int literal " ^ text))
       end
       else if is_ident_start c then begin
         let start = !pos in
         while !pos < n && is_ident_char src.[!pos] do
           incr pos
         done;
         let text = String.sub src start (!pos - start) in
         let upper = String.uppercase_ascii text in
         if List.mem upper keywords then emit (Keyword upper)
         else emit (Ident text)
       end
       else err := Some (Printf.sprintf "unexpected character %C" c)
     done
   with Exit -> ());
  match !err with
  | Some e -> Error (Gaea_error.Parse_error e)
  | None -> Ok (List.rev (Eof :: !toks))

let token_to_string = function
  | Ident s -> s
  | Keyword s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> Printf.sprintf "%g" f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Param s -> "$" ^ s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Semicolon -> ";"
  | Dot -> "."
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Star -> "*"
  | Eof -> "<eof>"
