type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_date of int * int * int
  | L_box of float * float * float * float

type expr =
  | E_lit of literal
  | E_attr of string * string
  | E_param of string
  | E_anyof of expr
  | E_apply of string * expr list

type comparison = C_eq | C_neq | C_lt | C_le | C_gt | C_ge

type predicate =
  | P_compare of string * comparison * literal
  | P_overlaps of string * literal
  | P_at of string * literal

type order = Asc | Desc

type select = {
  projection : string list;
  source : string;
  where_ : predicate list;
  order_by : (string * order) option;
  limit : int option;
}

type assertion_syntax =
  | A_expr of expr
  | A_card_eq of string * int
  | A_card_ge of string * int
  | A_common_space of string
  | A_common_time of string

type arg_syntax = {
  sa_name : string;
  sa_setof : bool;
  sa_class : string;
  sa_card : (int * int option) option;
}

type step_input_syntax =
  | SI_arg of string           (* a compound argument, passed through *)
  | SI_step of int             (* STEP n (1-based): outputs of an
                                  earlier step *)

type step_syntax = {
  ss_process : string;
  ss_inputs : (string * step_input_syntax) list;
}

type statement =
  | Define_class of {
      name : string;
      attrs : (string * string) list;
      spatial : string option;
      temporal : string option;
      derived_by : string option;
    }
  | Define_concept of {
      name : string;
      members : string list;
      isa : string option;
    }
  | Define_process of {
      name : string;
      output : string;
      args : arg_syntax list;
      params : (string * literal) list;
      assertions : assertion_syntax list;
      mappings : (string * expr) list;
      steps : step_syntax list;
          (* non-empty makes the process compound; mutually exclusive
             with params/assertions/mappings (enforced by the parser) *)
    }
  | Insert of { cls : string; values : (string * expr) list }
  | Delete of { cls : string; oid : int }
  | Select of select
  | Derive of { cls : string; at : literal option; need : int option }
  | Show_lineage of int
  | Show_classes
  | Show_processes
  | Show_versions of string
  | Show_concepts
  | Show_tasks
  | Show_operators of string option
  | Show_plan of string
  | Show_net
  | Show_events
  | Show_stale
  | Show_cache
  | Refresh_all
  | Refresh_object of { cls : string; oid : int }
  | Verify_object of int
  | Verify_task of int
  | Compare of int * int
  | Begin_experiment of string
  | Note of { experiment : string; text : string }
  | Reproduce of string
  | Check_process of string
  | Check_all

let statement_to_string = function
  | Define_class { name; _ } -> "DEFINE CLASS " ^ name
  | Define_concept { name; _ } -> "DEFINE CONCEPT " ^ name
  | Define_process { name; _ } -> "DEFINE PROCESS " ^ name
  | Insert { cls; _ } -> "INSERT INTO " ^ cls
  | Delete { cls; oid } -> Printf.sprintf "DELETE FROM %s %d" cls oid
  | Select { source; _ } -> "SELECT FROM " ^ source
  | Derive { cls; _ } -> "DERIVE " ^ cls
  | Show_lineage oid -> Printf.sprintf "SHOW LINEAGE %d" oid
  | Show_classes -> "SHOW CLASSES"
  | Show_processes -> "SHOW PROCESSES"
  | Show_versions p -> "SHOW VERSIONS OF " ^ p
  | Show_concepts -> "SHOW CONCEPTS"
  | Show_tasks -> "SHOW TASKS"
  | Show_operators None -> "SHOW OPERATORS"
  | Show_operators (Some t) -> "SHOW OPERATORS FOR " ^ t
  | Show_plan cls -> "SHOW PLAN " ^ cls
  | Show_net -> "SHOW NET"
  | Show_events -> "SHOW EVENTS"
  | Show_stale -> "SHOW STALE"
  | Show_cache -> "SHOW CACHE"
  | Refresh_all -> "REFRESH ALL"
  | Refresh_object { cls; oid } -> Printf.sprintf "REFRESH %s %d" cls oid
  | Verify_object oid -> Printf.sprintf "VERIFY %d" oid
  | Verify_task id -> Printf.sprintf "VERIFY TASK %d" id
  | Compare (a, b) -> Printf.sprintf "COMPARE %d %d" a b
  | Begin_experiment e -> "BEGIN EXPERIMENT " ^ e
  | Note { experiment; _ } -> "NOTE ON " ^ experiment
  | Reproduce e -> "REPRODUCE " ^ e
  | Check_process p -> "CHECK PROCESS " ^ p
  | Check_all -> "CHECK ALL"
