module Value = Gaea_adt.Value

type access_path =
  | Index_eq of string * Value.t
  | Index_range of string * Value.t option * Value.t option
  | Full_scan

type select_plan = {
  classes : string list;
  path : access_path;
  residual : Ast.predicate list;
  est_rows : float;
  est_cost : float;
}

type materialize_plan =
  | Stored of int
  | Interpolate of { snapshots : int }
  | Derive of { firings : int; depth : int }
  | Impossible of string

let pp_access_path fmt = function
  | Index_eq (attr, v) ->
    Format.fprintf fmt "index-eq(%s = %s)" attr (Value.to_display v)
  | Index_range (attr, lo, hi) ->
    Format.fprintf fmt "index-range(%s in [%s, %s])" attr
      (match lo with Some v -> Value.to_display v | None -> "-inf")
      (match hi with Some v -> Value.to_display v | None -> "+inf")
  | Full_scan -> Format.fprintf fmt "full-scan"

let pp_select_plan fmt p =
  Format.fprintf fmt "scan %s via %a (%d residual predicate(s), est %.1f rows, cost %.1f)"
    (String.concat "+" p.classes)
    pp_access_path p.path
    (List.length p.residual)
    p.est_rows p.est_cost

let pp_materialize_plan fmt = function
  | Stored n -> Format.fprintf fmt "retrieve (%d stored)" n
  | Interpolate { snapshots } ->
    Format.fprintf fmt "interpolate (from %d snapshots)" snapshots
  | Derive { firings; depth } ->
    Format.fprintf fmt "derive (%d firing(s), depth %d)" firings depth
  | Impossible why -> Format.fprintf fmt "impossible: %s" why

let materialize_cost ~pixels_per_object = function
  | Stored _ -> 1.
  | Interpolate _ -> pixels_per_object
  | Derive { firings; _ } -> float_of_int firings *. pixels_per_object
  | Impossible _ -> infinity
