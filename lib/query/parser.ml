module Gaea_error = Gaea_core.Gaea_error
open Ast

type state = {
  mutable toks : Lexer.token list;
}

exception Syntax of string

let fail fmt = Printf.ksprintf (fun m -> raise (Syntax m)) fmt

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> Lexer.Eof

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok what =
  let t = next st in
  if t <> tok then
    fail "expected %s, found %s" what (Lexer.token_to_string t)

let expect_kw st kw = expect st (Lexer.Keyword kw) kw

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (Lexer.Keyword kw)

let ident st =
  match next st with
  | Lexer.Ident s -> s
  | Lexer.Keyword s -> s (* allow keywords as names where unambiguous *)
  | t -> fail "expected identifier, found %s" (Lexer.token_to_string t)

let int_lit st =
  match next st with
  | Lexer.Int_lit i -> i
  | t -> fail "expected integer, found %s" (Lexer.token_to_string t)

let string_lit st =
  match next st with
  | Lexer.String_lit s -> s
  | t -> fail "expected string literal, found %s" (Lexer.token_to_string t)

let float_like st =
  match next st with
  | Lexer.Float_lit f -> f
  | Lexer.Int_lit i -> float_of_int i
  | t -> fail "expected number, found %s" (Lexer.token_to_string t)

let parse_date_string s =
  match Gaea_geo.Abstime.of_string s with
  | Some t ->
    let y, m, d = Gaea_geo.Abstime.to_ymd t in
    L_date (y, m, d)
  | None -> fail "bad date literal '%s' (expected YYYY-MM-DD)" s

let rec literal st =
  match next st with
  | Lexer.Int_lit i -> L_int i
  | Lexer.Float_lit f -> L_float f
  | Lexer.String_lit s -> L_string s
  | Lexer.Keyword "TRUE" -> L_bool true
  | Lexer.Keyword "FALSE" -> L_bool false
  | Lexer.Keyword "DATE" -> parse_date_string (string_lit st)
  | Lexer.Keyword "BOX" ->
    expect st Lexer.Lparen "(";
    let a = float_like st in
    expect st Lexer.Comma ",";
    let b = float_like st in
    expect st Lexer.Comma ",";
    let c = float_like st in
    expect st Lexer.Comma ",";
    let d = float_like st in
    expect st Lexer.Rparen ")";
    L_box (a, b, c, d)
  | t -> fail "expected literal, found %s" (Lexer.token_to_string t)

and expr st =
  match peek st with
  | Lexer.Param p ->
    advance st;
    E_param p
  | Lexer.Keyword "ANYOF" ->
    advance st;
    E_anyof (expr st)
  | Lexer.Keyword "BOX" | Lexer.Keyword "DATE" | Lexer.Keyword "TRUE"
  | Lexer.Keyword "FALSE" | Lexer.Int_lit _ | Lexer.Float_lit _
  | Lexer.String_lit _ ->
    E_lit (literal st)
  | Lexer.Ident name ->
    advance st;
    (match peek st with
     | Lexer.Dot ->
       advance st;
       let attr = ident st in
       E_attr (name, attr)
     | Lexer.Lparen ->
       advance st;
       let args = ref [] in
       if peek st <> Lexer.Rparen then begin
         args := [ expr st ];
         while accept st Lexer.Comma do
           args := expr st :: !args
         done
       end;
       expect st Lexer.Rparen ")";
       E_apply (name, List.rev !args)
     | _ -> fail "expected '.' or '(' after %s in expression" name)
  | t -> fail "unexpected %s in expression" (Lexer.token_to_string t)

let assertion st =
  match peek st with
  | Lexer.Keyword "COMMON" ->
    advance st;
    expect st Lexer.Lparen "(";
    let arg = ident st in
    expect st Lexer.Dot ".";
    let attr = ident st in
    expect st Lexer.Rparen ")";
    let lower = String.lowercase_ascii attr in
    if
      lower = "timestamp"
      ||
      (* substring search for "time" *)
      (let found = ref false in
       String.iteri
         (fun i _ ->
           if
             i + 4 <= String.length lower
             && String.sub lower i 4 = "time"
           then found := true)
         lower;
       !found)
    then A_common_time arg
    else A_common_space arg
  | Lexer.Keyword "CARD" ->
    advance st;
    expect st Lexer.Lparen "(";
    let arg = ident st in
    expect st Lexer.Rparen ")";
    (match next st with
     | Lexer.Eq -> A_card_eq (arg, int_lit st)
     | Lexer.Ge -> A_card_ge (arg, int_lit st)
     | t -> fail "expected = or >= after card(), found %s" (Lexer.token_to_string t))
  | _ -> A_expr (expr st)

let arg_spec st =
  let name = ident st in
  let setof = accept_kw st "SETOF" in
  let cls = ident st in
  let card =
    if accept_kw st "CARD" then begin
      let lo = int_lit st in
      if accept st Lexer.Dot then begin
        expect st Lexer.Dot ".";
        let hi = int_lit st in
        Some (lo, Some hi)
      end
      else Some (lo, None)
    end
    else None
  in
  { sa_name = name; sa_setof = setof; sa_class = cls; sa_card = card }

let define_class st =
  let name = ident st in
  expect st Lexer.Lparen "(";
  let attrs = ref [] in
  let attr () =
    let a = ident st in
    let ty = ident st in
    attrs := (a, ty) :: !attrs
  in
  attr ();
  while accept st Lexer.Comma do
    attr ()
  done;
  expect st Lexer.Rparen ")";
  let spatial = if accept_kw st "SPATIAL" then Some (ident st) else None in
  let temporal = if accept_kw st "TEMPORAL" then Some (ident st) else None in
  let derived_by =
    if accept_kw st "DERIVED" then begin
      expect_kw st "BY";
      Some (ident st)
    end
    else None
  in
  Define_class
    { name; attrs = List.rev !attrs; spatial; temporal; derived_by }

let define_concept st =
  let name = ident st in
  let members = ref [] in
  if accept_kw st "MEMBERS" then begin
    expect st Lexer.Lparen "(";
    members := [ ident st ];
    while accept st Lexer.Comma do
      members := ident st :: !members
    done;
    expect st Lexer.Rparen ")"
  end;
  let isa = if accept_kw st "ISA" then Some (ident st) else None in
  Define_concept { name; members = List.rev !members; isa }

let define_process st =
  let name = ident st in
  expect_kw st "OUTPUT";
  let output = ident st in
  expect_kw st "ARGS";
  expect st Lexer.Lparen "(";
  let args = ref [ arg_spec st ] in
  while accept st Lexer.Comma do
    args := arg_spec st :: !args
  done;
  expect st Lexer.Rparen ")";
  let params = ref [] in
  while accept_kw st "PARAM" do
    let p = ident st in
    expect st Lexer.Eq "=";
    params := (p, literal st) :: !params
  done;
  (* compound body: STEP sub-proc (arg = <compound-arg> | STEP n, ...) *)
  let steps = ref [] in
  while accept_kw st "STEP" do
    let pname = ident st in
    expect st Lexer.Lparen "(";
    let inputs = ref [] in
    let binding () =
      let an = ident st in
      expect st Lexer.Eq "=";
      if accept_kw st "STEP" then begin
        let n = int_lit st in
        if n < 1 then fail "STEP references are numbered from 1";
        inputs := (an, SI_step n) :: !inputs
      end
      else inputs := (an, SI_arg (ident st)) :: !inputs
    in
    binding ();
    while accept st Lexer.Comma do
      binding ()
    done;
    expect st Lexer.Rparen ")";
    steps := { ss_process = pname; ss_inputs = List.rev !inputs } :: !steps
  done;
  let assertions = ref [] in
  while accept_kw st "ASSERT" do
    assertions := assertion st :: !assertions
  done;
  let mappings = ref [] in
  while accept_kw st "MAP" do
    let attr = ident st in
    expect st Lexer.Eq "=";
    mappings := (attr, expr st) :: !mappings
  done;
  expect_kw st "END";
  if !steps <> [] && (!assertions <> [] || !mappings <> []) then
    fail "process %s: STEP clauses cannot mix with ASSERT/MAP" name;
  if !steps <> [] && !params <> [] then
    fail "process %s: a compound process cannot bind parameters" name;
  Define_process
    { name;
      output;
      args = List.rev !args;
      params = List.rev !params;
      assertions = List.rev !assertions;
      mappings = List.rev !mappings;
      steps = List.rev !steps }

let predicate st =
  let attr = ident st in
  match next st with
  | Lexer.Eq -> P_compare (attr, C_eq, literal st)
  | Lexer.Neq -> P_compare (attr, C_neq, literal st)
  | Lexer.Lt -> P_compare (attr, C_lt, literal st)
  | Lexer.Le -> P_compare (attr, C_le, literal st)
  | Lexer.Gt -> P_compare (attr, C_gt, literal st)
  | Lexer.Ge -> P_compare (attr, C_ge, literal st)
  | Lexer.Keyword "OVERLAPS" -> P_overlaps (attr, literal st)
  | Lexer.Keyword "AT" -> P_at (attr, literal st)
  | t -> fail "expected comparison after %s, found %s" attr (Lexer.token_to_string t)

let select st =
  let projection =
    if accept st Lexer.Star then []
    else begin
      let cols = ref [ ident st ] in
      while accept st Lexer.Comma do
        cols := ident st :: !cols
      done;
      List.rev !cols
    end
  in
  expect_kw st "FROM";
  let source = ident st in
  let where_ = ref [] in
  if accept_kw st "WHERE" then begin
    where_ := [ predicate st ];
    while accept_kw st "AND" do
      where_ := predicate st :: !where_
    done
  end;
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let attr = ident st in
      let dir =
        if accept_kw st "DESC" then Desc
        else begin
          ignore (accept_kw st "ASC");
          Asc
        end
      in
      Some (attr, dir)
    end
    else None
  in
  let limit = if accept_kw st "LIMIT" then Some (int_lit st) else None in
  Select { projection; source; where_ = List.rev !where_; order_by; limit }

let statement st =
  match next st with
  | Lexer.Keyword "DEFINE" ->
    (match next st with
     | Lexer.Keyword "CLASS" -> define_class st
     | Lexer.Keyword "CONCEPT" -> define_concept st
     | Lexer.Keyword "PROCESS" -> define_process st
     | t -> fail "expected CLASS, CONCEPT or PROCESS, found %s" (Lexer.token_to_string t))
  | Lexer.Keyword "INSERT" ->
    expect_kw st "INTO";
    let cls = ident st in
    expect st Lexer.Lparen "(";
    let values = ref [] in
    let pair () =
      let attr = ident st in
      expect st Lexer.Eq "=";
      values := (attr, expr st) :: !values
    in
    pair ();
    while accept st Lexer.Comma do
      pair ()
    done;
    expect st Lexer.Rparen ")";
    Insert { cls; values = List.rev !values }
  | Lexer.Keyword "SELECT" -> select st
  | Lexer.Keyword "DELETE" ->
    expect_kw st "FROM";
    let cls = ident st in
    let oid = int_lit st in
    Delete { cls; oid }
  | Lexer.Keyword "DERIVE" ->
    let cls = ident st in
    let at = if accept_kw st "AT" then Some (literal st) else None in
    let need = if accept_kw st "NEED" then Some (int_lit st) else None in
    Derive { cls; at; need }
  | Lexer.Keyword "SHOW" ->
    (match next st with
     | Lexer.Keyword "CLASSES" -> Show_classes
     | Lexer.Keyword "PROCESSES" -> Show_processes
     | Lexer.Keyword "CONCEPTS" -> Show_concepts
     | Lexer.Keyword "TASKS" -> Show_tasks
     | Lexer.Keyword "NET" -> Show_net
     | Lexer.Keyword "EVENTS" -> Show_events
     | Lexer.Keyword "STALE" -> Show_stale
     | Lexer.Keyword "CACHE" -> Show_cache
     | Lexer.Keyword "LINEAGE" -> Show_lineage (int_lit st)
     | Lexer.Keyword "PLAN" -> Show_plan (ident st)
     | Lexer.Keyword "VERSIONS" ->
       expect_kw st "OF";
       Show_versions (ident st)
     | Lexer.Keyword "OPERATORS" ->
       if accept_kw st "FOR" then Show_operators (Some (ident st))
       else Show_operators None
     | t -> fail "unknown SHOW target %s" (Lexer.token_to_string t))
  | Lexer.Keyword "VERIFY" ->
    if accept_kw st "TASK" then Verify_task (int_lit st)
    else Verify_object (int_lit st)
  | Lexer.Keyword "COMPARE" ->
    let a = int_lit st in
    let b = int_lit st in
    Compare (a, b)
  | Lexer.Keyword "BEGIN" ->
    expect_kw st "EXPERIMENT";
    Begin_experiment (ident st)
  | Lexer.Keyword "NOTE" ->
    let e = ident st in
    Note { experiment = e; text = string_lit st }
  | Lexer.Keyword "REPRODUCE" -> Reproduce (ident st)
  | Lexer.Keyword "REFRESH" ->
    if accept_kw st "ALL" then Refresh_all
    else begin
      let cls = ident st in
      let oid = int_lit st in
      Refresh_object { cls; oid }
    end
  | Lexer.Keyword "CHECK" ->
    if accept_kw st "ALL" then Check_all
    else begin
      expect_kw st "PROCESS";
      Check_process (ident st)
    end
  | t -> fail "unexpected %s at start of statement" (Lexer.token_to_string t)

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks ->
    let st = { toks } in
    (try
       let stmts = ref [] in
       while peek st <> Lexer.Eof do
         stmts := statement st :: !stmts;
         (* statements are ; separated; trailing ; optional before EOF *)
         if peek st <> Lexer.Eof then expect st Lexer.Semicolon ";"
         else ();
         (* swallow extra semicolons *)
         while accept st Lexer.Semicolon do
           ()
         done
       done;
       Ok (List.rev !stmts)
     with Syntax m -> Error (Gaea_error.Parse_error m))

let parse_one src =
  match parse src with
  | Error _ as e -> e
  | Ok [ s ] -> Ok s
  | Ok [] -> Error (Gaea_error.Parse_error "empty input")
  | Ok _ -> Error (Gaea_error.Parse_error "expected exactly one statement")
