(** Tokenizer for GaeaQL, the query language of the Fig 1 interpreter. *)

type token =
  | Ident of string       (** bare identifier (case preserved) *)
  | Keyword of string     (** recognized keyword, uppercased *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string  (** '...' or "..." *)
  | Param of string       (** $name *)
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Dot
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Star
  | Eof

val keywords : string list
(** All recognized keywords (uppercase). *)

val tokenize : string -> (token list, Gaea_core.Gaea_error.t) result
(** Comments run from [--] to end of line.  Identifiers matching a
    keyword (case-insensitive) become [Keyword]. *)

val token_to_string : token -> string
