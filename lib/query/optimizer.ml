module Gaea_error = Gaea_core.Gaea_error
module Value = Gaea_adt.Value
module Kernel = Gaea_core.Kernel
module Concept = Gaea_core.Concept
module Derivation = Gaea_core.Derivation
module Schema = Gaea_core.Schema
module Table = Gaea_storage.Table
module Stats = Gaea_storage.Stats
module Backchain = Gaea_petri.Backchain
module Abstime = Gaea_geo.Abstime
module Box = Gaea_geo.Box

let literal_value = function
  | Ast.L_int i -> Value.int i
  | Ast.L_float f -> Value.float f
  | Ast.L_string s -> Value.string s
  | Ast.L_bool b -> Value.bool b
  | Ast.L_date (y, m, d) -> Value.abstime (Abstime.of_ymd y m d)
  | Ast.L_box (xmin, ymin, xmax, ymax) ->
    Value.box (Box.make ~xmin ~ymin ~xmax ~ymax)

let resolve_source k source =
  match Kernel.find_class k source with
  | Some _ -> Ok [ source ]
  | None ->
    let concepts = Kernel.concepts k in
    if Concept.mem concepts source then begin
      match Concept.classes_of concepts source with
      | [] -> Gaea_error.err (Printf.sprintf "concept %s has no member classes" source)
      | classes -> Ok classes
    end
    else Gaea_error.err (Printf.sprintf "unknown class or concept %s" source)

(* pick the best indexable predicate on the (first) class *)
let choose_path k cls preds =
  match Kernel.class_table k cls with
  | None -> (Plan.Full_scan, preds, 1.0)
  | Some tab ->
    let stats = Stats.analyze_table tab in
    let candidates =
      List.filter_map
        (fun pred ->
          match pred with
          | Ast.P_compare (attr, Ast.C_eq, lit)
            when Table.has_hash_index tab attr
                 || Table.has_btree_index tab attr ->
            Some (pred, Plan.Index_eq (attr, literal_value lit),
                  Stats.selectivity_eq stats attr)
          | Ast.P_compare (attr, (Ast.C_lt | Ast.C_le), lit)
            when Table.has_btree_index tab attr ->
            Some (pred, Plan.Index_range (attr, None, Some (literal_value lit)), 0.3)
          | Ast.P_compare (attr, (Ast.C_gt | Ast.C_ge), lit)
            when Table.has_btree_index tab attr ->
            Some (pred, Plan.Index_range (attr, Some (literal_value lit), None), 0.3)
          | Ast.P_at (attr, lit) when Table.has_btree_index tab attr ->
            (* same-day window *)
            let v = literal_value lit in
            (match v with
             | Value.VAbstime t ->
               Some
                 ( pred,
                   Plan.Index_range
                     ( attr,
                       Some (Value.abstime (Abstime.add_days t (-1))),
                       Some (Value.abstime (Abstime.add_days t 1)) ),
                   0.1 )
             | _ -> None)
          | _ -> None)
        preds
    in
    (match
       List.sort (fun (_, _, s1) (_, _, s2) -> Float.compare s1 s2) candidates
     with
     | (chosen, path, sel) :: _ ->
       let residual = List.filter (fun p -> p != chosen) preds in
       (path, residual, sel)
     | [] -> (Plan.Full_scan, preds, 1.0))

let plan_select k (s : Ast.select) =
  match resolve_source k s.Ast.source with
  | Error _ as e -> e
  | Ok classes ->
    let first = List.hd classes in
    let path, residual, sel = choose_path k first s.Ast.where_ in
    let total_rows =
      List.fold_left
        (fun acc cls -> acc + Kernel.count_objects k cls)
        0 classes
    in
    let est_rows = float_of_int total_rows *. sel in
    let est_cost =
      match path with
      | Plan.Full_scan -> float_of_int total_rows
      | Plan.Index_eq _ | Plan.Index_range _ ->
        (* index probe + qualifying rows; other classes still scan *)
        est_rows +. 1.
        +. float_of_int (total_rows - Kernel.count_objects k first)
    in
    Ok { Plan.classes; path; residual; est_rows; est_cost }

let count_snapshots k cls =
  match Kernel.find_class k cls with
  | Some def ->
    (match def.Schema.temporal_attr with
     | Some tattr ->
       List.length
         (List.filter_map
            (fun oid ->
              match Kernel.object_attr k ~cls oid tattr with
              | Some (Value.VAbstime t) -> Some t
              | _ -> None)
            (Kernel.objects_of_class k cls)
          |> List.sort_uniq Abstime.compare)
     | None -> 0)
  | None -> 0

let plan_materialize k ?(need = 1) ?at cls =
  match Kernel.find_class k cls with
  | None -> Plan.Impossible (Printf.sprintf "unknown class %s" cls)
  | Some _ ->
    let stored = Kernel.count_objects k cls in
    if stored >= need && at = None then Plan.Stored stored
    else begin
      let interpolation =
        match at with
        | Some _ ->
          let snaps = count_snapshots k cls in
          if snaps >= 2 then Some (Plan.Interpolate { snapshots = snaps })
          else None
        | None -> None
      in
      match interpolation with
      | Some p -> p
      | None ->
        (match Derivation.derivation_plan k ~need cls with
         | Some plan ->
           Plan.Derive
             { firings = Backchain.cost plan; depth = Backchain.depth plan }
         | None ->
           if stored >= need then Plan.Stored stored
           else
             Plan.Impossible
               (Printf.sprintf "%s not derivable from current data" cls))
    end
