(** Recursive-descent parser for GaeaQL (the Parser box of Fig 1).

    Statement grammar (see README for the full reference):
    {v
    DEFINE CLASS name (attr type, ...) [SPATIAL a] [TEMPORAL a] [DERIVED BY p];
    DEFINE CONCEPT name [MEMBERS (c, ...)] [ISA super];
    DEFINE PROCESS name OUTPUT cls ARGS (a [SETOF] cls [CARD n[..m]], ...)
        [PARAM p = lit ...] [ASSERT assertion ...] MAP attr = expr ... END;
    INSERT INTO cls (attr = expr, ...);
    SELECT *|attrs FROM class-or-concept [WHERE pred AND ...]
        [ORDER BY attr [ASC|DESC]] [LIMIT n];
    DERIVE cls [AT date] [NEED n];
    SHOW CLASSES | PROCESSES | CONCEPTS | TASKS | NET | OPERATORS [FOR ty]
        | LINEAGE oid | PLAN cls | VERSIONS OF proc;
    VERIFY oid;  VERIFY TASK id;  COMPARE oid oid;
    BEGIN EXPERIMENT name;  NOTE name 'text';  REPRODUCE name;
    v}

    In [COMMON(arg.attr)] assertions the attribute decides the rule:
    ["timestamp"] (or any name containing "time") gives the temporal
    rule, anything else the spatial one. *)

val parse : string -> (Ast.statement list, Gaea_core.Gaea_error.t) result
(** Parse a whole script (statements separated by [;]). *)

val parse_one : string -> (Ast.statement, Gaea_core.Gaea_error.t) result
