(** Script / REPL driver over the interpreter pipeline
    (parse → plan → execute). *)

type t

val create : ?kernel:Gaea_core.Kernel.t -> unit -> t
val executor : t -> Executor.t
val kernel : t -> Gaea_core.Kernel.t

val run_string :
  t -> string -> (Executor.response list, Gaea_core.Gaea_error.t) result
(** Parse and execute a whole script; stops at the first error
    (statements already executed stay executed, like psql). *)

val run_string_partial :
  t -> string -> Executor.response list * Gaea_core.Gaea_error.t option
(** Like {!run_string} but also returns the responses of the
    statements that executed before the error — what the CLI needs to
    print partial output and still exit non-zero. *)

val run_string_collect : t -> string -> string
(** Like {!run_string} but renders every response (and any error) into
    one output string — what the CLI prints. *)
