(** Script / REPL driver over the interpreter pipeline
    (parse → plan → execute). *)

type t

val create : ?kernel:Gaea_core.Kernel.t -> unit -> t
val executor : t -> Executor.t
val kernel : t -> Gaea_core.Kernel.t

val run_string :
  t -> string -> (Executor.response list, string) result
(** Parse and execute a whole script; stops at the first error
    (statements already executed stay executed, like psql). *)

val run_string_collect : t -> string -> string
(** Like {!run_string} but renders every response (and any error) into
    one output string — what the CLI prints. *)
