(** Statement execution (the Executor box of Fig 1). *)

type t
(** A session: kernel + experiment manager + current experiment. *)

type response =
  | Message of string
  | Rows of {
      columns : string list;
      rows : (Gaea_storage.Oid.t * (string * Gaea_adt.Value.t) list) list;
    }

val create : ?kernel:Gaea_core.Kernel.t -> unit -> t
val kernel : t -> Gaea_core.Kernel.t
val experiments : t -> Gaea_core.Experiment.manager

val execute : t -> Ast.statement -> (response, Gaea_core.Gaea_error.t) result
(** DERIVE statements record their tasks into the current experiment
    (after BEGIN EXPERIMENT). *)

val format_response : response -> string
