type t = { executor : Executor.t }

let create ?kernel () = { executor = Executor.create ?kernel () }
let executor t = t.executor
let kernel t = Executor.kernel t.executor

let run_string t src =
  match Parser.parse src with
  | Error e -> Error ("parse error: " ^ e)
  | Ok stmts ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | stmt :: rest ->
        (match Executor.execute t.executor stmt with
         | Ok resp -> go (resp :: acc) rest
         | Error e ->
           Error
             (Printf.sprintf "%s: %s" (Ast.statement_to_string stmt) e))
    in
    go [] stmts

let run_string_collect t src =
  match run_string t src with
  | Error e -> "error: " ^ e
  | Ok responses ->
    String.concat "\n" (List.map Executor.format_response responses)
