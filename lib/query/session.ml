module Gaea_error = Gaea_core.Gaea_error

type t = { executor : Executor.t }

let create ?kernel () = { executor = Executor.create ?kernel () }
let executor t = t.executor
let kernel t = Executor.kernel t.executor

let run_string_partial t src =
  match Parser.parse src with
  | Error e -> ([], Some (Gaea_error.Context ("parse error", e)))
  | Ok stmts ->
    let rec go acc = function
      | [] -> (List.rev acc, None)
      | stmt :: rest ->
        (match Executor.execute t.executor stmt with
         | Ok resp -> go (resp :: acc) rest
         | Error e ->
           ( List.rev acc,
             Some (Gaea_error.Context (Ast.statement_to_string stmt, e)) ))
    in
    go [] stmts

let run_string t src =
  match run_string_partial t src with
  | responses, None -> Ok responses
  | _, Some e -> Error e

let run_string_collect t src =
  match run_string t src with
  | Error e -> "error: " ^ Gaea_error.to_string e
  | Ok responses ->
    String.concat "\n" (List.map Executor.format_response responses)
