(** Abstract syntax of GaeaQL. *)

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_date of int * int * int          (** DATE 'YYYY-MM-DD' or bare string *)
  | L_box of float * float * float * float

type expr =
  | E_lit of literal
  | E_attr of string * string          (** arg.attr *)
  | E_param of string                  (** $p *)
  | E_anyof of expr
  | E_apply of string * expr list

type comparison = C_eq | C_neq | C_lt | C_le | C_gt | C_ge

type predicate =
  | P_compare of string * comparison * literal   (** attr <op> literal *)
  | P_overlaps of string * literal               (** attr OVERLAPS box *)
  | P_at of string * literal                     (** attr AT date (same day) *)

type order = Asc | Desc

type select = {
  projection : string list;            (** [] = all attributes *)
  source : string;                     (** class or concept name *)
  where_ : predicate list;             (** implicitly ANDed *)
  order_by : (string * order) option;
  limit : int option;
}

type assertion_syntax =
  | A_expr of expr
  | A_card_eq of string * int
  | A_card_ge of string * int
  | A_common_space of string           (** COMMON(arg.spatialextent) *)
  | A_common_time of string

type arg_syntax = {
  sa_name : string;
  sa_setof : bool;
  sa_class : string;
  sa_card : (int * int option) option; (** CARD n or CARD n..m *)
}

type step_input_syntax =
  | SI_arg of string                   (** a compound argument name *)
  | SI_step of int                     (** STEP n (1-based): an earlier
                                           step's output *)

type step_syntax = {
  ss_process : string;
  ss_inputs : (string * step_input_syntax) list;
}

type statement =
  | Define_class of {
      name : string;
      attrs : (string * string) list;  (** attr, type name *)
      spatial : string option;
      temporal : string option;
      derived_by : string option;
    }
  | Define_concept of {
      name : string;
      members : string list;
      isa : string option;
    }
  | Define_process of {
      name : string;
      output : string;
      args : arg_syntax list;
      params : (string * literal) list;
      assertions : assertion_syntax list;
      mappings : (string * expr) list;
      steps : step_syntax list;
          (** non-empty makes the process compound; mutually exclusive
              with params/assertions/mappings (enforced by the parser) *)
    }
  | Insert of { cls : string; values : (string * expr) list }
  | Delete of { cls : string; oid : int }
  | Select of select
  | Derive of { cls : string; at : literal option; need : int option }
  | Show_lineage of int
  | Show_classes
  | Show_processes
  | Show_versions of string
  | Show_concepts
  | Show_tasks
  | Show_operators of string option    (** FOR <type> *)
  | Show_plan of string
  | Show_net
  | Show_events
  | Show_stale                         (** SHOW STALE: the dirty set *)
  | Show_cache                         (** SHOW CACHE: bounded-cache stats *)
  | Refresh_all                        (** REFRESH ALL *)
  | Refresh_object of { cls : string; oid : int }  (** REFRESH <cls> <oid> *)
  | Verify_object of int
  | Verify_task of int
  | Compare of int * int
  | Begin_experiment of string
  | Note of { experiment : string; text : string }
  | Reproduce of string
  | Check_process of string            (** CHECK PROCESS <name> *)
  | Check_all                          (** CHECK ALL *)

val statement_to_string : statement -> string
(** Short description for echoing, not a full pretty-printer. *)
