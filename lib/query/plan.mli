(** Physical plans (the Optimizer box of Fig 1).

    Two planning problems exist in Gaea: how to {e scan} stored objects
    (classic access-path selection) and how to {e materialize} missing
    derived data (retrieval vs interpolation vs derivation,
    Section 2.1.5 — "steps 2 and 3 are prioritized according to the
    user's needs"). *)

type access_path =
  | Index_eq of string * Gaea_adt.Value.t
  | Index_range of string * Gaea_adt.Value.t option * Gaea_adt.Value.t option
  | Full_scan

type select_plan = {
  classes : string list;          (** concept sources expand to members *)
  path : access_path;             (** for the first class; others scan *)
  residual : Ast.predicate list;  (** re-checked on every row *)
  est_rows : float;
  est_cost : float;               (** abstract row-touch units *)
}

type materialize_plan =
  | Stored of int                        (** enough objects already stored *)
  | Interpolate of { snapshots : int }   (** temporal interpolation *)
  | Derive of { firings : int; depth : int }
  | Impossible of string

val pp_access_path : Format.formatter -> access_path -> unit
val pp_select_plan : Format.formatter -> select_plan -> unit
val pp_materialize_plan : Format.formatter -> materialize_plan -> unit
val materialize_cost : pixels_per_object:float -> materialize_plan -> float
(** Abstract cost: retrieval ~ 1, interpolation ~ pixels, derivation ~
    firings × pixels. *)
