(** Access-path and materialization planning. *)

val literal_value : Ast.literal -> Gaea_adt.Value.t
(** Dates become [VAbstime] (midnight), boxes [VBox]. *)

val plan_select :
  Gaea_core.Kernel.t -> Ast.select -> (Plan.select_plan, Gaea_core.Gaea_error.t) result
(** Resolves the source (class name, or concept name expanding to its
    classes), picks the cheapest access path using table statistics and
    available indexes, and leaves the remaining predicates residual. *)

val plan_materialize :
  Gaea_core.Kernel.t -> ?need:int -> ?at:Gaea_geo.Abstime.t -> string
  -> Plan.materialize_plan
(** What DERIVE would do for the class: stored objects, interpolation
    (only when [at] is given and two snapshots bracket it), or a
    backward-chaining derivation (cost and depth from the net), in the
    paper's priority order. *)
