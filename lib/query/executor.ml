module Gaea_error = Gaea_core.Gaea_error
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype
module Registry = Gaea_adt.Registry
module Operator = Gaea_adt.Operator
module Kernel = Gaea_core.Kernel
module Schema = Gaea_core.Schema
module Concept = Gaea_core.Concept
module Process = Gaea_core.Process
module Template = Gaea_core.Template
module Task = Gaea_core.Task
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Experiment = Gaea_core.Experiment
module Events = Gaea_core.Events
module Table = Gaea_storage.Table
module Tuple = Gaea_storage.Tuple
module Vorder = Gaea_storage.Vorder
module Oid = Gaea_storage.Oid
module Abstime = Gaea_geo.Abstime
module Box = Gaea_geo.Box
module Dot = Gaea_petri.Dot
module Backchain = Gaea_petri.Backchain

type t = {
  kernel : Kernel.t;
  experiments : Experiment.manager;
  mutable current_experiment : string option;
}

type response =
  | Message of string
  | Rows of {
      columns : string list;
      rows : (Oid.t * (string * Value.t) list) list;
    }

let create ?kernel () =
  { kernel = Option.value kernel ~default:(Kernel.create ());
    experiments = Experiment.create_manager ();
    current_experiment = None }

let kernel t = t.kernel
let experiments t = t.experiments

let ( let* ) r f = Result.bind r f

(* ------------------------------------------------------------------ *)
(* AST -> core conversions                                             *)
(* ------------------------------------------------------------------ *)

let rec expr_to_template : Ast.expr -> Template.expr = function
  | Ast.E_lit l -> Template.Const (Optimizer.literal_value l)
  | Ast.E_attr (arg, attr) -> Template.Attr_of (arg, attr)
  | Ast.E_param p -> Template.Param p
  | Ast.E_anyof e -> Template.Anyof (expr_to_template e)
  | Ast.E_apply (op, args) ->
    Template.Apply (op, List.map expr_to_template args)

let assertion_to_template : Ast.assertion_syntax -> Template.assertion =
  function
  | Ast.A_expr e -> Template.Expr_true (expr_to_template e)
  | Ast.A_card_eq (arg, n) -> Template.Card_eq (arg, n)
  | Ast.A_card_ge (arg, n) -> Template.Card_ge (arg, n)
  | Ast.A_common_space arg -> Template.Common_space arg
  | Ast.A_common_time arg -> Template.Common_time arg

(* evaluate an expression with no argument bindings (INSERT values) *)
let eval_standalone t expr =
  let reg = Kernel.registry t.kernel in
  let env =
    { Template.arg_objects = (fun _ -> None);
      attr_value = (fun a _ _ -> Gaea_error.err ("no argument " ^ a ^ " in this context"));
      spatial_attr = (fun _ -> None);
      temporal_attr = (fun _ -> None);
      param = (fun _ -> None);
      apply =
        (fun op args ->
          match Registry.apply reg op args with
          | Ok v -> Ok v
          | Error e -> Error (Gaea_error.Eval_error e));
      arity =
        (fun op ->
          Option.map
            (fun o ->
              match (Operator.signature o).Operator.variadic with
              | Some _ -> `Variadic
              | None ->
                `Fixed (List.length (Operator.signature o).Operator.params))
            (Registry.find_operator reg op)) }
  in
  Template.eval env (expr_to_template expr)

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let compare_matches cmp c =
  match cmp with
  | Ast.C_eq -> c = 0
  | Ast.C_neq -> c <> 0
  | Ast.C_lt -> c < 0
  | Ast.C_le -> c <= 0
  | Ast.C_gt -> c > 0
  | Ast.C_ge -> c >= 0

let eval_predicate t ~cls oid pred =
  let attr_of = function
    | Ast.P_compare (a, _, _) | Ast.P_overlaps (a, _) | Ast.P_at (a, _) -> a
  in
  match Kernel.object_attr t.kernel ~cls oid (attr_of pred) with
  | None -> false
  | Some v ->
    (match pred with
     | Ast.P_compare (_, cmp, lit) ->
       let lv = Optimizer.literal_value lit in
       (match cmp, v, lv with
        | Ast.C_eq, _, _ when not (Vorder.orderable (Value.type_of v)) ->
          Value.equal v lv
        | Ast.C_neq, _, _ when not (Vorder.orderable (Value.type_of v)) ->
          not (Value.equal v lv)
        | _ ->
          (match Vorder.compare v lv with
           | Ok c -> compare_matches cmp c
           | Error _ -> false))
     | Ast.P_overlaps (_, lit) ->
       (match v, Optimizer.literal_value lit with
        | Value.VBox b1, Value.VBox b2 -> Box.overlaps b1 b2
        | _ -> false)
     | Ast.P_at (_, lit) ->
       (match v, Optimizer.literal_value lit with
        | Value.VAbstime tv, Value.VAbstime target ->
          Float.abs (Abstime.diff_days tv target) <= 1.0
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

let row_of t ~cls ~projection oid =
  match Kernel.find_class t.kernel cls with
  | None -> (oid, [])
  | Some def ->
    let attrs =
      match projection with
      | [] -> Schema.attr_names def
      | cols -> cols
    in
    ( oid,
      List.filter_map
        (fun attr ->
          Option.map
            (fun v -> (attr, v))
            (Kernel.object_attr t.kernel ~cls oid attr))
        attrs )

let execute_select t (s : Ast.select) =
  let* plan = Optimizer.plan_select t.kernel s in
  let first = List.hd plan.Plan.classes in
  let rest = List.tl plan.Plan.classes in
  (* first class: use the chosen access path *)
  let first_oids =
    match Kernel.class_table t.kernel first with
    | None -> []
    | Some tab ->
      (match plan.Plan.path with
       | Plan.Index_eq (attr, v) -> List.map fst (Table.lookup_eq tab attr v)
       | Plan.Index_range (attr, lo, hi) ->
         List.map fst (Table.lookup_range tab attr ?lo ?hi ())
       | Plan.Full_scan ->
         List.rev (Table.fold tab ~init:[] ~f:(fun acc oid _ -> oid :: acc)))
  in
  let first_rows =
    List.filter_map
      (fun oid ->
        if
          List.for_all
            (eval_predicate t ~cls:first oid)
            plan.Plan.residual
        then Some (first, oid)
        else None)
      first_oids
  in
  (* remaining concept members: scan with all predicates *)
  let other_rows =
    List.concat_map
      (fun cls ->
        List.filter_map
          (fun oid ->
            if List.for_all (eval_predicate t ~cls oid) s.Ast.where_ then
              Some (cls, oid)
            else None)
          (Kernel.objects_of_class t.kernel cls))
      rest
  in
  let rows =
    List.map
      (fun (cls, oid) -> row_of t ~cls ~projection:s.Ast.projection oid)
      (first_rows @ other_rows)
  in
  let rows =
    match s.Ast.order_by with
    | None -> rows
    | Some (attr, dir) ->
      let key (_, pairs) = List.assoc_opt attr pairs in
      List.stable_sort
        (fun a b ->
          let c =
            match key a, key b with
            | Some x, Some y ->
              (match Vorder.compare x y with Ok c -> c | Error _ -> 0)
            | Some _, None -> -1
            | None, Some _ -> 1
            | None, None -> 0
          in
          match dir with
          | Ast.Asc -> c
          | Ast.Desc -> -c)
        rows
  in
  let rows =
    match s.Ast.limit with
    | Some n -> List.filteri (fun i _ -> i < n) rows
    | None -> rows
  in
  let columns =
    match s.Ast.projection with
    | [] ->
      (match Kernel.find_class t.kernel first with
       | Some def -> Schema.attr_names def
       | None -> [])
    | cols -> cols
  in
  Ok (Rows { columns; rows })

(* ------------------------------------------------------------------ *)
(* Statement dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let record_tasks_in_experiment t tasks =
  match t.current_experiment with
  | None -> ()
  | Some e ->
    List.iter
      (fun task ->
        ignore
          (Experiment.record_task t.experiments ~experiment:e
             task.Task.task_id))
      tasks

let outcome_message outcome =
  let trace =
    List.map
      (function
        | Derivation.Retrieved_direct (cls, oids) ->
          Printf.sprintf "retrieved %d stored object(s) of %s"
            (List.length oids) cls
        | Derivation.Interpolated (cls, oid) ->
          Printf.sprintf "interpolated object %d of %s" oid cls
        | Derivation.Fired (p, v, id) ->
          Printf.sprintf "fired %s v%d (task #%d)" p v id)
      outcome.Derivation.trace
  in
  Printf.sprintf "objects: [%s]\n%s"
    (String.concat ", "
       (List.map string_of_int outcome.Derivation.objects))
    (String.concat "\n" trace)

let render_refresh (r : Kernel.refresh_report) =
  let skipped =
    match r.Kernel.skip_reasons with
    | [] -> ""
    | rs ->
      "\nskipped:\n"
      ^ String.concat "\n"
          (List.map (fun (oid, why) -> Printf.sprintf "  #%d: %s" oid why) rs)
  in
  Printf.sprintf "refreshed %d object(s) (%d task(s)), %d left stale%s"
    r.Kernel.refreshed
    (List.length r.Kernel.tasks)
    r.Kernel.remaining skipped

let execute t stmt =
  match stmt with
  | Ast.Define_class { name; attrs; spatial; temporal; derived_by } ->
    let* typed_attrs =
      List.fold_left
        (fun acc (a, tyname) ->
          let* acc = acc in
          match Vtype.of_string tyname with
          | Some ty -> Ok ((a, ty) :: acc)
          | None -> Gaea_error.err (Printf.sprintf "unknown type %s" tyname))
        (Ok []) attrs
    in
    let* def =
      Schema.define ~name ~attributes:(List.rev typed_attrs) ?spatial
        ?temporal ?derived_by ()
    in
    let* () = Kernel.define_class t.kernel def in
    (* index the temporal extent so AT queries use a range probe *)
    (match def.Schema.temporal_attr, Kernel.class_table t.kernel name with
     | Some tattr, Some tab -> ignore (Table.create_btree_index tab tattr)
     | _ -> ());
    Ok (Message (Printf.sprintf "class %s defined" name))
  | Ast.Define_concept { name; members; isa } ->
    let concepts = Kernel.concepts t.kernel in
    let* _ = Concept.define concepts ~name ~members () in
    let* () =
      match isa with
      | Some super -> Concept.add_isa concepts ~sub:name ~super
      | None -> Ok ()
    in
    Ok (Message (Printf.sprintf "concept %s defined" name))
  | Ast.Define_process { name; output; args; params; assertions; mappings; steps }
    ->
    let spec_of (a : Ast.arg_syntax) =
      if a.Ast.sa_setof then begin
        let card_min, card_max =
          match a.Ast.sa_card with
          | Some (lo, hi) -> (lo, hi)
          | None -> (1, None)
        in
        Process.setof_arg ~card_min ?card_max a.Ast.sa_name a.Ast.sa_class
      end
      else Process.scalar_arg a.Ast.sa_name a.Ast.sa_class
    in
    let* proc =
      if steps <> [] then begin
        let step_of (s : Ast.step_syntax) =
          { Process.step_process = s.Ast.ss_process;
            step_inputs =
              List.map
                (fun (an, si) ->
                  ( an,
                    match si with
                    | Ast.SI_arg a -> Process.From_arg a
                    (* surface STEP n is 1-based; the core is 0-based *)
                    | Ast.SI_step i -> Process.From_step (i - 1) ))
                s.Ast.ss_inputs }
        in
        Process.define_compound ~name ~output_class:output
          ~args:(List.map spec_of args)
          ~steps:(List.map step_of steps) ()
      end
      else begin
        let template =
          Template.make
            ~assertions:(List.map assertion_to_template assertions)
            ~mappings:
              (List.map
                 (fun (target, e) ->
                   { Template.target; rhs = expr_to_template e })
                 mappings)
        in
        Process.define_primitive ~name ~output_class:output
          ~args:(List.map spec_of args)
          ~params:
            (List.map (fun (p, l) -> (p, Optimizer.literal_value l)) params)
          ~template ()
      end
    in
    (* re-defining an existing name never overwrites (paper Section 3):
       the new definition is installed as the next version *)
    let proc =
      match Kernel.find_process t.kernel name with
      | Some prev ->
        Process.with_version ~derived_from:(Process.key prev) proc
          (prev.Process.version + 1)
      | None -> proc
    in
    let* () = Kernel.define_process t.kernel proc in
    Ok (Message (Printf.sprintf "process %s v%d defined" name proc.Process.version))
  | Ast.Insert { cls; values } ->
    let* pairs =
      List.fold_left
        (fun acc (attr, e) ->
          let* acc = acc in
          let* v = eval_standalone t e in
          Ok ((attr, v) :: acc))
        (Ok []) values
    in
    let* oid = Kernel.insert_object t.kernel ~cls (List.rev pairs) in
    Ok (Message (Printf.sprintf "object %d inserted into %s" oid cls))
  | Ast.Delete { cls; oid } ->
    let* () = Kernel.delete_object t.kernel ~cls oid in
    Ok (Message (Printf.sprintf "object %d deleted from %s" oid cls))
  | Ast.Select s -> execute_select t s
  | Ast.Derive { cls; at; need } ->
    (* DERIVE on a concept resolves through the high-level layer: pick
       the member class with the cheapest materialization (Section
       2.1.5: "the user will select and query reproducible or
       precomputed instances") *)
    let* cls =
      match Kernel.find_class t.kernel cls with
      | Some _ -> Ok cls
      | None ->
        let concepts = Kernel.concepts t.kernel in
        if Concept.mem concepts cls then begin
          let members = Concept.classes_of concepts cls in
          let scored =
            List.filter_map
              (fun c ->
                let plan = Optimizer.plan_materialize t.kernel c in
                match plan with
                | Plan.Impossible _ -> None
                | p -> Some (c, Plan.materialize_cost ~pixels_per_object:1. p))
              members
          in
          match List.sort (fun (_, a) (_, b) -> Float.compare a b) scored with
          | (best, _) :: _ -> Ok best
          | [] ->
            Gaea_error.err
              (Printf.sprintf
                 "no class realizing concept %s is derivable from current data"
                 cls)
        end
        else Gaea_error.err (Printf.sprintf "unknown class or concept %s" cls)
    in
    let* outcome =
      match at with
      | Some lit ->
        (match Optimizer.literal_value lit with
         | Value.VAbstime target ->
           Derivation.request_at t.kernel ~cls ~at:target ()
         | _ -> Gaea_error.err "DERIVE ... AT expects a date")
      | None -> Derivation.request t.kernel ?need cls
    in
    record_tasks_in_experiment t outcome.Derivation.new_tasks;
    Ok (Message (outcome_message outcome))
  | Ast.Show_lineage oid ->
    (match Kernel.class_of_object t.kernel oid with
     | None -> Gaea_error.err (Printf.sprintf "no object %d" oid)
     | Some _ -> Ok (Message (Lineage.explain t.kernel oid)))
  | Ast.Show_classes ->
    Ok
      (Message
         (String.concat "\n"
            (List.map
               (fun c -> Format.asprintf "%a" Schema.pp c)
               (Kernel.classes t.kernel))))
  | Ast.Show_processes ->
    Ok
      (Message
         (String.concat "\n"
            (List.map
               (fun p -> Format.asprintf "%a" Process.pp p)
               (Kernel.processes t.kernel))))
  | Ast.Show_versions name ->
    (match Kernel.process_versions t.kernel name with
     | [] -> Gaea_error.err (Printf.sprintf "unknown process %s" name)
     | vs ->
       Ok
         (Message
            (String.concat "\n"
               (List.map (fun p -> Format.asprintf "%a" Process.pp p) vs))))
  | Ast.Show_concepts ->
    let concepts = Kernel.concepts t.kernel in
    Ok
      (Message
         (String.concat "\n"
            (List.map
               (fun c ->
                 Printf.sprintf "%s -> {%s}%s" c.Concept.name
                   (String.concat ", " c.Concept.members)
                   (match Concept.parents concepts c.Concept.name with
                    | [] -> ""
                    | ps -> " ISA " ^ String.concat ", " ps))
               (Concept.all concepts))))
  | Ast.Show_tasks ->
    Ok
      (Message
         (String.concat "\n"
            (List.map
               (fun task -> Format.asprintf "%a" Task.pp task)
               (Kernel.tasks t.kernel))))
  | Ast.Show_operators ty ->
    let reg = Kernel.registry t.kernel in
    let ops =
      match ty with
      | None -> Registry.all_operators reg
      | Some tyname ->
        (match Vtype.of_string tyname with
         | Some vt -> Registry.operators_for_type reg vt
         | None -> [])
    in
    Ok
      (Message
         (String.concat "\n"
            (List.map (fun o -> Format.asprintf "%a" Operator.pp o) ops)))
  | Ast.Show_plan cls ->
    let mplan = Optimizer.plan_materialize t.kernel cls in
    let detail =
      match Derivation.derivation_plan t.kernel cls with
      | Some p when mplan <> Plan.Stored 0 ->
        let view = Kernel.derivation_net t.kernel in
        "\n"
        ^ Format.asprintf "%a"
            (Backchain.pp
               ~place_name:(fun pl ->
                 Option.value ~default:"?" (view.Kernel.class_of_place pl))
               ~transition_name:(fun tr ->
                 match view.Kernel.process_of_transition tr with
                 | Some (n, v) -> Printf.sprintf "%s v%d" n v
                 | None -> "?"))
            p
      | _ -> ""
    in
    Ok
      (Message
         (Format.asprintf "%a%s" Plan.pp_materialize_plan mplan detail))
  | Ast.Show_net ->
    let view = Kernel.derivation_net t.kernel in
    Ok
      (Message
         (Dot.to_dot ~name:"gaea-derivation"
            ~marking:(Kernel.current_marking t.kernel)
            view.Kernel.net))
  | Ast.Show_events ->
    let entries = Kernel.event_log t.kernel in
    let lines =
      List.map
        (fun (seq, ev) ->
          Printf.sprintf "%6d  %s" seq (Kernel.Events.event_to_string ev))
        entries
    in
    Ok
      (Message
         (Printf.sprintf "event log (%d retained of %d emitted):\n%s"
            (List.length entries)
            (Events.seen (Kernel.bus t.kernel))
            (String.concat "\n" lines)))
  | Ast.Verify_object oid ->
    let* ok = Lineage.verify_object t.kernel oid in
    Ok
      (Message
         (if ok then Printf.sprintf "object %d reproduces exactly" oid
          else Printf.sprintf "object %d DOES NOT reproduce" oid))
  | Ast.Verify_task id ->
    (match Kernel.find_task t.kernel id with
     | None -> Gaea_error.err (Printf.sprintf "no task #%d" id)
     | Some task ->
       let* ok = Lineage.verify_task t.kernel task in
       Ok
         (Message
            (if ok then Printf.sprintf "task #%d reproduces exactly" id
             else Printf.sprintf "task #%d DOES NOT reproduce" id)))
  | Ast.Compare (a, b) ->
    Ok (Message (Lineage.compare_derivations t.kernel a b))
  | Ast.Begin_experiment name ->
    let* () =
      match Experiment.find t.experiments name with
      | Some _ -> Ok () (* resume *)
      | None -> Experiment.begin_experiment t.experiments ~name ()
    in
    t.current_experiment <- Some name;
    Ok (Message (Printf.sprintf "experiment %s active" name))
  | Ast.Note { experiment; text } ->
    let* () = Experiment.add_note t.experiments ~experiment text in
    Ok (Message "noted")
  | Ast.Reproduce name ->
    let* r = Experiment.reproduce t.experiments t.kernel ~experiment:name in
    Ok
      (Message
         (Printf.sprintf "%d/%d task(s) reproduce exactly%s"
            r.Experiment.reproduced r.Experiment.total
            (match r.Experiment.failures with
             | [] -> ""
             | fs ->
               "\nfailures:\n"
               ^ String.concat "\n"
                   (List.map
                      (fun (id, why) -> Printf.sprintf "  #%d: %s" id why)
                      fs))))
  | Ast.Check_process name -> (
    match Kernel.find_process t.kernel name with
    | None -> Error (Gaea_error.Unknown_process { name; version = None })
    | Some p ->
      Ok
        (Message
           (Gaea_analysis.Diagnostic.render
              (Gaea_analysis.Analysis.check_process t.kernel p))))
  | Ast.Check_all ->
    Ok
      (Message
         (Gaea_analysis.Diagnostic.render
            (Gaea_analysis.Analysis.check_kernel t.kernel)))
  | Ast.Show_stale ->
    let stale = Kernel.stale_objects t.kernel in
    let lines =
      List.map
        (fun oid ->
          let cls =
            Option.value ~default:"?" (Kernel.class_of_object t.kernel oid)
          in
          let by =
            match Kernel.task_producing t.kernel oid with
            | Some task ->
              Printf.sprintf "%s v%d (task #%d)" task.Task.process
                task.Task.process_version task.Task.task_id
            | None -> "?"
          in
          Printf.sprintf "  #%d %s, derived by %s" oid cls by)
        stale
    in
    Ok
      (Message
         (Printf.sprintf "%d stale object(s)%s" (List.length stale)
            (match lines with
             | [] -> ""
             | _ -> ":\n" ^ String.concat "\n" lines)))
  | Ast.Show_cache ->
    let st = Kernel.cache_stats t.kernel in
    Ok
      (Message
         (Printf.sprintf
            "result cache: %d entry(ies), %d/%d bytes resident\n\
             hits %d, misses %d, invalidations %d, admissions %d, evictions %d"
            st.Kernel.entries st.Kernel.resident_bytes st.Kernel.budget_bytes
            st.Kernel.hits st.Kernel.misses st.Kernel.invalidations
            st.Kernel.admissions st.Kernel.evictions))
  | Ast.Refresh_all ->
    let r = Kernel.refresh_stale t.kernel in
    Ok (Message (render_refresh r))
  | Ast.Refresh_object { cls; oid } ->
    (match Kernel.class_of_object t.kernel oid with
     | None -> Error (Gaea_error.Unknown_object oid)
     | Some actual when actual <> cls ->
       Error (Gaea_error.Wrong_class { oid; cls })
     | Some _ ->
       if not (Kernel.object_stale t.kernel oid) then
         Ok (Message (Printf.sprintf "object %d of %s is fresh" oid cls))
       else begin
         let r = Kernel.refresh_stale ~only:[ oid ] t.kernel in
         Ok (Message (render_refresh r))
       end)

let format_response = function
  | Message m -> m
  | Rows { columns; rows } ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf ("oid | " ^ String.concat " | " columns ^ "\n");
    List.iter
      (fun (oid, pairs) ->
        Buffer.add_string buf (string_of_int oid);
        List.iter
          (fun col ->
            Buffer.add_string buf " | ";
            Buffer.add_string buf
              (match List.assoc_opt col pairs with
               | Some v -> Value.to_display v
               | None -> "-"))
          columns;
        Buffer.add_char buf '\n')
      rows;
    Buffer.add_string buf (Printf.sprintf "(%d row(s))" (List.length rows));
    Buffer.contents buf
