module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype

type descriptor = {
  names : string array;
  types : Vtype.t array;
  index : (string, int) Hashtbl.t;
}

let descriptor attrs =
  if attrs = [] then Error "descriptor: no attributes"
  else begin
    let index = Hashtbl.create 8 in
    let rec check i = function
      | [] -> Ok ()
      | (name, _) :: rest ->
        if name = "" then Error "descriptor: empty attribute name"
        else if Hashtbl.mem index name then
          Error (Printf.sprintf "descriptor: duplicate attribute %s" name)
        else begin
          Hashtbl.add index name i;
          check (i + 1) rest
        end
    in
    match check 0 attrs with
    | Error _ as e -> e
    | Ok () ->
      Ok
        { names = Array.of_list (List.map fst attrs);
          types = Array.of_list (List.map snd attrs);
          index }
  end

let attrs d =
  Array.to_list (Array.mapi (fun i n -> (n, d.types.(i))) d.names)

let arity d = Array.length d.names
let attr_index d name = Hashtbl.find_opt d.index name

let attr_type d name =
  Option.map (fun i -> d.types.(i)) (attr_index d name)

let descriptor_equal a b =
  a.names = b.names && Array.for_all2 Vtype.equal a.types b.types

type t = Value.t array

let coerce expected v =
  match expected, v with
  | Vtype.Float, Value.VInt i -> Some (Value.float (float_of_int i))
  | _ ->
    if Vtype.matches ~expected ~actual:(Value.type_of v) then Some v else None

let make d values =
  let n = List.length values in
  if n <> arity d then
    Error (Printf.sprintf "tuple: %d values for %d attributes" n (arity d))
  else begin
    let arr = Array.of_list values in
    let rec check i =
      if i >= arity d then Ok (Array.copy arr)
      else
        match coerce d.types.(i) arr.(i) with
        | Some v ->
          arr.(i) <- v;
          check (i + 1)
        | None ->
          Error
            (Printf.sprintf "tuple: attribute %s expects %s, got %s"
               d.names.(i)
               (Vtype.to_string d.types.(i))
               (Vtype.to_string (Value.type_of arr.(i))))
    in
    check 0
  end

let get t i =
  if i < 0 || i >= Array.length t then
    invalid_arg (Printf.sprintf "Tuple.get: index %d" i);
  t.(i)

let get_by_name t d name =
  match attr_index d name with
  | Some i -> Ok t.(i)
  | None -> Error (Printf.sprintf "tuple: no attribute %s" name)

let values t = Array.to_list t

let with_value t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let content_hash t =
  Array.fold_left
    (fun acc v -> (acc * 1000003) lxor Value.content_hash v)
    (Array.length t) t

let pp d fmt t =
  Format.fprintf fmt "@[<h>(";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s=%s" d.names.(i) (Value.to_display v))
    t;
  Format.fprintf fmt ")@]"
