module Value = Gaea_adt.Value

type column_stats = {
  attr : string;
  n_distinct : int;
  n_null : int;
  min_value : Value.t option;
  max_value : Value.t option;
}

type table_stats = {
  table : string;
  n_rows : int;
  columns : column_stats list;
}

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.content_hash
end)

let analyze_table tab =
  let desc = Table.descriptor tab in
  let attrs = Tuple.attrs desc in
  let per_col =
    List.mapi
      (fun i (name, ty) -> (i, name, ty, VTbl.create 64, ref None, ref None))
      attrs
  in
  Table.scan tab (fun _ tuple ->
      List.iter
        (fun (i, _, _, distinct, vmin, vmax) ->
          let v = Tuple.get tuple i in
          if not (VTbl.mem distinct v) then VTbl.add distinct v ();
          if Vorder.orderable (Value.type_of v) then begin
            (match !vmin with
             | None -> vmin := Some v
             | Some m ->
               (match Vorder.compare v m with
                | Ok c when c < 0 -> vmin := Some v
                | _ -> ()));
            match !vmax with
            | None -> vmax := Some v
            | Some m ->
              (match Vorder.compare v m with
               | Ok c when c > 0 -> vmax := Some v
               | _ -> ())
          end)
        per_col);
  { table = Table.name tab;
    n_rows = Table.row_count tab;
    columns =
      List.map
        (fun (_, name, _, distinct, vmin, vmax) ->
          { attr = name;
            n_distinct = VTbl.length distinct;
            n_null = 0;
            min_value = !vmin;
            max_value = !vmax })
        per_col }

let selectivity_eq stats attr =
  match List.find_opt (fun c -> c.attr = attr) stats.columns with
  | Some c when c.n_distinct > 0 -> 1. /. float_of_int c.n_distinct
  | _ -> 0.1

let pp fmt s =
  Format.fprintf fmt "@[<v>table %s: %d rows" s.table s.n_rows;
  List.iter
    (fun c ->
      Format.fprintf fmt "@   %s: %d distinct%s" c.attr c.n_distinct
        (match c.min_value, c.max_value with
         | Some lo, Some hi ->
           Printf.sprintf " [%s .. %s]" (Value.to_display lo)
             (Value.to_display hi)
         | _ -> ""))
    s.columns;
  Format.fprintf fmt "@]"
