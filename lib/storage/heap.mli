(** Append-only heap storage for one table: a growable array of
    OID-addressed slots with tombstone deletion. *)

type t

val create : unit -> t
val insert : t -> Oid.t -> Tuple.t -> (unit, string) result
(** Errors on a duplicate OID. *)

val delete : t -> Oid.t -> bool
(** True if the OID was live. *)

val replace : t -> Oid.t -> Tuple.t -> (unit, string) result
(** Overwrite a live tuple in its slot — same OID, same insertion
    position.  Errors on an absent or tombstoned OID (a tombstone keeps
    its slot, so delete-then-insert cannot reuse the OID; updates must
    go through here). *)

val get : t -> Oid.t -> Tuple.t option
(** [None] when absent or deleted. *)

val mem : t -> Oid.t -> bool
val length : t -> int
(** Live tuples. *)

val allocated : t -> int
(** Including tombstones. *)

val scan : t -> (Oid.t -> Tuple.t -> unit) -> unit
(** Live tuples, insertion order. *)

val fold : t -> init:'a -> f:('a -> Oid.t -> Tuple.t -> 'a) -> 'a
val find : t -> (Oid.t -> Tuple.t -> bool) -> (Oid.t * Tuple.t) option
val to_list : t -> (Oid.t * Tuple.t) list
