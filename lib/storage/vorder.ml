module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype

let orderable = function
  | Vtype.Int | Vtype.Float | Vtype.String | Vtype.Bool | Vtype.Abstime ->
    true
  | Vtype.Composite | Vtype.Image | Vtype.Matrix | Vtype.Vector | Vtype.Box
  | Vtype.Interval | Vtype.Setof _ | Vtype.Any -> false

let compare a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> Ok (Int.compare x y)
  | Value.VFloat x, Value.VFloat y -> Ok (Float.compare x y)
  | Value.VInt x, Value.VFloat y -> Ok (Float.compare (float_of_int x) y)
  | Value.VFloat x, Value.VInt y -> Ok (Float.compare x (float_of_int y))
  | Value.VString x, Value.VString y -> Ok (String.compare x y)
  | Value.VBool x, Value.VBool y -> Ok (Bool.compare x y)
  | Value.VAbstime x, Value.VAbstime y -> Ok (Gaea_geo.Abstime.compare x y)
  | _ ->
    Error
      (Printf.sprintf "values of types %s and %s are not ordered"
         (Vtype.to_string (Value.type_of a))
         (Vtype.to_string (Value.type_of b)))

let compare_exn a b =
  match compare a b with
  | Ok c -> c
  | Error e -> invalid_arg ("Vorder.compare: " ^ e)
