module VKey = struct
  type t = Gaea_adt.Value.t

  let equal = Gaea_adt.Value.equal
  let hash = Gaea_adt.Value.content_hash
end

module VTbl = Hashtbl.Make (VKey)
module IntSet = Set.Make (Int)

type t = { mutable table : IntSet.t VTbl.t }

let create () = { table = VTbl.create 64 }

let add t key oid =
  let cur = Option.value ~default:IntSet.empty (VTbl.find_opt t.table key) in
  VTbl.replace t.table key (IntSet.add oid cur)

let remove t key oid =
  match VTbl.find_opt t.table key with
  | None -> ()
  | Some s ->
    let s = IntSet.remove oid s in
    if IntSet.is_empty s then VTbl.remove t.table key
    else VTbl.replace t.table key s

let find t key =
  match VTbl.find_opt t.table key with
  | None -> []
  | Some s -> IntSet.elements s

let cardinality t = VTbl.length t.table

let entries t = VTbl.fold (fun _ s acc -> acc + IntSet.cardinal s) t.table 0
