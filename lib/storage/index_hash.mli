(** Hash index: equality lookups from attribute value to OIDs.
    Keys are compared by {!Gaea_adt.Value.equal} and hashed by
    {!Gaea_adt.Value.content_hash}, so any value type can be a key. *)

type t

val create : unit -> t
val add : t -> Gaea_adt.Value.t -> Oid.t -> unit
val remove : t -> Gaea_adt.Value.t -> Oid.t -> unit
val find : t -> Gaea_adt.Value.t -> Oid.t list
(** Ascending OID order. *)

val cardinality : t -> int
(** Number of distinct keys. *)

val entries : t -> int
(** Number of (key, oid) pairs. *)
