(** Textual snapshots of a whole store — persistence without an external
    database, and the medium of the data-sharing experiments (export a
    store, re-import it elsewhere, rerun the derivations). *)

val save : Store.t -> string
(** One S-expression per table: schema, indexes, then rows (OID +
    serialized values). *)

val load : string -> (Store.t, string) result
(** Rebuilds tables, indexes and rows; the OID allocator resumes past
    the highest loaded OID. *)

val save_to_file : Store.t -> string -> (unit, string) result
val load_from_file : string -> (Store.t, string) result
