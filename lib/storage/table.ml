module Value = Gaea_adt.Value

type t = {
  name : string;
  desc : Tuple.descriptor;
  heap : Heap.t;
  hash_indexes : (string, Index_hash.t) Hashtbl.t;
  btree_indexes : (string, Index_btree.t) Hashtbl.t;
  mutable used_index : bool;
}

let create ~name desc =
  { name;
    desc;
    heap = Heap.create ();
    hash_indexes = Hashtbl.create 4;
    btree_indexes = Hashtbl.create 4;
    used_index = false }

let name t = t.name
let descriptor t = t.desc
let row_count t = Heap.length t.heap

let attr_values t tuple attr =
  match Tuple.attr_index t.desc attr with
  | None -> None
  | Some i -> Some (Tuple.get tuple i)

let create_hash_index t attr =
  match Tuple.attr_index t.desc attr with
  | None -> Error (Printf.sprintf "%s: no attribute %s" t.name attr)
  | Some i ->
    if Hashtbl.mem t.hash_indexes attr then
      Error (Printf.sprintf "%s: hash index on %s exists" t.name attr)
    else begin
      let idx = Index_hash.create () in
      Heap.scan t.heap (fun oid tuple ->
          Index_hash.add idx (Tuple.get tuple i) oid);
      Hashtbl.add t.hash_indexes attr idx;
      Ok ()
    end

let create_btree_index t attr =
  match Tuple.attr_index t.desc attr, Tuple.attr_type t.desc attr with
  | None, _ | _, None -> Error (Printf.sprintf "%s: no attribute %s" t.name attr)
  | Some i, Some ty ->
    if Hashtbl.mem t.btree_indexes attr then
      Error (Printf.sprintf "%s: btree index on %s exists" t.name attr)
    else begin
      match Index_btree.create ty with
      | Error _ as e -> e
      | Ok idx ->
        let err = ref None in
        Heap.scan t.heap (fun oid tuple ->
            if !err = None then
              match Index_btree.add idx (Tuple.get tuple i) oid with
              | Ok () -> ()
              | Error e -> err := Some e);
        (match !err with
         | Some e -> Error e
         | None ->
           Hashtbl.add t.btree_indexes attr idx;
           Ok ())
    end

let has_hash_index t attr = Hashtbl.mem t.hash_indexes attr
let has_btree_index t attr = Hashtbl.mem t.btree_indexes attr

let index_tuple t oid tuple =
  Hashtbl.iter
    (fun attr idx ->
      match attr_values t tuple attr with
      | Some v -> Index_hash.add idx v oid
      | None -> ())
    t.hash_indexes;
  Hashtbl.iter
    (fun attr idx ->
      match attr_values t tuple attr with
      | Some v -> ignore (Index_btree.add idx v oid)
      | None -> ())
    t.btree_indexes

let unindex_tuple t oid tuple =
  Hashtbl.iter
    (fun attr idx ->
      match attr_values t tuple attr with
      | Some v -> Index_hash.remove idx v oid
      | None -> ())
    t.hash_indexes;
  Hashtbl.iter
    (fun attr idx ->
      match attr_values t tuple attr with
      | Some v -> Index_btree.remove idx v oid
      | None -> ())
    t.btree_indexes

let insert_tuple t oid tuple =
  match Heap.insert t.heap oid tuple with
  | Error _ as e -> e
  | Ok () ->
    index_tuple t oid tuple;
    Ok ()

let insert t oid values =
  match Tuple.make t.desc values with
  | Error e -> Error (t.name ^ ": " ^ e)
  | Ok tuple -> insert_tuple t oid tuple

let replace t oid values =
  match Tuple.make t.desc values with
  | Error e -> Error (t.name ^ ": " ^ e)
  | Ok tuple ->
    (match Heap.get t.heap oid with
     | None -> Error (Printf.sprintf "%s: replace of unknown oid %d" t.name oid)
     | Some old ->
       (match Heap.replace t.heap oid tuple with
        | Error e -> Error (t.name ^ ": " ^ e)
        | Ok () ->
          unindex_tuple t oid old;
          index_tuple t oid tuple;
          Ok ()))

let delete t oid =
  match Heap.get t.heap oid with
  | None -> false
  | Some tuple ->
    let removed = Heap.delete t.heap oid in
    if removed then unindex_tuple t oid tuple;
    removed

let get t oid = Heap.get t.heap oid

let get_attr t oid attr =
  match get t oid with
  | None -> None
  | Some tuple -> attr_values t tuple attr

let scan t f = Heap.scan t.heap f
let fold t ~init ~f = Heap.fold t.heap ~init ~f
let to_list t = Heap.to_list t.heap

let select t pred =
  List.rev
    (fold t ~init:[] ~f:(fun acc oid tuple ->
         if pred oid tuple then (oid, tuple) :: acc else acc))

let materialize t oids =
  List.filter_map
    (fun oid -> Option.map (fun tu -> (oid, tu)) (get t oid))
    oids

let lookup_eq t attr value =
  match Hashtbl.find_opt t.hash_indexes attr with
  | Some idx ->
    t.used_index <- true;
    materialize t (Index_hash.find idx value)
  | None ->
    (match Hashtbl.find_opt t.btree_indexes attr with
     | Some idx ->
       t.used_index <- true;
       materialize t (Index_btree.find idx value)
     | None ->
       t.used_index <- false;
       (match Tuple.attr_index t.desc attr with
        | None -> []
        | Some i ->
          select t (fun _ tuple -> Value.equal (Tuple.get tuple i) value)))

let lookup_range t attr ?lo ?hi () =
  match Hashtbl.find_opt t.btree_indexes attr with
  | Some idx ->
    t.used_index <- true;
    materialize t (Index_btree.range idx ?lo ?hi ())
  | None ->
    t.used_index <- false;
    (match Tuple.attr_index t.desc attr with
     | None -> []
     | Some i ->
       let ge v bound =
         match bound with
         | None -> true
         | Some b ->
           (match Vorder.compare v b with Ok c -> c >= 0 | Error _ -> false)
       in
       let le v bound =
         match bound with
         | None -> true
         | Some b ->
           (match Vorder.compare v b with Ok c -> c <= 0 | Error _ -> false)
       in
       let rows =
         select t (fun _ tuple ->
             let v = Tuple.get tuple i in
             ge v lo && le v hi)
       in
       (* deliver in key order like the index would *)
       List.sort
         (fun (_, t1) (_, t2) ->
           match Vorder.compare (Tuple.get t1 i) (Tuple.get t2 i) with
           | Ok c -> c
           | Error _ -> 0)
         rows)

let last_access_used_index t = t.used_index
