type t = int

let invalid = 0

type allocator = { mutable next : int }

let allocator ?(first = 1) () = { next = first }

let fresh a =
  let id = a.next in
  a.next <- id + 1;
  id

let current a = a.next - 1

let advance_to a t = if t >= a.next then a.next <- t + 1
