type slot = {
  oid : Oid.t;
  tuple : Tuple.t;
  mutable deleted : bool;
}

type t = {
  mutable slots : slot option array;
  mutable used : int;
  mutable live : int;
  by_oid : (Oid.t, int) Hashtbl.t;
}

let create () =
  { slots = [||]; used = 0; live = 0; by_oid = Hashtbl.create 64 }

let grow t =
  let cap = Array.length t.slots in
  if t.used >= cap then begin
    let fresh = Array.make (Stdlib.max 16 (cap * 2)) None in
    Array.blit t.slots 0 fresh 0 t.used;
    t.slots <- fresh
  end

let insert t oid tuple =
  if Hashtbl.mem t.by_oid oid then
    Error (Printf.sprintf "heap: duplicate oid %d" oid)
  else begin
    grow t;
    t.slots.(t.used) <- Some { oid; tuple; deleted = false };
    Hashtbl.add t.by_oid oid t.used;
    t.used <- t.used + 1;
    t.live <- t.live + 1;
    Ok ()
  end

let slot t i =
  match t.slots.(i) with
  | Some s -> s
  | None -> assert false (* slots below [used] are always filled *)

let delete t oid =
  match Hashtbl.find_opt t.by_oid oid with
  | None -> false
  | Some i ->
    let s = slot t i in
    if s.deleted then false
    else begin
      s.deleted <- true;
      t.live <- t.live - 1;
      true
    end

let replace t oid tuple =
  match Hashtbl.find_opt t.by_oid oid with
  | None -> Error (Printf.sprintf "heap: replace of unknown oid %d" oid)
  | Some i ->
    let s = slot t i in
    if s.deleted then
      Error (Printf.sprintf "heap: replace of deleted oid %d" oid)
    else begin
      t.slots.(i) <- Some { s with tuple };
      Ok ()
    end

let get t oid =
  match Hashtbl.find_opt t.by_oid oid with
  | None -> None
  | Some i ->
    let s = slot t i in
    if s.deleted then None else Some s.tuple

let mem t oid = get t oid <> None

let length t = t.live
let allocated t = t.used

let scan t f =
  for i = 0 to t.used - 1 do
    let s = slot t i in
    if not s.deleted then f s.oid s.tuple
  done

let fold t ~init ~f =
  let acc = ref init in
  scan t (fun oid tuple -> acc := f !acc oid tuple);
  !acc

let find t pred =
  let result = ref None in
  (try
     scan t (fun oid tuple ->
         if pred oid tuple then begin
           result := Some (oid, tuple);
           raise Exit
         end)
   with Exit -> ());
  !result

let to_list t =
  List.rev (fold t ~init:[] ~f:(fun acc oid tuple -> (oid, tuple) :: acc))
