(** Table statistics for the cost-based optimizer of the query layer. *)

type column_stats = {
  attr : string;
  n_distinct : int;
  n_null : int;          (** always 0 today; kept for schema evolution *)
  min_value : Gaea_adt.Value.t option;   (** orderable attributes only *)
  max_value : Gaea_adt.Value.t option;
}

type table_stats = {
  table : string;
  n_rows : int;
  columns : column_stats list;
}

val analyze_table : Table.t -> table_stats
(** Exact single-pass statistics (the store is in-memory; sampling would
    buy nothing). *)

val selectivity_eq : table_stats -> string -> float
(** Estimated fraction of rows matching an equality predicate:
    [1 / n_distinct], defaulting to 0.1 for unknown attributes. *)

val pp : Format.formatter -> table_stats -> unit
