(** A table: heap + secondary indexes + schema.

    This is the storage role Postgres plays for Gaea: each non-primitive
    class is backed by one table whose attributes hold primitive-class
    values. *)

type t

val create : name:string -> Tuple.descriptor -> t
val name : t -> string
val descriptor : t -> Tuple.descriptor
val row_count : t -> int

val create_hash_index : t -> string -> (unit, string) result
(** Index an attribute for equality lookup; backfills existing rows.
    Errors on unknown attribute or duplicate index. *)

val create_btree_index : t -> string -> (unit, string) result
(** Ordered index; errors additionally on non-orderable types. *)

val has_hash_index : t -> string -> bool
val has_btree_index : t -> string -> bool

val insert : t -> Oid.t -> Gaea_adt.Value.t list -> (unit, string) result
(** Builds and type-checks a tuple, stores it, maintains indexes. *)

val insert_tuple : t -> Oid.t -> Tuple.t -> (unit, string) result

val replace : t -> Oid.t -> Gaea_adt.Value.t list -> (unit, string) result
(** Overwrite a live row in place (same OID), re-maintaining indexes.
    Errors on unknown/deleted OID or a tuple type mismatch. *)

val delete : t -> Oid.t -> bool
val get : t -> Oid.t -> Tuple.t option
val get_attr : t -> Oid.t -> string -> Gaea_adt.Value.t option

val scan : t -> (Oid.t -> Tuple.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Oid.t -> Tuple.t -> 'a) -> 'a
val to_list : t -> (Oid.t * Tuple.t) list

val select : t -> (Oid.t -> Tuple.t -> bool) -> (Oid.t * Tuple.t) list

val lookup_eq : t -> string -> Gaea_adt.Value.t -> (Oid.t * Tuple.t) list
(** Equality retrieval; uses a hash or btree index when available, falls
    back to a scan.  Unknown attribute yields []. *)

val lookup_range :
  t -> string -> ?lo:Gaea_adt.Value.t -> ?hi:Gaea_adt.Value.t -> unit
  -> (Oid.t * Tuple.t) list
(** Range retrieval on an orderable attribute (btree or scan). *)

val last_access_used_index : t -> bool
(** Whether the most recent [lookup_eq]/[lookup_range] was served by an
    index — exposed for the experiments. *)
