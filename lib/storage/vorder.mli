(** Total ordering over the scalar value types — the key order of the
    ordered index and the ORDER BY of the query layer. *)

val orderable : Gaea_adt.Vtype.t -> bool
(** True for int, float, string, bool, abstime. *)

val compare : Gaea_adt.Value.t -> Gaea_adt.Value.t -> (int, string) result
(** Errors on non-orderable or differently-typed operands (ints and
    floats compare numerically with each other). *)

val compare_exn : Gaea_adt.Value.t -> Gaea_adt.Value.t -> int
(** @raise Invalid_argument where {!compare} errors. *)
