module Sexp = Gaea_adt.Sexp
module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype

let table_to_sexp tab =
  let desc = Table.descriptor tab in
  let schema =
    Sexp.list
      (Sexp.atom "schema"
       :: List.map
            (fun (n, ty) ->
              Sexp.list [ Sexp.atom n; Sexp.atom (Vtype.to_string ty) ])
            (Tuple.attrs desc))
  in
  let indexes =
    Sexp.list
      (Sexp.atom "indexes"
       :: List.filter_map
            (fun (n, _) ->
              let kinds =
                (if Table.has_hash_index tab n then [ "hash" ] else [])
                @ if Table.has_btree_index tab n then [ "btree" ] else []
              in
              if kinds = [] then None
              else
                Some
                  (Sexp.list
                     (Sexp.atom n :: List.map Sexp.atom kinds)))
            (Tuple.attrs desc))
  in
  let rows =
    Table.fold tab ~init:[] ~f:(fun acc oid tuple ->
        Sexp.list
          (Sexp.atom "row" :: Sexp.atom (string_of_int oid)
           :: List.map
                (fun v -> Sexp.of_string (Value.serialize v) |> Result.get_ok)
                (Tuple.values tuple))
        :: acc)
    |> List.rev
  in
  Sexp.list
    (Sexp.atom "table" :: Sexp.atom (Table.name tab) :: schema :: indexes
     :: rows)

let save store =
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let tab = Store.table_exn store name in
      Buffer.add_string buf (Sexp.to_string (table_to_sexp tab));
      Buffer.add_char buf '\n')
    (Store.table_names store);
  Buffer.contents buf

let ( let* ) r f = Result.bind r f

let load_table store sexp =
  match sexp with
  | Sexp.List
      (Sexp.Atom "table" :: Sexp.Atom name
       :: Sexp.List (Sexp.Atom "schema" :: schema)
       :: Sexp.List (Sexp.Atom "indexes" :: indexes)
       :: rows) ->
    let* attrs =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match s with
          | Sexp.List [ Sexp.Atom n; Sexp.Atom ty ] ->
            (match Vtype.of_string ty with
             | Some ty -> Ok ((n, ty) :: acc)
             | None -> Error ("unknown type " ^ ty))
          | _ -> Error "malformed schema entry")
        (Ok []) schema
    in
    let* tab = Store.create_table store ~name (List.rev attrs) in
    let* () =
      List.fold_left
        (fun acc s ->
          let* () = acc in
          match s with
          | Sexp.List (Sexp.Atom attr :: kinds) ->
            List.fold_left
              (fun acc kind ->
                let* () = acc in
                match kind with
                | Sexp.Atom "hash" -> Table.create_hash_index tab attr
                | Sexp.Atom "btree" -> Table.create_btree_index tab attr
                | _ -> Error "malformed index kind")
              (Ok ()) kinds
          | _ -> Error "malformed index entry")
        (Ok ()) indexes
    in
    List.fold_left
      (fun acc row ->
        let* () = acc in
        match row with
        | Sexp.List (Sexp.Atom "row" :: Sexp.Atom oid :: values) ->
          let* oid =
            match int_of_string_opt oid with
            | Some o -> Ok o
            | None -> Error ("bad oid " ^ oid)
          in
          let* values =
            List.fold_left
              (fun acc v ->
                let* acc = acc in
                let* parsed = Value.deserialize (Sexp.to_string v) in
                Ok (parsed :: acc))
              (Ok []) values
          in
          Store.insert_with_oid store ~table:name oid (List.rev values)
        | _ -> Error "malformed row")
      (Ok ()) rows
  | _ -> Error "malformed table"

let load text =
  let* sexps = Sexp.of_string_many text in
  let store = Store.create () in
  let* () =
    List.fold_left
      (fun acc sexp ->
        let* () = acc in
        load_table store sexp)
      (Ok ()) sexps
  in
  Ok store

let save_to_file store path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (save store);
        Ok ())
  with Sys_error e -> Error e

let load_from_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        load (really_input_string ic n))
  with Sys_error e -> Error e
