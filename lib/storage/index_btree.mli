(** Ordered index for range retrieval ("inadequacy for range retrieval"
    is one of the paper's complaints about file-based GIS, Section 4.1).
    Keys must be {!Vorder.orderable} values of a single type. *)

type t

val create : Gaea_adt.Vtype.t -> (t, string) result
(** Errors on a non-orderable key type. *)

val key_type : t -> Gaea_adt.Vtype.t
val add : t -> Gaea_adt.Value.t -> Oid.t -> (unit, string) result
(** Errors on a key of the wrong type. *)

val remove : t -> Gaea_adt.Value.t -> Oid.t -> unit
val find : t -> Gaea_adt.Value.t -> Oid.t list

val range :
  t -> ?lo:Gaea_adt.Value.t -> ?hi:Gaea_adt.Value.t -> unit -> Oid.t list
(** OIDs with key in the closed range [lo, hi]; missing bounds are
    unbounded.  Ascending key order, then ascending OID. *)

val min_key : t -> Gaea_adt.Value.t option
val max_key : t -> Gaea_adt.Value.t option
val cardinality : t -> int
