module Value = Gaea_adt.Value
module Vtype = Gaea_adt.Vtype

module VMap = Map.Make (struct
  type t = Value.t

  let compare = Vorder.compare_exn
end)

module IntSet = Set.Make (Int)

type t = {
  ktype : Vtype.t;
  mutable map : IntSet.t VMap.t;
}

let create ktype =
  if not (Vorder.orderable ktype) then
    Error
      (Printf.sprintf "btree index: type %s is not orderable"
         (Vtype.to_string ktype))
  else Ok { ktype; map = VMap.empty }

let key_type t = t.ktype

let check_key t key =
  let actual = Value.type_of key in
  (* ints may key float indexes: Vorder compares them numerically *)
  let compatible =
    Vtype.equal actual t.ktype
    || (Vtype.equal t.ktype Vtype.Float && Vtype.equal actual Vtype.Int)
  in
  if compatible then Ok ()
  else
    Error
      (Printf.sprintf "btree index: key of type %s for %s index"
         (Vtype.to_string actual) (Vtype.to_string t.ktype))

let add t key oid =
  match check_key t key with
  | Error _ as e -> e
  | Ok () ->
    t.map <-
      VMap.update key
        (function
          | None -> Some (IntSet.singleton oid)
          | Some s -> Some (IntSet.add oid s))
        t.map;
    Ok ()

let remove t key oid =
  t.map <-
    VMap.update key
      (function
        | None -> None
        | Some s ->
          let s = IntSet.remove oid s in
          if IntSet.is_empty s then None else Some s)
      t.map

let find t key =
  match VMap.find_opt key t.map with
  | None -> []
  | Some s -> IntSet.elements s

let range t ?lo ?hi () =
  let in_lo k =
    match lo with
    | None -> true
    | Some l -> Vorder.compare_exn k l >= 0
  in
  let in_hi k =
    match hi with
    | None -> true
    | Some h -> Vorder.compare_exn k h <= 0
  in
  VMap.fold
    (fun k s acc ->
      if in_lo k && in_hi k then List.rev_append (IntSet.elements s) acc
      else acc)
    t.map []
  |> List.rev

let min_key t = Option.map fst (VMap.min_binding_opt t.map)
let max_key t = Option.map fst (VMap.max_binding_opt t.map)
let cardinality t = VMap.cardinal t.map
