(** The database façade: a named collection of tables sharing one OID
    allocator — the role the Postgres backend plays in Fig 1. *)

type t

val create : unit -> t
val oid_allocator : t -> Oid.allocator
val fresh_oid : t -> Oid.t

val create_table :
  t -> name:string -> (string * Gaea_adt.Vtype.t) list
  -> (Table.t, string) result
(** Errors on duplicate table names or a bad attribute list. *)

val drop_table : t -> string -> bool
val table : t -> string -> Table.t option
val table_exn : t -> string -> Table.t
(** @raise Not_found *)

val table_names : t -> string list
(** Sorted. *)

val insert_values :
  t -> table:string -> Gaea_adt.Value.t list -> (Oid.t, string) result
(** Allocate an OID, insert, return the OID. *)

val insert_with_oid :
  t -> table:string -> Oid.t -> Gaea_adt.Value.t list -> (unit, string) result
(** Insert under a caller-chosen OID (snapshot loading); advances the
    allocator past it. *)

val get : t -> table:string -> Oid.t -> Tuple.t option
val delete : t -> table:string -> Oid.t -> bool
val total_rows : t -> int
