type t = {
  tables : (string, Table.t) Hashtbl.t;
  alloc : Oid.allocator;
}

let create () = { tables = Hashtbl.create 16; alloc = Oid.allocator () }

let oid_allocator t = t.alloc
let fresh_oid t = Oid.fresh t.alloc

let create_table t ~name attrs =
  if Hashtbl.mem t.tables name then
    Error (Printf.sprintf "table %s already exists" name)
  else
    match Tuple.descriptor attrs with
    | Error e -> Error (name ^ ": " ^ e)
    | Ok desc ->
      let table = Table.create ~name desc in
      Hashtbl.add t.tables name table;
      Ok table

let drop_table t name =
  if Hashtbl.mem t.tables name then begin
    Hashtbl.remove t.tables name;
    true
  end
  else false

let table t name = Hashtbl.find_opt t.tables name

let table_exn t name =
  match table t name with
  | Some tab -> tab
  | None -> raise Not_found

let table_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.tables [] |> List.sort compare

let insert_values t ~table:tname values =
  match table t tname with
  | None -> Error (Printf.sprintf "no table %s" tname)
  | Some tab ->
    let oid = fresh_oid t in
    (match Table.insert tab oid values with
     | Ok () -> Ok oid
     | Error _ as e ->
       (match e with Error m -> Error m | Ok _ -> assert false))

let insert_with_oid t ~table:tname oid values =
  match table t tname with
  | None -> Error (Printf.sprintf "no table %s" tname)
  | Some tab ->
    (match Table.insert tab oid values with
     | Ok () ->
       Oid.advance_to t.alloc oid;
       Ok ()
     | Error _ as e -> e)

let get t ~table:tname oid =
  match table t tname with
  | None -> None
  | Some tab -> Table.get tab oid

let delete t ~table:tname oid =
  match table t tname with
  | None -> false
  | Some tab -> Table.delete tab oid

let total_rows t =
  Hashtbl.fold (fun _ tab acc -> acc + Table.row_count tab) t.tables 0
