(** Tuples and tuple descriptors.

    A descriptor is the physical schema of a table: ordered, named,
    typed attributes.  Tuples are checked against it on construction. *)

type descriptor

val descriptor : (string * Gaea_adt.Vtype.t) list -> (descriptor, string) result
(** Errors on duplicate or empty attribute names, or an empty list. *)

val attrs : descriptor -> (string * Gaea_adt.Vtype.t) list
val arity : descriptor -> int
val attr_index : descriptor -> string -> int option
val attr_type : descriptor -> string -> Gaea_adt.Vtype.t option
val descriptor_equal : descriptor -> descriptor -> bool

type t

val make : descriptor -> Gaea_adt.Value.t list -> (t, string) result
(** Checks arity and per-attribute types ([Any] in the descriptor admits
    anything; [VInt] is accepted for [Float] attributes and widened). *)

val get : t -> int -> Gaea_adt.Value.t
(** @raise Invalid_argument out of range. *)

val get_by_name : t -> descriptor -> string -> (Gaea_adt.Value.t, string) result
val values : t -> Gaea_adt.Value.t list
val with_value : t -> int -> Gaea_adt.Value.t -> t
(** Functional update (type NOT rechecked — internal use). *)

val equal : t -> t -> bool
val content_hash : t -> int
val pp : descriptor -> Format.formatter -> t -> unit
