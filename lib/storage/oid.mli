(** Object identifiers.

    Postgres gives every stored object a system-wide OID; the Gaea
    metadata manager relies on them to record tasks (derivation
    relationships among instances).  One allocator per store. *)

type t = int

val invalid : t
(** 0 — never allocated. *)

type allocator

val allocator : ?first:int -> unit -> allocator
(** Fresh allocator; ids start at [first] (default 1). *)

val fresh : allocator -> t
val current : allocator -> t
(** Highest id allocated so far ([first - 1] if none). *)

val advance_to : allocator -> t -> unit
(** Ensure future ids exceed [t] (used when loading snapshots). *)
