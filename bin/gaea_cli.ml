(* gaea — command-line front end to the Gaea kernel.

   Subcommands:
     run <script>      execute a GaeaQL script file
     repl              interactive shell (statements end with ';')
     demo              load the paper's Fig 2/3/5 schema + data and show a tour
     net               print the current derivation net as Graphviz dot
     lint [<script>…]  run each script, then the static analyzer
                       (gaea check) over the resulting kernel; exits
                       non-zero on any error-severity finding

   Unknown subcommands exit non-zero with a one-line hint (cmdliner). *)

module Session = Gaea_query.Session
module Kernel = Gaea_core.Kernel
module Figures = Gaea_core.Figures
module Derivation = Gaea_core.Derivation
module Lineage = Gaea_core.Lineage
module Dot = Gaea_petri.Dot

let ( let* ) r f = Result.bind r f

let read_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error (Gaea_core.Gaea_error.Io_error e)

let make_session load =
  match load with
  | None -> Ok (Session.create ())
  | Some path ->
    let* kernel = Gaea_core.Persist.load_from_file path in
    Ok (Session.create ~kernel ())

let finish_session session save =
  match save with
  | None -> Ok ()
  | Some path ->
    Gaea_core.Persist.save_to_file (Session.kernel session) path

let run_cmd load save path =
  match
    let* src = read_file path in
    let* session = make_session load in
    Ok (session, src)
  with
  | Error e ->
    Printf.eprintf "error: %s\n" (Gaea_core.Gaea_error.to_string e);
    1
  | Ok (session, src) ->
    (* execute as far as possible, print what ran, then report the
       failing statement and exit non-zero *)
    let responses, failed = Session.run_string_partial session src in
    List.iter
      (fun r -> print_endline (Gaea_query.Executor.format_response r))
      responses;
    let save_status =
      match finish_session session save with
      | Ok () -> 0
      | Error e ->
        Printf.eprintf "error: %s\n" (Gaea_core.Gaea_error.to_string e);
        1
    in
    (match failed with
     | None -> save_status
     | Some e ->
       Printf.eprintf "error: %s\n" (Gaea_core.Gaea_error.to_string e);
       1)

let repl_cmd load save =
  let session =
    match make_session load with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "error: %s\n" (Gaea_core.Gaea_error.to_string e);
      exit 1
  in
  print_endline "Gaea shell — end statements with ';', ctrl-D to quit.";
  let buf = Buffer.create 256 in
  (try
     while true do
       print_string (if Buffer.length buf = 0 then "gaea> " else "  ... ");
       flush stdout;
       let line = input_line stdin in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n';
       if String.contains line ';' then begin
         let src = Buffer.contents buf in
         Buffer.clear buf;
         print_endline (Session.run_string_collect session src)
       end
     done
   with End_of_file -> print_newline ());
  (match finish_session session save with
   | Ok () -> 0
   | Error e ->
     Printf.eprintf "error: %s\n" (Gaea_core.Gaea_error.to_string e);
     1)

let demo_cmd () =
  let k = Kernel.create () in
  let show title body =
    Printf.printf "\n=== %s ===\n%s\n" title body
  in
  match
    let* () = Figures.install_all k in
    let* _ = Figures.load_tm_bands k ~seed:7 ~nrow:48 ~ncol:48 () in
    let* _ = Figures.load_avhrr_year k ~seed:21 ~year:1988 () in
    let* _ =
      Figures.load_avhrr_year k ~seed:22 ~year:1989 ~vegetation_shift:0.15 ()
    in
    let* _ = Figures.load_rainfall k ~seed:33 () in
    Ok ()
  with
  | Error e ->
    Printf.eprintf "demo setup failed: %s\n" (Gaea_core.Gaea_error.to_string e);
    1
  | Ok () ->
    show "classes"
      (String.concat "\n"
         (List.map
            (fun c -> c.Gaea_core.Schema.c_name)
            (Kernel.classes k)));
    (match Derivation.request k Figures.land_cover_class with
     | Error e ->
       Printf.eprintf "derivation failed: %s\n"
         (Gaea_core.Gaea_error.to_string e);
       1
     | Ok outcome ->
       let oid = List.hd outcome.Derivation.objects in
       show "derived land cover (Fig 3 / P20)" (Lineage.explain k oid);
       (match Derivation.request k Figures.land_cover_changes_class with
        | Error e ->
          Printf.eprintf "land-change derivation failed: %s\n"
            (Gaea_core.Gaea_error.to_string e);
          1
        | Ok o2 ->
          let oid2 = List.hd o2.Derivation.objects in
          show "derived land-cover changes (Fig 5 compound)"
            (Lineage.explain k oid2);
          let view = Kernel.derivation_net k in
          show "derivation net (Graphviz)"
            (Dot.to_dot ~marking:(Kernel.current_marking k) view.Kernel.net);
          (* incremental recomputation: touch a base band the land
             cover was derived from, watch staleness propagate, then
             refresh only the dirty subgraph *)
          (match Kernel.task_producing k oid with
           | Some t when Gaea_core.Task.input_oids t <> [] ->
             let base = List.hd (Gaea_core.Task.input_oids t) in
             (match Kernel.class_of_object k base with
              | Some cls ->
                (match Kernel.object_attr k ~cls base "data" with
                 | Some v ->
                   ignore (Kernel.update_object k ~cls base [ ("data", v) ]);
                   show "stale after updating one base band"
                     (String.concat ", "
                        (List.map (Printf.sprintf "#%d")
                           (Kernel.stale_objects k)));
                   let r = Kernel.refresh_stale k in
                   show "REFRESH ALL"
                     (Printf.sprintf "refreshed %d object(s), %d left stale"
                        r.Kernel.refreshed r.Kernel.remaining);
                   let st = Kernel.cache_stats k in
                   show "result cache"
                     (Printf.sprintf
                        "%d entries, %d/%d bytes resident, %d hits / %d \
                         misses / %d evictions"
                        st.Kernel.entries st.Kernel.resident_bytes
                        st.Kernel.budget_bytes st.Kernel.hits
                        st.Kernel.misses st.Kernel.evictions)
                 | None -> ())
              | None -> ())
           | _ -> ());
          0))

let lint_kernel ~json ~label k =
  let module Diag = Gaea_analysis.Diagnostic in
  let ds = Gaea_analysis.Analysis.check_kernel k in
  if json then
    Printf.printf "{\"script\":%s,\"diagnostics\":%s}\n"
      (match label with Some l -> Printf.sprintf "%S" l | None -> "null")
      (Diag.render_json ds)
  else begin
    (match label with Some l -> Printf.printf "== %s ==\n" l | None -> ());
    print_endline (Diag.render ds)
  end;
  Diag.has_errors ds

let lint_cmd json load paths =
  match paths with
  | [] ->
    (* nothing to run: lint the (possibly --load'ed) kernel directly *)
    (match make_session load with
     | Error e ->
       Printf.eprintf "error: %s\n" (Gaea_core.Gaea_error.to_string e);
       1
     | Ok session ->
       if lint_kernel ~json ~label:None (Session.kernel session) then 1
       else 0)
  | paths ->
    let failed = ref false in
    List.iter
      (fun path ->
        (* each script gets a fresh kernel so findings don't leak
           between scripts *)
        match
          let* src = read_file path in
          let* session = make_session load in
          Ok (session, src)
        with
        | Error e ->
          Printf.eprintf "%s: error: %s\n" path
            (Gaea_core.Gaea_error.to_string e);
          failed := true
        | Ok (session, src) -> (
          match Session.run_string_partial session src with
          | _, Some e ->
            Printf.eprintf "%s: error: %s\n" path
              (Gaea_core.Gaea_error.to_string e);
            failed := true
          | _, None ->
            if lint_kernel ~json ~label:(Some path) (Session.kernel session)
            then failed := true))
      paths;
    if !failed then 1 else 0

let net_cmd () =
  let k = Kernel.create () in
  match Figures.install_all k with
  | Error e ->
    Printf.eprintf "error: %s\n" (Gaea_core.Gaea_error.to_string e);
    1
  | Ok () ->
    let view = Kernel.derivation_net k in
    print_string (Dot.to_dot view.Kernel.net);
    0

open Cmdliner

let load_arg =
  Arg.(value & opt (some file) None
       & info [ "load" ] ~docv:"DB" ~doc:"Load a saved Gaea database first")

let save_arg =
  Arg.(value & opt (some string) None
       & info [ "save" ] ~docv:"DB" ~doc:"Save the Gaea database on exit")

let run_t =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a GaeaQL script file")
    Term.(const run_cmd $ load_arg $ save_arg $ path)

let repl_t =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive GaeaQL shell")
    Term.(const repl_cmd $ load_arg $ save_arg)

let demo_t =
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Load the paper's worked examples and print a derivation tour")
    Term.(const demo_cmd $ const ())

let net_t =
  Cmd.v
    (Cmd.info "net" ~doc:"Print the Fig 2 derivation net as Graphviz dot")
    Term.(const net_cmd $ const ())

let lint_t =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit diagnostics as JSON, one array per script")
  in
  let paths =
    Arg.(value & pos_all file [] & info [] ~docv:"SCRIPT")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run each GaeaQL script in a fresh kernel, then the gaea check \
          static analyzer over the result; with no scripts, lint the \
          --load'ed database.  Exits non-zero on any error-severity \
          finding.")
    Term.(const lint_cmd $ json $ load_arg $ paths)

let main =
  Cmd.group
    (Cmd.info "gaea" ~version:"1.0.0"
       ~doc:"Gaea scientific DBMS — derived-data management (VLDB 1993)")
    [ run_t; repl_t; demo_t; net_t; lint_t ]

let () = exit (Cmd.eval' main)
